// Reduction operators and datatypes for reduce/allreduce.
//
// The paper's experiments use MPI_SUM over double; the library supports the
// usual commutative operator set over the common numeric types so the tests
// can sweep them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace srm::coll {

/// Element types. `kByte` is the untyped element for pure data-movement ops
/// (bcast/scatter/gather/allgather of raw bytes); reductions require a
/// numeric type.
enum class Dtype { f64, f32, i32, i64, kByte };
enum class RedOp { sum, prod, min, max };

constexpr std::size_t dtype_size(Dtype d) {
  switch (d) {
    case Dtype::f64: return 8;
    case Dtype::f32: return 4;
    case Dtype::i32: return 4;
    case Dtype::i64: return 8;
    case Dtype::kByte: return 1;
  }
  return 0;
}

const char* dtype_name(Dtype d);
const char* op_name(RedOp op);

/// inout[i] = op(inout[i], in[i]) for i in [0, count).
void combine(RedOp op, Dtype d, void* inout, const void* in,
             std::size_t count);

/// dst[i] = op(a[i], b[i]) — the fused form the SRM shared-memory reduce
/// uses to write results straight to their destination (no staging copy,
/// the paper's advantage over Sistare et al.). dst may alias a or b.
void combine_out(RedOp op, Dtype d, void* dst, const void* a, const void* b,
                 std::size_t count);

}  // namespace srm::coll
