#include "coll/symbolic.hpp"

#include <algorithm>
#include <utility>

#include "machine/memory.hpp"
#include "machine/network.hpp"
#include "util/check.hpp"

namespace srm::coll::sym {

// The per-(node, op) coordination cell. Counters are monotone; waiters use
// the WaitQueue as the simulator's condition variable. `data` holds this
// node's current view of the op's digest blocks.
struct Transport::NodeOp {
  explicit NodeOp(sim::Engine& eng) : wq(eng, "sym.op") {}
  sim::WaitQueue wq;
  Payload data;
  std::uint64_t pub = 0;       // chunks published to local consumers
  std::uint64_t net = 0;       // chunks arrived from the network
  std::uint64_t net_srcs = 0;  // remote senders fully arrived
  std::uint64_t contrib = 0;   // local contributions made
  std::uint64_t done = 0;      // participants finished (GC)
  bool released = false;       // barrier down-pass
  // Slot-addressed arrivals for the zoo runners: senders know which step of
  // the receiver's schedule a message satisfies, so digests land keyed by
  // that step instead of by arrival order (which links do not serialize).
  std::map<int, Payload> inbox;
};

struct Transport::NodeSt {
  std::map<std::uint64_t, NodeOp> ops;
};

Transport::Transport(machine::Cluster& cluster, Profile p)
    : cluster_(&cluster), p_(p) {
  SRM_CHECK(p_.chunk > 0);
  seq_.assign(static_cast<std::size_t>(cluster.topology().nranks()), 0);
  nodes_.resize(static_cast<std::size_t>(cluster.topology().nodes()));
}

Transport::~Transport() = default;

Transport::NodeOp& Transport::op_state(int node, std::uint64_t seq) {
  auto& st = nodes_.at(static_cast<std::size_t>(node));
  if (st == nullptr) st = std::make_unique<NodeSt>();
  return st->ops.try_emplace(seq, cluster_->engine()).first->second;
}

void Transport::finish(int node, std::uint64_t seq, int nlocal) {
  NodeOp& st = op_state(node, seq);
  if (++st.done == static_cast<std::uint64_t>(nlocal)) {
    nodes_[static_cast<std::size_t>(node)]->ops.erase(seq);
  }
}

std::uint64_t Transport::next_seq(machine::TaskCtx& t) {
  return seq_.at(static_cast<std::size_t>(t.rank))++;
}

const Tree& Transport::tree(TreeKind kind, int root_node) {
  auto key = std::make_pair(static_cast<int>(kind), root_node);
  auto it = trees_.find(key);
  if (it == trees_.end()) {
    it = trees_
             .emplace(key, build_tree(kind, cluster_->topology().nodes(),
                                      root_node))
             .first;
  }
  return it->second;
}

namespace {
std::size_t chunk_count(std::size_t total, std::size_t chunk) {
  return (total + chunk - 1) / chunk;
}
}  // namespace

// ---- bcast: pipelined down the internode tree, chunk-published on-node ----

sim::CoTask Transport::bcast_run(machine::TaskCtx& t, std::uint64_t seq,
                                 int root, std::size_t nb, std::size_t bb,
                                 const Payload* src, std::size_t s0,
                                 Payload* dst, std::size_t d0, TreeKind tk) {
  const auto& topo = *t.topo;
  const int node = t.node();
  const int root_node = topo.node_of(root);
  const int nlocal = t.nlocal();
  const bool leader =
      t.local() == (node == root_node ? topo.local_of(root) : 0);
  const std::size_t total = nb * bb;
  const std::size_t nchunks = chunk_count(total, p_.chunk);
  auto len = [this, total](std::size_t c) {
    return std::min(p_.chunk, total - c * p_.chunk);
  };
  NodeOp& st = op_state(node, seq);
  if (leader) {
    if (t.rank == root) {
      st.data = Payload(nb, bb);
      st.data.copy_blocks(*src, s0, 0, nb);
    }
    const Tree& tr = tree(tk, root_node);
    const auto& kids = tr.children[static_cast<std::size_t>(node)];
    for (std::size_t c = 0; c < nchunks; ++c) {
      if (t.rank != root) {
        co_await st.wq.wait_until([&st, c] { return st.net > c; }, t.rank);
      }
      const bool last = c + 1 == nchunks;
      // Forward chunk c down the tree, largest subtree first; the digest
      // rides the last chunk of each hop.
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        const int child = *it;
        co_await t.delay(p_.msg_overhead);
        cluster_->network().inject(
            node, child, static_cast<double>(len(c)),
            [this, child, seq, last,
             dig = last ? st.data : Payload{}]() mutable {
              NodeOp& cst = op_state(child, seq);
              if (last) cst.data = std::move(dig);
              ++cst.net;
              cst.wq.notify();
            });
      }
      if (nlocal > 1) {
        co_await t.nd->mem.charge_copy(static_cast<double>(len(c)));
        st.pub = c + 1;
        st.wq.notify();
      }
    }
    if (dst != nullptr) dst->copy_blocks(st.data, 0, d0, nb);
  } else {
    for (std::size_t c = 0; c < nchunks; ++c) {
      co_await st.wq.wait_until([&st, c] { return st.pub > c; }, t.rank);
      co_await t.nd->mem.charge_copy(static_cast<double>(len(c)));
    }
    if (dst != nullptr) dst->copy_blocks(st.data, 0, d0, nb);
  }
  finish(node, seq, nlocal);
}

// ---- reduce: combine up the intra-node fan-in, then up the node tree ----

sim::CoTask Transport::reduce_run(machine::TaskCtx& t, std::uint64_t seq,
                                  int root, std::size_t nb, std::size_t bb,
                                  Dtype d, RedOp rop, const Payload& send,
                                  std::size_t s0, Payload* out,
                                  std::size_t o0, TreeKind tk) {
  const auto& topo = *t.topo;
  const int node = t.node();
  const int root_node = topo.node_of(root);
  const int nlocal = t.nlocal();
  const bool leader =
      t.local() == (node == root_node ? topo.local_of(root) : 0);
  const std::size_t total = nb * bb;
  const std::size_t nchunks = chunk_count(total, p_.chunk);
  auto len = [this, total](std::size_t c) {
    return std::min(p_.chunk, total - c * p_.chunk);
  };
  NodeOp& st = op_state(node, seq);
  auto accumulate = [nb, d, rop](NodeOp& into, const Payload& dig) {
    if (into.data.nblocks() == 0) {
      into.data = dig;
    } else {
      into.data.combine_blocks(dig, 0, 0, nb, d, rop);
    }
  };
  Payload mine(nb, bb);
  mine.copy_blocks(send, s0, 0, nb);
  if (!leader) {
    // Stage my contribution into the shared arena; the digest combine is
    // order-independent (commutative mix + integer-valued windows).
    co_await t.nd->mem.charge_copy(static_cast<double>(total));
    accumulate(st, mine);
    ++st.contrib;
    st.wq.notify();
  } else {
    accumulate(st, mine);
    for (int i = 1; i < nlocal; ++i) {
      co_await st.wq.wait_until(
          [&st, i] { return st.contrib >= static_cast<std::uint64_t>(i); },
          t.rank);
      co_await t.nd->mem.charge_combine(static_cast<double>(total));
    }
    const Tree& tr = tree(tk, root_node);
    const auto& kids = tr.children[static_cast<std::size_t>(node)];
    for (std::size_t k = 1; k <= kids.size(); ++k) {
      co_await st.wq.wait_until([&st, k] { return st.net_srcs >= k; },
                                t.rank);
      co_await t.nd->mem.charge_combine(static_cast<double>(total));
    }
    const int parent = tr.parent[static_cast<std::size_t>(node)];
    if (parent >= 0) {
      for (std::size_t c = 0; c < nchunks; ++c) {
        co_await t.delay(p_.msg_overhead);
        const bool last = c + 1 == nchunks;
        cluster_->network().inject(
            node, parent, static_cast<double>(len(c)),
            [this, parent, seq, last, nb, d, rop,
             dig = last ? st.data : Payload{}]() mutable {
              NodeOp& pst = op_state(parent, seq);
              if (last) {
                if (pst.data.nblocks() == 0) {
                  pst.data = std::move(dig);
                } else {
                  pst.data.combine_blocks(dig, 0, 0, nb, d, rop);
                }
                ++pst.net_srcs;
              }
              pst.wq.notify();
            });
      }
    } else if (out != nullptr) {
      out->copy_blocks(st.data, 0, o0, nb);
    }
  }
  finish(node, seq, nlocal);
}

// ---- scatter: root sends each node its slice directly (linear) ----

sim::CoTask Transport::scatter_run(machine::TaskCtx& t, std::uint64_t seq,
                                   int root, std::size_t bb,
                                   const Payload* src, std::size_t s0,
                                   Payload* recv, std::size_t r0) {
  const auto& topo = *t.topo;
  const int node = t.node();
  const int root_node = topo.node_of(root);
  const int nlocal = t.nlocal();
  const bool leader =
      t.local() == (node == root_node ? topo.local_of(root) : 0);
  const std::size_t nodebytes = static_cast<std::size_t>(nlocal) * bb;
  const std::size_t nchunks = chunk_count(nodebytes, p_.chunk);
  auto len = [this, nodebytes](std::size_t c) {
    return std::min(p_.chunk, nodebytes - c * p_.chunk);
  };
  NodeOp& st = op_state(node, seq);
  if (t.rank == root) {
    for (int nd = 0; nd < t.nnodes(); ++nd) {
      if (nd == root_node) continue;
      for (std::size_t c = 0; c < nchunks; ++c) {
        co_await t.delay(p_.msg_overhead);
        if (c + 1 < nchunks) {
          cluster_->network().inject(node, nd, static_cast<double>(len(c)),
                                     [this, nd, seq] {
                                       NodeOp& cst = op_state(nd, seq);
                                       ++cst.net;
                                       cst.wq.notify();
                                     });
        } else {
          Payload dig(static_cast<std::size_t>(nlocal), bb);
          dig.copy_blocks(*src, s0 + static_cast<std::size_t>(nd * nlocal), 0,
                          static_cast<std::size_t>(nlocal));
          cluster_->network().inject(
              node, nd, static_cast<double>(len(c)),
              [this, nd, seq, dig = std::move(dig)]() mutable {
                NodeOp& cst = op_state(nd, seq);
                cst.data = std::move(dig);
                ++cst.net_srcs;
                cst.wq.notify();
              });
        }
      }
    }
    st.data = Payload(static_cast<std::size_t>(nlocal), bb);
    st.data.copy_blocks(*src, s0 + static_cast<std::size_t>(root_node * nlocal),
                        0, static_cast<std::size_t>(nlocal));
    if (nlocal > 1) {
      co_await t.nd->mem.charge_copy(static_cast<double>(nodebytes));
    }
    st.pub = 1;
    st.wq.notify();
  } else if (leader) {
    co_await st.wq.wait_until([&st] { return st.net_srcs >= 1; }, t.rank);
    co_await t.nd->mem.charge_copy(static_cast<double>(nodebytes));
    st.pub = 1;
    st.wq.notify();
  }
  co_await st.wq.wait_until([&st] { return st.pub >= 1; }, t.rank);
  co_await t.nd->mem.charge_copy(static_cast<double>(bb));
  recv->copy_blocks(st.data, static_cast<std::size_t>(t.local()), r0, 1);
  finish(node, seq, nlocal);
}

// ---- gather: node leaders assemble, then send to the root directly ----

sim::CoTask Transport::gather_run(machine::TaskCtx& t, std::uint64_t seq,
                                  int root, std::size_t bb,
                                  const Payload& send, std::size_t s0,
                                  Payload* out, std::size_t o0) {
  const auto& topo = *t.topo;
  const int node = t.node();
  const int root_node = topo.node_of(root);
  const int nlocal = t.nlocal();
  const int nranks = t.nranks();
  const bool leader =
      t.local() == (node == root_node ? topo.local_of(root) : 0);
  const bool root_nd = node == root_node;
  const std::size_t nodebytes = static_cast<std::size_t>(nlocal) * bb;
  const std::size_t nchunks = chunk_count(nodebytes, p_.chunk);
  auto len = [this, nodebytes](std::size_t c) {
    return std::min(p_.chunk, nodebytes - c * p_.chunk);
  };
  NodeOp& st = op_state(node, seq);
  // Contribute my block: the root node assembles all nranks slots, other
  // nodes only their local slice.
  co_await t.nd->mem.charge_copy(static_cast<double>(bb));
  {
    const std::size_t slots =
        root_nd ? static_cast<std::size_t>(nranks)
                : static_cast<std::size_t>(nlocal);
    const std::size_t slot =
        root_nd ? static_cast<std::size_t>(node * nlocal + t.local())
                : static_cast<std::size_t>(t.local());
    if (st.data.nblocks() == 0) st.data = Payload(slots, bb);
    st.data.copy_blocks(send, s0, slot, 1);
    ++st.contrib;
    st.wq.notify();
  }
  if (leader) {
    co_await st.wq.wait_until(
        [&st, nlocal] {
          return st.contrib >= static_cast<std::uint64_t>(nlocal);
        },
        t.rank);
    if (!root_nd) {
      for (std::size_t c = 0; c < nchunks; ++c) {
        co_await t.delay(p_.msg_overhead);
        const bool last = c + 1 == nchunks;
        cluster_->network().inject(
            node, root_node, static_cast<double>(len(c)),
            [this, node, root_node, seq, last, nlocal, nranks, bb,
             dig = last ? st.data : Payload{}]() mutable {
              NodeOp& rst = op_state(root_node, seq);
              if (last) {
                if (rst.data.nblocks() == 0) {
                  rst.data = Payload(static_cast<std::size_t>(nranks), bb);
                }
                rst.data.copy_blocks(dig, 0,
                                     static_cast<std::size_t>(node * nlocal),
                                     static_cast<std::size_t>(nlocal));
                ++rst.net_srcs;
              }
              rst.wq.notify();
            });
      }
    } else {
      const std::size_t remote = static_cast<std::size_t>(t.nnodes() - 1);
      for (std::size_t k = 1; k <= remote; ++k) {
        co_await st.wq.wait_until([&st, k] { return st.net_srcs >= k; },
                                  t.rank);
        co_await t.nd->mem.charge_copy(static_cast<double>(nodebytes));
      }
      if (out != nullptr) {
        out->copy_blocks(st.data, 0, o0, static_cast<std::size_t>(nranks));
      }
    }
  }
  finish(node, seq, nlocal);
}

// ---- barrier: intra-node fan-in, tree up-pass, tree release ----

sim::CoTask Transport::barrier_run(machine::TaskCtx& t, std::uint64_t seq) {
  const int node = t.node();
  const int nlocal = t.nlocal();
  const bool leader = t.local() == 0;
  NodeOp& st = op_state(node, seq);
  co_await t.delay(t.P->mem.flag_propagation);
  ++st.contrib;
  st.wq.notify();
  if (!leader) {
    co_await st.wq.wait_until([&st] { return st.released; }, t.rank);
    co_await t.delay(t.P->mem.flag_poll);
  } else {
    co_await st.wq.wait_until(
        [&st, nlocal] {
          return st.contrib >= static_cast<std::uint64_t>(nlocal);
        },
        t.rank);
    const Tree& tr = tree(p_.internode_tree, 0);
    const auto& kids = tr.children[static_cast<std::size_t>(node)];
    for (std::size_t k = 1; k <= kids.size(); ++k) {
      co_await st.wq.wait_until([&st, k] { return st.net_srcs >= k; },
                                t.rank);
    }
    const int parent = tr.parent[static_cast<std::size_t>(node)];
    if (parent >= 0) {
      co_await t.delay(p_.msg_overhead);
      cluster_->network().inject(node, parent, 8.0, [this, parent, seq] {
        NodeOp& pst = op_state(parent, seq);
        ++pst.net_srcs;
        pst.wq.notify();
      });
      co_await st.wq.wait_until([&st] { return st.released; }, t.rank);
    }
    for (int child : kids) {
      co_await t.delay(p_.msg_overhead);
      cluster_->network().inject(node, child, 8.0, [this, child, seq] {
        NodeOp& cst = op_state(child, seq);
        cst.released = true;
        cst.wq.notify();
      });
    }
    st.released = true;
    st.wq.notify();
  }
  finish(node, seq, nlocal);
}

// ---- zoo cost runners ------------------------------------------------------
//
// The ring / recursive-halving allreduce and the scatter+allgather bcast,
// replayed over the node leaders with one message per protocol block (the
// real plane issues one put per block too, so the LogGP costs line up).
// Digests ride the messages so the data plane stays causally exact:
//  * ring — each reduce-scatter hop hands on the contribution digest that
//    arrived the previous hop (a forward chain), so after n-1 hops every
//    leader has combined every node's contribution exactly once; the
//    allgather hops carry timing only.
//  * rhalving — each round exchanges the senders' whole accumulated digests;
//    the two sides of a round cover disjoint node groups, so one combine per
//    round is exact whatever sub-range the real protocol swaps.
//  * sa_bcast — the root's scatter messages carry the full image digest; the
//    ring allgather hops carry timing only.
// Zero-length protocol blocks still send a zero-byte message (the real plane
// skips those puts; a signal-sized hop keeps the slot accounting uniform at
// negligible cost).

sim::CoTask Transport::ring_allreduce_run(machine::TaskCtx& t,
                                          std::uint64_t seq, std::size_t bb,
                                          Dtype d, RedOp rop,
                                          const Payload& send, std::size_t s0,
                                          Payload* dst, std::size_t d0) {
  const int node = t.node();
  const int n = t.nnodes();
  const int nlocal = t.nlocal();
  const bool leader = t.local() == 0;
  NodeOp& st = op_state(node, seq);
  Payload mine(1, bb);
  mine.copy_blocks(send, s0, 0, 1);
  auto accumulate = [d, rop](NodeOp& into, const Payload& dig) {
    if (into.data.nblocks() == 0) {
      into.data = dig;
    } else {
      into.data.combine_blocks(dig, 0, 0, 1, d, rop);
    }
  };
  if (!leader) {
    co_await t.nd->mem.charge_copy(static_cast<double>(bb));
    accumulate(st, mine);
    ++st.contrib;
    st.wq.notify();
    co_await st.wq.wait_until([&st] { return st.pub >= 1; }, t.rank);
    co_await t.nd->mem.charge_copy(static_cast<double>(bb));
    if (dst != nullptr) dst->copy_blocks(st.data, 0, d0, 1);
    finish(node, seq, nlocal);
    co_return;
  }
  accumulate(st, mine);
  for (int i = 1; i < nlocal; ++i) {
    co_await st.wq.wait_until(
        [&st, i] { return st.contrib >= static_cast<std::uint64_t>(i); },
        t.rank);
    co_await t.nd->mem.charge_combine(static_cast<double>(bb));
  }
  if (n > 1) {
    const int succ = (node + 1) % n;
    const std::size_t rblk =
        (bb + static_cast<std::size_t>(n) - 1) / static_cast<std::size_t>(n);
    auto blen = [&](int i) {
      std::size_t lo = std::min(bb, static_cast<std::size_t>(i) * rblk);
      return std::min(bb, (static_cast<std::size_t>(i) + 1) * rblk) - lo;
    };
    // Forward chain seed: this node's own contribution, snapshotted before
    // arrivals get combined in.
    Payload carry = st.data;
    for (int s = 0; s < n - 1; ++s) {
      co_await t.delay(p_.msg_overhead);
      cluster_->network().inject(
          node, succ, static_cast<double>(blen((node - s + n) % n)),
          [this, succ, seq, s, dig = carry]() mutable {
            NodeOp& sst = op_state(succ, seq);
            sst.inbox.emplace(s, std::move(dig));
            sst.wq.notify();
          });
      co_await st.wq.wait_until(
          [&st, s] { return st.inbox.count(s) != 0; }, t.rank);
      carry = std::move(st.inbox.at(s));
      st.data.combine_blocks(carry, 0, 0, 1, d, rop);
      co_await t.nd->mem.charge_combine(
          static_cast<double>(blen((node - 1 - s + 2 * n) % n)));
    }
    // Allgather hops: the fully reduced blocks circulate, timing only.
    for (int s = 0; s < n - 1; ++s) {
      co_await t.delay(p_.msg_overhead);
      cluster_->network().inject(
          node, succ, static_cast<double>(blen((node + 1 - s + 2 * n) % n)),
          [this, succ, seq] {
            NodeOp& sst = op_state(succ, seq);
            ++sst.net_srcs;
            sst.wq.notify();
          });
      co_await st.wq.wait_until(
          [&st, s] { return st.net_srcs > static_cast<std::uint64_t>(s); },
          t.rank);
    }
  }
  if (nlocal > 1) co_await t.nd->mem.charge_copy(static_cast<double>(bb));
  st.pub = 1;
  st.wq.notify();
  if (dst != nullptr) dst->copy_blocks(st.data, 0, d0, 1);
  finish(node, seq, nlocal);
}

sim::CoTask Transport::rhalving_allreduce_run(machine::TaskCtx& t,
                                              std::uint64_t seq,
                                              std::size_t bb, Dtype d,
                                              RedOp rop, const Payload& send,
                                              std::size_t s0, Payload* dst,
                                              std::size_t d0) {
  const int node = t.node();
  const int n = t.nnodes();
  const int nlocal = t.nlocal();
  const bool leader = t.local() == 0;
  NodeOp& st = op_state(node, seq);
  Payload mine(1, bb);
  mine.copy_blocks(send, s0, 0, 1);
  auto accumulate = [d, rop](NodeOp& into, const Payload& dig) {
    if (into.data.nblocks() == 0) {
      into.data = dig;
    } else {
      into.data.combine_blocks(dig, 0, 0, 1, d, rop);
    }
  };
  if (!leader) {
    co_await t.nd->mem.charge_copy(static_cast<double>(bb));
    accumulate(st, mine);
    ++st.contrib;
    st.wq.notify();
    co_await st.wq.wait_until([&st] { return st.pub >= 1; }, t.rank);
    co_await t.nd->mem.charge_copy(static_cast<double>(bb));
    if (dst != nullptr) dst->copy_blocks(st.data, 0, d0, 1);
    finish(node, seq, nlocal);
    co_return;
  }
  accumulate(st, mine);
  for (int i = 1; i < nlocal; ++i) {
    co_await st.wq.wait_until(
        [&st, i] { return st.contrib >= static_cast<std::uint64_t>(i); },
        t.rank);
    co_await t.nd->mem.charge_combine(static_cast<double>(bb));
  }
  if (n > 1) {
    int pof2 = 1;
    while (pof2 * 2 <= n) pof2 *= 2;
    const int rem = n - pof2;
    int nrounds = 0;
    while ((1 << (nrounds + 1)) <= pof2) ++nrounds;
    auto node_of = [rem](int w) { return w < rem ? w * 2 + 1 : w + rem; };
    const std::size_t esize = dtype_size(d);
    const std::size_t count = bb / esize;
    // Slot layout (identical on every active node): 0 = fold-in / unfold,
    // 1 + r = reduce-scatter round r, 1 + nrounds + k = k-th allgather hop.
    auto send_to = [&](int to, int slot, std::size_t len,
                       Payload dig) -> sim::CoTask {
      co_await t.delay(p_.msg_overhead);
      cluster_->network().inject(
          node, to, static_cast<double>(len),
          [this, to, seq, slot, dig = std::move(dig)]() mutable {
            NodeOp& peer = op_state(to, seq);
            peer.inbox.emplace(slot, std::move(dig));
            peer.wq.notify();
          });
    };
    auto wait_slot = [&](int slot) -> sim::CoTask {
      co_await st.wq.wait_until(
          [&st, slot] { return st.inbox.count(slot) != 0; }, t.rank);
    };
    int w;
    if (node < 2 * rem) {
      if (node % 2 == 0) {
        // Fold out: hand my contribution to the odd partner and wait for
        // the finished vector.
        co_await send_to(node + 1, 0, bb, st.data);
        w = -1;
      } else {
        co_await wait_slot(0);
        st.data.combine_blocks(st.inbox.at(0), 0, 0, 1, d, rop);
        co_await t.nd->mem.charge_combine(static_cast<double>(bb));
        w = node / 2;
      }
    } else {
      w = node - rem;
    }
    if (w != -1) {
      std::size_t lo = 0;
      std::size_t hi = count;
      std::vector<std::size_t> rlo(static_cast<std::size_t>(nrounds));
      std::vector<std::size_t> rhi(static_cast<std::size_t>(nrounds));
      for (int r = 0; r < nrounds; ++r) {
        const int pnode = node_of(w ^ (1 << r));
        auto ri = static_cast<std::size_t>(r);
        rlo[ri] = lo;
        rhi[ri] = hi;
        std::size_t half = (hi - lo + 1) / 2;
        std::size_t slo, shi;
        if ((w & (1 << r)) == 0) {  // keep lower, send upper
          slo = lo + half;
          shi = hi;
          hi = lo + half;
        } else {  // keep upper, send lower
          slo = lo;
          shi = lo + half;
          lo = lo + half;
        }
        const std::size_t keep_b = (hi - lo) * esize;
        const std::size_t send_b = (shi - slo) * esize;
        // Send before combining: the digest on the wire is this side's
        // pre-round group, disjoint from the partner's.
        co_await send_to(pnode, 1 + r, send_b, st.data);
        co_await wait_slot(1 + r);
        st.data.combine_blocks(st.inbox.at(1 + r), 0, 0, 1, d, rop);
        if (keep_b > 0) {
          co_await t.nd->mem.charge_combine(static_cast<double>(keep_b));
        }
      }
      for (int r = nrounds - 1; r >= 0; --r) {
        const int pnode = node_of(w ^ (1 << r));
        auto ri = static_cast<std::size_t>(r);
        const std::size_t mine_b = (hi - lo) * esize;
        const int k = nrounds - 1 - r;
        co_await send_to(pnode, 1 + nrounds + k, mine_b, {});
        co_await wait_slot(1 + nrounds + k);
        lo = rlo[ri];
        hi = rhi[ri];
      }
      // Unfold: the odd partner hands the finished vector back.
      if (w < rem) co_await send_to(node_of(w) - 1, 0, bb, st.data);
    } else {
      co_await wait_slot(0);
      st.data = std::move(st.inbox.at(0));
    }
  }
  if (nlocal > 1) co_await t.nd->mem.charge_copy(static_cast<double>(bb));
  st.pub = 1;
  st.wq.notify();
  if (dst != nullptr) dst->copy_blocks(st.data, 0, d0, 1);
  finish(node, seq, nlocal);
}

sim::CoTask Transport::sa_bcast_run(machine::TaskCtx& t, std::uint64_t seq,
                                    int root, std::size_t bb,
                                    const Payload* src, std::size_t s0,
                                    Payload* dst, std::size_t d0) {
  const auto& topo = *t.topo;
  const int node = t.node();
  const int root_node = topo.node_of(root);
  const int n = t.nnodes();
  const int nlocal = t.nlocal();
  const bool leader =
      t.local() == (node == root_node ? topo.local_of(root) : 0);
  const std::size_t rblk =
      (bb + static_cast<std::size_t>(n) - 1) / static_cast<std::size_t>(n);
  auto blen = [&](int i) {
    std::size_t lo = std::min(bb, static_cast<std::size_t>(i) * rblk);
    return std::min(bb, (static_cast<std::size_t>(i) + 1) * rblk) - lo;
  };
  NodeOp& st = op_state(node, seq);
  if (!leader) {
    // Consumers follow the leader's publish order: block (v - s) at step s.
    std::uint64_t k = 0;
    for (int s = 0; s < n; ++s) {
      const int b = (node - s + n) % n;
      if (blen(b) == 0) continue;
      ++k;
      co_await st.wq.wait_until([&st, k] { return st.pub >= k; }, t.rank);
      co_await t.nd->mem.charge_copy(static_cast<double>(blen(b)));
    }
    if (dst != nullptr) dst->copy_blocks(st.data, 0, d0, 1);
    finish(node, seq, nlocal);
    co_return;
  }
  const int succ = (node + 1) % n;
  const bool send_ring = succ != root_node;
  auto send_to = [&](int to, int slot, std::size_t len,
                     Payload dig) -> sim::CoTask {
    co_await t.delay(p_.msg_overhead);
    cluster_->network().inject(
        node, to, static_cast<double>(len),
        [this, to, seq, slot, dig = std::move(dig)]() mutable {
          NodeOp& peer = op_state(to, seq);
          peer.inbox.emplace(slot, std::move(dig));
          peer.wq.notify();
        });
  };
  auto wait_slot = [&](int slot) -> sim::CoTask {
    co_await st.wq.wait_until(
        [&st, slot] { return st.inbox.count(slot) != 0; }, t.rank);
  };
  auto publish = [&](int b) -> sim::CoTask {
    if (nlocal > 1) {
      co_await t.nd->mem.charge_copy(static_cast<double>(blen(b)));
    }
    ++st.pub;
    st.wq.notify();
  };
  if (node == root_node) {
    st.data = Payload(1, bb);
    st.data.copy_blocks(*src, s0, 0, 1);
    // Scatter: one message per peer node, each carrying the image digest.
    for (int i = 0; i < n; ++i) {
      if (i == root_node) continue;
      co_await send_to(i, 0, blen(i), st.data);
    }
    // Ring re-injection of block (v - s) at step s, published in order.
    for (int s = 0; s < n; ++s) {
      const int b = (node - s + n) % n;
      if (send_ring && s <= n - 2) co_await send_to(succ, s + 1, blen(b), {});
      if (blen(b) > 0) co_await publish(b);
    }
  } else {
    // Slot 0 is the root's scatter block; slot s >= 1 is the step-s ring
    // arrival from the predecessor.
    co_await wait_slot(0);
    st.data = std::move(st.inbox.at(0));
    if (send_ring) co_await send_to(succ, 1, blen(node), {});
    if (blen(node) > 0) co_await publish(node);
    for (int s = 1; s < n; ++s) {
      const int b = (node - s + n) % n;
      co_await wait_slot(s);
      if (send_ring && s <= n - 2) co_await send_to(succ, s + 1, blen(b), {});
      if (blen(b) > 0) co_await publish(b);
    }
  }
  if (dst != nullptr) dst->copy_blocks(st.data, 0, d0, 1);
  finish(node, seq, nlocal);
}

// ---- public ops ----

sim::CoTask Transport::bcast(machine::TaskCtx& t, Buf buf, int root,
                             std::optional<Decision> dec) {
  if (buf.count == 0) co_return;
  const std::uint64_t seq = next_seq(t);
  if (dec && dec->algo == Algo::scatter_ag) {
    co_await sa_bcast_run(t, seq, root, buf.block_bytes(),
                          t.rank == root ? buf.pay : nullptr, buf.block0,
                          buf.pay, buf.block0);
  } else {
    co_await bcast_run(t, seq, root, 1, buf.block_bytes(),
                       t.rank == root ? buf.pay : nullptr, buf.block0, buf.pay,
                       buf.block0, dec ? dec->internode : p_.internode_tree);
  }
}

sim::CoTask Transport::reduce(machine::TaskCtx& t, Buf send, Buf recv,
                              RedOp op, int root, std::optional<Decision> dec) {
  if (send.count == 0) co_return;
  const std::uint64_t seq = next_seq(t);
  co_await reduce_run(t, seq, root, 1, send.block_bytes(), send.dtype, op,
                      *send.pay, send.block0,
                      t.rank == root ? recv.pay : nullptr, recv.block0,
                      dec ? dec->internode : p_.internode_tree);
}

sim::CoTask Transport::allreduce(machine::TaskCtx& t, Buf send, Buf recv,
                                 RedOp op, std::optional<Decision> dec) {
  if (send.count == 0) co_return;
  const std::size_t bb = send.block_bytes();
  const Algo a = dec ? dec->algo : Algo::rd;
  if (a == Algo::ring || a == Algo::rhalving) {
    const std::uint64_t seq = next_seq(t);
    if (a == Algo::ring) {
      co_await ring_allreduce_run(t, seq, bb, send.dtype, op, *send.pay,
                                  send.block0, recv.pay, recv.block0);
    } else {
      co_await rhalving_allreduce_run(t, seq, bb, send.dtype, op, *send.pay,
                                      send.block0, recv.pay, recv.block0);
    }
    co_return;
  }
  const TreeKind tk = dec ? dec->internode : p_.internode_tree;
  const std::uint64_t seq1 = next_seq(t);
  const std::uint64_t seq2 = next_seq(t);
  const bool r0 = t.rank == 0;
  Payload tmp;
  if (r0) tmp = Payload(1, bb);
  co_await reduce_run(t, seq1, 0, 1, bb, send.dtype, op, *send.pay,
                      send.block0, r0 ? &tmp : nullptr, 0, tk);
  co_await bcast_run(t, seq2, 0, 1, bb, r0 ? &tmp : nullptr, 0, recv.pay,
                     recv.block0, tk);
}

sim::CoTask Transport::barrier(machine::TaskCtx& t) {
  const std::uint64_t seq = next_seq(t);
  co_await barrier_run(t, seq);
}

sim::CoTask Transport::scatter(machine::TaskCtx& t, Buf send, Buf recv,
                               int root) {
  if (recv.count == 0) co_return;
  const std::uint64_t seq = next_seq(t);
  co_await scatter_run(t, seq, root, recv.block_bytes(),
                       t.rank == root ? send.pay : nullptr, send.block0,
                       recv.pay, recv.block0);
}

sim::CoTask Transport::gather(machine::TaskCtx& t, Buf send, Buf recv,
                              int root) {
  if (send.count == 0) co_return;
  const std::uint64_t seq = next_seq(t);
  co_await gather_run(t, seq, root, send.block_bytes(), *send.pay,
                      send.block0, t.rank == root ? recv.pay : nullptr,
                      recv.block0);
}

sim::CoTask Transport::allgather(machine::TaskCtx& t, Buf send, Buf recv) {
  if (send.count == 0) co_return;
  const std::uint64_t seq1 = next_seq(t);
  const std::uint64_t seq2 = next_seq(t);
  const std::size_t bb = send.block_bytes();
  const std::size_t nranks = static_cast<std::size_t>(t.nranks());
  const bool r0 = t.rank == 0;
  Payload assembled;
  if (r0) assembled = Payload(nranks, bb);
  co_await gather_run(t, seq1, 0, bb, *send.pay, send.block0,
                      r0 ? &assembled : nullptr, 0);
  co_await bcast_run(t, seq2, 0, nranks, bb, r0 ? &assembled : nullptr, 0,
                     recv.pay, recv.block0, p_.internode_tree);
}

sim::CoTask Transport::reduce_scatter(machine::TaskCtx& t, Buf send, Buf recv,
                                      RedOp op) {
  if (recv.count == 0) co_return;
  const std::uint64_t seq1 = next_seq(t);
  const std::uint64_t seq2 = next_seq(t);
  const std::size_t bb = recv.block_bytes();
  const std::size_t nranks = static_cast<std::size_t>(t.nranks());
  const bool r0 = t.rank == 0;
  Payload tmp;
  if (r0) tmp = Payload(nranks, bb);
  co_await reduce_run(t, seq1, 0, nranks, bb, send.dtype, op, *send.pay,
                      send.block0, r0 ? &tmp : nullptr, 0, p_.internode_tree);
  co_await scatter_run(t, seq2, 0, bb, r0 ? &tmp : nullptr, 0, recv.pay,
                       recv.block0);
}

}  // namespace srm::coll::sym
