#include "coll/ops.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace srm::coll {

const char* dtype_name(Dtype d) {
  switch (d) {
    case Dtype::f64: return "f64";
    case Dtype::f32: return "f32";
    case Dtype::i32: return "i32";
    case Dtype::i64: return "i64";
    case Dtype::kByte: return "byte";
  }
  return "?";
}

const char* op_name(RedOp op) {
  switch (op) {
    case RedOp::sum: return "sum";
    case RedOp::prod: return "prod";
    case RedOp::min: return "min";
    case RedOp::max: return "max";
  }
  return "?";
}

namespace {

template <typename T>
void combine_out_typed(RedOp op, T* dst, const T* a, const T* b,
                       std::size_t n) {
  switch (op) {
    case RedOp::sum:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
      break;
    case RedOp::prod:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] * b[i];
      break;
    case RedOp::min:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::min(a[i], b[i]);
      break;
    case RedOp::max:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::max(a[i], b[i]);
      break;
  }
}

template <typename T>
void combine_typed(RedOp op, T* inout, const T* in, std::size_t n) {
  switch (op) {
    case RedOp::sum:
      for (std::size_t i = 0; i < n; ++i) inout[i] += in[i];
      break;
    case RedOp::prod:
      for (std::size_t i = 0; i < n; ++i) inout[i] *= in[i];
      break;
    case RedOp::min:
      for (std::size_t i = 0; i < n; ++i) inout[i] = std::min(inout[i], in[i]);
      break;
    case RedOp::max:
      for (std::size_t i = 0; i < n; ++i) inout[i] = std::max(inout[i], in[i]);
      break;
  }
}

}  // namespace

void combine(RedOp op, Dtype d, void* inout, const void* in,
             std::size_t count) {
  SRM_CHECK(inout != nullptr && in != nullptr);
  switch (d) {
    case Dtype::f64:
      combine_typed(op, static_cast<double*>(inout),
                    static_cast<const double*>(in), count);
      break;
    case Dtype::f32:
      combine_typed(op, static_cast<float*>(inout),
                    static_cast<const float*>(in), count);
      break;
    case Dtype::i32:
      combine_typed(op, static_cast<std::int32_t*>(inout),
                    static_cast<const std::int32_t*>(in), count);
      break;
    case Dtype::i64:
      combine_typed(op, static_cast<std::int64_t*>(inout),
                    static_cast<const std::int64_t*>(in), count);
      break;
    case Dtype::kByte:
      SRM_CHECK_MSG(false, "combine over Dtype::kByte: reductions need a "
                           "numeric element type");
      break;
  }
}

void combine_out(RedOp op, Dtype d, void* dst, const void* a, const void* b,
                 std::size_t count) {
  SRM_CHECK(dst != nullptr && a != nullptr && b != nullptr);
  switch (d) {
    case Dtype::f64:
      combine_out_typed(op, static_cast<double*>(dst),
                        static_cast<const double*>(a),
                        static_cast<const double*>(b), count);
      break;
    case Dtype::f32:
      combine_out_typed(op, static_cast<float*>(dst),
                        static_cast<const float*>(a),
                        static_cast<const float*>(b), count);
      break;
    case Dtype::i32:
      combine_out_typed(op, static_cast<std::int32_t*>(dst),
                        static_cast<const std::int32_t*>(a),
                        static_cast<const std::int32_t*>(b), count);
      break;
    case Dtype::i64:
      combine_out_typed(op, static_cast<std::int64_t*>(dst),
                        static_cast<const std::int64_t*>(a),
                        static_cast<const std::int64_t*>(b), count);
      break;
    case Dtype::kByte:
      SRM_CHECK_MSG(false, "combine_out over Dtype::kByte: reductions need a "
                           "numeric element type");
      break;
  }
}

}  // namespace srm::coll
