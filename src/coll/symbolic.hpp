// sym::Transport: the shared symbolic transport runner.
//
// When a collective is called with symbolic Bufs, no rank allocates message
// storage: data is a coll::Payload digest (per-block checksum + sampled real
// window) and *timing* is produced by replaying the protocol's cost skeleton
// against the same machine models the real plane uses — chunked
// MemorySystem copy/combine charges inside each node, per-message sender
// overhead plus Network::inject (LogGP + NIC serialization) between nodes,
// over the internode tree the profile selects. Digests ride the last chunk
// of each hop, so a correct run produces exactly the block placement and
// (for movement ops) checksums a real-copy run would.
//
// Both backends drive the same runner with their own cost Profile: SRM uses
// its config's chunking and LAPI-ish per-message overhead; mini-MPI uses its
// per-call software overheads. Per-node coordination state is allocated
// lazily per (node, op) and freed when the op's last local participant
// finishes — memory stays O(nodes + active blocks) however large the
// modeled message is.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "coll/buf.hpp"
#include "coll/decision.hpp"
#include "coll/ops.hpp"
#include "coll/payload.hpp"
#include "coll/tree.hpp"
#include "machine/cluster.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/wait.hpp"

namespace srm::coll::sym {

/// The per-backend cost skeleton knobs.
struct Profile {
  /// Sender-side CPU overhead per network message (o).
  sim::Duration msg_overhead = sim::us(2);
  /// Pipeline granularity: chunk size for both network messages and
  /// intra-node staging copies.
  std::size_t chunk = 64 * 1024;
  /// Tree over nodes for bcast/reduce/barrier phases.
  TreeKind internode_tree = TreeKind::binomial;
};

class Transport {
 public:
  Transport(machine::Cluster& cluster, Profile p);
  ~Transport();  // out of line: NodeSt is incomplete here
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // All 8 ops over symbolic Bufs. Callers (backend v_* hooks) have already
  // validated the descriptors at the API boundary. bcast/reduce/allreduce
  // optionally take the backend's coll::Decision so the symbolic plane
  // replays the same algorithm (and internode tree) the real plane would
  // pick; without one they fall back to the Profile's defaults.
  sim::CoTask bcast(machine::TaskCtx& t, Buf buf, int root,
                    std::optional<Decision> dec = std::nullopt);
  sim::CoTask reduce(machine::TaskCtx& t, Buf send, Buf recv, RedOp op,
                     int root, std::optional<Decision> dec = std::nullopt);
  sim::CoTask allreduce(machine::TaskCtx& t, Buf send, Buf recv, RedOp op,
                        std::optional<Decision> dec = std::nullopt);
  sim::CoTask barrier(machine::TaskCtx& t);
  sim::CoTask scatter(machine::TaskCtx& t, Buf send, Buf recv, int root);
  sim::CoTask gather(machine::TaskCtx& t, Buf send, Buf recv, int root);
  sim::CoTask allgather(machine::TaskCtx& t, Buf send, Buf recv);
  sim::CoTask reduce_scatter(machine::TaskCtx& t, Buf send, Buf recv,
                             RedOp op);

 private:
  // Per-(node, op) coordination cell: created lazily by whoever touches it
  // first (a local participant or a remote delivery), destroyed by the last
  // local participant to finish.
  struct NodeOp;
  struct NodeSt;

  NodeOp& op_state(int node, std::uint64_t seq);
  void finish(int node, std::uint64_t seq, int nlocal);
  std::uint64_t next_seq(machine::TaskCtx& t);
  const Tree& tree(TreeKind kind, int root_node);

  // Core phase runners, generalized over nb = blocks each rank handles
  // (1 for the plain ops; nranks for allgather's distribution phase and
  // reduce_scatter's reduction phase). `src`/`out` are significant at the
  // root rank only; every rank writes its own user payload.
  sim::CoTask bcast_run(machine::TaskCtx& t, std::uint64_t seq, int root,
                        std::size_t nb, std::size_t bb, const Payload* src,
                        std::size_t s0, Payload* dst, std::size_t d0,
                        TreeKind tk);
  sim::CoTask reduce_run(machine::TaskCtx& t, std::uint64_t seq, int root,
                         std::size_t nb, std::size_t bb, Dtype d, RedOp op,
                         const Payload& send, std::size_t s0, Payload* out,
                         std::size_t o0, TreeKind tk);
  // Zoo cost runners: the ring / recursive-halving allreduce and the
  // scatter+allgather bcast replayed at block granularity over the leaders.
  sim::CoTask ring_allreduce_run(machine::TaskCtx& t, std::uint64_t seq,
                                 std::size_t bb, Dtype d, RedOp op,
                                 const Payload& send, std::size_t s0,
                                 Payload* dst, std::size_t d0);
  sim::CoTask rhalving_allreduce_run(machine::TaskCtx& t, std::uint64_t seq,
                                     std::size_t bb, Dtype d, RedOp op,
                                     const Payload& send, std::size_t s0,
                                     Payload* dst, std::size_t d0);
  sim::CoTask sa_bcast_run(machine::TaskCtx& t, std::uint64_t seq, int root,
                           std::size_t bb, const Payload* src, std::size_t s0,
                           Payload* dst, std::size_t d0);
  sim::CoTask scatter_run(machine::TaskCtx& t, std::uint64_t seq, int root,
                          std::size_t bb, const Payload* src, std::size_t s0,
                          Payload* recv, std::size_t r0);
  sim::CoTask gather_run(machine::TaskCtx& t, std::uint64_t seq, int root,
                         std::size_t bb, const Payload& send, std::size_t s0,
                         Payload* out, std::size_t o0);
  sim::CoTask barrier_run(machine::TaskCtx& t, std::uint64_t seq);

  machine::Cluster* cluster_;
  Profile p_;
  std::vector<std::uint64_t> seq_;                    // per-rank op sequence
  std::vector<std::unique_ptr<NodeSt>> nodes_;        // lazily created
  std::map<std::pair<int, int>, Tree> trees_;         // keyed (kind, root)
};

}  // namespace srm::coll::sym
