// Collectives: the abstract operation set shared by SRM and the mini-MPI
// baselines, so benchmarks, examples, and tests can swap implementations.
//
// One signature shape for the whole set, built on the coll::Buf descriptor
// (buf.hpp). The one rule: `Buf::count` is the number of `Buf::dtype`
// elements in ONE rank's block —
//  * bcast/reduce/allreduce: the block is the whole message;
//  * scatter/gather/allgather/reduce_scatter: the rooted/full side spans
//    nranks consecutive blocks (`Buf::block(r)` addresses rank r's), the
//    per-rank side is exactly one block.
// Untyped movement ops pass Dtype::kByte; reductions require a numeric
// Dtype. A Buf is either real (wraps memory) or symbolic (wraps Payload
// digests; transport is cost-modeled) — backends dispatch both uniformly.
//
// The public entry points are non-virtual: they validate the per-call
// invariants (root range, dtype/count agreement between send and recv,
// mode agreement, symbolic block-span bounds) at the API boundary, then
// forward to the protected v_* hooks a backend implements. Equal-block
// invariants live here, not deep inside protocol code. Violations throw
// coll::ValidationError (sig.hpp) naming the op, rank, and offending field.
//
// The same boundary is the observation point for per-call signatures: each
// entry derives a coll::CallSig and hands it to dispatch(), which (a)
// forwards it to an installed TraceSink (the sv verifier's recording shim)
// and (b) when obs tracing is on, wraps the backend task in a
// "coll.<op>" span carrying the signature as span args — so Chrome traces
// of different ranks can be diffed call-by-call.
#pragma once

#include <cstddef>
#include <string>

#include "coll/buf.hpp"
#include "coll/ops.hpp"
#include "coll/sig.hpp"
#include "machine/cluster.hpp"
#include "sim/task.hpp"

namespace srm::coll {

class Collectives {
 public:
  virtual ~Collectives() = default;

  /// Broadcast @p buf (one block) from @p root to every rank.
  sim::CoTask bcast(machine::TaskCtx& t, Buf buf, int root);

  /// Element-wise reduce of one block; @p recv significant at @p root only.
  sim::CoTask reduce(machine::TaskCtx& t, Buf send, Buf recv, RedOp op,
                     int root);
  /// Reduce + result on every rank.
  sim::CoTask allreduce(machine::TaskCtx& t, Buf send, Buf recv, RedOp op);

  sim::CoTask barrier(machine::TaskCtx& t);

  /// Root's @p send spans nranks blocks; every rank receives its block.
  sim::CoTask scatter(machine::TaskCtx& t, Buf send, Buf recv, int root);
  /// Every rank sends one block; root's @p recv spans nranks blocks.
  sim::CoTask gather(machine::TaskCtx& t, Buf send, Buf recv, int root);
  /// gather to everyone: @p recv spans nranks blocks on every rank.
  sim::CoTask allgather(machine::TaskCtx& t, Buf send, Buf recv);
  /// Element-wise reduce of nranks blocks (@p send spans them all); rank r
  /// keeps block r of the result in @p recv (one block).
  sim::CoTask reduce_scatter(machine::TaskCtx& t, Buf send, Buf recv,
                             RedOp op);

  /// Short human-readable implementation tag ("srm", "mpi/ibm", ...).
  virtual std::string label() const = 0;

  /// Install a per-call signature observer (the sv recording shim). Not
  /// owned; nullptr detaches. The sink sees every validated call, once per
  /// rank, before the backend task starts.
  void set_trace_sink(TraceSink* sink) noexcept { sink_ = sink; }
  TraceSink* trace_sink() const noexcept { return sink_; }

 protected:
  virtual sim::CoTask v_bcast(machine::TaskCtx& t, Buf buf, int root) = 0;
  virtual sim::CoTask v_reduce(machine::TaskCtx& t, Buf send, Buf recv,
                               RedOp op, int root) = 0;
  virtual sim::CoTask v_allreduce(machine::TaskCtx& t, Buf send, Buf recv,
                                  RedOp op) = 0;
  virtual sim::CoTask v_barrier(machine::TaskCtx& t) = 0;
  virtual sim::CoTask v_scatter(machine::TaskCtx& t, Buf send, Buf recv,
                                int root) = 0;
  virtual sim::CoTask v_gather(machine::TaskCtx& t, Buf send, Buf recv,
                               int root) = 0;
  virtual sim::CoTask v_allgather(machine::TaskCtx& t, Buf send, Buf recv) = 0;
  virtual sim::CoTask v_reduce_scatter(machine::TaskCtx& t, Buf send, Buf recv,
                                       RedOp op) = 0;

  /// Name of the algorithm the backend will run for @p sig (decision-table
  /// lookup for SRM, the fixed composition for mini-MPI). Called by
  /// dispatch() before the backend task starts; the name is recorded in the
  /// "coll.<op>" obs span args so traces show which zoo member ran. Return
  /// "" (the default) to record nothing.
  virtual std::string v_algo(const machine::TaskCtx& t,
                             const CallSig& sig) const {
    (void)t;
    (void)sig;
    return {};
  }

 private:
  /// Record @p sig with the sink, then return @p inner — wrapped in a
  /// span-opening coroutine when obs tracing is enabled, untouched (zero
  /// overhead beyond the sink call) otherwise.
  sim::CoTask dispatch(machine::TaskCtx& t, const CallSig& sig,
                       sim::CoTask inner);

  TraceSink* sink_ = nullptr;
};

}  // namespace srm::coll
