// Collectives: the abstract operation set shared by SRM and the mini-MPI
// baselines, so benchmarks, examples, and tests can swap implementations.
//
// One signature shape for the whole set:
//  * byte-oriented ops (bcast, scatter, gather, allgather) size data in
//    bytes — @p bytes_per is one rank's block for the personalized ops;
//  * element-oriented ops (reduce, allreduce, reduce_scatter) take an
//    element count + Dtype + RedOp, since the reduction needs the element
//    type anyway. reduce_scatter's @p count_per_rank is one rank's share.
#pragma once

#include <cstddef>
#include <string>

#include "coll/ops.hpp"
#include "machine/cluster.hpp"
#include "sim/task.hpp"

namespace srm::coll {

class Collectives {
 public:
  virtual ~Collectives() = default;

  virtual sim::CoTask bcast(machine::TaskCtx& t, void* buf, std::size_t bytes,
                            int root) = 0;
  virtual sim::CoTask reduce(machine::TaskCtx& t, const void* send,
                             void* recv, std::size_t count, Dtype d, RedOp op,
                             int root) = 0;
  virtual sim::CoTask allreduce(machine::TaskCtx& t, const void* send,
                                void* recv, std::size_t count, Dtype d,
                                RedOp op) = 0;
  virtual sim::CoTask barrier(machine::TaskCtx& t) = 0;

  // Personalized operation set (equal counts). @p bytes_per is one rank's
  // block.
  virtual sim::CoTask scatter(machine::TaskCtx& t, const void* send,
                              void* recv, std::size_t bytes_per,
                              int root) = 0;
  virtual sim::CoTask gather(machine::TaskCtx& t, const void* send,
                             void* recv, std::size_t bytes_per, int root) = 0;
  virtual sim::CoTask allgather(machine::TaskCtx& t, const void* send,
                                void* recv, std::size_t bytes_per) = 0;

  /// Element-wise reduce of nranks*@p count_per_rank elements; rank r keeps
  /// block r (@p count_per_rank elements) of the result in @p recv.
  virtual sim::CoTask reduce_scatter(machine::TaskCtx& t, const void* send,
                                     void* recv, std::size_t count_per_rank,
                                     Dtype d, RedOp op) = 0;

  /// Short human-readable implementation tag ("srm", "mpi/ibm", ...).
  virtual std::string label() const = 0;
};

}  // namespace srm::coll
