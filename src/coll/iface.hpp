// Collectives: the abstract operation set shared by SRM and the mini-MPI
// baselines, so benchmarks and examples can swap implementations.
#pragma once

#include <cstddef>
#include <string>

#include "coll/ops.hpp"
#include "machine/cluster.hpp"
#include "sim/task.hpp"

namespace srm::coll {

class Collectives {
 public:
  virtual ~Collectives() = default;

  virtual sim::CoTask bcast(machine::TaskCtx& t, void* buf, std::size_t bytes,
                            int root) = 0;
  virtual sim::CoTask reduce(machine::TaskCtx& t, const void* send,
                             void* recv, std::size_t count, Dtype d, RedOp op,
                             int root) = 0;
  virtual sim::CoTask allreduce(machine::TaskCtx& t, const void* send,
                                void* recv, std::size_t count, Dtype d,
                                RedOp op) = 0;
  virtual sim::CoTask barrier(machine::TaskCtx& t) = 0;

  // Extended operation set (equal counts). @p bytes_per is one rank's block.
  virtual sim::CoTask scatter(machine::TaskCtx& t, const void* send,
                              void* recv, std::size_t bytes_per,
                              int root) = 0;
  virtual sim::CoTask gather(machine::TaskCtx& t, const void* send,
                             void* recv, std::size_t bytes_per, int root) = 0;
  virtual sim::CoTask allgather(machine::TaskCtx& t, const void* send,
                                void* recv, std::size_t bytes_per) = 0;

  virtual std::string name() const = 0;
};

}  // namespace srm::coll
