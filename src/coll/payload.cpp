#include "coll/payload.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace srm::coll {

namespace {

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, const std::byte* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= kFnvPrime;
  }
  return h;
}

// Bytes a Payload accounts against the global live-digest counter.
std::uint64_t& live_counter() {
  static std::uint64_t live = 0;
  return live;
}

// Encode the pattern element for (seed, gblock, i) into up to 8 bytes.
std::size_t encode_element(Dtype d, std::uint64_t seed, std::size_t gblock,
                           std::size_t i, std::byte out[8]) {
  std::uint64_t v = pattern_value(seed, gblock, i);
  switch (d) {
    case Dtype::f64: {
      double x = static_cast<double>(v);
      std::memcpy(out, &x, 8);
      return 8;
    }
    case Dtype::f32: {
      float x = static_cast<float>(v);
      std::memcpy(out, &x, 4);
      return 4;
    }
    case Dtype::i32: {
      std::int32_t x = static_cast<std::int32_t>(v);
      std::memcpy(out, &x, 4);
      return 4;
    }
    case Dtype::i64: {
      std::int64_t x = static_cast<std::int64_t>(v);
      std::memcpy(out, &x, 8);
      return 8;
    }
    case Dtype::kByte: {
      out[0] = static_cast<std::byte>(v & 0xff);
      return 1;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t pattern_value(std::uint64_t seed, std::size_t gblock,
                            std::size_t i) {
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull +
                    gblock * 0xBF58476D1CE4E5B9ull +
                    i * 0x94D049BB133111EBull;
  x ^= x >> 31;
  x *= 0xD6E8FEB86659FD93ull;
  x ^= x >> 27;
  // Small integers: exactly representable in every Dtype, and sums/products
  // over them stay association-order independent (see payload.hpp).
  return x % 9 + 1;
}

Payload::Payload(std::size_t nblocks, std::size_t block_bytes)
    : block_bytes_(block_bytes), blocks_(nblocks) {
  live_counter() += blocks_.size() * sizeof(Block);
}

Payload::Payload(const Payload& o)
    : block_bytes_(o.block_bytes_), blocks_(o.blocks_) {
  live_counter() += blocks_.size() * sizeof(Block);
}

Payload::Payload(Payload&& o) noexcept
    : block_bytes_(o.block_bytes_), blocks_(std::move(o.blocks_)) {
  o.blocks_.clear();
  o.block_bytes_ = 0;
}

Payload& Payload::operator=(const Payload& o) {
  if (this != &o) {
    live_counter() -= blocks_.size() * sizeof(Block);
    block_bytes_ = o.block_bytes_;
    blocks_ = o.blocks_;
    live_counter() += blocks_.size() * sizeof(Block);
  }
  return *this;
}

Payload& Payload::operator=(Payload&& o) noexcept {
  if (this != &o) {
    live_counter() -= blocks_.size() * sizeof(Block);
    block_bytes_ = o.block_bytes_;
    blocks_ = std::move(o.blocks_);
    o.blocks_.clear();
    o.block_bytes_ = 0;
  }
  return *this;
}

Payload::~Payload() { live_counter() -= blocks_.size() * sizeof(Block); }

std::uint64_t Payload::live_bytes() { return live_counter(); }

void Payload::fill_pattern(Dtype d, std::uint64_t seed,
                           std::size_t first_global) {
  const std::size_t esize = dtype_size(d);
  SRM_CHECK(esize > 0 && block_bytes_ % esize == 0);
  const std::size_t elems = block_bytes_ / esize;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    Block& blk = blocks_[b];
    std::uint64_t h = kFnvBasis;
    std::size_t off = 0;
    std::byte enc[8];
    for (std::size_t i = 0; i < elems; ++i) {
      std::size_t n = encode_element(d, seed, first_global + b, i, enc);
      h = fnv1a(h, enc, n);
      if (off < kWindow) {
        std::size_t take = std::min(n, kWindow - off);
        std::memcpy(blk.win.data() + off, enc, take);
        off += take;
      }
    }
    blk.sum = h;
  }
}

Payload Payload::digest_of(const void* data, Dtype d, std::size_t nblocks,
                           std::size_t block_elems) {
  const std::size_t esize = dtype_size(d);
  Payload p(nblocks, block_elems * esize);
  const auto* base = static_cast<const std::byte*>(data);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::byte* blk = base + b * p.block_bytes_;
    Block& out = p.blocks_[b];
    out.sum = fnv1a(kFnvBasis, blk, p.block_bytes_);
    std::memcpy(out.win.data(), blk, p.win_len());
  }
  return p;
}

void Payload::copy_blocks(const Payload& src, std::size_t src_first,
                          std::size_t dst_first, std::size_t n) {
  SRM_CHECK_MSG(src.block_bytes_ == block_bytes_,
                "payload block size mismatch: " << src.block_bytes_
                                                << " != " << block_bytes_);
  SRM_CHECK(src_first + n <= src.blocks_.size());
  SRM_CHECK(dst_first + n <= blocks_.size());
  for (std::size_t i = 0; i < n; ++i) {
    blocks_[dst_first + i] = src.blocks_[src_first + i];
  }
}

void Payload::combine_blocks(const Payload& src, std::size_t src_first,
                             std::size_t dst_first, std::size_t n, Dtype d,
                             RedOp op) {
  SRM_CHECK(src_first + n <= src.blocks_.size());
  SRM_CHECK(dst_first + n <= blocks_.size());
  SRM_CHECK(src.block_bytes_ == block_bytes_);
  const std::size_t esize = dtype_size(d);
  SRM_CHECK(d != Dtype::kByte && block_bytes_ % esize == 0);
  const std::size_t win_elems = win_len() / esize;
  for (std::size_t b = 0; b < n; ++b) {
    Block& dst = blocks_[dst_first + b];
    const Block& in = src.blocks_[src_first + b];
    combine(op, d, dst.win.data(), in.win.data(), win_elems);
    // Commutative + associative mix: equal whatever order the tree combines
    // contributions in, so symbolic runs stay schedule-independent.
    dst.sum += in.sum;
  }
}

bool Payload::identical_to(const Payload& o) const {
  if (blocks_.size() != o.blocks_.size() || block_bytes_ != o.block_bytes_) {
    return false;
  }
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].sum != o.blocks_[b].sum) return false;
    if (std::memcmp(blocks_[b].win.data(), o.blocks_[b].win.data(),
                    win_len()) != 0) {
      return false;
    }
  }
  return true;
}

bool Payload::windows_equal(const Payload& o, Dtype) const {
  if (blocks_.size() != o.blocks_.size() || block_bytes_ != o.block_bytes_) {
    return false;
  }
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    if (std::memcmp(blocks_[b].win.data(), o.blocks_[b].win.data(),
                    win_len()) != 0) {
      return false;
    }
  }
  return true;
}

void fill_pattern(void* data, Dtype d, std::size_t nblocks,
                  std::size_t block_elems, std::uint64_t seed,
                  std::size_t first_global) {
  const std::size_t esize = dtype_size(d);
  auto* base = static_cast<std::byte*>(data);
  for (std::size_t b = 0; b < nblocks; ++b) {
    std::byte* blk = base + b * block_elems * esize;
    for (std::size_t i = 0; i < block_elems; ++i) {
      std::byte enc[8];
      std::size_t n = encode_element(d, seed, first_global + b, i, enc);
      std::memcpy(blk + i * esize, enc, n);
    }
  }
}

}  // namespace srm::coll
