// coll::Buf: the one buffer descriptor every collective operation takes.
//
// The one rule: `count` is the number of `dtype` elements in ONE rank's
// block. For the non-personalized ops (bcast/reduce/allreduce) the block is
// the whole message; for the personalized ops (scatter/gather/allgather/
// reduce_scatter) the rooted/full side must provide nranks consecutive
// blocks and `block(r)` addresses rank r's. There are no parallel
// `bytes_per` / `count_per_rank` conventions any more — untyped data is
// simply `Dtype::kByte`.
//
// A Buf is either *real* (wraps caller memory; protocols memcpy through it)
// or *symbolic* (wraps a span of coll::Payload digest blocks; transport is
// cost-modeled and the digests move instead of bytes). Both kinds flow
// through the identical Collectives signatures, so benches, tests, and the
// chk/mc hooks do not care which plane a run uses.
#pragma once

#include <cstddef>
#include <cstdint>

#include "coll/ops.hpp"
#include "coll/payload.hpp"

namespace srm::coll {

struct Buf {
  void* data = nullptr;      // real mode: base of block 0
  Payload* pay = nullptr;    // symbolic mode: digest store (caller-owned)
  std::size_t block0 = 0;    // symbolic mode: this Buf's first block in *pay
  Dtype dtype = Dtype::kByte;
  std::size_t count = 0;     // elements in ONE rank block

  bool symbolic() const noexcept { return pay != nullptr; }
  std::size_t esize() const noexcept { return dtype_size(dtype); }
  /// Bytes in one rank block.
  std::size_t block_bytes() const noexcept { return count * esize(); }

  // ---- factories ----

  /// Typed view of caller memory. The const overload is for send-side
  /// buffers: the descriptor is shared with receive paths, but no op writes
  /// through a send Buf.
  static Buf wrap(void* p, Dtype d, std::size_t count) noexcept {
    return Buf{p, nullptr, 0, d, count};
  }
  static Buf wrap(const void* p, Dtype d, std::size_t count) noexcept {
    return Buf{const_cast<void*>(p), nullptr, 0, d, count};
  }
  /// Untyped view: @p n bytes of Dtype::kByte elements.
  static Buf bytes(void* p, std::size_t n) noexcept {
    return wrap(p, Dtype::kByte, n);
  }
  static Buf bytes(const void* p, std::size_t n) noexcept {
    return wrap(p, Dtype::kByte, n);
  }
  /// Symbolic view: blocks [block0, ...) of @p pay, each @p count elements.
  static Buf symbolic(Payload& pay, Dtype d, std::size_t count,
                      std::size_t block0 = 0) noexcept {
    return Buf{nullptr, &pay, block0, d, count};
  }

  // ---- v-variant-ready block addressing ----

  /// Real mode: the start of rank @p r's block.
  void* block(int r) const noexcept {
    return static_cast<std::byte*>(data) +
           static_cast<std::size_t>(r) * block_bytes();
  }
  /// Symbolic mode: the Payload block index of rank @p r's block.
  std::size_t block_index(int r) const noexcept {
    return block0 + static_cast<std::size_t>(r);
  }
};

/// Dtype-deducing factories: `coll::of(v.data(), v.size())`.
inline Buf of(double* p, std::size_t n) { return Buf::wrap(p, Dtype::f64, n); }
inline Buf of(const double* p, std::size_t n) {
  return Buf::wrap(p, Dtype::f64, n);
}
inline Buf of(float* p, std::size_t n) { return Buf::wrap(p, Dtype::f32, n); }
inline Buf of(const float* p, std::size_t n) {
  return Buf::wrap(p, Dtype::f32, n);
}
inline Buf of(std::int32_t* p, std::size_t n) {
  return Buf::wrap(p, Dtype::i32, n);
}
inline Buf of(const std::int32_t* p, std::size_t n) {
  return Buf::wrap(p, Dtype::i32, n);
}
inline Buf of(std::int64_t* p, std::size_t n) {
  return Buf::wrap(p, Dtype::i64, n);
}
inline Buf of(const std::int64_t* p, std::size_t n) {
  return Buf::wrap(p, Dtype::i64, n);
}

}  // namespace srm::coll
