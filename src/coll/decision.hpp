// coll::Decision / coll::DecisionTable — the single algorithm-selection
// surface for collective dispatch.
//
// The paper hardcodes its crossover points (64 KB bcast protocol switch,
// 16 KB allreduce recursive-doubling limit, 16 KB single-copy crossover);
// the tuning literature (PAPERS.md: "Fast Tuning of Intra-Cluster Collective
// Communications") shows those points must be measured per machine. A
// DecisionTable is that measurement, persisted: per operation, a sorted list
// of {min_bytes -> Decision} rows, where a Decision names the algorithm, the
// mapped (single-copy) flag, and the inter-node tree shape. Backends look up
// decide(op, bytes) once per call and route accordingly.
//
// Sources of a table, in precedence order (core/communicator.cpp):
//   1. an explicit SrmConfig::decisions (tests / the tuner forcing a path);
//   2. the SRM_DECISIONS env var naming a JSON file (a tuner artifact);
//   3. the builtin table for the machine profile, adjusted by any legacy
//      SrmConfig crossover knobs that deviate from their defaults (so code
//      written against the old scattered fields keeps its exact semantics).
//
// The builtin ibm_sp() table re-expresses the paper's constants verbatim:
// with a default SrmConfig on the SP profile, dispatch is byte-identical to
// the pre-table code. The modern_smp() builtin is the tuner's output for the
// hierarchical profile (bench/tune.cpp regenerates it).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "coll/sig.hpp"
#include "coll/tree.hpp"

namespace srm::coll {

/// The algorithm zoo. `staged` and `direct` are the paper's two protocols
/// (shared-buffer staging vs. address-exchange direct puts); `rd` and
/// `pipeline` its two allreduce modes; the rest are the zoo additions.
enum class Algo : std::uint8_t {
  staged,      ///< shared-buffer staging path (bcast_small / reduce pipeline)
  direct,      ///< large-protocol direct user-buffer puts (bcast_large)
  rd,          ///< recursive-doubling allreduce between node leaders
  pipeline,    ///< pipelined reduce+bcast allreduce (Fig. 5)
  ring,        ///< ring reduce-scatter + ring allgather allreduce
  rhalving,    ///< recursive-halving reduce-scatter + doubling allgather
  scatter_ag,  ///< scatter + allgather broadcast
};
inline constexpr int kAlgoCount = 7;
const char* algo_name(Algo a);
/// Parse @p s into @p out; false (out untouched) when unknown.
bool algo_from_name(std::string_view s, Algo& out);

/// One dispatch outcome: which algorithm, whether the intra-node phases use
/// the single-copy cross-mapped variants, and the inter-node tree shape.
struct Decision {
  Algo algo = Algo::staged;
  bool mapped = false;
  TreeKind internode = TreeKind::binomial;
  bool operator==(const Decision&) const = default;
};

/// Per-op size-banded decisions. Rows are kept sorted ascending by
/// min_bytes; decide() returns the last row whose min_bytes <= bytes (or a
/// default Decision when the op has no rows).
class DecisionTable {
 public:
  struct Row {
    std::size_t min_bytes = 0;
    Decision d;
    bool operator==(const Row&) const = default;
  };

  int version = 1;
  std::string profile;  ///< machine profile the table was tuned for

  /// Insert (or replace, when min_bytes collides) a row for @p op.
  void set(CollKind op, std::size_t min_bytes, Decision d);
  Decision decide(CollKind op, std::size_t bytes) const;
  const std::vector<Row>& rows(CollKind op) const {
    return ops_[static_cast<std::size_t>(op)];
  }
  bool empty() const;

  std::string to_json() const;
  /// Throws util::CheckError on malformed input or unknown names.
  static DecisionTable from_json(std::string_view text);
  /// File round-trip (load throws on unreadable/malformed files).
  void save(const std::string& path) const;
  static DecisionTable load(const std::string& path);

  /// Builtin tables. ibm_sp() is the paper's constants; modern_smp() is the
  /// tuner's output for the hierarchical profile. builtin() returns nullptr
  /// for unknown profile names.
  static DecisionTable ibm_sp();
  static DecisionTable modern_smp();
  static const DecisionTable* builtin(std::string_view profile);

  bool operator==(const DecisionTable&) const = default;

 private:
  std::array<std::vector<Row>, 8> ops_;  // indexed by CollKind
};

}  // namespace srm::coll
