// coll::CallSig — the per-call collective signature observed at the
// Collectives NVI boundary, plus the structured ValidationError thrown when
// a call violates the boundary invariants and the TraceSink hook the sv
// verifier's recording shim plugs into.
//
// A signature is the tuple {op, dtype, elements-per-rank-block, root, RedOp,
// payload plane} that must be identical across ranks for the paper's
// handshakes to line up. It is derived from the *always-significant* side of
// each operation (the side every rank must describe consistently): the recv
// block for scatter/reduce_scatter, the send block for gather/allgather/
// reduce/allreduce, the one buffer for bcast, nothing for barrier.
//
// Consumers:
//  * srm::sv records one CallSig per rank per call and lockstep-compares
//    the per-rank sequences (src/sv/trace.hpp);
//  * obs spans at the dispatch boundary carry args_json() so Chrome traces
//    of different ranks can be diffed call-by-call;
//  * boundary validation failures carry the op / rank / offending field as
//    data, so tests and callers match on structure instead of message text.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "coll/ops.hpp"
#include "util/check.hpp"

namespace srm::coll {

/// The eight operations of the Collectives interface.
enum class CollKind : std::uint8_t {
  bcast,
  reduce,
  allreduce,
  barrier,
  scatter,
  gather,
  allgather,
  reduce_scatter,
};
const char* coll_name(CollKind k);

/// Which transport plane a call's descriptors select. Barrier carries no
/// payload and is always Plane::none.
enum class Plane : std::uint8_t { real, symbolic, none };
const char* plane_name(Plane p);

inline constexpr int kNoRoot = -1;  ///< unrooted ops (allreduce, barrier, ...)
inline constexpr int kNoRed = -1;   ///< non-reductions

struct CallSig {
  CollKind op = CollKind::barrier;
  Dtype dtype = Dtype::kByte;
  std::size_t count = 0;  ///< elements in one rank block
  int root = kNoRoot;
  int red = kNoRed;  ///< static_cast<int>(RedOp) or kNoRed
  Plane plane = Plane::none;

  bool operator==(const CallSig&) const = default;

  /// "reduce(f64 x64, sum, root 0, real)" — the diagnostic rendering.
  std::string to_string() const;
  /// JSON object for obs span args: {"op":"reduce","dtype":"f64",...}.
  std::string args_json() const;
};

/// Boundary-validation failure: which op, on which rank, which field of the
/// call was wrong. Derives from util::CheckError so existing catch sites
/// keep working; the structured fields are for sv / tests / callers that
/// want to match on diagnostics instead of message text.
///
/// Field names used by the boundary checks in iface.cpp:
///   "root"        root outside [0, nranks)
///   "dtype"       send/recv element types disagree, or a bad Dtype
///   "count"       send/recv per-rank block counts disagree
///   "numeric"     byte-typed reduction
///   "mode"        real and symbolic descriptors mixed in one call
///   "data"        null data pointer on a significant real descriptor
///   "blocks"      symbolic block span exceeds the payload's digest store
///   "block_bytes" payload block size does not match the descriptor's
class ValidationError : public util::CheckError {
 public:
  ValidationError(CollKind op, int rank, std::string field,
                  const std::string& what)
      : util::CheckError(what),
        op_(op),
        rank_(rank),
        field_(std::move(field)) {}

  CollKind op() const noexcept { return op_; }
  int rank() const noexcept { return rank_; }
  const std::string& field() const noexcept { return field_; }

 private:
  CollKind op_;
  int rank_;
  std::string field_;
};

/// Observer of the signature stream at the Collectives NVI boundary. One
/// sink per Collectives instance; installed with set_trace_sink. Called
/// after validation, before dispatch, once per rank per call.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_call(int rank, int nranks, const CallSig& sig) = 0;
};

}  // namespace srm::coll
