// Payload: the symbolic stand-in for collective message data.
//
// A mega-scale run (4096 nodes x 64 tasks, megabyte messages) cannot afford
// real per-rank buffers: that is O(ranks x message size) — terabytes. In
// symbolic mode each rank block is represented by a fixed-size digest:
//
//  * `sum`  — FNV-1a checksum over the block's full byte image. Exact for
//    every data-*movement* op (bcast/scatter/gather/allgather): a correct
//    protocol must deliver the identical byte image, so the checksum of a
//    symbolic run equals the checksum of a real-copy run block for block.
//  * `win`  — the first `kWindow` real bytes of the block, carried and
//    combined element-exactly. Reductions cannot compose checksums
//    (checksum(a+b) is not derivable from checksum(a), checksum(b)), so the
//    window is the element-exact sample that keeps reduce/allreduce/
//    reduce_scatter testable against a real-copy run; the checksum of a
//    combined block degrades to a commutative mix that still distinguishes
//    "right inputs" from "wrong inputs" deterministically.
//
// Memory is O(active blocks): ~72 bytes per rank block, independent of the
// modeled message size. `live_bytes()` exposes the global footprint so tests
// can assert the ceiling.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "coll/ops.hpp"

namespace srm::coll {

class Payload {
 public:
  /// Bytes of real data carried per block (the sampled memcpy window).
  static constexpr std::size_t kWindow = 64;

  struct Block {
    std::uint64_t sum = kEmptySum;         // FNV-1a of the full block image
    std::array<std::byte, kWindow> win{};  // real first bytes of the block
  };

  Payload() = default;
  /// @p nblocks rank blocks, each modeling @p block_bytes bytes of data.
  Payload(std::size_t nblocks, std::size_t block_bytes);
  Payload(const Payload&);
  Payload(Payload&&) noexcept;
  Payload& operator=(const Payload&);
  Payload& operator=(Payload&&) noexcept;
  ~Payload();

  std::size_t nblocks() const noexcept { return blocks_.size(); }
  std::size_t block_bytes() const noexcept { return block_bytes_; }
  std::size_t win_len() const noexcept {
    return block_bytes_ < kWindow ? block_bytes_ : kWindow;
  }

  Block& block(std::size_t i) { return blocks_.at(i); }
  const Block& block(std::size_t i) const { return blocks_.at(i); }

  /// Fill every block with the deterministic test pattern: block `b` gets
  /// the element stream pattern_value(seed, first_global + b, i) encoded as
  /// @p d. Use coll::fill_pattern to produce the identical byte image in a
  /// real buffer.
  void fill_pattern(Dtype d, std::uint64_t seed, std::size_t first_global = 0);

  /// Digest a real buffer: @p nblocks consecutive blocks of @p block_elems
  /// elements each starting at @p data.
  static Payload digest_of(const void* data, Dtype d, std::size_t nblocks,
                           std::size_t block_elems);

  /// blocks [dst_first, dst_first+n) = src blocks [src_first, src_first+n).
  void copy_blocks(const Payload& src, std::size_t src_first,
                   std::size_t dst_first, std::size_t n);

  /// Element-exact window combine + commutative checksum mix:
  /// block dst_first+i = op(block dst_first+i, src block src_first+i).
  void combine_blocks(const Payload& src, std::size_t src_first,
                      std::size_t dst_first, std::size_t n, Dtype d, RedOp op);

  bool identical_to(const Payload& o) const;      // sums + windows
  bool windows_equal(const Payload& o, Dtype d) const;  // windows only

  /// Global digest footprint (bytes) of all live Payload objects — what a
  /// symbolic run actually allocates in place of rank payload buffers.
  static std::uint64_t live_bytes();

 private:
  static constexpr std::uint64_t kEmptySum = 0xcbf29ce484222325ull;  // FNV basis

  std::size_t block_bytes_ = 0;
  std::vector<Block> blocks_;
};

/// The deterministic small-integer element at position @p i of global block
/// @p gblock for @p seed. Values are small integers (exactly representable,
/// sum/prod/min/max over them is association-order independent in every
/// Dtype), so symbolic window combines match real-buffer combines bitwise.
std::uint64_t pattern_value(std::uint64_t seed, std::size_t gblock,
                            std::size_t i);

/// Fill a real buffer with the same pattern Payload::fill_pattern models:
/// @p nblocks blocks of @p block_elems elements each.
void fill_pattern(void* data, Dtype d, std::size_t nblocks,
                  std::size_t block_elems, std::uint64_t seed,
                  std::size_t first_global = 0);

}  // namespace srm::coll
