#include "coll/decision.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace srm::coll {

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::staged: return "staged";
    case Algo::direct: return "direct";
    case Algo::rd: return "rd";
    case Algo::pipeline: return "pipeline";
    case Algo::ring: return "ring";
    case Algo::rhalving: return "rhalving";
    case Algo::scatter_ag: return "scatter_ag";
  }
  return "?";
}

bool algo_from_name(std::string_view s, Algo& out) {
  for (int i = 0; i < kAlgoCount; ++i) {
    auto a = static_cast<Algo>(i);
    if (s == algo_name(a)) {
      out = a;
      return true;
    }
  }
  return false;
}

namespace {

constexpr std::array<CollKind, 8> kAllOps = {
    CollKind::bcast,     CollKind::reduce,    CollKind::allreduce,
    CollKind::barrier,   CollKind::scatter,   CollKind::gather,
    CollKind::allgather, CollKind::reduce_scatter,
};

bool coll_from_name(std::string_view s, CollKind& out) {
  for (CollKind k : kAllOps) {
    if (s == coll_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

void DecisionTable::set(CollKind op, std::size_t min_bytes, Decision d) {
  auto& rows = ops_[static_cast<std::size_t>(op)];
  auto it = std::lower_bound(
      rows.begin(), rows.end(), min_bytes,
      [](const Row& r, std::size_t b) { return r.min_bytes < b; });
  if (it != rows.end() && it->min_bytes == min_bytes) {
    it->d = d;
  } else {
    rows.insert(it, Row{min_bytes, d});
  }
}

Decision DecisionTable::decide(CollKind op, std::size_t bytes) const {
  const auto& rows = ops_[static_cast<std::size_t>(op)];
  Decision d;
  for (const Row& r : rows) {
    if (r.min_bytes > bytes) break;
    d = r.d;
  }
  return d;
}

bool DecisionTable::empty() const {
  for (const auto& rows : ops_) {
    if (!rows.empty()) return false;
  }
  return true;
}

// ---- JSON ------------------------------------------------------------------
//
// The format is a strict subset of JSON (objects, arrays, strings, unsigned
// integers, booleans); the writer below and the tuner are the only producers,
// so the hand-rolled reader stays honest by round-tripping in the tests.

std::string DecisionTable::to_json() const {
  std::ostringstream os;
  os << "{\n  \"version\": " << version << ",\n  \"profile\": \"" << profile
     << "\",\n  \"ops\": {";
  bool first_op = true;
  for (CollKind k : kAllOps) {
    const auto& rows = ops_[static_cast<std::size_t>(k)];
    if (rows.empty()) continue;
    os << (first_op ? "" : ",") << "\n    \"" << coll_name(k) << "\": [";
    first_op = false;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      os << (i == 0 ? "" : ",") << "\n      {\"min_bytes\": " << r.min_bytes
         << ", \"algo\": \"" << algo_name(r.d.algo)
         << "\", \"mapped\": " << (r.d.mapped ? "true" : "false")
         << ", \"internode\": \"" << tree_kind_name(r.d.internode) << "\"}";
    }
    os << "\n    ]";
  }
  os << "\n  }\n}\n";
  return os.str();
}

namespace {

/// Minimal recursive-descent scanner for the subset the writer emits.
struct Scan {
  std::string_view s;
  std::size_t i = 0;

  [[noreturn]] void die(const std::string& why) const {
    std::ostringstream os;
    os << "DecisionTable JSON at byte " << i << ": " << why;
    throw util::CheckError(os.str());
  }
  void ws() {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])) != 0) {
      ++i;
    }
  }
  bool peek(char c) {
    ws();
    return i < s.size() && s[i] == c;
  }
  void expect(char c) {
    ws();
    if (i >= s.size() || s[i] != c) die(std::string("expected '") + c + "'");
    ++i;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (i < s.size() && s[i] != '"') out.push_back(s[i++]);
    if (i >= s.size()) die("unterminated string");
    ++i;
    return out;
  }
  std::uint64_t number() {
    ws();
    std::size_t start = i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0)
      ++i;
    if (i == start) die("expected a number");
    std::uint64_t v = 0;
    for (std::size_t j = start; j < i; ++j) {
      v = v * 10 + static_cast<std::uint64_t>(s[j] - '0');
    }
    return v;
  }
  bool boolean() {
    ws();
    if (s.substr(i, 4) == "true") {
      i += 4;
      return true;
    }
    if (s.substr(i, 5) == "false") {
      i += 5;
      return false;
    }
    die("expected true/false");
  }
};

}  // namespace

DecisionTable DecisionTable::from_json(std::string_view text) {
  DecisionTable t;
  Scan sc{text};
  sc.expect('{');
  bool first = true;
  while (!sc.peek('}')) {
    if (!first) sc.expect(',');
    first = false;
    std::string key = sc.string();
    sc.expect(':');
    if (key == "version") {
      t.version = static_cast<int>(sc.number());
    } else if (key == "profile") {
      t.profile = sc.string();
    } else if (key == "ops") {
      sc.expect('{');
      bool first_op = true;
      while (!sc.peek('}')) {
        if (!first_op) sc.expect(',');
        first_op = false;
        std::string op_name = sc.string();
        CollKind op;
        if (!coll_from_name(op_name, op)) sc.die("unknown op " + op_name);
        sc.expect(':');
        sc.expect('[');
        bool first_row = true;
        bool have_prev = false;
        std::size_t prev_min = 0;
        while (!sc.peek(']')) {
          if (!first_row) sc.expect(',');
          first_row = false;
          sc.expect('{');
          std::size_t min_bytes = 0;
          Decision d;
          bool first_field = true;
          while (!sc.peek('}')) {
            if (!first_field) sc.expect(',');
            first_field = false;
            std::string f = sc.string();
            sc.expect(':');
            if (f == "min_bytes") {
              min_bytes = sc.number();
            } else if (f == "algo") {
              std::string a = sc.string();
              if (!algo_from_name(a, d.algo)) sc.die("unknown algo " + a);
            } else if (f == "mapped") {
              d.mapped = sc.boolean();
            } else if (f == "internode") {
              std::string k = sc.string();
              if (!tree_kind_from_name(k, d.internode))
                sc.die("unknown tree kind " + k);
            } else {
              sc.die("unknown row field " + f);
            }
          }
          sc.expect('}');
          // set() silently replaces a colliding row, which is the right
          // API for programmatic edits but hides authoring mistakes in a
          // loaded file: a duplicate or out-of-order min_bytes means one
          // row silently wins. Reject those with a structured error.
          if (have_prev && min_bytes <= prev_min) {
            std::ostringstream os;
            os << "rows for \"" << op_name
               << "\" must be strictly ascending in min_bytes: " << min_bytes
               << " follows " << prev_min;
            throw ValidationError(op, -1, "min_bytes", os.str());
          }
          have_prev = true;
          prev_min = min_bytes;
          t.set(op, min_bytes, d);
        }
        sc.expect(']');
      }
      sc.expect('}');
    } else {
      sc.die("unknown key " + key);
    }
  }
  sc.expect('}');
  SRM_CHECK_MSG(t.version == 1,
                "DecisionTable version " << t.version << " not supported");
  return t;
}

void DecisionTable::save(const std::string& path) const {
  std::ofstream f(path);
  SRM_CHECK_MSG(f.good(), "cannot write decision table to " << path);
  f << to_json();
}

DecisionTable DecisionTable::load(const std::string& path) {
  std::ifstream f(path);
  SRM_CHECK_MSG(f.good(), "cannot read decision table from " << path);
  std::ostringstream os;
  os << f.rdbuf();
  return from_json(os.str());
}

// ---- builtins --------------------------------------------------------------

DecisionTable DecisionTable::ibm_sp() {
  // The paper's constants, verbatim (§2.4 + the single-copy crossover):
  //   bcast: staged shared-buffer protocol up to 64 KB, direct beyond;
  //   allreduce: recursive doubling up to 16 KB, pipelined reduce+bcast
  //     beyond; everything else staged;
  //   mapped column: single-copy from 16 KB up (only effective when
  //     SrmConfig::single_copy opts in — the staged path is the default).
  // With a default SrmConfig this table reproduces pre-table dispatch
  // byte-for-byte.
  DecisionTable t;
  t.profile = "ibm_sp";
  auto bin = TreeKind::binomial;
  t.set(CollKind::bcast, 0, {Algo::staged, false, bin});
  t.set(CollKind::bcast, 16 * 1024, {Algo::staged, true, bin});
  t.set(CollKind::bcast, 64 * 1024 + 1, {Algo::direct, true, bin});
  t.set(CollKind::reduce, 0, {Algo::staged, false, bin});
  t.set(CollKind::reduce, 16 * 1024, {Algo::staged, true, bin});
  // The allreduce mapped column is advisory only: rd never maps and the
  // composite algorithms consult their sub-operations' rows instead.
  t.set(CollKind::allreduce, 0, {Algo::rd, false, bin});
  t.set(CollKind::allreduce, 16 * 1024 + 1, {Algo::pipeline, false, bin});
  t.set(CollKind::barrier, 0, {Algo::staged, false, bin});
  t.set(CollKind::scatter, 0, {Algo::staged, false, bin});
  t.set(CollKind::scatter, 16 * 1024, {Algo::staged, true, bin});
  t.set(CollKind::gather, 0, {Algo::staged, false, bin});
  t.set(CollKind::gather, 16 * 1024, {Algo::staged, true, bin});
  t.set(CollKind::allgather, 0, {Algo::staged, false, bin});
  t.set(CollKind::allgather, 16 * 1024, {Algo::staged, true, bin});
  t.set(CollKind::reduce_scatter, 0, {Algo::staged, false, bin});
  t.set(CollKind::reduce_scatter, 16 * 1024, {Algo::staged, true, bin});
  return t;
}

DecisionTable DecisionTable::modern_smp() {
  // Tuner output for the hierarchical 2-socket profile, 8 nodes x 16 tasks
  // (bench/tune.cpp; regenerate with `tune --profile modern_smp`).
  // Differences from the paper's constants that the sweep measured:
  //   * mapped bcast loses at every size (the fan-out cascade serializes on
  //     cross-socket windows; flat staged pulls overlap on the bus —
  //     DESIGN.md §14), so the mapped column stays false for bcast;
  //   * the bcast staircase grows fine structure: direct already wins the
  //     16-32 KB band (the staged pipeline-chunk regime), staged recovers
  //     at exactly 64 KB (one full shared buffer, no chunking), a
  //     scatter+allgather window covers 128-256 KB where splitting the
  //     root link wins, then direct's user-buffer pipeline takes over;
  //   * mapped reduce crosses over at ~2 KB, far below the paper's 16 KB;
  //   * recursive halving takes allreduce from ~512 KB; ring and bine only
  //     win off power-of-two node counts (9 nodes: ring from 128 KB, bine
  //     trees in the latency band — see abl_tuner), so the 8-node builtin
  //     keeps rhalving and binomial;
  //   * mapped scatter wins only the sub-2 KB band (one window export vs
  //     per-chunk staging; above it the copies dominate either way).
  DecisionTable t;
  t.profile = "modern_smp";
  auto bin = TreeKind::binomial;
  t.set(CollKind::bcast, 0, {Algo::staged, false, bin});
  t.set(CollKind::bcast, 16 * 1024, {Algo::direct, false, bin});
  t.set(CollKind::bcast, 64 * 1024, {Algo::staged, false, bin});
  t.set(CollKind::bcast, 128 * 1024, {Algo::scatter_ag, false, bin});
  t.set(CollKind::bcast, 512 * 1024, {Algo::direct, false, bin});
  t.set(CollKind::reduce, 0, {Algo::staged, false, bin});
  t.set(CollKind::reduce, 2 * 1024, {Algo::staged, true, bin});
  t.set(CollKind::allreduce, 0, {Algo::rd, false, bin});
  t.set(CollKind::allreduce, 32 * 1024, {Algo::pipeline, false, bin});
  t.set(CollKind::allreduce, 512 * 1024, {Algo::rhalving, false, bin});
  t.set(CollKind::barrier, 0, {Algo::staged, false, bin});
  t.set(CollKind::scatter, 0, {Algo::staged, false, bin});
  t.set(CollKind::scatter, 32, {Algo::staged, true, bin});
  t.set(CollKind::scatter, 2 * 1024, {Algo::staged, false, bin});
  t.set(CollKind::gather, 0, {Algo::staged, false, bin});
  t.set(CollKind::allgather, 0, {Algo::staged, false, bin});
  t.set(CollKind::allgather, 16 * 1024, {Algo::staged, true, bin});
  t.set(CollKind::reduce_scatter, 0, {Algo::staged, false, bin});
  t.set(CollKind::reduce_scatter, 16 * 1024, {Algo::staged, true, bin});
  return t;
}

const DecisionTable* DecisionTable::builtin(std::string_view profile) {
  static const DecisionTable sp = ibm_sp();
  static const DecisionTable smp = modern_smp();
  if (profile == "ibm_sp") return &sp;
  if (profile == "modern_smp") return &smp;
  return nullptr;
}

}  // namespace srm::coll
