#include "coll/tree.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>

namespace srm::coll {

const char* tree_kind_name(TreeKind k) {
  switch (k) {
    case TreeKind::binomial: return "binomial";
    case TreeKind::binary: return "binary";
    case TreeKind::fibonacci: return "fibonacci";
    case TreeKind::flat: return "flat";
    case TreeKind::bine: return "bine";
  }
  return "?";
}

bool tree_kind_from_name(std::string_view s, TreeKind& out) {
  for (TreeKind k : {TreeKind::binomial, TreeKind::binary, TreeKind::fibonacci,
                     TreeKind::flat, TreeKind::bine}) {
    if (s == tree_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

int Tree::height() const {
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  int h = 0;
  // parents always precede children in BFS order; compute by repeated sweeps
  // from the root (trees are shallow, simple DFS is fine).
  std::function<void(int, int)> dfs = [&](int v, int d) {
    depth[static_cast<std::size_t>(v)] = d;
    h = std::max(h, d);
    for (int c : children[static_cast<std::size_t>(v)]) dfs(c, d + 1);
  };
  dfs(root, 0);
  return h;
}

int Tree::subtree_size(int v) const {
  int s = 1;
  for (int c : children[static_cast<std::size_t>(v)]) s += subtree_size(c);
  return s;
}

void Tree::validate() const {
  SRM_CHECK(n >= 1);
  SRM_CHECK(root >= 0 && root < n);
  SRM_CHECK(static_cast<int>(parent.size()) == n);
  SRM_CHECK(static_cast<int>(children.size()) == n);
  SRM_CHECK(parent[static_cast<std::size_t>(root)] == -1);
  int visited = 0;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::function<void(int)> dfs = [&](int v) {
    SRM_CHECK_MSG(!seen[static_cast<std::size_t>(v)], "cycle at vertex " << v);
    seen[static_cast<std::size_t>(v)] = 1;
    ++visited;
    for (int c : children[static_cast<std::size_t>(v)]) {
      SRM_CHECK(c >= 0 && c < n);
      SRM_CHECK_MSG(parent[static_cast<std::size_t>(c)] == v,
                    "child " << c << " disagrees about parent " << v);
      dfs(c);
    }
  };
  dfs(root);
  SRM_CHECK_MSG(visited == n, "tree is not spanning: " << visited << "/" << n);
}

namespace {

Tree make_empty(int n, int root) {
  SRM_CHECK(n >= 1);
  SRM_CHECK(root >= 0 && root < n);
  Tree t;
  t.n = n;
  t.root = root;
  t.parent.assign(static_cast<std::size_t>(n), -1);
  t.children.resize(static_cast<std::size_t>(n));
  return t;
}

int to_rank(int vrank, int root, int n) { return (vrank + root) % n; }

void link(Tree& t, int parent, int child) {
  t.parent[static_cast<std::size_t>(child)] = parent;
  t.children[static_cast<std::size_t>(parent)].push_back(child);
}

}  // namespace

Tree binomial_tree(int n, int root) {
  Tree t = make_empty(n, root);
  // Distance power-of-two construction over virtual ranks: vrank v attaches
  // to v minus its lowest set bit. Children are produced in ascending-mask
  // (small subtree first) order.
  for (int v = 0; v < n; ++v) {
    for (int mask = 1; mask < n; mask <<= 1) {
      if (v & mask) break;
      int child = v | mask;
      if (child < n) link(t, to_rank(v, root, n), to_rank(child, root, n));
    }
  }
  return t;
}

Tree binary_tree(int n, int root) {
  Tree t = make_empty(n, root);
  // Complete binary tree over virtual ranks: children of v are 2v+1, 2v+2.
  for (int v = 0; v < n; ++v) {
    for (int c : {2 * v + 1, 2 * v + 2}) {
      if (c < n) link(t, to_rank(v, root, n), to_rank(c, root, n));
    }
  }
  return t;
}

Tree fibonacci_tree(int n, int root) {
  Tree t = make_empty(n, root);
  // Postal-model construction (Bar-Noy & Kipnis, lambda = 2): a vertex
  // informed at step s can deliver its next message at step s+2 and every
  // step thereafter; the root starts ready. Each step, every eligible sender
  // adopts the next uninformed virtual rank, so the informed count follows
  // the Fibonacci recurrence f(t) = f(t-1) + f(t-2): 1, 2, 3, 5, 8, 13, ...
  int next = 1;
  std::deque<std::pair<int, int>> informed;  // (vrank, step informed)
  informed.emplace_back(0, -1);              // root was ready before step 0
  int step = 0;
  while (next < n) {
    ++step;
    std::size_t count = informed.size();
    for (std::size_t i = 0; i < count && next < n; ++i) {
      auto [v, at] = informed[i];
      if (at > step - 2) continue;  // still in its recovery step
      int child = next++;
      link(t, to_rank(v, root, n), to_rank(child, root, n));
      informed.emplace_back(child, step);
    }
  }
  return t;
}

Tree flat_tree(int n, int root) {
  Tree t = make_empty(n, root);
  for (int v = 1; v < n; ++v) link(t, root, to_rank(v, root, n));
  return t;
}

Tree bine_tree(int n, int root) {
  Tree t = make_empty(n, root);
  if (n == 1) return t;
  // Dissemination over virtual ranks: at step k every informed vertex u
  // reaches for u + rho_k (u even) or u - rho_k (u odd), with
  // rho_k = (1 - (-2)^(k+1)) / 3 — the negabinary distance sequence
  // 1, -1, 3, -5, 11, ... whose partial sums tile the ring. On a power of
  // two this informs everyone in exactly log2(n) steps; elsewhere peers can
  // collide, so the walk is bounded and stragglers hang flat off the root.
  std::vector<char> informed(static_cast<std::size_t>(n), 0);
  informed[0] = 1;
  std::vector<int> frontier{0};  // informed vertices, discovery order
  int covered = 1;
  std::int64_t pow = -2;  // (-2)^(k+1)
  int max_steps = 2;
  while ((1 << (max_steps - 2)) < n) ++max_steps;  // 2 * ceil(log2 n) slack
  max_steps *= 2;
  for (int k = 0; k < max_steps && covered < n; ++k) {
    std::int64_t rho = (1 - pow) / 3;
    pow *= -2;
    std::size_t count = frontier.size();
    for (std::size_t i = 0; i < count && covered < n; ++i) {
      int u = frontier[i];
      std::int64_t d = (u % 2 == 0) ? rho : -rho;
      int peer = static_cast<int>(((u + d) % n + n) % n);
      if (informed[static_cast<std::size_t>(peer)]) continue;
      informed[static_cast<std::size_t>(peer)] = 1;
      ++covered;
      link(t, to_rank(u, root, n), to_rank(peer, root, n));
      frontier.push_back(peer);
    }
  }
  for (int v = 1; v < n; ++v) {
    if (!informed[static_cast<std::size_t>(v)]) {
      link(t, root, to_rank(v, root, n));
    }
  }
  // Child lists come out of the walk in discovery order — largest subtree
  // first. Every consumer of Tree assumes the binomial convention (smallest
  // subtree first, so reversed fan-out sends the critical subtree earliest);
  // re-sort to match it.
  for (auto& kids : t.children) {
    std::stable_sort(kids.begin(), kids.end(), [&t](int a, int b) {
      return t.subtree_size(a) < t.subtree_size(b);
    });
  }
  t.validate();
  return t;
}

Tree build_tree(TreeKind kind, int n, int root) {
  switch (kind) {
    case TreeKind::binomial: return binomial_tree(n, root);
    case TreeKind::binary: return binary_tree(n, root);
    case TreeKind::fibonacci: return fibonacci_tree(n, root);
    case TreeKind::flat: return flat_tree(n, root);
    case TreeKind::bine: return bine_tree(n, root);
  }
  SRM_CHECK(false);
  return {};
}

Tree topo_tree(const machine::TopologyParams& tp, int n, int root,
               bool binomial) {
  Tree t = make_empty(n, root);
  // Leaders: the root leads every domain it belongs to; any other domain is
  // led by its lowest member. Maps are keyed by domain id (dense from 0).
  auto leader_of = [&](auto domain_of) {
    std::vector<int> lead;
    for (int v = 0; v < n; ++v) {
      auto d = static_cast<std::size_t>(domain_of(v));
      if (d >= lead.size()) lead.resize(d + 1, -1);
      if (lead[d] == -1) lead[d] = v;
    }
    lead[static_cast<std::size_t>(domain_of(root))] = root;
    return lead;
  };
  std::vector<int> sock_lead =
      leader_of([&](int v) { return tp.socket_of(v); });
  std::vector<int> l3_lead = leader_of([&](int v) { return tp.l3_of(v); });
  // An L3 slice containing its socket's leader is led by that leader (one
  // descent path per vertex: root -> socket leader -> L3 leader -> core).
  for (std::size_t g = 0; g < l3_lead.size(); ++g) {
    int sl = sock_lead[static_cast<std::size_t>(tp.socket_of(l3_lead[g]))];
    if (tp.l3_of(sl) == static_cast<int>(g)) l3_lead[g] = sl;
  }

  // Group every non-root vertex under its leader (same descent rules either
  // way); the flag only changes how members attach within one group. Each
  // member carries its stratum — plain core, L3 leader, socket leader — so
  // the binomial layout can order the group without mixing strata in a way
  // that would cross a domain boundary twice.
  std::map<int, std::vector<std::pair<int, int>>> group;  // lead -> (stratum, v)
  for (int v = 0; v < n; ++v) {
    if (v == root) continue;
    int sl = sock_lead[static_cast<std::size_t>(tp.socket_of(v))];
    int gl = l3_lead[static_cast<std::size_t>(tp.l3_of(v))];
    if (v == sl) {
      group[root].emplace_back(2, v);
    } else if (v == gl) {
      group[sl].emplace_back(1, v);
    } else {
      group[gl].emplace_back(0, v);
    }
  }
  for (auto& [lead, members] : group) {
    if (!binomial) {
      for (auto [s, v] : members) link(t, lead, v);
      continue;
    }
    // In-group order [lead, members...]; index i hangs off index i with its
    // lowest set bit cleared — the classic binomial layout. Same-domain
    // cores come first (rank order rotated around the leader, so a
    // single-domain group reproduces binomial_tree(n, root) exactly), then
    // L3 leaders, then socket leaders: a core's binomial parent is always
    // an earlier core of its own slice (or the lead), and only a domain's
    // leader ever has a parent outside that domain — every boundary is
    // still crossed by exactly one edge.
    const int l = lead;  // structured binding can't be captured
    std::sort(members.begin(), members.end(),
              [&](const std::pair<int, int>& a, const std::pair<int, int>& b) {
                if (a.first != b.first) return a.first < b.first;
                return (a.second - l + n) % n < (b.second - l + n) % n;
              });
    std::vector<int> ord;
    ord.reserve(members.size() + 1);
    ord.push_back(lead);
    for (auto [s, v] : members) ord.push_back(v);
    for (std::size_t i = 1; i < ord.size(); ++i) {
      link(t, ord[i & (i - 1)], ord[i]);
    }
  }
  t.validate();
  return t;
}

int Embedding::height(const machine::Topology& topo) const {
  int h = 0;
  for (int node = 0; node < topo.nodes(); ++node) {
    // Depth of the node in the internode tree, plus its intranode height.
    int d = 0;
    for (int v = node; internode.parent[static_cast<std::size_t>(v)] != -1;
         v = internode.parent[static_cast<std::size_t>(v)]) {
      ++d;
    }
    h = std::max(h, d + intranode[static_cast<std::size_t>(node)].height());
  }
  return h;
}

Embedding embed(const machine::Topology& topo, int root,
                TreeKind internode_kind, TreeKind intranode_kind) {
  SRM_CHECK(root >= 0 && root < topo.nranks());
  Embedding e;
  e.root = root;
  int root_node = topo.node_of(root);
  e.internode = build_tree(internode_kind, topo.nodes(), root_node);
  e.leader.resize(static_cast<std::size_t>(topo.nodes()));
  e.intranode.reserve(static_cast<std::size_t>(topo.nodes()));
  for (int node = 0; node < topo.nodes(); ++node) {
    int leader = (node == root_node) ? root : topo.master_of(node);
    e.leader[static_cast<std::size_t>(node)] = leader;
    e.intranode.push_back(build_tree(intranode_kind, topo.tasks_per_node(),
                                     topo.local_of(leader)));
  }
  return e;
}

}  // namespace srm::coll
