#include "coll/tree.hpp"

#include <algorithm>
#include <deque>
#include <functional>

namespace srm::coll {

const char* tree_kind_name(TreeKind k) {
  switch (k) {
    case TreeKind::binomial: return "binomial";
    case TreeKind::binary: return "binary";
    case TreeKind::fibonacci: return "fibonacci";
    case TreeKind::flat: return "flat";
  }
  return "?";
}

int Tree::height() const {
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  int h = 0;
  // parents always precede children in BFS order; compute by repeated sweeps
  // from the root (trees are shallow, simple DFS is fine).
  std::function<void(int, int)> dfs = [&](int v, int d) {
    depth[static_cast<std::size_t>(v)] = d;
    h = std::max(h, d);
    for (int c : children[static_cast<std::size_t>(v)]) dfs(c, d + 1);
  };
  dfs(root, 0);
  return h;
}

int Tree::subtree_size(int v) const {
  int s = 1;
  for (int c : children[static_cast<std::size_t>(v)]) s += subtree_size(c);
  return s;
}

void Tree::validate() const {
  SRM_CHECK(n >= 1);
  SRM_CHECK(root >= 0 && root < n);
  SRM_CHECK(static_cast<int>(parent.size()) == n);
  SRM_CHECK(static_cast<int>(children.size()) == n);
  SRM_CHECK(parent[static_cast<std::size_t>(root)] == -1);
  int visited = 0;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::function<void(int)> dfs = [&](int v) {
    SRM_CHECK_MSG(!seen[static_cast<std::size_t>(v)], "cycle at vertex " << v);
    seen[static_cast<std::size_t>(v)] = 1;
    ++visited;
    for (int c : children[static_cast<std::size_t>(v)]) {
      SRM_CHECK(c >= 0 && c < n);
      SRM_CHECK_MSG(parent[static_cast<std::size_t>(c)] == v,
                    "child " << c << " disagrees about parent " << v);
      dfs(c);
    }
  };
  dfs(root);
  SRM_CHECK_MSG(visited == n, "tree is not spanning: " << visited << "/" << n);
}

namespace {

Tree make_empty(int n, int root) {
  SRM_CHECK(n >= 1);
  SRM_CHECK(root >= 0 && root < n);
  Tree t;
  t.n = n;
  t.root = root;
  t.parent.assign(static_cast<std::size_t>(n), -1);
  t.children.resize(static_cast<std::size_t>(n));
  return t;
}

int to_rank(int vrank, int root, int n) { return (vrank + root) % n; }

void link(Tree& t, int parent, int child) {
  t.parent[static_cast<std::size_t>(child)] = parent;
  t.children[static_cast<std::size_t>(parent)].push_back(child);
}

}  // namespace

Tree binomial_tree(int n, int root) {
  Tree t = make_empty(n, root);
  // Distance power-of-two construction over virtual ranks: vrank v attaches
  // to v minus its lowest set bit. Children are produced in ascending-mask
  // (small subtree first) order.
  for (int v = 0; v < n; ++v) {
    for (int mask = 1; mask < n; mask <<= 1) {
      if (v & mask) break;
      int child = v | mask;
      if (child < n) link(t, to_rank(v, root, n), to_rank(child, root, n));
    }
  }
  return t;
}

Tree binary_tree(int n, int root) {
  Tree t = make_empty(n, root);
  // Complete binary tree over virtual ranks: children of v are 2v+1, 2v+2.
  for (int v = 0; v < n; ++v) {
    for (int c : {2 * v + 1, 2 * v + 2}) {
      if (c < n) link(t, to_rank(v, root, n), to_rank(c, root, n));
    }
  }
  return t;
}

Tree fibonacci_tree(int n, int root) {
  Tree t = make_empty(n, root);
  // Postal-model construction (Bar-Noy & Kipnis, lambda = 2): a vertex
  // informed at step s can deliver its next message at step s+2 and every
  // step thereafter; the root starts ready. Each step, every eligible sender
  // adopts the next uninformed virtual rank, so the informed count follows
  // the Fibonacci recurrence f(t) = f(t-1) + f(t-2): 1, 2, 3, 5, 8, 13, ...
  int next = 1;
  std::deque<std::pair<int, int>> informed;  // (vrank, step informed)
  informed.emplace_back(0, -1);              // root was ready before step 0
  int step = 0;
  while (next < n) {
    ++step;
    std::size_t count = informed.size();
    for (std::size_t i = 0; i < count && next < n; ++i) {
      auto [v, at] = informed[i];
      if (at > step - 2) continue;  // still in its recovery step
      int child = next++;
      link(t, to_rank(v, root, n), to_rank(child, root, n));
      informed.emplace_back(child, step);
    }
  }
  return t;
}

Tree flat_tree(int n, int root) {
  Tree t = make_empty(n, root);
  for (int v = 1; v < n; ++v) link(t, root, to_rank(v, root, n));
  return t;
}

Tree build_tree(TreeKind kind, int n, int root) {
  switch (kind) {
    case TreeKind::binomial: return binomial_tree(n, root);
    case TreeKind::binary: return binary_tree(n, root);
    case TreeKind::fibonacci: return fibonacci_tree(n, root);
    case TreeKind::flat: return flat_tree(n, root);
  }
  SRM_CHECK(false);
  return {};
}

int Embedding::height(const machine::Topology& topo) const {
  int h = 0;
  for (int node = 0; node < topo.nodes(); ++node) {
    // Depth of the node in the internode tree, plus its intranode height.
    int d = 0;
    for (int v = node; internode.parent[static_cast<std::size_t>(v)] != -1;
         v = internode.parent[static_cast<std::size_t>(v)]) {
      ++d;
    }
    h = std::max(h, d + intranode[static_cast<std::size_t>(node)].height());
  }
  return h;
}

Embedding embed(const machine::Topology& topo, int root,
                TreeKind internode_kind, TreeKind intranode_kind) {
  SRM_CHECK(root >= 0 && root < topo.nranks());
  Embedding e;
  e.root = root;
  int root_node = topo.node_of(root);
  e.internode = build_tree(internode_kind, topo.nodes(), root_node);
  e.leader.resize(static_cast<std::size_t>(topo.nodes()));
  e.intranode.reserve(static_cast<std::size_t>(topo.nodes()));
  for (int node = 0; node < topo.nodes(); ++node) {
    int leader = (node == root_node) ? root : topo.master_of(node);
    e.leader[static_cast<std::size_t>(node)] = leader;
    e.intranode.push_back(build_tree(intranode_kind, topo.tasks_per_node(),
                                     topo.local_of(leader)));
  }
  return e;
}

}  // namespace srm::coll
