#include "coll/sig.hpp"

#include <sstream>

namespace srm::coll {

const char* coll_name(CollKind k) {
  switch (k) {
    case CollKind::bcast: return "bcast";
    case CollKind::reduce: return "reduce";
    case CollKind::allreduce: return "allreduce";
    case CollKind::barrier: return "barrier";
    case CollKind::scatter: return "scatter";
    case CollKind::gather: return "gather";
    case CollKind::allgather: return "allgather";
    case CollKind::reduce_scatter: return "reduce_scatter";
  }
  return "?";
}

const char* plane_name(Plane p) {
  switch (p) {
    case Plane::real: return "real";
    case Plane::symbolic: return "symbolic";
    case Plane::none: return "none";
  }
  return "?";
}

std::string CallSig::to_string() const {
  std::ostringstream os;
  os << coll_name(op) << '(';
  if (op == CollKind::barrier) {
    os << ')';
    return os.str();
  }
  os << dtype_name(dtype) << " x" << count;
  if (red != kNoRed) os << ", " << op_name(static_cast<RedOp>(red));
  if (root != kNoRoot) os << ", root " << root;
  os << ", " << plane_name(plane) << ')';
  return os.str();
}

std::string CallSig::args_json() const {
  std::ostringstream os;
  os << "{\"op\":\"" << coll_name(op) << '"';
  if (op != CollKind::barrier) {
    os << ",\"dtype\":\"" << dtype_name(dtype) << '"' << ",\"count\":" << count;
    if (root != kNoRoot) os << ",\"root\":" << root;
    if (red != kNoRed) {
      os << ",\"red\":\"" << op_name(static_cast<RedOp>(red)) << '"';
    }
    os << ",\"plane\":\"" << plane_name(plane) << '"';
  }
  os << '}';
  return os.str();
}

}  // namespace srm::coll
