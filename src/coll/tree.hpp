// Communication-tree builders and the SMP cluster embedding (paper §2.1).
//
// Binomial ("distance power-of-two"), binary, Fibonacci, and flat trees over
// an arbitrary vertex count and root. The Embedding assembles the paper's
// Figure-1 structure: a binomial tree over *nodes* connecting one leader task
// per node, plus an intra-node tree over the local tasks of each node. If
// every node carries p tasks, the embedding adds no height:
// log(n*p) >= log(n) + log(p).
#pragma once

#include <string_view>
#include <vector>

#include "machine/params.hpp"
#include "machine/topology.hpp"
#include "util/check.hpp"

namespace srm::coll {

enum class TreeKind { binomial, binary, fibonacci, flat, bine };

const char* tree_kind_name(TreeKind k);
/// Parse @p s into @p out; false (out untouched) when unknown.
bool tree_kind_from_name(std::string_view s, TreeKind& out);

/// Rooted tree over vertices [0, n). Children are stored in the order a
/// reduce expects arrivals (small subtrees first for binomial); a broadcast
/// should iterate them in reverse (largest subtree first).
struct Tree {
  int n = 0;
  int root = 0;
  std::vector<int> parent;                 ///< parent[v]; -1 for the root
  std::vector<std::vector<int>> children;  ///< children[v], construction order

  /// Longest root-to-leaf edge count.
  int height() const;
  /// Size of the subtree rooted at v (v itself included).
  int subtree_size(int v) const;
  /// Structural validation: spanning, acyclic, consistent parent/children.
  void validate() const;
};

/// Build a tree of @p kind over @p n vertices rooted at @p root.
Tree build_tree(TreeKind kind, int n, int root);

Tree binomial_tree(int n, int root);
Tree binary_tree(int n, int root);
Tree fibonacci_tree(int n, int root);
Tree flat_tree(int n, int root);

/// Bine ("binomial negabinary", PAPERS.md 2508.17311) dissemination tree:
/// step k connects virtual rank u to u ± rho_k (mod n) with
/// rho_k = (1 - (-2)^(k+1)) / 3 and the sign set by u's parity, so
/// consecutive steps alternate direction and the informed set stays
/// contiguous on the ring — distance-1 edges dominate, which is what makes
/// the shape locality-friendly on non-power-of-two vertex counts where the
/// binomial tree's long edges go lopsided. Vertices the bounded dissemination
/// misses (possible off the power of two) attach flat to the root.
Tree bine_tree(int n, int root);

/// Hierarchy-aware intra-node tree over @p n local tasks: root -> socket
/// leaders -> L3 leaders -> cores, so every cache-domain boundary is crossed
/// by exactly one tree edge (the single-copy protocols hang one cross-domain
/// window transfer on each such edge). The root leads its own socket and L3
/// slice; every other domain is led by its lowest local task. Degenerates to
/// a flat tree on a single-domain topology.
///
/// With @p binomial, members of each domain group hang off their leader in
/// binomial order instead of flat: fan-in work (reduce combines, serialized
/// at every parent) parallelizes across the tree's interior, while fan-out
/// consumers (broadcast pulls, which overlap on the bus anyway) prefer the
/// flat shape. On a single-domain topology the binomial variant is exactly
/// binomial_tree(n, root).
Tree topo_tree(const machine::TopologyParams& tp, int n, int root,
               bool binomial = false);

/// The SMP-aware embedding of collective trees into a cluster (Fig. 1).
struct Embedding {
  int root = 0;                ///< global root rank
  Tree internode;              ///< over node ids, rooted at node_of(root)
  std::vector<int> leader;     ///< per node: the network-facing rank
  std::vector<Tree> intranode; ///< per node: tree over local ranks, rooted
                               ///< at the leader's local rank

  /// Total steps from root to the deepest task.
  int height(const machine::Topology& topo) const;
};

/// Build the embedding: an @p internode_kind tree over nodes and an
/// @p intranode_kind tree over each node's local ranks. The leader of the
/// root's node is the root itself (arbitrary-root support without extra
/// copies, §2.2); every other node is led by its master (local rank 0).
Embedding embed(const machine::Topology& topo, int root,
                TreeKind internode_kind, TreeKind intranode_kind);

}  // namespace srm::coll
