// API-boundary validation + signature dispatch for the Collectives entry
// points.
//
// Every invariant a backend used to assert deep inside protocol code is
// checked here once, before dispatch: root range, send/recv dtype and
// equal-block count agreement, real-vs-symbolic mode agreement, numeric
// dtype for reductions, and symbolic block-span bounds. The wrappers are
// plain functions (not coroutines), so a violated invariant fires at the
// call site, not at first resume; failures throw coll::ValidationError
// carrying {op, rank, field}.
//
// After validation each entry derives the call's CallSig from the side of
// the operation that is significant on every rank, and routes the backend
// task through dispatch(): the installed TraceSink (sv's recording shim)
// sees the signature immediately; when obs tracing is on, the backend task
// is additionally wrapped in a lazily-started "coll.<op>" span coroutine
// whose args carry the signature — the wrapper uses symmetric transfer and
// adds no engine events and no virtual time.

#include "coll/iface.hpp"

#include <sstream>
#include <utility>

#include "obs/obs.hpp"

namespace srm::coll {

namespace {

// Which call, on which rank, a validation failure belongs to.
struct VCtx {
  CollKind op;
  int rank;
};

[[noreturn]] void fail(const VCtx& c, const char* field,
                       const std::string& detail) {
  std::ostringstream os;
  os << coll_name(c.op) << " (rank " << c.rank << "): " << detail;
  throw ValidationError(c.op, c.rank, field, os.str());
}

// One significant Buf: non-empty storage in exactly one mode, and —
// symbolically — enough digest blocks with a matching block size.
void check_buf(const VCtx& c, const Buf& b, int nranks_blocks,
               const char* what) {
  if (b.count == 0) return;
  if (dtype_size(b.dtype) == 0)
    fail(c, "dtype", std::string(what) + ": bad dtype");
  if (b.symbolic()) {
    if (b.data != nullptr)
      fail(c, "mode",
           std::string(what) + ": a Buf is real or symbolic, not both");
    if (b.pay->block_bytes() != b.block_bytes()) {
      std::ostringstream os;
      os << what << ": payload models " << b.pay->block_bytes()
         << "-byte blocks, Buf describes " << b.block_bytes();
      fail(c, "block_bytes", os.str());
    }
    if (b.block0 + static_cast<std::size_t>(nranks_blocks) >
        b.pay->nblocks()) {
      std::ostringstream os;
      os << what << ": payload spans " << b.pay->nblocks()
         << " blocks, op needs "
         << b.block0 + static_cast<std::size_t>(nranks_blocks);
      fail(c, "blocks", os.str());
    }
  } else {
    if (b.data == nullptr) fail(c, "data", std::string(what) + ": null data");
  }
}

// The equal-block invariant between a send/recv pair: same element type,
// same per-block element count, same transport plane.
void check_pair(const VCtx& c, const Buf& s, const Buf& r) {
  if (s.count == 0 && r.count == 0) return;
  if (s.dtype != r.dtype) {
    std::ostringstream os;
    os << "send/recv dtype mismatch: " << dtype_name(s.dtype)
       << " != " << dtype_name(r.dtype);
    fail(c, "dtype", os.str());
  }
  if (s.count != r.count) {
    std::ostringstream os;
    os << "send/recv block mismatch: " << s.count << " != " << r.count
       << " elements per rank block";
    fail(c, "count", os.str());
  }
  if (s.symbolic() != r.symbolic())
    fail(c, "mode", "send/recv mix real and symbolic transport");
}

void check_root(const VCtx& c, const machine::TaskCtx& t, int root) {
  if (root < 0 || root >= t.nranks()) {
    std::ostringstream os;
    os << "root " << root << " out of range [0," << t.nranks() << ")";
    fail(c, "root", os.str());
  }
}

void check_numeric(const VCtx& c, const Buf& b) {
  if (b.dtype == Dtype::kByte)
    fail(c, "numeric", "reductions need a numeric Dtype, not kByte");
}

Plane plane_of(const Buf& b) {
  return b.symbolic() ? Plane::symbolic : Plane::real;
}

// Signature of a call, derived from its always-significant descriptor.
CallSig sig_of(CollKind op, const Buf& b, int root = kNoRoot,
               int red = kNoRed) {
  return CallSig{op, b.dtype, b.count, root, red, plane_of(b)};
}

// Span-wrapping shim: opens an args-carrying span on the rank's timeline
// and forwards to the backend task. Lazy like every CoTask — the span
// opens when the caller first resumes the collective, closes when the
// frame (and the Span inside it) is destroyed after completion. @p algo
// (the backend's v_algo answer) is spliced into the signature args so
// traces name the zoo member that ran.
sim::CoTask traced_call(machine::TaskCtx& t, CallSig sig, std::string algo,
                        sim::CoTask inner) {
  std::string args = sig.args_json();
  if (!algo.empty()) {
    args.pop_back();  // strip the closing '}'
    args += ",\"algo\":\"" + algo + "\"}";
  }
  // cppcheck-suppress unreadVariable  // RAII: closes the span at frame exit
  obs::Span span(*t.obs, t.rank, std::string("coll.") + coll_name(sig.op),
                 std::move(args));
  co_await inner;
}

}  // namespace

sim::CoTask Collectives::dispatch(machine::TaskCtx& t, const CallSig& sig,
                                  sim::CoTask inner) {
  if (sink_ != nullptr) sink_->on_call(t.rank, t.nranks(), sig);
  if (t.obs != nullptr && t.obs->trace_enabled())
    return traced_call(t, sig, v_algo(t, sig), std::move(inner));
  return inner;
}

sim::CoTask Collectives::bcast(machine::TaskCtx& t, Buf buf, int root) {
  VCtx c{CollKind::bcast, t.rank};
  check_root(c, t, root);
  check_buf(c, buf, 1, "buf");
  return dispatch(t, sig_of(c.op, buf, root), v_bcast(t, buf, root));
}

sim::CoTask Collectives::reduce(machine::TaskCtx& t, Buf send, Buf recv,
                                RedOp op, int root) {
  VCtx c{CollKind::reduce, t.rank};
  check_root(c, t, root);
  check_numeric(c, send);
  check_buf(c, send, 1, "send");
  if (t.rank == root) {
    check_pair(c, send, recv);
    check_buf(c, recv, 1, "recv");
  }
  return dispatch(t, sig_of(c.op, send, root, static_cast<int>(op)),
                  v_reduce(t, send, recv, op, root));
}

sim::CoTask Collectives::allreduce(machine::TaskCtx& t, Buf send, Buf recv,
                                   RedOp op) {
  VCtx c{CollKind::allreduce, t.rank};
  check_numeric(c, send);
  check_pair(c, send, recv);
  check_buf(c, send, 1, "send");
  check_buf(c, recv, 1, "recv");
  return dispatch(t, sig_of(c.op, send, kNoRoot, static_cast<int>(op)),
                  v_allreduce(t, send, recv, op));
}

sim::CoTask Collectives::barrier(machine::TaskCtx& t) {
  return dispatch(t, CallSig{}, v_barrier(t));
}

sim::CoTask Collectives::scatter(machine::TaskCtx& t, Buf send, Buf recv,
                                 int root) {
  VCtx c{CollKind::scatter, t.rank};
  check_root(c, t, root);
  check_buf(c, recv, 1, "recv");
  if (t.rank == root) {
    check_pair(c, send, recv);
    check_buf(c, send, t.nranks(), "send");
  }
  return dispatch(t, sig_of(c.op, recv, root), v_scatter(t, send, recv, root));
}

sim::CoTask Collectives::gather(machine::TaskCtx& t, Buf send, Buf recv,
                                int root) {
  VCtx c{CollKind::gather, t.rank};
  check_root(c, t, root);
  check_buf(c, send, 1, "send");
  if (t.rank == root) {
    check_pair(c, send, recv);
    check_buf(c, recv, t.nranks(), "recv");
  }
  return dispatch(t, sig_of(c.op, send, root), v_gather(t, send, recv, root));
}

sim::CoTask Collectives::allgather(machine::TaskCtx& t, Buf send, Buf recv) {
  VCtx c{CollKind::allgather, t.rank};
  check_pair(c, send, recv);
  check_buf(c, send, 1, "send");
  check_buf(c, recv, t.nranks(), "recv");
  return dispatch(t, sig_of(c.op, send), v_allgather(t, send, recv));
}

sim::CoTask Collectives::reduce_scatter(machine::TaskCtx& t, Buf send,
                                        Buf recv, RedOp op) {
  VCtx c{CollKind::reduce_scatter, t.rank};
  check_numeric(c, send);
  check_pair(c, send, recv);
  check_buf(c, send, t.nranks(), "send");
  check_buf(c, recv, 1, "recv");
  return dispatch(t, sig_of(c.op, recv, kNoRoot, static_cast<int>(op)),
                  v_reduce_scatter(t, send, recv, op));
}

}  // namespace srm::coll
