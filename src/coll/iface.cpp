// API-boundary validation for the Collectives entry points.
//
// Every invariant a backend used to assert deep inside protocol code is
// checked here once, before dispatch: root range, send/recv dtype and
// equal-block count agreement, real-vs-symbolic mode agreement, numeric
// dtype for reductions, and symbolic block-span bounds. The wrappers are
// plain functions (not coroutines), so a violated invariant fires at the
// call site, not at first resume.

#include "coll/iface.hpp"

#include "util/check.hpp"

namespace srm::coll {

namespace {

// One significant Buf: non-empty storage in exactly one mode, and —
// symbolically — enough digest blocks with a matching block size.
void check_buf(const Buf& b, int nranks_blocks, const char* what) {
  if (b.count == 0) return;
  SRM_CHECK_MSG(dtype_size(b.dtype) > 0, what << ": bad dtype");
  if (b.symbolic()) {
    SRM_CHECK_MSG(b.data == nullptr,
                  what << ": a Buf is real or symbolic, not both");
    SRM_CHECK_MSG(b.pay->block_bytes() == b.block_bytes(),
                  what << ": payload models " << b.pay->block_bytes()
                       << "-byte blocks, Buf describes " << b.block_bytes());
    SRM_CHECK_MSG(
        b.block0 + static_cast<std::size_t>(nranks_blocks) <=
            b.pay->nblocks(),
        what << ": payload spans " << b.pay->nblocks() << " blocks, op needs "
             << b.block0 + static_cast<std::size_t>(nranks_blocks));
  } else {
    SRM_CHECK_MSG(b.data != nullptr, what << ": null data");
  }
}

// The equal-block invariant between a send/recv pair: same element type,
// same per-block element count, same transport plane.
void check_pair(const Buf& s, const Buf& r) {
  if (s.count == 0 && r.count == 0) return;
  SRM_CHECK_MSG(s.dtype == r.dtype, "send/recv dtype mismatch");
  SRM_CHECK_MSG(s.count == r.count,
                "send/recv block mismatch: " << s.count << " != " << r.count
                                             << " elements per rank block");
  SRM_CHECK_MSG(s.symbolic() == r.symbolic(),
                "send/recv mix real and symbolic transport");
}

void check_root(const machine::TaskCtx& t, int root) {
  SRM_CHECK_MSG(root >= 0 && root < t.nranks(),
                "root " << root << " out of range [0," << t.nranks() << ")");
}

void check_numeric(const Buf& b) {
  SRM_CHECK_MSG(b.dtype != Dtype::kByte,
                "reductions need a numeric Dtype, not kByte");
}

}  // namespace

sim::CoTask Collectives::bcast(machine::TaskCtx& t, Buf buf, int root) {
  check_root(t, root);
  check_buf(buf, 1, "bcast buf");
  return v_bcast(t, buf, root);
}

sim::CoTask Collectives::reduce(machine::TaskCtx& t, Buf send, Buf recv,
                                RedOp op, int root) {
  check_root(t, root);
  check_numeric(send);
  check_buf(send, 1, "reduce send");
  if (t.rank == root) {
    check_pair(send, recv);
    check_buf(recv, 1, "reduce recv");
  }
  return v_reduce(t, send, recv, op, root);
}

sim::CoTask Collectives::allreduce(machine::TaskCtx& t, Buf send, Buf recv,
                                   RedOp op) {
  check_numeric(send);
  check_pair(send, recv);
  check_buf(send, 1, "allreduce send");
  check_buf(recv, 1, "allreduce recv");
  return v_allreduce(t, send, recv, op);
}

sim::CoTask Collectives::barrier(machine::TaskCtx& t) { return v_barrier(t); }

sim::CoTask Collectives::scatter(machine::TaskCtx& t, Buf send, Buf recv,
                                 int root) {
  check_root(t, root);
  check_buf(recv, 1, "scatter recv");
  if (t.rank == root) {
    check_pair(send, recv);
    check_buf(send, t.nranks(), "scatter send");
  }
  return v_scatter(t, send, recv, root);
}

sim::CoTask Collectives::gather(machine::TaskCtx& t, Buf send, Buf recv,
                                int root) {
  check_root(t, root);
  check_buf(send, 1, "gather send");
  if (t.rank == root) {
    check_pair(send, recv);
    check_buf(recv, t.nranks(), "gather recv");
  }
  return v_gather(t, send, recv, root);
}

sim::CoTask Collectives::allgather(machine::TaskCtx& t, Buf send, Buf recv) {
  check_pair(send, recv);
  check_buf(send, 1, "allgather send");
  check_buf(recv, t.nranks(), "allgather recv");
  return v_allgather(t, send, recv);
}

sim::CoTask Collectives::reduce_scatter(machine::TaskCtx& t, Buf send,
                                        Buf recv, RedOp op) {
  check_numeric(send);
  check_pair(send, recv);
  check_buf(send, t.nranks(), "reduce_scatter send");
  check_buf(recv, 1, "reduce_scatter recv");
  return v_reduce_scatter(t, send, recv, op);
}

}  // namespace srm::coll
