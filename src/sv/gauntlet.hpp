// sv::gauntlet — seeded-mismatch mutants that pin the verifier's
// diagnostics.
//
// Each mutant plants one classic collective-matching bug — wrong root on
// one rank, a conditional that skips a collective, dtype/count/RedOp/plane
// mismatches, reordered ops, an extra barrier, a rank-dependent loop — in
// either a skeleton (static layer) or a synthetic per-rank trace (dynamic
// layer), and requires the verifier to produce its *exact* diagnostic
// class (and mismatched field, where one applies). Two clean controls
// guard against false positives. Run by `sv_verify gauntlet` in CI and by
// tests/sv_gauntlet_test.cpp.
#pragma once

#include <string>
#include <vector>

#include "sv/trace.hpp"

namespace srm::sv {

struct MutantResult {
  std::string name;
  std::string expect_kind;   ///< expected Diag::kind ("" = expect ok)
  std::string expect_field;  ///< expected Diag::field ("" = don't care)
  Diag got;
  bool pass = false;
};

/// Run every seeded mutant; one result each, in declaration order.
std::vector<MutantResult> run_gauntlet();

bool gauntlet_ok(const std::vector<MutantResult>& results);

}  // namespace srm::sv
