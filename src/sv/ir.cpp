#include "sv/ir.hpp"

#include <sstream>

namespace srm::sv {

const char* field_name(SigField f) {
  switch (f) {
    case SigField::op: return "op";
    case SigField::dtype: return "dtype";
    case SigField::count: return "count";
    case SigField::root: return "root";
    case SigField::red: return "red";
    case SigField::plane: return "plane";
  }
  return "?";
}

SigPat pat(const CallSig& s) {
  return SigPat{s.op,  s.dtype, s.count,
                s.root, s.red,  static_cast<int>(s.plane)};
}

std::optional<SigField> first_mismatch(const SigPat& a, const SigPat& b) {
  if (a.op != b.op) return SigField::op;
  // Barrier has no payload: dtype/count/root/red/plane are not part of its
  // signature.
  if (a.op == CollKind::barrier) return std::nullopt;
  if (a.dtype != b.dtype) return SigField::dtype;
  if (a.count != b.count && a.count != kAnyCount && b.count != kAnyCount)
    return SigField::count;
  if (a.root != b.root && a.root != kAnyRoot && b.root != kAnyRoot)
    return SigField::root;
  if (a.red != b.red && a.red != kAnyRed && b.red != kAnyRed)
    return SigField::red;
  if (a.plane != b.plane && a.plane != kAnyPlane && b.plane != kAnyPlane)
    return SigField::plane;
  return std::nullopt;
}

std::string SigPat::to_string() const {
  std::ostringstream os;
  os << coll_name(op) << '(';
  if (op == CollKind::barrier) {
    os << ')';
    return os.str();
  }
  os << dtype_name(dtype) << " x";
  if (count == kAnyCount) {
    os << '*';
  } else {
    os << count;
  }
  if (red == kAnyRed) {
    os << ", red *";
  } else if (red != coll::kNoRed) {
    os << ", " << op_name(static_cast<RedOp>(red));
  }
  if (root == kAnyRoot) {
    os << ", root *";
  } else if (root != coll::kNoRoot) {
    os << ", root " << root;
  }
  if (plane != kAnyPlane)
    os << ", " << plane_name(static_cast<Plane>(plane));
  os << ')';
  return os.str();
}

namespace {

SigPat moving(CollKind op, Dtype d, std::size_t count) {
  SigPat p;
  p.op = op;
  p.dtype = d;
  p.count = count;
  return p;
}

}  // namespace

SigPat sig_bcast(Dtype d, std::size_t count, int root) {
  SigPat p = moving(CollKind::bcast, d, count);
  p.root = root;
  return p;
}

SigPat sig_reduce(Dtype d, std::size_t count, RedOp op, int root) {
  SigPat p = moving(CollKind::reduce, d, count);
  p.red = static_cast<int>(op);
  p.root = root;
  return p;
}

SigPat sig_allreduce(Dtype d, std::size_t count, RedOp op) {
  SigPat p = moving(CollKind::allreduce, d, count);
  p.red = static_cast<int>(op);
  return p;
}

SigPat sig_barrier() {
  SigPat p;
  p.op = CollKind::barrier;
  p.count = 0;
  p.plane = static_cast<int>(Plane::none);
  return p;
}

SigPat sig_scatter(Dtype d, std::size_t count, int root) {
  SigPat p = moving(CollKind::scatter, d, count);
  p.root = root;
  return p;
}

SigPat sig_gather(Dtype d, std::size_t count, int root) {
  SigPat p = moving(CollKind::gather, d, count);
  p.root = root;
  return p;
}

SigPat sig_allgather(Dtype d, std::size_t count) {
  return moving(CollKind::allgather, d, count);
}

SigPat sig_reduce_scatter(Dtype d, std::size_t count, RedOp op) {
  SigPat p = moving(CollKind::reduce_scatter, d, count);
  p.red = static_cast<int>(op);
  return p;
}

Node call(SigPat s) {
  Node n;
  n.kind = Node::Kind::call;
  n.sig = s;
  return n;
}

namespace {

Node branch(std::string where, bool rank_pred, Node then_arm, Node else_arm) {
  Node n;
  n.kind = Node::Kind::branch;
  n.where = std::move(where);
  n.rank_pred = rank_pred;
  n.kids.push_back(std::move(then_arm));
  n.kids.push_back(std::move(else_arm));
  return n;
}

Node make_loop(std::string where, int trip, bool rank_trip, Node body) {
  Node n;
  n.kind = Node::Kind::loop;
  n.where = std::move(where);
  n.trip = trip;
  n.rank_trip = rank_trip;
  n.kids.push_back(std::move(body));
  return n;
}

}  // namespace

Node branch_uniform(std::string where, Node then_arm, Node else_arm) {
  return branch(std::move(where), /*rank_pred=*/false, std::move(then_arm),
                std::move(else_arm));
}

Node branch_rank(std::string where, Node then_arm, Node else_arm) {
  return branch(std::move(where), /*rank_pred=*/true, std::move(then_arm),
                std::move(else_arm));
}

Node loop(int trip, Node body) {
  return make_loop({}, trip, /*rank_trip=*/false, std::move(body));
}

Node loop_uniform(std::string where, Node body) {
  return make_loop(std::move(where), kAnyTrip, /*rank_trip=*/false,
                   std::move(body));
}

Node loop_rank(std::string where, Node body) {
  return make_loop(std::move(where), kAnyTrip, /*rank_trip=*/true,
                   std::move(body));
}

std::string Node::to_string() const {
  switch (kind) {
    case Kind::call: return sig.to_string();
    case Kind::seq: {
      std::string out = "seq{";
      for (std::size_t i = 0; i < kids.size(); ++i) {
        if (i > 0) out += "; ";
        out += kids[i].to_string();
      }
      return out + "}";
    }
    case Kind::branch: {
      std::string out = rank_pred ? "branch_rank[" : "branch_uniform[";
      out += where + "]{" + kids[0].to_string() + " | " +
             kids[1].to_string() + "}";
      return out;
    }
    case Kind::loop: {
      std::ostringstream os;
      os << "loop[";
      if (!where.empty()) os << where << "; ";
      if (rank_trip) {
        os << "rank trips";
      } else if (trip == kAnyTrip) {
        os << "uniform trips";
      } else {
        os << trip << " trips";
      }
      os << "]{" << kids[0].to_string() << "}";
      return os.str();
    }
  }
  return "?";
}

}  // namespace srm::sv
