#include "sv/verify.hpp"

#include <algorithm>
#include <sstream>

namespace srm::sv {

std::string Diag::to_string() const {
  if (ok) return "[sv] " + program + ": ok";
  std::ostringstream os;
  os << "[sv] " << program << ": " << kind;
  if (!where.empty()) os << " at " << where;
  os << " (call #" << index;
  if (rank >= 0) os << ", rank " << rank;
  if (!field.empty()) os << ", field " << field;
  os << "): " << detail;
  return os.str();
}

namespace {

bool seq_compatible(const std::vector<SigPat>& a, std::size_t ai,
                    const std::vector<SigPat>& b, std::size_t bi) {
  if (a.size() - ai != b.size() - bi) return false;
  for (; ai < a.size(); ++ai, ++bi)
    if (!pat_compatible(a[ai], b[bi])) return false;
  return true;
}

}  // namespace

SeqDiff seq_diff(const std::vector<SigPat>& a, const std::vector<SigPat>& b) {
  std::size_t i = 0;
  const std::size_t n = std::min(a.size(), b.size());
  while (i < n && pat_compatible(a[i], b[i])) ++i;

  SeqDiff d;
  d.index = i;
  if (i == a.size() && i == b.size()) return d;  // equal

  // One side ran out: a single trailing extra is the "extra" class, more
  // than one is a plain length divergence.
  if (i == a.size() || i == b.size()) {
    if (a.size() == b.size() + 1) {
      d.kind = SeqDiff::Kind::extra_a;
    } else if (b.size() == a.size() + 1) {
      d.kind = SeqDiff::Kind::extra_b;
    } else {
      d.kind = SeqDiff::Kind::length;
    }
    return d;
  }

  // Both sides have a call at i that disagrees. Prefer the structural
  // explanations (swap, single insertion) over a field mismatch when the
  // rest of the sequences line up — that is what a seeded reorder/extra
  // mutant looks like.
  if (i + 1 < a.size() && i + 1 < b.size() &&
      pat_compatible(a[i], b[i + 1]) && pat_compatible(a[i + 1], b[i]) &&
      seq_compatible(a, i + 2, b, i + 2)) {
    d.kind = SeqDiff::Kind::reorder;
    return d;
  }
  if (seq_compatible(a, i, b, i + 1)) {
    d.kind = SeqDiff::Kind::extra_b;
    return d;
  }
  if (seq_compatible(a, i + 1, b, i)) {
    d.kind = SeqDiff::Kind::extra_a;
    return d;
  }
  d.kind = SeqDiff::Kind::field;
  if (auto f = first_mismatch(a[i], b[i])) d.field = field_name(*f);
  return d;
}

namespace {

// Flattening a node inside a rank-dependent branch arm: the arm's call
// sequence must be statically enumerable, or the arm is unprovable.
struct Flat {
  bool ok = true;
  std::vector<SigPat> calls;
  std::string why;    // when !ok: what made the arm unprovable
  std::string where;  // anchor of the offending inner node
};

Flat flatten(const Node& n) {
  Flat out;
  switch (n.kind) {
    case Node::Kind::call:
      out.calls.push_back(n.sig);
      return out;
    case Node::Kind::seq:
      for (const Node& k : n.kids) {
        Flat f = flatten(k);
        if (!f.ok) return f;
        out.calls.insert(out.calls.end(), f.calls.begin(), f.calls.end());
      }
      return out;
    case Node::Kind::loop: {
      Flat body = flatten(n.kids[0]);
      if (!body.ok) return body;
      if (body.calls.empty()) return out;
      if (n.rank_trip || n.trip == kAnyTrip) {
        out.ok = false;
        out.why = n.rank_trip
                      ? "loop trip count depends on the rank"
                      : "loop trip count is not statically known";
        out.where = n.where;
        return out;
      }
      for (int t = 0; t < n.trip; ++t)
        out.calls.insert(out.calls.end(), body.calls.begin(),
                         body.calls.end());
      return out;
    }
    case Node::Kind::branch: {
      // Inside a rank arm even a uniform sub-branch must have arms that
      // flatten to the same sequence, or the enclosing comparison is
      // unprovable.
      Flat then_f = flatten(n.kids[0]);
      if (!then_f.ok) return then_f;
      Flat else_f = flatten(n.kids[1]);
      if (!else_f.ok) return else_f;
      SeqDiff d = seq_diff(then_f.calls, else_f.calls);
      if (d.kind != SeqDiff::Kind::equal) {
        out.ok = false;
        out.why = "nested branch arms issue different sequences";
        out.where = n.where;
        return out;
      }
      return then_f;
    }
  }
  return out;
}

const char* arm_kind(SeqDiff::Kind k) {
  switch (k) {
    case SeqDiff::Kind::field: return "arm-mismatch";
    case SeqDiff::Kind::extra_a:
    case SeqDiff::Kind::extra_b: return "arm-extra";
    case SeqDiff::Kind::reorder: return "arm-reorder";
    case SeqDiff::Kind::length: return "arm-length";
    case SeqDiff::Kind::equal: break;
  }
  return "";
}

std::string call_at(const std::vector<SigPat>& s, std::size_t i) {
  if (i < s.size()) return s[i].to_string();
  return "(end of sequence)";
}

// Recursive static check; fills d and returns false on the first error.
bool walk(const Node& n, Diag& d) {
  switch (n.kind) {
    case Node::Kind::call:
      return true;
    case Node::Kind::seq:
      for (const Node& k : n.kids)
        if (!walk(k, d)) return false;
      return true;
    case Node::Kind::loop: {
      if (n.rank_trip) {
        Flat body = flatten(n.kids[0]);
        if (!body.ok || !body.calls.empty()) {
          d.ok = false;
          d.kind = "rank-loop";
          d.where = n.where;
          d.detail =
              "loop trip count depends on the rank and the body issues "
              "collectives — ranks fall out of lockstep";
          return false;
        }
        return true;
      }
      return walk(n.kids[0], d);
    }
    case Node::Kind::branch: {
      if (!n.rank_pred) {
        // Uniform predicate: every rank takes the same arm; each arm is
        // checked on its own.
        return walk(n.kids[0], d) && walk(n.kids[1], d);
      }
      Flat then_f = flatten(n.kids[0]);
      Flat else_f = flatten(n.kids[1]);
      if (!then_f.ok || !else_f.ok) {
        const Flat& bad = then_f.ok ? else_f : then_f;
        d.ok = false;
        d.kind = "arm-unprovable";
        d.where = bad.where.empty() ? n.where : bad.where;
        d.detail = "inside rank-dependent branch at " + n.where + ": " +
                   bad.why;
        return false;
      }
      SeqDiff diff = seq_diff(then_f.calls, else_f.calls);
      if (diff.kind == SeqDiff::Kind::equal) return true;
      d.ok = false;
      d.kind = arm_kind(diff.kind);
      d.where = n.where;
      d.index = diff.index;
      d.field = diff.field;
      std::ostringstream os;
      switch (diff.kind) {
        case SeqDiff::Kind::field:
          os << "rank-divergent arms disagree on " << diff.field
             << " at call #" << diff.index << ": then-arm issues "
             << call_at(then_f.calls, diff.index) << ", else-arm issues "
             << call_at(else_f.calls, diff.index);
          break;
        case SeqDiff::Kind::extra_a:
          os << "then-arm issues an extra "
             << call_at(then_f.calls, diff.index) << " at call #"
             << diff.index << " that the else-arm skips";
          break;
        case SeqDiff::Kind::extra_b:
          os << "else-arm issues an extra "
             << call_at(else_f.calls, diff.index) << " at call #"
             << diff.index << " that the then-arm skips";
          break;
        case SeqDiff::Kind::reorder:
          os << "arms issue " << call_at(then_f.calls, diff.index) << " and "
             << call_at(then_f.calls, diff.index + 1)
             << " in opposite orders starting at call #" << diff.index;
          break;
        case SeqDiff::Kind::length:
          os << "arms issue different numbers of collectives ("
             << then_f.calls.size() << " vs " << else_f.calls.size()
             << "), diverging at call #" << diff.index;
          break;
        case SeqDiff::Kind::equal:
          break;
      }
      d.detail = os.str();
      return false;
    }
  }
  return true;
}

}  // namespace

Diag verify(const Skeleton& sk) {
  Diag d;
  d.program = sk.program;
  walk(sk.root, d);
  return d;
}

}  // namespace srm::sv
