#include "sv/trace.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace srm::sv {

void Recorder::on_call(int rank, int nranks, const CallSig& sig) {
  if (seqs_.size() < static_cast<std::size_t>(nranks))
    seqs_.resize(static_cast<std::size_t>(nranks));
  seqs_[static_cast<std::size_t>(rank)].push_back(sig);
}

namespace {

std::vector<SigPat> lift(const std::vector<CallSig>& seq) {
  std::vector<SigPat> out;
  out.reserve(seq.size());
  for (const CallSig& s : seq) out.push_back(pat(s));
  return out;
}

std::string sig_at(const std::vector<CallSig>& s, std::size_t i) {
  if (i < s.size()) return s[i].to_string();
  return "(end of sequence)";
}

}  // namespace

Diag align_ranks(const std::vector<std::vector<CallSig>>& by_rank) {
  Diag d;
  d.program = "trace";
  if (by_rank.empty()) return d;

  // Majority vote on the whole sequence: group ranks by identical
  // sequences, take the largest group (lowest-rank member breaks ties) as
  // the reference, and diff the lowest dissenting rank against it.
  std::vector<int> group(by_rank.size(), -1);
  std::vector<std::size_t> group_size;
  std::vector<std::size_t> group_rep;  // lowest rank with this sequence
  for (std::size_t r = 0; r < by_rank.size(); ++r) {
    for (std::size_t g = 0; g < group_rep.size(); ++g) {
      if (by_rank[r] == by_rank[group_rep[g]]) {
        group[r] = static_cast<int>(g);
        ++group_size[g];
        break;
      }
    }
    if (group[r] < 0) {
      group[r] = static_cast<int>(group_rep.size());
      group_rep.push_back(r);
      group_size.push_back(1);
    }
  }
  if (group_rep.size() == 1) return d;  // all ranks agree

  std::size_t best = 0;
  for (std::size_t g = 1; g < group_rep.size(); ++g)
    if (group_size[g] > group_size[best]) best = g;

  const std::vector<CallSig>& ref = by_rank[group_rep[best]];
  std::size_t dissent = 0;
  while (group[dissent] == static_cast<int>(best)) ++dissent;
  const std::vector<CallSig>& got = by_rank[dissent];

  SeqDiff diff = seq_diff(lift(ref), lift(got));
  d.ok = false;
  d.rank = static_cast<int>(dissent);
  d.index = diff.index;
  d.field = diff.field;
  std::ostringstream os;
  os << "rank " << dissent << " diverges from the majority ("
     << group_size[best] << "/" << by_rank.size() << " ranks) at call #"
     << diff.index << ": ";
  switch (diff.kind) {
    case SeqDiff::Kind::field:
      d.kind = "trace-mismatch";
      os << "expected " << sig_at(ref, diff.index) << ", issued "
         << sig_at(got, diff.index) << " (field " << diff.field << ")";
      break;
    case SeqDiff::Kind::extra_b:
      d.kind = "trace-extra";
      os << "issued an extra " << sig_at(got, diff.index)
         << " the other ranks do not";
      break;
    case SeqDiff::Kind::extra_a:
      d.kind = "trace-skip";
      os << "skipped the " << sig_at(ref, diff.index)
         << " the other ranks issued";
      break;
    case SeqDiff::Kind::reorder:
      d.kind = "trace-reorder";
      os << "issued " << sig_at(ref, diff.index) << " and "
         << sig_at(ref, diff.index + 1) << " in the opposite order";
      break;
    case SeqDiff::Kind::length:
      d.kind = "trace-length";
      os << "issued " << got.size() << " collectives, majority issued "
         << ref.size();
      break;
    case SeqDiff::Kind::equal:
      break;
  }
  d.detail = os.str();
  return d;
}

namespace {

// Backtracking matcher: the set of sequence positions reachable after
// consuming `n` starting from each position in `from`. Tracks the deepest
// point any attempt reached and the pattern expected there, so a failed
// match is reported where it got furthest.
struct MatchState {
  const std::vector<CallSig>* seq;
  std::size_t deepest = 0;
  SigPat expected;
  bool has_expected = false;
};

std::set<std::size_t> match(const Node& n, const std::set<std::size_t>& from,
                            MatchState& st) {
  std::set<std::size_t> out;
  switch (n.kind) {
    case Node::Kind::call:
      for (std::size_t p : from) {
        if (p < st.seq->size() && pat_matches(n.sig, (*st.seq)[p])) {
          out.insert(p + 1);
        } else if (p >= st.deepest) {
          st.deepest = p;
          st.expected = n.sig;
          st.has_expected = true;
        }
      }
      return out;
    case Node::Kind::seq: {
      std::set<std::size_t> cur = from;
      for (const Node& k : n.kids) {
        cur = match(k, cur, st);
        if (cur.empty()) break;
      }
      return cur;
    }
    case Node::Kind::branch: {
      // A concrete trace took one arm; accept either.
      out = match(n.kids[0], from, st);
      std::set<std::size_t> alt = match(n.kids[1], from, st);
      out.insert(alt.begin(), alt.end());
      return out;
    }
    case Node::Kind::loop: {
      if (!n.rank_trip && n.trip != kAnyTrip) {
        std::set<std::size_t> cur = from;
        for (int t = 0; t < n.trip && !cur.empty(); ++t)
          cur = match(n.kids[0], cur, st);
        return cur;
      }
      // Unknown trip count: zero or more repetitions (fixpoint).
      out = from;
      std::set<std::size_t> frontier = from;
      while (!frontier.empty()) {
        std::set<std::size_t> next = match(n.kids[0], frontier, st);
        frontier.clear();
        for (std::size_t p : next)
          if (out.insert(p).second) frontier.insert(p);
      }
      return out;
    }
  }
  return out;
}

}  // namespace

Diag match_skeleton(const Skeleton& sk, const std::vector<CallSig>& seq) {
  Diag d;
  d.program = sk.program;
  MatchState st{&seq, 0, SigPat{}, false};
  std::set<std::size_t> ends = match(sk.root, {0}, st);
  if (ends.count(seq.size()) > 0) return d;

  d.ok = false;
  d.kind = "skeleton-mismatch";
  std::ostringstream os;
  if (!ends.empty() && *ends.rbegin() >= st.deepest) {
    // The skeleton was fully consumed but the trace kept going.
    std::size_t at = *ends.rbegin();
    d.index = at;
    os << "recorded sequence does not fit the declared skeleton: "
       << "unexpected trailing " << sig_at(seq, at) << " at call #" << at;
  } else {
    d.index = st.deepest;
    os << "recorded sequence does not fit the declared skeleton: ";
    if (st.has_expected) {
      os << "expected " << st.expected.to_string() << ", ";
      if (auto f = first_mismatch(st.expected,
                                  st.deepest < seq.size()
                                      ? pat(seq[st.deepest])
                                      : SigPat{})) {
        if (st.deepest < seq.size()) d.field = field_name(*f);
      }
    }
    os << "got " << sig_at(seq, st.deepest) << " at call #" << st.deepest;
  }
  d.detail = os.str();
  return d;
}

}  // namespace srm::sv
