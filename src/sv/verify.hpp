// sv::verify — the path-sensitive static matching pass over a comm
// skeleton, plus the sequence-diff classifier shared with the trace layer.
//
// verify() proves that every rank-feasible path through a skeleton issues
// the identical collective sequence, or pinpoints the divergent
// conditional/loop (`where`) and the first mismatched signature field.
// The rules are PARCOACH's, over the IR instead of a compiler CFG:
//  * a rank-dependent branch must have arms that flatten to compatible
//    call sequences (uniform branches may differ — every rank agrees on
//    the arm);
//  * a loop whose trip count depends on the rank must not issue
//    collectives in its body;
//  * inside a rank-dependent branch, loops must have a known trip count
//    (an unknown-trip loop that issues collectives makes the arm's
//    sequence unprovable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sv/ir.hpp"

namespace srm::sv {

/// One verification outcome: ok, or a localized diagnostic.
///
/// `kind` values:
///   static layer: "rank-loop", "arm-mismatch", "arm-extra", "arm-reorder",
///                 "arm-length", "arm-unprovable"
///   trace layer (sv/trace.hpp): "trace-mismatch", "trace-extra",
///                 "trace-skip", "trace-reorder", "trace-length",
///                 "skeleton-mismatch", "trace-empty"
struct Diag {
  bool ok = true;
  std::string program;
  std::string kind;       ///< divergence class (empty when ok)
  std::string where;      ///< anchor of the divergent conditional/loop
  std::string field;      ///< first mismatched signature field, if any
  std::size_t index = 0;  ///< call index where divergence was localized
  int rank = -1;          ///< trace layer: the dissenting rank
  std::string detail;     ///< full human-readable explanation

  std::string to_string() const;
};

/// Classification of the first divergence between two call sequences.
struct SeqDiff {
  enum class Kind : std::uint8_t {
    equal,
    field,    ///< signatures at `index` differ on `field`
    extra_a,  ///< a has an extra call at `index` (b skips it)
    extra_b,  ///< b has an extra call at `index`
    reorder,  ///< calls at `index` and `index`+1 are swapped
    length,   ///< sequences diverge in length beyond a single extra call
  };
  Kind kind = Kind::equal;
  std::size_t index = 0;
  std::string field;  ///< set for Kind::field
};

/// Compare two call sequences position by position (wildcards unify) and
/// classify the first divergence.
SeqDiff seq_diff(const std::vector<SigPat>& a, const std::vector<SigPat>& b);

/// Statically verify one skeleton.
Diag verify(const Skeleton& sk);

}  // namespace srm::sv
