#include "sv/selfcheck.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace srm::sv {

bool selfcheck_enabled() {
  const char* v = std::getenv("SRM_SV_SELFCHECK");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

SelfCheck::SelfCheck(coll::Collectives& impl, Skeleton sk, bool arm)
    : impl_(&impl), sk_(std::move(sk)), armed_(arm) {
  if (armed_) impl_->set_trace_sink(&rec_);
}

SelfCheck::~SelfCheck() {
  if (armed_ && impl_->trace_sink() == &rec_) impl_->set_trace_sink(nullptr);
}

int SelfCheck::finish() {
  if (!armed_) return 0;

  Diag d = verify(sk_);
  if (d.ok && !rec_.empty()) {
    d = align_ranks(rec_.by_rank());
    if (!d.ok) d.program = sk_.program;
  }
  if (d.ok && !rec_.empty() && !rec_.by_rank()[0].empty())
    d = match_skeleton(sk_, rec_.by_rank()[0]);

  if (!d.ok) {
    std::fprintf(stderr, "%s\n", d.to_string().c_str());
    return 1;
  }
  std::size_t calls = rec_.empty() ? 0 : rec_.by_rank()[0].size();
  std::fprintf(stderr, "[sv] %s: ok (%zu ranks, %zu calls per rank)\n",
               sk_.program.c_str(), rec_.by_rank().size(), calls);
  return 0;
}

}  // namespace srm::sv
