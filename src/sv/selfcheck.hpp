// sv::SelfCheck — the in-program harness that ties a declared skeleton to
// a live run.
//
// A program declares its skeleton next to its code and constructs a
// SelfCheck around its Collectives implementation. When armed (explicitly,
// or via SRM_SV_SELFCHECK=1 in the environment — how sv_verify drives the
// example/bench binaries), the recording shim is installed at the NVI
// boundary for the program's run; finish() then runs all three checks:
//   1. static verify of the declared skeleton (sv/verify.hpp),
//   2. cross-rank lockstep alignment of the recorded traces,
//   3. rank 0's recorded sequence matched against the skeleton,
// prints the first diagnostic (or an ok line) to stderr, and returns a
// process exit status. Unarmed, everything is a no-op and finish()
// returns 0.
#pragma once

#include <string>
#include <utility>

#include "coll/iface.hpp"
#include "sv/trace.hpp"

namespace srm::sv {

/// True when SRM_SV_SELFCHECK is set in the environment (and not "0").
bool selfcheck_enabled();

class SelfCheck {
 public:
  SelfCheck(coll::Collectives& impl, Skeleton sk,
            bool arm = selfcheck_enabled());
  SelfCheck(const SelfCheck&) = delete;
  SelfCheck& operator=(const SelfCheck&) = delete;
  ~SelfCheck();

  bool armed() const { return armed_; }
  Recorder& recorder() { return rec_; }
  const Skeleton& skeleton() const { return sk_; }

  /// Run the checks over what was recorded; print the first diagnostic (or
  /// an ok summary) to stderr. Returns 0 on success, 1 on a diagnostic;
  /// 0 (silently) when unarmed.
  int finish();

 private:
  coll::Collectives* impl_;
  Skeleton sk_;
  bool armed_;
  Recorder rec_;
};

}  // namespace srm::sv
