// sv_verify — CLI driver for the collective-matching verifier.
//
//   sv_verify gauntlet              run the seeded-mismatch mutants
//   sv_verify programs BIN...       run each program binary with
//                                   SRM_SV_SELFCHECK=1 and require a clean
//                                   self-check (static verify + cross-rank
//                                   alignment + skeleton match, in-process)
//   sv_verify all BIN...            both
//
// Exit status: 0 when everything passed, 1 otherwise. The program binaries
// carry their own skeleton declarations (examples/) or build their
// expected fragments from the canned timing loops (bench/ harness), so
// this driver only needs to spawn them and collect exit codes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sv/gauntlet.hpp"

#ifdef __unix__
#include <sys/wait.h>
#endif

namespace {

int run_gauntlet_cli() {
  std::vector<srm::sv::MutantResult> results = srm::sv::run_gauntlet();
  int failed = 0;
  for (const srm::sv::MutantResult& r : results) {
    const char* verdict = r.pass ? "PASS" : "FAIL";
    if (r.expect_kind.empty()) {
      std::printf("[%s] %-28s expect ok, got %s\n", verdict, r.name.c_str(),
                  r.got.ok ? "ok" : r.got.kind.c_str());
    } else {
      std::printf("[%s] %-28s expect %s%s%s, got %s%s%s\n", verdict,
                  r.name.c_str(), r.expect_kind.c_str(),
                  r.expect_field.empty() ? "" : "/",
                  r.expect_field.c_str(),
                  r.got.ok ? "ok" : r.got.kind.c_str(),
                  r.got.field.empty() ? "" : "/", r.got.field.c_str());
    }
    if (!r.pass) {
      ++failed;
      if (!r.got.ok)
        std::printf("       diagnostic: %s\n", r.got.to_string().c_str());
    }
  }
  std::printf("gauntlet: %zu mutants, %d failed\n", results.size(), failed);
  return failed == 0 ? 0 : 1;
}

int run_programs_cli(const std::vector<std::string>& bins) {
  if (bins.empty()) {
    std::fprintf(stderr, "sv_verify: no program binaries given\n");
    return 2;
  }
  // Children inherit the armed self-check through the environment.
  setenv("SRM_SV_SELFCHECK", "1", 1);
  int failed = 0;
  for (const std::string& bin : bins) {
    std::string cmd = "\"" + bin + "\" >/dev/null";
    int status = std::system(cmd.c_str());  // NOLINT(concurrency-mt-unsafe)
    int code = -1;
#ifdef __unix__
    if (status != -1 && WIFEXITED(status)) code = WEXITSTATUS(status);
#else
    code = status;
#endif
    std::printf("[%s] %s (exit %d)\n", code == 0 ? "PASS" : "FAIL",
                bin.c_str(), code);
    if (code != 0) ++failed;
  }
  std::printf("programs: %zu binaries, %d failed\n", bins.size(), failed);
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = argc > 1 ? argv[1] : "gauntlet";
  std::vector<std::string> bins;
  for (int i = 2; i < argc; ++i) bins.emplace_back(argv[i]);

  if (mode == "gauntlet") return run_gauntlet_cli();
  if (mode == "programs") return run_programs_cli(bins);
  if (mode == "all") {
    int rc = run_gauntlet_cli();
    int rc2 = run_programs_cli(bins);
    return rc != 0 || rc2 != 0 ? 1 : 0;
  }
  std::fprintf(stderr,
               "usage: sv_verify gauntlet | sv_verify programs BIN... | "
               "sv_verify all BIN...\n");
  return 2;
}
