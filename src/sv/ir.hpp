// sv::ir — the comm-skeleton IR: a declarative model of the collective
// structure of a program written against coll::Collectives.
//
// A skeleton is a tree of seq / branch / loop nodes whose leaves are
// collective-call signatures (SigPat — a coll::CallSig with optional
// wildcard fields). Branches carry whether their predicate is
// *rank-dependent* (different ranks may take different arms) or *uniform*
// (replicated data: every rank takes the same arm). Loops carry their trip
// count — a known constant, unknown-but-uniform (kAnyTrip), or
// rank-dependent (the classic PARCOACH error when the body issues
// collectives).
//
// Skeletons are declared alongside each program in examples/ and bench/;
// sv/verify.hpp proves all rank-feasible paths issue identical collective
// sequences, and sv/trace.hpp checks recorded per-rank signature sequences
// against the declaration so skeletons cannot rot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "coll/sig.hpp"

namespace srm::sv {

using coll::CallSig;
using coll::CollKind;
using coll::Dtype;
using coll::Plane;
using coll::RedOp;

// ---- signature patterns -------------------------------------------------

/// Wildcards for SigPat fields (distinct from coll::kNoRoot / kNoRed,
/// which mean "this op has no such field").
inline constexpr std::size_t kAnyCount = static_cast<std::size_t>(-1);
inline constexpr int kAnyRoot = -2;
inline constexpr int kAnyRed = -2;
inline constexpr int kAnyPlane = -1;
inline constexpr int kAnyTrip = -1;

/// The comparable fields of a collective signature, in diagnostic order.
enum class SigField : std::uint8_t { op, dtype, count, root, red, plane };
const char* field_name(SigField f);

/// A collective-call signature with optional wildcard fields. A concrete
/// coll::CallSig lifts to a fully-ground SigPat via pat().
struct SigPat {
  CollKind op = CollKind::barrier;
  Dtype dtype = Dtype::kByte;
  std::size_t count = kAnyCount;
  int root = coll::kNoRoot;  ///< kAnyRoot = wildcard
  int red = coll::kNoRed;    ///< kAnyRed = wildcard
  int plane = kAnyPlane;     ///< static_cast<int>(Plane) or kAnyPlane

  bool operator==(const SigPat&) const = default;
  std::string to_string() const;
};

/// Ground pattern of a concrete signature.
SigPat pat(const CallSig& s);

/// First field on which two patterns cannot denote the same signature
/// (wildcards unify with anything); nullopt when compatible. Barrier
/// carries no payload fields, so two barriers always unify.
std::optional<SigField> first_mismatch(const SigPat& a, const SigPat& b);

inline bool pat_compatible(const SigPat& a, const SigPat& b) {
  return !first_mismatch(a, b).has_value();
}
inline bool pat_matches(const SigPat& p, const CallSig& s) {
  return pat_compatible(p, pat(s));
}

// ---- signature builders (the declaration vocabulary) --------------------

SigPat sig_bcast(Dtype d, std::size_t count, int root);
SigPat sig_reduce(Dtype d, std::size_t count, RedOp op, int root);
SigPat sig_allreduce(Dtype d, std::size_t count, RedOp op);
SigPat sig_barrier();
SigPat sig_scatter(Dtype d, std::size_t count, int root);
SigPat sig_gather(Dtype d, std::size_t count, int root);
SigPat sig_allgather(Dtype d, std::size_t count);
SigPat sig_reduce_scatter(Dtype d, std::size_t count, RedOp op);

/// Pin the transport plane of a builder result (default: any plane).
inline SigPat real(SigPat p) {
  p.plane = static_cast<int>(Plane::real);
  return p;
}
inline SigPat symbolic(SigPat p) {
  p.plane = static_cast<int>(Plane::symbolic);
  return p;
}

// ---- skeleton nodes -----------------------------------------------------

struct Node {
  enum class Kind : std::uint8_t { call, seq, branch, loop };

  Kind kind = Kind::seq;
  SigPat sig;              ///< call: the signature issued
  std::string where;       ///< branch/loop: human-readable source anchor
  bool rank_pred = false;  ///< branch: predicate depends on the rank
  int trip = kAnyTrip;     ///< loop: trip count (kAnyTrip = data-dependent)
  bool rank_trip = false;  ///< loop: trip count depends on the rank
  std::vector<Node> kids;  ///< seq: children; branch: {then, else}; loop: {body}

  std::string to_string() const;
};

/// One collective call.
Node call(SigPat s);

/// Sequential composition (empty seq = the empty arm).
inline Node seq() { return Node{}; }
template <class... Kids>
Node seq(Node first, Kids... rest) {
  Node n;
  n.kind = Node::Kind::seq;
  n.kids.push_back(std::move(first));
  (n.kids.push_back(std::move(rest)), ...);
  return n;
}

/// Branch on replicated data: every rank takes the same arm, so the arms
/// may issue different sequences.
Node branch_uniform(std::string where, Node then_arm, Node else_arm = seq());
/// Branch on a rank-dependent predicate: different ranks may take different
/// arms, so the verifier requires both arms to issue identical sequences.
Node branch_rank(std::string where, Node then_arm, Node else_arm = seq());

/// Loop with a known, rank-uniform trip count.
Node loop(int trip, Node body);
/// Loop whose trip count is data-dependent but identical on every rank
/// (e.g. an iterate-until-converged loop over replicated residuals).
Node loop_uniform(std::string where, Node body);
/// Loop whose trip count depends on the rank — an error whenever the body
/// issues collectives.
Node loop_rank(std::string where, Node body);

/// A program's declared collective structure.
struct Skeleton {
  std::string program;  ///< name reported in diagnostics
  Node root;
};

}  // namespace srm::sv
