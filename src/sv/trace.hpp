// sv::trace — the trace-prefix cross-validator: a recording shim at the
// coll::Collectives NVI boundary plus two checks over the recorded
// signature streams.
//
// Recorder implements coll::TraceSink and captures each rank's concrete
// CallSig sequence during a run. align_ranks() lockstep-aligns the per-rank
// sequences and localizes the first cross-rank divergence (which rank, at
// which call index, on which signature field). match_skeleton() replays one
// rank's recorded sequence against the program's declared skeleton —
// treating unknown-trip loops as any-repetition and branches as
// alternation — so a skeleton that no longer describes the code is caught
// the next time the program runs with SRM_SV_SELFCHECK=1.
#pragma once

#include <vector>

#include "coll/sig.hpp"
#include "sv/verify.hpp"

namespace srm::sv {

/// Per-rank signature recorder; install with
/// `collectives.set_trace_sink(&rec)`.
class Recorder final : public coll::TraceSink {
 public:
  void on_call(int rank, int nranks, const CallSig& sig) override;

  const std::vector<std::vector<CallSig>>& by_rank() const { return seqs_; }
  bool empty() const { return seqs_.empty(); }
  void clear() { seqs_.clear(); }

 private:
  std::vector<std::vector<CallSig>> seqs_;
};

/// Lockstep-align the per-rank sequences: the majority sequence is the
/// reference, and the first dissenting rank's divergence is classified
/// (trace-mismatch / trace-extra / trace-skip / trace-reorder /
/// trace-length) with rank, call index, and field.
Diag align_ranks(const std::vector<std::vector<CallSig>>& by_rank);

/// Check one rank's recorded sequence against the declared skeleton.
Diag match_skeleton(const Skeleton& sk, const std::vector<CallSig>& seq);

}  // namespace srm::sv
