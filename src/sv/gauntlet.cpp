#include "sv/gauntlet.hpp"

#include <utility>

namespace srm::sv {

namespace {

// A concrete signature for synthetic traces (the dynamic-layer mutants).
CallSig csig(CollKind op, Dtype d = Dtype::kByte, std::size_t count = 0,
             int root = coll::kNoRoot, int red = coll::kNoRed,
             Plane plane = Plane::none) {
  return CallSig{op, d, count, root, red, plane};
}

CallSig c_bcast(std::size_t n, int root, Dtype d = Dtype::f64) {
  return csig(CollKind::bcast, d, n, root, coll::kNoRed, Plane::real);
}
CallSig c_allreduce(std::size_t n, RedOp op = RedOp::sum,
                    Dtype d = Dtype::f64) {
  return csig(CollKind::allreduce, d, n, coll::kNoRoot,
              static_cast<int>(op), Plane::real);
}
CallSig c_reduce(std::size_t n, int root, RedOp op = RedOp::sum) {
  return csig(CollKind::reduce, Dtype::f64, n, root, static_cast<int>(op),
              Plane::real);
}
CallSig c_barrier() { return csig(CollKind::barrier); }

// All ranks issue `base`; `mutate(rank seq)` plants the bug on one rank.
template <class Fn>
std::vector<std::vector<CallSig>> traces(int nranks,
                                         const std::vector<CallSig>& base,
                                         int bad_rank, Fn mutate) {
  std::vector<std::vector<CallSig>> out(static_cast<std::size_t>(nranks),
                                        base);
  mutate(out[static_cast<std::size_t>(bad_rank)]);
  return out;
}

struct Mutant {
  std::string name;
  std::string expect_kind;
  std::string expect_field;
  Diag got;
};

Mutant static_mutant(std::string name, std::string kind, std::string field,
                     Node root) {
  Skeleton sk{name, std::move(root)};
  Diag got = verify(sk);
  return Mutant{std::move(name), std::move(kind), std::move(field),
                std::move(got)};
}

Mutant trace_mutant(std::string name, std::string kind, std::string field,
                    const std::vector<std::vector<CallSig>>& by_rank) {
  Diag got = align_ranks(by_rank);
  return Mutant{std::move(name), std::move(kind), std::move(field),
                std::move(got)};
}

Mutant skeleton_mutant(std::string name, std::string kind, std::string field,
                       const Skeleton& sk,
                       const std::vector<CallSig>& seq) {
  Diag got = match_skeleton(sk, seq);
  return Mutant{std::move(name), std::move(kind), std::move(field),
                std::move(got)};
}

std::vector<Mutant> all_mutants() {
  std::vector<Mutant> m;

  // ---- static layer: skeletons with planted divergence ----

  // 1. Wrong root on some ranks: low ranks broadcast from 0, high from 1.
  m.push_back(static_mutant(
      "static-wrong-root-one-rank", "arm-mismatch", "root",
      branch_rank("if (rank < 2)", call(sig_bcast(Dtype::f64, 8, 0)),
                  call(sig_bcast(Dtype::f64, 8, 1)))));

  // 2. Conditional skip: non-root ranks skip the allreduce entirely.
  m.push_back(static_mutant(
      "static-conditional-skip", "arm-extra", "",
      branch_rank("if (rank != 0)",
                  seq(call(sig_allreduce(Dtype::f64, 4, RedOp::sum)),
                      call(sig_barrier())),
                  call(sig_barrier()))));

  // 3. Dtype mismatch across a rank branch.
  m.push_back(static_mutant(
      "static-dtype-mismatch", "arm-mismatch", "dtype",
      branch_rank("if (rank % 2 == 0)",
                  call(sig_allreduce(Dtype::f64, 16, RedOp::sum)),
                  call(sig_allreduce(Dtype::f32, 16, RedOp::sum)))));

  // 4. Count mismatch across a rank branch.
  m.push_back(static_mutant(
      "static-count-mismatch", "arm-mismatch", "count",
      branch_rank("if (rank == 0)",
                  call(sig_reduce(Dtype::f64, 64, RedOp::sum, 0)),
                  call(sig_reduce(Dtype::f64, 32, RedOp::sum, 0)))));

  // 5. RedOp mismatch across a rank branch.
  m.push_back(static_mutant(
      "static-redop-mismatch", "arm-mismatch", "red",
      branch_rank("if (rank < nranks/2)",
                  call(sig_allreduce(Dtype::f64, 1, RedOp::sum)),
                  call(sig_allreduce(Dtype::f64, 1, RedOp::max)))));

  // 6. Reordered collectives across a rank branch.
  m.push_back(static_mutant(
      "static-op-reorder", "arm-reorder", "",
      branch_rank("if (rank == 0)",
                  seq(call(sig_bcast(Dtype::f64, 8, 0)),
                      call(sig_reduce(Dtype::f64, 8, RedOp::sum, 0))),
                  seq(call(sig_reduce(Dtype::f64, 8, RedOp::sum, 0)),
                      call(sig_bcast(Dtype::f64, 8, 0))))));

  // 7. Extra barrier on one side of a rank branch.
  m.push_back(static_mutant(
      "static-extra-barrier", "arm-extra", "",
      branch_rank("if (rank == 0)",
                  seq(call(sig_allreduce(Dtype::f64, 2, RedOp::sum)),
                      call(sig_barrier())),
                  call(sig_allreduce(Dtype::f64, 2, RedOp::sum)))));

  // 8. Collective inside a rank-dependent loop trip count.
  m.push_back(static_mutant(
      "static-rank-loop", "rank-loop", "",
      loop_rank("for (int i = 0; i < rank; ++i)", call(sig_barrier()))));

  // 9. Transport-plane mismatch across a rank branch.
  m.push_back(static_mutant(
      "static-plane-mismatch", "arm-mismatch", "plane",
      branch_rank("if (rank % 2 == 0)",
                  call(real(sig_allreduce(Dtype::f64, 8, RedOp::sum))),
                  call(symbolic(sig_allreduce(Dtype::f64, 8, RedOp::sum))))));

  // ---- dynamic layer: per-rank traces with one dissenting rank ----

  const std::vector<CallSig> base = {c_bcast(8, 0), c_allreduce(4),
                                     c_reduce(16, 0), c_barrier()};

  // 10. One rank broadcasts from the wrong root.
  m.push_back(trace_mutant("trace-root-diverge", "trace-mismatch", "root",
                           traces(4, base, 2, [](std::vector<CallSig>& s) {
                             s[0] = c_bcast(8, 1);
                           })));

  // 11. One rank skips the allreduce.
  m.push_back(trace_mutant("trace-skip-allreduce", "trace-skip", "",
                           traces(4, base, 3, [](std::vector<CallSig>& s) {
                             s.erase(s.begin() + 1);
                           })));

  // 12. One rank issues an extra barrier mid-sequence.
  m.push_back(trace_mutant("trace-extra-barrier", "trace-extra", "",
                           traces(4, base, 1, [](std::vector<CallSig>& s) {
                             s.insert(s.begin() + 2, c_barrier());
                           })));

  // 13. One rank swaps two adjacent collectives.
  m.push_back(trace_mutant("trace-reorder", "trace-reorder", "",
                           traces(4, base, 2, [](std::vector<CallSig>& s) {
                             std::swap(s[1], s[2]);
                           })));

  // 14. One rank reduces in f32 while the rest reduce in f64.
  m.push_back(trace_mutant("trace-dtype-diverge", "trace-mismatch", "dtype",
                           traces(4, base, 1, [](std::vector<CallSig>& s) {
                             s[1] = c_allreduce(4, RedOp::sum, Dtype::f32);
                           })));

  // ---- skeleton-vs-trace layer: declaration out of sync with the run ----

  const Skeleton decl{
      "skeleton-decl",
      seq(call(sig_bcast(Dtype::f64, 8, 0)),
          call(sig_allreduce(Dtype::f64, 4, RedOp::sum)),
          call(sig_barrier()))};

  // 15. The run drops the trailing barrier the skeleton declares.
  m.push_back(skeleton_mutant("skeleton-missing-barrier", "skeleton-mismatch",
                              "", decl, {c_bcast(8, 0), c_allreduce(4)}));

  // 16. The run disagrees with the declared element count.
  m.push_back(skeleton_mutant(
      "skeleton-count-drift", "skeleton-mismatch", "count", decl,
      {c_bcast(8, 0), c_allreduce(2), c_barrier()}));

  // ---- clean controls: no diagnostics allowed ----

  m.push_back(static_mutant(
      "control-clean-static", "", "",
      seq(branch_rank("if (rank == root)", call(sig_bcast(Dtype::f64, 8, 0)),
                      call(sig_bcast(Dtype::f64, 8, 0))),
          loop(3, call(sig_allreduce(Dtype::f64, 4, RedOp::sum))),
          branch_uniform("if (converged)", call(sig_barrier()),
                         seq(call(sig_allreduce(Dtype::f64, 1, RedOp::max)),
                             call(sig_barrier()))))));

  m.push_back(trace_mutant("control-clean-trace", "", "",
                           traces(4, base, 0, [](std::vector<CallSig>&) {})));

  return m;
}

}  // namespace

std::vector<MutantResult> run_gauntlet() {
  std::vector<MutantResult> out;
  for (Mutant& mu : all_mutants()) {
    MutantResult r;
    r.name = std::move(mu.name);
    r.expect_kind = std::move(mu.expect_kind);
    r.expect_field = std::move(mu.expect_field);
    r.got = std::move(mu.got);
    if (r.expect_kind.empty()) {
      r.pass = r.got.ok;
    } else {
      r.pass = !r.got.ok && r.got.kind == r.expect_kind &&
               (r.expect_field.empty() || r.got.field == r.expect_field);
    }
    out.push_back(std::move(r));
  }
  return out;
}

bool gauntlet_ok(const std::vector<MutantResult>& results) {
  for (const MutantResult& r : results)
    if (!r.pass) return false;
  return true;
}

}  // namespace srm::sv
