// srm::sv — static collective-matching verifier: comm-skeleton IR,
// path-sensitive static matching, trace-prefix cross-validation, and the
// seeded-mismatch gauntlet. One include for programs declaring skeletons.
#pragma once

#include "sv/gauntlet.hpp"   // IWYU pragma: export
#include "sv/ir.hpp"         // IWYU pragma: export
#include "sv/selfcheck.hpp"  // IWYU pragma: export
#include "sv/trace.hpp"      // IWYU pragma: export
#include "sv/verify.hpp"     // IWYU pragma: export
