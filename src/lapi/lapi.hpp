// A LAPI-like one-sided communication layer (paper §2.3).
//
// Models the semantics SRM depends on:
//  * nonblocking `put` with three counters — origin (source buffer reusable),
//    target (data arrived at target), completion (origin learns the target
//    deposit finished);
//  * `wait_cntr` with real LAPI semantics: block until the counter reaches
//    `value`, then atomically subtract `value` (this is what makes the SRM
//    two-buffer flow control clean);
//  * progress/interrupt management: an arrived message is processed by the
//    target's dispatcher (a) immediately + poll cost if the target task is
//    inside a LAPI call, (b) after the interrupt cost if interrupts are
//    enabled, or (c) not until the target's next LAPI call if interrupts are
//    disabled — the exact hazard the paper manages around the shared-memory
//    phases;
//  * active messages (header handler runs at the target at process time).
//
// Data deposit is performed by the dispatcher at process time, which matches
// the SP "Colony" adapter (no autonomous RDMA engine; LAPI moves data in the
// header handler).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chk/chk.hpp"
#include "machine/cluster.hpp"
#include "sim/task.hpp"
#include "sim/wait.hpp"

namespace srm::lapi {

class Endpoint;

/// A LAPI counter: bumped by the dispatcher, waited on by the owning task.
/// Carries a chk::SyncVar — put deliveries join their message clock into it,
/// Waitcntr returns acquire from it — and an optional label used in race
/// reports and deadlock dumps.
class Counter {
 public:
  explicit Counter(sim::Engine& eng, std::string label = {})
      : label_(std::move(label)), wq_(eng, label_) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  std::uint64_t value() const noexcept { return value_; }
  const std::string& label() const noexcept { return label_; }
  chk::SyncVar& sync() noexcept { return sync_; }

  /// Dispatcher-side bump (visibility rules already applied by Endpoint).
  void bump(std::uint64_t delta = 1) {
    value_ += delta;
    wq_.notify();
  }

  /// LAPI_Setcntr.
  void set(std::uint64_t v) {
    value_ = v;
    wq_.notify();
  }

 private:
  friend class Endpoint;
  std::uint64_t value_ = 0;
  std::string label_;
  chk::SyncVar sync_;
  sim::WaitQueue wq_;
};

/// Per-task LAPI endpoint.
class Endpoint {
 public:
  Endpoint(machine::TaskCtx& ctx);
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  int rank() const noexcept { return ctx_->rank; }

  /// Nonblocking one-sided put of @p bytes from @p src (origin memory) to
  /// @p dst (target memory). Any counter may be null.
  ///  - @p tgt_cntr lives at the *target* and bumps when data is deposited;
  ///  - @p org_cntr lives at the origin and bumps when @p src is reusable;
  ///  - @p cmpl_cntr lives at the origin and bumps when the target deposit
  ///    completed (internal ack).
  /// Suspends only for the origin-side call + injection overhead.
  sim::CoTask put(Endpoint& target, void* dst, const void* src,
                  std::size_t bytes, Counter* tgt_cntr,
                  Counter* org_cntr = nullptr, Counter* cmpl_cntr = nullptr);

  /// Zero-byte put used purely to bump a remote counter (SRM flow control).
  sim::CoTask put_signal(Endpoint& target, Counter& tgt_cntr) {
    return put(target, nullptr, nullptr, 0, &tgt_cntr);
  }

  /// Active message: run @p handler at the target (dispatcher context) after
  /// a @p bytes-sized message arrives and is processed.
  sim::CoTask am(Endpoint& target, std::size_t bytes,
                 std::function<void()> handler);

  /// Blocking one-sided get (modelled as AM request + put back).
  sim::CoTask get(Endpoint& target, void* dst, const void* src,
                  std::size_t bytes);

  /// LAPI_Waitcntr: block until @p c >= @p value, then subtract @p value.
  /// While blocked the task polls, so arrivals are processed promptly.
  sim::CoTask wait_cntr(Counter& c, std::uint64_t value);

  /// Nonblocking probe (LAPI_Getcntr): drains pending arrivals first (it is
  /// a LAPI call, hence a progress opportunity), then reads the counter.
  sim::CoTask get_cntr(Counter& c, std::uint64_t& out);

  /// Enable/disable interrupt-mode message reception (§2.3 "Management of
  /// LAPI Interrupts"). Enabling schedules processing of anything pending.
  void set_interrupts(bool enabled);
  bool interrupts_enabled() const noexcept { return interrupts_; }

  /// Number of arrivals processed via the interrupt path (for tests).
  std::uint64_t interrupts_taken() const noexcept { return interrupts_taken_; }

 private:
  friend class Fabric;

  // Called by the network delivery event at the *target* endpoint.
  void on_arrival(std::function<void()> process);
  // Run all queued arrivals serially, charging poll cost for each.
  void drain_pending();

  machine::TaskCtx* ctx_;
  const machine::LapiParams* lp_;
  // Observability cells, resolved once per endpoint (keyed by origin rank):
  // data puts / zero-byte signals / active messages (value = bytes) and
  // Waitcntr stalls (value = virtual ns blocked).
  obs::Counter* put_ctr_;
  obs::Counter* signal_ctr_;
  obs::Counter* am_ctr_;
  obs::Counter* wait_ctr_;
  // Depth, not bool: SRM's pipelined collectives overlap protocol phases on
  // the master task (Fig. 5), so one task may be parked in two Waitcntr
  // calls; the dispatcher polls as long as any of them is active.
  int in_call_ = 0;
  bool interrupts_ = true;
  std::uint64_t interrupts_taken_ = 0;
  std::deque<std::function<void()>> pending_;
  sim::WaitQueue call_wq_;  // wakes pollers when new arrivals are processed
};

/// One endpoint per rank, owned together. Endpoints materialize on first
/// use: symbolic-transport runs never touch the network plane, and a
/// mega-scale topology must not pay 256K eager endpoint constructions.
class Fabric {
 public:
  explicit Fabric(machine::Cluster& cluster);
  Endpoint& ep(int rank) {
    auto& e = eps_.at(static_cast<std::size_t>(rank));
    if (e == nullptr) e = std::make_unique<Endpoint>(cluster_->ctx(rank));
    return *e;
  }
  machine::Cluster& cluster() noexcept { return *cluster_; }

 private:
  machine::Cluster* cluster_;
  std::vector<std::unique_ptr<Endpoint>> eps_;
};

}  // namespace srm::lapi
