#include "lapi/lapi.hpp"

#include <cstring>

namespace srm::lapi {

Endpoint::Endpoint(machine::TaskCtx& ctx)
    : ctx_(&ctx),
      lp_(&ctx.P->lapi),
      put_ctr_(ctx.obs != nullptr ? &ctx.obs->counter("lapi.put", ctx.rank)
                                  : nullptr),
      signal_ctr_(ctx.obs != nullptr
                      ? &ctx.obs->counter("lapi.signal", ctx.rank)
                      : nullptr),
      am_ctr_(ctx.obs != nullptr ? &ctx.obs->counter("lapi.am", ctx.rank)
                                 : nullptr),
      wait_ctr_(ctx.obs != nullptr ? &ctx.obs->counter("lapi.wait", ctx.rank)
                                   : nullptr),
      call_wq_(*ctx.eng) {}

void Endpoint::on_arrival(std::function<void()> process) {
  sim::Engine& eng = *ctx_->eng;
  if (in_call_) {
    eng.call_at(eng.now() + lp_->poll_dispatch, std::move(process));
  } else if (interrupts_) {
    ++interrupts_taken_;
    eng.call_at(eng.now() + lp_->interrupt_cost, std::move(process));
  } else {
    pending_.push_back(std::move(process));
  }
}

void Endpoint::drain_pending() {
  sim::Engine& eng = *ctx_->eng;
  sim::Time t = eng.now();
  while (!pending_.empty()) {
    t += lp_->poll_dispatch;
    eng.call_at(t, std::move(pending_.front()));
    pending_.pop_front();
  }
}

void Endpoint::set_interrupts(bool enabled) {
  interrupts_ = enabled;
  if (enabled && !pending_.empty()) {
    // Toggling the mode is itself a LAPI library call — a progress
    // opportunity: everything queued while interrupts were off is handled
    // by the dispatcher inline at polling cost, not via an interrupt.
    sim::Engine& eng = *ctx_->eng;
    sim::Time t = eng.now();
    while (!pending_.empty()) {
      t += lp_->poll_dispatch;
      eng.call_at(t, std::move(pending_.front()));
      pending_.pop_front();
    }
  }
}

sim::CoTask Endpoint::put(Endpoint& target, void* dst, const void* src,
                          std::size_t bytes, Counter* tgt_cntr,
                          Counter* org_cntr, Counter* cmpl_cntr) {
  SRM_CHECK_MSG(ctx_->node() != target.ctx_->node(),
                "LAPI put must cross nodes (use shared memory locally)");
  if (bytes > 0) {
    if (put_ctr_ != nullptr) put_ctr_->add(static_cast<double>(bytes));
  } else if (signal_ctr_ != nullptr) {
    signal_ctr_->add();
  }
  co_await ctx_->delay(lp_->call_overhead + ctx_->P->net.o_send);

  // Happens-before: the put carries a clock snapshot from the origin (fork).
  // The NIC's read of the source buffer is an origin-attributed access; the
  // deposit at the target is a write attributed to the same message; every
  // counter bump joins the message clock so Waitcntr acquires it.
  std::shared_ptr<chk::MsgClock> msg;
  chk::Checker* ck = nullptr;
  if (chk::on(ctx_->chk)) {
    ck = ctx_->chk.checker;
    msg = std::make_shared<chk::MsgClock>(ck->fork(ctx_->chk.actor));
    if (bytes > 0 && src != nullptr) {
      ck->access_remote(*msg, src, bytes, chk::Access::read);
    }
  }

  Endpoint* origin = this;
  // LAPI semantics: the origin buffer is reusable once the message has left
  // the adapter (org_cntr). Model that faithfully by snapshotting the
  // payload at egress-complete time; the deposit at the target then reads
  // the snapshot, so a (correctly synchronized) origin-side overwrite after
  // the org bump cannot corrupt the data in flight — while an overwrite
  // *before* the bump corrupts it exactly as real hardware would.
  auto staging = std::make_shared<std::vector<std::byte>>();
  auto process = [dst, bytes, tgt_cntr, cmpl_cntr, origin, &target, staging,
                  ck, msg] {
    if (bytes > 0) {
      SRM_CHECK(dst != nullptr);
      SRM_CHECK(staging->size() == bytes);
      if (ck != nullptr) {
        ck->access_remote(*msg, dst, bytes, chk::Access::write);
      }
      std::memcpy(dst, staging->data(), bytes);
    }
    if (tgt_cntr != nullptr) {
      if (ck != nullptr) ck->join(tgt_cntr->sync_, *msg);
      tgt_cntr->bump();
    }
    if (cmpl_cntr != nullptr) {
      // Internal ack back to the origin: pure latency, then origin-side
      // dispatcher visibility rules.
      sim::Engine& eng = *origin->ctx_->eng;
      eng.call_at(eng.now() + origin->ctx_->P->net.latency,
                  [origin, cmpl_cntr, ck, msg] {
                    origin->on_arrival([cmpl_cntr, ck, msg] {
                      if (ck != nullptr) ck->join(cmpl_cntr->sync_, *msg);
                      cmpl_cntr->bump();
                    });
                  });
    }
  };

  auto res = ctx_->cluster->network().inject(
      ctx_->node(), target.ctx_->node(), static_cast<double>(bytes),
      [&target, process = std::move(process)]() mutable {
        target.on_arrival(std::move(process));
      });

  if (bytes > 0) {
    SRM_CHECK(src != nullptr);
    const std::byte* sp = static_cast<const std::byte*>(src);
    ctx_->eng->call_at(res.egress_end, [staging, sp, bytes] {
      staging->assign(sp, sp + bytes);
    });
  }

  if (org_cntr != nullptr) {
    // Origin buffer reusable once fully injected; the origin dispatcher
    // makes the bump visible under the usual rules.
    ctx_->eng->call_at(res.egress_end, [this, org_cntr, ck, msg] {
      on_arrival([org_cntr, ck, msg] {
        if (ck != nullptr) ck->join(org_cntr->sync_, *msg);
        org_cntr->bump();
      });
    });
  }
}

sim::CoTask Endpoint::am(Endpoint& target, std::size_t bytes,
                         std::function<void()> handler) {
  SRM_CHECK(ctx_->node() != target.ctx_->node());
  if (am_ctr_ != nullptr) am_ctr_->add(static_cast<double>(bytes));
  co_await ctx_->delay(lp_->call_overhead + ctx_->P->net.o_send);
  ctx_->cluster->network().inject(
      ctx_->node(), target.ctx_->node(), static_cast<double>(bytes),
      [&target, handler = std::move(handler)]() mutable {
        target.on_arrival(std::move(handler));
      });
}

sim::CoTask Endpoint::get(Endpoint& target, void* dst, const void* src,
                          std::size_t bytes) {
  Counter done(*ctx_->eng);
  Endpoint* origin = this;
  machine::Cluster* cluster = ctx_->cluster;
  int tgt_node = target.ctx_->node();
  int org_node = ctx_->node();
  co_await am(target, 16, [=, &done] {
    // Runs at the target: stream the data back.
    cluster->network().inject(tgt_node, org_node, static_cast<double>(bytes),
                              [=, &done] {
                                origin->on_arrival([=, &done] {
                                  if (bytes > 0) std::memcpy(dst, src, bytes);
                                  done.bump();
                                });
                              });
  });
  co_await wait_cntr(done, 1);
}

sim::CoTask Endpoint::wait_cntr(Counter& c, std::uint64_t value) {
  co_await ctx_->delay(lp_->call_overhead);
  ++in_call_;
  drain_pending();
  sim::Time blocked_from = ctx_->eng->now();
  co_await c.wq_.wait_until([&c, value] { return c.value_ >= value; },
                            ctx_->rank);
  c.value_ -= value;
  chk::acq(&ctx_->chk, c.sync_,
           c.label_.empty() ? nullptr : c.label_.c_str());
  if (wait_ctr_ != nullptr)
    wait_ctr_->add(static_cast<double>(ctx_->eng->now() - blocked_from));
  --in_call_;
}

sim::CoTask Endpoint::get_cntr(Counter& c, std::uint64_t& out) {
  co_await ctx_->delay(lp_->call_overhead);
  ++in_call_;
  drain_pending();
  // Give same-time scheduled arrivals a chance to land before reading.
  co_await ctx_->delay(lp_->poll_dispatch);
  out = c.value_;
  // The probe observed whatever bumps have landed: acquire their clocks.
  chk::acq(&ctx_->chk, c.sync_,
           c.label_.empty() ? nullptr : c.label_.c_str());
  --in_call_;
}

Fabric::Fabric(machine::Cluster& cluster) : cluster_(&cluster) {
  eps_.resize(static_cast<std::size_t>(cluster.topology().nranks()));
}

}  // namespace srm::lapi
