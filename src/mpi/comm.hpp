// Mini-MPI: the message-passing baseline the paper compares against.
//
// Point-to-point with MPI semantics (tags, wildcards, non-overtaking order)
// over the same simulated cluster the SRM collectives use:
//
//  * intra-node: a 2-copy pipelined shared-memory channel — the sender copies
//    user data into bounded shm chunk slots, the receiver copies it out
//    (exactly the structure whose copy count the paper's Fig. 2 argument
//    targets);
//  * inter-node, Eager (size <= eager limit): data ships immediately and is
//    staged at the receiver; the receiving task pays tag matching plus a
//    staging->user copy. The eager limit *shrinks with the task count* for
//    the IBM profile, pushing medium messages onto the slower path (§2.3);
//  * inter-node, Rendezvous: RTS -> match -> CTS -> direct data; no staging
//    copy but an extra control round trip.
//
// Two tuning profiles model the paper's comparators: `ibm` (vendor-tuned,
// adaptive eager limit) and `mpich` (extra software layer over MPL/MPCI:
// higher per-call and matching costs, fixed eager limit).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "coll/buf.hpp"
#include "coll/iface.hpp"
#include "coll/ops.hpp"
#include "coll/symbolic.hpp"
#include "machine/cluster.hpp"
#include "sim/task.hpp"
#include "sim/trigger.hpp"
#include "sim/wait.hpp"

namespace srm::minimpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

class World;

/// Handle for a nonblocking operation.
struct Request {
  std::shared_ptr<sim::Trigger> done;
};

/// Per-rank MPI library state + API.
class Comm {
 public:
  Comm(World& world, machine::TaskCtx& ctx);
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const noexcept { return ctx_->rank; }
  int nranks() const noexcept { return ctx_->nranks(); }

  /// Blocking send: returns when @p buf is reusable.
  sim::CoTask send(int dst, int tag, const void* buf, std::size_t bytes);
  /// Blocking receive into @p buf (must be at least @p bytes long).
  sim::CoTask recv(int src, int tag, void* buf, std::size_t bytes);

  Request isend(int dst, int tag, const void* buf, std::size_t bytes);
  Request irecv(int src, int tag, void* buf, std::size_t bytes);
  sim::CoTask wait(Request req);

  /// Simultaneous send+receive (building block of recursive doubling).
  sim::CoTask sendrecv(int dst, int stag, const void* sbuf, std::size_t sbytes,
                       int src, int rtag, void* rbuf, std::size_t rbytes);

  // ---- Collectives (MPICH-era algorithms over point-to-point) ----

  /// Binomial-tree broadcast.
  sim::CoTask bcast(void* buf, std::size_t bytes, int root);
  /// Binomial-tree reduce; @p recv significant at the root only.
  sim::CoTask reduce(const void* send, void* recv, std::size_t count,
                     coll::Dtype d, coll::RedOp op, int root);
  /// Recursive-doubling allreduce (with the non-power-of-two fold).
  sim::CoTask allreduce(const void* send, void* recv, std::size_t count,
                        coll::Dtype d, coll::RedOp op);
  /// MPICH-1-era barrier (binomial gather + release).
  sim::CoTask barrier();

  /// Linear scatter/gather (the MPICH-1 algorithms: the root exchanges one
  /// message with every other rank), equal counts.
  sim::CoTask scatter(const void* sendbuf, void* recvbuf,
                      std::size_t bytes_per, int root);
  sim::CoTask gather(const void* sendbuf, void* recvbuf,
                     std::size_t bytes_per, int root);
  /// Allgather as gather + broadcast; reduce_scatter as reduce + scatter.
  sim::CoTask allgather(const void* sendbuf, void* recvbuf,
                        std::size_t bytes_per);
  sim::CoTask reduce_scatter(const void* sendbuf, void* recvbuf,
                             std::size_t count_per_rank, coll::Dtype d,
                             coll::RedOp op);

  machine::TaskCtx& ctx() noexcept { return *ctx_; }
  World& world() noexcept { return *world_; }

 private:
  friend class World;

  sim::CoTask send_shm(Comm& dst, int tag, const void* buf, std::size_t bytes);
  sim::CoTask send_eager(Comm& dst, int tag, const void* buf,
                         std::size_t bytes);
  sim::CoTask send_rndv(Comm& dst, int tag, const void* buf,
                        std::size_t bytes);

  World* world_;
  machine::TaskCtx* ctx_;
  const machine::MpiParams* mp_;
  // Observability cells keyed by sender rank: one per send path.
  obs::Counter* shm_ctr_;
  obs::Counter* eager_ctr_;
  obs::Counter* rndv_ctr_;

  // ---- receiver-side state ----
  struct ShmPipe;
  struct RndvState;
  struct Envelope {
    int src;
    int tag;
    std::size_t bytes;
    enum class Kind { shm, eager, rts } kind;
    std::shared_ptr<ShmPipe> pipe;          // kind == shm
    std::vector<std::byte> staged;          // kind == eager
    std::shared_ptr<RndvState> rndv;        // kind == rts
    std::shared_ptr<chk::MsgClock> hb;      // sender clock at send time
  };
  void enqueue(Envelope env);  // called at modelled arrival time
  std::shared_ptr<chk::MsgClock> hb_fork();
  void hb_acquire(const std::shared_ptr<chk::MsgClock>& m);
  std::deque<Envelope> arrived_;
  sim::WaitQueue arrival_wq_;
  std::uint64_t coll_seq_ = 0;  // per-rank collective sequence number
};

/// One Comm per rank plus the shared profile. World is the mini-MPI's face
/// of the shared Collectives interface: real descriptors forward to the
/// calling rank's Comm (and open an "mpi.*" span on that rank's timeline);
/// symbolic descriptors run the shared sym::Transport cost skeleton with an
/// MPI profile (per-call + layering software overhead per message), so
/// benches drive SRM and MPI through the same virtual calls in either mode.
/// Comms materialize on first use — symbolic runs never build the per-rank
/// point-to-point machinery.
class World final : public coll::Collectives {
 public:
  World(machine::Cluster& cluster, const machine::MpiParams& profile,
        std::string name);

  Comm& comm(int rank) {
    auto& c = comms_.at(static_cast<std::size_t>(rank));
    if (c == nullptr) {
      c = std::make_unique<Comm>(*this, cluster_->ctx(rank));
      real_used_ = true;
    }
    return *c;
  }
  machine::Cluster& cluster() noexcept { return *cluster_; }
  const machine::MpiParams& profile() const noexcept { return profile_; }
  const std::string& name() const noexcept { return name_; }
  std::size_t eager_limit() const noexcept { return eager_limit_; }

  std::string label() const override { return "mpi/" + name_; }

 protected:
  // ---- coll::Collectives hooks ----
  sim::CoTask v_bcast(machine::TaskCtx& t, coll::Buf buf, int root) override;
  sim::CoTask v_reduce(machine::TaskCtx& t, coll::Buf send, coll::Buf recv,
                       coll::RedOp op, int root) override;
  sim::CoTask v_allreduce(machine::TaskCtx& t, coll::Buf send, coll::Buf recv,
                          coll::RedOp op) override;
  /// No payload to dispatch on: symbolic until the first real operation (or
  /// direct comm() use), real after — uniform across ranks under collective
  /// calling order.
  sim::CoTask v_barrier(machine::TaskCtx& t) override;
  sim::CoTask v_scatter(machine::TaskCtx& t, coll::Buf send, coll::Buf recv,
                        int root) override;
  sim::CoTask v_gather(machine::TaskCtx& t, coll::Buf send, coll::Buf recv,
                       int root) override;
  sim::CoTask v_allgather(machine::TaskCtx& t, coll::Buf send,
                          coll::Buf recv) override;
  sim::CoTask v_reduce_scatter(machine::TaskCtx& t, coll::Buf send,
                               coll::Buf recv, coll::RedOp op) override;

 private:
  machine::Cluster* cluster_;
  machine::MpiParams profile_;
  std::string name_;
  std::size_t eager_limit_;
  coll::sym::Transport sym_;
  bool real_used_ = false;  // any Comm materialized (real plane touched)?
  bool sym_used_ = false;   // any symbolic op dispatched yet?
  std::vector<std::unique_ptr<Comm>> comms_;
};

}  // namespace srm::minimpi
