#include "mpi/comm.hpp"

#include <algorithm>
#include <cstring>

#include "coll/tree.hpp"

namespace srm::minimpi {

namespace {
/// Tag space reserved for collective internals.
constexpr int kCollTagBase = 1 << 20;
}  // namespace

// ---------------------------------------------------------------------------
// Receiver-side structures
// ---------------------------------------------------------------------------

/// Bounded chunk queue modelling the intra-node shared-memory channel.
struct Comm::ShmPipe {
  ShmPipe(sim::Engine& eng, std::size_t chunk_, int slots_)
      : chunk(chunk_), slots(slots_), wq(eng, "mpi.shm_pipe") {}
  std::size_t chunk;
  int slots;
  std::deque<std::vector<std::byte>> full;  // written, not yet drained
  sim::WaitQueue wq;
};

/// Shared rendezvous handshake state.
struct Comm::RndvState {
  explicit RndvState(sim::Engine& eng)
      : cts(eng, "mpi.rndv.cts"), data_done(eng, "mpi.rndv.data") {}
  void* rbuf = nullptr;
  sim::Trigger cts;        // fired at the sender when CTS arrives
  sim::Trigger data_done;  // fired at the receiver when data is deposited
};

Comm::Comm(World& world, machine::TaskCtx& ctx)
    : world_(&world),
      ctx_(&ctx),
      mp_(&world.profile()),
      shm_ctr_(ctx.obs != nullptr ? &ctx.obs->counter("mpi.send.shm", ctx.rank)
                                  : nullptr),
      eager_ctr_(ctx.obs != nullptr
                     ? &ctx.obs->counter("mpi.send.eager", ctx.rank)
                     : nullptr),
      rndv_ctr_(ctx.obs != nullptr
                    ? &ctx.obs->counter("mpi.send.rndv", ctx.rank)
                    : nullptr),
      arrival_wq_(*ctx.eng, "mpi.arrivals@" + std::to_string(ctx.rank)) {}

void Comm::enqueue(Envelope env) {
  arrived_.push_back(std::move(env));
  arrival_wq_.notify();
}

std::shared_ptr<chk::MsgClock> Comm::hb_fork() {
  if (!chk::on(ctx_->chk)) return nullptr;
  return std::make_shared<chk::MsgClock>(
      ctx_->chk.checker->fork(ctx_->chk.actor));
}

void Comm::hb_acquire(const std::shared_ptr<chk::MsgClock>& m) {
  if (m != nullptr && chk::on(ctx_->chk)) {
    ctx_->chk.checker->acquire_msg(ctx_->chk.actor, *m, "mpi.recv");
  }
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

sim::CoTask Comm::send(int dst, int tag, const void* buf, std::size_t bytes) {
  SRM_CHECK(dst >= 0 && dst < nranks());
  SRM_CHECK(tag >= 0);
  co_await ctx_->delay(mp_->call_overhead);
  Comm& target = world_->comm(dst);
  if (ctx_->topo->same_node(rank(), dst)) {
    if (shm_ctr_ != nullptr) shm_ctr_->add(static_cast<double>(bytes));
    co_await send_shm(target, tag, buf, bytes);
  } else if (bytes <= world_->eager_limit()) {
    if (eager_ctr_ != nullptr) eager_ctr_->add(static_cast<double>(bytes));
    co_await send_eager(target, tag, buf, bytes);
  } else {
    if (rndv_ctr_ != nullptr) rndv_ctr_->add(static_cast<double>(bytes));
    co_await send_rndv(target, tag, buf, bytes);
  }
}

sim::CoTask Comm::send_shm(Comm& dst, int tag, const void* buf,
                           std::size_t bytes) {
  auto pipe = std::make_shared<ShmPipe>(*ctx_->eng, mp_->shm_chunk,
                                        mp_->shm_slots);
  // The envelope (header in shared memory) becomes visible to the receiver
  // after one cache-line propagation.
  Envelope env{rank(), tag, bytes, Envelope::Kind::shm, pipe, {}, {}, {}};
  env.hb = hb_fork();
  Comm* target = &dst;
  ctx_->eng->call_at(ctx_->eng->now() + ctx_->P->mem.flag_propagation,
                     [target, env = std::move(env)]() mutable {
                       target->enqueue(std::move(env));
                     });
  // Pipelined copy into bounded shm slots (first of the two copies).
  const std::byte* src = static_cast<const std::byte*>(buf);
  std::size_t off = 0;
  do {
    std::size_t len = std::min(pipe->chunk, bytes - off);
    co_await pipe->wq.wait_until([&pipe] {
      return static_cast<int>(pipe->full.size()) < pipe->slots;
    });
    co_await ctx_->delay(mp_->shm_per_chunk);
    co_await ctx_->nd->mem.charge_copy(static_cast<double>(len));
    pipe->full.emplace_back(src + off, src + off + len);
    pipe->wq.notify();
    off += len;
  } while (off < bytes);
}

sim::CoTask Comm::send_eager(Comm& dst, int tag, const void* buf,
                             std::size_t bytes) {
  co_await ctx_->delay(ctx_->P->net.o_send + mp_->layer_overhead);
  // The NIC reads the user buffer during injection (no origin copy charge);
  // staging the real bytes models the data leaving the sender's control.
  Envelope env{rank(), tag, bytes, Envelope::Kind::eager, {}, {}, {}, {}};
  env.hb = hb_fork();
  const std::byte* p = static_cast<const std::byte*>(buf);
  env.staged.assign(p, p + bytes);
  Comm* target = &dst;
  auto res = ctx_->cluster->network().inject(
      ctx_->node(), dst.ctx_->node(), static_cast<double>(bytes),
      [target, env = std::move(env)]() mutable {
        target->enqueue(std::move(env));
      });
  // Blocking send returns when the buffer has fully left the NIC.
  sim::Trigger injected(*ctx_->eng);
  ctx_->eng->call_at(res.egress_end, [&injected] { injected.fire(); });
  co_await injected.wait();
}

sim::CoTask Comm::send_rndv(Comm& dst, int tag, const void* buf,
                            std::size_t bytes) {
  co_await ctx_->delay(ctx_->P->net.o_send + mp_->layer_overhead);
  auto st = std::make_shared<RndvState>(*ctx_->eng);
  // RTS: header-only control message.
  Envelope env{rank(), tag, bytes, Envelope::Kind::rts, {}, {}, st, {}};
  env.hb = hb_fork();
  Comm* target = &dst;
  ctx_->cluster->network().inject(ctx_->node(), dst.ctx_->node(), 64.0,
                                  [target, env = std::move(env)]() mutable {
                                    target->enqueue(std::move(env));
                                  });
  co_await st->cts.wait();
  // CTS carries the posted receive buffer: stream data straight into it.
  co_await ctx_->delay(ctx_->P->net.o_send);
  void* rbuf = st->rbuf;
  // The user buffer is reusable when send() returns (egress complete), so
  // snapshot it then; the deposit reads the snapshot.
  auto staging = std::make_shared<std::vector<std::byte>>();
  auto res = ctx_->cluster->network().inject(
      ctx_->node(), dst.ctx_->node(), static_cast<double>(bytes),
      [st, rbuf, staging, bytes] {
        if (bytes > 0) std::memcpy(rbuf, staging->data(), bytes);
        st->data_done.fire();
      });
  // Snapshot and unblock in ONE event: if these were two same-timestamp
  // events, a perturbed tie-break could resume the sender (which may free
  // or overwrite the buffer) before the snapshot reads it.
  const std::byte* sp = static_cast<const std::byte*>(buf);
  sim::Trigger injected(*ctx_->eng);
  ctx_->eng->call_at(res.egress_end, [staging, sp, bytes, &injected] {
    staging->assign(sp, sp + bytes);
    injected.fire();
  });
  co_await injected.wait();
}

sim::CoTask Comm::recv(int src, int tag, void* buf, std::size_t bytes) {
  SRM_CHECK(src == kAnySource || (src >= 0 && src < nranks()));
  co_await ctx_->delay(mp_->call_overhead);
  auto matches = [this, src, tag](const Envelope& e) {
    return (src == kAnySource || e.src == src) &&
           (tag == kAnyTag || e.tag == tag);
  };
  std::size_t idx = 0;
  co_await arrival_wq_.wait_until(
      [this, &matches, &idx] {
        for (std::size_t i = 0; i < arrived_.size(); ++i) {
          if (matches(arrived_[i])) {
            idx = i;
            return true;
          }
        }
        return false;
      },
      ctx_->rank);
  // Tag matching: one queue probe per envelope examined before the match.
  co_await ctx_->delay(mp_->match_cost * (idx + 1));
  Envelope env = std::move(arrived_[idx]);
  arrived_.erase(arrived_.begin() + static_cast<std::ptrdiff_t>(idx));
  SRM_CHECK_MSG(env.bytes == bytes, "receive size mismatch: posted "
                                        << bytes << ", matched " << env.bytes);

  switch (env.kind) {
    case Envelope::Kind::shm: {
      // Second copy of the 2-copy shm channel: slots -> user buffer.
      std::byte* dstp = static_cast<std::byte*>(buf);
      std::size_t off = 0;
      auto& pipe = *env.pipe;
      do {
        co_await pipe.wq.wait_until([&pipe] { return !pipe.full.empty(); });
        auto chunk = std::move(pipe.full.front());
        pipe.full.pop_front();
        pipe.wq.notify();
        co_await ctx_->delay(mp_->shm_per_chunk);
        co_await ctx_->nd->mem.charge_copy(static_cast<double>(chunk.size()));
        std::memcpy(dstp + off, chunk.data(), chunk.size());
        off += chunk.size();
      } while (off < bytes);
      break;
    }
    case Envelope::Kind::eager: {
      // Layered receive path plus the eager staging -> user copy.
      co_await ctx_->delay(mp_->layer_overhead);
      if (bytes > 0) {
        co_await ctx_->nd->mem.charge_copy(static_cast<double>(bytes));
        std::memcpy(buf, env.staged.data(), bytes);
      }
      break;
    }
    case Envelope::Kind::rts: {
      co_await ctx_->delay(mp_->rndv_post_cost + mp_->layer_overhead);
      env.rndv->rbuf = buf;
      co_await ctx_->delay(ctx_->P->net.o_send);
      auto st = env.rndv;
      ctx_->cluster->network().inject(ctx_->node(),
                                      world_->comm(env.src).ctx_->node(), 64.0,
                                      [st] { st->cts.fire(); });
      co_await st->data_done.wait();
      break;
    }
  }
  // Happens-before: matching + data deposit complete — the receiver has
  // observed everything the sender did before this send.
  hb_acquire(env.hb);
}

namespace {
sim::CoTask isend_body(Comm* self, int dst, int tag, const void* buf,
                       std::size_t bytes, std::shared_ptr<sim::Trigger> done) {
  co_await self->send(dst, tag, buf, bytes);
  done->fire();
}
sim::CoTask irecv_body(Comm* self, int src, int tag, void* buf,
                       std::size_t bytes, std::shared_ptr<sim::Trigger> done) {
  co_await self->recv(src, tag, buf, bytes);
  done->fire();
}
}  // namespace

Request Comm::isend(int dst, int tag, const void* buf, std::size_t bytes) {
  auto done = std::make_shared<sim::Trigger>(*ctx_->eng);
  ctx_->eng->spawn(isend_body(this, dst, tag, buf, bytes, done));
  return Request{done};
}

Request Comm::irecv(int src, int tag, void* buf, std::size_t bytes) {
  auto done = std::make_shared<sim::Trigger>(*ctx_->eng);
  ctx_->eng->spawn(irecv_body(this, src, tag, buf, bytes, done));
  return Request{done};
}

sim::CoTask Comm::wait(Request req) {
  SRM_CHECK(req.done != nullptr);
  co_await req.done->wait();
}

sim::CoTask Comm::sendrecv(int dst, int stag, const void* sbuf,
                           std::size_t sbytes, int src, int rtag, void* rbuf,
                           std::size_t rbytes) {
  Request s = isend(dst, stag, sbuf, sbytes);
  co_await recv(src, rtag, rbuf, rbytes);
  co_await wait(std::move(s));
}

// ---------------------------------------------------------------------------
// Collectives (MPICH-era algorithms over point-to-point)
// ---------------------------------------------------------------------------

sim::CoTask Comm::bcast(void* buf, std::size_t bytes, int root) {
  int tag = kCollTagBase + static_cast<int>(coll_seq_++ & 0xffff);
  coll::Tree tree = coll::binomial_tree(nranks(), root);
  int me = rank();
  int parent = tree.parent[static_cast<std::size_t>(me)];
  if (parent != -1) {
    co_await recv(parent, tag, buf, bytes);
  }
  // Forward to the largest subtree first.
  const auto& kids = tree.children[static_cast<std::size_t>(me)];
  for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
    co_await send(*it, tag, buf, bytes);
  }
}

sim::CoTask Comm::reduce(const void* send_buf, void* recv_buf,
                         std::size_t count, coll::Dtype d, coll::RedOp op,
                         int root) {
  int tag = kCollTagBase + static_cast<int>(coll_seq_++ & 0xffff);
  std::size_t bytes = count * coll::dtype_size(d);
  coll::Tree tree = coll::binomial_tree(nranks(), root);
  int me = rank();

  // Accumulator: the recv buffer at the root, a temporary elsewhere.
  std::vector<std::byte> local;
  void* accum;
  if (me == root) {
    accum = recv_buf;
  } else {
    local.resize(bytes);
    accum = local.data();
  }
  co_await ctx_->nd->mem.charge_copy(static_cast<double>(bytes));
  std::memcpy(accum, send_buf, bytes);

  // Children arrive smallest-subtree-first (construction order).
  std::vector<std::byte> tmp(bytes);
  for (int child : tree.children[static_cast<std::size_t>(me)]) {
    co_await recv(child, tag, tmp.data(), bytes);
    co_await ctx_->nd->mem.charge_combine(static_cast<double>(bytes));
    coll::combine(op, d, accum, tmp.data(), count);
  }
  int parent = tree.parent[static_cast<std::size_t>(me)];
  if (parent != -1) {
    co_await send(parent, tag, accum, bytes);
  }
}

sim::CoTask Comm::allreduce(const void* send_buf, void* recv_buf,
                            std::size_t count, coll::Dtype d,
                            coll::RedOp op) {
  std::size_t bytes = count * coll::dtype_size(d);
  // Era-accurate algorithm switch: recursive doubling for small payloads
  // (log P rounds of full-size exchanges are prohibitive for large ones),
  // reduce followed by broadcast beyond — MPICH-1 used reduce+bcast at
  // every size.
  if (bytes > mp_->allreduce_rd_max) {
    co_await reduce(send_buf, recv_buf, count, d, op, 0);
    co_await bcast(recv_buf, bytes, 0);
    co_return;
  }
  int tag = kCollTagBase + static_cast<int>(coll_seq_++ & 0xffff);
  int n = nranks();
  int me = rank();

  co_await ctx_->nd->mem.charge_copy(static_cast<double>(bytes));
  std::memcpy(recv_buf, send_buf, bytes);

  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  int rem = n - pof2;

  std::vector<std::byte> tmp(bytes);
  // Fold phase: the first 2*rem ranks pair up; evens push their data to the
  // odd partner and sit out the recursive doubling.
  int newrank;
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      co_await send(me + 1, tag, recv_buf, bytes);
      newrank = -1;
    } else {
      co_await recv(me - 1, tag, tmp.data(), bytes);
      co_await ctx_->nd->mem.charge_combine(static_cast<double>(bytes));
      coll::combine(op, d, recv_buf, tmp.data(), count);
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }

  if (newrank != -1) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      int newdst = newrank ^ mask;
      int dst = newdst < rem ? newdst * 2 + 1 : newdst + rem;
      co_await sendrecv(dst, tag, recv_buf, bytes, dst, tag, tmp.data(),
                        bytes);
      co_await ctx_->nd->mem.charge_combine(static_cast<double>(bytes));
      coll::combine(op, d, recv_buf, tmp.data(), count);
    }
  }

  // Unfold: odd partners return the final result to the evens.
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      co_await recv(me + 1, tag, recv_buf, bytes);
    } else {
      co_await send(me - 1, tag, recv_buf, bytes);
    }
  }
}

sim::CoTask Comm::barrier() {
  // MPICH-1-era barrier: zero-byte binomial gather to rank 0 followed by a
  // zero-byte binomial release (the dissemination/recursive-doubling
  // barrier only reached mainstream MPI implementations with MPICH2).
  int tag = kCollTagBase + static_cast<int>(coll_seq_++ & 0xffff);
  coll::Tree tree = coll::binomial_tree(nranks(), 0);
  int me = rank();
  int parent = tree.parent[static_cast<std::size_t>(me)];
  const auto& kids = tree.children[static_cast<std::size_t>(me)];

  for (int child : kids) {
    co_await recv(child, tag, nullptr, 0);
  }
  if (parent != -1) {
    co_await send(parent, tag, nullptr, 0);
    co_await recv(parent, tag, nullptr, 0);
  }
  for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
    co_await send(*it, tag, nullptr, 0);
  }
}

sim::CoTask Comm::scatter(const void* sendbuf, void* recvbuf,
                          std::size_t bytes_per, int root) {
  int tag = kCollTagBase + static_cast<int>(coll_seq_++ & 0xffff);
  int me = rank();
  if (me == root) {
    const std::byte* sp = static_cast<const std::byte*>(sendbuf);
    for (int r = 0; r < nranks(); ++r) {
      if (r == root) continue;
      co_await send(r, tag, sp + static_cast<std::size_t>(r) * bytes_per,
                    bytes_per);
    }
    co_await ctx_->nd->mem.charge_copy(static_cast<double>(bytes_per));
    std::memcpy(recvbuf, sp + static_cast<std::size_t>(root) * bytes_per,
                bytes_per);
  } else {
    co_await recv(root, tag, recvbuf, bytes_per);
  }
}

sim::CoTask Comm::gather(const void* sendbuf, void* recvbuf,
                         std::size_t bytes_per, int root) {
  int tag = kCollTagBase + static_cast<int>(coll_seq_++ & 0xffff);
  int me = rank();
  if (me == root) {
    std::byte* rp = static_cast<std::byte*>(recvbuf);
    for (int r = 0; r < nranks(); ++r) {
      if (r == root) continue;
      co_await recv(r, tag, rp + static_cast<std::size_t>(r) * bytes_per,
                    bytes_per);
    }
    co_await ctx_->nd->mem.charge_copy(static_cast<double>(bytes_per));
    std::memcpy(rp + static_cast<std::size_t>(root) * bytes_per, sendbuf,
                bytes_per);
  } else {
    co_await send(root, tag, sendbuf, bytes_per);
  }
}

sim::CoTask Comm::allgather(const void* sendbuf, void* recvbuf,
                            std::size_t bytes_per) {
  co_await gather(sendbuf, recvbuf, bytes_per, 0);
  co_await bcast(recvbuf, bytes_per * static_cast<std::size_t>(nranks()), 0);
}

sim::CoTask Comm::reduce_scatter(const void* sendbuf, void* recvbuf,
                                 std::size_t count_per_rank, coll::Dtype d,
                                 coll::RedOp op) {
  std::size_t total = count_per_rank * static_cast<std::size_t>(nranks());
  std::vector<std::byte> tmp;
  if (rank() == 0) tmp.resize(total * coll::dtype_size(d));
  co_await reduce(sendbuf, rank() == 0 ? tmp.data() : recvbuf, total, d, op,
                  0);
  co_await scatter(tmp.data(), recvbuf, count_per_rank * coll::dtype_size(d),
                   0);
}

// ---------------------------------------------------------------------------
// World: the Collectives face — forward to the calling rank's Comm under an
// "mpi.*" span.
// ---------------------------------------------------------------------------

sim::CoTask World::v_bcast(machine::TaskCtx& t, coll::Buf buf, int root) {
  obs::Span span(*t.obs, t.rank, "mpi.bcast");
  if (buf.symbolic()) {
    sym_used_ = true;
    co_await sym_.bcast(t, buf, root);
  } else {
    co_await comm(t.rank).bcast(buf.data, buf.count * buf.esize(), root);
  }
}

sim::CoTask World::v_reduce(machine::TaskCtx& t, coll::Buf send,
                            coll::Buf recv, coll::RedOp op, int root) {
  obs::Span span(*t.obs, t.rank, "mpi.reduce");
  if (send.symbolic()) {
    sym_used_ = true;
    co_await sym_.reduce(t, send, recv, op, root);
  } else {
    co_await comm(t.rank).reduce(send.data, recv.data, send.count, send.dtype,
                                 op, root);
  }
}

sim::CoTask World::v_allreduce(machine::TaskCtx& t, coll::Buf send,
                               coll::Buf recv, coll::RedOp op) {
  obs::Span span(*t.obs, t.rank, "mpi.allreduce");
  if (send.symbolic()) {
    sym_used_ = true;
    co_await sym_.allreduce(t, send, recv, op);
  } else {
    co_await comm(t.rank).allreduce(send.data, recv.data, send.count,
                                    send.dtype, op);
  }
}

sim::CoTask World::v_barrier(machine::TaskCtx& t) {
  obs::Span span(*t.obs, t.rank, "mpi.barrier");
  if (sym_used_ && !real_used_) {
    co_await sym_.barrier(t);
  } else {
    co_await comm(t.rank).barrier();
  }
}

sim::CoTask World::v_scatter(machine::TaskCtx& t, coll::Buf send,
                             coll::Buf recv, int root) {
  obs::Span span(*t.obs, t.rank, "mpi.scatter");
  if (recv.symbolic()) {
    sym_used_ = true;
    co_await sym_.scatter(t, send, recv, root);
  } else {
    co_await comm(t.rank).scatter(send.data, recv.data,
                                  recv.count * recv.esize(), root);
  }
}

sim::CoTask World::v_gather(machine::TaskCtx& t, coll::Buf send,
                            coll::Buf recv, int root) {
  obs::Span span(*t.obs, t.rank, "mpi.gather");
  if (send.symbolic()) {
    sym_used_ = true;
    co_await sym_.gather(t, send, recv, root);
  } else {
    co_await comm(t.rank).gather(send.data, recv.data,
                                 send.count * send.esize(), root);
  }
}

sim::CoTask World::v_allgather(machine::TaskCtx& t, coll::Buf send,
                               coll::Buf recv) {
  obs::Span span(*t.obs, t.rank, "mpi.allgather");
  if (send.symbolic()) {
    sym_used_ = true;
    co_await sym_.allgather(t, send, recv);
  } else {
    co_await comm(t.rank).allgather(send.data, recv.data,
                                    send.count * send.esize());
  }
}

sim::CoTask World::v_reduce_scatter(machine::TaskCtx& t, coll::Buf send,
                                    coll::Buf recv, coll::RedOp op) {
  obs::Span span(*t.obs, t.rank, "mpi.reduce_scatter");
  if (send.symbolic()) {
    sym_used_ = true;
    co_await sym_.reduce_scatter(t, send, recv, op);
  } else {
    co_await comm(t.rank).reduce_scatter(send.data, recv.data, recv.count,
                                         recv.dtype, op);
  }
}

// ---------------------------------------------------------------------------

World::World(machine::Cluster& cluster, const machine::MpiParams& profile,
             std::string name)
    : cluster_(&cluster),
      profile_(profile),
      name_(std::move(name)),
      eager_limit_(machine::MachineParams::eager_limit(
          profile, cluster.topology().nranks())),
      // Symbolic cost skeleton: every hop pays the MPI software stack
      // (per-call + MPL/MPCI layering) as its per-message overhead; movement
      // pipelines at the same default granularity the SRM plane uses.
      sym_(cluster, coll::sym::Profile{
                        profile.call_overhead + profile.layer_overhead,
                        64 * 1024, coll::TreeKind::binomial}) {
  // Comms materialize lazily via comm() — a symbolic mega-scale World must
  // not pay per-rank point-to-point state for ranks that never message.
  comms_.resize(static_cast<std::size_t>(cluster.topology().nranks()));
}

}  // namespace srm::minimpi
