// Analytical performance model of the SRM collectives.
//
// The paper's stated future work (§5): "development of an analytical
// performance model of the SRM collectives to better understand, model, and
// evaluate effectiveness of this technique under different assumptions and
// parameter values such as the SMP node size, intra-SMP memory bandwidth,
// and performance of inter-node communication. That model also should be
// helpful in tuning the pipeline parameters."
//
// The model composes closed-form terms for the three cost domains:
//   * network hops (LogGP-style: overheads + gap + latency + serialization),
//   * shared-memory stages (fill + contended fan-out copies + flag costs),
//   * operator execution (per-byte combine rates),
// and pipeline laws (latency of the first chunk + bottleneck period for the
// rest). It intentionally ignores second-order effects — interrupt flushes,
// credit-return jitter, partial-chunk tails — and the validation suite pins
// its accuracy envelope against the discrete-event simulation (typically
// within ~25-35%, exactly the fidelity needed for tuning switch points).
//
// All returns are in microseconds of predicted operation latency.
#pragma once

#include "core/config.hpp"
#include "machine/params.hpp"
#include "machine/topology.hpp"

namespace srm::model {

struct Inputs {
  machine::MachineParams params;
  SrmConfig cfg;
  int nodes = 1;
  int tasks_per_node = 1;
};

/// One inter-node put of @p bytes, issue to consumable-at-blocked-target.
double hop_us(const Inputs& in, std::size_t bytes);

/// One shared-memory broadcast step of @p bytes to the node's local tasks.
double smp_bcast_us(const Inputs& in, std::size_t bytes, bool landed_in_shm);

/// Shared-memory reduce of @p bytes per task through the binomial tree.
double smp_reduce_us(const Inputs& in, std::size_t bytes);

/// Predicted SRM broadcast latency.
double bcast_us(const Inputs& in, std::size_t bytes);

/// Predicted SRM reduce latency (sum over doubles).
double reduce_us(const Inputs& in, std::size_t bytes);

/// Predicted SRM allreduce latency (sum over doubles).
double allreduce_us(const Inputs& in, std::size_t bytes);

/// Predicted SRM barrier latency.
double barrier_us(const Inputs& in);

}  // namespace srm::model
