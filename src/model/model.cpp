#include "model/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/align.hpp"

namespace srm::model {

namespace {

double us(sim::Duration d) { return static_cast<double>(d) / 1000.0; }

/// Effective per-stream copy rate when @p streams copy concurrently.
double fan_copy_rate(const machine::MemoryParams& m, int streams) {
  if (streams <= 0) return m.copy_bw_per_cpu;
  return std::min(m.copy_bw_per_cpu,
                  m.bus_bw_total / static_cast<double>(streams));
}

double copy_us(const machine::MemoryParams& m, double bytes, int streams) {
  if (bytes <= 0) return 0.0;
  return us(m.copy_startup) + bytes / fan_copy_rate(m, streams) * 1e6;
}

double combine_us(const machine::MemoryParams& m, double bytes) {
  if (bytes <= 0) return 0.0;
  return us(m.copy_startup) + bytes / m.reduce_bw_per_cpu * 1e6;
}

int ilog2_ceil(int n) {
  return n <= 1 ? 0 : util::log2_ceil(static_cast<unsigned>(n));
}
int ilog2_floor(int n) {
  return n <= 1 ? 0 : util::log2_floor(static_cast<unsigned>(n));
}

/// Broadcast chunk count and chunk size under the small protocol.
void small_chunks(const SrmConfig& c, std::size_t bytes, std::size_t& chunk,
                  std::size_t& n) {
  chunk = bytes;
  if (bytes > c.bcast_pipe_min && bytes <= c.bcast_pipe_max) {
    chunk = c.bcast_pipe_chunk;
  }
  n = bytes == 0 ? 1 : (bytes + chunk - 1) / chunk;
}

}  // namespace

double hop_us(const Inputs& in, std::size_t bytes) {
  const auto& net = in.params.net;
  const auto& lp = in.params.lapi;
  return us(lp.call_overhead + net.o_send + net.gap + net.latency +
            lp.poll_dispatch + lp.call_overhead) +
         static_cast<double>(bytes) / net.bytes_per_sec * 1e6;
}

double smp_bcast_us(const Inputs& in, std::size_t bytes, bool landed_in_shm) {
  const auto& m = in.params.mem;
  int p = in.tasks_per_node;
  if (p <= 1) {
    return landed_in_shm ? copy_us(m, static_cast<double>(bytes), 1) : 0.0;
  }
  double fill = landed_in_shm
                    ? 0.0
                    : copy_us(m, static_cast<double>(bytes), 1);
  double flags = us(m.flag_propagation) +
                 us(m.flag_poll) * static_cast<double>(p - 1);
  int consumers = landed_in_shm ? p : p - 1;
  double fan = copy_us(m, static_cast<double>(bytes), consumers);
  return fill + flags + fan;
}

double smp_reduce_us(const Inputs& in, std::size_t bytes) {
  const auto& m = in.params.mem;
  int p = in.tasks_per_node;
  if (p <= 1) return copy_us(m, static_cast<double>(bytes), 1);
  // Leaves copy concurrently (about p/2 streams); each binomial level then
  // combines one chunk, and levels serialize along the critical path.
  int depth = ilog2_floor(p) + (util::is_pow2(static_cast<unsigned>(p)) ? 0 : 1);
  double leaf = copy_us(m, static_cast<double>(bytes), p / 2 + 1);
  return leaf + us(m.flag_propagation) +
         static_cast<double>(depth) * combine_us(m, static_cast<double>(bytes));
}

double bcast_us(const Inputs& in, std::size_t bytes) {
  const auto& net = in.params.net;
  int n = in.nodes;
  int depth = ilog2_floor(n);
  double issue = us(in.params.lapi.call_overhead + net.o_send + net.gap);

  if (bytes <= in.cfg.bcast_small_max) {
    std::size_t chunk, nchunks;
    small_chunks(in.cfg, bytes, chunk, nchunks);
    double ser = static_cast<double>(chunk) / net.bytes_per_sec * 1e6;
    // First chunk: down the tree (the root's serial sends add one issue per
    // additional child on the path's branch), then the SMP fan-out.
    double first = static_cast<double>(depth) * hop_us(in, chunk) +
                   static_cast<double>(std::max(0, depth - 1)) * issue;
    // Steady state: the bottleneck link serializes chunk payloads + issues.
    double period = std::max(ser + issue, smp_bcast_us(in, chunk, true));
    return first + static_cast<double>(nchunks - 1) * period +
           smp_bcast_us(in, chunk, true);
  }

  // Large protocol: address exchange + pipelined direct puts + SMP tail.
  std::size_t chunk = in.cfg.bcast_net_chunk;
  std::size_t nchunks = (bytes + chunk - 1) / chunk;
  double ser = static_cast<double>(chunk) / net.bytes_per_sec * 1e6;
  // The root streams to each child in turn: its egress serializes the whole
  // message once per child on the widest level (degree of the root).
  int degree = 0;
  for (int mask = 1; mask < n; mask <<= 1) ++degree;
  double addr = depth > 0 ? hop_us(in, sizeof(void*)) : 0.0;
  double first = static_cast<double>(depth) * hop_us(in, chunk);
  double period = std::max(static_cast<double>(std::max(degree, 1)) * ser,
                           smp_bcast_us(in, chunk, false));
  return addr + first + static_cast<double>(nchunks - 1) * period +
         smp_bcast_us(in, chunk, false);
}

double reduce_us(const Inputs& in, std::size_t bytes) {
  const auto& net = in.params.net;
  int n = in.nodes;
  int depth = ilog2_floor(n);
  std::size_t chunk = std::min<std::size_t>(bytes, in.cfg.reduce_chunk);
  std::size_t nchunks = bytes == 0 ? 1 : (bytes + chunk - 1) / chunk;
  double ser = static_cast<double>(chunk) / net.bytes_per_sec * 1e6;
  double per_level =
      hop_us(in, chunk) + combine_us(in.params.mem, static_cast<double>(chunk));
  double first = smp_reduce_us(in, chunk) +
                 static_cast<double>(depth) * per_level;
  double period =
      std::max({ser + us(net.gap), smp_reduce_us(in, chunk),
                combine_us(in.params.mem, static_cast<double>(chunk)) * 2.0});
  return first + static_cast<double>(nchunks - 1) * period;
}

double allreduce_us(const Inputs& in, std::size_t bytes) {
  int n = in.nodes;
  if (bytes <= in.cfg.allreduce_rd_max) {
    int rounds = ilog2_ceil(n);
    double exchange =
        static_cast<double>(rounds) *
        (hop_us(in, bytes) +
         combine_us(in.params.mem, static_cast<double>(bytes)));
    return smp_reduce_us(in, bytes) + exchange +
           smp_bcast_us(in, bytes, false);
  }
  // Four-stage pipeline: reduce latency to rank 0 + broadcast of the first
  // chunk + the common steady-state period over the remaining chunks.
  std::size_t chunk = in.cfg.reduce_chunk;
  std::size_t nchunks = (bytes + chunk - 1) / chunk;
  double ser = static_cast<double>(chunk) / in.params.net.bytes_per_sec * 1e6;
  int depth = ilog2_floor(n);
  double first = smp_reduce_us(in, chunk) +
                 static_cast<double>(depth) *
                     (hop_us(in, chunk) +
                      combine_us(in.params.mem, static_cast<double>(chunk))) +
                 static_cast<double>(depth) * hop_us(in, chunk) +
                 smp_bcast_us(in, chunk, false);
  double period = std::max(
      {2.0 * ser, smp_reduce_us(in, chunk) + smp_bcast_us(in, chunk, false)});
  return first + static_cast<double>(nchunks - 1) * period;
}

double barrier_us(const Inputs& in) {
  const auto& m = in.params.mem;
  int p = in.tasks_per_node;
  double enter = p > 1 ? us(m.flag_propagation) +
                             static_cast<double>(p - 1) * us(m.flag_poll)
                       : 0.0;
  double release = p > 1 ? us(m.flag_propagation) : 0.0;
  int rounds = ilog2_ceil(in.nodes);
  return enter + static_cast<double>(rounds) * hop_us(in, 0) + release;
}

}  // namespace srm::model
