#include "bench/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>

#include "coll/payload.hpp"
#include "util/format.hpp"

namespace srm::bench {

namespace {

bool env_symbolic() {
  const char* v = std::getenv("SRM_SYMBOLIC");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

const char* impl_name(Impl i) {
  switch (i) {
    case Impl::srm: return "SRM";
    case Impl::mpi_ibm: return "IBM-MPI";
    case Impl::mpi_mpich: return "MPICH";
  }
  return "?";
}

Bench::Bench(Impl impl, int nodes, int tasks_per_node, SrmConfig srm_cfg,
             machine::MachineParams params)
    : impl_(impl), symbolic_(env_symbolic()) {
  machine::ClusterConfig cc;
  cc.nodes = nodes;
  cc.tasks_per_node = tasks_per_node;
  cc.params = params;
  cluster_ = std::make_unique<machine::Cluster>(cc);
  switch (impl) {
    case Impl::srm:
      fabric_ = std::make_unique<lapi::Fabric>(*cluster_);
      srm_ = std::make_unique<Communicator>(*cluster_, *fabric_, srm_cfg);
      coll_ = srm_.get();
      break;
    case Impl::mpi_ibm:
      mpi_ = std::make_unique<minimpi::World>(*cluster_, params.mpi_ibm,
                                              "ibm");
      coll_ = mpi_.get();
      break;
    case Impl::mpi_mpich:
      mpi_ = std::make_unique<minimpi::World>(*cluster_, params.mpi_mpich,
                                              "mpich");
      coll_ = mpi_.get();
      break;
  }
  if (sv::selfcheck_enabled()) force_selfcheck();
}

Bench::~Bench() {
  if (sv_finish() != 0) {
    std::fflush(nullptr);
    std::_Exit(3);
  }
}

void Bench::force_selfcheck() {
  sv_armed_ = true;
  coll_->set_trace_sink(&sv_rec_);
}

int Bench::sv_finish() {
  if (sv_done_ || !sv_armed_) return 0;
  sv_done_ = true;
  coll_->set_trace_sink(nullptr);
  if (sv_rec_.empty()) return 0;

  std::string program = std::string("bench:") + coll_->label();
  sv::Diag d = sv::align_ranks(sv_rec_.by_rank());
  if (d.ok && !sv_custom_ && !sv_rec_.by_rank()[0].empty()) {
    sv::Skeleton sk{program, sv::Node{}};
    sk.root.kind = sv::Node::Kind::seq;
    sk.root.kids = sv_frags_;
    d = sv::match_skeleton(sk, sv_rec_.by_rank()[0]);
  }
  d.program = program;
  if (!d.ok) {
    std::fprintf(stderr, "%s\n", d.to_string().c_str());
    return 1;
  }
  std::fprintf(stderr, "[sv] %s: ok (%zu ranks, %zu calls per rank%s)\n",
               program.c_str(), sv_rec_.by_rank().size(),
               sv_rec_.by_rank()[0].size(),
               sv_custom_ ? ", alignment only" : "");
  return 0;
}

sv::SigPat Bench::planed(sv::SigPat p) const {
  return symbolic_ ? sv::symbolic(p) : sv::real(p);
}

namespace {

/// Instrumentation-only synchronization: every rank suspends until all have
/// arrived, then all resume at the same virtual instant at zero modelled
/// cost. Any real barrier releases ranks in a wave whose shape correlates
/// with the measured operation's own wave and hides part of its latency;
/// a simulator can sidestep that entirely.
struct PerfectSync {
  explicit PerfectSync(sim::Engine& eng, int n)
      : remaining(n), all_here(eng) {}
  int remaining;
  sim::Trigger all_here;

  sim::CoTask arrive() {
    if (--remaining == 0) {
      all_here.fire();
    } else {
      co_await all_here.wait();
    }
  }
};

sim::CoTask measured_body(
    machine::TaskCtx& t, coll::Collectives& coll,
    const std::function<sim::CoTask(machine::TaskCtx&, coll::Collectives&)>&
        op,
    int iters, int warmup, PerfectSync& sync, std::vector<sim::Time>& start,
    std::vector<sim::Time>& end) {
  for (int i = 0; i < warmup; ++i) co_await op(t, coll);
  co_await sync.arrive();
  start[static_cast<std::size_t>(t.rank)] = t.eng->now();
  for (int i = 0; i < iters; ++i) co_await op(t, coll);
  end[static_cast<std::size_t>(t.rank)] = t.eng->now();
}

}  // namespace

double Bench::time_collective(
    const std::function<sim::CoTask(machine::TaskCtx&, coll::Collectives&)>&
        op,
    int iters, int warmup) {
  // Unknown body: the self-check can still cross-align ranks, but has no
  // declared skeleton fragment to match against.
  sv_custom_ = true;
  return timed(op, iters, warmup);
}

double Bench::timed_sig(
    const std::function<sim::CoTask(machine::TaskCtx&, coll::Collectives&)>&
        op,
    int iters, int warmup, sv::SigPat sig) {
  if (sv_armed_)
    sv_frags_.push_back(sv::loop(warmup + iters, sv::call(sig)));
  return timed(op, iters, warmup);
}

double Bench::timed(
    const std::function<sim::CoTask(machine::TaskCtx&, coll::Collectives&)>&
        op,
    int iters, int warmup) {
  auto n = static_cast<std::size_t>(cluster_->topology().nranks());
  std::vector<sim::Time> start(n, 0), end(n, 0);
  PerfectSync sync(cluster_->engine(), static_cast<int>(n));
  cluster_->run([&](machine::TaskCtx& t) {
    return measured_body(t, *coll_, op, iters, warmup, sync, start, end);
  });
  sim::Time t0 = *std::max_element(start.begin(), start.end());
  sim::Time t1 = *std::max_element(end.begin(), end.end());
  SRM_CHECK(t1 >= t0);
  return sim::to_us(t1 - t0) / iters;
}

double Bench::time_bcast(std::size_t bytes, int iters) {
  bool symbolic = symbolic_;
  return timed_sig(
      [bytes, symbolic](machine::TaskCtx& t,
                        coll::Collectives& c) -> sim::CoTask {
        if (symbolic) {
          coll::Payload pay(1, bytes);
          if (t.rank == 0) pay.fill_pattern(coll::Dtype::kByte, 7);
          co_await c.bcast(
              t, coll::Buf::symbolic(pay, coll::Dtype::kByte, bytes), 0);
        } else {
          std::vector<char> buf(std::max<std::size_t>(bytes, 1),
                                static_cast<char>(t.rank));
          co_await c.bcast(t, coll::Buf::bytes(buf.data(), bytes), 0);
        }
      },
      iters, 2, planed(sv::sig_bcast(coll::Dtype::kByte, bytes, 0)));
}

double Bench::time_reduce(std::size_t count, int iters) {
  bool symbolic = symbolic_;
  return timed_sig(
      [count, symbolic](machine::TaskCtx& t,
                        coll::Collectives& c) -> sim::CoTask {
        if (symbolic) {
          coll::Payload in(1, count * sizeof(double)), out(in);
          in.fill_pattern(coll::Dtype::f64,
                          static_cast<std::uint64_t>(t.rank));
          co_await c.reduce(t,
                            coll::Buf::symbolic(in, coll::Dtype::f64, count),
                            coll::Buf::symbolic(out, coll::Dtype::f64, count),
                            coll::RedOp::sum, 0);
        } else {
          std::vector<double> in(count, 1.0 * t.rank), out(count, 0.0);
          co_await c.reduce(t, coll::of(in.data(), count),
                            coll::of(out.data(), count), coll::RedOp::sum, 0);
        }
      },
      iters, 2,
      planed(sv::sig_reduce(coll::Dtype::f64, count, coll::RedOp::sum, 0)));
}

double Bench::time_allreduce(std::size_t count, int iters) {
  bool symbolic = symbolic_;
  return timed_sig(
      [count, symbolic](machine::TaskCtx& t,
                        coll::Collectives& c) -> sim::CoTask {
        if (symbolic) {
          coll::Payload in(1, count * sizeof(double)), out(in);
          in.fill_pattern(coll::Dtype::f64,
                          static_cast<std::uint64_t>(t.rank));
          co_await c.allreduce(
              t, coll::Buf::symbolic(in, coll::Dtype::f64, count),
              coll::Buf::symbolic(out, coll::Dtype::f64, count),
              coll::RedOp::sum);
        } else {
          std::vector<double> in(count, 1.0 * t.rank), out(count, 0.0);
          co_await c.allreduce(t, coll::of(in.data(), count),
                               coll::of(out.data(), count),
                               coll::RedOp::sum);
        }
      },
      iters, 2,
      planed(sv::sig_allreduce(coll::Dtype::f64, count, coll::RedOp::sum)));
}

double Bench::time_barrier(int iters) {
  return timed_sig(
      [](machine::TaskCtx& t, coll::Collectives& c) -> sim::CoTask {
        co_await c.barrier(t);
      },
      iters, 3, sv::sig_barrier());
}

double Bench::time_scatter(std::size_t bytes_per, int iters) {
  bool symbolic = symbolic_;
  return timed_sig(
      [bytes_per, symbolic](machine::TaskCtx& t,
                            coll::Collectives& c) -> sim::CoTask {
        auto nranks = static_cast<std::size_t>(t.nranks());
        if (symbolic) {
          coll::Payload send(t.rank == 0 ? nranks : 0, bytes_per);
          coll::Payload recv(1, bytes_per);
          if (t.rank == 0) send.fill_pattern(coll::Dtype::kByte, 11);
          co_await c.scatter(
              t, coll::Buf::symbolic(send, coll::Dtype::kByte, bytes_per),
              coll::Buf::symbolic(recv, coll::Dtype::kByte, bytes_per), 0);
        } else {
          std::vector<char> send;
          if (t.rank == 0) send.assign(bytes_per * nranks, 'x');
          std::vector<char> recv(bytes_per, 0);
          co_await c.scatter(t, coll::Buf::bytes(send.data(), bytes_per),
                             coll::Buf::bytes(recv.data(), bytes_per), 0);
        }
      },
      iters, 2, planed(sv::sig_scatter(coll::Dtype::kByte, bytes_per, 0)));
}

double Bench::time_gather(std::size_t bytes_per, int iters) {
  bool symbolic = symbolic_;
  return timed_sig(
      [bytes_per, symbolic](machine::TaskCtx& t,
                            coll::Collectives& c) -> sim::CoTask {
        auto nranks = static_cast<std::size_t>(t.nranks());
        if (symbolic) {
          coll::Payload send(1, bytes_per);
          coll::Payload recv(t.rank == 0 ? nranks : 0, bytes_per);
          send.fill_pattern(coll::Dtype::kByte,
                            static_cast<std::uint64_t>(t.rank));
          co_await c.gather(
              t, coll::Buf::symbolic(send, coll::Dtype::kByte, bytes_per),
              coll::Buf::symbolic(recv, coll::Dtype::kByte, bytes_per), 0);
        } else {
          std::vector<char> send(bytes_per, static_cast<char>(t.rank));
          std::vector<char> recv;
          if (t.rank == 0) recv.resize(bytes_per * nranks);
          co_await c.gather(t, coll::Buf::bytes(send.data(), bytes_per),
                            coll::Buf::bytes(recv.data(), bytes_per), 0);
        }
      },
      iters, 2, planed(sv::sig_gather(coll::Dtype::kByte, bytes_per, 0)));
}

double Bench::time_allgather(std::size_t bytes_per, int iters) {
  bool symbolic = symbolic_;
  return timed_sig(
      [bytes_per, symbolic](machine::TaskCtx& t,
                            coll::Collectives& c) -> sim::CoTask {
        auto nranks = static_cast<std::size_t>(t.nranks());
        if (symbolic) {
          coll::Payload send(1, bytes_per);
          coll::Payload recv(nranks, bytes_per);
          send.fill_pattern(coll::Dtype::kByte,
                            static_cast<std::uint64_t>(t.rank));
          co_await c.allgather(
              t, coll::Buf::symbolic(send, coll::Dtype::kByte, bytes_per),
              coll::Buf::symbolic(recv, coll::Dtype::kByte, bytes_per));
        } else {
          std::vector<char> send(bytes_per, static_cast<char>(t.rank));
          std::vector<char> recv(bytes_per * nranks, 0);
          co_await c.allgather(t, coll::Buf::bytes(send.data(), bytes_per),
                               coll::Buf::bytes(recv.data(), bytes_per));
        }
      },
      iters, 2, planed(sv::sig_allgather(coll::Dtype::kByte, bytes_per)));
}

double Bench::time_reduce_scatter(std::size_t bytes_per, int iters) {
  std::size_t count = std::max<std::size_t>(bytes_per / sizeof(double), 1);
  bool symbolic = symbolic_;
  return timed_sig(
      [count, symbolic](machine::TaskCtx& t,
                        coll::Collectives& c) -> sim::CoTask {
        auto nranks = static_cast<std::size_t>(t.nranks());
        if (symbolic) {
          coll::Payload in(nranks, count * sizeof(double));
          coll::Payload out(1, count * sizeof(double));
          in.fill_pattern(coll::Dtype::f64,
                          static_cast<std::uint64_t>(t.rank));
          co_await c.reduce_scatter(
              t, coll::Buf::symbolic(in, coll::Dtype::f64, count),
              coll::Buf::symbolic(out, coll::Dtype::f64, count),
              coll::RedOp::sum);
        } else {
          std::vector<double> in(count * nranks, 1.0 * t.rank),
              out(count, 0.0);
          co_await c.reduce_scatter(t, coll::of(in.data(), count),
                                    coll::of(out.data(), count),
                                    coll::RedOp::sum);
        }
      },
      iters, 2,
      planed(sv::sig_reduce_scatter(coll::Dtype::f64, count,
                                    coll::RedOp::sum)));
}

std::string Bench::stats_json(const std::string& bench) const {
  const auto& topo = cluster_->topology();
  std::ostringstream os;
  os << "{\"bench\":\"" << bench << "\",\"impl\":\"" << impl_name(impl_)
     << "\",\"label\":\"" << coll_->label() << "\",\"nodes\":" << topo.nodes()
     << ",\"tasks_per_node\":" << topo.tasks_per_node()
     << ",\"virtual_time_us\":" << sim::to_us(cluster_->engine().now())
     << ",\"events\":" << cluster_->engine().events_processed()
     << ",\"net\":{\"messages\":" << cluster_->network().messages()
     << ",\"bytes\":" << cluster_->network().bytes()
     << "},\"obs\":" << cluster_->obs().counters_json() << "}";
  return os.str();
}

void Bench::emit_stats(const std::string& bench) const {
  std::string json = stats_json(bench);
  std::printf("BENCH_JSON %s\n", json.c_str());
  std::ofstream out("BENCH_" + bench + ".json");
  out << json << "\n";
}

void Bench::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  out << cluster_->obs().chrome_trace_json() << "\n";
}

std::vector<std::size_t> size_sweep(std::size_t lo, std::size_t hi) {
  std::vector<std::size_t> v;
  for (std::size_t s = lo; s <= hi; s *= 2) v.push_back(s);
  return v;
}

std::vector<int> cpu_sweep() { return {16, 32, 64, 128, 256}; }

void print_table(const std::string& title, const std::string& row_header,
                 const std::vector<std::string>& row_labels,
                 const std::vector<std::string>& col_labels,
                 const std::vector<std::vector<double>>& cells,
                 const std::string& unit) {
  std::printf("\n== %s (%s) ==\n", title.c_str(), unit.c_str());
  std::printf("%12s", row_header.c_str());
  for (const auto& c : col_labels) std::printf(" %12s", c.c_str());
  std::printf("\n");
  for (std::size_t r = 0; r < row_labels.size(); ++r) {
    std::printf("%12s", row_labels[r].c_str());
    for (double v : cells[r]) {
      std::printf(" %12s", util::fmt_us(v).c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace srm::bench
