// Benchmark harness: builds simulated clusters with the paper's testbed
// shape, drives SRM and the two mini-MPI baselines through the shared
// coll::Collectives interface (both implement it natively — no adapters),
// measures collective latency in virtual time (the average of repeated
// back-to-back calls, as in the paper's 1000-call methodology), prints
// figure-shaped tables, and exports machine-readable srm::obs stats.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coll/iface.hpp"
#include "core/communicator.hpp"
#include "lapi/lapi.hpp"
#include "machine/cluster.hpp"
#include "mpi/comm.hpp"
#include "sv/sv.hpp"

namespace srm::bench {

/// Which implementation an experiment runs.
enum class Impl { srm, mpi_ibm, mpi_mpich };

const char* impl_name(Impl i);

/// One self-contained experiment environment: a fresh simulated cluster
/// (16-way nodes by default, like the paper's SP) plus one implementation.
///
/// Payload plane: the canned time_* operations drive real buffers by
/// default; set SRM_SYMBOLIC=1 in the environment (or call
/// set_symbolic(true)) and they drive coll::Payload digests instead — same
/// protocols, same cost model, O(active blocks) memory — which is what makes
/// mega-scale topologies (4096 nodes x 64 tasks) benchable.
/// Self-checking (srm::sv): with SRM_SV_SELFCHECK=1 in the environment (or
/// after force_selfcheck()), the harness installs the sv recording shim at
/// the Collectives boundary; every canned time_* also appends its expected
/// skeleton fragment (a warmup+iters loop of one signature). The destructor
/// cross-aligns the recorded per-rank sequences, matches them against the
/// accumulated skeleton (unless a custom time_collective body ran —
/// alignment only, its shape is unknown), and terminates the process with
/// status 3 on a diagnostic, so `sv_verify programs` catches divergent
/// bench programs by exit code.
class Bench {
 public:
  Bench(Impl impl, int nodes, int tasks_per_node,
        SrmConfig srm_cfg = {},
        machine::MachineParams params = machine::MachineParams::ibm_sp());
  Bench(const Bench&) = delete;
  Bench& operator=(const Bench&) = delete;
  ~Bench();

  machine::Cluster& cluster() { return *cluster_; }
  obs::Registry& obs() { return cluster_->obs(); }
  coll::Collectives& coll() { return *coll_; }
  Impl impl() const { return impl_; }

  /// Symbolic-payload mode for the canned operations (default: the
  /// SRM_SYMBOLIC environment switch; "0"/"" = off, anything else = on).
  bool symbolic() const { return symbolic_; }
  void set_symbolic(bool on) { symbolic_ = on; }

  /// Average virtual-time latency (us) of `op` over `iters` back-to-back
  /// calls, after `warmup` unmeasured calls. The reported value is the
  /// slowest rank's elapsed time divided by the iteration count.
  double time_collective(
      const std::function<sim::CoTask(machine::TaskCtx&, coll::Collectives&)>&
          op,
      int iters = 5, int warmup = 2);

  // Canned operations.
  double time_bcast(std::size_t bytes, int iters = 5);
  double time_reduce(std::size_t count_doubles, int iters = 5);
  double time_allreduce(std::size_t count_doubles, int iters = 5);
  double time_barrier(int iters = 10);
  double time_scatter(std::size_t bytes_per, int iters = 4);
  double time_gather(std::size_t bytes_per, int iters = 4);
  double time_allgather(std::size_t bytes_per, int iters = 4);
  double time_reduce_scatter(std::size_t bytes_per, int iters = 4);

  /// Machine-readable stats block: configuration, virtual time, simulator
  /// event count, network totals, and the full srm::obs counter export.
  std::string stats_json(const std::string& bench) const;

  /// Print the stats block to stdout (prefixed "BENCH_JSON ") and write it
  /// to BENCH_<bench>.json in the working directory.
  void emit_stats(const std::string& bench) const;

  /// Write the recorded span timeline as Chrome trace-event JSON (load in
  /// chrome://tracing or https://ui.perfetto.dev). Only meaningful when
  /// obs().set_trace_enabled(true) was on during the run.
  void write_chrome_trace(const std::string& path) const;

  /// Arm the sv self-check regardless of SRM_SV_SELFCHECK (for tests).
  /// Must be called before the first timed operation.
  void force_selfcheck();
  /// Run the sv checks over everything recorded so far and report (0 = ok,
  /// 1 = diagnostic printed to stderr). Called implicitly by the
  /// destructor, which turns a nonzero result into process exit status 3.
  int sv_finish();

 private:
  double timed(
      const std::function<sim::CoTask(machine::TaskCtx&, coll::Collectives&)>&
          op,
      int iters, int warmup);
  double timed_sig(
      const std::function<sim::CoTask(machine::TaskCtx&, coll::Collectives&)>&
          op,
      int iters, int warmup, sv::SigPat sig);
  sv::SigPat planed(sv::SigPat p) const;

  Impl impl_;
  bool symbolic_ = false;
  std::unique_ptr<machine::Cluster> cluster_;
  std::unique_ptr<lapi::Fabric> fabric_;
  std::unique_ptr<Communicator> srm_;
  std::unique_ptr<minimpi::World> mpi_;
  coll::Collectives* coll_ = nullptr;  // -> srm_ or mpi_

  sv::Recorder sv_rec_;
  std::vector<sv::Node> sv_frags_;  // expected fragments, one per canned op
  bool sv_armed_ = false;
  bool sv_custom_ = false;  // a custom op ran: skip the skeleton match
  bool sv_done_ = false;
};

/// Iteration count that keeps large-message sweeps affordable in real time;
/// the simulator is deterministic, so few iterations lose no precision.
inline int iters_for(std::size_t bytes) {
  if (bytes <= 64 * 1024) return 4;
  if (bytes <= (1u << 20)) return 2;
  return 1;
}

/// The paper's message-size sweep: 8 B ... 8 MB, powers of two.
std::vector<std::size_t> size_sweep(std::size_t lo = 8,
                                    std::size_t hi = 8u << 20);

/// The paper's processor configurations at 16 tasks/node.
std::vector<int> cpu_sweep();  // {16, 32, 64, 128, 256}

/// Print a series table: rows = sizes, one column per (labelled) series.
void print_table(const std::string& title, const std::string& row_header,
                 const std::vector<std::string>& row_labels,
                 const std::vector<std::string>& col_labels,
                 const std::vector<std::vector<double>>& cells,
                 const std::string& unit);

}  // namespace srm::bench
