// MachineParams: every cost-model constant in one place.
//
// The default profile is calibrated to the paper's testbed — an IBM SP with
// 16-way POWER3 "NightHawk II" SMP nodes and the "Colony" switch (ca. 2002):
// ~350 MB/s link bandwidth, ~18-20 us end-to-end MPI latency, ~500 MB/s
// per-CPU memcpy, a crossbar memory system that tolerates concurrent readers.
// Absolute numbers are approximations; the reproduction targets the *shape*
// of the paper's figures, and every knob here is sweepable by the ablation
// benches.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace srm::machine {

/// Per-node memory system costs.
struct MemoryParams {
  /// Peak single-stream memcpy bandwidth (read+write combined), bytes/s.
  double copy_bw_per_cpu = 550e6;
  /// Aggregate node memory bandwidth shared by all concurrent streams.
  double bus_bw_total = 4.0e9;
  /// Fixed software cost to initiate a copy (call + loop setup).
  sim::Duration copy_startup = sim::ns(200);
  /// Effective single-stream rate of a reduction combine (2 reads + 1 write
  /// + FP adds), bytes of operand processed per second.
  double reduce_bw_per_cpu = 400e6;
  /// Latency for a store to a shared flag to become visible to a spinning
  /// reader on another CPU (cache-line transfer).
  sim::Duration flag_propagation = sim::ns(250);
  /// Cost of one poll of a shared flag / counter by a reader.
  sim::Duration flag_poll = sim::ns(60);
};

/// Intra-node cache/NUMA hierarchy: core -> L3 slice -> socket. The paper's
/// testbed is a flat crossbar SMP (one level, every factor 1.0); modern
/// multi-socket nodes pay more per byte the further the reader sits from the
/// line's home, and more again when the line is Modified in another cache
/// (a dirty-line intervention instead of a clean stream). The single-copy
/// protocols use these factors and build their intra-node trees along the
/// domain boundaries; the paper-faithful staged protocols ignore them.
struct TopologyParams {
  int cores_per_l3 = 16;  ///< locals sharing one L3 slice
  int l3_per_socket = 1;
  int sockets = 1;

  /// Per-byte copy-cost multipliers by cache distance of reader vs. source.
  double same_l3_factor = 1.0;
  double cross_l3_factor = 1.0;   ///< same socket, different L3 slice
  double cross_socket_factor = 1.0;  ///< NUMA hop
  /// Extra multiplier when the source line is Modified in the writer's cache
  /// (dirty intervention) rather than Shared/clean.
  double dirty_factor = 1.0;

  /// Software cost for a task to export a window over its private buffer
  /// into the node's shared namespace (page-table/registration work), and
  /// for a peer to attach to an exported window.
  sim::Duration map_publish = sim::ns(300);
  sim::Duration map_attach = sim::ns(500);

  /// Domain of a local task id. Locals beyond the described core count wrap
  /// into further L3 groups/sockets (the divisions stay well defined).
  int l3_of(int local) const noexcept { return local / cores_per_l3; }
  int socket_of(int local) const noexcept {
    return local / (cores_per_l3 * l3_per_socket);
  }

  /// Per-byte multiplier for @p reader pulling from @p src's buffer.
  /// Reading your own line — dirty or not — is the baseline stream.
  double copy_factor(int src, int reader, bool dirty) const noexcept {
    if (src == reader) return 1.0;
    double f = same_l3_factor;
    if (socket_of(src) != socket_of(reader)) {
      f = cross_socket_factor;
    } else if (l3_of(src) != l3_of(reader)) {
      f = cross_l3_factor;
    }
    return dirty ? f * dirty_factor : f;
  }
};

/// LogGP-style network (one "Colony"-class switch, single-hop latency).
struct NetworkParams {
  /// CPU overhead on the origin side to initiate a message (o_send).
  sim::Duration o_send = sim::us(2) + sim::ns(500);
  /// Per-message gap at the NIC (g): serialization of headers/DMA setup.
  sim::Duration gap = sim::us(1) + sim::ns(500);
  /// Per-byte time on the link (G). 1/350 MB/s = ~2.86 ns/B.
  double bytes_per_sec = 350e6;
  /// Wire + switch latency (L), first byte injected -> first byte delivered.
  sim::Duration latency = sim::us(8) + sim::ns(500);
};

/// LAPI software layer costs (paper §2.3: interrupt vs. polling tradeoff).
struct LapiParams {
  /// Fixed cost of any LAPI library call (put/get/waitcntr entry).
  sim::Duration call_overhead = sim::ns(800);
  /// Dispatcher cost to process one arrived message while polling.
  sim::Duration poll_dispatch = sim::ns(500);
  /// Cost charged to the target CPU when an arrival triggers an interrupt
  /// (AIX interrupt + dispatcher). Dominates small-message delivery when the
  /// target is not inside a LAPI call.
  sim::Duration interrupt_cost = sim::us(20);
};

/// Mini-MPI point-to-point costs, per implementation profile (§2.3).
struct MpiParams {
  /// Per-call library overhead (MPI_Send/Recv entry, argument checking).
  sim::Duration call_overhead = sim::us(1);
  /// Tag-matching cost per message examined in the queues.
  sim::Duration match_cost = sim::ns(600);
  /// Extra per-message software cost on each side of an inter-node transfer
  /// (the MPI -> MPL -> MPCI layering on the SP; absent from raw LAPI).
  sim::Duration layer_overhead = sim::us(1) + sim::ns(500);
  /// Allreduce algorithm switch: recursive doubling up to this size,
  /// reduce+broadcast beyond (0 = always reduce+broadcast, MPICH-1 era).
  std::size_t allreduce_rd_max = 16 * 1024;
  /// Shared-memory channel: chunk size for the 2-copy pipelined intra-node
  /// path, and number of in-flight chunk slots per pair.
  std::size_t shm_chunk = 16 * 1024;
  int shm_slots = 2;
  /// Per-chunk flag/bookkeeping overhead on the shm channel.
  sim::Duration shm_per_chunk = sim::ns(400);
  /// Eager->Rendezvous switch point as a function of the task count.
  /// IBM MPI shrinks the eager limit as P grows to bound the P-1 eager
  /// buffers per task (the paper calls this out as a structural handicap).
  bool eager_scales_with_tasks = true;
  std::size_t eager_limit_base = 4096;   // used when scaling disabled
  /// Extra control-message round trip cost marker for rendezvous is implicit
  /// (RTS/CTS are real messages in the model).
  sim::Duration rndv_post_cost = sim::ns(700);
};

struct MachineParams {
  MemoryParams mem;
  TopologyParams topo;
  NetworkParams net;
  LapiParams lapi;
  MpiParams mpi_ibm;
  MpiParams mpi_mpich;

  /// Profile tag set by the factories ("ibm_sp", "modern_smp"); consumers
  /// (the SRM decision-table lookup, the tuner) key builtin artifacts on it.
  /// Hand-built or mutated parameter sets should clear or rename it.
  const char* profile = "custom";

  /// Eager limit for a given profile and task count.
  static std::size_t eager_limit(const MpiParams& p, int ntasks) {
    if (!p.eager_scales_with_tasks) return p.eager_limit_base;
    if (ntasks <= 16) return 4096;
    if (ntasks <= 32) return 2048;
    if (ntasks <= 64) return 1024;
    if (ntasks <= 128) return 512;
    return 256;
  }

  /// Default profile: IBM SP, 16-way NightHawk II nodes, Colony switch.
  /// Flat crossbar node: all topology factors 1.0.
  static MachineParams ibm_sp();

  /// A NUMA-ish multi-socket SMP (2 sockets x 2 L3 slices x 4 cores): much
  /// faster memory and network than the SP, but cross-socket and dirty-line
  /// transfers cost real multiples — the regime where topology-aware trees
  /// earn their keep.
  static MachineParams modern_smp();
};

}  // namespace srm::machine
