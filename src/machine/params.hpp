// MachineParams: every cost-model constant in one place.
//
// The default profile is calibrated to the paper's testbed — an IBM SP with
// 16-way POWER3 "NightHawk II" SMP nodes and the "Colony" switch (ca. 2002):
// ~350 MB/s link bandwidth, ~18-20 us end-to-end MPI latency, ~500 MB/s
// per-CPU memcpy, a crossbar memory system that tolerates concurrent readers.
// Absolute numbers are approximations; the reproduction targets the *shape*
// of the paper's figures, and every knob here is sweepable by the ablation
// benches.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace srm::machine {

/// Per-node memory system costs.
struct MemoryParams {
  /// Peak single-stream memcpy bandwidth (read+write combined), bytes/s.
  double copy_bw_per_cpu = 550e6;
  /// Aggregate node memory bandwidth shared by all concurrent streams.
  double bus_bw_total = 4.0e9;
  /// Fixed software cost to initiate a copy (call + loop setup).
  sim::Duration copy_startup = sim::ns(200);
  /// Effective single-stream rate of a reduction combine (2 reads + 1 write
  /// + FP adds), bytes of operand processed per second.
  double reduce_bw_per_cpu = 400e6;
  /// Latency for a store to a shared flag to become visible to a spinning
  /// reader on another CPU (cache-line transfer).
  sim::Duration flag_propagation = sim::ns(250);
  /// Cost of one poll of a shared flag / counter by a reader.
  sim::Duration flag_poll = sim::ns(60);
};

/// LogGP-style network (one "Colony"-class switch, single-hop latency).
struct NetworkParams {
  /// CPU overhead on the origin side to initiate a message (o_send).
  sim::Duration o_send = sim::us(2) + sim::ns(500);
  /// Per-message gap at the NIC (g): serialization of headers/DMA setup.
  sim::Duration gap = sim::us(1) + sim::ns(500);
  /// Per-byte time on the link (G). 1/350 MB/s = ~2.86 ns/B.
  double bytes_per_sec = 350e6;
  /// Wire + switch latency (L), first byte injected -> first byte delivered.
  sim::Duration latency = sim::us(8) + sim::ns(500);
};

/// LAPI software layer costs (paper §2.3: interrupt vs. polling tradeoff).
struct LapiParams {
  /// Fixed cost of any LAPI library call (put/get/waitcntr entry).
  sim::Duration call_overhead = sim::ns(800);
  /// Dispatcher cost to process one arrived message while polling.
  sim::Duration poll_dispatch = sim::ns(500);
  /// Cost charged to the target CPU when an arrival triggers an interrupt
  /// (AIX interrupt + dispatcher). Dominates small-message delivery when the
  /// target is not inside a LAPI call.
  sim::Duration interrupt_cost = sim::us(20);
};

/// Mini-MPI point-to-point costs, per implementation profile (§2.3).
struct MpiParams {
  /// Per-call library overhead (MPI_Send/Recv entry, argument checking).
  sim::Duration call_overhead = sim::us(1);
  /// Tag-matching cost per message examined in the queues.
  sim::Duration match_cost = sim::ns(600);
  /// Extra per-message software cost on each side of an inter-node transfer
  /// (the MPI -> MPL -> MPCI layering on the SP; absent from raw LAPI).
  sim::Duration layer_overhead = sim::us(1) + sim::ns(500);
  /// Allreduce algorithm switch: recursive doubling up to this size,
  /// reduce+broadcast beyond (0 = always reduce+broadcast, MPICH-1 era).
  std::size_t allreduce_rd_max = 16 * 1024;
  /// Shared-memory channel: chunk size for the 2-copy pipelined intra-node
  /// path, and number of in-flight chunk slots per pair.
  std::size_t shm_chunk = 16 * 1024;
  int shm_slots = 2;
  /// Per-chunk flag/bookkeeping overhead on the shm channel.
  sim::Duration shm_per_chunk = sim::ns(400);
  /// Eager->Rendezvous switch point as a function of the task count.
  /// IBM MPI shrinks the eager limit as P grows to bound the P-1 eager
  /// buffers per task (the paper calls this out as a structural handicap).
  bool eager_scales_with_tasks = true;
  std::size_t eager_limit_base = 4096;   // used when scaling disabled
  /// Extra control-message round trip cost marker for rendezvous is implicit
  /// (RTS/CTS are real messages in the model).
  sim::Duration rndv_post_cost = sim::ns(700);
};

struct MachineParams {
  MemoryParams mem;
  NetworkParams net;
  LapiParams lapi;
  MpiParams mpi_ibm;
  MpiParams mpi_mpich;

  /// Eager limit for a given profile and task count.
  static std::size_t eager_limit(const MpiParams& p, int ntasks) {
    if (!p.eager_scales_with_tasks) return p.eager_limit_base;
    if (ntasks <= 16) return 4096;
    if (ntasks <= 32) return 2048;
    if (ntasks <= 64) return 1024;
    if (ntasks <= 128) return 512;
    return 256;
  }

  /// Default profile: IBM SP, 16-way NightHawk II nodes, Colony switch.
  static MachineParams ibm_sp();
};

inline MachineParams MachineParams::ibm_sp() {
  MachineParams p;
  // IBM MPI: tuned vendor library — lower software overheads, adaptive
  // eager limit. MPICH (over MPL over MPCI): one more software layer —
  // higher per-call and per-match costs, fixed eager limit.
  p.mpi_ibm.call_overhead = sim::us(1) + sim::ns(500);
  p.mpi_ibm.match_cost = sim::ns(1000);
  p.mpi_ibm.layer_overhead = sim::us(1) + sim::ns(500);
  p.mpi_ibm.eager_scales_with_tasks = true;
  p.mpi_ibm.allreduce_rd_max = 16 * 1024;

  p.mpi_mpich.call_overhead = sim::us(2) + sim::ns(500);
  p.mpi_mpich.match_cost = sim::ns(1600);
  p.mpi_mpich.layer_overhead = sim::us(2) + sim::ns(500);
  p.mpi_mpich.shm_per_chunk = sim::ns(700);
  p.mpi_mpich.eager_scales_with_tasks = false;
  p.mpi_mpich.eager_limit_base = 4096;
  p.mpi_mpich.allreduce_rd_max = 0;  // reduce+broadcast at every size
  return p;
}

}  // namespace srm::machine
