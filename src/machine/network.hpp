// Network: LogGP-style single-switch fabric between node NICs.
//
// A message from node s to node d is charged:
//   egress_start = max(now, egress_free[s])
//   egress_end   = egress_start + gap + bytes*G     (NIC serialization, FIFO)
//   head arrival = egress_start + gap + L
//   ingress_start= max(head arrival, ingress_free[d])
//   delivery     = ingress_start + bytes*G          (receiver-side FIFO)
// so an uncontended message costs gap + L + bytes*G after injection, and
// both endpoints serialize concurrent traffic. The caller's o_send overhead
// is charged by the protocol layers, not here.
//
// The `deliver` closure runs at delivery time; protocol layers capture the
// destination object and perform the real data movement inside it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "machine/params.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/check.hpp"

namespace srm::machine {

class Network {
 public:
  /// @p reg: optional observability registry; injections report into the
  /// "net.msg" metric keyed by source node.
  Network(sim::Engine& eng, const NetworkParams& p, int nnodes,
          obs::Registry* reg = nullptr)
      : eng_(&eng),
        p_(p),
        egress_free_(static_cast<std::size_t>(nnodes), 0),
        ingress_free_(static_cast<std::size_t>(nnodes), 0) {
    if (reg != nullptr) {
      msg_ctr_.reserve(static_cast<std::size_t>(nnodes));
      for (int n = 0; n < nnodes; ++n)
        msg_ctr_.push_back(&reg->counter("net.msg", n));
    }
  }

  struct InjectResult {
    sim::Time egress_end;  ///< origin buffer fully injected (reusable)
    sim::Time delivery;    ///< payload deposited at the destination NIC
  };

  /// Inject a message; @p deliver runs at the modelled delivery time.
  InjectResult inject(int src_node, int dst_node, double bytes,
                      std::function<void()> deliver) {
    SRM_CHECK_MSG(src_node != dst_node,
                  "intra-node traffic must not use the network");
    auto& ef = egress_free_.at(static_cast<std::size_t>(src_node));
    auto& inf = ingress_free_.at(static_cast<std::size_t>(dst_node));
    sim::Time now = eng_->now();
    sim::Duration ser = sim::duration_for(bytes, p_.bytes_per_sec);
    sim::Time egress_start = std::max(now, ef);
    ef = egress_start + p_.gap + ser;
    sim::Time head = egress_start + p_.gap + p_.latency;
    sim::Time ingress_start = std::max(head, inf);
    sim::Time delivery = ingress_start + ser;
    inf = delivery;
    ++messages_;
    bytes_ += bytes;
    if (!msg_ctr_.empty())
      msg_ctr_[static_cast<std::size_t>(src_node)]->add(bytes);
    eng_->call_at(delivery, std::move(deliver));
    return InjectResult{ef, delivery};
  }

  std::uint64_t messages() const noexcept { return messages_; }
  double bytes() const noexcept { return bytes_; }
  const NetworkParams& params() const noexcept { return p_; }

 private:
  sim::Engine* eng_;
  NetworkParams p_;
  std::vector<sim::Time> egress_free_;
  std::vector<sim::Time> ingress_free_;
  std::vector<obs::Counter*> msg_ctr_;
  std::uint64_t messages_ = 0;
  double bytes_ = 0;
};

}  // namespace srm::machine
