#include "machine/cluster.hpp"

#include <cstring>

namespace srm::machine {

sim::CoTask TaskCtx::copy(void* dst, const void* src, std::size_t bytes) const {
  co_await nd->mem.charge_copy(static_cast<double>(bytes));
  std::memmove(dst, src, bytes);
}

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg),
      topo_(cfg.nodes, cfg.tasks_per_node),
      obs_(eng_),
      net_(eng_, cfg.params.net, cfg.nodes, &obs_) {
  nodes_.reserve(static_cast<std::size_t>(cfg.nodes));
  for (int n = 0; n < cfg.nodes; ++n) {
    nodes_.push_back(std::make_unique<Node>(n, eng_, cfg.params.mem, obs_));
  }
  ctxs_.resize(static_cast<std::size_t>(topo_.nranks()));
  for (int r = 0; r < topo_.nranks(); ++r) {
    TaskCtx& c = ctxs_[static_cast<std::size_t>(r)];
    c.rank = r;
    c.cluster = this;
    c.eng = &eng_;
    c.P = &cfg_.params;
    c.nd = nodes_[static_cast<std::size_t>(topo_.node_of(r))].get();
    c.topo = &topo_;
    c.obs = &obs_;
  }
}

void Cluster::run(const Program& program) {
  for (int r = 0; r < topo_.nranks(); ++r) {
    eng_.spawn(program(ctxs_[static_cast<std::size_t>(r)]));
  }
  eng_.run();
}

}  // namespace srm::machine
