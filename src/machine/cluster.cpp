#include "machine/cluster.hpp"

#include <cstring>
#include <string>

namespace srm::machine {

sim::CoTask TaskCtx::copy(void* dst, const void* src, std::size_t bytes) const {
  co_await nd->mem.charge_copy(static_cast<double>(bytes));
  std::memmove(dst, src, bytes);
  // Every charged copy is an access event; unregistered (private) buffers
  // are ignored by the checker.
  chk::note_read(chk, src, bytes);
  chk::note_write(chk, dst, bytes);
}

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg),
      topo_(cfg.nodes, cfg.tasks_per_node),
      chk_(eng_, topo_.nranks()),
      obs_(eng_),
      net_(eng_, cfg.params.net, cfg.nodes, &obs_) {
  nodes_.reserve(static_cast<std::size_t>(cfg.nodes));
  for (int n = 0; n < cfg.nodes; ++n) {
    nodes_.push_back(std::make_unique<Node>(n, eng_, cfg.params.mem, obs_));
    nodes_.back()->seg.set_checker(&chk_, "n" + std::to_string(n) + ":");
  }
  ctxs_.resize(static_cast<std::size_t>(topo_.nranks()));
  for (int r = 0; r < topo_.nranks(); ++r) {
    TaskCtx& c = ctxs_[static_cast<std::size_t>(r)];
    c.rank = r;
    c.cluster = this;
    c.eng = &eng_;
    c.P = &cfg_.params;
    c.nd = nodes_[static_cast<std::size_t>(topo_.node_of(r))].get();
    c.topo = &topo_;
    c.obs = &obs_;
    c.chk = chk::TaskChk{&chk_, r};
  }
}

void Cluster::run(const Program& program) {
  for (int r = 0; r < topo_.nranks(); ++r) {
    eng_.spawn(program(ctxs_[static_cast<std::size_t>(r)]));
  }
  eng_.run();
}

}  // namespace srm::machine
