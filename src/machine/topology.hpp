// Topology: rank <-> (node, local-rank) mapping for an SMP cluster.
//
// Ranks are placed in blocks, as on the paper's IBM SP runs: ranks
// [0, p) on node 0, [p, 2p) on node 1, and so on. The task with local rank 0
// on each node is that node's "master" — the only task that communicates
// across the network in SRM (§2.3).
#pragma once

#include "util/check.hpp"

namespace srm::machine {

class Topology {
 public:
  Topology(int nodes, int tasks_per_node)
      : nodes_(nodes), per_node_(tasks_per_node) {
    SRM_CHECK(nodes >= 1);
    SRM_CHECK(tasks_per_node >= 1);
  }

  int nodes() const noexcept { return nodes_; }
  int tasks_per_node() const noexcept { return per_node_; }
  int nranks() const noexcept { return nodes_ * per_node_; }

  int node_of(int rank) const {
    SRM_CHECK(rank >= 0 && rank < nranks());
    return rank / per_node_;
  }
  int local_of(int rank) const {
    SRM_CHECK(rank >= 0 && rank < nranks());
    return rank % per_node_;
  }
  int rank_of(int node, int local) const {
    SRM_CHECK(node >= 0 && node < nodes_);
    SRM_CHECK(local >= 0 && local < per_node_);
    return node * per_node_ + local;
  }
  /// The master (network-facing) rank of a node.
  int master_of(int node) const { return rank_of(node, 0); }
  bool is_master(int rank) const { return local_of(rank) == 0; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  bool operator==(const Topology&) const = default;

 private:
  int nodes_;
  int per_node_;
};

}  // namespace srm::machine
