// Cluster: the simulated SMP cluster and the per-task execution context.
//
// A Cluster owns the engine, the network, and one Node (memory system +
// shared segment) per SMP node. Cluster::run spawns one coroutine per rank
// and drives the simulation to completion; it may be called repeatedly (the
// virtual clock keeps advancing, node shared segments persist — like a real
// job running several collective phases).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "chk/chk.hpp"
#include "machine/memory.hpp"
#include "machine/network.hpp"
#include "machine/params.hpp"
#include "machine/topology.hpp"
#include "obs/obs.hpp"
#include "shm/segment.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace srm::machine {

/// One SMP node: a memory cost model plus a shared-memory segment.
struct Node {
  Node(int id_, sim::Engine& eng, const MemoryParams& p, obs::Registry& reg)
      : id(id_), mem(eng, p, &reg, id_) {}
  int id;
  MemorySystem mem;
  shm::Segment seg;
};

struct ClusterConfig {
  int nodes = 1;
  int tasks_per_node = 1;
  MachineParams params = MachineParams::ibm_sp();
};

class Cluster;

/// Per-rank execution context handed to every task program.
struct TaskCtx {
  int rank = 0;
  Cluster* cluster = nullptr;
  sim::Engine* eng = nullptr;
  const MachineParams* P = nullptr;
  Node* nd = nullptr;
  const Topology* topo = nullptr;
  obs::Registry* obs = nullptr;
  chk::TaskChk chk;  // happens-before checker handle (no-op when disabled)

  int nranks() const { return topo->nranks(); }
  int node() const { return topo->node_of(rank); }
  int local() const { return topo->local_of(rank); }
  int nlocal() const { return topo->tasks_per_node(); }
  int nnodes() const { return topo->nodes(); }
  bool is_master() const { return topo->is_master(rank); }

  /// Suspend for @p d of virtual time (pure CPU cost).
  sim::Engine::SleepAwaiter delay(sim::Duration d) const {
    return eng->sleep(d);
  }

  /// Charged memcpy: costs copy time on this node's memory system, then
  /// moves the real bytes. Buffers may overlap only as std::memmove allows.
  sim::CoTask copy(void* dst, const void* src, std::size_t bytes) const;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);

  using Program = std::function<sim::CoTask(TaskCtx&)>;

  /// Spawn @p program once per rank and run the simulation to completion.
  void run(const Program& program);

  sim::Engine& engine() noexcept { return eng_; }
  chk::Checker& checker() noexcept { return chk_; }
  obs::Registry& obs() noexcept { return obs_; }
  Network& network() noexcept { return net_; }
  const Topology& topology() const noexcept { return topo_; }
  const MachineParams& params() const noexcept { return cfg_.params; }
  Node& node(int id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  TaskCtx& ctx(int rank) { return ctxs_.at(static_cast<std::size_t>(rank)); }

 private:
  ClusterConfig cfg_;
  sim::Engine eng_;
  Topology topo_;
  chk::Checker chk_;
  obs::Registry obs_;
  Network net_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<TaskCtx> ctxs_;
};

}  // namespace srm::machine
