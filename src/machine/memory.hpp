// MemorySystem: the per-node memory cost model.
//
// Copies and reduction combines contend for a node-wide fair-share bus with a
// per-stream cap (see sim::FairShareResource). A reduction combine is charged
// as a copy-sized bus transfer plus the extra per-byte compute time beyond
// copy speed, so that under no contention it runs at reduce_bw_per_cpu, and
// under contention the memory-bound part stretches like a copy would.
//
// Note: the *data* is moved by the caller with plain std::memcpy (instant in
// real time); this class accounts only the virtual-time cost.
#pragma once

#include <memory>

#include "machine/params.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace srm::machine {

class MemorySystem {
 public:
  /// @p reg/@p node: the observability registry cell ("mem.copy" /
  /// "mem.combine" under this node id) the model reports into; counter
  /// references are resolved once here, off the hot path.
  MemorySystem(sim::Engine& eng, const MemoryParams& p,
               obs::Registry* reg = nullptr, int node = 0)
      : eng_(&eng),
        p_(p),
        bus_(eng, p.bus_bw_total, p.copy_bw_per_cpu),
        copy_ctr_(reg != nullptr ? &reg->counter("mem.copy", node) : nullptr),
        combine_ctr_(reg != nullptr ? &reg->counter("mem.combine", node)
                                    : nullptr) {}

  /// Virtual-time cost of copying @p bytes (startup + contended stream).
  sim::CoTask charge_copy(double bytes) {
    ++copies_;
    copy_bytes_ += bytes;
    if (copy_ctr_ != nullptr) copy_ctr_->add(bytes);
    co_await eng_->sleep(p_.copy_startup);
    co_await bus_.transfer(bytes);
  }

  /// Copy whose bus time is scaled by a topology/coherence factor (the
  /// single-copy cross-mapped protocols: a pull across an L3 slice or socket
  /// boundary, dearer again from a dirty line). Counters record the true
  /// payload bytes; only the stream time stretches.
  sim::CoTask charge_copy_scaled(double bytes, double factor) {
    ++copies_;
    copy_bytes_ += bytes;
    if (copy_ctr_ != nullptr) copy_ctr_->add(bytes);
    co_await eng_->sleep(p_.copy_startup);
    co_await bus_.transfer(bytes * factor);
  }

  /// Combine variant of charge_copy_scaled (same accounting rules).
  sim::CoTask charge_combine_scaled(double bytes, double factor) {
    ++combines_;
    combine_bytes_ += bytes;
    if (combine_ctr_ != nullptr) combine_ctr_->add(bytes);
    co_await eng_->sleep(p_.copy_startup);
    co_await bus_.transfer(bytes * factor);
    double extra_sec = bytes / p_.reduce_bw_per_cpu - bytes / p_.copy_bw_per_cpu;
    if (extra_sec > 0.0) {
      co_await eng_->sleep(static_cast<sim::Duration>(extra_sec * 1e9));
    }
  }

  /// Virtual-time cost of combining @p bytes with a reduction operator.
  sim::CoTask charge_combine(double bytes) {
    ++combines_;
    combine_bytes_ += bytes;
    if (combine_ctr_ != nullptr) combine_ctr_->add(bytes);
    co_await eng_->sleep(p_.copy_startup);
    co_await bus_.transfer(bytes);
    // Extra compute time beyond what the memory stream already charged.
    double extra_sec = bytes / p_.reduce_bw_per_cpu - bytes / p_.copy_bw_per_cpu;
    if (extra_sec > 0.0) {
      co_await eng_->sleep(static_cast<sim::Duration>(extra_sec * 1e9));
    }
  }

  sim::FairShareResource& bus() noexcept { return bus_; }
  const MemoryParams& params() const noexcept { return p_; }

  /// Data-movement accounting (the paper's Fig. 2 copy-count argument).
  std::uint64_t copies() const noexcept { return copies_; }
  std::uint64_t combines() const noexcept { return combines_; }
  double copy_bytes() const noexcept { return copy_bytes_; }
  double combine_bytes() const noexcept { return combine_bytes_; }

 private:
  sim::Engine* eng_;
  MemoryParams p_;
  sim::FairShareResource bus_;
  obs::Counter* copy_ctr_;
  obs::Counter* combine_ctr_;
  std::uint64_t copies_ = 0;
  std::uint64_t combines_ = 0;
  double copy_bytes_ = 0.0;
  double combine_bytes_ = 0.0;
};

}  // namespace srm::machine
