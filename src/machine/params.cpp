// Machine profiles. Out-of-line so every translation unit shares one
// definition of each profile (and so the header carries no magic numbers
// beyond the field defaults).
#include "machine/params.hpp"

namespace srm::machine {

MachineParams MachineParams::ibm_sp() {
  MachineParams p;
  p.profile = "ibm_sp";
  // IBM MPI: tuned vendor library — lower software overheads, adaptive
  // eager limit. MPICH (over MPL over MPCI): one more software layer —
  // higher per-call and per-match costs, fixed eager limit.
  p.mpi_ibm.call_overhead = sim::us(1) + sim::ns(500);
  p.mpi_ibm.match_cost = sim::ns(1000);
  p.mpi_ibm.layer_overhead = sim::us(1) + sim::ns(500);
  p.mpi_ibm.eager_scales_with_tasks = true;
  p.mpi_ibm.allreduce_rd_max = 16 * 1024;

  p.mpi_mpich.call_overhead = sim::us(2) + sim::ns(500);
  p.mpi_mpich.match_cost = sim::ns(1600);
  p.mpi_mpich.layer_overhead = sim::us(2) + sim::ns(500);
  p.mpi_mpich.shm_per_chunk = sim::ns(700);
  p.mpi_mpich.eager_scales_with_tasks = false;
  p.mpi_mpich.eager_limit_base = 4096;
  p.mpi_mpich.allreduce_rd_max = 0;  // reduce+broadcast at every size
  // The NightHawk II node is a flat crossbar: one cache domain, no NUMA,
  // no dirty-line penalty in the paper's model (TopologyParams defaults).
  return p;
}

MachineParams MachineParams::modern_smp() {
  MachineParams p = ibm_sp();
  p.profile = "modern_smp";
  // Node: 2 sockets x 2 L3 slices x 4 cores = 16-way, DDR4-class memory.
  p.topo.cores_per_l3 = 4;
  p.topo.l3_per_socket = 2;
  p.topo.sockets = 2;
  p.topo.same_l3_factor = 1.0;
  p.topo.cross_l3_factor = 1.3;
  p.topo.cross_socket_factor = 2.2;
  p.topo.dirty_factor = 1.4;
  p.topo.map_publish = sim::ns(250);
  p.topo.map_attach = sim::ns(400);

  p.mem.copy_bw_per_cpu = 6.0e9;
  p.mem.bus_bw_total = 80.0e9;
  p.mem.copy_startup = sim::ns(80);
  p.mem.reduce_bw_per_cpu = 4.5e9;
  p.mem.flag_propagation = sim::ns(90);
  p.mem.flag_poll = sim::ns(25);

  // 100 Gb/s-class fabric, microsecond-scale latency.
  p.net.o_send = sim::ns(400);
  p.net.gap = sim::ns(250);
  p.net.bytes_per_sec = 12.0e9;
  p.net.latency = sim::us(1) + sim::ns(500);

  p.lapi.call_overhead = sim::ns(200);
  p.lapi.poll_dispatch = sim::ns(150);
  p.lapi.interrupt_cost = sim::us(4);
  return p;
}

}  // namespace srm::machine
