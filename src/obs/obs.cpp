#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <locale>
#include <sstream>

namespace srm::obs {

namespace {

// Events under one rank are fanned out to at most this many trace lanes;
// tid = rank * kLaneStride + lane keeps lanes of different ranks disjoint.
constexpr int kLaneStride = 16;

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// JSON number: integral values print without an exponent so the output is
// stable and friendly to line-based tooling; everything else gets 15
// significant digits (ns-in-µs timestamps round-trip exactly).
std::string num(double v) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  if (std::nearbyint(v) == v && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os.precision(15);
    os << v;
  }
  return os.str();
}

}  // namespace

Counter& Registry::counter(const std::string& name, int id) {
  if constexpr (!kEnabled) return dummy_;
  return counters_[name][id];
}

Counter Registry::total(const std::string& name) const {
  Counter sum;
  auto it = counters_.find(name);
  if (it == counters_.end()) return sum;
  for (const auto& [id, c] : it->second) {
    sum.count += c.count;
    sum.value += c.value;
  }
  return sum;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, cells] : counters_) out.push_back(name);
  return out;
}

void Registry::reset_counters() {
  for (auto& [name, cells] : counters_)
    for (auto& [id, c] : cells) c.reset();
}

std::size_t Registry::span_begin(int rank, const char* name) {
  if (!trace_) return kNoSpan;
  return span_begin(rank, std::string(name));
}

std::size_t Registry::span_begin(int rank, std::string name,
                                 std::string args) {
  if (!trace_) return kNoSpan;
  std::size_t id = spans_.size();
  spans_.push_back(SpanRec{std::move(name), rank, eng_->now(), eng_->now(),
                           /*open=*/true, std::move(args)});
  return id;
}

void Registry::span_end(std::size_t id) {
  if (id == kNoSpan) return;
  SRM_CHECK_MSG(id < spans_.size(), "span_end: bad span id");
  SpanRec& s = spans_[id];
  SRM_CHECK_MSG(s.open, "span_end: span already closed");
  s.end = eng_->now();
  s.open = false;
}

std::string Registry::counters_json() const {
  std::ostringstream os;
  os << "{\"enabled\":" << (kEnabled ? "true" : "false") << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, cells] : counters_) {
    Counter sum = total(name);
    if (!first) os << ",";
    first = false;
    os << "\"" << escape(name) << "\":{\"count\":" << sum.count
       << ",\"value\":" << num(sum.value) << ",\"per_id\":{";
    bool f2 = true;
    for (const auto& [id, c] : cells) {
      // Registered-but-never-hit cells (every endpoint creates its cells up
      // front) would drown the export in zeros; the totals above still
      // reflect them.
      if (c.count == 0 && c.value == 0.0) continue;
      if (!f2) os << ",";
      f2 = false;
      os << "\"" << id << "\":{\"count\":" << c.count
         << ",\"value\":" << num(c.value) << "}";
    }
    os << "}}";
  }
  os << "}}";
  return os.str();
}

std::string Registry::chrome_trace_json() const {
  // Assign each span a lane within its rank. Spans are placed in begin
  // order (longer first on ties); a span joins the first lane where it is
  // properly nested inside the lane's innermost still-open span — partial
  // overlap (the pipelined allreduce's concurrent phases) spills to the
  // next lane so chrome://tracing never sees mis-nested events.
  std::vector<std::size_t> order(spans_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     const SpanRec& sa = spans_[a];
                     const SpanRec& sb = spans_[b];
                     if (sa.rank != sb.rank) return sa.rank < sb.rank;
                     if (sa.begin != sb.begin) return sa.begin < sb.begin;
                     return sa.end > sb.end;
                   });

  std::vector<int> lane(spans_.size(), 0);
  int cur_rank = -1;
  // One open-span stack of end times per lane of the current rank.
  std::vector<std::vector<sim::Time>> lanes;
  sim::Time now = eng_->now();
  auto end_of = [&](const SpanRec& s) { return s.open ? now : s.end; };
  int max_lane = 0;
  for (std::size_t idx : order) {
    const SpanRec& s = spans_[idx];
    if (s.rank != cur_rank) {
      cur_rank = s.rank;
      lanes.clear();
    }
    sim::Time e = end_of(s);
    int chosen = -1;
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      auto& stk = lanes[l];
      while (!stk.empty() && stk.back() <= s.begin) stk.pop_back();
      if (stk.empty() || e <= stk.back()) {
        chosen = static_cast<int>(l);
        break;
      }
    }
    if (chosen < 0) {
      chosen = static_cast<int>(lanes.size());
      lanes.emplace_back();
    }
    lanes[static_cast<std::size_t>(chosen)].push_back(e);
    chosen = std::min(chosen, kLaneStride - 1);
    lane[idx] = chosen;
    max_lane = std::max(max_lane, chosen);
  }

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata so Perfetto shows "rank N" instead of raw tids.
  std::vector<std::pair<int, int>> named;  // (rank, lane)
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    auto key = std::make_pair(spans_[i].rank, lane[i]);
    if (std::find(named.begin(), named.end(), key) == named.end())
      named.push_back(key);
  }
  std::sort(named.begin(), named.end());
  for (auto [rank, l] : named) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << (rank * kLaneStride + l) << ",\"args\":{\"name\":\"rank " << rank;
    if (l > 0) os << " (overlap " << l << ")";
    os << "\"}}";
  }
  for (std::size_t idx : order) {
    const SpanRec& s = spans_[idx];
    double ts_us = static_cast<double>(s.begin) / 1e3;
    double dur_us = static_cast<double>(end_of(s) - s.begin) / 1e3;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << escape(s.name)
       << "\",\"cat\":\"" << (s.open ? "open" : "coll")
       << "\",\"ph\":\"X\",\"ts\":" << num(ts_us) << ",\"dur\":" << num(dur_us)
       << ",\"pid\":0,\"tid\":" << (s.rank * kLaneStride + lane[idx]);
    // s.args is pre-rendered JSON (CallSig::args_json) — emit verbatim.
    if (!s.args.empty()) os << ",\"args\":" << s.args;
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

}  // namespace srm::obs
