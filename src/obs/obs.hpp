// srm::obs — the observability substrate: named counters, scoped spans on
// the simulator's virtual clock, and exporters (Chrome-trace JSON for
// chrome://tracing / Perfetto, machine-readable counter JSON for benches).
//
// Counters are always on (they are the quantitative form of the paper's
// data-movement arguments: shm copies, combines, LAPI puts, Waitcntr stall
// time) and cost one cached-pointer bump on the hot path. Spans are gated by
// Registry::set_trace_enabled — off by default, so sweep benches don't
// accumulate per-chunk records.
//
// Counter taxonomy (name → id convention, value semantics):
//   mem.copy      per node   value = bytes copied through the node bus
//   mem.combine   per node   value = bytes combined by a reduction operator
//   lapi.put      per origin rank   value = payload bytes (data puts only)
//   lapi.signal   per origin rank   zero-byte counter-bump puts
//   lapi.am       per origin rank   value = message bytes
//   lapi.wait     per rank   value = virtual ns stalled inside Waitcntr
//   net.msg       per source node   value = bytes injected into the fabric
//   mpi.shm / mpi.eager / mpi.rndv   per sender rank   value = bytes
//
// Span naming scheme: "<layer>.<operation>[.<stage>]" — e.g. "srm.bcast",
// "bcast.small", "smp.bcast_chunk", "allreduce.rd.round", "barrier.inter".
// One span per collective per rank at the dispatch layer, one per protocol
// stage beneath it; concurrent stages of the pipelined allreduce overlap and
// are placed on separate trace lanes by the exporter.
//
// Building with -DSRM_OBS=OFF (CMake) defines SRM_OBS_DISABLED: the API
// stays source-compatible but every method is a no-op and exporters emit
// empty-but-valid JSON.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace srm::obs {

#if defined(SRM_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// One cell of a metric: an event count plus an accumulated value whose
/// meaning is metric-specific (bytes moved, ns stalled, ...).
struct Counter {
  std::uint64_t count = 0;
  double value = 0.0;

  void add(double v = 0.0) noexcept {
    if constexpr (kEnabled) {
      ++count;
      value += v;
    }
  }
  void reset() noexcept {
    count = 0;
    value = 0.0;
  }
};

/// One completed (or still-open) span on a rank's timeline, in virtual time.
struct SpanRec {
  std::string name;
  int rank;
  sim::Time begin;
  sim::Time end;
  bool open;         ///< true while span_end has not been called
  std::string args;  ///< optional pre-rendered JSON object ("{...}") or empty
};

class Registry {
 public:
  static constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

  explicit Registry(sim::Engine& eng) : eng_(&eng) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // ---- counters ----

  /// Stable reference to the (metric, id) cell; @p id is a rank or node
  /// index by the taxonomy above. Callers on hot paths cache the reference.
  Counter& counter(const std::string& name, int id = 0);

  /// Sum of a metric across all ids (zero Counter if never touched).
  Counter total(const std::string& name) const;
  std::uint64_t count(const std::string& name) const {
    return total(name).count;
  }
  double value(const std::string& name) const { return total(name).value; }

  /// All metric names registered so far, sorted.
  std::vector<std::string> names() const;

  /// Zero every cell (registered cells stay valid — cached references
  /// survive a reset).
  void reset_counters();

  // ---- spans ----

  void set_trace_enabled(bool on) { trace_ = kEnabled && on; }
  bool trace_enabled() const { return trace_; }

  /// Open a span on @p rank's timeline at now(). Returns kNoSpan (and
  /// records nothing) while tracing is disabled. @p args, when non-empty,
  /// must be a rendered JSON object; the Chrome exporter emits it verbatim
  /// as the event's "args" so per-call attributes (collective signatures)
  /// survive into the trace.
  std::size_t span_begin(int rank, const char* name);
  std::size_t span_begin(int rank, std::string name, std::string args = {});
  /// Close a span at now(). Passing kNoSpan is a no-op.
  void span_end(std::size_t id);

  const std::vector<SpanRec>& spans() const { return spans_; }
  void clear_spans() { spans_.clear(); }

  // ---- exporters ----

  /// {"enabled":..., "counters": {name: {count, value, per_id}}} — always
  /// valid JSON, deterministic key order.
  std::string counters_json() const;

  /// Chrome trace-event JSON ("traceEvents" array of complete "X" events,
  /// ts/dur in microseconds). Each rank is one named thread; spans that
  /// overlap without nesting (pipelined allreduce phases) are moved to
  /// auxiliary lanes so the file loads cleanly in chrome://tracing and
  /// Perfetto. Open spans are clamped to now() and tagged "open".
  std::string chrome_trace_json() const;

 private:
  sim::Engine* eng_;
  bool trace_ = false;
  // std::map: node-stable addresses (cached Counter&) + deterministic export.
  std::map<std::string, std::map<int, Counter>> counters_;
  Counter dummy_;  // sink for the disabled build
  std::vector<SpanRec> spans_;
};

/// RAII span: opens on construction, closes when the owning coroutine frame
/// (or scope) is destroyed. Safe across co_await suspension points.
class Span {
 public:
  Span(Registry& r, int rank, const char* name)
      : r_(&r), id_(r.span_begin(rank, name)) {}
  Span(Registry& r, int rank, std::string name, std::string args = {})
      : r_(&r), id_(r.span_begin(rank, std::move(name), std::move(args))) {}
  Span(Span&& o) noexcept
      : r_(std::exchange(o.r_, nullptr)),
        id_(std::exchange(o.id_, Registry::kNoSpan)) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span& operator=(Span&&) = delete;
  ~Span() {
    if (r_ != nullptr) r_->span_end(id_);
  }

 private:
  Registry* r_;
  std::size_t id_;
};

}  // namespace srm::obs
