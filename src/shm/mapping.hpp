// shm::Mapping — XPMEM-style cross-address-space windows for single-copy
// intra-node collectives.
//
// The paper's Fig. 2/3 protocols stage every payload through an intermediate
// shared buffer: one copy in, one copy out. A Mapping removes the staging
// hop: a task *exports* a window over its private source or destination
// buffer into the node's shared namespace, and peers *attach* and memcpy
// straight from/to the user memory — one copy total, no size cap from the
// staging buffers.
//
// The handshake is built on SharedFlag, so it inherits the store-propagation
// visibility model and the chk happens-before edges:
//
//   owner                            peer
//   -----                            ----
//   publish(base, n)                 |
//     pub[me].set(gen)   (release)   |
//   |                                attach(owner, gen)
//   |                                  await pub[owner] >= gen  (acquire)
//   |                                  ... direct memcpy ...
//   |                                detach(owner)
//   |                                  done[owner].add(1)       (release)
//   retract(peers)                   |
//     await done[me] >= Σ  (acquire) |
//
// Generations are monotonic per slot. Collective calls are deterministic, so
// every rank mirrors the expected generation of every window privately (the
// same trick the staged protocols use for A/B slot parity); the owner may
// reuse its buffer the instant retract() returns — all readers of that
// generation have detached. The exported window registers with chk::Checker,
// so unordered peer reads against owner writes surface as race reports, and
// srm::mc model-checks the handshake itself (mc/protocols: sc_* models).
//
// Validation (SRM_CHECK): publishing over a live window ("double export")
// and attaching to a generation that was already retracted
// ("attach after retract") throw util::CheckError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chk/chk.hpp"
#include "machine/cluster.hpp"
#include "machine/params.hpp"
#include "shm/flag.hpp"
#include "sim/task.hpp"
#include "util/check.hpp"

namespace srm::shm {

class Mapping {
 public:
  /// One attached view of an exported window.
  struct Window {
    std::byte* data = nullptr;
    std::size_t bytes = 0;
  };

  /// One window slot per local task, namespaced by @p label (flag labels and
  /// chk region names).
  Mapping(sim::Engine& eng, const machine::MemoryParams& mp, int nlocal,
          std::string label)
      : label_(std::move(label)) {
    slots_.reserve(static_cast<std::size_t>(nlocal));
    for (int l = 0; l < nlocal; ++l) {
      slots_.push_back(std::make_unique<Slot>(eng, mp, label_, l));
    }
  }

  /// Export [base, base+bytes) as the next generation of the caller's
  /// window. Charges the registration cost, then makes the window visible
  /// (release on the publish flag). One live window per task.
  sim::CoTask publish(machine::TaskCtx& t, void* base, std::size_t bytes) {
    Slot& s = slot(t.local());
    SRM_CHECK_MSG(!s.live, "Mapping '" << label_ << "': double export by local "
                                       << t.local());
    SRM_CHECK(bytes == 0 || base != nullptr);
    s.live = true;
    s.base = static_cast<std::byte*>(base);
    s.bytes = bytes;
    ++s.pub_count;
    if (chk::on(t.chk) && bytes != 0) {
      t.chk.checker->register_region(
          base, bytes, label_ + "/win" + std::to_string(t.local()));
      // The owner produced the window contents (program order) before this
      // export; recording the write here puts it before the release below,
      // so any peer read that skips the attach handshake — or lands after a
      // premature reuse — surfaces as a race.
      chk::note_write(t.chk, base, bytes);
    }
    co_await t.delay(t.P->topo.map_publish);
    s.pub.set(s.pub_count, &t.chk);
  }

  /// Attach to generation @p gen of @p owner's window: charges the attach
  /// cost, blocks until that generation is published (acquire), and returns
  /// the window. Attaching to an already-retracted generation is a lifetime
  /// bug and throws.
  sim::CoTask attach(machine::TaskCtx& t, int owner, std::uint64_t gen,
                     Window* out) {
    SRM_CHECK(gen >= 1);
    Slot& s = slot(owner);
    co_await t.delay(t.P->topo.map_attach);
    co_await s.pub.await_at_least(gen, &t.chk);
    SRM_CHECK_MSG(s.ret_count < gen,
                  "Mapping '" << label_ << "': attach to retracted window "
                              << owner << " generation " << gen);
    out->data = s.base;
    out->bytes = s.bytes;
  }

  /// Done reading/writing @p owner's window (release on the detach flag).
  void detach(machine::TaskCtx& t, int owner) {
    slot(owner).done.add(1, &t.chk);
  }

  /// Tear down the caller's current window once @p peers detaches for this
  /// generation arrived (acquire). After this returns the owner's buffer is
  /// private again and may be rewritten immediately.
  sim::CoTask retract(machine::TaskCtx& t, int peers) {
    Slot& s = slot(t.local());
    SRM_CHECK_MSG(s.live, "Mapping '" << label_ << "': retract without export"
                                      << " by local " << t.local());
    s.expected_done += static_cast<std::uint64_t>(peers);
    if (peers > 0) {
      co_await s.done.await_at_least(s.expected_done, &t.chk);
    }
    s.live = false;
    ++s.ret_count;
  }

  bool exported(int local) const { return cslot(local).live; }
  /// Publishes so far on @p local's slot (the next attach generation is
  /// generation(local)+1 while no window is live).
  std::uint64_t generation(int local) const { return cslot(local).pub_count; }

 private:
  struct Slot {
    Slot(sim::Engine& eng, const machine::MemoryParams& mp,
         const std::string& label, int l)
        : pub(eng, mp, 0, label + "/pub[" + std::to_string(l) + "]"),
          done(eng, mp, 0, label + "/done[" + std::to_string(l) + "]") {}
    SharedFlag pub;   ///< publish generation (monotonic)
    SharedFlag done;  ///< cumulative detach count (monotonic)
    std::byte* base = nullptr;
    std::size_t bytes = 0;
    bool live = false;
    std::uint64_t pub_count = 0;
    std::uint64_t ret_count = 0;
    std::uint64_t expected_done = 0;  ///< Σ peers over retracted generations
  };

  Slot& slot(int l) { return *slots_.at(static_cast<std::size_t>(l)); }
  const Slot& cslot(int l) const {
    return *slots_.at(static_cast<std::size_t>(l));
  }

  std::string label_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace srm::shm
