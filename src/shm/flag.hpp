// SharedFlag / FlagArray: cache-line synchronization flags in shared memory.
//
// The paper's intra-node protocols synchronize exclusively through flags:
// one READY flag per process per broadcast buffer (Fig. 3), one barrier flag
// per process on its own cache line (§2.2). A store becomes visible to
// spinning readers one cache-line propagation later; reading an
// already-visible value is free (the line is in-cache). The paper's
// spin-with-yield policy (yield the time slice after N failed spins so LAPI
// threads can run) affects which *thread* runs on a real CPU; in the model
// the LAPI dispatcher cost is charged separately (lapi::Endpoint), so the
// yield policy has no additional cost here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/params.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/wait.hpp"

namespace srm::shm {

class SharedFlag {
 public:
  SharedFlag(sim::Engine& eng, const machine::MemoryParams& p,
             std::uint64_t initial = 0)
      : eng_(&eng), prop_(p.flag_propagation), value_(initial), wq_(eng) {}

  std::uint64_t get() const noexcept { return value_; }

  /// Store a value; spinning readers observe it after one propagation delay.
  void set(std::uint64_t v) {
    value_ = v;
    eng_->call_at(eng_->now() + prop_, [this] { wq_.notify(); });
  }

  /// Atomic add (models fetch-and-add on a shared line).
  void add(std::uint64_t delta) { set(value_ + delta); }

  /// Suspend until the flag equals @p v.
  sim::CoTask await_value(std::uint64_t v) {
    co_await wq_.wait_until([this, v] { return value_ == v; });
  }

  /// Suspend until the flag differs from @p v.
  sim::CoTask await_not(std::uint64_t v) {
    co_await wq_.wait_until([this, v] { return value_ != v; });
  }

  /// Suspend until the flag is at least @p v (counter semantics).
  sim::CoTask await_at_least(std::uint64_t v) {
    co_await wq_.wait_until([this, v] { return value_ >= v; });
  }

 private:
  sim::Engine* eng_;
  sim::Duration prop_;
  std::uint64_t value_;
  sim::WaitQueue wq_;
};

/// A fixed array of flags, one per local task, each on its own cache line
/// (modelled: independent SharedFlag objects, no false sharing).
class FlagArray {
 public:
  FlagArray(sim::Engine& eng, const machine::MemoryParams& p, int count,
            std::uint64_t initial = 0) {
    flags_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      flags_.push_back(std::make_unique<SharedFlag>(eng, p, initial));
    }
  }

  SharedFlag& operator[](int i) { return *flags_.at(static_cast<std::size_t>(i)); }
  int size() const noexcept { return static_cast<int>(flags_.size()); }

 private:
  std::vector<std::unique_ptr<SharedFlag>> flags_;
};

}  // namespace srm::shm
