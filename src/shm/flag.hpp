// SharedFlag / FlagArray: cache-line synchronization flags in shared memory.
//
// The paper's intra-node protocols synchronize exclusively through flags:
// one READY flag per process per broadcast buffer (Fig. 3), one barrier flag
// per process on its own cache line (§2.2). A store becomes visible to
// spinning readers one cache-line propagation later; reading an
// already-visible value is free (the line is in-cache). The paper's
// spin-with-yield policy (yield the time slice after N failed spins so LAPI
// threads can run) affects which *thread* runs on a real CPU; in the model
// the LAPI dispatcher cost is charged separately (lapi::Endpoint), so the
// yield policy has no additional cost here.
//
// Visibility model: the flag keeps two values. `value_` is the committed
// value (what a read-modify-write sees; the line's true state); `visible_`
// is what remote spinners observe, trailing each store by one propagation
// delay. A task observes its *own* last store immediately (program order /
// own cache), so await_* with a TaskChk reads `value_` while that task is
// the most recent writer and `visible_` otherwise; polled get() and
// anonymous awaits read `visible_`; raw_get() exposes the committed value.
// Visibility updates are sequence-stamped so that when the engine runs with
// a randomized tie-break, two in-flight stores cannot apply out of order
// and resurrect an overwritten value.
//
// Every mutation/observation optionally carries a chk::TaskChk: stores are
// release operations on the flag's SyncVar and satisfied awaits are
// acquires, giving srm::chk the happens-before edges of Fig. 3.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chk/chk.hpp"
#include "machine/params.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/wait.hpp"

namespace srm::shm {

class SharedFlag {
 public:
  SharedFlag(sim::Engine& eng, const machine::MemoryParams& p,
             std::uint64_t initial = 0, std::string label = {})
      : eng_(&eng),
        prop_(p.flag_propagation),
        value_(initial),
        visible_(initial),
        label_(std::move(label)),
        wq_(eng, label_) {}

  /// The value a spinning reader observes now (stores become visible one
  /// propagation delay after set()).
  std::uint64_t get() const noexcept { return visible_; }

  /// The committed value, ignoring propagation — the writing side's own
  /// view. Only meaningful on the task that issued the last store.
  std::uint64_t raw_get() const noexcept { return value_; }

  /// Store a value; readers (polled or blocked) observe it one propagation
  /// delay later. A chk release edge is recorded at store time.
  void set(std::uint64_t v, const chk::TaskChk* who = nullptr) {
    value_ = v;
    last_writer_ = who != nullptr ? who->actor : -1;
    chk::rel(who, sync_, label_.empty() ? nullptr : label_.c_str());
    std::uint64_t s = ++store_seq_;
    eng_->call_at(eng_->now() + prop_, [this, v, s] {
      // Out-of-order application guard: with a randomized tie-break two
      // same-instant visibility events may fire in either order; only the
      // newest store may win.
      if (s > applied_seq_) {
        applied_seq_ = s;
        visible_ = v;
      }
      wq_.notify();
    });
  }

  /// Atomic add (models fetch-and-add on a shared line).
  void add(std::uint64_t delta, const chk::TaskChk* who = nullptr) {
    set(value_ + delta, who);
  }

  /// Suspend until the flag equals @p v.
  sim::CoTask await_value(std::uint64_t v, const chk::TaskChk* who = nullptr) {
    int a = who != nullptr ? who->actor : -1;
    co_await wq_.wait_until([this, v, a] { return observed(a) == v; }, a);
    acquired(who);
  }

  /// Suspend until the flag differs from @p v.
  sim::CoTask await_not(std::uint64_t v, const chk::TaskChk* who = nullptr) {
    int a = who != nullptr ? who->actor : -1;
    co_await wq_.wait_until([this, v, a] { return observed(a) != v; }, a);
    acquired(who);
  }

  /// Suspend until the flag is at least @p v (counter semantics).
  sim::CoTask await_at_least(std::uint64_t v,
                             const chk::TaskChk* who = nullptr) {
    int a = who != nullptr ? who->actor : -1;
    co_await wq_.wait_until([this, v, a] { return observed(a) >= v; }, a);
    acquired(who);
  }

  const std::string& label() const noexcept { return label_; }
  chk::SyncVar& sync() noexcept { return sync_; }

 private:
  void acquired(const chk::TaskChk* who) {
    chk::acq(who, sync_, label_.empty() ? nullptr : label_.c_str());
  }

  /// What task @p a observes right now: its own last store immediately
  /// (program order), everyone else's stores one propagation later.
  std::uint64_t observed(int a) const noexcept {
    return a >= 0 && a == last_writer_ ? value_ : visible_;
  }

  sim::Engine* eng_;
  sim::Duration prop_;
  std::uint64_t value_;
  std::uint64_t visible_;
  int last_writer_ = -1;
  std::uint64_t store_seq_ = 0;
  std::uint64_t applied_seq_ = 0;
  std::string label_;
  chk::SyncVar sync_;
  sim::WaitQueue wq_;
};

/// A fixed array of flags, one per local task, each on its own cache line
/// (modelled: independent SharedFlag objects, no false sharing).
class FlagArray {
 public:
  FlagArray(sim::Engine& eng, const machine::MemoryParams& p, int count,
            std::uint64_t initial = 0, const std::string& label = {}) {
    flags_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      flags_.push_back(std::make_unique<SharedFlag>(
          eng, p, initial,
          label.empty() ? std::string{}
                        : label + "[" + std::to_string(i) + "]"));
    }
  }

  SharedFlag& operator[](int i) { return *flags_.at(static_cast<std::size_t>(i)); }
  int size() const noexcept { return static_cast<int>(flags_.size()); }

 private:
  std::vector<std::unique_ptr<SharedFlag>> flags_;
};

}  // namespace srm::shm
