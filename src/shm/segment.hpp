// Segment: the per-node shared-memory arena.
//
// Models a System-V/POSIX shared segment: every task on a node that asks for
// the same name gets the same storage (create-or-attach). Raw buffers are
// zero-initialized and cache-line aligned; "model objects" (flags, counters)
// that carry simulator state are shared the same way.
//
// All the bytes are real — SRM protocols memcpy through these buffers, so
// data-correctness tests validate the actual protocol data flow, not just
// its timing.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <utility>

#include "chk/chk.hpp"
#include "util/align.hpp"
#include "util/check.hpp"

namespace srm::shm {

class Segment {
 public:
  Segment() = default;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  /// Attach a checker: buffers created from here on register as tracked
  /// regions named "<prefix><buffer name>".
  void set_checker(chk::Checker* chk, std::string prefix = {}) {
    chk_ = chk;
    chk_prefix_ = std::move(prefix);
  }

  /// Create-or-attach a zeroed byte buffer of (at least) @p bytes.
  /// All callers passing the same name must pass the same size.
  std::span<std::byte> buffer(const std::string& name, std::size_t bytes) {
    auto it = buffers_.find(name);
    if (it == buffers_.end()) {
      std::size_t padded = util::align_up(std::max<std::size_t>(bytes, 1),
                                          util::kCacheLine);
      auto storage = std::make_unique<std::byte[]>(padded);
      std::fill_n(storage.get(), padded, std::byte{0});
      if (chk_ != nullptr) {
        chk_->register_region(storage.get(), bytes, chk_prefix_ + name);
      }
      it = buffers_.emplace(name, Buf{std::move(storage), bytes}).first;
    }
    SRM_CHECK_MSG(it->second.size == bytes,
                  "segment buffer '" << name << "' re-attached with size "
                                     << bytes << " != " << it->second.size);
    return {it->second.data.get(), bytes};
  }

  /// Create-or-attach a shared model object (flag array, counter, ...).
  /// The first caller constructs it with @p args; later callers attach.
  template <typename T, typename... Args>
  T& object(const std::string& name, Args&&... args) {
    auto it = objects_.find(name);
    if (it == objects_.end()) {
      auto obj = std::make_shared<T>(std::forward<Args>(args)...);
      it = objects_
               .emplace(name, Obj{std::move(obj), std::type_index(typeid(T))})
               .first;
    }
    SRM_CHECK_MSG(it->second.type == std::type_index(typeid(T)),
                  "segment object '" << name << "' attached with wrong type");
    return *static_cast<T*>(it->second.ptr.get());
  }

  bool contains(const std::string& name) const {
    return buffers_.count(name) != 0 || objects_.count(name) != 0;
  }

  std::size_t buffer_count() const noexcept { return buffers_.size(); }
  std::size_t object_count() const noexcept { return objects_.size(); }

 private:
  struct Buf {
    std::unique_ptr<std::byte[]> data;
    std::size_t size;
  };
  struct Obj {
    std::shared_ptr<void> ptr;
    std::type_index type;
  };
  chk::Checker* chk_ = nullptr;
  std::string chk_prefix_;
  std::unordered_map<std::string, Buf> buffers_;
  std::unordered_map<std::string, Obj> objects_;
};

}  // namespace srm::shm
