// sa_verify — command-line front end of the srm::sa static analyzer.
//
//   sa_verify lint                    lint all fifteen protocol models
//   sa_verify cost [--profile P]      print critical-path formulas + costs
//   sa_verify dominance [--profile P] prove the builtin table non-dominated
//                                     and print the analytic crossovers
//   sa_verify crosscheck FILE         dominance-check a tuner artifact
//                                     (bench/tune --out) against its profile
//   sa_verify gauntlet                classify the 26 mutation-gauntlet bugs
//                                     by the lint rules that catch them
//   sa_verify all                     lint + dominance (both profiles) +
//                                     gauntlet
//
// Exit codes: 0 all checks passed, 1 a check failed, 2 usage/setup error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "coll/decision.hpp"
#include "core/config.hpp"
#include "machine/params.hpp"
#include "mc/protocols.hpp"
#include "sa/cost.hpp"
#include "sa/dominance.hpp"
#include "sa/lint.hpp"
#include "util/check.hpp"

namespace {

using namespace srm;

const std::vector<mc::Shape>& lint_shapes() {
  static const std::vector<mc::Shape> shapes = {
      {1, 2, 1}, {2, 2, 1}, {2, 2, 3}, {1, 3, 1}, {2, 1, 1}, {2, 4, 2}};
  return shapes;
}

bool profile_params(const std::string& name, machine::MachineParams& out) {
  if (name == "ibm_sp") {
    out = machine::MachineParams::ibm_sp();
    return true;
  }
  if (name == "modern_smp") {
    out = machine::MachineParams::modern_smp();
    return true;
  }
  return false;
}

int run_lint() {
  int bad = 0;
  for (mc::Proto proto : mc::all_protos()) {
    for (const mc::Shape& sh : lint_shapes()) {
      mc::Program p = mc::build(proto, sh);
      std::vector<sa::Diag> diags = sa::lint(p);
      if (diags.empty()) continue;
      ++bad;
      std::printf("FAIL lint %-16s %s: %zu diagnostic(s)\n",
                  mc::proto_name(proto), sh.to_string().c_str(),
                  diags.size());
      for (const sa::Diag& d : diags) {
        std::printf("     [%s] %s#%d '%s': %s\n", d.rule.c_str(),
                    d.thread.c_str(), d.op_index, d.label.c_str(),
                    d.message.c_str());
      }
    }
  }
  if (bad == 0) {
    std::printf("PASS lint: %d protocols x %zu shapes clean\n",
                mc::kProtoCount, lint_shapes().size());
  }
  return bad == 0 ? 0 : 1;
}

int run_cost(const std::string& profile) {
  machine::MachineParams mp;
  if (!profile_params(profile, mp)) {
    std::fprintf(stderr, "unknown profile '%s'\n", profile.c_str());
    return 2;
  }
  SrmConfig cfg;
  std::printf("critical-path formulas on %s (2 nodes x 4 tasks)\n",
              mp.profile);
  struct Case {
    coll::CollKind op;
    coll::Algo algo;
    bool mapped;
    std::size_t bytes;
  };
  const Case cases[] = {
      {coll::CollKind::bcast, coll::Algo::staged, false, 4096},
      {coll::CollKind::bcast, coll::Algo::staged, true, 16384},
      {coll::CollKind::bcast, coll::Algo::direct, false, 262144},
      {coll::CollKind::bcast, coll::Algo::scatter_ag, false, 262144},
      {coll::CollKind::allreduce, coll::Algo::rd, false, 4096},
      {coll::CollKind::allreduce, coll::Algo::pipeline, false, 262144},
      {coll::CollKind::allreduce, coll::Algo::ring, false, 262144},
      {coll::CollKind::reduce, coll::Algo::staged, false, 16384},
      {coll::CollKind::barrier, coll::Algo::staged, false, 0},
  };
  for (const Case& c : cases) {
    coll::Decision d;
    d.algo = c.algo;
    d.mapped = c.mapped;
    sa::AlgoCost ac = sa::algo_cost(c.op, d, c.bytes, cfg, mp);
    if (!ac.feasible) continue;
    std::printf("  %-14s %-10s%s @%7zu B: %12.0f ns %9.0f busB = %s\n",
                coll::coll_name(c.op), coll::algo_name(c.algo),
                c.mapped ? "+m" : "  ", c.bytes, ac.ns, ac.bus_bytes,
                ac.formula.to_string().c_str());
  }
  return 0;
}

int check_one_table(const coll::DecisionTable& t, const std::string& profile,
                    const char* what) {
  machine::MachineParams mp;
  if (!profile_params(profile, mp)) {
    std::fprintf(stderr, "unknown profile '%s' in %s\n", profile.c_str(),
                 what);
    return 2;
  }
  SrmConfig cfg;
  sa::DominanceReport rep = sa::check_table(t, cfg, mp);
  for (const sa::Crossover& x : rep.crossovers) {
    std::printf("  crossover %s\n", sa::to_string(x).c_str());
  }
  if (rep.issues.empty()) {
    std::printf("PASS dominance %s (%s): every row non-dominated\n", what,
                profile.c_str());
    return 0;
  }
  for (const sa::DominanceIssue& i : rep.issues) {
    std::printf("FAIL dominance %s: %s\n", what, sa::to_string(i).c_str());
  }
  return 1;
}

int run_dominance(const std::string& profile) {
  const coll::DecisionTable* t = coll::DecisionTable::builtin(profile);
  if (t == nullptr) {
    std::fprintf(stderr, "no builtin table for profile '%s'\n",
                 profile.c_str());
    return 2;
  }
  return check_one_table(*t, profile, "builtin");
}

int run_crosscheck(const std::string& path) {
  coll::DecisionTable t;
  try {
    t = coll::DecisionTable::load(path);
  } catch (const util::CheckError& e) {
    std::fprintf(stderr, "cannot load '%s': %s\n", path.c_str(), e.what());
    return 2;
  }
  std::string profile = t.profile.empty() ? "ibm_sp" : t.profile;
  return check_one_table(t, profile, path.c_str());
}

int run_gauntlet() {
  int uncaught = 0;
  for (const mc::Mutant& m : mc::mutation_gauntlet()) {
    std::vector<sa::Diag> diags = sa::lint(m.program);
    std::vector<std::string> rules = sa::fired_rules(diags);
    std::string joined;
    for (const std::string& r : rules) {
      if (!joined.empty()) joined += ",";
      joined += r;
    }
    if (rules.empty()) {
      ++uncaught;
      std::printf("FAIL gauntlet %-32s caught by: (nothing — dynamic-only)\n",
                  m.name.c_str());
    } else {
      std::printf("PASS gauntlet %-32s caught by: %s\n", m.name.c_str(),
                  joined.c_str());
    }
  }
  if (uncaught == 0) {
    std::printf("PASS gauntlet: every mutant statically caught\n");
  }
  return uncaught == 0 ? 0 : 1;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: sa_verify lint | cost [--profile P] | dominance [--profile P]"
      " | crosscheck FILE | gauntlet | all\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string mode = argv[1];
  std::string profile = "ibm_sp";
  std::string file;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile = argv[++i];
    } else if (file.empty() && argv[i][0] != '-') {
      file = argv[i];
    } else {
      return usage();
    }
  }
  try {
    if (mode == "lint") return run_lint();
    if (mode == "cost") return run_cost(profile);
    if (mode == "dominance") return run_dominance(profile);
    if (mode == "crosscheck") {
      if (file.empty()) return usage();
      return run_crosscheck(file);
    }
    if (mode == "gauntlet") return run_gauntlet();
    if (mode == "all") {
      int rc = run_lint();
      int rd = run_dominance("ibm_sp");
      int rm = run_dominance("modern_smp");
      int rg = run_gauntlet();
      if (rc == 2 || rd == 2 || rm == 2 || rg == 2) return 2;
      return (rc | rd | rm | rg) != 0 ? 1 : 0;
    }
  } catch (const util::CheckError& e) {
    std::fprintf(stderr, "sa_verify: %s\n", e.what());
    return 2;
  }
  return usage();
}
