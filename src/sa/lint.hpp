// srm::sa — pass (2): flow-sensitive protocol lint over the mc IR.
//
// Eight rule families, each a structural check on one Program that needs no
// interleaving enumeration:
//
//   R1 await-unsat        an await guard no reachable value can satisfy
//                         (no writers, a deterministic same-thread fold that
//                         fails the guard, or an upper bound below a >=/==
//                         threshold) — subsumes dead-transition detection:
//                         everything after the wedged guard is dead.
//   R2 credit-underflow   wait_dec demand on a pure counter exceeds its
//                         initial value plus every add in the program.
//   R3 chan-arity         #send != #recv on a channel (an orphaned message
//                         or a recv that must starve).
//   R4 window-protocol    publish/attach/detach/retract discipline on the
//                         registered shm::Mapping windows: (a) attach-check
//                         before a non-owner read, (b) reader bumps the
//                         detach counter after its last read, (c) owner
//                         collects detaches before overwriting a published
//                         window, (d) owner writes the window before
//                         publishing it.
//   R5 publish-order      the j-th bump of a flag/counter consumed before
//                         buffer reads must be preceded by >= j writes of
//                         the consumed buffers (signal-before-deposit).
//   R6 flag-reuse         two nonzero sets of the same flag by one thread
//                         with no blocking read of the flag in between
//                         (overwrites a generation the consumer may not
//                         have seen).
//   R7 source-reuse       a thread feeding an origin-side handoff channel
//                         overwrites the source buffer without waiting on
//                         the adapter's origin counter (LAPI origin-buffer
//                         reuse rule, §2.3).
//   R8 canonical-exec     residue of the pass-(1) abstract execution: a
//                         deadlock stall or a happens-before race on the
//                         canonical schedule (sound — that schedule is a
//                         real interleaving).
//
// R1-R7 are purely structural; R8 is the only rule that "runs" the program,
// and it runs exactly one deterministic schedule — still no model checking.
#pragma once

#include <string>
#include <vector>

#include "mc/ir.hpp"

namespace srm::sa {

/// One diagnostic, anchored to a precise IR location.
struct Diag {
  std::string rule;     ///< "R1".."R8" (R8 variants "R8-race"/"R8-deadlock")
  std::string thread;   ///< thread the diagnostic anchors to
  int op_index = -1;    ///< op index within that thread (-1: whole-thread)
  std::string label;    ///< label of the anchored op
  std::string message;  ///< human-readable explanation
};

/// Run every lint rule over @p p. Empty result == protocol lints clean.
std::vector<Diag> lint(const mc::Program& p);

/// The distinct rule families that fired, e.g. {"R1", "R8"} — the gauntlet
/// classification of a mutant.
std::vector<std::string> fired_rules(const std::vector<Diag>& diags);

}  // namespace srm::sa
