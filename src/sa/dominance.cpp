#include "sa/dominance.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "mc/protocols.hpp"

namespace srm::sa {
namespace {

using coll::Algo;
using coll::CollKind;
using coll::Decision;

constexpr int kTasks = 4;  // canonical 2-node x 4-task model shape

/// Node count the builtin tables were tuned at (the paper's 8-node SP
/// testbed; modern_smp's tuner sweep is 8 nodes x 16 tasks). The IR models
/// exactly one internode hop, so check_table() evaluates each comparison a
/// second time with a closed-form LogGP extrapolation to this scale
/// (scale_extra): root-link bytes — a binomial tree pushes d = log2 N
/// subtree copies through the root's single link where an exchange keeps
/// per-link bytes ~2B(N-1)/N — and serial rounds beyond the one modeled
/// chain. A row is dominated only when it loses decisively at BOTH scales;
/// this is the term that separates tree algorithms from bandwidth-optimal
/// exchanges, invisible in any 2-node comparison.
constexpr int kTableNodes = 8;

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

int chunks_for(CollKind op, Algo algo, std::size_t bytes,
               const SrmConfig& cfg) {
  if (op == CollKind::bcast && algo == Algo::staged) {
    // bcast_small pipelines only inside its [pipe_min, pipe_max] band.
    if (bytes > cfg.bcast_pipe_min && bytes <= cfg.bcast_pipe_max) {
      return static_cast<int>(ceil_div(bytes, cfg.bcast_pipe_chunk));
    }
    return 1;
  }
  if (op == CollKind::bcast && algo == Algo::direct) {
    return static_cast<int>(std::max<std::size_t>(
        1, ceil_div(bytes, cfg.bcast_net_chunk)));
  }
  if (op == CollKind::reduce ||
      (op == CollKind::allreduce && algo == Algo::pipeline)) {
    return static_cast<int>(
        std::max<std::size_t>(1, ceil_div(bytes, cfg.reduce_chunk)));
  }
  return 1;
}

/// The address-exchange direct broadcast (core/bcast.cpp bcast_large) has
/// no entry among the fifteen protocol models, so the dominance pass
/// synthesizes its skeleton: the child announces its landing address, the
/// root hands each chunk to its adapter (origin counter dorg), the put
/// deposits in the child's dispatcher (arrival counter darr), and both
/// nodes fan the chunk out through the Fig. 3 shared-buffer pattern.
mc::Program direct_bcast(int tasks, int chunks) {
  mc::Program p;
  p.name = "direct_bcast";
  auto num = [](int v) { return std::to_string(v); };
  const auto W = static_cast<std::uint64_t>(tasks);
  int root = p.thread("r0.0");
  int child = p.thread("r1.0");
  int nic0 = p.thread("nic0");
  int nic1 = p.thread("nic1");
  int adp0 = p.thread("adp0");

  int addr10 = p.chan("addr10");
  int addrarr = p.var("addrarr");
  p.send(child, addr10);
  p.recv(nic0, addr10);
  p.add(nic0, addrarr, 1);
  p.wait_dec(root, addrarr, 1);

  int dorg = p.var("dorg");
  int darr = p.var("darr");
  auto smp_out = [&](int n, int leader, int c, int src) {
    if (tasks == 1) {
      if (src >= 0) p.read(leader, src, 0, W);
      return;
    }
    int s = c % 2;
    int bb = p.buf("bb" + num(n) + ".s" + num(s));
    std::vector<int> ready;
    for (int l = 1; l < tasks; ++l) {
      ready.push_back(p.var("ready" + num(n) + ".s" + num(s) + "[" +
                            num(l) + "]"));
    }
    for (int r : ready) p.await_eq(leader, r, 0);
    if (src >= 0) p.read(leader, src, 0, W);
    p.write(leader, bb, 0, W);
    for (int r : ready) p.set(leader, r, 1);
    for (int l = 1; l < tasks; ++l) {
      int t = p.thread("r" + num(n) + "." + num(l));
      p.await_eq(t, ready[static_cast<std::size_t>(l - 1)], 1);
      p.read(t, bb, 0, W);
      p.set(t, ready[static_cast<std::size_t>(l - 1)], 0);
    }
  };
  for (int c = 0; c < chunks; ++c) {
    int oput = p.chan("oput" + num(c));
    int dput = p.chan("dput" + num(c));
    int uland = p.buf("uland" + num(c));
    p.send(root, oput);
    p.recv(adp0, oput);
    p.add(adp0, dorg, 1);
    p.send(adp0, dput);
    p.recv(nic1, dput);
    p.write(nic1, uland, 0, W);
    p.add(nic1, darr, 1);
    smp_out(0, root, c, -1);  // the root's copy is its private user buffer
    p.wait_dec(child, darr, 1);
    smp_out(1, child, c, uland);
  }
  p.wait_dec(root, dorg, static_cast<std::uint64_t>(chunks));
  p.validate();
  return p;
}

AlgoCost eval_model(const mc::Program& prog, const Plan& plan,
                    const machine::MachineParams& mp) {
  AlgoCost c;
  c.feasible = true;
  AnalyzeResult r = analyze(prog, plan, CostRates::from(mp));
  c.ns = r.ns;
  c.bus_bytes = r.bus_bytes;
  c.formula = r.critical_path;
  return c;
}

AlgoCost eval_proto(mc::Proto proto, int chunks, const Plan& plan,
                    const machine::MachineParams& mp) {
  mc::Shape sh{2, kTasks, chunks};
  return eval_model(mc::build(proto, sh), plan, mp);
}

}  // namespace

std::vector<Decision> algo_menu(CollKind op) {
  auto d = [](Algo a, bool m) {
    Decision x;
    x.algo = a;
    x.mapped = m;
    return x;
  };
  switch (op) {
    case CollKind::bcast:
      return {d(Algo::staged, false), d(Algo::staged, true),
              d(Algo::direct, false), d(Algo::scatter_ag, false)};
    case CollKind::allreduce:
      return {d(Algo::rd, false), d(Algo::pipeline, false),
              d(Algo::ring, false), d(Algo::rhalving, false)};
    case CollKind::reduce:
    case CollKind::scatter:
    case CollKind::gather:
      return {d(Algo::staged, false), d(Algo::staged, true)};
    default:
      // barrier / allgather / reduce_scatter have one implementation; the
      // mapped column is advisory there (no single-copy variant).
      return {d(Algo::staged, false), d(Algo::staged, true)};
  }
}

Decision sanitize(CollKind op, Decision d, std::size_t bytes,
                  const SrmConfig& cfg) {
  switch (op) {
    case CollKind::bcast:
      if (d.algo == Algo::staged && bytes > cfg.smp_buf_bytes) {
        d.algo = Algo::direct;
      }
      if (d.algo != Algo::staged && d.algo != Algo::direct &&
          d.algo != Algo::scatter_ag) {
        d.algo = Algo::direct;
      }
      break;
    case CollKind::allreduce:
      if (d.algo == Algo::rd &&
          bytes > std::min(cfg.allreduce_rd_max, cfg.reduce_chunk)) {
        d.algo = Algo::pipeline;
      }
      if (d.algo == Algo::staged || d.algo == Algo::direct ||
          d.algo == Algo::scatter_ag) {
        d.algo = Algo::pipeline;
      }
      break;
    default:
      d.algo = Algo::staged;
      break;
  }
  return d;
}

AlgoCost algo_cost(CollKind op, Decision d, std::size_t bytes,
                   const SrmConfig& cfg,
                   const machine::MachineParams& mp) {
  AlgoCost out;
  out.algo = d.algo;
  out.mapped = d.mapped;
  Decision s = sanitize(op, d, bytes, cfg);
  if (s.algo != d.algo) return out;  // decide() would reroute: infeasible

  const double B = static_cast<double>(bytes);
  const double W = static_cast<double>(kTasks);
  const int C = chunks_for(op, d.algo, bytes, cfg);
  const double chunk_unit = B / (static_cast<double>(C) * W);

  Plan plan;
  plan.default_unit = chunk_unit;
  switch (op) {
    case CollKind::bcast:
      if (d.algo == Algo::staged && !d.mapped) {
        out = eval_proto(mc::Proto::bcast, C, plan, mp);
      } else if (d.algo == Algo::staged && d.mapped) {
        plan.default_unit = B / W;
        out = eval_proto(mc::Proto::sc_bcast, 1, plan, mp);
      } else if (d.algo == Algo::scatter_ag) {
        plan.default_unit = B / W;
        plan.unit_overrides = {{"scland", B / (2 * W)},
                               {"agland", B / (2 * W)}};
        out = eval_proto(mc::Proto::sa_bcast, 1, plan, mp);
      } else {
        out = eval_model(direct_bcast(kTasks, C), plan, mp);
      }
      break;
    case CollKind::reduce:
      plan.accumulators = {"res", "out", "acc"};
      out = eval_proto(d.mapped ? mc::Proto::sc_reduce : mc::Proto::reduce,
                       C, plan, mp);
      break;
    case CollKind::allreduce:
      if (d.algo == Algo::rd) {
        plan.default_unit = B / W;
        plan.accumulators = {"res", "out"};
        out = eval_proto(mc::Proto::allreduce, 1, plan, mp);
      } else if (d.algo == Algo::ring || d.algo == Algo::rhalving) {
        plan.default_unit = B / W;
        plan.unit_overrides = {{"rsland", B / (2 * W)},
                               {"agland", B / (2 * W)},
                               {"hxland", B / (2 * W)},
                               {"hbland", B / (2 * W)}};
        plan.accumulators = {"res"};
        out = eval_proto(d.algo == Algo::ring ? mc::Proto::ring_allreduce
                                              : mc::Proto::rh_allreduce,
                         1, plan, mp);
      } else {
        // Fig. 5 composite: the broadcast of chunk c overlaps the reduction
        // of chunk c+1, so cost = full reduce + a one-chunk broadcast drain.
        Plan red;
        red.default_unit = chunk_unit;
        red.accumulators = {"res", "out"};
        AlgoCost reduce_cost = eval_proto(mc::Proto::reduce, C, red, mp);
        Plan tail;
        tail.default_unit = chunk_unit;
        AlgoCost drain = eval_model(direct_bcast(kTasks, 1), tail, mp);
        out.feasible = true;
        out.ns = reduce_cost.ns + drain.ns;
        out.bus_bytes = reduce_cost.bus_bytes + drain.bus_bytes;
        out.formula = reduce_cost.formula;
        out.formula.accumulate(drain.formula);
        out.algo = d.algo;
        out.mapped = d.mapped;
      }
      break;
    case CollKind::barrier:
      plan.default_unit = 0.0;
      out = eval_proto(mc::Proto::barrier, 1, plan, mp);
      break;
    case CollKind::scatter:
      plan.default_unit = B / W;
      out = eval_proto(d.mapped ? mc::Proto::sc_scatter : mc::Proto::scatter,
                       1, plan, mp);
      break;
    case CollKind::gather:
      plan.default_unit = B / W;
      out = eval_proto(d.mapped ? mc::Proto::sc_gather : mc::Proto::gather,
                       1, plan, mp);
      break;
    case CollKind::allgather:
      // The gather half stages T per-rank blocks of B (unit T*B/W = B); the
      // broadcast half moves the full gathered vector (2 nodes: 2*T*B).
      plan.default_unit = B;
      plan.unit_overrides = {{"bc.", 2 * B}};
      out = eval_proto(mc::Proto::allgather, 1, plan, mp);
      break;
    case CollKind::reduce_scatter:
      plan.default_unit = B;
      plan.unit_overrides = {{"rd.", 2 * B}};
      plan.accumulators = {"res", "out"};
      out = eval_proto(mc::Proto::reduce_scatter, 1, plan, mp);
      break;
  }
  out.algo = d.algo;
  out.mapped = d.mapped;
  return out;
}
namespace {


double scale_extra(CollKind op, Algo algo, const AlgoCost& c, int chunks,
                   std::size_t bytes, const machine::MachineParams& mp) {
  const double n = kTableNodes;
  const double d = std::ceil(std::log2(n));
  const double B = static_cast<double>(bytes);
  const double G = 1.0 / mp.net.bytes_per_sec * 1e9;
  const double hop = static_cast<double>(mp.net.latency + mp.net.gap);
  const double C = static_cast<double>(std::max(chunks, 1));
  // Root-link bytes beyond the one modeled hop, plus serial rounds beyond
  // the modeled chain, per algorithm:
  //   binomial tree: the root pushes every chunk to d subtree children
  //   (d*B egress; the model ships B), and the first chunk rides d hops.
  //   recursive doubling: d full-vector rounds (model: 1 exchange).
  //   bandwidth-optimal exchanges: per-link bytes ~2B(N-1)/N (model: B for
  //   the allreduce exchanges, B for scatter+allgather), but the rounds
  //   serialize: d + (N-1) for scatter+allgather, 2(N-1) ring, 2d halving.
  const double band_extra = (2.0 * (n - 1.0) / n - 1.0) * B * G;
  switch (op) {
    case CollKind::bcast:
      if (algo == Algo::scatter_ag) {
        // The 2-node skeleton store-and-forwards the whole fan-out after
        // assembly; the runtime (core/zoo.cpp) publishes each of the N
        // blocks as it lands, so all but the final ~2 blocks' worth of the
        // modeled copy path overlaps the ring rounds. Credit that overlap
        // from the measured coefficient (zero at N = 2, where the
        // skeleton is exact).
        double overlap = c.formula[Atom::copy_bytes] * (1.0 - 2.0 / n) /
                         mp.mem.copy_bw_per_cpu * 1e9;
        return band_extra + (d + (n - 1.0) - 2.0) * hop - overlap;
      }
      return (d - 1.0) * B * G + (d - 1.0) * hop / C;
    case CollKind::allreduce:
      if (algo == Algo::rd) return (d - 1.0) * (B * G + hop);
      if (algo == Algo::ring) return band_extra + (2.0 * (n - 1.0) - 2.0) * hop;
      if (algo == Algo::rhalving) return band_extra + (2.0 * d - 2.0) * hop;
      // pipelined reduce+bcast: both trees pay the root link in full
      return 2.0 * (d - 1.0) * B * G + 2.0 * (d - 1.0) * hop / C;
    default:
      return 0.0;  // single-root staged ops: menu entries share the scaling
  }
}


/// Feasibility cap of a candidate: the largest byte count the sanitize
/// step still dispatches it at.
std::size_t feas_cap(CollKind op, const Decision& d,
                     const SrmConfig& cfg) {
  if (op == CollKind::bcast && d.algo == Algo::staged) {
    return cfg.smp_buf_bytes;
  }
  if (op == CollKind::allreduce && d.algo == Algo::rd) {
    return std::min(cfg.allreduce_rd_max, cfg.reduce_chunk);
  }
  return std::numeric_limits<std::size_t>::max();
}

bool best_at(CollKind op, std::size_t bytes, const SrmConfig& cfg,
             const machine::MachineParams& mp, Decision& best,
             double& best_ns) {
  bool found = false;
  for (const Decision& d : algo_menu(op)) {
    AlgoCost c = algo_cost(op, d, bytes, cfg, mp);
    if (!c.feasible) continue;
    if (!found || c.ns < best_ns) {
      best = d;
      best_ns = c.ns;
      found = true;
    }
  }
  return found;
}

}  // namespace

std::vector<Crossover> crossovers(CollKind op, const SrmConfig& cfg,
                                  const machine::MachineParams& mp) {
  std::vector<Crossover> out;
  constexpr std::size_t kLo = 64, kHi = 4u * 1024 * 1024;
  Decision prev;
  double prev_ns = 0.0;
  if (!best_at(op, kLo, cfg, mp, prev, prev_ns)) return out;
  std::size_t prev_b = kLo;
  for (std::size_t b = kLo * 2; b <= kHi; b *= 2) {
    Decision cur;
    double cur_ns = 0.0;
    if (!best_at(op, b, cfg, mp, cur, cur_ns)) break;
    if (!(cur == prev)) {
      Crossover x;
      x.op = op;
      x.from = prev;
      x.to = cur;
      std::size_t cap = feas_cap(op, prev, cfg);
      if (cap >= prev_b && cap < b) {
        x.bytes = cap;
        x.feasibility = true;
      } else {
        // Bisect to the last byte count where the previous winner wins.
        std::size_t lo = prev_b, hi = b;
        while (hi - lo > 1) {
          std::size_t mid = lo + (hi - lo) / 2;
          Decision m;
          double m_ns = 0.0;
          if (best_at(op, mid, cfg, mp, m, m_ns) && m == prev) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        x.bytes = lo;
        x.feasibility = false;
      }
      out.push_back(x);
    }
    prev = cur;
    prev_b = b;
  }
  return out;
}

DominanceReport check_table(const coll::DecisionTable& t,
                            const SrmConfig& cfg,
                            const machine::MachineParams& mp) {
  DominanceReport rep;
  for (int k = 0; k < 8; ++k) {
    auto op = static_cast<CollKind>(k);
    for (const auto& row : t.rows(op)) {
      std::size_t bytes = std::max<std::size_t>(row.min_bytes, 64);
      Decision chosen = sanitize(op, row.d, bytes, cfg);
      AlgoCost cc = algo_cost(op, chosen, bytes, cfg, mp);
      if (!cc.feasible) continue;
      for (const Decision& alt : algo_menu(op)) {
        if (alt == chosen) continue;
        AlgoCost ac = algo_cost(op, alt, bytes, cfg, mp);
        if (!ac.feasible) continue;
        bool slower = cc.ns > ac.ns * kSlackRel + kSlackAbs;
        bool buys_traffic = cc.bus_bytes < ac.bus_bytes * kBusSave;
        double cx = cc.ns + scale_extra(op, chosen.algo, cc,
                                        chunks_for(op, chosen.algo, bytes,
                                                   cfg),
                                        bytes, mp);
        double ax = ac.ns + scale_extra(op, alt.algo, ac,
                                        chunks_for(op, alt.algo, bytes, cfg),
                                        bytes, mp);
        bool slower_at_n = cx > ax * kSlackRel + kSlackAbs;
        if (slower && slower_at_n && !buys_traffic) {
          rep.issues.push_back(DominanceIssue{op, row.min_bytes, chosen, alt,
                                             cc.ns, ac.ns, cc.bus_bytes,
                                             ac.bus_bytes});
        }
      }
    }
  }
  for (CollKind op : {CollKind::bcast, CollKind::allreduce}) {
    auto xs = crossovers(op, cfg, mp);
    rep.crossovers.insert(rep.crossovers.end(), xs.begin(), xs.end());
  }
  return rep;
}

std::string to_string(const DominanceIssue& i) {
  std::ostringstream os;
  os << coll_name(i.op) << " row @" << i.min_bytes << "B: chosen "
     << coll::algo_name(i.chosen.algo) << (i.chosen.mapped ? "+mapped" : "")
     << " costs " << i.chosen_ns << " ns / " << i.chosen_bus << " bus B but "
     << coll::algo_name(i.better.algo) << (i.better.mapped ? "+mapped" : "")
     << " costs " << i.better_ns << " ns / " << i.better_bus
     << " bus B (dominated)";
  return os.str();
}

std::string to_string(const Crossover& c) {
  std::ostringstream os;
  os << coll_name(c.op) << ": " << coll::algo_name(c.from.algo)
     << (c.from.mapped ? "+mapped" : "") << " -> "
     << coll::algo_name(c.to.algo) << (c.to.mapped ? "+mapped" : "")
     << " above " << c.bytes << " B"
     << (c.feasibility ? " (feasibility cap)" : " (cost intersection)");
  return os.str();
}

}  // namespace srm::sa
