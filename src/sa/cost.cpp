#include "sa/cost.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <set>
#include <sstream>
#include <utility>

namespace srm::sa {
namespace {

double dur_ns(sim::Duration d) { return static_cast<double>(d); }

/// Thread taxonomy by the protocol naming convention: rank threads are
/// "r<node>.<local>", per-node dispatcher threads "nic<n>", origin-side
/// adapter engines "adp<n>".
struct ThreadInfo {
  enum class Kind { rank, nic, adp } kind = Kind::rank;
  int node = 0;
  int local = 0;
};

ThreadInfo classify_thread(const std::string& name) {
  ThreadInfo ti;
  if (name.rfind("nic", 0) == 0) {
    ti.kind = ThreadInfo::Kind::nic;
    ti.node = std::atoi(name.c_str() + 3);
  } else if (name.rfind("adp", 0) == 0) {
    ti.kind = ThreadInfo::Kind::adp;
    ti.node = std::atoi(name.c_str() + 3);
  } else if (name.rfind("r", 0) == 0) {
    ti.kind = ThreadInfo::Kind::rank;
    ti.node = std::atoi(name.c_str() + 1);
    auto dot = name.find('.');
    if (dot != std::string::npos) ti.local = std::atoi(name.c_str() + dot + 1);
  }
  return ti;
}

struct Msg {
  double deliver = 0.0;
  Formula f;
  std::vector<std::uint64_t> vc;
};

struct AccessRec {
  int tid = 0;
  std::uint64_t lo = 0, hi = 0;
  bool write = false;
  std::uint64_t epoch = 0;
  std::string label;
};

void join_into(std::vector<std::uint64_t>& dst,
               const std::vector<std::uint64_t>& src) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = std::max(dst[i], src[i]);
}

}  // namespace

const char* atom_name(Atom a) {
  switch (a) {
    case Atom::copy_start: return "copy_start";
    case Atom::copy_bytes: return "B_copy";
    case Atom::combine_bytes: return "B_combine";
    case Atom::flag_set: return "flag_set";
    case Atom::flag_poll: return "poll";
    case Atom::lapi_call: return "lapi";
    case Atom::poll_dispatch: return "dispatch";
    case Atom::o_send: return "o_send";
    case Atom::gap: return "g";
    case Atom::latency: return "L";
    case Atom::wire_bytes: return "B_wire";
    case Atom::map_publish: return "map_publish";
    case Atom::map_attach: return "map_attach";
  }
  return "?";
}

CostRates CostRates::from(const machine::MachineParams& p) {
  CostRates r;
  auto at = [&r](Atom a) -> double& {
    return r.ns[static_cast<std::size_t>(a)];
  };
  at(Atom::copy_start) = dur_ns(p.mem.copy_startup);
  at(Atom::copy_bytes) = 1e9 / p.mem.copy_bw_per_cpu;
  at(Atom::combine_bytes) = 1e9 / p.mem.reduce_bw_per_cpu;
  at(Atom::flag_set) = dur_ns(p.mem.flag_propagation);
  at(Atom::flag_poll) = dur_ns(p.mem.flag_poll);
  at(Atom::lapi_call) = dur_ns(p.lapi.call_overhead);
  at(Atom::poll_dispatch) = dur_ns(p.lapi.poll_dispatch);
  at(Atom::o_send) = dur_ns(p.net.o_send);
  at(Atom::gap) = dur_ns(p.net.gap);
  at(Atom::latency) = dur_ns(p.net.latency);
  at(Atom::wire_bytes) = 1e9 / p.net.bytes_per_sec;
  at(Atom::map_publish) = dur_ns(p.topo.map_publish);
  at(Atom::map_attach) = dur_ns(p.topo.map_attach);
  r.topo = p.topo;
  return r;
}

void Formula::accumulate(const Formula& o) {
  for (int i = 0; i < kAtomCount; ++i) n[static_cast<std::size_t>(i)] +=
      o.n[static_cast<std::size_t>(i)];
}

double Formula::eval(const CostRates& r) const {
  double total = 0.0;
  for (int i = 0; i < kAtomCount; ++i) {
    total += n[static_cast<std::size_t>(i)] * r.ns[static_cast<std::size_t>(i)];
  }
  return total;
}

std::string Formula::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (int i = 0; i < kAtomCount; ++i) {
    double v = n[static_cast<std::size_t>(i)];
    if (v == 0.0) continue;
    if (!first) os << " + ";
    first = false;
    if (v == std::floor(v)) {
      os << static_cast<long long>(v);
    } else {
      os << v;
    }
    os << " " << atom_name(static_cast<Atom>(i));
  }
  if (first) os << "0";
  return os.str();
}

double Plan::unit_of(const std::string& buf_name) const {
  for (const auto& [needle, unit] : unit_overrides) {
    if (buf_name.find(needle) != std::string::npos) return unit;
  }
  return default_unit;
}

bool Plan::accumulates(const std::string& buf_name) const {
  for (const std::string& needle : accumulators) {
    if (buf_name.find(needle) != std::string::npos) return true;
  }
  return false;
}

AnalyzeResult analyze(const mc::Program& p, const Plan& plan,
                      const CostRates& rates) {
  const int nthreads = static_cast<int>(p.threads.size());
  auto rate = [&rates](Atom a) {
    return rates.ns[static_cast<std::size_t>(a)];
  };

  std::vector<ThreadInfo> tinfo;
  tinfo.reserve(p.threads.size());
  for (const mc::Thread& t : p.threads) tinfo.push_back(classify_thread(t.name));

  // --- static pre-passes ----------------------------------------------------
  // Channel classification: the (single) receiving thread decides whether a
  // send is an origin-side handoff to the adapter (local, o_send only) or a
  // wire message (link occupancy + latency); the k-th recv site's following
  // deposit write sizes the k-th message's payload.
  const int nchans = static_cast<int>(p.chan_names.size());
  std::vector<int> chan_receiver(static_cast<std::size_t>(nchans), -1);
  std::vector<std::vector<double>> chan_payload(
      static_cast<std::size_t>(nchans));
  for (int tid = 0; tid < nthreads; ++tid) {
    const auto& ops = p.threads[static_cast<std::size_t>(tid)].ops;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind != mc::OpKind::recv) continue;
      auto c = static_cast<std::size_t>(ops[i].obj);
      chan_receiver[c] = tid;
      // Payload: the first deposit write after this recv, before the next
      // blocking op. Counter-only receptions are zero-byte signals.
      double bytes = 0.0;
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        if (mc::blocking(ops[j].kind)) break;
        if (ops[j].kind == mc::OpKind::write) {
          const std::string& bn =
              p.buf_names[static_cast<std::size_t>(ops[j].obj)];
          bytes = static_cast<double>(ops[j].b - ops[j].a) * plan.unit_of(bn);
          break;
        }
      }
      chan_payload[c].push_back(bytes);
    }
  }

  // Maximal runs of consecutive buffer accesses: one run is one data
  // movement (e.g. read slot + write res = one combine), charged when its
  // last access executes.
  std::vector<std::vector<std::size_t>> run_last(
      static_cast<std::size_t>(nthreads));
  for (int tid = 0; tid < nthreads; ++tid) {
    const auto& ops = p.threads[static_cast<std::size_t>(tid)].ops;
    auto& rl = run_last[static_cast<std::size_t>(tid)];
    rl.assign(ops.size(), 0);
    std::size_t i = 0;
    while (i < ops.size()) {
      if (!mc::is_access(ops[i].kind)) {
        rl[i] = i;
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j + 1 < ops.size() && mc::is_access(ops[j + 1].kind)) ++j;
      for (std::size_t k = i; k <= j; ++k) rl[k] = j;
      i = j + 1;
    }
  }

  // Window lookup (single-copy protocols): buffer -> window index.
  std::vector<int> win_of_buf(p.buf_names.size(), -1);
  std::vector<int> win_of_pub(p.var_names.size(), -1);
  for (std::size_t w = 0; w < p.windows.size(); ++w) {
    win_of_buf[static_cast<std::size_t>(p.windows[w].buf)] =
        static_cast<int>(w);
    win_of_pub[static_cast<std::size_t>(p.windows[w].pub_var)] =
        static_cast<int>(w);
  }

  // --- dynamic state --------------------------------------------------------
  struct TState {
    std::size_t pc = 0;
    double t = 0.0;
    Formula f;
    std::vector<std::uint64_t> vc;
    double run_read = 0.0, run_write = 0.0;
    bool run_combine = false;
  };
  // One release (set / add / wait_dec) of a variable. Awaits complete
  // *eagerly*: against the earliest release whose resulting value satisfies
  // their guard, acquiring only the clock accumulated up to that release.
  // Resuming against the latest release instead (the lazy schedule) would
  // hand the awaiter happens-before edges from everything the producer did
  // since, masking races that a dropped-gate mutant actually has; the eager
  // completion is itself a legal interleaving (awaits write nothing, so they
  // commute backwards past unrelated later releases).
  struct Rel {
    std::uint64_t val = 0;  ///< variable value after this release
    double t = 0.0;         ///< visibility time (release + flag propagation)
    Formula f;              ///< critical path an awaiter adopts
    std::vector<std::uint64_t> vc;  ///< clock accumulated through here
    int rel_tid = 0;
    std::uint64_t rel_epoch = 0;    ///< releaser's own clock at the release
  };
  struct VState {
    std::uint64_t v = 0;
    double t = 0.0;
    Formula f;
    std::vector<std::uint64_t> vc;
    std::vector<Rel> hist;
  };
  std::vector<TState> th(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    th[static_cast<std::size_t>(i)].vc.assign(
        static_cast<std::size_t>(nthreads), 0);
    th[static_cast<std::size_t>(i)].vc[static_cast<std::size_t>(i)] = 1;
  }
  std::vector<VState> vars(p.var_names.size());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    vars[i].v = p.var_init[i];
    vars[i].vc.assign(static_cast<std::size_t>(nthreads), 0);
  }
  std::vector<std::deque<Msg>> chans(static_cast<std::size_t>(nchans));
  std::vector<int> chan_sends(static_cast<std::size_t>(nchans), 0);
  std::vector<double> link_free;  // per-node egress occupancy
  std::vector<std::vector<AccessRec>> recs(p.buf_names.size());
  std::set<std::pair<int, int>> attached;  // (tid, window): attach paid once

  AnalyzeResult out;
  std::set<std::string> race_keys;

  auto link_slot = [&link_free](int node) -> double& {
    if (static_cast<std::size_t>(node) >= link_free.size()) {
      link_free.resize(static_cast<std::size_t>(node) + 1, 0.0);
    }
    return link_free[static_cast<std::size_t>(node)];
  };

  auto record_access = [&](int tid, const mc::Op& op) {
    auto& rv = recs[static_cast<std::size_t>(op.obj)];
    bool is_w = op.kind == mc::OpKind::write;
    const auto& vc = th[static_cast<std::size_t>(tid)].vc;
    for (const AccessRec& r : rv) {
      bool overlap = r.lo < op.b && op.a < r.hi;
      if (!overlap || (!r.write && !is_w) || r.tid == tid) continue;
      if (vc[static_cast<std::size_t>(r.tid)] >= r.epoch) continue;
      std::string key = p.buf_names[static_cast<std::size_t>(op.obj)] + "|" +
                        r.label + "|" + op.label;
      if (race_keys.insert(key).second) {
        out.races.push_back(
            Race{p.buf_names[static_cast<std::size_t>(op.obj)],
                 p.threads[static_cast<std::size_t>(r.tid)].name, r.label,
                 p.threads[static_cast<std::size_t>(tid)].name, op.label});
      }
    }
    rv.push_back(AccessRec{tid, op.a, op.b, is_w,
                           vc[static_cast<std::size_t>(tid)], op.label});
  };

  auto release_var = [&](VState& vs, TState& ts, int tid) {
    Rel r;
    r.val = vs.v;
    r.t = vs.t;
    r.f = vs.f;
    r.vc = vs.vc;
    r.rel_tid = tid;
    r.rel_epoch = ts.vc[static_cast<std::size_t>(tid)];
    vs.hist.push_back(std::move(r));
  };

  auto guard_ok = [](const mc::Op& op, std::uint64_t val) {
    switch (op.kind) {
      case mc::OpKind::await_eq:
        return val == op.a;
      case mc::OpKind::await_ne:
        return val != op.a;
      default:  // await_ge
        return val >= op.a;
    }
  };

  // Earliest state of op.obj this await can complete against. States are
  // "init" (-1) and "after release k". A state is admissible only if no
  // *later* release already happens-before the awaiting thread (you cannot
  // observe a value you provably know was overwritten). Returns the release
  // index, or -2 when no admissible state satisfies the guard (blocked).
  auto await_pick = [&](const TState& ts, const mc::Op& op) -> int {
    const VState& vs = vars[static_cast<std::size_t>(op.obj)];
    int m = -1;
    for (int j = static_cast<int>(vs.hist.size()) - 1; j >= 0; --j) {
      const Rel& r = vs.hist[static_cast<std::size_t>(j)];
      if (ts.vc[static_cast<std::size_t>(r.rel_tid)] >= r.rel_epoch) {
        m = j;
        break;
      }
    }
    for (int k = m; k < static_cast<int>(vs.hist.size()); ++k) {
      std::uint64_t val =
          k < 0 ? p.var_init[static_cast<std::size_t>(op.obj)]
                : vs.hist[static_cast<std::size_t>(k)].val;
      if (guard_ok(op, val)) return k;
    }
    return -2;
  };

  // --- canonical ASAP schedule ---------------------------------------------
  const std::size_t max_steps = p.total_ops() + 1;
  for (std::size_t step = 0; step < max_steps * 2; ++step) {
    int best = -1;
    double best_start = 0.0;
    bool best_blocking = false;
    for (int tid = 0; tid < nthreads; ++tid) {
      auto& ts = th[static_cast<std::size_t>(tid)];
      const auto& ops = p.threads[static_cast<std::size_t>(tid)].ops;
      if (ts.pc >= ops.size()) continue;
      const mc::Op& op = ops[ts.pc];
      double start = ts.t;
      bool enabled = true;
      bool is_blocking = mc::blocking(op.kind);
      switch (op.kind) {
        case mc::OpKind::await_eq:
        case mc::OpKind::await_ne:
        case mc::OpKind::await_ge: {
          int k = await_pick(ts, op);
          enabled = k != -2;
          if (enabled && k >= 0) {
            start = std::max(
                start, vars[static_cast<std::size_t>(op.obj)]
                           .hist[static_cast<std::size_t>(k)]
                           .t);
          }
          break;
        }
        case mc::OpKind::wait_dec:
          enabled = vars[static_cast<std::size_t>(op.obj)].v >= op.a;
          if (enabled) {
            start = std::max(start, vars[static_cast<std::size_t>(op.obj)].t);
          }
          break;
        case mc::OpKind::recv:
          enabled = !chans[static_cast<std::size_t>(op.obj)].empty();
          if (enabled) {
            start = std::max(start,
                             chans[static_cast<std::size_t>(op.obj)].front()
                                 .deliver);
          }
          break;
        default:
          break;
      }
      if (!enabled) continue;
      if (best < 0 || start < best_start ||
          (start == best_start && is_blocking && !best_blocking)) {
        best = tid;
        best_start = start;
        best_blocking = is_blocking;
      }
    }
    if (best < 0) break;

    auto& ts = th[static_cast<std::size_t>(best)];
    const auto& ops = p.threads[static_cast<std::size_t>(best)].ops;
    const mc::Op& op = ops[ts.pc];
    const ThreadInfo& ti = tinfo[static_cast<std::size_t>(best)];

    switch (op.kind) {
      case mc::OpKind::set:
      case mc::OpKind::add: {
        auto& vs = vars[static_cast<std::size_t>(op.obj)];
        int w = win_of_pub[static_cast<std::size_t>(op.obj)];
        if (op.kind == mc::OpKind::set) {
          if (w >= 0 && op.a != 0 &&
              p.windows[static_cast<std::size_t>(w)].owner == best) {
            ts.t += rate(Atom::map_publish);
            ts.f.bump(Atom::map_publish);
          }
          vs.v = op.a;
        } else {
          vs.v += op.a;
        }
        vs.t = ts.t + rate(Atom::flag_set);
        vs.f = ts.f;
        vs.f.bump(Atom::flag_set);
        join_into(vs.vc, ts.vc);
        release_var(vs, ts, best);
        ++ts.vc[static_cast<std::size_t>(best)];
        break;
      }
      case mc::OpKind::await_eq:
      case mc::OpKind::await_ne:
      case mc::OpKind::await_ge:
      case mc::OpKind::wait_dec: {
        auto& vs = vars[static_cast<std::size_t>(op.obj)];
        int pick = op.kind == mc::OpKind::wait_dec ? -1 : await_pick(ts, op);
        if (op.kind == mc::OpKind::wait_dec) {
          if (vs.t > ts.t) ts.f = vs.f;
        } else if (pick >= 0) {
          const Rel& r = vs.hist[static_cast<std::size_t>(pick)];
          if (r.t > ts.t) ts.f = r.f;
        }
        ts.t = best_start + rate(Atom::flag_poll);
        ts.f.bump(Atom::flag_poll);
        int w = win_of_pub[static_cast<std::size_t>(op.obj)];
        if (w >= 0 && p.windows[static_cast<std::size_t>(w)].owner != best &&
            attached.insert({best, w}).second) {
          ts.t += rate(Atom::map_attach);
          ts.f.bump(Atom::map_attach);
        }
        if (op.kind == mc::OpKind::wait_dec) {
          join_into(ts.vc, vs.vc);
          ts.t += rate(Atom::lapi_call);
          ts.f.bump(Atom::lapi_call);
          vs.v -= op.a;
          vs.t = ts.t + rate(Atom::flag_set);
          vs.f = ts.f;
          join_into(vs.vc, ts.vc);
          release_var(vs, ts, best);
          ++ts.vc[static_cast<std::size_t>(best)];
        } else if (pick >= 0) {
          join_into(ts.vc, vs.hist[static_cast<std::size_t>(pick)].vc);
        }
        break;
      }
      case mc::OpKind::write:
      case mc::OpKind::read: {
        record_access(best, op);
        const std::string& bn =
            p.buf_names[static_cast<std::size_t>(op.obj)];
        double bytes =
            static_cast<double>(op.b - op.a) * plan.unit_of(bn);
        int w = win_of_buf[static_cast<std::size_t>(op.obj)];
        if (ti.kind != ThreadInfo::Kind::rank) {
          bytes = 0.0;  // wire / handoff time is charged at the send
        } else if (w >= 0) {
          const mc::Window& win = p.windows[static_cast<std::size_t>(w)];
          if (win.owner == best) {
            // The window *is* the owner's user buffer: its writes model
            // production and retract-reuse, not a staging copy.
            bytes = 0.0;
          } else if (op.kind == mc::OpKind::read) {
            int src = tinfo[static_cast<std::size_t>(win.owner)].local;
            bytes *= rates.topo.copy_factor(src, ti.local, /*dirty=*/true);
          }
        }
        if (op.kind == mc::OpKind::write) {
          ts.run_write += bytes;
          if (plan.accumulates(bn)) ts.run_combine = true;
        } else {
          ts.run_read += bytes;
        }
        if (ts.pc == run_last[static_cast<std::size_t>(best)][ts.pc]) {
          double eff = std::max(ts.run_read, ts.run_write);
          bool combine = ts.run_combine && ts.run_read > 0.0;
          if (eff > 0.0) {
            ts.t += rate(Atom::copy_start) +
                    eff * rate(combine ? Atom::combine_bytes
                                       : Atom::copy_bytes);
            ts.f.bump(Atom::copy_start);
            ts.f.bump(combine ? Atom::combine_bytes : Atom::copy_bytes, eff);
            out.bus_bytes += eff;
          }
          ts.run_read = ts.run_write = 0.0;
          ts.run_combine = false;
        }
        break;
      }
      case mc::OpKind::send: {
        auto c = static_cast<std::size_t>(op.obj);
        int rcv = chan_receiver[c];
        bool handoff =
            rcv >= 0 &&
            tinfo[static_cast<std::size_t>(rcv)].kind == ThreadInfo::Kind::adp;
        Msg m;
        if (handoff) {
          ts.t += rate(Atom::o_send);
          ts.f.bump(Atom::o_send);
          m.deliver = ts.t;
          m.f = ts.f;
        } else {
          if (ti.kind == ThreadInfo::Kind::rank) {
            ts.t += rate(Atom::o_send);
            ts.f.bump(Atom::o_send);
          }
          int k = chan_sends[c];
          double payload =
              static_cast<std::size_t>(k) < chan_payload[c].size()
                  ? chan_payload[c][static_cast<std::size_t>(k)]
                  : 0.0;
          double& lf = link_slot(ti.node);
          double inj = std::max(lf, ts.t);
          double busy_end =
              inj + rate(Atom::gap) + payload * rate(Atom::wire_bytes);
          lf = busy_end;
          m.deliver = busy_end + rate(Atom::latency);
          m.f = ts.f;
          m.f.bump(Atom::gap);
          m.f.bump(Atom::wire_bytes, payload);
          m.f.bump(Atom::latency);
          if (ti.kind == ThreadInfo::Kind::adp) ts.t = busy_end;
        }
        m.vc = ts.vc;
        chans[c].push_back(std::move(m));
        ++chan_sends[c];
        ++ts.vc[static_cast<std::size_t>(best)];
        break;
      }
      case mc::OpKind::recv: {
        auto c = static_cast<std::size_t>(op.obj);
        Msg m = std::move(chans[c].front());
        chans[c].pop_front();
        if (m.deliver > ts.t) ts.f = m.f;
        ts.t = best_start + rate(Atom::poll_dispatch);
        ts.f.bump(Atom::poll_dispatch);
        join_into(ts.vc, m.vc);
        break;
      }
    }
    ++ts.pc;
  }

  out.completed = true;
  for (int tid = 0; tid < nthreads; ++tid) {
    const auto& ts = th[static_cast<std::size_t>(tid)];
    const auto& ops = p.threads[static_cast<std::size_t>(tid)].ops;
    if (ts.pc < ops.size()) {
      out.completed = false;
      out.stalls.push_back(
          Stall{p.threads[static_cast<std::size_t>(tid)].name,
                static_cast<int>(ts.pc), ops[ts.pc].label});
    }
    if (ts.t > out.ns) {
      out.ns = ts.t;
      out.critical_path = ts.f;
    }
  }
  return out;
}

}  // namespace srm::sa
