// srm::sa — pass (3): decision-table dominance checking.
//
// A DecisionTable row is *dominated* when, at its own min_bytes, some other
// algorithm from the operation's menu would be decisively cheaper under the
// pass-(1) cost model. check_table() proves every row of a table
// non-dominated for a machine profile; crossovers() computes the analytic
// switch points the same model implies, which sa_verify cross-validates
// against the paper's constants (64 KB bcast protocol switch, 16 KB
// allreduce recursive-doubling cap) and against the empirical tuner's
// artifact (bench/tune --out).
//
// The cost of an algorithm at B bytes is the pass-(1) analysis of its IR
// model on the canonical 2-node x 4-task shape, with a Plan scaling model
// bytes to B. Two algorithms have no IR among the fifteen protocol models
// and are synthesized here: the direct (address-exchange) broadcast, and
// the pipelined allreduce as the documented fill+drain composite
// reduce(B) + one-chunk broadcast tail (core/allreduce.cpp overlaps the
// broadcast of chunk c with the reduction of chunk c+1, so the drain is one
// chunk, not a second full message).
//
// The model is a 2-node shape and the builtin tables are tuned for larger
// machines, so dominance uses a deliberate slack (kSlackRel / kSlackAbs): a
// row only fails when the chosen algorithm is decisively worse than an
// alternative, not when two algorithms trade within model error.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "coll/decision.hpp"
#include "core/config.hpp"
#include "machine/params.hpp"
#include "sa/cost.hpp"

namespace srm::sa {

/// Dominance is Pareto over the axes a decision table actually trades:
/// single-call latency, aggregate node bus traffic
/// (AnalyzeResult::bus_bytes), and robustness at the table's native node
/// count. The chosen algorithm of a row is dominated only when some
/// alternative is decisively faster on the 2-node model
///   chosen_ns > alt_ns * kSlackRel + kSlackAbs,
/// still decisively faster once both costs carry the closed-form LogGP
/// extrapolation to the 8-node tuning scale (root-link bytes and serial
/// rounds — see scale_extra in dominance.cpp), AND the chosen one does not
/// buy a real traffic saving in exchange
///   chosen_bus >= alt_bus * kBusSave.
/// The bus axis is what justifies the single-copy rows: on a full 16-way
/// node the fair-share memory bus saturates (16 x 550 MB/s >> 4 GB/s on
/// the SP), so halving total bytes moved wins even where the uncontended
/// 4-task critical path loses. The node-count axis is what justifies the
/// scatter+allgather and recursive-halving rows: a binomial tree pushes
/// log2(N) full copies through the root's link where an exchange stays at
/// ~2B(N-1)/N, invisible in any 2-node comparison.
inline constexpr double kSlackRel = 1.35;
inline constexpr double kSlackAbs = 3000.0;  // ns
inline constexpr double kBusSave = 0.90;     // >=10% traffic saving excuses

/// Cost of one (algorithm, mapped) candidate at @p bytes.
struct AlgoCost {
  coll::Algo algo = coll::Algo::staged;
  bool mapped = false;
  bool feasible = false;  ///< false: decide() would never dispatch this here
  double ns = 0.0;
  double bus_bytes = 0.0;
  Formula formula;
};

/// One dominated row.
struct DominanceIssue {
  coll::CollKind op = coll::CollKind::bcast;
  std::size_t min_bytes = 0;
  coll::Decision chosen;
  coll::Decision better;
  double chosen_ns = 0.0;
  double better_ns = 0.0;
  double chosen_bus = 0.0;
  double better_bus = 0.0;
};

/// One analytic switch point: above @p bytes the winner changes.
struct Crossover {
  coll::CollKind op = coll::CollKind::bcast;
  coll::Decision from;
  coll::Decision to;
  std::size_t bytes = 0;       ///< last byte count where `from` still wins
  bool feasibility = false;    ///< the flip is a feasibility cap, not a
                               ///< cost intersection
};

struct DominanceReport {
  std::vector<DominanceIssue> issues;   ///< empty == table proven clean
  std::vector<Crossover> crossovers;    ///< bcast + allreduce switch points
};

/// The candidate menu of an operation: every (algo, mapped) pair decide()
/// can actually dispatch for it.
std::vector<coll::Decision> algo_menu(coll::CollKind op);

/// Mirror of Communicator::decide()'s sanitize step (without a table).
coll::Decision sanitize(coll::CollKind op, coll::Decision d,
                        std::size_t bytes, const SrmConfig& cfg);

/// Evaluate one candidate at @p bytes. Infeasible candidates (the sanitize
/// step would reroute them) come back with feasible == false.
AlgoCost algo_cost(coll::CollKind op, coll::Decision d, std::size_t bytes,
                   const SrmConfig& cfg,
                   const machine::MachineParams& mp);

/// Prove every row of @p t non-dominated at its min_bytes and compute the
/// analytic crossovers for bcast and allreduce.
DominanceReport check_table(const coll::DecisionTable& t,
                            const SrmConfig& cfg,
                            const machine::MachineParams& mp);

/// Analytic switch points for one operation on a x2 grid from 64 B to 4 MB,
/// feasibility caps reported exactly, cost intersections refined by
/// bisection to the last byte count where the previous winner still wins.
std::vector<Crossover> crossovers(coll::CollKind op,
                                  const SrmConfig& cfg,
                                  const machine::MachineParams& mp);

std::string to_string(const DominanceIssue& i);
std::string to_string(const Crossover& c);

}  // namespace srm::sa
