#include "sa/lint.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "machine/params.hpp"
#include "sa/cost.hpp"

namespace srm::sa {
namespace {

using mc::Op;
using mc::OpKind;
using mc::Program;
using mc::Thread;

bool is_await(OpKind k) {
  return k == OpKind::await_eq || k == OpKind::await_ne ||
         k == OpKind::await_ge;
}

bool touches_var(OpKind k) {
  return k == OpKind::set || k == OpKind::add || is_await(k) ||
         k == OpKind::wait_dec;
}

bool writes_var(OpKind k) {
  return k == OpKind::set || k == OpKind::add || k == OpKind::wait_dec;
}

struct Linter {
  const Program& p;
  std::vector<Diag> out;

  void diag(const std::string& rule, int tid, std::size_t idx,
            const std::string& msg) {
    const Thread& t = p.threads[static_cast<std::size_t>(tid)];
    out.push_back(Diag{rule, t.name, static_cast<int>(idx),
                       idx < t.ops.size() ? t.ops[idx].label : std::string(),
                       msg});
  }

  bool guard_holds(const Op& op, std::uint64_t v) const {
    switch (op.kind) {
      case OpKind::await_eq: return v == op.a;
      case OpKind::await_ne: return v != op.a;
      case OpKind::await_ge:
      case OpKind::wait_dec: return v >= op.a;
      default: return true;
    }
  }

  // --- R1: await guards no reachable value can satisfy ----------------------
  void r1() {
    for (std::size_t tid = 0; tid < p.threads.size(); ++tid) {
      const auto& ops = p.threads[tid].ops;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op& op = ops[i];
        if (!is_await(op.kind)) continue;
        auto v = static_cast<std::size_t>(op.obj);
        bool other_writer = false;
        for (std::size_t t2 = 0; t2 < p.threads.size(); ++t2) {
          if (t2 == tid) continue;
          for (const Op& o : p.threads[t2].ops) {
            if (writes_var(o.kind) && static_cast<std::size_t>(o.obj) == v) {
              other_writer = true;
              break;
            }
          }
          if (other_writer) break;
        }
        if (!other_writer) {
          // Deterministic: fold this thread's own updates up to the await.
          std::uint64_t val = p.var_init[v];
          for (std::size_t j = 0; j < i; ++j) {
            const Op& o = ops[j];
            if (static_cast<std::size_t>(o.obj) != v) continue;
            if (o.kind == OpKind::set) val = o.a;
            else if (o.kind == OpKind::add) val += o.a;
            else if (o.kind == OpKind::wait_dec) val = val >= o.a ? val - o.a
                                                                  : val;
          }
          if (!guard_holds(op, val)) {
            std::ostringstream m;
            m << "guard can never hold: no other thread writes '"
              << p.var_names[v] << "' and its value here is " << val
              << "; this and every later op of the thread is dead";
            diag("R1", static_cast<int>(tid), i, m.str());
          }
          continue;
        }
        if (op.kind == OpKind::await_ne) continue;
        // Reachable upper bound: max of init and every set value, plus the
        // sum of every add (wait_dec only lowers it).
        std::uint64_t ub = p.var_init[v];
        std::uint64_t adds = 0;
        for (const Thread& t : p.threads) {
          for (const Op& o : t.ops) {
            if (static_cast<std::size_t>(o.obj) != v) continue;
            if (o.kind == OpKind::set) ub = std::max(ub, o.a);
            else if (o.kind == OpKind::add) adds += o.a;
          }
        }
        ub += adds;
        if (op.a > ub) {
          std::ostringstream m;
          m << "guard can never hold: '" << p.var_names[v]
            << "' is bounded above by " << ub << " < " << op.a
            << "; this and every later op of the thread is dead";
          diag("R1", static_cast<int>(tid), i, m.str());
        }
      }
    }
  }

  // --- R2: wait_dec demand exceeds total credit supply ----------------------
  void r2() {
    for (std::size_t v = 0; v < p.var_names.size(); ++v) {
      std::uint64_t dec = 0, adds = 0;
      bool has_set = false;
      int first_tid = -1;
      std::size_t first_idx = 0;
      for (std::size_t tid = 0; tid < p.threads.size(); ++tid) {
        const auto& ops = p.threads[tid].ops;
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const Op& o = ops[i];
          if (static_cast<std::size_t>(o.obj) != v || !touches_var(o.kind)) {
            continue;
          }
          if (o.kind == OpKind::set) has_set = true;
          else if (o.kind == OpKind::add) adds += o.a;
          else if (o.kind == OpKind::wait_dec) {
            dec += o.a;
            if (first_tid < 0) {
              first_tid = static_cast<int>(tid);
              first_idx = i;
            }
          }
        }
      }
      if (has_set || first_tid < 0) continue;  // resets defeat flow counting
      std::uint64_t supply = p.var_init[v] + adds;
      if (dec > supply) {
        std::ostringstream m;
        m << "counter underflow: wait_dec demand " << dec << " on '"
          << p.var_names[v] << "' exceeds supply " << supply
          << " (init + all adds); some waiter stalls forever";
        diag("R2", first_tid, first_idx, m.str());
      }
    }
  }

  // --- R3: send/recv arity mismatch per channel -----------------------------
  void r3() {
    for (std::size_t c = 0; c < p.chan_names.size(); ++c) {
      int sends = 0, recvs = 0;
      int tid = -1;
      std::size_t idx = 0;
      for (std::size_t t = 0; t < p.threads.size(); ++t) {
        const auto& ops = p.threads[t].ops;
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const Op& o = ops[i];
          if (static_cast<std::size_t>(o.obj) != c) continue;
          if (o.kind == OpKind::send) {
            ++sends;
            if (tid < 0) { tid = static_cast<int>(t); idx = i; }
          } else if (o.kind == OpKind::recv) {
            ++recvs;
            if (tid < 0) { tid = static_cast<int>(t); idx = i; }
          }
        }
      }
      if (sends != recvs && tid >= 0) {
        std::ostringstream m;
        m << "channel '" << p.chan_names[c] << "' has " << sends
          << " send(s) but " << recvs << " recv(s): "
          << (sends < recvs ? "a recv must starve" : "a message is orphaned");
        diag("R3", tid, idx, m.str());
      }
    }
  }

  // --- R4: window publish/attach/detach/retract discipline ------------------
  void r4() {
    for (const mc::Window& w : p.windows) {
      auto wbuf = static_cast<std::size_t>(w.buf);
      auto pubv = static_cast<std::size_t>(w.pub_var);
      auto donev = static_cast<std::size_t>(w.done_var);
      // (a) + (b): non-owner readers.
      for (std::size_t tid = 0; tid < p.threads.size(); ++tid) {
        if (static_cast<int>(tid) == w.owner) continue;
        const auto& ops = p.threads[tid].ops;
        bool attached = false;
        std::size_t last_read = 0;
        bool reads = false;
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const Op& o = ops[i];
          if (is_await(o.kind) && static_cast<std::size_t>(o.obj) == pubv) {
            attached = true;
          }
          if (o.kind == OpKind::read &&
              static_cast<std::size_t>(o.obj) == wbuf) {
            reads = true;
            last_read = i;
            if (!attached) {
              diag("R4", static_cast<int>(tid), i,
                   "window '" + p.buf_names[wbuf] +
                       "' read before any await on its publish flag '" +
                       p.var_names[pubv] + "' (attach-before-publish)");
              attached = true;  // one diagnostic per thread is enough
            }
          }
        }
        if (!reads) continue;
        bool detaches = false;
        for (std::size_t i = last_read + 1; i < ops.size(); ++i) {
          const Op& o = ops[i];
          if (static_cast<std::size_t>(o.obj) != donev) continue;
          if (o.kind == OpKind::add ||
              (o.kind == OpKind::set && o.a != 0)) {
            detaches = true;
            break;
          }
        }
        if (!detaches) {
          diag("R4", static_cast<int>(tid), last_read,
               "window '" + p.buf_names[wbuf] +
                   "' reader never bumps detach counter '" +
                   p.var_names[donev] + "' after its last read");
        }
      }
      // (c) + (d): the owner.
      const auto& ops = p.threads[static_cast<std::size_t>(w.owner)].ops;
      bool owner_writes = false;
      for (const Op& o : ops) {
        if (o.kind == OpKind::write &&
            static_cast<std::size_t>(o.obj) == wbuf) {
          owner_writes = true;
          break;
        }
      }
      bool has_reader = false;
      for (std::size_t tid = 0; tid < p.threads.size(); ++tid) {
        if (static_cast<int>(tid) == w.owner) continue;
        for (const Op& o : p.threads[tid].ops) {
          if (o.kind == OpKind::read &&
              static_cast<std::size_t>(o.obj) == wbuf) {
            has_reader = true;
            break;
          }
        }
        if (has_reader) break;
      }
      bool published = false;
      bool wrote = false;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op& o = ops[i];
        if (o.kind == OpKind::write &&
            static_cast<std::size_t>(o.obj) == wbuf) {
          // A publish nobody attaches to guards nothing — reuse is legal.
          if (published && has_reader) {
            diag("R4", w.owner, i,
                 "window '" + p.buf_names[wbuf] +
                     "' overwritten while published: no wait on detach "
                     "counter '" + p.var_names[donev] +
                     "' since the publish (reuse-before-retract)");
            published = false;
          }
          wrote = true;
        } else if (o.kind == OpKind::set &&
                   static_cast<std::size_t>(o.obj) == pubv && o.a != 0) {
          if (owner_writes && !wrote) {
            diag("R4", w.owner, i,
                 "window '" + p.buf_names[wbuf] +
                     "' published before the owner wrote it "
                     "(publish-before-write)");
          }
          published = true;
          wrote = false;
        } else if ((o.kind == OpKind::await_ge ||
                    o.kind == OpKind::wait_dec) &&
                   static_cast<std::size_t>(o.obj) == donev) {
          published = false;  // detaches collected: the window is retracted
        }
      }
    }
  }

  // --- R5: signal before deposit --------------------------------------------
  void r5() {
    for (std::size_t tid = 0; tid < p.threads.size(); ++tid) {
      const auto& ops = p.threads[tid].ops;
      std::set<int> bumped;
      for (const Op& o : ops) {
        if (o.kind == OpKind::add || (o.kind == OpKind::set && o.a != 0)) {
          bumped.insert(o.obj);
        }
      }
      for (int v : bumped) {
        // Aggregate the consumers' read sets: every buffer some other thread
        // reads *directly after* a blocking op on v (before its next
        // blocking op of any kind). The narrow window separates deposit
        // signals from credit returns — a credit waiter's following reads
        // are of its own source, not of anything the bumper deposited.
        std::set<int> consumed;
        for (std::size_t t2 = 0; t2 < p.threads.size(); ++t2) {
          if (t2 == tid) continue;
          const auto& cops = p.threads[t2].ops;
          bool open = false;
          for (const Op& o : cops) {
            if (mc::blocking(o.kind)) {
              open = o.kind != OpKind::recv && o.obj == v;
              continue;
            }
            if (open && o.kind == OpKind::read) consumed.insert(o.obj);
          }
        }
        if (consumed.empty()) continue;
        bool writes_some = false;
        for (const Op& o : ops) {
          if (o.kind == OpKind::write && consumed.count(o.obj)) {
            writes_some = true;
            break;
          }
        }
        if (!writes_some) continue;  // the deposits come from elsewhere
        std::uint64_t bumps = 0, writes = 0;
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const Op& o = ops[i];
          if (o.kind == OpKind::write && consumed.count(o.obj)) ++writes;
          if ((o.kind == OpKind::add ||
               (o.kind == OpKind::set && o.a != 0)) &&
              o.obj == v) {
            ++bumps;
            if (writes < bumps) {
              std::ostringstream m;
              m << "signal before deposit: bump #" << bumps << " of '"
                << p.var_names[static_cast<std::size_t>(v)]
                << "' is preceded by only " << writes
                << " write(s) of the buffers its consumers read";
              diag("R5", static_cast<int>(tid), i, m.str());
              break;
            }
          }
        }
      }
    }
  }

  // --- R6: flag generation overwritten without a recycle gate ---------------
  void r6() {
    std::set<int> pub_vars;
    for (const mc::Window& w : p.windows) pub_vars.insert(w.pub_var);
    for (std::size_t tid = 0; tid < p.threads.size(); ++tid) {
      const auto& ops = p.threads[tid].ops;
      // var -> index of the last nonzero set not yet followed by a blocking
      // read of the var.
      std::vector<int> armed(p.var_names.size(), -1);
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op& o = ops[i];
        if (!touches_var(o.kind)) continue;
        auto v = static_cast<std::size_t>(o.obj);
        if (o.kind == OpKind::set && o.a != 0 && !pub_vars.count(o.obj)) {
          if (armed[v] >= 0) {
            diag("R6", static_cast<int>(tid), i,
                 "flag '" + p.var_names[v] +
                     "' set again with no blocking read of it since '" +
                     ops[static_cast<std::size_t>(armed[v])].label +
                     "': the previous generation can be lost");
          }
          armed[v] = static_cast<int>(i);
        } else if (mc::blocking(o.kind)) {
          armed[v] = -1;
        }
      }
    }
  }

  // --- R7: origin source buffer reused without waiting on the adapter -------
  void r7() {
    // Handoff channels: the receiving thread is an adapter ("adp*"). Record
    // which buffer the adapter reads after the recv (the origin's source)
    // and which counters it bumps afterwards (origin-completion counters).
    for (std::size_t c = 0; c < p.chan_names.size(); ++c) {
      int adp = -1;
      for (std::size_t t = 0; t < p.threads.size(); ++t) {
        if (p.threads[t].name.rfind("adp", 0) != 0) continue;
        for (const Op& o : p.threads[t].ops) {
          if (o.kind == OpKind::recv && static_cast<std::size_t>(o.obj) == c) {
            adp = static_cast<int>(t);
            break;
          }
        }
        if (adp >= 0) break;
      }
      if (adp < 0) continue;
      const auto& aops = p.threads[static_cast<std::size_t>(adp)].ops;
      int src_buf = -1;
      std::set<int> org_vars;
      for (std::size_t i = 0; i < aops.size(); ++i) {
        if (aops[i].kind != OpKind::recv ||
            static_cast<std::size_t>(aops[i].obj) != c) {
          continue;
        }
        bool seen_read = false;
        for (std::size_t j = i + 1; j < aops.size(); ++j) {
          if (aops[j].kind == OpKind::recv) break;
          if (aops[j].kind == OpKind::read) {
            if (src_buf < 0) src_buf = aops[j].obj;
            seen_read = true;
          }
          if (seen_read && aops[j].kind == OpKind::add) {
            org_vars.insert(aops[j].obj);
          }
        }
      }
      if (src_buf < 0 || org_vars.empty()) continue;
      // Every sender reusing the source buffer after a send must first wait
      // on one of the adapter's origin counters.
      for (std::size_t t = 0; t < p.threads.size(); ++t) {
        const auto& ops = p.threads[t].ops;
        for (std::size_t i = 0; i < ops.size(); ++i) {
          if (ops[i].kind != OpKind::send ||
              static_cast<std::size_t>(ops[i].obj) != c) {
            continue;
          }
          for (std::size_t j = i + 1; j < ops.size(); ++j) {
            const Op& o = ops[j];
            if ((o.kind == OpKind::wait_dec || o.kind == OpKind::await_ge) &&
                org_vars.count(o.obj)) {
              break;  // origin completion collected before any reuse
            }
            if (o.kind == OpKind::write && o.obj == src_buf) {
              diag("R7", static_cast<int>(t), j,
                   "source buffer '" +
                       p.buf_names[static_cast<std::size_t>(src_buf)] +
                       "' overwritten after 'send " + p.chan_names[c] +
                       "' with no wait on the adapter's origin counter: "
                       "the put may still be reading it");
              break;
            }
          }
        }
      }
    }
  }

  // --- R8: canonical-execution residue --------------------------------------
  void r8() {
    AnalyzeResult res =
        analyze(p, Plan{}, CostRates::from(machine::MachineParams::ibm_sp()));
    for (const Stall& s : res.stalls) {
      out.push_back(Diag{"R8-deadlock", s.thread, s.op_index, s.label,
                         "thread wedged on the canonical schedule: '" +
                             s.label + "' never becomes enabled"});
    }
    for (const Race& r : res.races) {
      out.push_back(
          Diag{"R8-race", r.thread_b, -1, r.label_b,
               "race on '" + r.buf + "': '" + r.label_a + "' (" + r.thread_a +
                   ") unordered with '" + r.label_b + "' (" + r.thread_b +
                   ") on the canonical schedule"});
    }
  }
};

}  // namespace

std::vector<Diag> lint(const mc::Program& p) {
  Linter l{p, {}};
  l.r1();
  l.r2();
  l.r3();
  l.r4();
  l.r5();
  l.r6();
  l.r7();
  l.r8();
  return l.out;
}

std::vector<std::string> fired_rules(const std::vector<Diag>& diags) {
  std::set<std::string> fams;
  for (const Diag& d : diags) {
    fams.insert(d.rule.substr(0, 2));
  }
  return std::vector<std::string>(fams.begin(), fams.end());
}

}  // namespace srm::sa
