// srm::sa — static cost & protocol-lint analyzer over the mc IR.
//
// This header is pass (1) of the analyzer: symbolic critical-path
// extraction. A protocol Program is *abstractly executed* once, on the
// canonical ASAP schedule (every thread runs as soon as its next guard is
// satisfiable; ties resolve to the blocked thread, then the lowest thread
// index). Unlike the model checker, no interleavings are enumerated and no
// state space is built: one deterministic pass yields
//
//   * a completion time per thread under a machine::MachineParams profile,
//   * a closed-form cost Formula for the finishing thread's critical path —
//     a linear expression over the model's cost atoms (LogGP terms, copy /
//     combine bytes, flag and LAPI software costs), printable as a formula
//     and evaluable against any profile with the same structure,
//   * the happens-before instrumentation of that schedule (the same vector
//     clocks mc.cpp maintains), which the lint pass reuses for a sound
//     static race/deadlock check on the canonical execution.
//
// The mc IR moves one model byte per local task; a Plan scales model bytes
// to real protocol bytes per buffer (whole-message protocols carry
// bytes/(chunks*tasks) per model byte, slice protocols carry a per-rank
// block) and marks which destination buffers accumulate (reduce combines)
// rather than copy.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "machine/params.hpp"
#include "mc/ir.hpp"

namespace srm::sa {

/// The cost atoms of the machine model. The first group counts events, the
/// *_bytes atoms count (effective) bytes; a Formula is a linear combination
/// of all of them.
enum class Atom : int {
  copy_start,     ///< fixed cost to start a memcpy
  copy_bytes,     ///< bytes through the single-stream copy path
  combine_bytes,  ///< operand bytes through the reduction combine path
  flag_set,       ///< shared-flag store -> spinning-reader visibility
  flag_poll,      ///< one poll of a shared flag / counter
  lapi_call,      ///< LAPI library call entry (put / Waitcntr)
  poll_dispatch,  ///< dispatcher processing one arrived message
  o_send,         ///< LogGP o: CPU cost to initiate a message
  gap,            ///< LogGP g: per-message NIC gap
  latency,        ///< LogGP L: wire + switch latency
  wire_bytes,     ///< LogGP G: bytes serialized onto the link
  map_publish,    ///< export a user-buffer window (single-copy)
  map_attach,     ///< attach to a published window
};
inline constexpr int kAtomCount = 13;
const char* atom_name(Atom a);

/// Per-atom evaluation rates (ns per event, ns per byte), extracted from a
/// MachineParams profile. Kept as plain doubles so formulas evaluate with
/// one dot product.
struct CostRates {
  std::array<double, kAtomCount> ns{};  // event atoms: ns; byte atoms: ns/B
  machine::TopologyParams topo;         // window-read distance factors
  static CostRates from(const machine::MachineParams& p);
};

/// A closed-form cost expression: count (or byte total) per atom. Linear in
/// the message size within one chunk regime, so two evaluations pin the
/// slope and intercept exactly.
struct Formula {
  std::array<double, kAtomCount> n{};

  double operator[](Atom a) const { return n[static_cast<std::size_t>(a)]; }
  void bump(Atom a, double k = 1.0) { n[static_cast<std::size_t>(a)] += k; }
  void accumulate(const Formula& o);
  double eval(const CostRates& r) const;
  /// "2 o_send + 2 gap + 2 L + 131072 B_wire + ..." — zero terms omitted.
  std::string to_string() const;
};

/// Scales IR model bytes to protocol bytes and classifies buffers.
struct Plan {
  /// Real bytes represented by one model byte (default for every buffer).
  double default_unit = 1.0;
  /// Buffer-name substring -> unit override, first match wins (e.g. the
  /// zoo exchange landing buffers carry half-blocks).
  std::vector<std::pair<std::string, double>> unit_overrides;
  /// Written buffers whose name contains one of these substrings take the
  /// reduction-combine rate instead of the copy rate.
  std::vector<std::string> accumulators;

  double unit_of(const std::string& buf_name) const;
  bool accumulates(const std::string& buf_name) const;
};

/// One thread wedged at a guard in the canonical execution (static
/// deadlock residue).
struct Stall {
  std::string thread;
  int op_index = 0;
  std::string label;
};

/// A happens-before race found on the canonical schedule. Sound: the
/// canonical execution is a real interleaving, so any race on it is a race
/// of the protocol.
struct Race {
  std::string buf;
  std::string thread_a, label_a;
  std::string thread_b, label_b;
};

struct AnalyzeResult {
  bool completed = false;        ///< every thread ran to the end
  double ns = 0.0;               ///< completion time of the last thread
  Formula critical_path;         ///< formula carried by that thread
  /// Aggregate node memory traffic: every rank thread's copy/combine bytes
  /// summed across ALL threads (the critical path sees only one thread's).
  /// Same per-stream accounting basis as the time model. This is the
  /// second dominance axis: on a full node the fair-share bus saturates
  /// long before the 4-task model's critical path does, so an algorithm
  /// that moves fewer total bytes can merit a slower single-call path.
  double bus_bytes = 0.0;
  std::vector<Stall> stalls;     ///< non-empty iff !completed
  std::vector<Race> races;
};

/// Abstractly execute @p p once on the canonical ASAP schedule.
AnalyzeResult analyze(const mc::Program& p, const Plan& plan,
                      const CostRates& rates);

}  // namespace srm::sa
