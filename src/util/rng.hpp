// Deterministic pseudo-random number generation for workloads and tests.
//
// The simulator itself never consumes randomness (results must be bitwise
// reproducible); RNG is used only to fill payload buffers and to generate
// test schedules. SplitMix64 is tiny, fast, and has a well-understood
// distribution.
#pragma once

#include <cstdint>

namespace srm::util {

/// SplitMix64 generator. Deterministic across platforms.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

 private:
  std::uint64_t state_;
};

}  // namespace srm::util
