// Cache-line and alignment helpers.
//
// The paper insists that every shared-memory synchronization flag live on its
// own cache line ("we ensure that each flag is located on a different cache
// line", §2.2); the simulated shared segment honours that layout so the model
// charges realistic false-sharing-free costs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace srm::util {

/// Cache line size assumed by the machine model (POWER3 used 128-byte lines;
/// 128 is also safe on current x86 prefetch pairs).
inline constexpr std::size_t kCacheLine = 128;

/// Round @p n up to a multiple of @p align (align must be a power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

/// True if @p n is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// floor(log2(n)) for n >= 1.
constexpr int log2_floor(std::uint64_t n) {
  int r = 0;
  while (n >>= 1) ++r;
  return r;
}

/// ceil(log2(n)) for n >= 1.
constexpr int log2_ceil(std::uint64_t n) {
  return log2_floor(n) + (is_pow2(n) ? 0 : 1);
}

}  // namespace srm::util
