// Runtime checking macros used across the SRM codebase.
//
// All checks are active in every build type: simulation correctness depends
// on invariants that are cheap relative to the event-queue machinery, and a
// silently-corrupt simulation is worse than a slow one.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace srm::util {

/// Error thrown when an internal invariant or a user-visible precondition is
/// violated. Carries the failing expression and source location in what().
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace srm::util

/// SRM_CHECK(cond): verify an invariant; throws srm::util::CheckError on
/// failure. Usable in noexcept-free code paths only.
#define SRM_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond))                                                     \
      ::srm::util::check_failed(#cond, __FILE__, __LINE__, "");      \
  } while (0)

/// SRM_CHECK_MSG(cond, streamed-message): as SRM_CHECK with extra context.
#define SRM_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream os_;                                        \
      os_ << msg;                                                    \
      ::srm::util::check_failed(#cond, __FILE__, __LINE__, os_.str()); \
    }                                                                \
  } while (0)
