// Small text-formatting helpers for benchmark tables and logs.
#pragma once

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

namespace srm::util {

/// Render a byte count like the paper's axes: "8", "1K", "64K", "8M".
inline std::string human_bytes(std::uint64_t n) {
  auto whole = [](std::uint64_t v, std::uint64_t unit) { return v % unit == 0; };
  std::ostringstream os;
  if (n >= (1ull << 20) && whole(n, 1ull << 20)) {
    os << (n >> 20) << "M";
  } else if (n >= (1ull << 10) && whole(n, 1ull << 10)) {
    os << (n >> 10) << "K";
  } else {
    os << n;
  }
  return os.str();
}

/// Fixed-point rendering of microseconds with sensible precision.
inline std::string fmt_us(double us) {
  std::ostringstream os;
  if (us < 100.0) {
    os << std::fixed << std::setprecision(2) << us;
  } else if (us < 10000.0) {
    os << std::fixed << std::setprecision(1) << us;
  } else {
    os << std::fixed << std::setprecision(0) << us;
  }
  return os.str();
}

}  // namespace srm::util
