// Streaming min/max/mean accumulator for benchmark reporting.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>

#include "util/check.hpp"

namespace srm::util {

/// Accumulates a stream of doubles; O(1) space.
class Stats {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const {
    SRM_CHECK(n_ > 0);
    return sum_ / static_cast<double>(n_);
  }
  double min() const {
    SRM_CHECK(n_ > 0);
    return min_;
  }
  double max() const {
    SRM_CHECK(n_ > 0);
    return max_;
  }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace srm::util
