#include "core/communicator.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/align.hpp"

namespace srm {

namespace {

/// Rebuild @p op's rows over the union of the existing row boundaries and
/// @p extra, recomputing each boundary's inherited decision with
/// @p f(min_bytes, decision&). Boundaries are only added, never removed, so
/// writing the recomputed set back through set() replaces every old row.
template <class F>
void rewrite_rows(coll::DecisionTable& tb, coll::CollKind op,
                  std::initializer_list<std::size_t> extra, F&& f) {
  std::vector<std::size_t> bs{0};
  for (const auto& r : tb.rows(op)) bs.push_back(r.min_bytes);
  bs.insert(bs.end(), extra);
  std::sort(bs.begin(), bs.end());
  bs.erase(std::unique(bs.begin(), bs.end()), bs.end());
  std::vector<coll::DecisionTable::Row> rows;
  rows.reserve(bs.size());
  for (std::size_t b : bs) {
    coll::DecisionTable::Row r{b, tb.decide(op, b)};
    f(b, r.d);
    rows.push_back(r);
  }
  for (const auto& r : rows) tb.set(op, r.min_bytes, r.d);
}

constexpr std::array<coll::CollKind, 8> kAllOps = {
    coll::CollKind::bcast,     coll::CollKind::reduce,
    coll::CollKind::allreduce, coll::CollKind::barrier,
    coll::CollKind::scatter,   coll::CollKind::gather,
    coll::CollKind::allgather, coll::CollKind::reduce_scatter,
};

/// Where a Communicator's table actually came from, for the construction
/// span: which precedence branch won, plus the identifying detail (the
/// artifact path for env, the profile name for builtin).
struct ResolvedTable {
  coll::DecisionTable table;
  const char* source = "builtin";  // "config" | "env" | "builtin"
  std::string detail;
};

/// The table-source precedence of config.hpp: an explicit config table is
/// used verbatim; an SRM_DECISIONS artifact is used verbatim; otherwise the
/// builtin profile table (ibm_sp for unknown profiles) with any legacy
/// crossover knobs that deviate from their defaults re-imposed on top, so
/// code written against the old scattered fields keeps its exact semantics.
ResolvedTable resolve_table(const SrmConfig& cfg,
                            const machine::MachineParams& params) {
  if (!cfg.decisions.empty()) {
    return {cfg.decisions, "config", cfg.decisions.profile};
  }
  if (const char* env = std::getenv("SRM_DECISIONS");
      env != nullptr && env[0] != '\0') {
    return {coll::DecisionTable::load(env), "env", env};
  }
  const coll::DecisionTable* bt = coll::DecisionTable::builtin(params.profile);
  coll::DecisionTable tb = bt != nullptr ? *bt : coll::DecisionTable::ibm_sp();
  const SrmConfig def{};
  if (cfg.internode_tree != def.internode_tree) {
    for (coll::CollKind op : kAllOps) {
      rewrite_rows(tb, op, {}, [&cfg](std::size_t, coll::Decision& d) {
        d.internode = cfg.internode_tree;
      });
    }
  }
  if (cfg.bcast_small_max != def.bcast_small_max) {
    rewrite_rows(tb, coll::CollKind::bcast, {cfg.bcast_small_max + 1},
                 [&cfg](std::size_t b, coll::Decision& d) {
                   d.algo = b <= cfg.bcast_small_max ? coll::Algo::staged
                                                     : coll::Algo::direct;
                 });
  }
  if (cfg.allreduce_rd_max != def.allreduce_rd_max) {
    rewrite_rows(tb, coll::CollKind::allreduce, {cfg.allreduce_rd_max + 1},
                 [&cfg](std::size_t b, coll::Decision& d) {
                   d.algo = b <= cfg.allreduce_rd_max ? coll::Algo::rd
                                                      : coll::Algo::pipeline;
                 });
  }
  if (cfg.single_copy_min != def.single_copy_min) {
    for (coll::CollKind op : kAllOps) {
      rewrite_rows(tb, op, {cfg.single_copy_min},
                   [&cfg](std::size_t b, coll::Decision& d) {
                     d.mapped = b >= cfg.single_copy_min;
                   });
    }
  }
  return {std::move(tb), "builtin",
          bt != nullptr ? params.profile : "ibm_sp"};
}

/// Minimal JSON string escaping for the span args (paths may carry
/// backslashes on exotic setups; quotes are the only realistic hazard).
std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Communicator::NodeState::NodeState(sim::Engine& eng,
                                   const machine::MemoryParams& mp,
                                   const machine::Topology& topo,
                                   const SrmConfig& cfg, bool zoo,
                                   shm::Segment& seg,
                                   const std::string& prefix)
    : nlocal(topo.tasks_per_node()), nnodes(topo.nodes()) {
  auto counter = [&eng, &prefix](const std::string& label) {
    return std::make_unique<lapi::Counter>(eng, prefix + "/" + label);
  };

  // --- SMP broadcast buffers + READY flags (Fig. 3) ---
  for (int b = 0; b < 2; ++b) {
    bc_buf[static_cast<std::size_t>(b)] =
        seg.buffer(prefix + "/bc_buf" + std::to_string(b), cfg.smp_buf_bytes);
    bc_ready[static_cast<std::size_t>(b)] = std::make_unique<shm::FlagArray>(
        eng, mp, nlocal, 0, prefix + "/bc_ready" + std::to_string(b));
  }

  // --- SMP reduce slots + chunk counters ---
  for (int s = 0; s < 2; ++s) {
    auto& slots = red_slot[static_cast<std::size_t>(s)];
    slots.reserve(static_cast<std::size_t>(nlocal));
    for (int l = 0; l < nlocal; ++l) {
      slots.push_back(seg.buffer(
          prefix + "/red_slot" + std::to_string(s) + "_" + std::to_string(l),
          cfg.reduce_chunk));
    }
  }
  red_published = std::make_unique<shm::FlagArray>(eng, mp, nlocal, 0,
                                                   prefix + "/red_published");
  for (int s2 = 0; s2 < 2; ++s2) {
    red_consumed[static_cast<std::size_t>(s2)] =
        std::make_unique<shm::FlagArray>(
            eng, mp, nlocal, 0, prefix + "/red_consumed" + std::to_string(s2));
  }

  // --- SMP barrier flags ---
  bar_flag = std::make_unique<shm::FlagArray>(eng, mp, nlocal, 0,
                                              prefix + "/bar_flag");

  // --- broadcast network state (per link, see header) ---
  bc_land.resize(static_cast<std::size_t>(nnodes));
  bc_arrived.resize(static_cast<std::size_t>(nnodes));
  bc_free.resize(static_cast<std::size_t>(nnodes));
  for (int p = 0; p < nnodes; ++p) {
    for (int s = 0; s < 2; ++s) {
      bc_land[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)] =
          seg.buffer(prefix + "/bc_land" + std::to_string(p) + "_" +
                         std::to_string(s),
                     cfg.smp_buf_bytes);
      std::string link = std::to_string(p) + "_" + std::to_string(s);
      bc_arrived[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)] =
          counter("bc_arrived" + link);
      auto& cr =
          bc_free[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)];
      cr = counter("bc_free" + link);
      cr->set(1);  // both remote landing buffers start free
    }
  }
  bc_addr.assign(static_cast<std::size_t>(nnodes), nullptr);
  bc_addr_arrived.resize(static_cast<std::size_t>(nnodes));
  bc_large_arrived.resize(static_cast<std::size_t>(nnodes));
  for (int p = 0; p < nnodes; ++p) {
    bc_addr_arrived[static_cast<std::size_t>(p)] =
        counter("bc_addr_arrived" + std::to_string(p));
    bc_large_arrived[static_cast<std::size_t>(p)] =
        counter("bc_large_arrived" + std::to_string(p));
  }

  // --- reduce network state ---
  red_land.resize(static_cast<std::size_t>(nnodes));
  red_arrived.resize(static_cast<std::size_t>(nnodes));
  for (int c = 0; c < nnodes; ++c) {
    for (int s = 0; s < 2; ++s) {
      red_land[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)] =
          seg.buffer(prefix + "/red_land" + std::to_string(c) + "_" +
                         std::to_string(s),
                     cfg.reduce_chunk);
    }
    red_arrived[static_cast<std::size_t>(c)] =
        counter("red_arrived" + std::to_string(c));
  }
  red_free = counter("red_free");
  red_free->set(2);  // two landing slots at the parent start free
  for (int s = 0; s < 2; ++s) {
    red_out[static_cast<std::size_t>(s)] = seg.buffer(
        prefix + "/red_out" + std::to_string(s), cfg.reduce_chunk);
  }
  red_out_org = counter("red_out_org");

  // --- allreduce recursive-doubling state ---
  int rounds = nnodes > 1 ? util::log2_ceil(static_cast<unsigned>(nnodes)) : 0;
  ar_buf.resize(static_cast<std::size_t>(rounds));
  ar_arrived.resize(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    for (int p = 0; p < 2; ++p) {
      ar_buf[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)] =
          seg.buffer(prefix + "/ar_buf" + std::to_string(r) + "_" +
                         std::to_string(p),
                     cfg.allreduce_rd_max);
    }
    ar_arrived[static_cast<std::size_t>(r)] =
        counter("ar_arrived" + std::to_string(r));
  }
  for (int p = 0; p < 2; ++p) {
    ar_fold_in[static_cast<std::size_t>(p)] = seg.buffer(
        prefix + "/ar_fold_in" + std::to_string(p), cfg.allreduce_rd_max);
    ar_fold_out[static_cast<std::size_t>(p)] = seg.buffer(
        prefix + "/ar_fold_out" + std::to_string(p), cfg.allreduce_rd_max);
  }
  ar_fold_in_arr = counter("ar_fold_in_arr");
  ar_fold_out_arr = counter("ar_fold_out_arr");

  // --- barrier round counters ---
  bar_round.resize(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    bar_round[static_cast<std::size_t>(r)] =
        counter("bar_round" + std::to_string(r));
  }
  bar_fold_in = counter("bar_fold_in");
  bar_fold_out = counter("bar_fold_out");

  // --- gather staging + counters ---
  for (int s = 0; s < 2; ++s) {
    ga_stage[static_cast<std::size_t>(s)] = seg.buffer(
        prefix + "/ga_stage" + std::to_string(s), cfg.smp_buf_bytes);
    ga_filled[static_cast<std::size_t>(s)] = std::make_unique<shm::SharedFlag>(
        eng, mp, 0, prefix + "/ga_filled" + std::to_string(s));
    ga_freed[static_cast<std::size_t>(s)] = std::make_unique<shm::SharedFlag>(
        eng, mp, 0, prefix + "/ga_freed" + std::to_string(s));
  }
  ga_addr.assign(static_cast<std::size_t>(nnodes), nullptr);
  ga_addr_arr.resize(static_cast<std::size_t>(nnodes));
  ga_done.resize(static_cast<std::size_t>(nnodes));
  for (int p = 0; p < nnodes; ++p) {
    ga_addr_arr[static_cast<std::size_t>(p)] =
        counter("ga_addr_arr" + std::to_string(p));
    ga_done[static_cast<std::size_t>(p)] =
        counter("ga_done" + std::to_string(p));
  }

  // --- algorithm-zoo network state (per peer node) ---
  //
  // Only built when the communicator's decision table can actually dispatch
  // a zoo algorithm: the block is another O(nodes) counters plus two
  // reduce_chunk landing slots per peer on every node, and the paper-table
  // profiles (ibm_sp) never route to it.
  if (zoo) {
    zoo_addr.assign(static_cast<std::size_t>(nnodes), nullptr);
    zoo_addr_arr.resize(static_cast<std::size_t>(nnodes));
    zoo_got.resize(static_cast<std::size_t>(nnodes));
    zoo_land.resize(static_cast<std::size_t>(nnodes));
    zoo_arr.resize(static_cast<std::size_t>(nnodes));
    zoo_free.resize(static_cast<std::size_t>(nnodes));
    for (int p = 0; p < nnodes; ++p) {
      auto pi = static_cast<std::size_t>(p);
      zoo_addr_arr[pi] = counter("zoo_addr_arr" + std::to_string(p));
      zoo_got[pi] = counter("zoo_got" + std::to_string(p));
      for (int s = 0; s < 2; ++s) {
        zoo_land[pi][static_cast<std::size_t>(s)] =
            seg.buffer(prefix + "/zoo_land" + std::to_string(p) + "_" +
                           std::to_string(s),
                       cfg.reduce_chunk);
      }
      zoo_arr[pi] = counter("zoo_arr" + std::to_string(p));
      zoo_free[pi] = counter("zoo_free" + std::to_string(p));
      zoo_free[pi]->set(2);  // both landing slots start free
    }
    zoo_org = counter("zoo_org");
  }

  // --- single-copy cross-mapping windows + mapped-reduce accumulators ---
  map = &seg.object<shm::Mapping>(prefix + "/map", eng, mp, nlocal,
                                  prefix + "/map");
  for (int s = 0; s < 2; ++s) {
    auto& slots = sc_acc[static_cast<std::size_t>(s)];
    slots.reserve(static_cast<std::size_t>(nlocal));
    for (int l = 0; l < nlocal; ++l) {
      slots.push_back(seg.buffer(
          prefix + "/sc_acc" + std::to_string(s) + "_" + std::to_string(l),
          cfg.reduce_chunk));
    }
    sc_cons[static_cast<std::size_t>(s)] = std::make_unique<shm::FlagArray>(
        eng, mp, nlocal, 0, prefix + "/sc_cons" + std::to_string(s));
  }
  sc_pub =
      std::make_unique<shm::FlagArray>(eng, mp, nlocal, 0, prefix + "/sc_pub");
}

Communicator::Communicator(machine::Cluster& cluster, lapi::Fabric& fabric,
                           SrmConfig cfg, std::string name)
    : cluster_(&cluster),
      fabric_(&fabric),
      cfg_(cfg),
      name_(std::move(name)),
      sym_(cluster, coll::sym::Profile{cluster.params().net.o_send,
                                       cfg.bcast_net_chunk,
                                       cfg.internode_tree}) {
  ResolvedTable rt = resolve_table(cfg, cluster.params());
  table_ = std::move(rt.table);
  // Record which precedence branch supplied the table. A mis-set
  // SRM_DECISIONS silently changing every dispatch is otherwise invisible
  // in a trace; this span makes the provenance a first-class artifact.
  std::size_t sid = cluster.obs().span_begin(
      0, "srm.decisions",
      "{\"source\":" + json_str(rt.source) +
          ",\"detail\":" + json_str(rt.detail) +
          ",\"profile\":" + json_str(table_.profile) + "}");
  cluster.obs().span_end(sid);
  SRM_CHECK(cfg_.smp_buf_bytes >= cfg_.bcast_small_max);
  SRM_CHECK(cfg_.reduce_chunk % 8 == 0);
  SRM_CHECK(cfg_.bcast_pipe_chunk > 0 && cfg_.bcast_net_chunk > 0);
  // Only the per-rank scalar bookkeeping is eager; the per-node shared
  // structures and per-link parity vectors wait for the first real op.
  ranks_.resize(static_cast<std::size_t>(cluster.topology().nranks()));
}

void Communicator::ensure_real_state() {
  if (real_ready_) return;
  real_ready_ = true;
  // The zoo block of NodeState is only worth its O(nodes) counters and
  // landing slots if some table row can actually route to a zoo algorithm.
  bool zoo = false;
  for (coll::CollKind op : kAllOps) {
    for (const auto& row : table_.rows(op)) {
      zoo = zoo || row.d.algo == coll::Algo::ring ||
            row.d.algo == coll::Algo::rhalving ||
            row.d.algo == coll::Algo::scatter_ag;
    }
  }
  const auto& topo = cluster_->topology();
  nodes_.reserve(static_cast<std::size_t>(topo.nodes()));
  for (int n = 0; n < topo.nodes(); ++n) {
    auto& node = cluster_->node(n);
    nodes_.push_back(&node.seg.object<NodeState>(
        "srm/" + name_, cluster_->engine(), cluster_->params().mem, topo,
        cfg_, zoo, node.seg, "srm/" + name_));
  }
  for (auto& r : ranks_) {
    r.red_sent.assign(static_cast<std::size_t>(topo.nodes()), 0);
    r.red_recvd.assign(static_cast<std::size_t>(topo.nodes()), 0);
    r.bc_sent.assign(static_cast<std::size_t>(topo.nodes()), 0);
    r.bc_recv.assign(static_cast<std::size_t>(topo.nodes()), 0);
    r.smp_red_base.assign(static_cast<std::size_t>(topo.tasks_per_node()), 0);
    r.map_gen.assign(static_cast<std::size_t>(topo.tasks_per_node()), 0);
    r.sc_base.assign(static_cast<std::size_t>(topo.tasks_per_node()), 0);
    r.zoo_sent.assign(static_cast<std::size_t>(topo.nodes()), 0);
    r.zoo_recvd.assign(static_cast<std::size_t>(topo.nodes()), 0);
  }
}

// ---------------------------------------------------------------------------
// Decision lookup
// ---------------------------------------------------------------------------

coll::Decision Communicator::decide(coll::CollKind op,
                                    std::size_t op_bytes) const {
  coll::Decision d = table_.decide(op, op_bytes);
  switch (op) {
    case coll::CollKind::bcast:
      // The staged path cannot move more than one Fig. 3 buffer per step
      // without the large protocol's pipelining, and the zoo allreduce
      // algorithms do not broadcast.
      if (d.algo == coll::Algo::staged && op_bytes > cfg_.smp_buf_bytes) {
        d.algo = coll::Algo::direct;
      }
      if (d.algo != coll::Algo::staged && d.algo != coll::Algo::direct &&
          d.algo != coll::Algo::scatter_ag) {
        d.algo = coll::Algo::direct;
      }
      break;
    case coll::CollKind::allreduce:
      // Recursive doubling exchanges whole vectors through slots sized
      // allreduce_rd_max and combines them one reduce chunk at a time.
      if (d.algo == coll::Algo::rd &&
          op_bytes > std::min(cfg_.allreduce_rd_max, cfg_.reduce_chunk)) {
        d.algo = coll::Algo::pipeline;
      }
      if (d.algo == coll::Algo::staged || d.algo == coll::Algo::direct ||
          d.algo == coll::Algo::scatter_ag) {
        d.algo = coll::Algo::pipeline;
      }
      break;
    default:
      // Every other operation has one implementation; the row's mapped and
      // internode columns still apply.
      d.algo = coll::Algo::staged;
      break;
  }
  return d;
}

std::string Communicator::v_algo(const machine::TaskCtx& t,
                                 const coll::CallSig& sig) const {
  std::size_t bytes = sig.count * coll::dtype_size(sig.dtype);
  // scatter/gather key their mapped switch on the node block they stage.
  std::size_t key = bytes;
  if (sig.op == coll::CollKind::scatter || sig.op == coll::CollKind::gather) {
    key = bytes * static_cast<std::size_t>(t.nlocal());
  }
  coll::Decision d = decide(sig.op, key);
  std::string algo = coll::algo_name(d.algo);
  // The "+sc" suffix marks calls whose intra-node phases run the mapped
  // single-copy variants; composite ops (allreduce/allgather/...) consult
  // their sub-operations' rows instead, so only the direct consumers of the
  // mapped column report it.
  bool consults_mapped = sig.op == coll::CollKind::bcast ||
                         sig.op == coll::CollKind::reduce ||
                         sig.op == coll::CollKind::scatter ||
                         sig.op == coll::CollKind::gather;
  if (consults_mapped && cfg_.single_copy && d.mapped) algo += "+sc";
  return algo;
}

// ---------------------------------------------------------------------------
// Plane dispatch (coll::Collectives hooks)
// ---------------------------------------------------------------------------

sim::CoTask Communicator::v_bcast(machine::TaskCtx& t, coll::Buf buf,
                                  int root) {
  if (buf.symbolic()) {
    obs::Span span(*t.obs, t.rank, "srm.bcast");
    chk::StageScope stage(t.chk, "srm.bcast");
    rank_state(t).op_seq++;
    sym_used_ = true;
    co_await sym_.bcast(t, buf, root,
                        decide(coll::CollKind::bcast, buf.count * buf.esize()));
  } else {
    if (buf.count != 0) ensure_real_state();
    co_await real_bcast(t, buf.data, buf.count * buf.esize(), root);
  }
}

sim::CoTask Communicator::v_reduce(machine::TaskCtx& t, coll::Buf send,
                                   coll::Buf recv, coll::RedOp op, int root) {
  if (send.symbolic()) {
    obs::Span span(*t.obs, t.rank, "srm.reduce");
    chk::StageScope stage(t.chk, "srm.reduce");
    rank_state(t).op_seq++;
    sym_used_ = true;
    co_await sym_.reduce(
        t, send, recv, op, root,
        decide(coll::CollKind::reduce, send.count * send.esize()));
  } else {
    if (send.count != 0) ensure_real_state();
    co_await real_reduce(t, send.data, recv.data, send.count, send.dtype, op,
                         root);
  }
}

sim::CoTask Communicator::v_allreduce(machine::TaskCtx& t, coll::Buf send,
                                      coll::Buf recv, coll::RedOp op) {
  if (send.symbolic()) {
    obs::Span span(*t.obs, t.rank, "srm.allreduce");
    chk::StageScope stage(t.chk, "srm.allreduce");
    rank_state(t).op_seq++;
    sym_used_ = true;
    co_await sym_.allreduce(
        t, send, recv, op,
        decide(coll::CollKind::allreduce, send.count * send.esize()));
  } else {
    if (send.count != 0) ensure_real_state();
    co_await real_allreduce(t, send.data, recv.data, send.count, send.dtype,
                            op);
  }
}

sim::CoTask Communicator::v_barrier(machine::TaskCtx& t) {
  if (sym_used_ && !real_ready_) {
    obs::Span span(*t.obs, t.rank, "srm.barrier");
    chk::StageScope stage(t.chk, "srm.barrier");
    rank_state(t).op_seq++;
    co_await sym_.barrier(t);
  } else {
    ensure_real_state();
    co_await real_barrier(t);
  }
}

sim::CoTask Communicator::v_scatter(machine::TaskCtx& t, coll::Buf send,
                                    coll::Buf recv, int root) {
  if (recv.symbolic()) {
    obs::Span span(*t.obs, t.rank, "srm.scatter");
    chk::StageScope stage(t.chk, "srm.scatter");
    rank_state(t).op_seq++;
    sym_used_ = true;
    co_await sym_.scatter(t, send, recv, root);
  } else {
    if (recv.count != 0) ensure_real_state();
    co_await real_scatter(t, send.data, recv.data,
                          recv.count * recv.esize(), root);
  }
}

sim::CoTask Communicator::v_gather(machine::TaskCtx& t, coll::Buf send,
                                   coll::Buf recv, int root) {
  if (send.symbolic()) {
    obs::Span span(*t.obs, t.rank, "srm.gather");
    chk::StageScope stage(t.chk, "srm.gather");
    rank_state(t).op_seq++;
    sym_used_ = true;
    co_await sym_.gather(t, send, recv, root);
  } else {
    if (send.count != 0) ensure_real_state();
    co_await real_gather(t, send.data, recv.data,
                         send.count * send.esize(), root);
  }
}

sim::CoTask Communicator::v_allgather(machine::TaskCtx& t, coll::Buf send,
                                      coll::Buf recv) {
  if (send.symbolic()) {
    obs::Span span(*t.obs, t.rank, "srm.allgather");
    chk::StageScope stage(t.chk, "srm.allgather");
    sym_used_ = true;
    co_await sym_.allgather(t, send, recv);
  } else {
    if (send.count != 0) ensure_real_state();
    co_await real_allgather(t, send.data, recv.data,
                            send.count * send.esize());
  }
}

sim::CoTask Communicator::v_reduce_scatter(machine::TaskCtx& t,
                                           coll::Buf send, coll::Buf recv,
                                           coll::RedOp op) {
  if (send.symbolic()) {
    obs::Span span(*t.obs, t.rank, "srm.reduce_scatter");
    chk::StageScope stage(t.chk, "srm.reduce_scatter");
    sym_used_ = true;
    co_await sym_.reduce_scatter(t, send, recv, op);
  } else {
    if (recv.count != 0) ensure_real_state();
    co_await real_reduce_scatter(t, send.data, recv.data, recv.count,
                                 recv.dtype, op);
  }
}

// ---------------------------------------------------------------------------
// Real plane
// ---------------------------------------------------------------------------

sim::CoTask Communicator::real_bcast(machine::TaskCtx& t, void* buf,
                                     std::size_t bytes, int root) {
  SRM_CHECK(root >= 0 && root < t.nranks());
  SRM_CHECK(bytes == 0 || buf != nullptr);
  obs::Span span(*t.obs, t.rank, "srm.bcast");
  chk::StageScope stage(t.chk, "srm.bcast");
  rank_state(t).op_seq++;
  if (bytes == 0) co_return;
  coll::Decision dec = decide(coll::CollKind::bcast, bytes);
  coll::Embedding emb =
      coll::embed(*t.topo, root, dec.internode, cfg_.intranode_tree);
  bool small = dec.algo == coll::Algo::staged;
  bool leader = emb.leader[static_cast<std::size_t>(t.node())] == t.rank;
  bool manage = cfg_.manage_interrupts && small && leader && t.nnodes() > 1;
  if (manage) ep(t.rank).set_interrupts(false);
  switch (dec.algo) {
    case coll::Algo::staged:
      co_await bcast_small(t, buf, bytes, emb);
      break;
    case coll::Algo::scatter_ag:
      co_await bcast_scatter_ag(t, buf, bytes, emb);
      break;
    default:
      co_await bcast_large(t, buf, bytes, emb, cfg_.bcast_net_chunk, nullptr);
      break;
  }
  if (manage) ep(t.rank).set_interrupts(true);
}

sim::CoTask Communicator::real_reduce(machine::TaskCtx& t, const void* send,
                                      void* recv, std::size_t count,
                                      coll::Dtype d, coll::RedOp op,
                                      int root) {
  SRM_CHECK(root >= 0 && root < t.nranks());
  SRM_CHECK(send != recv);
  obs::Span span(*t.obs, t.rank, "srm.reduce");
  chk::StageScope stage(t.chk, "srm.reduce");
  rank_state(t).op_seq++;
  if (count == 0) co_return;
  // Interrupt management (§2.3): off during small-message collectives on the
  // tasks that face the network.
  bool small = count * coll::dtype_size(d) <= cfg_.allreduce_rd_max;
  bool leader = t.node() == t.topo->node_of(root) ? t.rank == root
                                                  : t.is_master();
  bool manage = cfg_.manage_interrupts && small && leader && t.nnodes() > 1;
  if (manage) ep(t.rank).set_interrupts(false);
  co_await reduce_impl(t, send, recv, count, d, op, root, nullptr);
  if (manage) ep(t.rank).set_interrupts(true);
}

sim::CoTask Communicator::real_allreduce(machine::TaskCtx& t,
                                         const void* send, void* recv,
                                         std::size_t count, coll::Dtype d,
                                         coll::RedOp op) {
  SRM_CHECK(send != recv);
  obs::Span span(*t.obs, t.rank, "srm.allreduce");
  chk::StageScope stage(t.chk, "srm.allreduce");
  rank_state(t).op_seq++;
  if (count == 0) co_return;
  std::size_t bytes = count * coll::dtype_size(d);
  coll::Decision dec = decide(coll::CollKind::allreduce, bytes);
  switch (dec.algo) {
    case coll::Algo::rd: {
      bool leader = t.is_master();
      bool manage = cfg_.manage_interrupts && leader && t.nnodes() > 1;
      if (manage) ep(t.rank).set_interrupts(false);
      co_await allreduce_rd(t, send, recv, count, d, op);
      if (manage) ep(t.rank).set_interrupts(true);
      break;
    }
    case coll::Algo::ring:
      co_await ring_allreduce(t, send, recv, count, d, op);
      break;
    case coll::Algo::rhalving:
      co_await rhalving_allreduce(t, send, recv, count, d, op);
      break;
    default:
      co_await allreduce_pipelined(t, send, recv, count, d, op);
      break;
  }
}

sim::CoTask Communicator::real_barrier(machine::TaskCtx& t) {
  obs::Span span(*t.obs, t.rank, "srm.barrier");
  chk::StageScope stage(t.chk, "srm.barrier");
  rank_state(t).op_seq++;
  bool manage = cfg_.manage_interrupts && t.is_master() && t.nnodes() > 1;
  if (manage) ep(t.rank).set_interrupts(false);
  co_await smp_barrier_enter(t);
  if (t.is_master()) {
    if (t.nnodes() > 1) co_await internode_barrier(t);
    smp_barrier_release(t);
  }
  if (manage) ep(t.rank).set_interrupts(true);
}

}  // namespace srm
