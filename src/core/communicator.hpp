// srm::Communicator — the paper's contribution: collective operations built
// directly on shared memory (intra-node) and one-sided RMA (inter-node).
//
// Public operations (all blocking, MPI-style semantics):
//   bcast, reduce, allreduce, barrier — plus the extended set below. The
//   whole set is exposed through the shared coll::Collectives interface, so
//   benches and examples use a Communicator and a mini-MPI World
//   interchangeably.
//
// Descriptor dispatch: the public entry points live in coll::Collectives
// (validated coll::Buf descriptors); the v_* hooks here route each call to
// one of two planes —
//  * real Bufs run the full protocols below over real shared segments and
//    LAPI puts (first real op materializes the per-node state lazily);
//  * symbolic Bufs run the shared sym::Transport cost skeleton with an SRM
//    profile (the config's network chunk + LAPI-ish per-message overhead),
//    allocating no per-rank payload memory — that is what makes 4096x64
//    topologies routine.
//
// The first *real* operation allocates, per SMP node, the shared structures
// of §2.2/§2.4:
//  * the two broadcast buffers A/B with per-process READY flags (Fig. 3);
//  * per-process reduce chunk slots with published/consumed counters (the
//    pipelined form of Fig. 2);
//  * per-process barrier flags (one cache line each);
//  * and, for the node leader, the LAPI-side structures: data-arrival
//    counters, per-child free-buffer credits, landing zones for the reduce
//    pipeline, recursive-doubling exchange slots, and barrier round counters.
//
// Every operation embeds its communication tree with coll::embed (Fig. 1),
// so at most one task per node (the "leader": the root on the root's node,
// the master elsewhere) touches the network.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "coll/buf.hpp"
#include "coll/decision.hpp"
#include "coll/iface.hpp"
#include "coll/ops.hpp"
#include "coll/symbolic.hpp"
#include "coll/tree.hpp"
#include "core/config.hpp"
#include "lapi/lapi.hpp"
#include "machine/cluster.hpp"
#include "shm/flag.hpp"
#include "shm/mapping.hpp"
#include "sim/task.hpp"

namespace srm {

class Communicator final : public coll::Collectives {
 public:
  /// Cheap to construct at any scale: per-node shared state materializes on
  /// the first *real* operation (ensure_real_state). @p name namespaces the
  /// shared segments so multiple communicators coexist.
  Communicator(machine::Cluster& cluster, lapi::Fabric& fabric,
               SrmConfig cfg = {}, std::string name = "srm0");

  std::string label() const override { return "srm"; }

  const SrmConfig& config() const noexcept { return cfg_; }
  const std::string& name() const noexcept { return name_; }

  /// The algorithm-selection table this communicator resolved at
  /// construction (explicit config table > SRM_DECISIONS env artifact >
  /// builtin profile table + legacy crossover-knob overrides).
  const coll::DecisionTable& decisions() const noexcept { return table_; }

  /// Resolved decision for (@p op, @p op_bytes) with the per-op sanitize
  /// rules applied: a staged bcast that cannot fit the staging buffers
  /// falls to direct; a recursive-doubling allreduce that cannot fit the
  /// exchange slots falls to pipeline; algorithms that do not implement an
  /// op fall to that op's paper path. Deterministic in operation-level
  /// arguments, so every rank takes the same branch.
  coll::Decision decide(coll::CollKind op, std::size_t op_bytes) const;

 protected:
  // coll::Collectives hooks: descriptors are already validated; these only
  // pick the plane. Real descriptors run the paper protocols (real_*);
  // symbolic descriptors run sym::Transport with the SRM cost profile.
  sim::CoTask v_bcast(machine::TaskCtx& t, coll::Buf buf, int root) override;
  sim::CoTask v_reduce(machine::TaskCtx& t, coll::Buf send, coll::Buf recv,
                       coll::RedOp op, int root) override;
  sim::CoTask v_allreduce(machine::TaskCtx& t, coll::Buf send, coll::Buf recv,
                          coll::RedOp op) override;
  /// Barrier carries no payload, so the plane comes from history: real by
  /// default (the paper's fetch-and-op protocol), symbolic once a symbolic
  /// operation ran and no real op has materialized the shared state.
  /// Collective calling order makes that choice uniform across ranks.
  sim::CoTask v_barrier(machine::TaskCtx& t) override;
  sim::CoTask v_scatter(machine::TaskCtx& t, coll::Buf send, coll::Buf recv,
                        int root) override;
  sim::CoTask v_gather(machine::TaskCtx& t, coll::Buf send, coll::Buf recv,
                       int root) override;
  sim::CoTask v_allgather(machine::TaskCtx& t, coll::Buf send,
                          coll::Buf recv) override;
  sim::CoTask v_reduce_scatter(machine::TaskCtx& t, coll::Buf send,
                               coll::Buf recv, coll::RedOp op) override;

  /// Decision-table lookup for the obs span args: the sanitized algorithm
  /// name, with "+sc" appended when the mapped single-copy variant runs.
  std::string v_algo(const machine::TaskCtx& t,
                     const coll::CallSig& sig) const override;

 private:
  // ---- real plane (the paper's protocols, raw memory) ----
  //
  // Beyond the paper's four operations, scatter, gather, allgather, and
  // reduce_scatter complete the common set using the same two building
  // blocks: RMA puts straight into user buffers between node leaders, and
  // shared-memory slice distribution/assembly inside nodes.

  /// Broadcast @p bytes from @p root's @p buf into everyone's @p buf.
  sim::CoTask real_bcast(machine::TaskCtx& t, void* buf, std::size_t bytes,
                         int root);
  /// Reduce element-wise with @p op; the result lands in @p recv at @p root
  /// (ignored elsewhere). @p send and @p recv must not alias.
  sim::CoTask real_reduce(machine::TaskCtx& t, const void* send, void* recv,
                          std::size_t count, coll::Dtype d, coll::RedOp op,
                          int root);
  sim::CoTask real_allreduce(machine::TaskCtx& t, const void* send,
                             void* recv, std::size_t count, coll::Dtype d,
                             coll::RedOp op);
  /// Synchronize all tasks (§2.2/§2.4 barrier).
  sim::CoTask real_barrier(machine::TaskCtx& t);
  /// Scatter one @p bytes_per block per rank from @p send at @p root into
  /// everyone's @p recv. The root leader puts each node's block into that
  /// node's landing buffers; local tasks copy out their slice.
  sim::CoTask real_scatter(machine::TaskCtx& t, const void* send, void* recv,
                           std::size_t bytes_per, int root);
  /// Gather @p bytes_per per rank into @p recv at @p root (rank order).
  /// The root announces its receive buffer; node leaders assemble their
  /// node block in shared staging and put it straight into place.
  sim::CoTask real_gather(machine::TaskCtx& t, const void* send, void* recv,
                          std::size_t bytes_per, int root);
  /// Allgather: every rank ends with all blocks (gather to 0 + broadcast).
  sim::CoTask real_allgather(machine::TaskCtx& t, const void* send,
                             void* recv, std::size_t bytes_per);
  /// Reduce-scatter with equal blocks: element-wise reduce, then scatter of
  /// the @p count_per_rank-element blocks.
  sim::CoTask real_reduce_scatter(machine::TaskCtx& t, const void* send,
                                  void* recv, std::size_t count_per_rank,
                                  coll::Dtype d, coll::RedOp op);

  /// Build the per-node shared structures and per-rank link parities on the
  /// first real operation. Symbolic-only runs never pay this — it is
  /// O(nodes^2) counters/buffers (per-link state on every node).
  void ensure_real_state();
  // ---- per-node shared state (lives in the node's shm segment) ----
  struct NodeState {
    /// @p zoo: build the algorithm-zoo network state (skipped when the
    /// decision table can never dispatch a zoo algorithm).
    NodeState(sim::Engine& eng, const machine::MemoryParams& mp,
              const machine::Topology& topo, const SrmConfig& cfg, bool zoo,
              shm::Segment& seg, const std::string& prefix);

    int nlocal;
    int nnodes;

    // SMP broadcast (Fig. 3): two buffers + one READY flag per process each.
    std::array<std::span<std::byte>, 2> bc_buf;
    std::array<std::unique_ptr<shm::FlagArray>, 2> bc_ready;

    // SMP reduce pipeline: per local task, two chunk slots plus monotonic
    // publish counters. Consumption counters are per (local, slot): when the
    // node leadership changes across operations (the root moves), chunks in
    // *different* slots are consumed by *different* leaders that are not
    // mutually ordered, so only a per-slot count tells a writer that the
    // previous occupant of its slot is really gone.
    std::array<std::vector<std::span<std::byte>>, 2> red_slot;  // [slot][local]
    std::unique_ptr<shm::FlagArray> red_published;
    std::array<std::unique_ptr<shm::FlagArray>, 2> red_consumed;  // [slot]

    // SMP barrier: one flag per process (own cache line), reset by master.
    std::unique_ptr<shm::FlagArray> bar_flag;

    // ---- leader-side network state ----
    //
    // All inter-node state is per *link* (per potential parent or child
    // node): with arbitrary roots, consecutive operations can have different
    // trees, and two different parents' traffic must never alias one
    // buffer or counter — operations at different tree positions are not
    // mutually ordered. With a fixed tree only degree-of-master entries are
    // ever touched, matching the paper's buffer-consumption argument; the
    // full per-peer allocation is the price of arbitrary-root support
    // (which the paper leaves as an open problem).
    //
    // Small-protocol broadcast: two landing buffers + arrival counters per
    // parent node, and per-child free credits (start at 1: "buffer free").
    std::vector<std::array<std::span<std::byte>, 2>> bc_land;  // [parent][slot]
    std::vector<std::array<std::unique_ptr<lapi::Counter>, 2>> bc_arrived;
    std::vector<std::array<std::unique_ptr<lapi::Counter>, 2>> bc_free;

    // Large-protocol broadcast: the address-exchange cell + counter (per
    // child), and per-parent chunk-arrival counters (data goes straight to
    // the user buffer).
    std::vector<void*> bc_addr;  // child-node -> announced user buffer
    std::vector<std::unique_ptr<lapi::Counter>> bc_addr_arrived;
    std::vector<std::unique_ptr<lapi::Counter>> bc_large_arrived;

    // Reduce pipeline: per child node, two landing slots + arrival counter;
    // one credit counter for sending to our own parent (starts at 2); two
    // node-result slots guarded by the put origin counter.
    std::vector<std::array<std::span<std::byte>, 2>> red_land;
    std::vector<std::unique_ptr<lapi::Counter>> red_arrived;
    std::unique_ptr<lapi::Counter> red_free;
    std::array<std::span<std::byte>, 2> red_out;
    std::unique_ptr<lapi::Counter> red_out_org;

    // Allreduce recursive doubling: per round, two parity slots + arrival
    // counter; plus the non-power-of-two fold slots.
    std::vector<std::array<std::span<std::byte>, 2>> ar_buf;  // [round][parity]
    std::vector<std::unique_ptr<lapi::Counter>> ar_arrived;
    std::array<std::span<std::byte>, 2> ar_fold_in;
    std::array<std::span<std::byte>, 2> ar_fold_out;
    std::unique_ptr<lapi::Counter> ar_fold_in_arr;
    std::unique_ptr<lapi::Counter> ar_fold_out_arr;

    // Barrier: one counter per recursive-doubling round, plus fold counters.
    std::vector<std::unique_ptr<lapi::Counter>> bar_round;
    std::unique_ptr<lapi::Counter> bar_fold_in;
    std::unique_ptr<lapi::Counter> bar_fold_out;

    // Gather: two shared staging buffers for node-block assembly, with
    // per-slot monotonic filled/freed counters; the root's announced receive
    // address (one cell per announcing node, so announcements from
    // different roots never alias); and the root-side per-node chunk
    // arrival counters.
    std::array<std::span<std::byte>, 2> ga_stage;
    std::array<std::unique_ptr<shm::SharedFlag>, 2> ga_filled;
    std::array<std::unique_ptr<shm::SharedFlag>, 2> ga_freed;
    std::vector<void*> ga_addr;  // indexed by the root's node
    std::vector<std::unique_ptr<lapi::Counter>> ga_addr_arr;
    std::vector<std::unique_ptr<lapi::Counter>> ga_done;  // per sender node

    // ---- algorithm-zoo network state (core/zoo.cpp) ----
    //
    // Ring, recursive-halving, and scatter+allgather paths. Per peer node:
    // an announced user-buffer address cell (direct puts land straight in
    // user memory, so receivers advertise where), a direct-put arrival
    // counter, and two reduce_chunk-sized landing slots with arrival +
    // credit counters for streamed combine traffic.
    std::vector<void*> zoo_addr;  // peer -> announced user buffer
    std::vector<std::unique_ptr<lapi::Counter>> zoo_addr_arr;
    std::vector<std::unique_ptr<lapi::Counter>> zoo_got;
    std::vector<std::array<std::span<std::byte>, 2>> zoo_land;  // [peer][slot]
    std::vector<std::unique_ptr<lapi::Counter>> zoo_arr;
    std::vector<std::unique_ptr<lapi::Counter>> zoo_free;  // start at 2
    // Origin counter for every zoo put this node's leader issues. Ops are
    // globally serialized and each drains it to zero before finishing, so
    // leader changes across operations cannot alias in-flight counts.
    std::unique_ptr<lapi::Counter> zoo_org;

    // ---- single-copy cross-mapping state (core/single_copy.cpp) ----
    //
    // One window slot per local task: the mapped protocols export user
    // buffers through it instead of staging through bc_buf/red_slot.
    shm::Mapping* map = nullptr;  // owned by the segment
    // Mapped-reduce accumulators: interior vertices of the topology tree
    // combine their subtree into these per-local slot pairs (leaves
    // contribute straight from their exported send windows and need no
    // slot). Guarded by monotonic published/consumed counters exactly like
    // red_slot/red_published/red_consumed.
    std::array<std::vector<std::span<std::byte>>, 2> sc_acc;  // [slot][local]
    std::unique_ptr<shm::FlagArray> sc_pub;
    std::array<std::unique_ptr<shm::FlagArray>, 2> sc_cons;  // [slot]
  };

  // ---- per-rank protocol sequence numbers ----
  //
  // Buffer-slot parity must agree between the two sides of every handshake
  // across operations whose trees (and hence leaders) differ. Each rank
  // therefore tracks, privately and deterministically (every task sees every
  // collective with identical arguments), the cumulative chunk counts that
  // define each slot cycle.
  struct RankState {
    std::uint64_t smp_bc_seq = 0;   // SMP bcast chunks processed (A/B parity)
    std::uint64_t op_seq = 0;       // collective ops issued (RD slot parity)
    // Cumulative reduce chunks my node sent to / received from each peer
    // node (inter-node landing-slot parity).
    std::vector<std::uint64_t> red_sent;
    std::vector<std::uint64_t> red_recvd;
    // Same for small-protocol broadcast chunks (per-link landing parity).
    std::vector<std::uint64_t> bc_sent;
    std::vector<std::uint64_t> bc_recv;
    // Cumulative gather staging chunks on this rank's node (slot parity).
    std::uint64_t ga_seq = 0;
    // Cumulative SMP-reduce chunks each local task has published (slot
    // parity + published/consumed counter baselines).
    std::vector<std::uint64_t> smp_red_base;
    // Expected window generation per local task's Mapping slot: bumped in
    // lockstep by every rank of the node whenever a mapped protocol makes
    // local task l export a window — the attach side passes map_gen[l]+1.
    std::vector<std::uint64_t> map_gen;
    // Cumulative mapped-reduce chunks each local accumulated into its
    // sc_acc slots (parity + published/consumed baselines, the mapped twin
    // of smp_red_base).
    std::vector<std::uint64_t> sc_base;
    // Cumulative streamed zoo chunks my node sent to / received from each
    // peer node (zoo_land slot parity). Advanced identically on every rank
    // of the node — leadership can change between operations.
    std::vector<std::uint64_t> zoo_sent;
    std::vector<std::uint64_t> zoo_recvd;
  };

  NodeState& node_state(const machine::TaskCtx& t) {
    return *nodes_[static_cast<std::size_t>(t.node())];
  }
  RankState& rank_state(const machine::TaskCtx& t) {
    return ranks_[static_cast<std::size_t>(t.rank)];
  }
  lapi::Endpoint& ep(int rank) { return fabric_->ep(rank); }

  // ---- SMP primitives (core/smp.cpp) ----

  /// Flat two-buffer SMP broadcast of one chunk (Fig. 3). Fill mode
  /// (@p shared_src == nullptr): the leader copies @p src into the next
  /// shared buffer and every other task copies out to its own @p dst.
  /// Shared mode (@p shared_src set): the data already sits in shared memory
  /// (a LAPI put landed it there) and *everyone* — leader included — copies
  /// straight out of @p shared_src, with no staging copy. Advances the A/B
  /// READY-flag parity either way.
  sim::CoTask smp_bcast_chunk(machine::TaskCtx& t, int leader_local,
                              const void* src, void* dst, std::size_t len,
                              const std::byte* shared_src);

  /// Tree-structured SMP broadcast chunk (ablation, §2.2: the paper found
  /// the flat variant faster despite read contention).
  sim::CoTask smp_bcast_chunk_tree(machine::TaskCtx& t, int leader_local,
                                   const void* src, void* dst,
                                   std::size_t len);

  /// Non-leader side of the pipelined SMP reduce (Fig. 2, chunked): leaves
  /// copy their chunks into their shared slots, interior tasks combine their
  /// own data with their children's slots into their own slot. @p tree is
  /// the intranode tree over local ranks.
  sim::CoTask smp_reduce_participant(machine::TaskCtx& t,
                                     const coll::Tree& tree, const void* send,
                                     std::size_t count, coll::Dtype d,
                                     coll::RedOp op);

  /// Leader side of one SMP-reduce chunk: waits for the leader's children in
  /// @p tree and combines its own data with theirs straight into @p dst
  /// (no staging copy). @p c is the op-local chunk index.
  sim::CoTask smp_reduce_chunk_leader(machine::TaskCtx& t,
                                      const coll::Tree& tree,
                                      const void* send, void* dst,
                                      std::size_t c, std::size_t elem_off,
                                      std::size_t elems, coll::Dtype d,
                                      coll::RedOp op);

  /// Bookkeeping every rank runs after a reduce-like op: advance the
  /// published-count baselines and the inter-node landing parities.
  void finish_reduce_bookkeeping(machine::TaskCtx& t,
                                 const coll::Embedding& emb,
                                 std::size_t nchunks);

  /// One sliced SMP distribution chunk (scatter / root-node publishes):
  /// the leader makes [chunk_off, chunk_off+len) of the node block available
  /// (copying @p fill_src into the shared buffer unless @p shared_src
  /// already holds it), and every task copies the intersection with its own
  /// slice [my_lo, my_hi) to @p my_dst (which points at my_lo's data).
  sim::CoTask smp_slice_chunk(machine::TaskCtx& t, int leader_local,
                              const std::byte* fill_src,
                              const std::byte* shared_src,
                              std::size_t chunk_off, std::size_t len,
                              std::size_t my_lo, std::size_t my_hi,
                              std::byte* my_dst);

  // ---- single-copy cross-mapped SMP primitives (core/single_copy.cpp) ----

  /// Uniform per-operation protocol switch: the mapped single-copy path runs
  /// when the master enable is set and the decision table's mapped column
  /// says so for this op and size. Every rank computes this from
  /// operation-level arguments, so all ranks of a node take the same branch.
  bool mapped_on(coll::CollKind op, std::size_t op_bytes) const {
    return cfg_.single_copy && decide(op, op_bytes).mapped;
  }

  /// Mapped SMP broadcast: the leader exports [src, src+len) and the
  /// topology tree (coll::topo_tree) cascades direct copies — each vertex
  /// attaches to its parent's window, pulls into its own @p dst at the
  /// cache-distance-scaled cost, and re-exports dst for its children. N-1
  /// copies of len where the staged Fig. 3 path makes N, and no
  /// smp_buf_bytes cap. Pass src == nullptr on non-leader ranks.
  sim::CoTask smp_bcast_mapped(machine::TaskCtx& t, int leader_local,
                               const void* src, void* dst, std::size_t len);

  /// Non-leader side of the mapped SMP reduce over @p tree (a topology
  /// tree): leaves export their send buffers once and do no per-chunk work;
  /// interior vertices combine their own data, their leaf children's
  /// windows, and their interior children's sc_acc slots into their own
  /// sc_acc slot, chunk by chunk. Zero copies — only combines.
  sim::CoTask smp_reduce_participant_mapped(machine::TaskCtx& t,
                                            const coll::Tree& tree,
                                            const void* send,
                                            std::size_t count, coll::Dtype d,
                                            coll::RedOp op);

  /// Leader side of one mapped-reduce chunk: combine own data + children
  /// (leaf windows from @p wins, interior sc_acc slots) straight into
  /// @p dst. @p wins is indexed by child local rank (attach_leaf_windows).
  sim::CoTask smp_reduce_chunk_leader_mapped(
      machine::TaskCtx& t, const coll::Tree& tree, const void* send,
      void* dst, std::size_t c, std::size_t elem_off, std::size_t elems,
      coll::Dtype d, coll::RedOp op,
      const std::vector<shm::Mapping::Window>& wins);

  /// Attach (once per operation, before the chunk loop) the windows of the
  /// caller's leaf children in @p tree; @p wins is resized to nlocal and
  /// filled at the children's local ranks. detach_leaf_windows releases
  /// them after the last chunk.
  sim::CoTask attach_leaf_windows(machine::TaskCtx& t, const coll::Tree& tree,
                                  std::vector<shm::Mapping::Window>& wins);
  void detach_leaf_windows(machine::TaskCtx& t, const coll::Tree& tree);

  /// Mapped twin of finish_reduce_bookkeeping: advance window generations
  /// (leaf vertices), accumulator baselines (interior non-leader vertices),
  /// and the inter-node landing parities.
  void finish_reduce_bookkeeping_mapped(machine::TaskCtx& t,
                                        const coll::Embedding& emb,
                                        const coll::Tree& tree,
                                        std::size_t nchunks);

  /// SMP barrier (§2.2): flat flags, master gathers then resets.
  sim::CoTask smp_barrier(machine::TaskCtx& t);
  /// First half only: master returns once all locals checked in.
  sim::CoTask smp_barrier_enter(machine::TaskCtx& t);
  /// Second half: master resets the flags, releasing the locals.
  void smp_barrier_release(machine::TaskCtx& t);

  // ---- protocol stages ----
  sim::CoTask bcast_small(machine::TaskCtx& t, void* buf, std::size_t bytes,
                          const coll::Embedding& emb);
  /// Large-message broadcast (Fig. 4 right): address exchange, then chunks
  /// put directly into user buffers, pipelined down the tree, each chunk
  /// published locally through the Fig. 3 buffers. When @p src_gate is set
  /// (pipelined allreduce), the root leader consumes one count per chunk
  /// before sending it — the reduce->broadcast coupling of Fig. 5.
  sim::CoTask bcast_large(machine::TaskCtx& t, void* buf, std::size_t bytes,
                          const coll::Embedding& emb, std::size_t chunk,
                          lapi::Counter* src_gate);
  sim::CoTask reduce_impl(machine::TaskCtx& t, const void* send, void* recv,
                          std::size_t count, coll::Dtype d, coll::RedOp op,
                          int root, lapi::Counter* chunk_done);
  sim::CoTask allreduce_rd(machine::TaskCtx& t, const void* send, void* recv,
                           std::size_t count, coll::Dtype d, coll::RedOp op);
  sim::CoTask allreduce_pipelined(machine::TaskCtx& t, const void* send,
                                  void* recv, std::size_t count,
                                  coll::Dtype d, coll::RedOp op);
  sim::CoTask internode_barrier(machine::TaskCtx& t);

  // ---- algorithm zoo (core/zoo.cpp) ----
  //
  // Large-message algorithms from the tuning literature, selected by the
  // decision table: all of them reduce intra-node with the staged Fig. 2
  // pipeline into the node master's buffer, run their inter-node exchange
  // between masters over the zoo_* state, and publish the result through
  // the staged Fig. 3 buffers (the mapped column is ignored here).

  /// Ring allreduce: reduce-scatter around the node ring (streamed through
  /// the landing slots, combining on arrival), then allgather by direct
  /// puts into announced user buffers.
  sim::CoTask ring_allreduce(machine::TaskCtx& t, const void* send,
                             void* recv, std::size_t count, coll::Dtype d,
                             coll::RedOp op);
  /// Recursive-halving reduce-scatter + recursive-doubling allgather
  /// (Rabenseifner), with the classic fold to the nearest power of two.
  sim::CoTask rhalving_allreduce(machine::TaskCtx& t, const void* send,
                                 void* recv, std::size_t count, coll::Dtype d,
                                 coll::RedOp op);
  /// Scatter + ring-allgather broadcast: the root leader scatters one block
  /// per node, then the node ring circulates blocks with each node
  /// publishing arrivals locally as they land.
  sim::CoTask bcast_scatter_ag(machine::TaskCtx& t, void* buf,
                               std::size_t bytes, const coll::Embedding& emb);

  /// Staged SMP reduce of the whole vector into the leader's @p recv
  /// (leader runs the per-chunk leader combine, everyone else the
  /// participant pipeline), including the smp_red_base bookkeeping.
  sim::CoTask zoo_node_reduce(machine::TaskCtx& t, const coll::Tree& tree,
                              const void* send, void* recv, std::size_t count,
                              coll::Dtype d, coll::RedOp op);
  /// Publish @p bytes of the leader's @p src to every local task's @p dst
  /// through the staged Fig. 3 buffers, chunked to fit them.
  sim::CoTask zoo_publish(machine::TaskCtx& t, int leader_local,
                          const void* src, void* dst, std::size_t bytes);
  /// Stream [@p src, @p src+bytes) into @p dst_node's landing slots
  /// (reduce_chunk pieces, credit-gated), where the receiving leader is
  /// expected to combine each piece on arrival and return the credit.
  /// @p seq is the cumulative chunk sequence on the me->dst_node link
  /// (landing-slot parity), advanced per chunk; @p org_inflight counts the
  /// zoo_org bumps the caller must drain.
  sim::CoTask zoo_stream_to(machine::TaskCtx& t, const coll::Embedding& emb,
                            int dst_node, const std::byte* src,
                            std::size_t bytes, std::uint64_t& seq,
                            std::uint64_t& org_inflight);
  /// Receive @p bytes streamed by @p src_node's zoo_stream_to, combining
  /// each landed chunk into @p dst with @p op and returning the slot credit.
  /// @p seq is the cumulative chunk sequence on the src_node->me link.
  sim::CoTask zoo_recv_combine(machine::TaskCtx& t,
                               const coll::Embedding& emb, int src_node,
                               std::byte* dst, std::size_t bytes,
                               coll::Dtype d, coll::RedOp op,
                               std::uint64_t& seq);

  machine::Cluster* cluster_;
  lapi::Fabric* fabric_;
  SrmConfig cfg_;
  coll::DecisionTable table_;  // resolved at construction (decide())
  std::string name_;
  coll::sym::Transport sym_;       // symbolic plane (SRM cost profile)
  bool real_ready_ = false;        // per-node shared state materialized?
  bool sym_used_ = false;          // any symbolic op dispatched yet?
  std::vector<NodeState*> nodes_;  // owned by each node's segment
  std::vector<RankState> ranks_;
};

}  // namespace srm
