// SRM scatter / gather / allgather / reduce_scatter.
//
// These extend the paper's operation set using its two building blocks:
//
//  * scatter: the root puts each node's contiguous block (ranks are placed
//    in blocks, so a node's data is contiguous in the root buffer) into that
//    node's per-link landing buffers — the same credit-guarded pair the
//    small broadcast uses — and the node distributes slices out of shared
//    memory, each task copying only its own piece.
//
//  * gather: the root announces its receive buffer (address-exchange put,
//    as in the large broadcast); every node assembles its block chunk-wise
//    in two shared staging buffers (per-slot filled/freed counters), and the
//    leader puts finished chunks straight into their final location in the
//    root's buffer — no intermediate copies on the network path.
//
//  * allgather  = gather to rank 0 + broadcast (the composition benefits
//    from both optimized halves);
//  * reduce_scatter = reduce to rank 0 + scatter.
#include <cstring>
#include <deque>

#include "core/communicator.hpp"
#include "core/detail.hpp"

namespace srm {

sim::CoTask Communicator::real_scatter(machine::TaskCtx& t, const void* send,
                                       void* recv, std::size_t bytes_per,
                                       int root) {
  // Root range / descriptor invariants are enforced at the API boundary
  // (coll::Collectives); this plane only runs the protocol.
  obs::Span span(*t.obs, t.rank, "srm.scatter");
  chk::StageScope stage(t.chk, "srm.scatter");
  rank_state(t).op_seq++;
  if (bytes_per == 0) co_return;

  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  int root_node = t.topo->node_of(root);
  int my_node = t.node();
  int leader_local =
      my_node == root_node ? t.topo->local_of(root) : 0;
  bool is_leader = t.local() == leader_local;

  std::size_t block = bytes_per;                   // one rank's data
  std::size_t node_block = block * static_cast<std::size_t>(t.nlocal());
  std::size_t chunk = cfg_.smp_buf_bytes;
  std::size_t nchunks = detail::chunk_count(node_block, chunk);
  std::size_t my_lo = static_cast<std::size_t>(t.local()) * block;
  std::size_t my_hi = my_lo + block;

  auto link_slot = [this](std::uint64_t seq) {
    return cfg_.use_two_buffers ? seq % 2 : std::size_t{0};
  };

  // Single-copy path (root node only — elsewhere the data already lands in
  // shared memory): the root exports one window over its own node's block
  // and every local pulls its slice straight out, flat — a hierarchy buys
  // nothing when each reader wants a disjoint slice.
  bool mapped = mapped_on(coll::CollKind::scatter, node_block) && t.nlocal() > 1;

  if (t.rank == root) {
    lapi::Endpoint& my_ep = ep(t.rank);
    lapi::Counter org(*t.eng, "scatter.org@" + std::to_string(t.rank));
    std::uint64_t org_pending = 0;
    const std::byte* sp = static_cast<const std::byte*>(send);
    const std::byte* own_block =
        sp + static_cast<std::size_t>(root_node) * node_block;
    if (mapped) {
      // Export before the network loop so the local pulls overlap the puts.
      co_await ns.map->publish(t, const_cast<std::byte*>(own_block),
                               node_block);
    }
    // Chunk-major across nodes so all links stream concurrently.
    for (std::size_t c = 0; c < nchunks; ++c) {
      std::size_t off = c * chunk;
      std::size_t len = std::min(chunk, node_block - off);
      for (int nd = 0; nd < t.nnodes(); ++nd) {
        if (nd == root_node) continue;
        auto ni = static_cast<std::size_t>(nd);
        NodeState& cs = *nodes_[ni];
        std::size_t slot = link_slot(rs.bc_sent[ni] + c);
        co_await my_ep.wait_cntr(*ns.bc_free[ni][slot], 1);
        co_await my_ep.put(
            ep(t.topo->master_of(nd)), cs.bc_land[static_cast<std::size_t>(
                                                      root_node)][slot]
                                           .data(),
            sp + static_cast<std::size_t>(nd) * node_block + off, len,
            cs.bc_arrived[static_cast<std::size_t>(root_node)][slot].get(),
            &org);
        ++org_pending;
      }
      if (!mapped) {
        // Distribute the root node's own block slice-wise.
        co_await smp_slice_chunk(t, leader_local, own_block + off, nullptr,
                                 off, len, my_lo, my_hi,
                                 static_cast<std::byte*>(recv));
      }
    }
    if (mapped) {
      // Own slice: plain local copy out of the (own) window.
      co_await t.nd->mem.charge_copy(static_cast<double>(block));
      std::memcpy(recv, own_block + my_lo, block);
      chk::note_read(t.chk, own_block + my_lo, block);
      co_await ns.map->retract(t, t.nlocal() - 1);
    }
    if (org_pending > 0) co_await my_ep.wait_cntr(org, org_pending);
  } else if (mapped && my_node == root_node) {
    // Root-node consumer: pull the slice straight from the root's buffer.
    shm::Mapping::Window w;
    co_await ns.map->attach(
        t, leader_local,
        rs.map_gen[static_cast<std::size_t>(leader_local)] + 1, &w);
    co_await t.nd->mem.charge_copy_scaled(
        static_cast<double>(block),
        t.P->topo.copy_factor(leader_local, t.local(), true));
    std::memcpy(recv, w.data + my_lo, block);
    chk::note_read(t.chk, w.data + my_lo, block);
    ns.map->detach(t, leader_local);
  } else if (is_leader) {
    lapi::Endpoint& my_ep = ep(t.rank);
    auto ri = static_cast<std::size_t>(root_node);
    for (std::size_t c = 0; c < nchunks; ++c) {
      std::size_t off = c * chunk;
      std::size_t len = std::min(chunk, node_block - off);
      std::size_t slot = link_slot(rs.bc_recv[ri] + c);
      std::size_t flag_slot = cfg_.use_two_buffers ? rs.smp_bc_seq % 2 : 0;
      co_await my_ep.wait_cntr(*ns.bc_arrived[ri][slot], 1);
      co_await smp_slice_chunk(t, leader_local, nullptr,
                               ns.bc_land[ri][slot].data(), off, len, my_lo,
                               my_hi, static_cast<std::byte*>(recv));
      for (int l = 0; l < ns.nlocal; ++l) {
        if (l == leader_local) continue;
        co_await (*ns.bc_ready[flag_slot])[l].await_value(0, &t.chk);
      }
      co_await my_ep.put_signal(
          ep(root), *nodes_[ri]->bc_free[static_cast<std::size_t>(my_node)]
                                        [slot]);
    }
  } else {
    auto ri = static_cast<std::size_t>(root_node);
    for (std::size_t c = 0; c < nchunks; ++c) {
      std::size_t off = c * chunk;
      std::size_t len = std::min(chunk, node_block - off);
      const std::byte* shared_src = nullptr;
      if (my_node != root_node) {
        shared_src = ns.bc_land[ri][link_slot(rs.bc_recv[ri] + c)].data();
      }
      co_await smp_slice_chunk(t, leader_local, nullptr, shared_src, off,
                               len, my_lo, my_hi,
                               static_cast<std::byte*>(recv));
    }
  }

  // Per-link sequence bookkeeping (every rank, deterministically).
  if (my_node == root_node) {
    for (int nd = 0; nd < t.nnodes(); ++nd) {
      if (nd == root_node) continue;
      rs.bc_sent[static_cast<std::size_t>(nd)] += nchunks;
    }
    // Mapped path: one window export by the root, mirrored by every rank of
    // the node. (The staged smp_bc_seq parity does not advance — nobody on
    // this node touched the shared A/B buffers.)
    if (mapped) rs.map_gen[static_cast<std::size_t>(leader_local)] += 1;
  } else {
    rs.bc_recv[static_cast<std::size_t>(root_node)] += nchunks;
  }
}

sim::CoTask Communicator::real_gather(machine::TaskCtx& t, const void* send,
                                      void* recv, std::size_t bytes_per,
                                      int root) {
  obs::Span span(*t.obs, t.rank, "srm.gather");
  chk::StageScope stage(t.chk, "srm.gather");
  rank_state(t).op_seq++;
  if (bytes_per == 0) co_return;

  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  int root_node = t.topo->node_of(root);
  int my_node = t.node();
  int leader_local = my_node == root_node ? t.topo->local_of(root) : 0;
  bool is_leader = t.local() == leader_local;

  std::size_t block = bytes_per;
  std::size_t node_block = block * static_cast<std::size_t>(t.nlocal());
  std::size_t chunk = cfg_.smp_buf_bytes;
  std::size_t nchunks = detail::chunk_count(node_block, chunk);
  std::size_t my_lo = static_cast<std::size_t>(t.local()) * block;
  std::size_t my_hi = my_lo + block;
  std::size_t node_base =
      static_cast<std::size_t>(my_node) * node_block;  // in the root buffer

  auto slot_of = [this](std::uint64_t a) {
    return cfg_.use_two_buffers ? a % 2 : std::size_t{0};
  };
  int p = t.nlocal();

  lapi::Endpoint& my_ep = ep(t.rank);

  // Stage 0 (root): announce the receive buffer to every other leader.
  if (t.rank == root) {
    void* addr = recv;
    lapi::Counter org(*t.eng, "gather.addr_org@" + std::to_string(t.rank));
    std::uint64_t org_pending = 0;
    for (int nd = 0; nd < t.nnodes(); ++nd) {
      if (nd == root_node) continue;
      NodeState& cs = *nodes_[static_cast<std::size_t>(nd)];
      co_await my_ep.put(
          ep(t.topo->master_of(nd)),
          &cs.ga_addr[static_cast<std::size_t>(root_node)], &addr,
          sizeof(void*),
          cs.ga_addr_arr[static_cast<std::size_t>(root_node)].get(), &org);
      ++org_pending;
    }
    if (org_pending > 0) co_await my_ep.wait_cntr(org, org_pending);
  }

  // Single-copy path (root node only): instead of staging slices through
  // ga_stage, every local exports a window over its send block and the root
  // pulls each block straight into its final place in recv — N-1 copies
  // where the staged assembly makes 2 per byte.
  bool mapped = mapped_on(coll::CollKind::gather, node_block) &&
                t.nlocal() > 1 && my_node == root_node;
  if (mapped) {
    if (!is_leader) {
      co_await ns.map->publish(t, const_cast<void*>(send), block);
      co_await ns.map->retract(t, 1);
    } else {
      std::byte* rp = static_cast<std::byte*>(recv) + node_base;
      for (int l = 0; l < p; ++l) {
        auto li = static_cast<std::size_t>(l);
        std::size_t dst_off = static_cast<std::size_t>(l) * block;
        if (l == leader_local) {
          co_await t.nd->mem.charge_copy(static_cast<double>(block));
          std::memcpy(rp + dst_off, send, block);
          continue;
        }
        shm::Mapping::Window w;
        co_await ns.map->attach(t, l, rs.map_gen[li] + 1, &w);
        co_await t.nd->mem.charge_copy_scaled(
            static_cast<double>(block),
            t.P->topo.copy_factor(l, t.local(), true));
        std::memcpy(rp + dst_off, w.data, block);
        chk::note_read(t.chk, w.data, block);
        ns.map->detach(t, l);
      }
    }
    // Every rank of the node mirrors the leaf exports; ga_seq does not
    // advance — nobody here touched the staging pair.
    for (int l = 0; l < p; ++l) {
      if (l != leader_local) rs.map_gen[static_cast<std::size_t>(l)] += 1;
    }
    // The root still has to wait for the remote nodes' puts below.
    if (t.rank == root) {
      for (int nd = 0; nd < t.nnodes(); ++nd) {
        if (nd == root_node) continue;
        co_await my_ep.wait_cntr(
            *ns.ga_done[static_cast<std::size_t>(nd)], nchunks);
      }
    }
    co_return;
  }

  // Stage 1 (everyone): assemble the node block in the shared staging pair.
  // All p locals bump the filled counter for every chunk (with or without a
  // contribution), so the expected count per chunk is exactly p.
  std::byte* root_dst = nullptr;  // leaders learn where chunks go
  if (is_leader && my_node != root_node) {
    co_await my_ep.wait_cntr(
        *ns.ga_addr_arr[static_cast<std::size_t>(root_node)], 1);
    root_dst =
        static_cast<std::byte*>(ns.ga_addr[static_cast<std::size_t>(root_node)]);
  }

  lapi::Counter out_org(*t.eng, "gather.out_org@" + std::to_string(t.rank));
  std::deque<std::size_t> inflight_slots;  // staging slots with a put in air
  for (std::size_t c = 0; c < nchunks; ++c) {
    std::size_t off = c * chunk;
    std::size_t len = std::min(chunk, node_block - off);
    std::uint64_t a = rs.ga_seq + c;  // lifetime chunk index on this node
    std::size_t slot = slot_of(a);

    // Writer side: wait until all previous occupants of this slot are gone.
    co_await ns.ga_freed[slot]->await_at_least(
        cfg_.use_two_buffers ? a / 2 : a, &t.chk);
    std::size_t lo = std::max(my_lo, off);
    std::size_t hi = std::min(my_hi, off + len);
    if (lo < hi) {
      co_await t.nd->mem.charge_copy(static_cast<double>(hi - lo));
      chk::note_write(t.chk, ns.ga_stage[slot].data() + (lo - off), hi - lo);
      std::memcpy(ns.ga_stage[slot].data() + (lo - off),
                  static_cast<const std::byte*>(send) + (lo - my_lo),
                  hi - lo);
    }
    ns.ga_filled[slot]->add(1, &t.chk);

    if (!is_leader) continue;

    // Leader side: wait for all p contributions of this chunk, then move it.
    std::uint64_t prior =
        (cfg_.use_two_buffers ? a / 2 : a) * static_cast<std::uint64_t>(p);
    co_await ns.ga_filled[slot]->await_at_least(
        prior + static_cast<std::uint64_t>(p), &t.chk);
    if (my_node == root_node) {
      // The root copies straight into its receive buffer. The stage slices
      // are dirty in p different caches; charge the stream at the average
      // pull distance (exactly 1.0 on a single-domain topology).
      double f = 0.0;
      for (int l = 0; l < p; ++l) {
        f += t.P->topo.copy_factor(l, t.local(), /*dirty=*/true);
      }
      co_await t.nd->mem.charge_copy_scaled(
          static_cast<double>(len), f / static_cast<double>(p));
      chk::note_read(t.chk, ns.ga_stage[slot].data(), len);
      std::memcpy(static_cast<std::byte*>(recv) + node_base + off,
                  ns.ga_stage[slot].data(), len);
      ns.ga_freed[slot]->add(1, &t.chk);
    } else {
      co_await my_ep.put(ep(root), root_dst + node_base + off,
                         ns.ga_stage[slot].data(), len,
                         nodes_[static_cast<std::size_t>(root_node)]
                             ->ga_done[static_cast<std::size_t>(my_node)]
                             .get(),
                         &out_org);
      inflight_slots.push_back(slot);
      // Keep at most two chunks in flight; origin-counter bumps arrive in
      // injection order, so the front of the queue is the slot that the
      // oldest put has finished reading.
      if (inflight_slots.size() >= 2) {
        co_await my_ep.wait_cntr(out_org, 1);
        ns.ga_freed[inflight_slots.front()]->add(1, &t.chk);
        inflight_slots.pop_front();
      }
    }
  }
  while (!inflight_slots.empty()) {
    co_await my_ep.wait_cntr(out_org, 1);
    ns.ga_freed[inflight_slots.front()]->add(1, &t.chk);
    inflight_slots.pop_front();
  }

  // Root: wait for every remote node's chunks to land.
  if (t.rank == root) {
    for (int nd = 0; nd < t.nnodes(); ++nd) {
      if (nd == root_node) continue;
      co_await my_ep.wait_cntr(
          *ns.ga_done[static_cast<std::size_t>(nd)], nchunks);
    }
  }

  rs.ga_seq += nchunks;
}

sim::CoTask Communicator::real_allgather(machine::TaskCtx& t,
                                         const void* send, void* recv,
                                         std::size_t bytes_per) {
  obs::Span span(*t.obs, t.rank, "srm.allgather");
  chk::StageScope stage(t.chk, "srm.allgather");
  co_await real_gather(t, send, recv, bytes_per, 0);
  co_await real_bcast(t, recv,
                      bytes_per * static_cast<std::size_t>(t.nranks()), 0);
}

sim::CoTask Communicator::real_reduce_scatter(machine::TaskCtx& t,
                                              const void* send, void* recv,
                                              std::size_t count_per_rank,
                                              coll::Dtype d, coll::RedOp op) {
  obs::Span span(*t.obs, t.rank, "srm.reduce_scatter");
  chk::StageScope stage(t.chk, "srm.reduce_scatter");
  std::size_t total = count_per_rank * static_cast<std::size_t>(t.nranks());
  std::vector<std::byte> tmp;
  if (t.rank == 0) tmp.resize(total * coll::dtype_size(d));
  co_await real_reduce(t, send, t.rank == 0 ? tmp.data() : recv, total, d, op,
                       0);
  co_await real_scatter(t, tmp.data(), recv,
                        count_per_rank * coll::dtype_size(d), 0);
}

}  // namespace srm
