// SRM broadcast (paper §2.4, Fig. 4).
//
// Small protocol (<= 64 KB): the parent leader puts each chunk into one of
// the two shared-memory landing buffers the child keeps for that link,
// guarded by per-buffer free-credit counters (LAPI_Waitcntr instead of
// spinning, so the dispatcher polls). The SMP broadcast then reads straight
// out of the landing buffer — no staging copy. Messages in the (8 KB, 32 KB]
// band are split into 4 KB chunks and pipelined over the two buffers.
//
// Large protocol (> 64 KB): an address-exchange stage, then chunks are put
// directly into the child leaders' *user* buffers — no intermediate buffer
// at all — and each node publishes arrived chunks to its local tasks through
// the Fig. 3 double buffers, overlapping the network with the SMP copies.
#include <cstring>

#include "core/communicator.hpp"
#include "core/detail.hpp"

namespace srm {

namespace {
/// Internode children in broadcast send order (largest subtree first).
std::vector<int> bcast_children(const coll::Tree& tree, int node) {
  auto kids = tree.children[static_cast<std::size_t>(node)];
  return {kids.rbegin(), kids.rend()};
}
}  // namespace

sim::CoTask Communicator::bcast_small(machine::TaskCtx& t, void* buf,
                                      std::size_t bytes,
                                      const coll::Embedding& emb) {
  obs::Span span(*t.obs, t.rank, "bcast.small");
  chk::StageScope stage(t.chk, "bcast.small");
  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  int my_node = t.node();
  int leader = emb.leader[static_cast<std::size_t>(my_node)];
  int leader_local = t.topo->local_of(leader);
  int parent = emb.internode.parent[static_cast<std::size_t>(my_node)];
  auto pi = static_cast<std::size_t>(parent < 0 ? 0 : parent);
  bool is_root_node = parent == -1;

  // Chunk geometry (§2.4): pipeline band only.
  std::size_t chunk = bytes;
  if (bytes > cfg_.bcast_pipe_min && bytes <= cfg_.bcast_pipe_max) {
    chunk = cfg_.bcast_pipe_chunk;
  }
  std::size_t nchunks = detail::chunk_count(bytes, chunk);

  auto finish_bookkeeping = [&] {
    if (!is_root_node) rs.bc_recv[pi] += nchunks;
    for (int child : emb.internode.children[static_cast<std::size_t>(my_node)]) {
      rs.bc_sent[static_cast<std::size_t>(child)] += nchunks;
    }
  };

  // Single-buffer ablation: the landing pair degenerates to one slot too.
  auto link_slot = [this](std::uint64_t seq) {
    return cfg_.use_two_buffers ? seq % 2 : std::size_t{0};
  };

  // Single-copy path: only the *root* node stages through the shared buffer
  // (elsewhere the data already lands in shared memory); a mapped fan-out
  // from the root's user buffer removes that staging copy. One window over
  // the whole message — the pipeline-band chunking is a staging-buffer
  // artifact the mapped path doesn't need.
  bool mapped = mapped_on(coll::CollKind::bcast, bytes);

  if (t.rank != leader) {
    // Pure consumer: copy each chunk out of the landing buffer (non-root
    // nodes) or the SMP broadcast buffer (root node) when READY.
    if (is_root_node && mapped) {
      co_await smp_bcast_mapped(t, leader_local, nullptr, buf, bytes);
      finish_bookkeeping();
      co_return;
    }
    for (std::size_t c = 0; c < nchunks; ++c) {
      std::size_t off = c * chunk;
      std::size_t len = std::min(chunk, bytes - off);
      const std::byte* shared_src = nullptr;
      if (!is_root_node) {
        std::size_t lslot = link_slot(rs.bc_recv[pi] + c);
        shared_src = ns.bc_land[pi][lslot].data();
      }
      co_await smp_bcast_chunk(t, leader_local, nullptr,
                               static_cast<std::byte*>(buf) + off, len,
                               shared_src);
    }
    finish_bookkeeping();
    co_return;
  }

  auto kids = bcast_children(emb.internode, my_node);
  lapi::Endpoint& my_ep = ep(t.rank);
  // Puts sourced from the user buffer must have left the adapter before the
  // operation returns (the caller may immediately reuse the buffer).
  lapi::Counter org(*t.eng, "bcast.org@" + std::to_string(t.rank));
  std::uint64_t org_pending = 0;

  for (std::size_t c = 0; c < nchunks; ++c) {
    std::size_t off = c * chunk;
    std::size_t len = std::min(chunk, bytes - off);

    const std::byte* data;
    std::size_t in_slot = 0;
    if (is_root_node) {
      data = static_cast<const std::byte*>(buf) + off;
    } else {
      // Wait for the parent's put to land in this link's buffer.
      in_slot = link_slot(rs.bc_recv[pi] + c);
      co_await my_ep.wait_cntr(*ns.bc_arrived[pi][in_slot], 1);
      data = ns.bc_land[pi][in_slot].data();
    }

    // Send down the tree first (nonblocking puts), then broadcast locally —
    // Fig. 4 steps 1 and 2.
    for (int child : kids) {
      auto ci = static_cast<std::size_t>(child);
      NodeState& cs = *nodes_[ci];
      int child_leader = emb.leader[ci];
      std::size_t out_slot = link_slot(rs.bc_sent[ci] + c);
      co_await my_ep.wait_cntr(*ns.bc_free[ci][out_slot], 1);
      // Forwards from a landing buffer need no origin tracking: the buffer
      // cannot be overwritten before this put leaves (the parent's next put
      // is gated on a credit that follows it through the same NIC FIFO).
      co_await my_ep.put(
          ep(child_leader),
          cs.bc_land[static_cast<std::size_t>(my_node)][out_slot].data(),
          data, len,
          cs.bc_arrived[static_cast<std::size_t>(my_node)][out_slot].get(),
          is_root_node ? &org : nullptr);
      if (is_root_node) ++org_pending;
    }

    if (is_root_node) {
      if (!mapped) {
        co_await smp_bcast_chunk(t, leader_local, data,
                                 static_cast<std::byte*>(buf) + off, len,
                                 nullptr);
      }
    } else {
      std::size_t flag_slot = cfg_.use_two_buffers ? rs.smp_bc_seq % 2 : 0;
      co_await smp_bcast_chunk(t, leader_local, nullptr,
                               static_cast<std::byte*>(buf) + off, len, data);
      // The landing buffer is free once every local consumer cleared its
      // READY flag; then tell the parent (Fig. 4 step 3: zero-byte put).
      for (int l = 0; l < ns.nlocal; ++l) {
        if (l == leader_local) continue;
        co_await (*ns.bc_ready[flag_slot])[l].await_value(0, &t.chk);
      }
      int parent_leader = emb.leader[pi];
      NodeState& ps = *nodes_[pi];
      co_await my_ep.put_signal(
          ep(parent_leader),
          *ps.bc_free[static_cast<std::size_t>(my_node)][in_slot]);
    }
  }
  if (is_root_node && mapped) {
    // Mapped local fan-out after the puts are on the wire: the consumers
    // pull straight from the root's user buffer while the network streams.
    co_await smp_bcast_mapped(t, leader_local, buf, buf, bytes);
  }
  if (org_pending > 0) {
    co_await my_ep.wait_cntr(org, org_pending);
  }
  finish_bookkeeping();
}

sim::CoTask Communicator::bcast_large(machine::TaskCtx& t, void* buf,
                                      std::size_t bytes,
                                      const coll::Embedding& emb,
                                      std::size_t chunk,
                                      lapi::Counter* src_gate) {
  obs::Span span(*t.obs, t.rank, "bcast.large");
  chk::StageScope stage(t.chk, "bcast.large");
  NodeState& ns = node_state(t);
  int my_node = t.node();
  int leader = emb.leader[static_cast<std::size_t>(my_node)];
  int leader_local = t.topo->local_of(leader);
  int parent = emb.internode.parent[static_cast<std::size_t>(my_node)];
  std::size_t nchunks = detail::chunk_count(bytes, chunk);

  // The SMP publish stage moves at most one shared buffer per step; network
  // chunks larger than that are published in sub-chunks. The mapped path
  // exports the whole network chunk as one window instead — no staging
  // buffer, so no sub-chunking and one copy per consumer instead of two.
  bool mapped = mapped_on(coll::CollKind::bcast, bytes);
  auto smp_publish = [this, &t, leader_local, buf, mapped](
                         std::size_t off, std::size_t len,
                         bool is_leader) -> sim::CoTask {
    if (mapped) {
      std::byte* p = static_cast<std::byte*>(buf) + off;
      co_await smp_bcast_mapped(t, leader_local, is_leader ? p : nullptr, p,
                                len);
      co_return;
    }
    std::size_t done = 0;
    while (done < len) {
      std::size_t sub = std::min(cfg_.smp_buf_bytes, len - done);
      std::byte* p = static_cast<std::byte*>(buf) + off + done;
      co_await smp_bcast_chunk(t, leader_local, is_leader ? p : nullptr, p,
                               sub, nullptr);
      done += sub;
    }
  };

  if (t.rank != leader) {
    for (std::size_t c = 0; c < nchunks; ++c) {
      std::size_t off = c * chunk;
      std::size_t len = std::min(chunk, bytes - off);
      co_await smp_publish(off, len, false);
    }
    co_return;
  }

  lapi::Endpoint& my_ep = ep(t.rank);
  auto kids = bcast_children(emb.internode, my_node);
  // Every put below is sourced from the user buffer (or this frame), so all
  // of them must have left the adapter before the operation returns.
  lapi::Counter org(*t.eng, "bcast_large.org@" + std::to_string(t.rank));
  std::uint64_t org_pending = 0;

  // Stage 1 (initialization): leaves announce their user-buffer address to
  // the parent with a small put.
  void* my_addr = buf;
  if (parent != -1) {
    int parent_leader = emb.leader[static_cast<std::size_t>(parent)];
    NodeState& ps = *nodes_[static_cast<std::size_t>(parent)];
    co_await my_ep.put(
        ep(parent_leader), &ps.bc_addr[static_cast<std::size_t>(my_node)],
        &my_addr, sizeof(void*),
        ps.bc_addr_arrived[static_cast<std::size_t>(my_node)].get(), &org);
    ++org_pending;
  }

  std::vector<std::byte*> child_addr(kids.size(), nullptr);

  for (std::size_t c = 0; c < nchunks; ++c) {
    std::size_t off = c * chunk;
    std::size_t len = std::min(chunk, bytes - off);
    if (parent != -1) {
      // Stage 2: wait for this chunk to land in our user buffer.
      co_await my_ep.wait_cntr(
          *ns.bc_large_arrived[static_cast<std::size_t>(parent)], 1);
    } else if (src_gate != nullptr) {
      // Pipelined allreduce: wait until the reduce phase finished this chunk.
      co_await my_ep.wait_cntr(*src_gate, 1);
    }
    // Forward straight from the user buffer — no intermediate buffers.
    for (std::size_t k = 0; k < kids.size(); ++k) {
      int child = kids[k];
      NodeState& cs = *nodes_[static_cast<std::size_t>(child)];
      if (c == 0) {
        co_await my_ep.wait_cntr(
            *ns.bc_addr_arrived[static_cast<std::size_t>(child)], 1);
        child_addr[k] = static_cast<std::byte*>(
            ns.bc_addr[static_cast<std::size_t>(child)]);
      }
      co_await my_ep.put(
          ep(emb.leader[static_cast<std::size_t>(child)]), child_addr[k] + off,
          static_cast<const std::byte*>(buf) + off, len,
          cs.bc_large_arrived[static_cast<std::size_t>(my_node)].get(), &org);
      ++org_pending;
    }
    // Stages 3/4: SMP broadcast of the arrived chunk, pipelined through the
    // two shared buffers while the network keeps streaming.
    co_await smp_publish(off, len, true);
  }
  if (org_pending > 0) {
    co_await my_ep.wait_cntr(org, org_pending);
  }
}

}  // namespace srm
