// Algorithm zoo: large-message collectives from the tuning literature,
// selected by the decision table (coll/decision.hpp) rather than the paper's
// fixed crossover constants.
//
// All three algorithms keep the paper's SMP discipline — staged Fig. 2
// reduce into the node master, staged Fig. 3 publish of the result — and
// replace only the inter-node exchange between the node leaders:
//
//  * ring allreduce: reduce-scatter around the node ring, streamed through
//    the two per-peer landing slots with credit counters (the reduce
//    pipeline's flow control, §2.4), then an allgather of the reduced
//    blocks by direct puts into announced user buffers.
//  * recursive-halving allreduce (Rabenseifner): halve-and-exchange
//    reduce-scatter, recursive-doubling allgather, classic fold to the
//    nearest power of two. Exchanges go through a per-operation scratch
//    buffer whose address is re-announced every round — the announcement
//    doubles as the consumed-signal, so no slot credits are needed.
//  * scatter+allgather broadcast: the root leader scatters one block per
//    node, the ring circulates blocks with each node publishing arrivals
//    locally as they land; the root re-injects from its own buffer instead
//    of receiving, so its predecessor sends nothing.
//
// Zero-length blocks (more nodes than elements) are skipped symmetrically
// on both sides of every handshake so all counters stay balanced.
#include <cstring>
#include <vector>

#include "core/communicator.hpp"
#include "core/detail.hpp"

namespace srm {

namespace {
/// Chunks a byte range splits into, with zero-length transfers carrying no
/// chunks at all (detail::chunk_count maps 0 to one chunk).
std::size_t nz_chunks(std::size_t bytes, std::size_t chunk) {
  return bytes == 0 ? 0 : (bytes + chunk - 1) / chunk;
}
}  // namespace

sim::CoTask Communicator::zoo_publish(machine::TaskCtx& t, int leader_local,
                                      const void* src, void* dst,
                                      std::size_t bytes) {
  bool leader = t.local() == leader_local;
  std::size_t done = 0;
  while (done < bytes) {
    std::size_t sub = std::min(cfg_.smp_buf_bytes, bytes - done);
    const void* s =
        leader ? static_cast<const std::byte*>(src) + done : nullptr;
    co_await smp_bcast_chunk(t, leader_local, s,
                             static_cast<std::byte*>(dst) + done, sub,
                             nullptr);
    done += sub;
  }
}

sim::CoTask Communicator::zoo_node_reduce(machine::TaskCtx& t,
                                          const coll::Tree& tree,
                                          const void* send, void* recv,
                                          std::size_t count, coll::Dtype d,
                                          coll::RedOp op) {
  std::size_t esize = coll::dtype_size(d);
  std::size_t chunk_elems = cfg_.reduce_chunk / esize;
  std::size_t nchunks = detail::chunk_count(count, chunk_elems);
  int leader_local = tree.root;

  if (t.local() != leader_local) {
    co_await smp_reduce_participant(t, tree, send, count, d, op);
  } else {
    for (std::size_t c = 0; c < nchunks; ++c) {
      std::size_t elem_off = c * chunk_elems;
      std::size_t elems = std::min(chunk_elems, count - elem_off);
      co_await smp_reduce_chunk_leader(
          t, tree, send, static_cast<std::byte*>(recv) + elem_off * esize, c,
          elem_off, elems, d, op);
    }
  }
  // Slot-parity bookkeeping, advanced identically on every rank.
  RankState& rs = rank_state(t);
  for (int l = 0; l < t.nlocal(); ++l) {
    if (l != leader_local) {
      rs.smp_red_base[static_cast<std::size_t>(l)] += nchunks;
    }
  }
}

sim::CoTask Communicator::zoo_stream_to(machine::TaskCtx& t,
                                        const coll::Embedding& emb,
                                        int dst_node, const std::byte* src,
                                        std::size_t bytes, std::uint64_t& seq,
                                        std::uint64_t& org_inflight) {
  if (bytes == 0) co_return;
  NodeState& ns = node_state(t);
  lapi::Endpoint& my_ep = ep(t.rank);
  auto di = static_cast<std::size_t>(dst_node);
  auto mi = static_cast<std::size_t>(t.node());
  NodeState& ds = *nodes_[di];
  int dst_leader = emb.leader[di];
  std::size_t nchunks = nz_chunks(bytes, cfg_.reduce_chunk);
  for (std::size_t c = 0; c < nchunks; ++c) {
    std::size_t off = c * cfg_.reduce_chunk;
    std::size_t len = std::min(cfg_.reduce_chunk, bytes - off);
    // Consume a landing-slot credit for this link, returned by the
    // receiver's combine (starts at 2: two chunks in flight per edge).
    co_await my_ep.wait_cntr(*ns.zoo_free[di], 1);
    co_await my_ep.put(ep(dst_leader), ds.zoo_land[mi][seq % 2].data(),
                       src + off, len, ds.zoo_arr[mi].get(),
                       ns.zoo_org.get());
    ++seq;
    ++org_inflight;
  }
}

sim::CoTask Communicator::zoo_recv_combine(machine::TaskCtx& t,
                                           const coll::Embedding& emb,
                                           int src_node, std::byte* dst,
                                           std::size_t bytes, coll::Dtype d,
                                           coll::RedOp op,
                                           std::uint64_t& seq) {
  if (bytes == 0) co_return;
  NodeState& ns = node_state(t);
  lapi::Endpoint& my_ep = ep(t.rank);
  auto si = static_cast<std::size_t>(src_node);
  auto mi = static_cast<std::size_t>(t.node());
  NodeState& ss = *nodes_[si];
  int src_leader = emb.leader[si];
  std::size_t esize = coll::dtype_size(d);
  std::size_t nchunks = nz_chunks(bytes, cfg_.reduce_chunk);
  for (std::size_t c = 0; c < nchunks; ++c) {
    std::size_t off = c * cfg_.reduce_chunk;
    std::size_t len = std::min(cfg_.reduce_chunk, bytes - off);
    co_await my_ep.wait_cntr(*ns.zoo_arr[si], 1);
    const std::byte* land = ns.zoo_land[si][seq % 2].data();
    co_await t.nd->mem.charge_combine(static_cast<double>(len));
    chk::note_read(t.chk, land, len);
    chk::note_write(t.chk, dst + off, len);
    coll::combine(op, d, dst + off, land, len / esize);
    ++seq;
    // Return the slot credit to the sender's stream.
    co_await my_ep.put_signal(ep(src_leader), *ss.zoo_free[mi]);
  }
}

sim::CoTask Communicator::ring_allreduce(machine::TaskCtx& t,
                                         const void* send, void* recv,
                                         std::size_t count, coll::Dtype d,
                                         coll::RedOp op) {
  obs::Span span(*t.obs, t.rank, "allreduce.ring");
  chk::StageScope stage(t.chk, "allreduce.ring");
  std::size_t esize = coll::dtype_size(d);
  std::size_t bytes = count * esize;
  // Leaders are the masters (allreduce has no root); embed with root 0.
  coll::Embedding emb =
      coll::embed(*t.topo, 0, cfg_.internode_tree, cfg_.intranode_tree);
  coll::Tree itree = coll::build_tree(cfg_.intranode_tree, t.nlocal(), 0);

  co_await zoo_node_reduce(t, itree, send, recv, count, d, op);

  int n = t.nnodes();
  int v = t.node();
  int succ = (v + 1) % n;
  int pred = (v + n - 1) % n;
  std::size_t rblk = (count + static_cast<std::size_t>(n) - 1) /
                     static_cast<std::size_t>(n);
  auto blo = [&](int i) {
    return std::min(count, static_cast<std::size_t>(i) * rblk);
  };
  auto blen = [&](int i) {  // bytes
    std::size_t hi = std::min(count, (static_cast<std::size_t>(i) + 1) * rblk);
    return (hi - blo(i)) * esize;
  };
  RankState& rs = rank_state(t);

  if (t.is_master() && n > 1) {
    NodeState& ns = node_state(t);
    SRM_CHECK(!ns.zoo_free.empty());  // zoo state gated on the table
    lapi::Endpoint& my_ep = ep(t.rank);
    // The ring attributes arrivals to blocks by their order on the link
    // (one counter per peer). Interrupt-mode reception breaks that order —
    // an arrival taken via interrupt can be overtaken by a later one
    // processed at polling cost — so run the exchange in polled mode
    // (§2.3 management of LAPI interrupts); this is a correctness
    // requirement here, not the staged paths' latency tweak.
    my_ep.set_interrupts(false);
    auto* base = static_cast<std::byte*>(recv);
    std::uint64_t org_inflight = 0;
    std::uint64_t sent_seq = rs.zoo_sent[static_cast<std::size_t>(succ)];
    std::uint64_t recv_seq = rs.zoo_recvd[static_cast<std::size_t>(pred)];

    // Reduce-scatter: n-1 ring steps. The stream to the successor and the
    // combine of the predecessor's stream must run concurrently — a
    // sequential schedule would deadlock on the two-slot credits once a
    // block exceeds two chunks.
    for (int s = 0; s < n - 1; ++s) {
      int sb = (v - s + n) % n;      // block we forward
      int rb = (v - s - 1 + n) % n;  // block we combine
      auto snd = detail::spawn_joined(
          *t.eng, zoo_stream_to(t, emb, succ, base + blo(sb) * esize,
                                blen(sb), sent_seq, org_inflight));
      auto rcv = detail::spawn_joined(
          *t.eng, zoo_recv_combine(t, emb, pred, base + blo(rb) * esize,
                                   blen(rb), d, op, recv_seq));
      co_await snd->wait();
      co_await rcv->wait();
    }

    // The allgather overwrites blocks whose reduce-scatter puts may still
    // sit in the adapter: drain the origin counter first.
    if (org_inflight > 0) {
      co_await my_ep.wait_cntr(*ns.zoo_org, org_inflight);
      org_inflight = 0;
    }

    // Allgather: announce the receive buffer to the predecessor (it puts
    // straight into our user memory), then circulate the owned blocks —
    // after the reduce-scatter, node v owns the fully reduced block v+1.
    void* my_addr = recv;
    bool incoming = false;
    for (int s = 0; s <= n - 2; ++s) {
      if (blen((v - s + n) % n) > 0) incoming = true;
    }
    if (incoming) {
      auto pi = static_cast<std::size_t>(pred);
      NodeState& ps = *nodes_[pi];
      co_await my_ep.put(ep(emb.leader[pi]),
                         &ps.zoo_addr[static_cast<std::size_t>(v)], &my_addr,
                         sizeof(void*),
                         ps.zoo_addr_arr[static_cast<std::size_t>(v)].get(),
                         ns.zoo_org.get());
      ++org_inflight;
    }

    std::byte* succ_addr = nullptr;
    for (int s = 0; s <= n - 2; ++s) {
      int sb = (v + 1 - s + n) % n;  // block we own and forward
      int rb = (v - s + n) % n;      // block arriving from the predecessor
      if (blen(sb) > 0) {
        auto si = static_cast<std::size_t>(succ);
        if (succ_addr == nullptr) {
          co_await my_ep.wait_cntr(*ns.zoo_addr_arr[si], 1);
          succ_addr = static_cast<std::byte*>(ns.zoo_addr[si]);
        }
        NodeState& ss = *nodes_[si];
        co_await my_ep.put(ep(emb.leader[si]), succ_addr + blo(sb) * esize,
                           base + blo(sb) * esize, blen(sb),
                           ss.zoo_got[static_cast<std::size_t>(v)].get(),
                           ns.zoo_org.get());
        ++org_inflight;
      }
      if (blen(rb) > 0) {
        co_await my_ep.wait_cntr(*ns.zoo_got[static_cast<std::size_t>(pred)],
                                 1);
      }
    }
    if (org_inflight > 0) {
      co_await my_ep.wait_cntr(*ns.zoo_org, org_inflight);
    }
    my_ep.set_interrupts(true);
  }

  // Publish the full vector to the local tasks.
  co_await zoo_publish(t, 0, recv, recv, bytes);

  // Streamed-chunk parity bookkeeping, advanced identically on every rank.
  if (n > 1) {
    std::uint64_t sent = 0;
    std::uint64_t recvd = 0;
    for (int s = 0; s < n - 1; ++s) {
      sent += nz_chunks(blen((v - s + n) % n), cfg_.reduce_chunk);
      recvd += nz_chunks(blen((pred - s + n) % n), cfg_.reduce_chunk);
    }
    rs.zoo_sent[static_cast<std::size_t>(succ)] += sent;
    rs.zoo_recvd[static_cast<std::size_t>(pred)] += recvd;
  }
}

sim::CoTask Communicator::rhalving_allreduce(machine::TaskCtx& t,
                                             const void* send, void* recv,
                                             std::size_t count, coll::Dtype d,
                                             coll::RedOp op) {
  obs::Span span(*t.obs, t.rank, "allreduce.rhalving");
  chk::StageScope stage(t.chk, "allreduce.rhalving");
  std::size_t esize = coll::dtype_size(d);
  std::size_t bytes = count * esize;
  coll::Embedding emb =
      coll::embed(*t.topo, 0, cfg_.internode_tree, cfg_.intranode_tree);
  coll::Tree itree = coll::build_tree(cfg_.intranode_tree, t.nlocal(), 0);

  co_await zoo_node_reduce(t, itree, send, recv, count, d, op);

  int n = t.nnodes();
  int v = t.node();

  if (t.is_master() && n > 1) {
    NodeState& ns = node_state(t);
    SRM_CHECK(!ns.zoo_free.empty());  // zoo state gated on the table
    lapi::Endpoint& my_ep = ep(t.rank);
    // Per-peer counters attribute arrivals by link order; keep reception
    // polled so that order is FIFO (see ring_allreduce).
    my_ep.set_interrupts(false);
    auto* base = static_cast<std::byte*>(recv);
    std::uint64_t org_inflight = 0;
    std::vector<std::byte> scratch(bytes);
    // Announced addresses must stay readable until the origin counter says
    // the adapter consumed them: one stable cell per peer.
    std::vector<void*> ann(static_cast<std::size_t>(n), nullptr);

    int pof2 = 1;
    while (pof2 * 2 <= n) pof2 *= 2;
    int rem = n - pof2;

    auto node_of = [&](int w) { return w < rem ? w * 2 + 1 : w + rem; };
    auto leader_ep = [&](int node) -> lapi::Endpoint& {
      return ep(emb.leader[static_cast<std::size_t>(node)]);
    };
    auto peer_ns = [&](int node) -> NodeState& {
      return *nodes_[static_cast<std::size_t>(node)];
    };
    // Advertise @p addr to @p peer. Announcements double as flow control: a
    // peer may not put until we re-advertised (i.e. finished reusing) the
    // target memory.
    auto announce = [&](int peer, void* addr) -> sim::CoTask {
      auto pi = static_cast<std::size_t>(peer);
      ann[pi] = addr;
      NodeState& ps = peer_ns(peer);
      co_await my_ep.put(leader_ep(peer),
                         &ps.zoo_addr[static_cast<std::size_t>(v)], &ann[pi],
                         sizeof(void*),
                         ps.zoo_addr_arr[static_cast<std::size_t>(v)].get(),
                         ns.zoo_org.get());
      ++org_inflight;
    };
    auto direct_put = [&](int peer, std::byte* dst, const std::byte* src,
                          std::size_t len) -> sim::CoTask {
      co_await my_ep.put(
          leader_ep(peer), dst, src, len,
          peer_ns(peer).zoo_got[static_cast<std::size_t>(v)].get(),
          ns.zoo_org.get());
      ++org_inflight;
    };
    auto wait_peer_addr = [&](int peer) -> sim::CoTask {
      co_await my_ep.wait_cntr(*ns.zoo_addr_arr[static_cast<std::size_t>(peer)],
                               1);
    };
    auto peer_addr = [&](int peer) {
      return static_cast<std::byte*>(
          ns.zoo_addr[static_cast<std::size_t>(peer)]);
    };

    // Fold to the nearest power of two: the first 2*rem nodes pair up,
    // evens push their vector to the odd partner and drop out.
    int w;
    if (v < 2 * rem) {
      if (v % 2 == 0) {
        if (bytes > 0) {
          co_await wait_peer_addr(v + 1);
          co_await direct_put(v + 1, peer_addr(v + 1), base, bytes);
        }
        w = -1;
      } else {
        if (bytes > 0) {
          co_await announce(v - 1, scratch.data());
          co_await my_ep.wait_cntr(
              *ns.zoo_got[static_cast<std::size_t>(v - 1)], 1);
          co_await t.nd->mem.charge_combine(static_cast<double>(bytes));
          chk::note_read(t.chk, scratch.data(), bytes);
          chk::note_write(t.chk, base, bytes);
          coll::combine(op, d, base, scratch.data(), count);
        }
        w = v / 2;
      }
    } else {
      w = v - rem;
    }

    int nrounds = 0;
    while ((1 << (nrounds + 1)) <= pof2) ++nrounds;

    if (w != -1) {
      // Reduce-scatter by recursive halving: each round swaps half of the
      // active range with the partner and combines the kept half. Partners
      // share the same active range (their relabeled ranks differ only in
      // the round's bit), so both derive the split identically.
      std::size_t lo = 0;
      std::size_t hi = count;
      std::vector<std::size_t> rlo(static_cast<std::size_t>(nrounds));
      std::vector<std::size_t> rhi(static_cast<std::size_t>(nrounds));
      for (int r = 0; r < nrounds; ++r) {
        int pnode = node_of(w ^ (1 << r));
        auto ri = static_cast<std::size_t>(r);
        rlo[ri] = lo;
        rhi[ri] = hi;
        std::size_t half = (hi - lo + 1) / 2;  // lower-half length
        std::size_t slo;                       // range we give up
        std::size_t shi;
        if ((w & (1 << r)) == 0) {  // keep lower, send upper
          slo = lo + half;
          shi = hi;
          hi = lo + half;
        } else {  // keep upper, send lower
          slo = lo;
          shi = lo + half;
          lo = lo + half;
        }
        std::size_t keep_b = (hi - lo) * esize;
        std::size_t send_b = (shi - slo) * esize;
        if (keep_b > 0) co_await announce(pnode, scratch.data());
        if (send_b > 0) {
          co_await wait_peer_addr(pnode);
          co_await direct_put(pnode, peer_addr(pnode), base + slo * esize,
                              send_b);
        }
        if (keep_b > 0) {
          co_await my_ep.wait_cntr(
              *ns.zoo_got[static_cast<std::size_t>(pnode)], 1);
          co_await t.nd->mem.charge_combine(static_cast<double>(keep_b));
          chk::note_read(t.chk, scratch.data(), keep_b);
          chk::note_write(t.chk, base + lo * esize, keep_b);
          coll::combine(op, d, base + lo * esize, scratch.data(), hi - lo);
        }
      }

      // Incoming allgather puts overwrite ranges whose reduce-scatter puts
      // may still sit in the adapter: drain the origin counter between the
      // phases.
      if (org_inflight > 0) {
        co_await my_ep.wait_cntr(*ns.zoo_org, org_inflight);
        org_inflight = 0;
      }

      // Allgather by recursive doubling: undo the rounds in reverse,
      // swapping whole ranges by direct puts into each other's receive
      // buffers at matching offsets.
      for (int r = nrounds - 1; r >= 0; --r) {
        int pnode = node_of(w ^ (1 << r));
        auto ri = static_cast<std::size_t>(r);
        std::size_t mine_b = (hi - lo) * esize;
        std::size_t peer_b = (rhi[ri] - rlo[ri]) * esize - mine_b;
        if (peer_b > 0) co_await announce(pnode, recv);
        if (mine_b > 0) {
          co_await wait_peer_addr(pnode);
          co_await direct_put(pnode, peer_addr(pnode) + lo * esize,
                              base + lo * esize, mine_b);
        }
        if (peer_b > 0) {
          co_await my_ep.wait_cntr(
              *ns.zoo_got[static_cast<std::size_t>(pnode)], 1);
        }
        lo = rlo[ri];
        hi = rhi[ri];
      }

      // Unfold: hand the full vector back to the folded-out even partner.
      if (w < rem && bytes > 0) {
        int partner = node_of(w) - 1;
        co_await wait_peer_addr(partner);
        co_await direct_put(partner, peer_addr(partner), base, bytes);
      }
    } else {
      // Folded out: drain the fold put (the unfold overwrites its source),
      // announce the receive buffer, and wait for the final vector.
      if (org_inflight > 0) {
        co_await my_ep.wait_cntr(*ns.zoo_org, org_inflight);
        org_inflight = 0;
      }
      if (bytes > 0) {
        co_await announce(v + 1, recv);
        co_await my_ep.wait_cntr(*ns.zoo_got[static_cast<std::size_t>(v + 1)],
                                 1);
      }
    }

    if (org_inflight > 0) {
      co_await my_ep.wait_cntr(*ns.zoo_org, org_inflight);
    }
    my_ep.set_interrupts(true);
  }

  co_await zoo_publish(t, 0, recv, recv, bytes);
}

sim::CoTask Communicator::bcast_scatter_ag(machine::TaskCtx& t, void* buf,
                                           std::size_t bytes,
                                           const coll::Embedding& emb) {
  obs::Span span(*t.obs, t.rank, "bcast.scatter_ag");
  chk::StageScope stage(t.chk, "bcast.scatter_ag");
  int n = t.nnodes();
  int v = t.node();
  int leader = emb.leader[static_cast<std::size_t>(v)];
  int leader_local = t.topo->local_of(leader);
  auto* base = static_cast<std::byte*>(buf);

  if (n == 1) {
    co_await zoo_publish(t, leader_local, buf, buf, bytes);
    co_return;
  }

  int root_node = 0;
  for (int i = 0; i < n; ++i) {
    if (emb.internode.parent[static_cast<std::size_t>(i)] == -1) root_node = i;
  }
  int succ = (v + 1) % n;
  int pred = (v + n - 1) % n;
  std::size_t rblk =
      (bytes + static_cast<std::size_t>(n) - 1) / static_cast<std::size_t>(n);
  auto blo = [&](int i) {
    return std::min(bytes, static_cast<std::size_t>(i) * rblk);
  };
  auto blen = [&](int i) {
    std::size_t hi = std::min(bytes, (static_cast<std::size_t>(i) + 1) * rblk);
    return hi - blo(i);
  };

  if (t.rank != leader) {
    // Consumers follow the leader's publish schedule: own block first, then
    // the ring arrivals in order.
    for (int s = 0; s < n; ++s) {
      int b = (v - s + n) % n;
      if (blen(b) == 0) continue;
      co_await zoo_publish(t, leader_local, nullptr, base + blo(b), blen(b));
    }
    co_return;
  }

  NodeState& ns = node_state(t);
  SRM_CHECK(!ns.zoo_free.empty());  // zoo state gated on the table
  lapi::Endpoint& my_ep = ep(t.rank);
  // The scatter and ring arrivals are attributed to blocks purely by link
  // order; polled reception keeps processing FIFO (see ring_allreduce).
  my_ep.set_interrupts(false);
  std::uint64_t org_inflight = 0;
  // The root holds the whole message and re-injects blocks from its own
  // buffer; its predecessor therefore sends nothing around the ring.
  bool send_ring = succ != root_node;
  std::vector<void*> ann(static_cast<std::size_t>(n), nullptr);

  auto announce = [&](int peer) -> sim::CoTask {
    auto pi = static_cast<std::size_t>(peer);
    ann[pi] = buf;
    NodeState& ps = *nodes_[pi];
    co_await my_ep.put(ep(emb.leader[pi]),
                       &ps.zoo_addr[static_cast<std::size_t>(v)], &ann[pi],
                       sizeof(void*),
                       ps.zoo_addr_arr[static_cast<std::size_t>(v)].get(),
                       ns.zoo_org.get());
    ++org_inflight;
  };
  std::byte* succ_addr = nullptr;
  auto forward = [&](int b) -> sim::CoTask {
    auto si = static_cast<std::size_t>(succ);
    if (succ_addr == nullptr) {
      co_await my_ep.wait_cntr(*ns.zoo_addr_arr[si], 1);
      succ_addr = static_cast<std::byte*>(ns.zoo_addr[si]);
    }
    co_await my_ep.put(ep(emb.leader[si]), succ_addr + blo(b), base + blo(b),
                       blen(b),
                       nodes_[si]->zoo_got[static_cast<std::size_t>(v)].get(),
                       ns.zoo_org.get());
    ++org_inflight;
  };

  if (v == root_node) {
    // Scatter: one direct put per node block, into the announced buffers.
    // Arrival rides zoo_arr so ring traffic (zoo_got) cannot satisfy the
    // scatter wait on the receiving side.
    for (int i = 0; i < n; ++i) {
      if (i == root_node || blen(i) == 0) continue;
      auto ii = static_cast<std::size_t>(i);
      co_await my_ep.wait_cntr(*ns.zoo_addr_arr[ii], 1);
      auto* dst = static_cast<std::byte*>(ns.zoo_addr[ii]);
      co_await my_ep.put(
          ep(emb.leader[ii]), dst + blo(i), base + blo(i), blen(i),
          nodes_[ii]->zoo_arr[static_cast<std::size_t>(v)].get(),
          ns.zoo_org.get());
      ++org_inflight;
    }
    // Ring re-injection: send block (root - s) to the successor at step s,
    // publishing each block locally in the same order.
    for (int s = 0; s < n; ++s) {
      int b = (v - s + n) % n;
      if (blen(b) == 0) continue;
      if (send_ring && s <= n - 2) co_await forward(b);
      co_await zoo_publish(t, leader_local, base + blo(b), base + blo(b),
                           blen(b));
    }
  } else {
    // Announce the buffer to whoever puts into it: the predecessor (ring)
    // and the root (scatter) — only when a nonzero transfer will happen, so
    // the address-arrival counters stay balanced. When the predecessor is
    // the root, it consumes both announcements from the same cell.
    bool incoming = false;
    for (int b = 0; b < n; ++b) {
      if (b != v && blen(b) > 0) incoming = true;
    }
    if (incoming) co_await announce(pred);
    if (blen(v) > 0) co_await announce(root_node);

    // Step 0: wait for the scatter block, forward it, publish it.
    if (blen(v) > 0) {
      co_await my_ep.wait_cntr(*ns.zoo_arr[static_cast<std::size_t>(root_node)],
                               1);
      if (send_ring) co_await forward(v);
      co_await zoo_publish(t, leader_local, base + blo(v), base + blo(v),
                           blen(v));
    }
    // Ring arrivals: block (v - s) lands at step s; forward it (unless we
    // feed the root) and publish it.
    for (int s = 1; s < n; ++s) {
      int b = (v - s + n) % n;
      if (blen(b) == 0) continue;
      co_await my_ep.wait_cntr(*ns.zoo_got[static_cast<std::size_t>(pred)], 1);
      if (send_ring && s <= n - 2) co_await forward(b);
      co_await zoo_publish(t, leader_local, base + blo(b), base + blo(b),
                           blen(b));
    }
  }

  if (org_inflight > 0) {
    co_await my_ep.wait_cntr(*ns.zoo_org, org_inflight);
  }
  my_ep.set_interrupts(true);
}

}  // namespace srm
