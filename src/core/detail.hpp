// Internal helpers shared by the SRM protocol implementation files.
#pragma once

#include <cstddef>
#include <memory>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/trigger.hpp"

namespace srm::detail {

/// Number of chunks @p bytes splits into at @p chunk granularity (>= 1).
inline std::size_t chunk_count(std::size_t bytes, std::size_t chunk) {
  return bytes == 0 ? 1 : (bytes + chunk - 1) / chunk;
}

inline sim::CoTask joined_body(sim::CoTask body,
                               std::shared_ptr<sim::Trigger> done) {
  co_await body;
  done->fire();
}

/// Spawn @p body as a concurrent activity of the current task and return a
/// trigger that fires on completion. Used for the phase overlap of the
/// pipelined allreduce (Fig. 5).
inline std::shared_ptr<sim::Trigger> spawn_joined(sim::Engine& eng,
                                                  sim::CoTask body) {
  auto done = std::make_shared<sim::Trigger>(eng);
  eng.spawn(joined_body(std::move(body), done));
  return done;
}

}  // namespace srm::detail
