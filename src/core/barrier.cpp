// SRM barrier inter-node phase (§2.4): pairwise exchange with recursive
// doubling between node masters, zero-byte puts into per-round counters.
// The SMP halves (flat flags, master gathers then resets) live in smp.cpp.
#include "core/communicator.hpp"

namespace srm {

sim::CoTask Communicator::internode_barrier(machine::TaskCtx& t) {
  SRM_CHECK(t.is_master());
  obs::Span span(*t.obs, t.rank, "barrier.inter");
  chk::StageScope stage(t.chk, "barrier.inter");
  NodeState& ns = node_state(t);
  lapi::Endpoint& my_ep = ep(t.rank);
  int n = t.nnodes();
  int v = t.node();

  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  int rem = n - pof2;

  auto master_ep = [&](int node) -> lapi::Endpoint& {
    return ep(t.topo->master_of(node));
  };
  auto node_state_of = [&](int node) -> NodeState& {
    return *nodes_[static_cast<std::size_t>(node)];
  };

  int newv;
  if (v < 2 * rem) {
    if (v % 2 == 0) {
      co_await my_ep.put_signal(master_ep(v + 1),
                                *node_state_of(v + 1).bar_fold_in);
      newv = -1;
    } else {
      co_await my_ep.wait_cntr(*ns.bar_fold_in, 1);
      newv = v / 2;
    }
  } else {
    newv = v - rem;
  }

  if (newv != -1) {
    int round = 0;
    for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
      int newdst = newv ^ mask;
      int dst_node = newdst < rem ? newdst * 2 + 1 : newdst + rem;
      co_await my_ep.put_signal(
          master_ep(dst_node),
          *node_state_of(dst_node).bar_round[static_cast<std::size_t>(round)]);
      co_await my_ep.wait_cntr(
          *ns.bar_round[static_cast<std::size_t>(round)], 1);
    }
  }

  if (v < 2 * rem) {
    if (v % 2 == 0) {
      co_await my_ep.wait_cntr(*ns.bar_fold_out, 1);
    } else {
      co_await my_ep.put_signal(master_ep(v - 1),
                                *node_state_of(v - 1).bar_fold_out);
    }
  }
}

}  // namespace srm
