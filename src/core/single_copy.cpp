// Single-copy cross-mapped SMP primitives (ROADMAP item 2).
//
// The Fig. 2/3 protocols stage every payload through shared intermediate
// buffers: for a broadcast that is one copy in plus one copy out per
// consumer (N total), for a reduce one staging copy per leaf. These
// primitives remove the staging hop with shm::Mapping windows — tasks
// export their *user* buffers into the node's shared namespace and peers
// copy or combine straight across address spaces:
//
//  * broadcast: N-1 copies instead of N, no smp_buf_bytes size cap;
//  * reduce: zero copies — leaves just export their send buffers and the
//    interior of the tree combines directly out of the windows.
//
// Transfers follow coll::topo_tree, so each cache-domain boundary of
// machine::TopologyParams is crossed by exactly one window pull, charged at
// the coherence-aware cost (charge_copy_scaled / charge_combine_scaled:
// the source line is dirty in the writer's cache, and crossing an L3 slice
// or socket boundary stretches the stream). Below SrmConfig::single_copy_min
// the publish/attach handshake costs dominate and the staged path wins —
// that crossover is the abl_single_copy bench's subject.
//
// Window generations and accumulator-slot parities are mirrored privately
// by every rank (RankState::map_gen / sc_base), the same trick the staged
// protocols use for A/B parity: collectives are deterministic, so each rank
// knows exactly how many times each slot was published without asking.
#include <cstring>

#include "core/communicator.hpp"
#include "core/detail.hpp"

namespace srm {

// ---------------------------------------------------------------------------
// Mapped SMP broadcast: cascade of direct window pulls over the topology tree
// ---------------------------------------------------------------------------

sim::CoTask Communicator::smp_bcast_mapped(machine::TaskCtx& t,
                                           int leader_local, const void* src,
                                           void* dst, std::size_t len) {
  obs::Span span(*t.obs, t.rank, "smp.bcast_mapped");
  chk::StageScope stage(t.chk, "smp.bcast_mapped");
  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  if (ns.nlocal == 1) co_return;  // nothing to fan out
  coll::Tree tree = coll::topo_tree(t.P->topo, ns.nlocal, leader_local);
  int me = t.local();
  const auto& kids = tree.children[static_cast<std::size_t>(me)];

  if (me == leader_local) {
    // The data already sits in the leader's buffer (user data at the root,
    // a landed network chunk elsewhere): export it, wait out the readers.
    SRM_CHECK(src != nullptr);
    if (!kids.empty()) {
      co_await ns.map->publish(t, const_cast<void*>(src), len);
      co_await ns.map->retract(t, static_cast<int>(kids.size()));
    }
  } else {
    int parent = tree.parent[static_cast<std::size_t>(me)];
    shm::Mapping::Window w;
    co_await ns.map->attach(
        t, parent, rs.map_gen[static_cast<std::size_t>(parent)] + 1, &w);
    SRM_CHECK(w.bytes >= len);
    // The one copy this vertex ever makes: straight from the parent's user
    // buffer, at the cache-distance cost (the parent just wrote it: dirty).
    co_await t.nd->mem.charge_copy_scaled(
        static_cast<double>(len), t.P->topo.copy_factor(parent, me, true));
    std::memcpy(dst, w.data, len);
    chk::note_read(t.chk, w.data, len);
    ns.map->detach(t, parent);
    if (!kids.empty()) {
      co_await ns.map->publish(t, dst, len);
      co_await ns.map->retract(t, static_cast<int>(kids.size()));
    }
  }
  // Mirror the generation advance of every exporting vertex (all ranks of
  // the node run this loop with the same tree — deterministic).
  for (int v = 0; v < ns.nlocal; ++v) {
    if (!tree.children[static_cast<std::size_t>(v)].empty()) {
      rs.map_gen[static_cast<std::size_t>(v)]++;
    }
  }
}

// ---------------------------------------------------------------------------
// Mapped SMP reduce: leaves export windows, the interior combines in place
// ---------------------------------------------------------------------------

sim::CoTask Communicator::attach_leaf_windows(
    machine::TaskCtx& t, const coll::Tree& tree,
    std::vector<shm::Mapping::Window>& wins) {
  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  wins.assign(static_cast<std::size_t>(ns.nlocal), {});
  for (int kid : tree.children[static_cast<std::size_t>(t.local())]) {
    auto ki = static_cast<std::size_t>(kid);
    if (!tree.children[ki].empty()) continue;  // interior kid: sc_acc slots
    co_await ns.map->attach(t, kid, rs.map_gen[ki] + 1, &wins[ki]);
  }
}

void Communicator::detach_leaf_windows(machine::TaskCtx& t,
                                       const coll::Tree& tree) {
  NodeState& ns = node_state(t);
  for (int kid : tree.children[static_cast<std::size_t>(t.local())]) {
    if (!tree.children[static_cast<std::size_t>(kid)].empty()) continue;
    ns.map->detach(t, kid);
  }
}

sim::CoTask Communicator::smp_reduce_participant_mapped(
    machine::TaskCtx& t, const coll::Tree& tree, const void* send,
    std::size_t count, coll::Dtype d, coll::RedOp op) {
  obs::Span span(*t.obs, t.rank, "smp.reduce_mapped");
  chk::StageScope stage(t.chk, "smp.reduce_mapped");
  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  int me = t.local();
  SRM_CHECK(tree.parent[static_cast<std::size_t>(me)] != -1);
  std::size_t esize = coll::dtype_size(d);
  std::size_t chunk_elems = cfg_.reduce_chunk / esize;
  std::size_t nchunks = detail::chunk_count(count, chunk_elems);
  const auto& kids = tree.children[static_cast<std::size_t>(me)];

  if (kids.empty()) {
    // Leaf: no copy at all. Export the send buffer once; the parent pulls
    // every chunk straight out of the window and detaches after the last.
    co_await ns.map->publish(t, const_cast<void*>(send), count * esize);
    co_await ns.map->retract(t, 1);
    co_return;
  }

  // Interior vertex: combine own data + children into the sc_acc slot pair,
  // chunk by chunk, gated exactly like the staged red_slot protocol.
  std::vector<shm::Mapping::Window> wins;
  co_await attach_leaf_windows(t, tree, wins);
  for (std::size_t c = 0; c < nchunks; ++c) {
    std::size_t elem_off = c * chunk_elems;
    std::size_t elems = std::min(chunk_elems, count - elem_off);
    std::uint64_t abs = rs.sc_base[static_cast<std::size_t>(me)] + c;
    if (abs >= 2) {
      co_await (*ns.sc_cons[abs % 2])[me].await_at_least(abs / 2, &t.chk);
    }
    std::byte* acc = ns.sc_acc[abs % 2][static_cast<std::size_t>(me)].data();
    const std::byte* mine =
        static_cast<const std::byte*>(send) + elem_off * esize;
    double bytes = static_cast<double>(elems * esize);

    bool first = true;
    for (int kid : kids) {
      auto ki = static_cast<std::size_t>(kid);
      const std::byte* ksrc;
      std::uint64_t kid_abs = 0;
      bool kid_interior = !tree.children[ki].empty();
      if (kid_interior) {
        kid_abs = rs.sc_base[ki] + c;
        co_await (*ns.sc_pub)[kid].await_at_least(kid_abs + 1, &t.chk);
        ksrc = ns.sc_acc[kid_abs % 2][ki].data();
      } else {
        // Leaf child: its whole send buffer is the window — ready since the
        // publish we attached to, no per-chunk wait.
        ksrc = wins[ki].data + elem_off * esize;
      }
      co_await t.nd->mem.charge_combine_scaled(
          bytes, t.P->topo.copy_factor(kid, me, true));
      if (first) {
        coll::combine_out(op, d, acc, mine, ksrc, elems);
        first = false;
      } else {
        coll::combine(op, d, acc, ksrc, elems);
      }
      chk::note_read(t.chk, ksrc, elems * esize);
      chk::note_write(t.chk, acc, elems * esize);
      if (kid_interior) {
        (*ns.sc_cons[kid_abs % 2])[kid].add(1, &t.chk);
      }
    }
    (*ns.sc_pub)[me].add(1, &t.chk);
  }
  detach_leaf_windows(t, tree);
}

sim::CoTask Communicator::smp_reduce_chunk_leader_mapped(
    machine::TaskCtx& t, const coll::Tree& tree, const void* send, void* dst,
    std::size_t c, std::size_t elem_off, std::size_t elems, coll::Dtype d,
    coll::RedOp op, const std::vector<shm::Mapping::Window>& wins) {
  obs::Span span(*t.obs, t.rank, "smp.reduce_mapped");
  chk::StageScope stage(t.chk, "smp.reduce_mapped_leader");
  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  int me = t.local();
  SRM_CHECK(tree.root == me);
  std::size_t esize = coll::dtype_size(d);
  const std::byte* mine =
      static_cast<const std::byte*>(send) + elem_off * esize;
  double bytes = static_cast<double>(elems * esize);
  const auto& kids = tree.children[static_cast<std::size_t>(me)];

  if (kids.empty()) {
    // Single task on the node: the node result is just our own data.
    co_await t.nd->mem.charge_copy(bytes);
    std::memcpy(dst, mine, elems * esize);
    chk::note_write(t.chk, dst, elems * esize);
    co_return;
  }
  bool first = true;
  for (int kid : kids) {
    auto ki = static_cast<std::size_t>(kid);
    const std::byte* ksrc;
    std::uint64_t kid_abs = 0;
    bool kid_interior = !tree.children[ki].empty();
    if (kid_interior) {
      kid_abs = rs.sc_base[ki] + c;
      co_await (*ns.sc_pub)[kid].await_at_least(kid_abs + 1, &t.chk);
      ksrc = ns.sc_acc[kid_abs % 2][ki].data();
    } else {
      ksrc = wins[ki].data + elem_off * esize;
    }
    co_await t.nd->mem.charge_combine_scaled(
        bytes, t.P->topo.copy_factor(kid, me, true));
    if (first) {
      coll::combine_out(op, d, dst, mine, ksrc, elems);
      first = false;
    } else {
      coll::combine(op, d, dst, ksrc, elems);
    }
    chk::note_read(t.chk, ksrc, elems * esize);
    chk::note_write(t.chk, dst, elems * esize);
    if (kid_interior) {
      (*ns.sc_cons[kid_abs % 2])[kid].add(1, &t.chk);
    }
  }
}

void Communicator::finish_reduce_bookkeeping_mapped(machine::TaskCtx& t,
                                                    const coll::Embedding& emb,
                                                    const coll::Tree& tree,
                                                    std::size_t nchunks) {
  RankState& rs = rank_state(t);
  int my_node = t.node();
  int leader_local =
      t.topo->local_of(emb.leader[static_cast<std::size_t>(my_node)]);
  for (int v = 0; v < t.nlocal(); ++v) {
    if (v == leader_local) continue;
    auto vi = static_cast<std::size_t>(v);
    if (tree.children[vi].empty()) {
      rs.map_gen[vi] += 1;  // leaf: one window export per operation
    } else {
      rs.sc_base[vi] += nchunks;  // interior: one slot publish per chunk
    }
  }
  int parent = emb.internode.parent[static_cast<std::size_t>(my_node)];
  if (parent != -1) {
    rs.red_sent[static_cast<std::size_t>(parent)] += nchunks;
  }
  for (int child :
       emb.internode.children[static_cast<std::size_t>(my_node)]) {
    rs.red_recvd[static_cast<std::size_t>(child)] += nchunks;
  }
}

}  // namespace srm
