// SRM allreduce (paper §2.4).
//
// Small messages (<= 16 KB): SMP reduce to the node master, then an
// integrated pairwise exchange with recursive doubling between the masters
// (one-sided puts into per-round exchange slots — the two directions of each
// pair overlap on the wire), then SMP broadcast of the result. Non-power-of-
// two node counts use the standard fold (extra nodes push their data to a
// partner first and receive the final result back).
//
// Large messages: the four-stage pipeline of Fig. 5 — SMP reduce, inter-node
// reduce, inter-node broadcast, SMP broadcast — expressed as a reduce to
// rank 0 running *concurrently* with a broadcast from rank 0, coupled chunk
// by chunk through a completion counter, so all four stages process
// different chunks simultaneously.
#include <cstring>

#include "core/communicator.hpp"
#include "core/detail.hpp"

namespace srm {

sim::CoTask Communicator::allreduce_rd(machine::TaskCtx& t, const void* send,
                                       void* recv, std::size_t count,
                                       coll::Dtype d, coll::RedOp op) {
  obs::Span span(*t.obs, t.rank, "allreduce.rd");
  chk::StageScope stage(t.chk, "allreduce.rd");
  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  std::size_t esize = coll::dtype_size(d);
  std::size_t bytes = count * esize;
  SRM_CHECK(bytes <= cfg_.allreduce_rd_max);
  // Leaders are the masters (allreduce has no root); embed with root 0.
  coll::Embedding emb =
      coll::embed(*t.topo, 0, cfg_.internode_tree, cfg_.intranode_tree);
  coll::Tree itree =
      coll::build_tree(cfg_.intranode_tree, t.nlocal(), 0);
  std::size_t nchunks = 1;  // fits one reduce chunk by configuration
  SRM_CHECK(bytes <= cfg_.reduce_chunk);

  if (!t.is_master()) {
    co_await smp_reduce_participant(t, itree, send, count, d, op);
    finish_reduce_bookkeeping(t, emb, nchunks);
    // Wait for the master to publish the global result (fill mode: the
    // master copies its recv buffer into the shared broadcast buffer).
    co_await smp_bcast_chunk(t, 0, nullptr, recv, bytes, nullptr);
    co_return;
  }

  // Master: node-local combine straight into the receive buffer.
  co_await smp_reduce_chunk_leader(t, itree, send, recv, 0, 0, count, d, op);
  finish_reduce_bookkeeping(t, emb, nchunks);

  lapi::Endpoint& my_ep = ep(t.rank);
  int n = t.nnodes();
  int v = t.node();
  std::size_t parity = (rs.op_seq + 1) % 2;  // op_seq was bumped at dispatch

  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  int rem = n - pof2;

  auto master_ep = [&](int node) -> lapi::Endpoint& {
    return ep(t.topo->master_of(node));
  };
  auto node_state_of = [&](int node) -> NodeState& {
    return *nodes_[static_cast<std::size_t>(node)];
  };

  int newv;
  if (v < 2 * rem) {
    if (v % 2 == 0) {
      // Fold out: push to the odd partner, receive the final result later.
      NodeState& part = node_state_of(v + 1);
      co_await my_ep.put(master_ep(v + 1), part.ar_fold_in[parity].data(),
                         recv, bytes, part.ar_fold_in_arr.get());
      newv = -1;
    } else {
      co_await my_ep.wait_cntr(*ns.ar_fold_in_arr, 1);
      co_await t.nd->mem.charge_combine(static_cast<double>(bytes));
      chk::note_read(t.chk, ns.ar_fold_in[parity].data(), bytes);
      coll::combine(op, d, recv, ns.ar_fold_in[parity].data(), count);
      newv = v / 2;
    }
  } else {
    newv = v - rem;
  }

  if (newv != -1) {
    lapi::Counter org(*t.eng, "ar.rd_org@" + std::to_string(t.rank));
    int round = 0;
    for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
      obs::Span round_span(*t.obs, t.rank, "allreduce.rd.round");
      int newdst = newv ^ mask;
      int dst_node = newdst < rem ? newdst * 2 + 1 : newdst + rem;
      NodeState& part = node_state_of(dst_node);
      auto ri = static_cast<std::size_t>(round);
      // Both puts of the pair overlap — the one-sided advantage (§4).
      co_await my_ep.put(master_ep(dst_node),
                         part.ar_buf[ri][parity].data(), recv, bytes,
                         part.ar_arrived[ri].get(), &org);
      co_await my_ep.wait_cntr(*ns.ar_arrived[ri], 1);
      // recv is the source of our own in-flight put; it may only be
      // overwritten after the adapter has read it (origin counter).
      co_await my_ep.wait_cntr(org, 1);
      co_await t.nd->mem.charge_combine(static_cast<double>(bytes));
      chk::note_read(t.chk, ns.ar_buf[ri][parity].data(), bytes);
      coll::combine(op, d, recv, ns.ar_buf[ri][parity].data(), count);
    }
  }

  if (v < 2 * rem) {
    if (v % 2 == 0) {
      co_await my_ep.wait_cntr(*ns.ar_fold_out_arr, 1);
      co_await t.nd->mem.charge_copy(static_cast<double>(bytes));
      chk::note_read(t.chk, ns.ar_fold_out[parity].data(), bytes);
      std::memcpy(recv, ns.ar_fold_out[parity].data(), bytes);
    } else {
      NodeState& part = node_state_of(v - 1);
      // The source is the user's recv buffer: drain the origin counter so
      // the buffer is reusable the moment the operation returns.
      lapi::Counter fold_org(*t.eng, "ar.fold_org@" + std::to_string(t.rank));
      co_await my_ep.put(master_ep(v - 1), part.ar_fold_out[parity].data(),
                         recv, bytes, part.ar_fold_out_arr.get(), &fold_org);
      co_await my_ep.wait_cntr(fold_org, 1);
    }
  }

  // SMP broadcast of the global result to the local tasks.
  co_await smp_bcast_chunk(t, 0, recv, recv, bytes, nullptr);
}

sim::CoTask Communicator::allreduce_pipelined(machine::TaskCtx& t,
                                              const void* send, void* recv,
                                              std::size_t count,
                                              coll::Dtype d, coll::RedOp op) {
  obs::Span span(*t.obs, t.rank, "allreduce.pipeline");
  chk::StageScope stage(t.chk, "allreduce.pipeline");
  // Reduce to rank 0 and broadcast from rank 0 run concurrently on every
  // task; at rank 0 the broadcast consumes chunks as the reduce completes
  // them (Fig. 5's four-stage pipeline).
  std::size_t bytes = count * coll::dtype_size(d);
  coll::Embedding emb =
      coll::embed(*t.topo, 0,
                  decide(coll::CollKind::allreduce, bytes).internode,
                  cfg_.intranode_tree);

  lapi::Counter chunk_done(*t.eng, "ar.chunk_done@" + std::to_string(t.rank));
  lapi::Counter* gate = t.rank == 0 ? &chunk_done : nullptr;

  auto reduce_done = detail::spawn_joined(
      *t.eng, reduce_impl(t, send, recv, count, d, op, /*root=*/0, gate));
  auto bcast_done = detail::spawn_joined(
      *t.eng,
      bcast_large(t, recv, bytes, emb, cfg_.reduce_chunk, gate));
  co_await reduce_done->wait();
  co_await bcast_done->wait();
}

}  // namespace srm
