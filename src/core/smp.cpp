// Shared-memory (intra-node) primitives of SRM (paper §2.2).
#include <cstring>

#include "core/communicator.hpp"
#include "core/detail.hpp"

namespace srm {

// ---------------------------------------------------------------------------
// SMP broadcast: flat, two buffers, READY flags (Fig. 3)
// ---------------------------------------------------------------------------

sim::CoTask Communicator::smp_bcast_chunk(machine::TaskCtx& t,
                                          int leader_local, const void* src,
                                          void* dst, std::size_t len,
                                          const std::byte* shared_src) {
  obs::Span span(*t.obs, t.rank, "smp.bcast_chunk");
  chk::StageScope stage(t.chk, "smp.bcast_chunk");
  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  SRM_CHECK(len <= cfg_.smp_buf_bytes);
  if (cfg_.smp_bcast_tree && shared_src == nullptr) {
    co_await smp_bcast_chunk_tree(t, leader_local, src, dst, len);
    co_return;
  }
  std::size_t slot = cfg_.use_two_buffers ? rs.smp_bc_seq % 2 : 0;
  rs.smp_bc_seq++;
  shm::FlagArray& ready = *ns.bc_ready[slot];
  const std::byte* read_buf =
      shared_src != nullptr ? shared_src : ns.bc_buf[slot].data();

  if (ns.nlocal == 1) {
    // Single task per node: no local fan-out; only drain a landed chunk.
    if (shared_src != nullptr && dst != nullptr) {
      co_await t.nd->mem.charge_copy(static_cast<double>(len));
      std::memcpy(dst, read_buf, len);
      chk::note_read(t.chk, read_buf, len);
    }
    co_return;
  }

  if (t.local() == leader_local) {
    // Acquire the flag set: every consumer must have cleared its flag.
    for (int l = 0; l < ns.nlocal; ++l) {
      if (l == leader_local) continue;
      co_await ready[l].await_value(0, &t.chk);
    }
    if (shared_src == nullptr) {
      // Copy the chunk into the shared buffer (skipped when a LAPI put
      // already deposited it in shared memory — the zero-copy case).
      co_await t.nd->mem.charge_copy(static_cast<double>(len));
      std::memcpy(ns.bc_buf[slot].data(), src, len);
      chk::note_read(t.chk, src, len);
      chk::note_write(t.chk, ns.bc_buf[slot].data(), len);
    }
    // Set READY for every other process (one cache-line store each).
    co_await t.delay(t.P->mem.flag_poll *
                     static_cast<sim::Duration>(ns.nlocal - 1));
    for (int l = 0; l < ns.nlocal; ++l) {
      if (l == leader_local) continue;
      ready[l].set(1, &t.chk);
    }
    if (shared_src != nullptr && dst != nullptr) {
      // The leader consumes too: its user copy happens after releasing the
      // other processes so all copies overlap (they contend on the bus).
      co_await t.nd->mem.charge_copy(static_cast<double>(len));
      std::memcpy(dst, read_buf, len);
      chk::note_read(t.chk, read_buf, len);
    }
  } else {
    co_await ready[t.local()].await_value(1, &t.chk);
    // The staging buffer is dirty in the leader's cache when the leader
    // filled it; a DMA-landed chunk (shared_src) is memory-resident.
    co_await t.nd->mem.charge_copy_scaled(
        static_cast<double>(len),
        t.P->topo.copy_factor(leader_local, t.local(),
                              /*dirty=*/shared_src == nullptr));
    std::memcpy(dst, read_buf, len);
    chk::note_read(t.chk, read_buf, len);
    ready[t.local()].set(0, &t.chk);
  }
}

sim::CoTask Communicator::smp_bcast_chunk_tree(machine::TaskCtx& t,
                                               int leader_local,
                                               const void* src, void* dst,
                                               std::size_t len) {
  // Ablation variant (§2.2): same shared buffer, but READY flags cascade
  // down a binomial tree — each process signals its tree children only after
  // finishing its own copy, serializing levels instead of letting the SMP
  // hardware arbitrate concurrent readers.
  chk::StageScope stage(t.chk, "smp.bcast_tree");
  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  std::size_t slot = cfg_.use_two_buffers ? rs.smp_bc_seq % 2 : 0;
  rs.smp_bc_seq++;
  shm::FlagArray& ready = *ns.bc_ready[slot];
  std::byte* sbuf = ns.bc_buf[slot].data();
  coll::Tree tree =
      coll::binomial_tree(ns.nlocal, leader_local);

  if (t.local() == leader_local) {
    for (int l = 0; l < ns.nlocal; ++l) {
      if (l == leader_local) continue;
      co_await ready[l].await_value(0, &t.chk);
    }
    co_await t.nd->mem.charge_copy(static_cast<double>(len));
    std::memcpy(sbuf, src, len);
    chk::note_write(t.chk, sbuf, len);
  } else {
    co_await ready[t.local()].await_value(1, &t.chk);
    co_await t.nd->mem.charge_copy_scaled(
        static_cast<double>(len),
        t.P->topo.copy_factor(leader_local, t.local(), /*dirty=*/true));
    std::memcpy(dst, sbuf, len);
    chk::note_read(t.chk, sbuf, len);
  }
  // Signal own children, then (non-leaders) mark own flag consumed.
  const auto& kids = tree.children[static_cast<std::size_t>(t.local())];
  if (!kids.empty()) {
    co_await t.delay(t.P->mem.flag_poll * kids.size());
  }
  for (int c : kids) ready[c].set(1, &t.chk);
  if (t.local() != leader_local) ready[t.local()].set(0, &t.chk);
}

sim::CoTask Communicator::smp_slice_chunk(machine::TaskCtx& t,
                                          int leader_local,
                                          const std::byte* fill_src,
                                          const std::byte* shared_src,
                                          std::size_t chunk_off,
                                          std::size_t len, std::size_t my_lo,
                                          std::size_t my_hi,
                                          std::byte* my_dst) {
  chk::StageScope stage(t.chk, "smp.slice_chunk");
  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  SRM_CHECK(len <= cfg_.smp_buf_bytes);
  std::size_t slot = cfg_.use_two_buffers ? rs.smp_bc_seq % 2 : 0;
  rs.smp_bc_seq++;
  shm::FlagArray& ready = *ns.bc_ready[slot];
  const std::byte* read_buf =
      shared_src != nullptr ? shared_src : ns.bc_buf[slot].data();

  std::size_t lo = std::max(my_lo, chunk_off);
  std::size_t hi = std::min(my_hi, chunk_off + len);

  auto copy_slice = [&]() -> sim::CoTask {
    if (lo < hi && my_dst != nullptr) {
      co_await t.nd->mem.charge_copy_scaled(
          static_cast<double>(hi - lo),
          t.P->topo.copy_factor(leader_local, t.local(),
                                /*dirty=*/shared_src == nullptr));
      std::memcpy(my_dst + (lo - my_lo), read_buf + (lo - chunk_off),
                  hi - lo);
      chk::note_read(t.chk, read_buf + (lo - chunk_off), hi - lo);
    }
  };

  if (ns.nlocal == 1) {
    // Single task per node: no shared staging needed — take the slice
    // straight from wherever the data lives.
    if (shared_src == nullptr) read_buf = fill_src;
    if (read_buf != nullptr) co_await copy_slice();
    co_return;
  }

  if (t.local() == leader_local) {
    for (int l = 0; l < ns.nlocal; ++l) {
      if (l == leader_local) continue;
      co_await ready[l].await_value(0, &t.chk);
    }
    if (shared_src == nullptr && fill_src != nullptr) {
      co_await t.nd->mem.charge_copy(static_cast<double>(len));
      std::memcpy(ns.bc_buf[slot].data(), fill_src, len);
      chk::note_write(t.chk, ns.bc_buf[slot].data(), len);
    }
    co_await t.delay(t.P->mem.flag_poll *
                     static_cast<sim::Duration>(ns.nlocal - 1));
    for (int l = 0; l < ns.nlocal; ++l) {
      if (l == leader_local) continue;
      ready[l].set(1, &t.chk);
    }
    co_await copy_slice();
  } else {
    co_await ready[t.local()].await_value(1, &t.chk);
    co_await copy_slice();
    ready[t.local()].set(0, &t.chk);
  }
}

// ---------------------------------------------------------------------------
// SMP reduce: binomial tree, chunk slots, published/consumed counters (Fig. 2)
// ---------------------------------------------------------------------------

sim::CoTask Communicator::smp_reduce_participant(machine::TaskCtx& t,
                                                 const coll::Tree& tree,
                                                 const void* send,
                                                 std::size_t count,
                                                 coll::Dtype d,
                                                 coll::RedOp op) {
  obs::Span span(*t.obs, t.rank, "smp.reduce");
  chk::StageScope stage(t.chk, "smp.reduce");
  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  int me = t.local();
  SRM_CHECK(tree.parent[static_cast<std::size_t>(me)] != -1);
  std::size_t esize = coll::dtype_size(d);
  std::size_t chunk_elems = cfg_.reduce_chunk / esize;
  std::size_t nchunks = detail::chunk_count(count, chunk_elems);
  const auto& kids = tree.children[static_cast<std::size_t>(me)];

  for (std::size_t c = 0; c < nchunks; ++c) {
    std::size_t off = c * chunk_elems;
    std::size_t elems = std::min(chunk_elems, count - off);
    std::uint64_t abs = rs.smp_red_base[static_cast<std::size_t>(me)] + c;
    // Slot reuse: chunk `abs` shares a slot with chunk `abs - 2`; wait until
    // whoever was leading that operation consumed it (per-slot count).
    if (abs >= 2) {
      co_await (*ns.red_consumed[abs % 2])[me].await_at_least(abs / 2,
                                                              &t.chk);
    }
    std::byte* slot = ns.red_slot[abs % 2][static_cast<std::size_t>(me)].data();
    const std::byte* mine =
        static_cast<const std::byte*>(send) + off * esize;
    double bytes = static_cast<double>(elems * esize);

    if (kids.empty()) {
      // Leaf: the one memory copy of Fig. 2.
      co_await t.nd->mem.charge_copy(bytes);
      std::memcpy(slot, mine, elems * esize);
      chk::note_write(t.chk, slot, elems * esize);
    } else {
      // Interior: fuse own data with the first child straight into the slot,
      // then fold the remaining children in place.
      bool first = true;
      for (int kid : kids) {
        std::uint64_t kid_abs =
            rs.smp_red_base[static_cast<std::size_t>(kid)] + c;
        co_await (*ns.red_published)[kid].await_at_least(kid_abs + 1,
                                                         &t.chk);
        const std::byte* kslot =
            ns.red_slot[kid_abs % 2][static_cast<std::size_t>(kid)].data();
        // The child just wrote its slot: a dirty pull across its distance.
        co_await t.nd->mem.charge_combine_scaled(
            bytes, t.P->topo.copy_factor(kid, me, /*dirty=*/true));
        if (first) {
          coll::combine_out(op, d, slot, mine, kslot, elems);
          first = false;
        } else {
          coll::combine(op, d, slot, kslot, elems);
        }
        chk::note_read(t.chk, kslot, elems * esize);
        chk::note_write(t.chk, slot, elems * esize);
        (*ns.red_consumed[kid_abs % 2])[kid].add(1, &t.chk);
      }
    }
    (*ns.red_published)[me].add(1, &t.chk);
  }
}

sim::CoTask Communicator::smp_reduce_chunk_leader(
    machine::TaskCtx& t, const coll::Tree& tree, const void* send, void* dst,
    std::size_t c, std::size_t elem_off, std::size_t elems, coll::Dtype d,
    coll::RedOp op) {
  obs::Span span(*t.obs, t.rank, "smp.reduce");
  chk::StageScope stage(t.chk, "smp.reduce_leader");
  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  int me = t.local();
  SRM_CHECK(tree.root == me);
  std::size_t esize = coll::dtype_size(d);
  const std::byte* mine =
      static_cast<const std::byte*>(send) + elem_off * esize;
  double bytes = static_cast<double>(elems * esize);
  const auto& kids = tree.children[static_cast<std::size_t>(me)];

  if (kids.empty()) {
    // Single task on the node: the node result is just our own data.
    co_await t.nd->mem.charge_copy(bytes);
    std::memcpy(dst, mine, elems * esize);
    chk::note_write(t.chk, dst, elems * esize);
    co_return;
  }
  bool first = true;
  for (int kid : kids) {
    std::uint64_t kid_abs = rs.smp_red_base[static_cast<std::size_t>(kid)] + c;
    co_await (*ns.red_published)[kid].await_at_least(kid_abs + 1, &t.chk);
    const std::byte* kslot =
        ns.red_slot[kid_abs % 2][static_cast<std::size_t>(kid)].data();
    co_await t.nd->mem.charge_combine_scaled(
        bytes, t.P->topo.copy_factor(kid, me, /*dirty=*/true));
    if (first) {
      // The last combine writes directly to the destination — the paper's
      // "result ... directly in the destination rather than an intermediate
      // buffer" optimization.
      coll::combine_out(op, d, dst, mine, kslot, elems);
      first = false;
    } else {
      coll::combine(op, d, dst, kslot, elems);
    }
    chk::note_read(t.chk, kslot, elems * esize);
    chk::note_write(t.chk, dst, elems * esize);
    (*ns.red_consumed[kid_abs % 2])[kid].add(1, &t.chk);
  }
}

void Communicator::finish_reduce_bookkeeping(machine::TaskCtx& t,
                                             const coll::Embedding& emb,
                                             std::size_t nchunks) {
  RankState& rs = rank_state(t);
  int my_node = t.node();
  int leader_local =
      t.topo->local_of(emb.leader[static_cast<std::size_t>(my_node)]);
  for (int l = 0; l < t.nlocal(); ++l) {
    if (l != leader_local) {
      rs.smp_red_base[static_cast<std::size_t>(l)] += nchunks;
    }
  }
  int parent = emb.internode.parent[static_cast<std::size_t>(my_node)];
  if (parent != -1) {
    rs.red_sent[static_cast<std::size_t>(parent)] += nchunks;
  }
  for (int child :
       emb.internode.children[static_cast<std::size_t>(my_node)]) {
    rs.red_recvd[static_cast<std::size_t>(child)] += nchunks;
  }
}

// ---------------------------------------------------------------------------
// SMP barrier: flat flags, one per process, master gathers then resets (§2.2)
// ---------------------------------------------------------------------------

sim::CoTask Communicator::smp_barrier_enter(machine::TaskCtx& t) {
  obs::Span span(*t.obs, t.rank, "barrier.smp");
  chk::StageScope stage(t.chk, "barrier.smp");
  NodeState& ns = node_state(t);
  shm::FlagArray& flags = *ns.bar_flag;
  if (t.local() == 0) {
    for (int l = 1; l < ns.nlocal; ++l) {
      co_await t.delay(t.P->mem.flag_poll);  // read one more cache line
      co_await flags[l].await_value(1, &t.chk);
    }
  } else {
    flags[t.local()].set(1, &t.chk);
    co_await flags[t.local()].await_value(0, &t.chk);
  }
}

void Communicator::smp_barrier_release(machine::TaskCtx& t) {
  NodeState& ns = node_state(t);
  SRM_CHECK(t.local() == 0);
  for (int l = 1; l < ns.nlocal; ++l) {
    (*ns.bar_flag)[l].set(0, &t.chk);
  }
}

sim::CoTask Communicator::smp_barrier(machine::TaskCtx& t) {
  co_await smp_barrier_enter(t);
  if (t.local() == 0) smp_barrier_release(t);
}

}  // namespace srm
