// SrmConfig: every protocol switch point and tuning knob from the paper.
#pragma once

#include <cstddef>

#include "coll/decision.hpp"
#include "coll/tree.hpp"

namespace srm {

struct SrmConfig {
  /// Algorithm-selection table. Empty (the default) means the Communicator
  /// resolves one at construction: the SRM_DECISIONS env var if set (a tuner
  /// JSON artifact), else the builtin table for the machine profile, with any
  /// legacy crossover knobs below that deviate from their defaults re-imposed
  /// as overrides — so code that still sets `bcast_small_max` or
  /// `allreduce_rd_max` or `single_copy_min` keeps its exact old semantics.
  /// A non-empty table here wins over everything (tests / the tuner forcing
  /// one candidate path).
  coll::DecisionTable decisions;
  /// Size of each of the two shared-memory broadcast buffers A/B (Fig. 3).
  /// Must hold the largest single-shot small-protocol message.
  std::size_t smp_buf_bytes = 64 * 1024;

  /// Broadcast protocol switch (§2.4): messages up to this size flow through
  /// the shared buffers; larger ones use the zero-intermediate-copy protocol.
  /// Deprecated in favor of `decisions` — a non-default value is honored as
  /// an override of the resolved table's bcast rows.
  std::size_t bcast_small_max = 64 * 1024;

  /// Within the small protocol, messages in (pipe_min, pipe_max] are split
  /// into pipe_chunk pieces and pipelined over the two buffers (§2.4:
  /// "messages larger than 8 KB and smaller than 32 KB are split into 4 KB
  /// chunks").
  std::size_t bcast_pipe_min = 8 * 1024;
  std::size_t bcast_pipe_max = 32 * 1024;
  std::size_t bcast_pipe_chunk = 4 * 1024;

  /// Chunk size of the large-message broadcast / SMP publish pipeline.
  std::size_t bcast_net_chunk = 64 * 1024;

  /// Reduce pipeline chunk (intra-node slots and inter-node landing zones).
  std::size_t reduce_chunk = 16 * 1024;

  /// Allreduce: recursive doubling between node leaders up to this size;
  /// pipelined reduce+broadcast beyond it (§2.4, Fig. 5). Deprecated in
  /// favor of `decisions` — a non-default value overrides the allreduce
  /// rows (it also still sizes the ar_buf exchange slots and the small-op
  /// interrupt-management band).
  std::size_t allreduce_rd_max = 16 * 1024;

  /// Inter-node tree (paper: binomial performed best on the SP). Deprecated
  /// in favor of `decisions` — a non-default value overrides every row's
  /// internode column.
  coll::TreeKind internode_tree = coll::TreeKind::binomial;
  /// Intra-node reduce tree.
  coll::TreeKind intranode_tree = coll::TreeKind::binomial;

  /// Single-copy cross-mapped intra-node protocols (shm::Mapping): operations
  /// moving at least single_copy_min bytes export user-buffer windows and
  /// copy/combine directly across address spaces over the topology tree
  /// (machine::TopologyParams), skipping the staged Fig. 2/3 buffers. Below
  /// the crossover the staged path still wins (publish/attach costs dominate
  /// tiny messages), so both switches matter. Off by default: the
  /// paper-faithful 2-copy path is the baseline and stays ablatable.
  /// `single_copy` is the master enable: the mapped column of the decision
  /// table only takes effect when it is set. `single_copy_min` is deprecated
  /// in favor of `decisions` — a non-default value overrides every row's
  /// mapped column with (bytes >= single_copy_min).
  bool single_copy = false;
  std::size_t single_copy_min = 16 * 1024;

  /// Ablation: use a single shared buffer instead of the A/B pair
  /// (disables the two-stage pipeline of Fig. 3).
  bool use_two_buffers = true;

  /// Ablation: tree-structured shared-memory broadcast instead of the flat
  /// two-buffer algorithm the paper found fastest (§2.2).
  bool smp_bcast_tree = false;

  /// Disable interrupts on entry to small-message collectives and re-enable
  /// on exit (§2.3). Turning this off leaves interrupts always enabled.
  bool manage_interrupts = true;
};

}  // namespace srm
