// SRM reduce (paper §2.4): a chunked pipeline that overlaps the intra-node
// shared-memory combine (Fig. 2), the inter-node puts between node leaders,
// and the operator execution.
//
// Per chunk, on every node: local tasks feed the binomial shared-memory tree
// (smp.cpp); the leader combines its own data, its local children's slots,
// and the landing zones filled by its inter-node children's puts; non-root
// leaders then put the node result to their parent's landing zone — two
// landing slots per child with credit counters, two output slots guarded by
// the put origin counter, so up to two chunks are in flight on every edge.
#include <cstring>

#include "core/communicator.hpp"
#include "core/detail.hpp"

namespace srm {

sim::CoTask Communicator::reduce_impl(machine::TaskCtx& t, const void* send,
                                      void* recv, std::size_t count,
                                      coll::Dtype d, coll::RedOp op, int root,
                                      lapi::Counter* chunk_done) {
  obs::Span span(*t.obs, t.rank, "reduce.pipeline");
  chk::StageScope stage(t.chk, "reduce.pipeline");
  std::size_t esize = coll::dtype_size(d);
  coll::Decision dec = decide(coll::CollKind::reduce, count * esize);
  coll::Embedding emb =
      coll::embed(*t.topo, root, dec.internode, cfg_.intranode_tree);
  NodeState& ns = node_state(t);
  RankState& rs = rank_state(t);
  int my_node = t.node();
  int leader = emb.leader[static_cast<std::size_t>(my_node)];
  // Single-copy path: leaves of the topology tree export their send buffers
  // as windows and the interior combines straight out of them — no staging
  // copies at all, and every cache-domain boundary crossed exactly once.
  bool mapped = mapped_on(coll::CollKind::reduce, count * esize);
  coll::Tree itree =
      mapped ? coll::topo_tree(t.P->topo, t.nlocal(), t.topo->local_of(leader),
                               /*binomial=*/true)
             : coll::build_tree(cfg_.intranode_tree, t.nlocal(),
                                t.topo->local_of(leader));

  std::size_t chunk_elems = cfg_.reduce_chunk / esize;
  std::size_t nchunks = detail::chunk_count(count, chunk_elems);

  if (t.rank != leader) {
    if (mapped) {
      co_await smp_reduce_participant_mapped(t, itree, send, count, d, op);
      finish_reduce_bookkeeping_mapped(t, emb, itree, nchunks);
    } else {
      co_await smp_reduce_participant(t, itree, send, count, d, op);
      finish_reduce_bookkeeping(t, emb, nchunks);
    }
    co_return;
  }

  lapi::Endpoint& my_ep = ep(t.rank);
  int parent = emb.internode.parent[static_cast<std::size_t>(my_node)];
  const auto& kids = emb.internode.children[static_cast<std::size_t>(my_node)];
  bool is_root_node = parent == -1;
  std::uint64_t out_inflight = 0;

  // Mapped path: attach the leader's leaf-children windows once, up front —
  // the chunk loop then reads them with no per-chunk handshake.
  std::vector<shm::Mapping::Window> wins;
  if (mapped) co_await attach_leaf_windows(t, itree, wins);

  for (std::size_t c = 0; c < nchunks; ++c) {
    std::size_t elem_off = c * chunk_elems;
    std::size_t elems = std::min(chunk_elems, count - elem_off);
    double bytes = static_cast<double>(elems * esize);

    // Destination of this chunk's node+subtree result.
    std::byte* dst;
    if (is_root_node) {
      dst = static_cast<std::byte*>(recv) + elem_off * esize;
    } else {
      // Output slot reuse: wait for the put of chunk c-2 to have left.
      if (out_inflight == 2) {
        co_await my_ep.wait_cntr(*ns.red_out_org, 1);
        --out_inflight;
      }
      dst = ns.red_out[c % 2].data();
    }

    // Intra-node combine straight into dst.
    if (mapped) {
      co_await smp_reduce_chunk_leader_mapped(t, itree, send, dst, c,
                                              elem_off, elems, d, op, wins);
    } else {
      co_await smp_reduce_chunk_leader(t, itree, send, dst, c, elem_off,
                                       elems, d, op);
    }

    // Fold in the inter-node children's landing zones as they arrive.
    for (int child : kids) {
      auto ci = static_cast<std::size_t>(child);
      co_await my_ep.wait_cntr(*ns.red_arrived[ci], 1);
      std::size_t lslot = (rs.red_recvd[ci] + c) % 2;
      co_await t.nd->mem.charge_combine(bytes);
      chk::note_read(t.chk, ns.red_land[ci][lslot].data(), elems * esize);
      chk::note_write(t.chk, dst, elems * esize);
      coll::combine(op, d, dst, ns.red_land[ci][lslot].data(), elems);
      // Return the landing-slot credit to the child.
      NodeState& cs = *nodes_[ci];
      co_await my_ep.put_signal(ep(emb.leader[ci]), *cs.red_free);
    }

    if (is_root_node) {
      if (chunk_done != nullptr) chunk_done->bump();
    } else {
      // Ship the node result up: consume a credit, pick the landing slot by
      // the per-link sequence, and let the origin counter guard our slot.
      auto pi = static_cast<std::size_t>(parent);
      NodeState& ps = *nodes_[pi];
      co_await my_ep.wait_cntr(*ns.red_free, 1);
      std::size_t lslot = (rs.red_sent[pi] + c) % 2;
      co_await my_ep.put(
          ep(emb.leader[pi]),
          ps.red_land[static_cast<std::size_t>(my_node)][lslot].data(), dst,
          elems * esize,
          ps.red_arrived[static_cast<std::size_t>(my_node)].get(),
          ns.red_out_org.get());
      ++out_inflight;
    }
  }

  // Drain outstanding origin-counter bumps so the output slots are clean for
  // the next operation.
  if (out_inflight > 0) {
    co_await my_ep.wait_cntr(*ns.red_out_org, out_inflight);
  }
  if (mapped) {
    detach_leaf_windows(t, itree);
    finish_reduce_bookkeeping_mapped(t, emb, itree, nchunks);
  } else {
    finish_reduce_bookkeeping(t, emb, nchunks);
  }
}

}  // namespace srm
