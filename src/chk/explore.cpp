// Explorer implementation: one fresh cluster per seed, randomized event
// tie-break, jittered machine constants, the full eight-operation sequence,
// element-exact payload verification, and checker report collection.
#include "chk/explore.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

#include "core/communicator.hpp"
#include "mpi/comm.hpp"
#include "util/rng.hpp"

namespace srm::chk {
namespace {

constexpr std::size_t kMaxErrors = 64;  // per result, across all seeds

/// Deterministic payload: distinct per (rank, op index, element).
double value(int rank, int k, std::size_t i) {
  return (rank % 13) + (k % 7) * 0.5 + static_cast<double>(i % 11);
}

struct Op {
  enum Kind {
    barrier,
    bcast,
    reduce,
    allreduce,
    scatter,
    gather,
    allgather,
    reduce_scatter
  } kind;
  std::size_t count;  // bytes for bcast, f64 elements otherwise
  int root;
};

/// Fixed sequence: every operation, at sizes straddling the SRM protocol
/// switches (small/large bcast, one-chunk/pipelined reduce, recursive-
/// doubling/pipelined allreduce), with the root moving between nodes.
std::vector<Op> make_plan(int nranks) {
  int last = nranks - 1;
  return {
      {Op::barrier, 0, 0},
      {Op::bcast, 2048, 0},          // small path, one chunk
      {Op::bcast, 12000, last},      // small path, multiple chunks
      {Op::bcast, 80000, 0},         // large path (address exchange)
      {Op::reduce, 900, 0},          // single pipeline chunk
      {Op::reduce, 5000, last},      // multi-chunk pipeline
      {Op::allreduce, 512, 0},       // 4 KB: recursive doubling
      {Op::allreduce, 6000, 0},      // 48 KB: four-stage pipeline
      {Op::scatter, 256, 0},
      {Op::gather, 256, last},
      {Op::allgather, 128, 0},
      {Op::reduce_scatter, 200, 0},
      {Op::barrier, 0, 0},
  };
}

/// Scale a duration by @p f, keeping it positive.
sim::Duration scaled(sim::Duration d, double f) {
  auto v = static_cast<sim::Duration>(static_cast<double>(d) * f);
  return v == 0 ? sim::Duration{1} : v;
}

/// Perturb the timing constants that decide which events *coincide*.
void jitter_params(machine::MachineParams& p, std::uint64_t seed) {
  util::SplitMix64 rng(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  auto f = [&rng] { return 0.6 + 1.1 * rng.next_double(); };
  p.mem.flag_propagation = scaled(p.mem.flag_propagation, f());
  p.mem.flag_poll = scaled(p.mem.flag_poll, f());
  p.net.latency = scaled(p.net.latency, f());
  p.net.gap = scaled(p.net.gap, f());
  p.lapi.poll_dispatch = scaled(p.lapi.poll_dispatch, f());
  p.lapi.call_overhead = scaled(p.lapi.call_overhead, f());
}

constexpr std::size_t kMaxTrace = 160;  // failing-run trace lines kept

std::string format_event(const TraceEvent& ev) {
  std::ostringstream os;
  switch (ev.kind) {
    case TraceEvent::Kind::release:
      os << "a" << ev.actor << " release";
      break;
    case TraceEvent::Kind::acquire:
      os << "a" << ev.actor << " acquire";
      break;
    case TraceEvent::Kind::fork:
      os << "a" << ev.actor << " fork msg#" << ev.msg;
      break;
    case TraceEvent::Kind::join:
      os << "nic(origin a" << ev.actor << ") join msg#" << ev.msg;
      break;
    case TraceEvent::Kind::acquire_msg:
      os << "a" << ev.actor << " recv msg#" << ev.msg;
      break;
    case TraceEvent::Kind::read:
    case TraceEvent::Kind::write:
      os << (ev.remote ? "put(a" : "a") << ev.actor << (ev.remote ? ") " : " ")
         << (ev.kind == TraceEvent::Kind::write ? "write" : "read") << " ["
         << ev.lo << "," << ev.hi << ")";
      break;
  }
  if (!ev.label.empty()) os << " '" << ev.label << "'";
  return os.str();
}

struct Verifier {
  std::uint64_t seed;
  std::vector<std::string>* errors;

  void fail(int k, int rank, const std::string& what) const {
    if (errors->size() >= kMaxErrors) return;
    std::ostringstream os;
    os << "seed " << seed << " op " << k << " rank " << rank << ": " << what;
    errors->push_back(os.str());
  }

  void expect_eq(int k, int rank, std::size_t i, double got,
                 double want) const {
    if (got == want) return;
    std::ostringstream os;
    os << "element " << i << " = " << got << ", expected " << want;
    fail(k, rank, os.str());
  }
};

sim::CoTask run_plan(machine::TaskCtx& t, coll::Collectives& coll,
                     const std::vector<Op>& plan, const Verifier v) {
  int n = t.nranks();
  for (int k = 0; k < static_cast<int>(plan.size()); ++k) {
    const Op& op = plan[static_cast<std::size_t>(k)];
    switch (op.kind) {
      case Op::barrier:
        co_await coll.barrier(t);
        break;
      case Op::bcast: {
        std::vector<char> buf(op.count, 0);
        if (t.rank == op.root) {
          for (std::size_t i = 0; i < op.count; ++i) {
            buf[i] = static_cast<char>((i * 31 + static_cast<std::size_t>(k)) %
                                       127);
          }
        }
        co_await coll.bcast(t, coll::Buf::bytes(buf.data(), op.count),
                            op.root);
        for (std::size_t i = 0; i < op.count; ++i) {
          auto want = static_cast<char>(
              (i * 31 + static_cast<std::size_t>(k)) % 127);
          if (buf[i] != want) {
            v.fail(k, t.rank,
                   "bcast byte " + std::to_string(i) + " corrupt");
            break;
          }
        }
        break;
      }
      case Op::reduce:
      case Op::allreduce: {
        std::vector<double> in(op.count), out(op.count, -1.0);
        for (std::size_t i = 0; i < op.count; ++i) in[i] = value(t.rank, k, i);
        if (op.kind == Op::reduce) {
          co_await coll.reduce(t, coll::of(in.data(), op.count),
                               coll::of(out.data(), op.count),
                               coll::RedOp::sum, op.root);
        } else {
          co_await coll.allreduce(t, coll::of(in.data(), op.count),
                                  coll::of(out.data(), op.count),
                                  coll::RedOp::sum);
        }
        if (op.kind == Op::allreduce || t.rank == op.root) {
          for (std::size_t i = 0; i < op.count; ++i) {
            double want = 0.0;
            for (int r = 0; r < n; ++r) want += value(r, k, i);
            if (out[i] != want) {
              v.expect_eq(k, t.rank, i, out[i], want);
              break;
            }
          }
        }
        break;
      }
      case Op::scatter: {
        std::vector<double> send;
        if (t.rank == op.root) {
          send.resize(op.count * static_cast<std::size_t>(n));
          for (int r = 0; r < n; ++r) {
            for (std::size_t i = 0; i < op.count; ++i) {
              send[static_cast<std::size_t>(r) * op.count + i] =
                  value(r, k, i);
            }
          }
        }
        std::vector<double> recv(op.count, -1.0);
        co_await coll.scatter(t, coll::of(send.data(), op.count),
                              coll::of(recv.data(), op.count), op.root);
        for (std::size_t i = 0; i < op.count; ++i) {
          if (recv[i] != value(t.rank, k, i)) {
            v.expect_eq(k, t.rank, i, recv[i], value(t.rank, k, i));
            break;
          }
        }
        break;
      }
      case Op::gather:
      case Op::allgather: {
        std::vector<double> mine(op.count);
        for (std::size_t i = 0; i < op.count; ++i) {
          mine[i] = value(t.rank, k, i);
        }
        bool holder = op.kind == Op::allgather || t.rank == op.root;
        std::vector<double> all;
        if (holder) all.assign(op.count * static_cast<std::size_t>(n), -1.0);
        if (op.kind == Op::gather) {
          co_await coll.gather(t, coll::of(mine.data(), op.count),
                               coll::of(all.data(), op.count), op.root);
        } else {
          co_await coll.allgather(t, coll::of(mine.data(), op.count),
                                  coll::of(all.data(), op.count));
        }
        if (holder) {
          for (int r = 0; r < n; ++r) {
            for (std::size_t i = 0; i < op.count; ++i) {
              double got = all[static_cast<std::size_t>(r) * op.count + i];
              if (got != value(r, k, i)) {
                v.expect_eq(k, t.rank, i, got, value(r, k, i));
                r = n;
                break;
              }
            }
          }
        }
        break;
      }
      case Op::reduce_scatter: {
        std::vector<double> in(op.count * static_cast<std::size_t>(n));
        for (std::size_t i = 0; i < in.size(); ++i) {
          in[i] = value(t.rank, k, i);
        }
        std::vector<double> out(op.count, -1.0);
        co_await coll.reduce_scatter(t, coll::of(in.data(), op.count),
                                     coll::of(out.data(), op.count),
                                     coll::RedOp::sum);
        std::size_t base = static_cast<std::size_t>(t.rank) * op.count;
        for (std::size_t i = 0; i < op.count; ++i) {
          double want = 0.0;
          for (int r = 0; r < n; ++r) want += value(r, k, base + i);
          if (out[i] != want) {
            v.expect_eq(k, t.rank, base + i, out[i], want);
            break;
          }
        }
        break;
      }
    }
  }
}

}  // namespace

const char* backend_name(ExploreBackend b) {
  switch (b) {
    case ExploreBackend::srm:
      return "srm";
    case ExploreBackend::mpi_ibm:
      return "mpi/ibm";
    case ExploreBackend::mpi_mpich:
      return "mpi/mpich";
  }
  return "?";
}

ExploreResult explore(const ExploreOptions& opt) {
  ExploreResult res;
  std::uint64_t seed_base = opt.seed_base;
  int schedules = opt.schedules;
  // Reproducer override: SRM_EXPLORE_SEED pins the sweep to one exact seed.
  if (const char* env = std::getenv("SRM_EXPLORE_SEED")) {
    char* end = nullptr;
    std::uint64_t pinned = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      seed_base = pinned;
      schedules = 1;
    }
  }
  for (int s = 0; s < schedules; ++s) {
    std::uint64_t seed = seed_base + static_cast<std::uint64_t>(s);
    std::size_t fails_before =
        res.payload_errors.size() + res.races.size() + res.deadlocks.size();

    machine::ClusterConfig cc;
    cc.nodes = opt.nodes;
    cc.tasks_per_node = opt.tasks_per_node;
    if (opt.jitter) jitter_params(cc.params, seed);

    machine::Cluster cluster(cc);
    cluster.engine().set_tiebreak(sim::TieBreak::random, seed);
    cluster.checker().set_enabled(opt.enable_checker);
    // Record the synchronization trace so a failing seed's interleaving can
    // be printed without a rerun (cleared per seed, kept on first failure).
    cluster.checker().set_trace(opt.enable_checker);

    std::unique_ptr<lapi::Fabric> fabric;
    std::unique_ptr<Communicator> srm_impl;
    std::unique_ptr<minimpi::World> mpi_impl;
    coll::Collectives* coll = nullptr;
    switch (opt.backend) {
      case ExploreBackend::srm:
        fabric = std::make_unique<lapi::Fabric>(cluster);
        srm_impl = std::make_unique<Communicator>(cluster, *fabric);
        coll = srm_impl.get();
        break;
      case ExploreBackend::mpi_ibm:
        mpi_impl = std::make_unique<minimpi::World>(
            cluster, cluster.params().mpi_ibm, "ibm");
        coll = mpi_impl.get();
        break;
      case ExploreBackend::mpi_mpich:
        mpi_impl = std::make_unique<minimpi::World>(
            cluster, cluster.params().mpi_mpich, "mpich");
        coll = mpi_impl.get();
        break;
    }

    auto plan = make_plan(cluster.topology().nranks());
    Verifier v{seed, &res.payload_errors};
    try {
      cluster.run([&](machine::TaskCtx& t) -> sim::CoTask {
        return run_plan(t, *coll, plan, v);
      });
    } catch (const util::CheckError& e) {
      res.deadlocks.push_back("seed " + std::to_string(seed) + ": " +
                              e.what());
    }

    ++res.runs;
    Checker& chk = cluster.checker();
    res.accesses += chk.accesses_checked();
    res.sync_ops += chk.sync_ops();
    for (const RaceReport& r : chk.reports()) {
      if (res.races.size() >= kMaxErrors) break;
      res.races.push_back("seed " + std::to_string(seed) + ": " +
                          r.to_string());
    }

    bool failed = res.payload_errors.size() + res.races.size() +
                      res.deadlocks.size() >
                  fails_before;
    if (failed && res.first_failing_seed == ExploreResult::kNoSeed) {
      res.first_failing_seed = seed;
      const std::vector<TraceEvent>& tr = chk.trace();
      std::size_t from = tr.size() > kMaxTrace ? tr.size() - kMaxTrace : 0;
      for (std::size_t i = from; i < tr.size(); ++i) {
        res.failing_trace.push_back(format_event(tr[i]));
      }
    }
    if (failed && opt.stop_on_failure) break;
  }
  return res;
}

std::string summarize(const ExploreOptions& opt, const ExploreResult& r) {
  std::ostringstream os;
  os << "explore[" << backend_name(opt.backend) << " " << opt.nodes << "x"
     << opt.tasks_per_node << "]: " << r.runs << " schedules, " << r.accesses
     << " accesses checked, " << r.sync_ops << " sync ops, "
     << r.payload_errors.size() << " payload errors, " << r.races.size()
     << " races, " << r.deadlocks.size() << " deadlocks";
  for (const auto& e : r.payload_errors) os << "\n  payload: " << e;
  for (const auto& e : r.races) os << "\n  race: " << e;
  for (const auto& e : r.deadlocks) os << "\n  deadlock: " << e;
  if (r.first_failing_seed != ExploreResult::kNoSeed) {
    os << "\n  first failing seed: " << r.first_failing_seed
       << " (rerun with SRM_EXPLORE_SEED=" << r.first_failing_seed << ")";
    if (!r.failing_trace.empty()) {
      os << "\n  tie-break trace (last " << r.failing_trace.size()
         << " sync events of the failing run):";
      for (const auto& line : r.failing_trace) os << "\n    " << line;
    }
  }
  return os.str();
}

}  // namespace srm::chk
