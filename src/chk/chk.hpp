// srm::chk — a FastTrack-style happens-before checker for the SRM protocols.
//
// The paper's collectives synchronize through hand-rolled primitives: READY
// flags per process per buffer (Fig. 3), published/consumed counters for the
// reduce slots (Fig. 2), and LAPI put/counter credit flow (§3). The checker
// verifies that every access to shared state is ordered by those primitives,
// under *any* schedule the engine produces — including the randomized
// tie-break schedules of the explorer.
//
// Model:
//   - every simulated task (rank) is an actor with a vector clock;
//   - sync objects (SharedFlag, lapi::Counter) carry a SyncVar clock:
//     writers release() into it, observers acquire() from it;
//   - one-sided puts and mini-MPI messages carry a MsgClock snapshot taken
//     at the origin (fork); delivery joins it into the target counter and/or
//     the receiver acquires it;
//   - shm::Segment buffers register as named regions; note_read/note_write
//     record accesses with the actor's clock epoch and current stack of
//     protocol stages.
// Two accesses to overlapping bytes of a region race when neither
// happens-before the other, they come from different actors, and at least
// one is a write. Same-actor accesses are program-ordered; remote writes
// from the same origin are NIC-FIFO-ordered (egress times strictly increase
// per source because gap > 0), so both are exempt.
//
// Everything is gated twice: compile-time (`SRM_CHK=OFF` defines
// SRM_CHK_DISABLED and every hook folds to nothing via kEnabled) and
// runtime (Checker::set_enabled, default off, so production simulations pay
// only a pointer test per hook).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace srm::chk {

#if defined(SRM_CHK_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

using Clock = std::uint64_t;

/// Clock state attached to a synchronization object (flag / counter).
struct SyncVar {
  std::vector<Clock> vc;
};

/// A clock snapshot travelling with a one-sided put or mini-MPI message,
/// plus the origin's protocol-stage stack at issue time (for reports).
struct MsgClock {
  std::vector<Clock> vc;
  int origin = -1;
  std::uint64_t id = 0;  ///< per-checker message number (trace export)
  std::vector<const char*> stages;
};

/// One recorded synchronization/access event, in observation order. A traced
/// run is exactly the raw material srm::mc needs to rebuild the execution's
/// protocol skeleton (mc/extract.hpp) and model-check *other* interleavings
/// of the same synchronization structure.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    release,      ///< writer side of a sync object
    acquire,      ///< observer side of a sync object
    fork,         ///< message snapshot taken at the origin
    join,         ///< message delivered into a sync object (counter bump)
    acquire_msg,  ///< receiver observed the message directly
    read,         ///< region read
    write,        ///< region write
  };
  Kind kind{};
  int actor = -1;             ///< issuing actor (message origin for join)
  const void* obj = nullptr;  ///< SyncVar* (sync ops) or region base (access)
  std::uint64_t msg = 0;      ///< message id (fork/join/acquire_msg/remote)
  std::uint64_t lo = 0;       ///< byte range within the region (accesses)
  std::uint64_t hi = 0;
  bool remote = false;        ///< access carried by an in-flight message
  std::string label;          ///< sync label or region name ("" if unnamed)
};

enum class Access : std::uint8_t { read, write };

/// One detected race: two unordered overlapping accesses, at least one a
/// write, from different actors.
struct RaceReport {
  std::string region;            ///< registered region name
  std::size_t lo = 0, hi = 0;    ///< overlapping byte range within the region
  Access prev_kind = Access::read;
  Access cur_kind = Access::read;
  int prev_actor = -1;
  int cur_actor = -1;
  sim::Time prev_time = 0;
  sim::Time cur_time = 0;
  std::string prev_stage;        ///< "a > b > c" protocol-stage stack
  std::string cur_stage;

  std::string to_string() const;
};

/// The checker: vector clocks per actor, access history per region.
/// Registers with the engine as a BlockedInfoSource so deadlock dumps show
/// each actor's last checker event next to the blocked wait-points.
class Checker : public sim::BlockedInfoSource {
 public:
  Checker(sim::Engine& eng, int nactors);
  ~Checker() override;
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  /// Runtime switch; no events are recorded while disabled. Enabling mid-run
  /// is allowed (clocks keep advancing only from the sync ops seen since).
  void set_enabled(bool on);
  bool enabled() const noexcept { return kEnabled && enabled_; }
  int nactors() const noexcept { return static_cast<int>(actors_.size()); }

  /// Register @p bytes at @p base as a tracked shared region. Accesses to
  /// unregistered memory (private user buffers) are ignored.
  void register_region(const void* base, std::size_t bytes, std::string name);

  // --- happens-before edges -------------------------------------------------
  /// Writer side of a sync object: join the actor's clock into it, then tick.
  void release(int actor, SyncVar& v, const char* what = nullptr);
  /// Observer side: join the sync object's clock into the actor.
  void acquire(int actor, SyncVar& v, const char* what = nullptr);
  /// Snapshot the actor's clock for an in-flight message, then tick.
  MsgClock fork(int actor);
  /// Delivery joins the message clock into a sync object (counter bump).
  void join(SyncVar& v, const MsgClock& m);
  /// Receiver observed the message content directly (mini-MPI recv).
  void acquire_msg(int actor, const MsgClock& m, const char* what = nullptr);

  // --- accesses -------------------------------------------------------------
  /// Local access by @p actor to [p, p+len).
  void access(int actor, const void* p, std::size_t len, Access k);
  /// Access attributed to an in-flight message (put deposit at the target,
  /// or the NIC's read of the source buffer at the origin).
  void access_remote(const MsgClock& m, const void* p, std::size_t len,
                     Access k);

  // --- protocol stages ------------------------------------------------------
  /// Push a stage name onto @p actor's stack; returns a token for the pop.
  /// Not LIFO-restricted: pipelined collectives run two stages concurrently
  /// on one rank, so pops erase by token. Prefer StageScope.
  std::uint64_t stage_push(int actor, const char* name);
  void stage_pop(int actor, std::uint64_t token);

  // --- trace export ---------------------------------------------------------
  /// Record every sync op and checked access into an event trace (off by
  /// default; costs one append per event while on). The trace feeds
  /// mc::skeleton_from_trace.
  void set_trace(bool on) { trace_on_ = kEnabled && on; }
  bool tracing() const noexcept { return trace_on_; }
  const std::vector<TraceEvent>& trace() const noexcept { return trace_; }
  void clear_trace() { trace_.clear(); }

  // --- results --------------------------------------------------------------
  const std::vector<RaceReport>& reports() const noexcept { return reports_; }
  void clear_reports() { reports_.clear(); }
  /// Accesses race-checked so far — lets tests prove a clean report is not
  /// vacuous.
  std::uint64_t accesses_checked() const noexcept { return accesses_; }
  std::uint64_t sync_ops() const noexcept { return sync_ops_; }
  /// Human-readable last event of @p actor ("" if none recorded).
  std::string last_event(int actor) const;

  void describe_blocked(std::ostream& os) const override;

 private:
  struct Record {
    int actor;
    Clock epoch;              // C_actor[actor] at access time
    std::size_t lo, hi;       // byte range within the region
    Access kind;
    sim::Time t;
    std::vector<const char*> stages;
  };
  struct Region {
    std::string name;
    std::size_t size = 0;
    std::vector<Record> recs;
  };
  // Breadcrumbs for deadlock dumps; formatted lazily by last_event().
  struct LastAccess {
    const Region* rg = nullptr;
    std::size_t lo = 0, hi = 0;
    Access k = Access::read;
    sim::Time t = 0;
  };
  struct ActorState {
    std::vector<Clock> vc;
    std::vector<std::pair<std::uint64_t, const char*>> stages;
    LastAccess last_access;
    std::string last_sync;
    sim::Time last_sync_t = 0;
  };

  // Lazily materialize @p actor's clock (own component >= 1, length >=
  // actor+1). Clocks start empty — an eager nactors^2 matrix would dominate
  // memory at mega scale; absent components read as 0.
  std::vector<Clock>& vc_of(int actor);
  Region* find_region(const void* p, std::size_t len, std::size_t& off);
  void check_access(Region& rg, const std::vector<Clock>& vc, int actor,
                    Clock epoch, std::size_t lo, std::size_t hi, Access k,
                    const std::vector<const char*>& stages);
  std::vector<const char*> stage_names(int actor) const;
  void note_last_access(int actor, const Region& rg, std::size_t lo,
                        std::size_t hi, Access k);

  sim::Engine* eng_;
  bool enabled_ = false;
  bool trace_on_ = false;
  std::uint64_t accesses_ = 0;
  std::uint64_t sync_ops_ = 0;
  std::uint64_t next_msg_id_ = 1;
  std::uint64_t next_stage_token_ = 1;
  std::vector<TraceEvent> trace_;
  std::vector<ActorState> actors_;
  std::map<const void*, Region> regions_;  // keyed by base address
  std::vector<RaceReport> reports_;
};

/// Per-rank handle carried in machine::TaskCtx. Null checker (or a disabled
/// one) makes every hook a no-op.
struct TaskChk {
  Checker* checker = nullptr;
  int actor = -1;
};

inline bool on(const TaskChk* c) noexcept {
  return kEnabled && c != nullptr && c->checker != nullptr &&
         c->checker->enabled();
}
inline bool on(const TaskChk& c) noexcept { return on(&c); }

inline void note_read(const TaskChk& c, const void* p, std::size_t n) {
  if (on(c)) c.checker->access(c.actor, p, n, Access::read);
}
inline void note_write(const TaskChk& c, const void* p, std::size_t n) {
  if (on(c)) c.checker->access(c.actor, p, n, Access::write);
}
inline void rel(const TaskChk* c, SyncVar& v, const char* what = nullptr) {
  if (on(c)) c->checker->release(c->actor, v, what);
}
inline void acq(const TaskChk* c, SyncVar& v, const char* what = nullptr) {
  if (on(c)) c->checker->acquire(c->actor, v, what);
}

/// RAII protocol-stage marker. Cheap when the checker is off.
class StageScope {
 public:
  StageScope(const TaskChk& c, const char* name) {
    if (on(c)) {
      chk_ = &c;
      token_ = c.checker->stage_push(c.actor, name);
    }
  }
  ~StageScope() {
    if (chk_ != nullptr) chk_->checker->stage_pop(chk_->actor, token_);
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  const TaskChk* chk_ = nullptr;
  std::uint64_t token_ = 0;
};

}  // namespace srm::chk
