#include "chk/chk.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace srm::chk {
namespace {

constexpr std::size_t kMaxReports = 64;

void join_into(std::vector<Clock>& dst, const std::vector<Clock>& src) {
  if (dst.size() < src.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

std::string join_stages(const std::vector<const char*>& stages) {
  std::string out;
  for (const char* s : stages) {
    if (!out.empty()) out += " > ";
    out += s;
  }
  return out;
}

const char* kind_name(Access k) {
  return k == Access::write ? "write" : "read";
}

}  // namespace

std::string RaceReport::to_string() const {
  std::ostringstream os;
  os << "race on '" << region << "' bytes [" << lo << "," << hi << "): "
     << kind_name(cur_kind) << " by task " << cur_actor << " at t="
     << sim::to_us(cur_time) << "us"
     << (cur_stage.empty() ? "" : " (" + cur_stage + ")")
     << " unordered with " << kind_name(prev_kind) << " by task "
     << prev_actor << " at t=" << sim::to_us(prev_time) << "us"
     << (prev_stage.empty() ? "" : " (" + prev_stage + ")");
  return os.str();
}

Checker::Checker(sim::Engine& eng, int nactors) : eng_(&eng) {
  // Vector clocks materialize lazily (vc_of): an eager nactors x nactors
  // matrix is O(ranks^2) — hopeless at mega scale (256K ranks). An absent
  // component reads as 0 everywhere.
  actors_.resize(static_cast<std::size_t>(nactors));
  eng_->add_blocked_source(this);
}

std::vector<Clock>& Checker::vc_of(int actor) {
  auto& a = actors_[static_cast<std::size_t>(actor)];
  auto self = static_cast<std::size_t>(actor);
  if (a.vc.size() <= self) a.vc.resize(self + 1, 0);
  // Start the actor's own component at 1 so an initial access is not
  // spuriously ordered before every other actor (whose clocks read 0).
  if (a.vc[self] == 0) a.vc[self] = 1;
  return a.vc;
}

Checker::~Checker() { eng_->remove_blocked_source(this); }

void Checker::set_enabled(bool on) { enabled_ = kEnabled && on; }

void Checker::register_region(const void* base, std::size_t bytes,
                              std::string name) {
  if (!kEnabled || bytes == 0) return;
  Region rg;
  rg.name = std::move(name);
  rg.size = bytes;
  regions_[base] = std::move(rg);
}

void Checker::release(int actor, SyncVar& v, const char* what) {
  auto& a = actors_[static_cast<std::size_t>(actor)];
  join_into(v.vc, vc_of(actor));
  ++a.vc[static_cast<std::size_t>(actor)];
  ++sync_ops_;
  if (trace_on_) {
    trace_.push_back(TraceEvent{TraceEvent::Kind::release, actor, &v, 0, 0,
                                0, false, what ? what : ""});
  }
  a.last_sync = std::string("release '") + (what ? what : "<sync>") + "'";
  a.last_sync_t = eng_->now();
}

void Checker::acquire(int actor, SyncVar& v, const char* what) {
  auto& a = actors_[static_cast<std::size_t>(actor)];
  join_into(a.vc, v.vc);
  ++sync_ops_;
  if (trace_on_) {
    trace_.push_back(TraceEvent{TraceEvent::Kind::acquire, actor, &v, 0, 0,
                                0, false, what ? what : ""});
  }
  a.last_sync = std::string("acquire '") + (what ? what : "<sync>") + "'";
  a.last_sync_t = eng_->now();
}

MsgClock Checker::fork(int actor) {
  auto& a = actors_[static_cast<std::size_t>(actor)];
  MsgClock m;
  m.vc = vc_of(actor);
  m.origin = actor;
  m.id = next_msg_id_++;
  m.stages = stage_names(actor);
  ++a.vc[static_cast<std::size_t>(actor)];
  ++sync_ops_;
  if (trace_on_) {
    trace_.push_back(TraceEvent{TraceEvent::Kind::fork, actor, nullptr, m.id,
                                0, 0, false, ""});
  }
  return m;
}

void Checker::join(SyncVar& v, const MsgClock& m) {
  join_into(v.vc, m.vc);
  ++sync_ops_;
  if (trace_on_) {
    trace_.push_back(TraceEvent{TraceEvent::Kind::join, m.origin, &v, m.id,
                                0, 0, true, ""});
  }
}

void Checker::acquire_msg(int actor, const MsgClock& m, const char* what) {
  auto& a = actors_[static_cast<std::size_t>(actor)];
  join_into(a.vc, m.vc);
  ++sync_ops_;
  if (trace_on_) {
    trace_.push_back(TraceEvent{TraceEvent::Kind::acquire_msg, actor, nullptr,
                                m.id, 0, 0, false, what ? what : ""});
  }
  a.last_sync = std::string("recv '") + (what ? what : "<msg>") + "'";
  a.last_sync_t = eng_->now();
}

Checker::Region* Checker::find_region(const void* p, std::size_t len,
                                      std::size_t& off) {
  if (regions_.empty() || len == 0) return nullptr;
  auto it = regions_.upper_bound(p);
  if (it == regions_.begin()) return nullptr;
  --it;
  const char* base = static_cast<const char*>(it->first);
  const char* q = static_cast<const char*>(p);
  if (q < base || q + len > base + it->second.size) return nullptr;
  off = static_cast<std::size_t>(q - base);
  return &it->second;
}

void Checker::check_access(Region& rg, const std::vector<Clock>& vc,
                           int actor, Clock epoch, std::size_t lo,
                           std::size_t hi, Access k,
                           const std::vector<const char*>& stages) {
  ++accesses_;
  std::size_t kept = 0;
  for (Record& r : rg.recs) {
    // Same actor => program order (or NIC FIFO for same-origin puts).
    // Lazy clocks: a component beyond the stored length reads as 0.
    auto ri = static_cast<std::size_t>(r.actor);
    Clock seen = ri < vc.size() ? vc[ri] : 0;
    bool ordered = r.actor == actor || seen >= r.epoch;
    if (!ordered && r.lo < hi && lo < r.hi &&
        (k == Access::write || r.kind == Access::write)) {
      if (reports_.size() < kMaxReports) {
        RaceReport rep;
        rep.region = rg.name;
        rep.lo = std::max(lo, r.lo);
        rep.hi = std::min(hi, r.hi);
        rep.prev_kind = r.kind;
        rep.cur_kind = k;
        rep.prev_actor = r.actor;
        rep.cur_actor = actor;
        rep.prev_time = r.t;
        rep.cur_time = eng_->now();
        rep.prev_stage = join_stages(r.stages);
        rep.cur_stage = join_stages(stages);
        reports_.push_back(std::move(rep));
      }
    }
    // Prune records this access supersedes: the record happens-before us,
    // covers no bytes we do not cover, and any future access racing with it
    // would also race with us (we are a write, or it was only a read).
    bool subsumed = ordered && lo <= r.lo && r.hi <= hi &&
                    (k == Access::write || r.kind == Access::read);
    if (!subsumed) rg.recs[kept++] = std::move(r);
  }
  rg.recs.resize(kept);
  rg.recs.push_back(Record{actor, epoch, lo, hi, k, eng_->now(), stages});
}

void Checker::access(int actor, const void* p, std::size_t len, Access k) {
  if (!enabled()) return;
  std::size_t off = 0;
  Region* rg = find_region(p, len, off);
  if (rg == nullptr) return;
  const auto& vc = vc_of(actor);
  Clock epoch = vc[static_cast<std::size_t>(actor)];
  check_access(*rg, vc, actor, epoch, off, off + len, k, stage_names(actor));
  if (trace_on_) {
    trace_.push_back(TraceEvent{
        k == Access::write ? TraceEvent::Kind::write : TraceEvent::Kind::read,
        actor, static_cast<const char*>(p) - off, 0, off, off + len, false,
        rg->name});
  }
  note_last_access(actor, *rg, off, off + len, k);
}

void Checker::access_remote(const MsgClock& m, const void* p, std::size_t len,
                            Access k) {
  if (!enabled() || m.origin < 0) return;
  std::size_t off = 0;
  Region* rg = find_region(p, len, off);
  if (rg == nullptr) return;
  Clock epoch = m.vc[static_cast<std::size_t>(m.origin)];
  check_access(*rg, m.vc, m.origin, epoch, off, off + len, k, m.stages);
  if (trace_on_) {
    trace_.push_back(TraceEvent{
        k == Access::write ? TraceEvent::Kind::write : TraceEvent::Kind::read,
        m.origin, static_cast<const char*>(p) - off, m.id, off, off + len,
        true, rg->name});
  }
}

std::uint64_t Checker::stage_push(int actor, const char* name) {
  std::uint64_t token = next_stage_token_++;
  actors_[static_cast<std::size_t>(actor)].stages.emplace_back(token, name);
  return token;
}

void Checker::stage_pop(int actor, std::uint64_t token) {
  auto& st = actors_[static_cast<std::size_t>(actor)].stages;
  for (auto it = st.begin(); it != st.end(); ++it) {
    if (it->first == token) {
      st.erase(it);
      return;
    }
  }
}

std::vector<const char*> Checker::stage_names(int actor) const {
  const auto& st = actors_[static_cast<std::size_t>(actor)].stages;
  std::vector<const char*> names;
  names.reserve(st.size());
  for (const auto& [token, name] : st) names.push_back(name);
  return names;
}

void Checker::note_last_access(int actor, const Region& rg, std::size_t lo,
                               std::size_t hi, Access k) {
  auto& a = actors_[static_cast<std::size_t>(actor)];
  a.last_access.rg = &rg;
  a.last_access.lo = lo;
  a.last_access.hi = hi;
  a.last_access.k = k;
  a.last_access.t = eng_->now();
}

std::string Checker::last_event(int actor) const {
  const auto& a = actors_[static_cast<std::size_t>(actor)];
  std::ostringstream os;
  bool any = false;
  if (a.last_access.rg != nullptr) {
    os << kind_name(a.last_access.k) << " '" << a.last_access.rg->name
       << "' [" << a.last_access.lo << "," << a.last_access.hi << ") at t="
       << sim::to_us(a.last_access.t) << "us";
    any = true;
  }
  if (!a.last_sync.empty()) {
    if (any) os << "; ";
    os << a.last_sync << " at t=" << sim::to_us(a.last_sync_t) << "us";
    any = true;
  }
  if (any) {
    std::string stages = join_stages(stage_names(actor));
    if (!stages.empty()) os << "; in " << stages;
  }
  return os.str();
}

void Checker::describe_blocked(std::ostream& os) const {
  if (!enabled()) return;
  for (int a = 0; a < nactors(); ++a) {
    std::string ev = last_event(a);
    if (ev.empty()) continue;
    os << "\n  task " << a << " last chk event: " << ev;
  }
}

}  // namespace srm::chk
