// srm::chk explorer — schedule-perturbation stress driver.
//
// A discrete-event simulator visits exactly one interleaving per run; a
// protocol bug that only fires when two same-timestamp events land in the
// other order stays invisible forever. The explorer re-executes a fixed
// sequence covering all eight collective operations under many *seeded*
// schedules: each run randomizes the engine's same-timestamp tie-break
// (sim::TieBreak::random) and jitters the machine's propagation/latency
// constants, then verifies every payload element-exactly and collects the
// happens-before checker's race reports. A clean result therefore means:
// under N materially different interleavings, every access stayed ordered
// by the protocol's own flags/counters AND every answer was right.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace srm::chk {

/// Which coll::Collectives implementation a run drives.
enum class ExploreBackend { srm, mpi_ibm, mpi_mpich };

const char* backend_name(ExploreBackend b);

struct ExploreOptions {
  ExploreBackend backend = ExploreBackend::srm;
  int nodes = 2;
  int tasks_per_node = 2;
  /// Number of seeded schedules to run (seed_base .. seed_base+schedules-1).
  int schedules = 16;
  std::uint64_t seed_base = 1;
  /// Perturb flag-propagation / network-latency constants per seed (about
  /// 0.6x..1.7x) so timestamp *coincidences* themselves vary across runs.
  bool jitter = true;
  /// Run with the happens-before checker recording (SRM backend: shared
  /// segments + LAPI counters; mini-MPI: message clocks).
  bool enable_checker = true;
  /// Stop at the first failing seed instead of finishing the sweep — the
  /// reproducer mode. The failing seed and its synchronization trace are in
  /// the result either way.
  bool stop_on_failure = false;
};

struct ExploreResult {
  /// first_failing_seed when every seed was clean.
  static constexpr std::uint64_t kNoSeed = ~std::uint64_t{0};

  int runs = 0;                 ///< schedules completed (including failed)
  std::uint64_t accesses = 0;   ///< total checker-verified accesses
  std::uint64_t sync_ops = 0;   ///< total happens-before edges recorded
  std::vector<std::string> payload_errors;  ///< "seed S op K rank R: ..."
  std::vector<std::string> races;           ///< formatted checker reports
  std::vector<std::string> deadlocks;       ///< CheckError messages per seed
  /// The first seed whose run failed (payload, race, or deadlock); rerunning
  /// with seed_base = this and schedules = 1 reproduces it deterministically
  /// (that is exactly what SRM_EXPLORE_SEED does).
  std::uint64_t first_failing_seed = kNoSeed;
  /// The failing run's tie-break trace: the checker's synchronization events
  /// in execution order (capped), for debugging without a rerun.
  std::vector<std::string> failing_trace;

  bool clean() const {
    return payload_errors.empty() && races.empty() && deadlocks.empty();
  }
};

/// Run the full eight-operation sequence under opt.schedules seeded
/// schedules. Never throws for protocol failures — they are returned.
///
/// Environment override: when SRM_EXPLORE_SEED is set, the sweep collapses
/// to exactly that one seed (schedules = 1, seed_base = $SRM_EXPLORE_SEED) —
/// the deterministic replay knob for a failure a previous sweep printed.
ExploreResult explore(const ExploreOptions& opt);

/// Human-readable one-paragraph summary (for test logs and CLI output).
std::string summarize(const ExploreOptions& opt, const ExploreResult& r);

}  // namespace srm::chk
