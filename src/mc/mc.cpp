#include "mc/mc.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "util/check.hpp"

namespace srm::mc {
namespace {

using Mask = std::uint32_t;
constexpr int kMaxThreads = 32;

Mask bit(int t) { return Mask{1} << static_cast<unsigned>(t); }

using VClock = std::vector<std::uint32_t>;

void join_into(VClock& dst, const VClock& src) {
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

/// Mutable execution state, snapshotted per DFS frame. Split in two halves:
/// the *semantic* state (pc / vars / chans — what defines reachability) and
/// the *instrumentation* (vector clocks and access records for the race
/// check, dependency clocks for DPOR).
struct Exec {
  // semantic
  std::vector<std::size_t> pc;
  std::vector<std::uint64_t> vars;
  std::vector<std::uint32_t> chan_len;     // messages currently queued
  std::vector<std::uint32_t> chan_popped;  // total receives so far
  // race instrumentation (acquire/release happens-before)
  std::vector<VClock> tvc;                 // per-thread clock
  std::vector<VClock> var_vc;              // per-var sync clock
  std::vector<std::vector<VClock>> chan_vc;  // per-chan send snapshots
  struct Rec {
    int tid;
    std::uint32_t epoch;
    std::uint64_t lo, hi;
    bool w;
    const Op* op;
  };
  std::vector<std::vector<Rec>> bufrec;    // per-buf access history
  // DPOR dependency clocks (count *steps* per thread). Two per object:
  // counter increments commute and never block each other, so add/add pairs
  // are independent — an add joins only the non-add history of its object,
  // every other op joins the full history.
  std::vector<VClock> dvc;                 // clock of thread's last step
  std::vector<VClock> obj_vc;              // join of ALL steps on the object
  std::vector<VClock> obj_nonadd_vc;       // join of the non-add steps only
  std::vector<std::uint32_t> steps_of;     // steps executed per thread

  std::uint64_t hash_semantic() const {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    for (std::size_t v : pc) mix(v);
    for (std::uint64_t v : vars) mix(v);
    for (std::uint32_t v : chan_len) mix(v);
    return h;
  }
};

/// One executed step in the current DFS trace.
struct StepInfo {
  int tid = -1;
  int obj = -1;                 // var id, or nvars + chan id
  const Op* op = nullptr;       // the sync op of the step
  VClock clock;                 // DPOR dependency clock of this step
  Mask enabled_before = 0;      // enabled threads in the pre-state
  Mask backtrack = 0;
  Mask done = 0;
  Mask sleep = 0;               // sleep set the state was entered with
};

class Explorer {
 public:
  Explorer(const Program& p, const Options& opt) : p_(p), opt_(opt) {
    p_.validate();
    nthreads_ = static_cast<int>(p_.threads.size());
    SRM_CHECK_MSG(nthreads_ >= 1 && nthreads_ <= kMaxThreads,
                  "mc: thread count " << nthreads_ << " out of range");
    nvars_ = static_cast<int>(p_.var_names.size());
  }

  Result run() {
    init_exec();
    explore(0);
    res_.distinct_states = seen_.size();
    return std::move(res_);
  }

 private:
  // --- initial state --------------------------------------------------------
  void init_exec() {
    Exec& e = x_;
    e.pc.assign(static_cast<std::size_t>(nthreads_), 0);
    e.vars = p_.var_init;
    e.chan_len.assign(p_.chan_names.size(), 0);
    e.chan_popped.assign(p_.chan_names.size(), 0);
    e.tvc.assign(static_cast<std::size_t>(nthreads_),
                 VClock(static_cast<std::size_t>(nthreads_), 0));
    for (int t = 0; t < nthreads_; ++t) {
      e.tvc[static_cast<std::size_t>(t)][static_cast<std::size_t>(t)] = 1;
    }
    e.var_vc.assign(p_.var_names.size(),
                    VClock(static_cast<std::size_t>(nthreads_), 0));
    e.chan_vc.assign(p_.chan_names.size(), {});
    e.bufrec.assign(p_.buf_names.size(), {});
    e.dvc.assign(static_cast<std::size_t>(nthreads_),
                 VClock(static_cast<std::size_t>(nthreads_), 0));
    e.obj_vc.assign(p_.var_names.size() + p_.chan_names.size(),
                    VClock(static_cast<std::size_t>(nthreads_), 0));
    e.obj_nonadd_vc = e.obj_vc;
    e.steps_of.assign(static_cast<std::size_t>(nthreads_), 0);
    // Threads begin running immediately: leading buffer accesses (before any
    // synchronization) execute up front, exactly as a real thread would
    // reach its first blocking point.
    for (int t = 0; t < nthreads_; ++t) run_accesses(t);
  }

  const std::vector<Op>& ops(int t) const {
    return p_.threads[static_cast<std::size_t>(t)].ops;
  }

  bool finished(int t) const {
    return x_.pc[static_cast<std::size_t>(t)] >= ops(t).size();
  }

  const Op& next_op(int t) const {
    return ops(t)[x_.pc[static_cast<std::size_t>(t)]];
  }

  static int obj_of(const Op& op, int nvars) {
    if (is_access(op.kind)) return -1;
    if (op.kind == OpKind::send || op.kind == OpKind::recv) {
      return nvars + op.obj;
    }
    return op.obj;
  }

  bool guard_ok(const Op& op) const {
    std::uint64_t v = 0;
    switch (op.kind) {
      case OpKind::await_eq:
        v = x_.vars[static_cast<std::size_t>(op.obj)];
        return v == op.a;
      case OpKind::await_ne:
        v = x_.vars[static_cast<std::size_t>(op.obj)];
        return v != op.a;
      case OpKind::await_ge:
      case OpKind::wait_dec:
        v = x_.vars[static_cast<std::size_t>(op.obj)];
        return v >= op.a;
      case OpKind::recv:
        return x_.chan_len[static_cast<std::size_t>(op.obj)] > 0;
      default:
        return true;
    }
  }

  Mask enabled_mask() const {
    Mask m = 0;
    for (int t = 0; t < nthreads_; ++t) {
      if (!finished(t) && guard_ok(next_op(t))) m |= bit(t);
    }
    return m;
  }

  Mask runnable_mask() const {
    Mask m = 0;
    for (int t = 0; t < nthreads_; ++t) {
      if (!finished(t)) m |= bit(t);
    }
    return m;
  }

  // --- access execution + race check ---------------------------------------
  void run_accesses(int t) {
    auto& pc = x_.pc[static_cast<std::size_t>(t)];
    const auto& tops = ops(t);
    while (pc < tops.size() && is_access(tops[pc].kind)) {
      check_access(t, tops[pc]);
      ++pc;
    }
  }

  void check_access(int t, const Op& op) {
    bool w = op.kind == OpKind::write;
    auto& recs = x_.bufrec[static_cast<std::size_t>(op.obj)];
    const VClock& vc = x_.tvc[static_cast<std::size_t>(t)];
    std::uint32_t epoch = vc[static_cast<std::size_t>(t)];
    std::size_t kept = 0;
    for (Exec::Rec& r : recs) {
      bool ordered =
          r.tid == t || vc[static_cast<std::size_t>(r.tid)] >= r.epoch;
      if (!ordered && r.lo < op.b && op.a < r.hi && (w || r.w)) {
        report_race(r, t, op);
      }
      bool subsumed =
          ordered && op.a <= r.lo && r.hi <= op.b && (w || !r.w);
      if (!subsumed) recs[kept++] = r;
    }
    recs.resize(kept);
    recs.push_back(Exec::Rec{t, epoch, op.a, op.b, w, &op});
  }

  void report_race(const Exec::Rec& prev, int t, const Op& op) {
    ++res_.races_found;
    std::string key = p_.buf_names[static_cast<std::size_t>(op.obj)] + "|" +
                      prev.op->label + "|" + op.label;
    if (!race_keys_.insert(key).second) return;
    if (res_.races.size() >= opt_.max_reports) return;
    Race r;
    r.buf = p_.buf_names[static_cast<std::size_t>(op.obj)];
    r.lo = std::max(prev.lo, op.a);
    r.hi = std::min(prev.hi, op.b);
    r.first_thread = p_.threads[static_cast<std::size_t>(prev.tid)].name;
    r.second_thread = p_.threads[static_cast<std::size_t>(t)].name;
    r.first_op = prev.op->label;
    r.second_op = op.label;
    r.schedule = current_schedule();
    res_.races.push_back(std::move(r));
  }

  std::vector<int> current_schedule() const {
    std::vector<int> s;
    s.reserve(trace_.size());
    for (const StepInfo& st : trace_) s.push_back(st.tid);
    return s;
  }

  // --- step execution -------------------------------------------------------
  /// Execute thread @p t's next sync op plus its trailing buffer accesses.
  /// The caller guarantees the guard holds.
  void exec_step(int t) {
    Exec& e = x_;
    auto ts = static_cast<std::size_t>(t);
    const Op& op = next_op(t);
    std::size_t o = static_cast<std::size_t>(op.obj);
    switch (op.kind) {
      case OpKind::set:
        e.vars[o] = op.a;
        join_into(e.var_vc[o], e.tvc[ts]);
        ++e.tvc[ts][ts];
        break;
      case OpKind::add:
        e.vars[o] += op.a;
        join_into(e.var_vc[o], e.tvc[ts]);
        ++e.tvc[ts][ts];
        break;
      case OpKind::await_eq:
      case OpKind::await_ne:
      case OpKind::await_ge:
        join_into(e.tvc[ts], e.var_vc[o]);
        break;
      case OpKind::wait_dec:
        join_into(e.tvc[ts], e.var_vc[o]);
        e.vars[o] -= op.a;
        join_into(e.var_vc[o], e.tvc[ts]);
        ++e.tvc[ts][ts];
        break;
      case OpKind::send:
        e.chan_vc[o].push_back(e.tvc[ts]);
        ++e.tvc[ts][ts];
        ++e.chan_len[o];
        break;
      case OpKind::recv: {
        std::uint32_t idx = e.chan_popped[o]++;
        --e.chan_len[o];
        join_into(e.tvc[ts], e.chan_vc[o][idx]);
        break;
      }
      case OpKind::write:
      case OpKind::read:
        SRM_CHECK_MSG(false, "mc: access op reached exec_step");
    }
    ++e.pc[ts];
    run_accesses(t);
    // DPOR dependency clock: this step depends on the thread's previous step
    // and on the same-object steps it does not commute with (everything for
    // a non-add op; only the non-add history for an add).
    auto obj = static_cast<std::size_t>(obj_of(op, nvars_));
    std::uint32_t n = ++e.steps_of[ts];
    VClock k = e.dvc[ts];
    join_into(k, op.kind == OpKind::add ? e.obj_nonadd_vc[obj]
                                        : e.obj_vc[obj]);
    k[ts] = n;
    e.dvc[ts] = k;
    join_into(e.obj_vc[obj], k);
    if (op.kind != OpKind::add) e.obj_nonadd_vc[obj] = std::move(k);
  }

  // --- DPOR bookkeeping -----------------------------------------------------
  /// True iff trace step @p i happens-before (in the dependency order) the
  /// next transition of thread @p p.
  bool step_hb_next(std::size_t i, int p) const {
    const StepInfo& s = trace_[i];
    auto ti = static_cast<std::size_t>(s.tid);
    return x_.dvc[static_cast<std::size_t>(p)][ti] >= s.clock[ti];
  }

  /// Flanagan–Godefroid backtrack-set updates for the current state: for
  /// every unfinished thread p, find the most recent trace step dependent
  /// with p's next transition and not ordered before it; that prefix must
  /// also try either p itself or some thread whose later steps lead into
  /// p's next transition.
  void update_backtracks() {
    for (int pth = 0; pth < nthreads_; ++pth) {
      if (finished(pth)) continue;
      const Op& nop = next_op(pth);
      int obj = obj_of(nop, nvars_);
      bool next_is_add = nop.kind == OpKind::add;
      for (std::size_t i = trace_.size(); i-- > 0;) {
        const StepInfo& s = trace_[i];
        if (s.obj != obj || s.tid == pth) continue;
        if (next_is_add && s.op->kind == OpKind::add) continue;  // commute
        // This is the most recent step dependent with p's next transition;
        // if it is already ordered before it the order is forced — deeper
        // reversals are found recursively. Either way the scan stops here.
        if (step_hb_next(i, pth)) break;
        Mask cand = 0;
        for (std::size_t j = i + 1; j < trace_.size(); ++j) {
          if (step_hb_next(j, pth)) cand |= bit(trace_[j].tid);
        }
        cand |= bit(pth);
        cand &= s.enabled_before;
        StepInfo& si = trace_[i];
        if ((cand & si.backtrack) == 0) {
          if (cand != 0) {
            si.backtrack |= cand & (~cand + 1);  // lowest candidate bit
          } else {
            si.backtrack |= s.enabled_before;
          }
        }
        break;
      }
    }
  }

  bool independent_next(int q, int pth) const {
    if (finished(q) || finished(pth)) return true;
    const Op& a = next_op(q);
    const Op& b = next_op(pth);
    if (obj_of(a, nvars_) != obj_of(b, nvars_)) return true;
    return a.kind == OpKind::add && b.kind == OpKind::add;
  }

  // --- the search -----------------------------------------------------------
  void explore(Mask sleep) {
    if (res_.budget_exhausted) return;
    seen_.insert(x_.hash_semantic());
    res_.max_depth = std::max<std::uint64_t>(res_.max_depth, trace_.size());

    Mask runnable = runnable_mask();
    // Backtrack updates must run even in blocked (deadlock) states: the step
    // that disabled a waiting thread is dependent with its pending await, and
    // the alternative where the await ran first still needs exploring.
    if (opt_.dpor && runnable != 0) update_backtracks();
    if (runnable == 0) {
      ++res_.traces;
      return;
    }
    Mask enabled = enabled_mask();
    if (enabled == 0) {
      ++res_.traces;
      report_deadlock(runnable);
      return;
    }

    if (!opt_.dpor) {
      Exec saved = x_;
      for (int t = 0; t < nthreads_; ++t) {
        if ((enabled & bit(t)) == 0) continue;
        if (res_.budget_exhausted) return;
        take_step(t, enabled, 0);
        explore(0);
        trace_.pop_back();
        x_ = saved;
      }
      return;
    }

    Mask pickable = enabled & ~sleep;
    if (pickable == 0) {
      ++res_.sleep_cut;
      return;
    }
    Mask suppressed = 0;

    // Seed this state's backtrack set with one enabled thread outside the
    // sleep set; deeper levels extend it through the StepInfo trace entry
    // (update_backtracks writes trace_[d].backtrack for prefix depth d).
    Exec saved = x_;
    Mask backtrack = bit(std::countr_zero(pickable));
    Mask done = 0;
    while (true) {
      suppressed |= backtrack & ~done & sleep;
      Mask avail = backtrack & ~done & ~sleep;
      if (avail == 0) break;
      if (res_.budget_exhausted) return;
      int t = std::countr_zero(avail);
      done |= bit(t);
      Mask child_sleep = 0;
      if (opt_.sleep_sets) {
        Mask keep = (sleep | (done & ~bit(t))) & runnable;
        for (int q = 0; q < nthreads_; ++q) {
          if ((keep & bit(q)) == 0) continue;
          if (independent_next(q, t)) child_sleep |= bit(q);
        }
      }
      take_step(t, enabled, sleep);
      explore(child_sleep);
      // Deeper levels add required alternatives to this state's backtrack
      // set via the trace entry; merge before the entry is popped.
      backtrack |= trace_.back().backtrack;
      trace_.pop_back();
      x_ = saved;
    }
    res_.sleep_cut +=
        static_cast<std::uint64_t>(std::popcount(suppressed & ~done));
  }

  void take_step(int t, Mask enabled, Mask sleep) {
    ++res_.transitions;
    if (res_.transitions >= opt_.max_transitions) {
      res_.budget_exhausted = true;
    }
    StepInfo s;
    s.tid = t;
    s.op = &next_op(t);
    s.obj = obj_of(*s.op, nvars_);
    s.enabled_before = enabled;
    s.sleep = sleep;
    trace_.push_back(std::move(s));
    exec_step(t);
    trace_.back().clock = x_.dvc[static_cast<std::size_t>(t)];
  }

  void report_deadlock(Mask runnable) {
    ++res_.deadlocks_found;
    if (!opt_.check_deadlock) return;
    std::string key;
    std::vector<std::string> blocked;
    for (int t = 0; t < nthreads_; ++t) {
      if ((runnable & bit(t)) == 0) continue;
      std::string line = p_.threads[static_cast<std::size_t>(t)].name +
                         " blocked at '" + next_op(t).label + "'";
      key += line + ";";
      blocked.push_back(std::move(line));
    }
    if (!deadlock_keys_.insert(key).second) return;
    if (res_.deadlocks.size() >= opt_.max_reports) return;
    Deadlock d;
    d.schedule = current_schedule();
    d.blocked = std::move(blocked);
    res_.deadlocks.push_back(std::move(d));
  }

  Program p_;
  Options opt_;
  int nthreads_ = 0;
  int nvars_ = 0;
  Exec x_;
  std::vector<StepInfo> trace_;
  Result res_;
  std::unordered_set<std::uint64_t> seen_;
  std::set<std::string> race_keys_;
  std::set<std::string> deadlock_keys_;
};

}  // namespace

std::string Race::to_string() const {
  std::ostringstream os;
  os << "race on '" << buf << "' bytes [" << lo << "," << hi << "): "
     << second_thread << " '" << second_op << "' unordered with "
     << first_thread << " '" << first_op << "' (schedule of "
     << schedule.size() << " steps:";
  for (int t : schedule) os << " " << t;
  os << ")";
  return os.str();
}

std::string Deadlock::to_string() const {
  std::ostringstream os;
  os << "deadlock after " << schedule.size() << " steps:";
  for (const std::string& b : blocked) os << "\n  " << b;
  return os.str();
}

std::string Result::summary() const {
  std::ostringstream os;
  os << "traces=" << traces << " transitions=" << transitions
     << " states=" << distinct_states << " sleep_cut=" << sleep_cut
     << " max_depth=" << max_depth << " races=" << races_found
     << " deadlocks=" << deadlocks_found
     << (budget_exhausted ? " [BUDGET EXHAUSTED]" : "");
  return os.str();
}

Result check(const Program& p, const Options& opt) {
  return Explorer(p, opt).run();
}

}  // namespace srm::mc
