#include "mc/ir.hpp"

#include <sstream>

#include "util/check.hpp"

namespace srm::mc {
namespace {

int intern(std::vector<std::string>& names, const std::string& n) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == n) return static_cast<int>(i);
  }
  names.push_back(n);
  return static_cast<int>(names.size() - 1);
}

}  // namespace

bool blocking(OpKind k) {
  return k == OpKind::await_eq || k == OpKind::await_ne ||
         k == OpKind::await_ge || k == OpKind::wait_dec || k == OpKind::recv;
}

bool is_access(OpKind k) { return k == OpKind::read || k == OpKind::write; }

int Program::var(const std::string& n, std::uint64_t init) {
  int id = intern(var_names, n);
  if (static_cast<std::size_t>(id) == var_init.size()) {
    var_init.push_back(init);
  } else {
    SRM_CHECK_MSG(var_init[static_cast<std::size_t>(id)] == init,
                  "var '" << n << "' re-declared with different initial");
  }
  return id;
}

int Program::buf(const std::string& n) { return intern(buf_names, n); }
int Program::chan(const std::string& n) { return intern(chan_names, n); }

int Program::thread(const std::string& n) {
  int id = find_thread(n);
  if (id >= 0) return id;
  threads.push_back(Thread{n, {}});
  return static_cast<int>(threads.size() - 1);
}

int Program::find_thread(const std::string& n) const {
  for (std::size_t i = 0; i < threads.size(); ++i) {
    if (threads[i].name == n) return static_cast<int>(i);
  }
  return -1;
}

void Program::window(int b, int pub_var, int done_var, int owner_tid) {
  windows.push_back(Window{b, pub_var, done_var, owner_tid});
}

void Program::push(int tid, Op op) {
  threads.at(static_cast<std::size_t>(tid)).ops.push_back(std::move(op));
}

void Program::set(int tid, int v, std::uint64_t val) {
  push(tid, Op{OpKind::set, v, val, 0,
               var_names.at(static_cast<std::size_t>(v)) + ":=" +
                   std::to_string(val)});
}

void Program::add(int tid, int v, std::uint64_t delta) {
  push(tid, Op{OpKind::add, v, delta, 0,
               var_names.at(static_cast<std::size_t>(v)) + "+=" +
                   std::to_string(delta)});
}

void Program::await_eq(int tid, int v, std::uint64_t val) {
  push(tid, Op{OpKind::await_eq, v, val, 0,
               "await " + var_names.at(static_cast<std::size_t>(v)) + "==" +
                   std::to_string(val)});
}

void Program::await_ne(int tid, int v, std::uint64_t val) {
  push(tid, Op{OpKind::await_ne, v, val, 0,
               "await " + var_names.at(static_cast<std::size_t>(v)) + "!=" +
                   std::to_string(val)});
}

void Program::await_ge(int tid, int v, std::uint64_t val) {
  push(tid, Op{OpKind::await_ge, v, val, 0,
               "await " + var_names.at(static_cast<std::size_t>(v)) + ">=" +
                   std::to_string(val)});
}

void Program::wait_dec(int tid, int v, std::uint64_t val) {
  push(tid, Op{OpKind::wait_dec, v, val, 0,
               "waitdec " + var_names.at(static_cast<std::size_t>(v)) + "-" +
                   std::to_string(val)});
}

void Program::write(int tid, int b, std::uint64_t lo, std::uint64_t hi) {
  push(tid, Op{OpKind::write, b, lo, hi,
               "write " + buf_names.at(static_cast<std::size_t>(b)) + "[" +
                   std::to_string(lo) + "," + std::to_string(hi) + ")"});
}

void Program::read(int tid, int b, std::uint64_t lo, std::uint64_t hi) {
  push(tid, Op{OpKind::read, b, lo, hi,
               "read " + buf_names.at(static_cast<std::size_t>(b)) + "[" +
                   std::to_string(lo) + "," + std::to_string(hi) + ")"});
}

void Program::send(int tid, int c) {
  push(tid, Op{OpKind::send, c, 0, 0,
               "send " + chan_names.at(static_cast<std::size_t>(c))});
}

void Program::recv(int tid, int c) {
  push(tid, Op{OpKind::recv, c, 0, 0,
               "recv " + chan_names.at(static_cast<std::size_t>(c))});
}

std::size_t Program::total_ops() const {
  std::size_t n = 0;
  for (const Thread& t : threads) n += t.ops.size();
  return n;
}

void Program::validate() const {
  SRM_CHECK_MSG(var_names.size() == var_init.size(),
                "program '" << name << "': var table corrupt");
  for (const Thread& t : threads) {
    for (const Op& op : t.ops) {
      int limit = is_access(op.kind) ? static_cast<int>(buf_names.size())
                  : (op.kind == OpKind::send || op.kind == OpKind::recv)
                      ? static_cast<int>(chan_names.size())
                      : static_cast<int>(var_names.size());
      SRM_CHECK_MSG(op.obj >= 0 && op.obj < limit,
                    "program '" << name << "' thread '" << t.name
                                << "': bad object in op '" << op.label << "'");
      if (is_access(op.kind)) {
        SRM_CHECK_MSG(op.a < op.b, "program '" << name << "': empty access '"
                                               << op.label << "'");
      }
    }
  }
  for (const Window& w : windows) {
    SRM_CHECK_MSG(w.buf >= 0 && w.buf < static_cast<int>(buf_names.size()) &&
                      w.pub_var >= 0 &&
                      w.pub_var < static_cast<int>(var_names.size()) &&
                      w.done_var >= 0 &&
                      w.done_var < static_cast<int>(var_names.size()) &&
                      w.owner >= 0 &&
                      w.owner < static_cast<int>(threads.size()),
                  "program '" << name << "': bad window registration");
  }
}

std::string Program::to_string() const {
  std::ostringstream os;
  os << "program '" << name << "': " << threads.size() << " threads, "
     << var_names.size() << " vars, " << buf_names.size() << " bufs, "
     << chan_names.size() << " chans, " << total_ops() << " ops\n";
  for (const Thread& t : threads) {
    os << "  " << t.name << ":";
    for (const Op& op : t.ops) os << " [" << op.label << "]";
    os << "\n";
  }
  return os.str();
}

void Program::drop_op(const std::string& thread_name,
                      const std::string& needle) {
  int tid = find_thread(thread_name);
  SRM_CHECK_MSG(tid >= 0, "drop_op: no thread '" << thread_name << "'");
  auto& ops = threads[static_cast<std::size_t>(tid)].ops;
  for (auto it = ops.begin(); it != ops.end(); ++it) {
    if (it->label.find(needle) != std::string::npos) {
      ops.erase(it);
      return;
    }
  }
  SRM_CHECK_MSG(false, "drop_op: no op matching '" << needle << "' in thread '"
                                                   << thread_name << "'");
}

void Program::drop_last_op(const std::string& thread_name,
                           const std::string& needle) {
  int tid = find_thread(thread_name);
  SRM_CHECK_MSG(tid >= 0, "drop_last_op: no thread '" << thread_name << "'");
  auto& ops = threads[static_cast<std::size_t>(tid)].ops;
  for (std::size_t i = ops.size(); i-- > 0;) {
    if (ops[i].label.find(needle) != std::string::npos) {
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  SRM_CHECK_MSG(false, "drop_last_op: no op matching '"
                           << needle << "' in thread '" << thread_name << "'");
}

void Program::swap_with_prev(const std::string& thread_name,
                             const std::string& needle) {
  int tid = find_thread(thread_name);
  SRM_CHECK_MSG(tid >= 0, "swap_with_prev: no thread '" << thread_name << "'");
  auto& ops = threads[static_cast<std::size_t>(tid)].ops;
  for (std::size_t i = 1; i < ops.size(); ++i) {
    if (ops[i].label.find(needle) != std::string::npos) {
      std::swap(ops[i - 1], ops[i]);
      return;
    }
  }
  SRM_CHECK_MSG(false, "swap_with_prev: no op matching '"
                           << needle << "' in thread '" << thread_name << "'");
}

}  // namespace srm::mc
