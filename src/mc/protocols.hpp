// srm::mc — IR models of the SRM collectives (eight staged protocols, the
// four single-copy cross-mapped variants, and the three algorithm-zoo
// bandwidth protocols).
//
// build() emits the synchronization skeleton that src/core actually executes
// (smp.cpp / bcast.cpp / reduce.cpp / barrier.cpp / gather_scatter.cpp /
// allreduce.cpp), specialized to a small configuration: READY flag pairs,
// published/consumed counters, LAPI credit counters, and one "nic<n>" thread
// per node with inbound deposits — puts land in the target's dispatcher
// asynchronously, so their buffer writes and counter bumps belong to that
// thread, ordered per link by the channel FIFO.
//
// Modeling conventions (kept deliberately structural):
//   * rank threads are named "r<node>.<local>"; leaders are local 0 (and the
//     root collectives are rooted at rank 0);
//   * persistent sequence counters (smp_bc_seq, smp_red_base, ga_seq,
//     bc_sent/bc_recv) start at zero — one collective call per program, which
//     is what the per-op fresh prefix also gives the compositions;
//   * private user buffers never appear (no cross-thread access, nothing to
//     check); shared staging/landing/slot buffers all do;
//   * an origin counter ("put has left the adapter") is modeled as the
//     origin node's nic re-reading the source buffer and bumping the
//     counter, which is exactly the reuse hazard the counter guards;
//   * a shm::Mapping window is a shared buffer plus a publish generation
//     flag and a detach counter: the owner writes the buffer and releases
//     the flag (publish), peers acquire it, read, and bump the counter
//     (attach/copy/detach), and the owner's trailing write after awaiting
//     the counter models the buffer reuse that retract() makes legal.
#pragma once

#include <string>
#include <vector>

#include "mc/ir.hpp"

namespace srm::mc {

/// A model configuration: nodes x tasks-per-node, pipeline depth in chunks.
struct Shape {
  int nodes = 1;
  int tasks = 2;
  int chunks = 1;
  std::string to_string() const;  // "2x4c2"
};

enum class Proto : std::uint8_t {
  barrier,
  bcast,
  reduce,
  allreduce,
  scatter,
  gather,
  allgather,
  reduce_scatter,
  // Single-copy cross-mapped variants (core/single_copy.cpp): user buffers
  // exported as shm::Mapping windows, peers copy/combine straight across.
  sc_bcast,
  sc_reduce,
  sc_scatter,
  sc_gather,
  // Algorithm-zoo variants (core/zoo.cpp): bandwidth algorithms the
  // decision table picks for large payloads. At two nodes the ring and
  // recursive-halving allreduces coincide structurally (one exchange round
  // each way), but each pins its own guard set in the gauntlet.
  ring_allreduce,
  rh_allreduce,
  sa_bcast,
};
inline constexpr int kProtoCount = 15;
const char* proto_name(Proto p);
/// All fifteen, in a stable order.
const std::vector<Proto>& all_protos();

/// Build the synchronization skeleton of @p p on @p shape (nodes must be 1
/// or 2; tasks >= 1; chunks >= 1).
Program build(Proto p, const Shape& shape);

/// One seeded protocol bug: a named mutation the checker must flag.
struct Mutant {
  std::string name;   ///< "bcast.drop_credit_wait"
  Proto proto{};
  Shape shape;
  Program program;    ///< the broken protocol
  bool expect_race = false;      ///< at least one of these...
  bool expect_deadlock = false;  ///< ...must be set and found
};

/// The mutation gauntlet: dropped flag clears, reordered counter bumps,
/// skipped credit waits — every classic way to break the paper's handshakes.
/// Each entry must yield a counterexample under check().
std::vector<Mutant> mutation_gauntlet();

}  // namespace srm::mc
