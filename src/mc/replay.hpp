// Cross-validation between the model checker and the simulator: replay a
// Program — optionally pinned to a counterexample schedule check() produced —
// as a concrete sim::Engine run against the real machinery. Every IR thread
// becomes a spawned coroutine; vars become shm::SharedFlag objects (with real
// store-propagation delay), buffers become chk::Checker-registered byte
// regions, channels become FIFO queues carrying chk::MsgClock snapshots.
//
// A turn-token scheduler enforces the schedule as a prefix: step i may only
// be taken by thread schedule[i]; once the schedule is exhausted every thread
// free-runs under the engine's tie-break policy. The schedule never needs to
// mention virtual time — when a scheduled step blocks on flag propagation the
// engine simply advances the clock, and no other thread can jump the queue.
//
// Outcomes are read off the real detectors, not the model: a deadlock
// counterexample must wedge the engine (Engine::run throws with the blocked
// wait-points), and a race counterexample must reproduce as a chk::Checker
// RaceReport. replay() is what turns a gauntlet mutant's abstract schedule
// into a concrete failing test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chk/chk.hpp"
#include "mc/ir.hpp"
#include "sim/engine.hpp"

namespace srm::mc {

struct ReplayOptions {
  /// Tie-break for the free-run tail (and any same-time wakeups during the
  /// pinned prefix). `random` explores orderings FIFO never produces.
  sim::TieBreak tiebreak = sim::TieBreak::fifo;
  std::uint64_t seed = 0;
  /// Run with the happens-before checker recording (off measures only
  /// completion/deadlock).
  bool checker = true;
  /// Also export the checker's event trace (feeds mc/extract.hpp, closing
  /// the model -> concrete -> model roundtrip).
  bool trace = false;
};

struct ReplayResult {
  bool completed = false;   ///< every thread ran to the end of its ops
  bool deadlocked = false;  ///< the engine wedged (queue drained, threads left)
  std::string deadlock;     ///< engine's blocked-wait-point dump
  std::vector<chk::RaceReport> races;  ///< chk reports from the concrete run
  std::uint64_t steps_pinned = 0;      ///< schedule steps actually consumed
  std::uint64_t accesses_checked = 0;
  std::uint64_t sync_ops = 0;
  std::vector<chk::TraceEvent> trace;  ///< only with ReplayOptions::trace

  bool ok() const { return completed && !deadlocked && races.empty(); }
  std::string to_string() const;
};

/// Execute @p p on a fresh engine, pinning the first schedule.size() steps to
/// @p schedule (pass {} for a pure free-run). Throws util::CheckError only on
/// malformed input (invalid thread ids in the schedule); protocol failures
/// are returned.
ReplayResult replay(const Program& p, const std::vector<int>& schedule,
                    const ReplayOptions& opt = {});

}  // namespace srm::mc
