#include "mc/extract.hpp"

#include <map>
#include <set>
#include <utility>

namespace srm::mc {
namespace {

using chk::TraceEvent;
using Kind = chk::TraceEvent::Kind;

/// Interns sync objects / regions by pointer identity, deduplicating the
/// human labels (two SharedFlags may share a label; the pointer is the
/// truth).
struct PtrNames {
  std::map<const void*, int> ids;
  std::set<std::string> used;

  int get(Program& p, const void* key, const std::string& label,
          const char* fallback, bool is_buf) {
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    std::string base =
        label.empty() ? fallback + std::to_string(ids.size()) : label;
    std::string n = base;
    for (int k = 2; !used.insert(n).second; ++k) {
      n = base + "#" + std::to_string(k);
    }
    int id = is_buf ? p.buf(n) : p.var(n, 0);
    ids.emplace(key, id);
    return id;
  }
};

}  // namespace

Program skeleton_from_trace(const std::vector<TraceEvent>& trace, int nactors,
                            const std::string& name) {
  Program p;
  p.name = name;
  for (int a = 0; a < nactors; ++a) p.thread("a" + std::to_string(a));
  auto actor_thread = [&p](int a) {
    return p.thread("a" + std::to_string(a));
  };
  auto nic_thread = [&p](int origin) {
    return p.thread("nic" + std::to_string(origin));
  };

  // Pass 1: which threads consume each message. A put's counter bump and
  // deposit run on the origin's NIC thread; a mini-MPI recv runs on the
  // receiving rank. Each (message, consumer) pair gets its own channel so
  // every consumer independently inherits the fork's clock.
  std::map<std::uint64_t, std::vector<int>> consumers;
  for (const TraceEvent& ev : trace) {
    int tid = -1;
    if (ev.kind == Kind::join || (ev.remote && (ev.kind == Kind::read ||
                                                ev.kind == Kind::write))) {
      tid = nic_thread(ev.actor);
    } else if (ev.kind == Kind::acquire_msg) {
      tid = actor_thread(ev.actor);
    }
    if (tid < 0 || ev.msg == 0) continue;
    std::vector<int>& cs = consumers[ev.msg];
    bool seen = false;
    for (int c : cs) seen = seen || c == tid;
    if (!seen) cs.push_back(tid);
  }
  auto chan_of = [&p](std::uint64_t msg, int tid) {
    return p.chan("m" + std::to_string(msg) + ":" +
                  p.threads[static_cast<std::size_t>(tid)].name);
  };

  // Pass 2: emit ops in trace order; await thresholds snapshot the release
  // count at the acquire's position.
  PtrNames vars, bufs;
  std::map<int, std::uint64_t> bumps;  // var id -> releases seen so far
  std::set<std::pair<std::uint64_t, int>> recv_done;
  auto ensure_recv = [&](std::uint64_t msg, int tid) {
    if (msg == 0) return;
    if (recv_done.emplace(msg, tid).second) p.recv(tid, chan_of(msg, tid));
  };
  for (const TraceEvent& ev : trace) {
    switch (ev.kind) {
      case Kind::release: {
        int v = vars.get(p, ev.obj, ev.label, "sv", false);
        p.add(actor_thread(ev.actor), v, 1);
        ++bumps[v];
        break;
      }
      case Kind::acquire: {
        int v = vars.get(p, ev.obj, ev.label, "sv", false);
        p.await_ge(actor_thread(ev.actor), v, bumps[v]);
        break;
      }
      case Kind::fork: {
        int t = actor_thread(ev.actor);
        for (int c : consumers[ev.msg]) p.send(t, chan_of(ev.msg, c));
        break;
      }
      case Kind::join: {
        int t = nic_thread(ev.actor);
        ensure_recv(ev.msg, t);
        int v = vars.get(p, ev.obj, ev.label, "sv", false);
        p.add(t, v, 1);
        ++bumps[v];
        break;
      }
      case Kind::acquire_msg:
        ensure_recv(ev.msg, actor_thread(ev.actor));
        break;
      case Kind::read:
      case Kind::write: {
        int t = ev.remote ? nic_thread(ev.actor) : actor_thread(ev.actor);
        if (ev.remote) ensure_recv(ev.msg, t);
        int b = bufs.get(p, ev.obj, ev.label, "rg", true);
        if (ev.kind == Kind::write) {
          p.write(t, b, ev.lo, ev.hi);
        } else {
          p.read(t, b, ev.lo, ev.hi);
        }
        break;
      }
    }
  }
  p.validate();
  return p;
}

Options extracted_options() {
  Options o;
  o.check_deadlock = false;
  return o;
}

}  // namespace srm::mc
