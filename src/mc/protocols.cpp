#include "mc/protocols.hpp"

#include <utility>

#include "util/check.hpp"

namespace srm::mc {
namespace {

/// Emits one protocol instance into a Program. Object names carry a prefix
/// so sequential compositions (allgather = gather + bcast) keep their phases
/// on distinct synchronization state while sharing the rank threads.
struct Builder {
  Program& p;
  Shape sh;
  std::string x;  ///< object-name prefix ("", "ga.", "bc.", ...)

  int T() const { return sh.tasks; }
  int C() const { return sh.chunks; }
  /// Model width of a shared buffer in bytes: one byte per local task, so
  /// slice protocols (scatter/gather) get per-task disjoint ranges.
  std::uint64_t W() const { return static_cast<std::uint64_t>(sh.tasks); }

  std::string id(const std::string& s) const { return x + s; }
  static std::string num(int v) { return std::to_string(v); }

  int rk(int n, int l) { return p.thread("r" + num(n) + "." + num(l)); }
  int nic(int n) { return p.thread("nic" + num(n)); }
  /// The origin-side adapter engine of node n: re-reads a put's source
  /// buffer, bumps the origin counter, then forwards the put on the wire.
  int adp(int n) { return p.thread("adp" + num(n)); }

  int ready(int n, int s, int l) {
    return p.var(id("ready" + num(n) + ".s" + num(s) + "[" + num(l) + "]"));
  }
  int bb(int n, int s) { return p.buf(id("bb" + num(n) + ".s" + num(s))); }

  // --- Fig. 3: SMP broadcast chunk, two buffers, per-consumer READY flags --
  /// Leader fills the shared buffer (optionally reading @p src first) and
  /// releases the consumers; consumers copy out and clear their flag.
  /// @p srcw: bytes of @p src covered (0: the default node width W()) —
  /// allgather's broadcast half reads the full gathered buffer.
  void smp_fill_chunk(int n, int c, int src, bool slice = false,
                      std::uint64_t srcw = 0) {
    int s = c % 2;
    if (T() == 1) return;  // no local fan-out
    int ld = rk(n, 0);
    for (int l = 1; l < T(); ++l) p.await_eq(ld, ready(n, s, l), 0);
    if (src >= 0) p.read(ld, src, 0, srcw ? srcw : W());
    p.write(ld, bb(n, s), 0, W());
    for (int l = 1; l < T(); ++l) p.set(ld, ready(n, s, l), 1);
    if (slice) p.read(ld, bb(n, s), 0, 1);  // leader copies its own slice
    for (int l = 1; l < T(); ++l) {
      int t = rk(n, l);
      p.await_eq(t, ready(n, s, l), 1);
      if (slice) {
        p.read(t, bb(n, s), static_cast<std::uint64_t>(l),
               static_cast<std::uint64_t>(l) + 1);
      } else {
        p.read(t, bb(n, s), 0, W());
      }
      p.set(t, ready(n, s, l), 0);
    }
  }

  /// Zero-copy variant: consumers (and the leader) read straight out of the
  /// landing buffer @p land a LAPI put deposited — no staging copy.
  void smp_shared_chunk(int n, int c, int land, bool slice = false) {
    int s = c % 2;
    int ld = rk(n, 0);
    if (T() == 1) {
      p.read(ld, land, 0, slice ? 1 : W());
      return;
    }
    for (int l = 1; l < T(); ++l) p.await_eq(ld, ready(n, s, l), 0);
    for (int l = 1; l < T(); ++l) p.set(ld, ready(n, s, l), 1);
    p.read(ld, land, 0, slice ? 1 : W());
    for (int l = 1; l < T(); ++l) {
      int t = rk(n, l);
      p.await_eq(t, ready(n, s, l), 1);
      if (slice) {
        p.read(t, land, static_cast<std::uint64_t>(l),
               static_cast<std::uint64_t>(l) + 1);
      } else {
        p.read(t, land, 0, W());
      }
      p.set(t, ready(n, s, l), 0);
    }
  }

  // --- barrier: flat SMP flags + recursive-doubling round counters --------
  void barrier() {
    auto bar = [&](int n, int l) {
      return p.var(id("bar" + num(n) + "[" + num(l) + "]"));
    };
    for (int n = 0; n < sh.nodes; ++n) {
      int m = rk(n, 0);
      for (int l = 1; l < T(); ++l) {
        int w = rk(n, l);
        p.set(w, bar(n, l), 1);
        p.await_eq(w, bar(n, l), 0);
      }
      for (int l = 1; l < T(); ++l) p.await_eq(m, bar(n, l), 1);
    }
    if (sh.nodes == 2) {
      for (int n = 0; n < 2; ++n) {
        int m = rk(n, 0);
        p.send(m, p.chan(id("sig" + num(n))));      // put_signal to the peer
        p.wait_dec(m, p.var(id("round" + num(n))), 1);
      }
      for (int n = 0; n < 2; ++n) {
        p.recv(nic(n), p.chan(id("sig" + num(1 - n))));
        p.add(nic(n), p.var(id("round" + num(n))), 1);
      }
    }
    for (int n = 0; n < sh.nodes; ++n) {
      int m = rk(n, 0);
      for (int l = 1; l < T(); ++l) p.set(m, bar(n, l), 0);
    }
  }

  // --- broadcast: credit-guarded landing pair + Fig. 3 locally ------------
  /// @p src: shared buffer the root reads from (-1: a private user buffer).
  /// @p srcw: bytes of @p src the broadcast covers (0: W()).
  void bcast(int src = -1, std::uint64_t srcw = 0) {
    if (sh.nodes == 1) {
      for (int c = 0; c < C(); ++c) smp_fill_chunk(0, c, src, false, srcw);
      return;
    }
    int root = rk(0, 0), child = rk(1, 0);
    int put01 = p.chan(id("put01")), cred10 = p.chan(id("cred10"));
    int org = -1, oput = -1;
    if (src >= 0) {
      org = p.var(id("org"));
      oput = p.chan(id("oput"));
    }
    for (int c = 0; c < C(); ++c) {
      int s = c % 2;
      int freev = p.var(id("free.s" + num(s)), 1);  // landing credits
      int arrv = p.var(id("arr.s" + num(s)));
      int land = p.buf(id("land.s" + num(s)));
      // Root leader: consume a credit, put, then broadcast locally (Fig. 4
      // steps 1 and 2).
      p.wait_dec(root, freev, 1);
      p.send(root, src >= 0 ? oput : put01);
      smp_fill_chunk(0, c, src, false, srcw);
      if (src >= 0) {
        int a = adp(0);
        p.recv(a, oput);
        p.read(a, src, 0, srcw ? srcw : W());
        p.add(a, org, 1);
        p.send(a, put01);
      }
      // Child NIC: the deposit lands and the arrival counter bumps.
      p.recv(nic(1), put01);
      p.write(nic(1), land, 0, W());
      p.add(nic(1), arrv, 1);
      // Child leader: wait for the chunk, zero-copy SMP broadcast, then
      // return the credit once every consumer cleared READY (step 3).
      p.wait_dec(child, arrv, 1);
      smp_shared_chunk(1, c, land);
      for (int l = 1; l < T(); ++l) p.await_eq(child, ready(1, s, l), 0);
      p.send(child, cred10);
      p.recv(nic(0), cred10);
      p.add(nic(0), freev, 1);
    }
    if (src >= 0) p.wait_dec(root, org, static_cast<std::uint64_t>(C()));
  }

  // --- Fig. 2 reduce + credit-guarded landing pair upward -----------------
  /// Returns the root's result buffer (the scatter half of reduce_scatter
  /// reads it).
  int reduce() {
    int res = p.buf(id("res0"));
    auto pub = [&](int n, int l) {
      return p.var(id("pub" + num(n) + "[" + num(l) + "]"));
    };
    auto cons = [&](int n, int s, int l) {
      return p.var(id("cons" + num(n) + ".s" + num(s) + "[" + num(l) + "]"));
    };
    auto slot = [&](int n, int s, int l) {
      return p.buf(id("slot" + num(n) + ".s" + num(s) + "[" + num(l) + "]"));
    };
    int redfree = -1, outorg = -1, oput1 = -1, data10 = -1, cred01 = -1;
    if (sh.nodes == 2) {
      redfree = p.var(id("free"), 2);  // both landing slots start free
      outorg = p.var(id("outorg"));
      oput1 = p.chan(id("oput1"));
      data10 = p.chan(id("data10"));
      cred01 = p.chan(id("cred01"));
    }
    int inflight = 0;
    for (int c = 0; c < C(); ++c) {
      int s = c % 2;
      for (int n = 0; n < sh.nodes; ++n) {
        // Participants: wait for the slot's previous consumer, publish.
        for (int l = 1; l < T(); ++l) {
          int t = rk(n, l);
          if (c >= 2) {
            p.await_ge(t, cons(n, s, l),
                       static_cast<std::uint64_t>(c / 2));
          }
          p.write(t, slot(n, s, l), 0, W());
          p.add(t, pub(n, l), 1);
        }
        int ld = rk(n, 0);
        // Child leader's output-slot reuse gate (put of c-2 must have left).
        if (n == 1 && inflight == 2) {
          p.wait_dec(ld, outorg, 1);
          --inflight;
        }
        int dst = n == 0 ? res : p.buf(id("out.s" + num(s)));
        if (T() == 1) {
          p.write(ld, dst, 0, W());  // node result is just our own data
        } else {
          for (int l = 1; l < T(); ++l) {
            p.await_ge(ld, pub(n, l), static_cast<std::uint64_t>(c) + 1);
            p.read(ld, slot(n, s, l), 0, W());
            p.write(ld, dst, 0, W());
            p.add(ld, cons(n, s, l), 1);
          }
        }
      }
      if (sh.nodes == 2) {
        int child = rk(1, 0), ld0 = rk(0, 0);
        int out = p.buf(id("out.s" + num(s)));
        int rland = p.buf(id("land.s" + num(s)));
        int arrived = p.var(id("arr"));
        // Child: consume a landing credit, ship the node result up.
        p.wait_dec(child, redfree, 1);
        p.send(child, oput1);
        ++inflight;
        int a = adp(1);
        p.recv(a, oput1);
        p.read(a, out, 0, W());
        p.add(a, outorg, 1);
        p.send(a, data10);
        p.recv(nic(0), data10);
        p.write(nic(0), rland, 0, W());
        p.add(nic(0), arrived, 1);
        // Root: fold the landed chunk in, return the credit.
        p.wait_dec(ld0, arrived, 1);
        p.read(ld0, rland, 0, W());
        p.write(ld0, res, 0, W());
        p.send(ld0, cred01);
        p.recv(nic(1), cred01);
        p.add(nic(1), redfree, 1);
      }
    }
    if (inflight > 0) {
      p.wait_dec(rk(1, 0), outorg, static_cast<std::uint64_t>(inflight));
    }
    return res;
  }

  /// Fig. 2 with one chunk: every local contribution combined into res<n>.
  /// Shared by allreduce and the zoo allreduces (their network phases run
  /// leader-only over the node results).
  void local_combine(int n) {
    int ld = rk(n, 0);
    for (int l = 1; l < T(); ++l) {
      int t = rk(n, l);
      p.write(t, p.buf(id("slot" + num(n) + "[" + num(l) + "]")), 0, W());
      p.add(t, p.var(id("pub" + num(n) + "[" + num(l) + "]")), 1);
    }
    if (T() == 1) {
      p.write(ld, p.buf(id("res" + num(n))), 0, W());
    } else {
      for (int l = 1; l < T(); ++l) {
        p.await_ge(ld, p.var(id("pub" + num(n) + "[" + num(l) + "]")), 1);
        p.read(ld, p.buf(id("slot" + num(n) + "[" + num(l) + "]")), 0, W());
        p.write(ld, p.buf(id("res" + num(n))), 0, W());
        p.add(ld, p.var(id("cons" + num(n) + "[" + num(l) + "]")), 1);
      }
    }
  }

  // --- allreduce: SMP reduce + pairwise exchange + SMP broadcast ----------
  /// Single-chunk by construction (the recursive-doubling variant requires
  /// the payload to fit one reduce chunk).
  void allreduce() {
    auto resbuf = [&](int n) { return p.buf(id("res" + num(n))); };
    // Local combine on every node, Fig. 2 with one chunk.
    for (int n = 0; n < sh.nodes; ++n) local_combine(n);
    if (sh.nodes == 2) {
      // One recursive-doubling round: both puts overlap on the wire; each
      // master may only overwrite its result buffer (the put source!) after
      // the origin counter says the adapter has read it.
      for (int n = 0; n < 2; ++n) {
        int m = rk(n, 0);
        p.send(m, p.chan(id("oput" + num(n))));
        int a = adp(n);
        p.recv(a, p.chan(id("oput" + num(n))));
        p.read(a, resbuf(n), 0, W());
        p.add(a, p.var(id("org" + num(n))), 1);
        p.send(a, p.chan(id("data" + num(n))));
        int peer = nic(1 - n);
        p.recv(peer, p.chan(id("data" + num(n))));
        p.write(peer, p.buf(id("xbuf" + num(1 - n))), 0, W());
        p.add(peer, p.var(id("arr" + num(1 - n))), 1);
      }
      for (int n = 0; n < 2; ++n) {
        int m = rk(n, 0);
        p.wait_dec(m, p.var(id("arr" + num(n))), 1);
        p.wait_dec(m, p.var(id("org" + num(n))), 1);
        p.read(m, p.buf(id("xbuf" + num(n))), 0, W());
        p.write(m, resbuf(n), 0, W());
      }
    }
    // SMP broadcast of the global result out of the masters' buffers.
    for (int n = 0; n < sh.nodes; ++n) smp_fill_chunk(n, 0, resbuf(n));
  }

  /// One origin-guarded leader put for the zoo exchanges: the master of
  /// node @p n ships @p srcbuf to the peer. The adapter re-reads the source
  /// (the reuse hazard) and bumps <tag>org<n>; the peer's NIC deposits into
  /// <tag>land<peer> and bumps <tag>arr<peer>.
  void zoo_put(const std::string& tag, int n, int srcbuf) {
    int m = rk(n, 0);
    int a = adp(n);
    p.send(m, p.chan(id(tag + "put" + num(n))));
    p.recv(a, p.chan(id(tag + "put" + num(n))));
    p.read(a, srcbuf, 0, W());
    p.add(a, p.var(id(tag + "org" + num(n))), 1);
    p.send(a, p.chan(id(tag + "data" + num(n))));
    int peer = nic(1 - n);
    p.recv(peer, p.chan(id(tag + "data" + num(n))));
    p.write(peer, p.buf(id(tag + "land" + num(1 - n))), 0, W());
    p.add(peer, p.var(id(tag + "arr" + num(1 - n))), 1);
  }

  // --- ring allreduce (zoo): guarded block exchange around the ring -------
  /// Leader-only network phase over the node results, single chunk per
  /// block (core/zoo.cpp runs the exchange in polled mode so per-peer
  /// arrival order attributes blocks; the FIFO channels model exactly that
  /// ordering). Two nodes: one reduce-scatter hop combines the peer's
  /// contribution into the owned block, one allgather hop replaces the
  /// other block with the peer's finalized copy.
  void ring_allreduce() {
    auto resbuf = [&](int n) { return p.buf(id("res" + num(n))); };
    for (int n = 0; n < sh.nodes; ++n) local_combine(n);
    if (sh.nodes == 2) {
      // Reduce-scatter hop: both masters ship their contribution for the
      // peer-owned block. The put sources the node result, so the combine
      // below may only overwrite it once the origin counter fires.
      for (int n = 0; n < 2; ++n) zoo_put("rs", n, resbuf(n));
      for (int n = 0; n < 2; ++n) {
        int m = rk(n, 0);
        p.wait_dec(m, p.var(id("rsarr" + num(n))), 1);
        p.wait_dec(m, p.var(id("rsorg" + num(n))), 1);
        p.read(m, p.buf(id("rsland" + num(n))), 0, W());
        p.write(m, resbuf(n), 0, W());  // the owned block is now global
      }
      // Allgather hop: ship the finalized block; the peer replaces its
      // copy (a plain write, no combine). The node result is the put
      // source again, so the same origin guard protects the final write.
      for (int n = 0; n < 2; ++n) zoo_put("ag", n, resbuf(n));
      for (int n = 0; n < 2; ++n) {
        int m = rk(n, 0);
        p.wait_dec(m, p.var(id("agarr" + num(n))), 1);
        p.wait_dec(m, p.var(id("agorg" + num(n))), 1);
        p.read(m, p.buf(id("agland" + num(n))), 0, W());
        p.write(m, resbuf(n), 0, W());
      }
    }
    for (int n = 0; n < sh.nodes; ++n) smp_fill_chunk(n, 0, resbuf(n));
  }

  // --- recursive-halving allreduce (zoo) ----------------------------------
  /// At two nodes (pof2 = 2, no remainder fold) this is one
  /// reduce-scatter round exchanging accumulated halves — the send is the
  /// pre-round snapshot, so the fold-in waits out the origin counter — and
  /// one allgather round whose arrival REPLACES the other half
  /// (core/zoo.cpp's unfold semantics). Structurally the ring's exchange,
  /// but the gauntlet pins a different guard on it.
  void rh_allreduce() {
    auto resbuf = [&](int n) { return p.buf(id("res" + num(n))); };
    for (int n = 0; n < sh.nodes; ++n) local_combine(n);
    if (sh.nodes == 2) {
      // Halving exchange round (reduce-scatter on halves).
      for (int n = 0; n < 2; ++n) zoo_put("hx", n, resbuf(n));
      for (int n = 0; n < 2; ++n) {
        int m = rk(n, 0);
        p.wait_dec(m, p.var(id("hxarr" + num(n))), 1);
        p.wait_dec(m, p.var(id("hxorg" + num(n))), 1);
        p.read(m, p.buf(id("hxland" + num(n))), 0, W());
        p.write(m, resbuf(n), 0, W());  // fold the peer's half in
      }
      // Half broadcast-back round (allgather on halves).
      for (int n = 0; n < 2; ++n) zoo_put("hb", n, resbuf(n));
      for (int n = 0; n < 2; ++n) {
        int m = rk(n, 0);
        p.wait_dec(m, p.var(id("hbarr" + num(n))), 1);
        p.wait_dec(m, p.var(id("hborg" + num(n))), 1);
        p.read(m, p.buf(id("hbland" + num(n))), 0, W());
        p.write(m, resbuf(n), 0, W());  // replace, not combine
      }
    }
    for (int n = 0; n < sh.nodes; ++n) smp_fill_chunk(n, 0, resbuf(n));
  }

  // --- scatter+allgather bcast (zoo) --------------------------------------
  /// Single chunk: the root scatters the child's block, then the one ring
  /// allgather step runs both ways — the root ships its own block while
  /// the child forwards the block it just received. The forward reads the
  /// scatter's landing buffer, so it must wait for the scatter arrival;
  /// its origin counter retires the landing slot at the end.
  void sa_bcast() {
    if (sh.nodes == 1) {
      smp_fill_chunk(0, 0, -1);
      return;
    }
    int root = rk(0, 0), child = rk(1, 0);
    // Scatter: the child's block leaves the root's private user buffer.
    p.send(root, p.chan(id("scput")));
    p.recv(nic(1), p.chan(id("scput")));
    p.write(nic(1), p.buf(id("scland")), 0, W());
    p.add(nic(1), p.var(id("scarr")), 1);
    // Ring step, root side: its own block, private source again.
    p.send(root, p.chan(id("agput0")));
    p.recv(nic(1), p.chan(id("agput0")));
    p.write(nic(1), p.buf(id("agland1")), 0, W());
    p.add(nic(1), p.var(id("agarr1")), 1);
    // Ring step, child side: forward the scattered block straight out of
    // its landing buffer (a shared source — adapter plus origin counter).
    p.wait_dec(child, p.var(id("scarr")), 1);
    p.send(child, p.chan(id("fwput")));
    int a = adp(1);
    p.recv(a, p.chan(id("fwput")));
    p.read(a, p.buf(id("scland")), 0, W());
    p.add(a, p.var(id("fworg")), 1);
    p.send(a, p.chan(id("fwdata")));
    p.recv(nic(0), p.chan(id("fwdata")));
    p.write(nic(0), p.buf(id("agland0")), 0, W());
    p.add(nic(0), p.var(id("agarr0")), 1);
    // Assembly + Fig. 3 fan-out: each leader copies the landed block into
    // its user image, then runs the SMP chunk from that private image.
    p.wait_dec(root, p.var(id("agarr0")), 1);
    p.read(root, p.buf(id("agland0")), 0, W());
    smp_fill_chunk(0, 0, -1);
    p.wait_dec(child, p.var(id("agarr1")), 1);
    p.read(child, p.buf(id("agland1")), 0, W());
    p.read(child, p.buf(id("scland")), 0, W());
    smp_fill_chunk(1, 0, -1);
    // The scatter landing slot is reusable only once the forward has left
    // the adapter.
    p.wait_dec(child, p.var(id("fworg")), 1);
  }

  // --- scatter: root puts node blocks into landing pairs, slices locally --
  /// @p src: shared buffer at the root (-1: a private user buffer).
  void scatter(int src = -1) {
    int org = -1, oput = -1;
    if (src >= 0 && sh.nodes == 2) {
      org = p.var(id("sorg"));
      oput = p.chan(id("soput"));
    }
    for (int c = 0; c < C(); ++c) {
      int s = c % 2;
      if (sh.nodes == 2) {
        int root = rk(0, 0);
        int freev = p.var(id("free.s" + num(s)), 1);
        p.wait_dec(root, freev, 1);
        p.send(root, src >= 0 ? oput : p.chan(id("put01")));
        if (src >= 0) {
          int a = adp(0);
          p.recv(a, oput);
          p.read(a, src, 0, W());
          p.add(a, org, 1);
          p.send(a, p.chan(id("put01")));
        }
        p.recv(nic(1), p.chan(id("put01")));
        p.write(nic(1), p.buf(id("land.s" + num(s))), 0, W());
        p.add(nic(1), p.var(id("arr.s" + num(s))), 1);
      }
      // Root node: distribute its own block slice-wise out of shared memory.
      smp_fill_chunk(0, c, src, /*slice=*/true);
      if (sh.nodes == 2) {
        int child = rk(1, 0);
        p.wait_dec(child, p.var(id("arr.s" + num(s))), 1);
        smp_shared_chunk(1, c, p.buf(id("land.s" + num(s))), /*slice=*/true);
        for (int l = 1; l < T(); ++l) p.await_eq(child, ready(1, s, l), 0);
        p.send(child, p.chan(id("cred10")));
        p.recv(nic(0), p.chan(id("cred10")));
        p.add(nic(0), p.var(id("free.s" + num(s)), 1), 1);
      }
    }
    if (src >= 0 && sh.nodes == 2) {
      p.wait_dec(rk(0, 0), org, static_cast<std::uint64_t>(C()));
    }
  }

  // --- gather: shared staging pair, filled/freed counters, direct puts ----
  /// Returns the root's receive buffer (allgather's bcast reads it).
  int gather() {
    int res = p.buf(id("grecv"));
    auto filled = [&](int n, int s) {
      return p.var(id("filled" + num(n) + ".s" + num(s)));
    };
    auto freed = [&](int n, int s) {
      return p.var(id("freed" + num(n) + ".s" + num(s)));
    };
    auto stage = [&](int n, int s) {
      return p.buf(id("stage" + num(n) + ".s" + num(s)));
    };
    int outorg = -1, oput1 = -1, gdata = -1, gdone = -1;
    if (sh.nodes == 2) {
      // Stage 0: the root announces its receive buffer to the child leader.
      p.send(rk(0, 0), p.chan(id("addr01")));
      p.recv(nic(1), p.chan(id("addr01")));
      p.add(nic(1), p.var(id("addrarr")), 1);
      p.wait_dec(rk(1, 0), p.var(id("addrarr")), 1);
      outorg = p.var(id("outorg"));
      oput1 = p.chan(id("oput1"));
      gdata = p.chan(id("gdata"));
      gdone = p.var(id("done"));
    }
    std::vector<int> inflight_slots;
    for (int c = 0; c < C(); ++c) {
      int s = c % 2;
      for (int n = 0; n < sh.nodes; ++n) {
        // Every local waits out the slot's previous occupants, writes its
        // slice, and bumps the filled counter.
        for (int l = 0; l < T(); ++l) {
          int t = rk(n, l);
          p.await_ge(t, freed(n, s), static_cast<std::uint64_t>(c / 2));
          p.write(t, stage(n, s), static_cast<std::uint64_t>(l),
                  static_cast<std::uint64_t>(l) + 1);
          p.add(t, filled(n, s), 1);
        }
        int ld = rk(n, 0);
        p.await_ge(ld, filled(n, s),
                   static_cast<std::uint64_t>(c / 2 + 1) *
                       static_cast<std::uint64_t>(T()));
        if (n == 0) {
          // Root node: straight into the receive buffer.
          p.read(ld, stage(0, s), 0, W());
          p.write(ld, res, 0, W());
          p.add(ld, freed(0, s), 1);
        } else {
          // Child leader: put the chunk into its final location; the freed
          // bump waits for the origin counter (adapter done with the slot).
          p.send(ld, oput1);
          int a = adp(1);
          p.recv(a, oput1);
          p.read(a, stage(1, s), 0, W());
          p.add(a, outorg, 1);
          p.send(a, gdata);
          p.recv(nic(0), gdata);
          p.write(nic(0), res, W(), 2 * W());
          p.add(nic(0), gdone, 1);
          inflight_slots.push_back(s);
          if (inflight_slots.size() >= 2) {
            p.wait_dec(ld, outorg, 1);
            p.add(ld, freed(1, inflight_slots.front()), 1);
            inflight_slots.erase(inflight_slots.begin());
          }
        }
      }
    }
    while (!inflight_slots.empty()) {
      p.wait_dec(rk(1, 0), outorg, 1);
      p.add(rk(1, 0), freed(1, inflight_slots.front()), 1);
      inflight_slots.erase(inflight_slots.begin());
    }
    if (sh.nodes == 2) {
      p.wait_dec(rk(0, 0), gdone, static_cast<std::uint64_t>(C()));
    }
    return res;
  }

  // --- single-copy (core/single_copy.cpp): shm::Mapping window handshake ---
  //
  // A window is {buf, pub flag, done counter}. publish = write buf + set pub
  // (release); attach = await pub (acquire); detach = done+=1; retract =
  // await done >= readers, then the owner's next write of the buffer — the
  // reuse that retract makes legal, and the access every retract bug races.

  /// Mapped SMP broadcast cascade on node n (smp_bcast_mapped): the owner
  /// exports its user buffer; with >= 3 tasks local 1 acts as the interior
  /// relay of the topology tree and re-exports its copy for the leaves.
  void mapped_cascade(int n) {
    if (T() == 1) return;  // nothing to fan out
    int owner = rk(n, 0);
    int win = p.buf(id("win" + num(n) + ".0"));
    int pubv = p.var(id("mpub" + num(n) + ".0"));
    int donev = p.var(id("mdone" + num(n) + ".0"));
    p.window(win, pubv, donev, owner);
    bool relay_on = T() >= 3;
    // Owner: publish (produce the data, then release the generation flag).
    p.write(owner, win, 0, W());
    p.set(owner, pubv, 1);
    if (!relay_on) {
      for (int l = 1; l < T(); ++l) {
        int t = rk(n, l);
        p.await_ge(t, pubv, 1);
        p.read(t, win, 0, W());
        p.add(t, donev, 1);
      }
    } else {
      int relay = rk(n, 1);
      p.await_ge(relay, pubv, 1);
      p.read(relay, win, 0, W());
      p.add(relay, donev, 1);  // detach before re-exporting, like the code
      int win2 = p.buf(id("win" + num(n) + ".1"));
      int pub2 = p.var(id("mpub" + num(n) + ".1"));
      int done2 = p.var(id("mdone" + num(n) + ".1"));
      p.window(win2, pub2, done2, relay);
      p.write(relay, win2, 0, W());
      p.set(relay, pub2, 1);
      for (int l = 2; l < T(); ++l) {
        int t = rk(n, l);
        p.await_ge(t, pub2, 1);
        p.read(t, win2, 0, W());
        p.add(t, done2, 1);
      }
      p.await_ge(relay, done2, static_cast<std::uint64_t>(T()) - 2);
      p.write(relay, win2, 0, W());  // retract: the buffer is private again
    }
    p.await_ge(owner, donev, relay_on ? 1 : static_cast<std::uint64_t>(T()) - 1);
    p.write(owner, win, 0, W());  // retract: owner may reuse immediately
  }

  /// Single-copy broadcast: root node fans out through one whole-message
  /// window (after the network puts are on the wire); a second node keeps
  /// the staged landing-pair protocol, exactly like bcast_small.
  void sc_bcast() {
    if (sh.nodes == 2) {
      int root = rk(0, 0), child = rk(1, 0);
      int put01 = p.chan(id("put01")), cred10 = p.chan(id("cred10"));
      for (int c = 0; c < C(); ++c) {
        int s = c % 2;
        int freev = p.var(id("free.s" + num(s)), 1);
        int arrv = p.var(id("arr.s" + num(s)));
        int land = p.buf(id("land.s" + num(s)));
        p.wait_dec(root, freev, 1);
        p.send(root, put01);  // sourced from the (private) user buffer
        p.recv(nic(1), put01);
        p.write(nic(1), land, 0, W());
        p.add(nic(1), arrv, 1);
        p.wait_dec(child, arrv, 1);
        smp_shared_chunk(1, c, land);
        for (int l = 1; l < T(); ++l) p.await_eq(child, ready(1, s, l), 0);
        p.send(child, cred10);
        p.recv(nic(0), cred10);
        p.add(nic(0), freev, 1);
      }
    }
    mapped_cascade(0);
  }

  /// Single-copy reduce: leaves export their send buffers once; with >= 3
  /// tasks local 1 is the interior vertex combining leaf windows into its
  /// sc_acc slot pair (gated like red_slot); the leader combines out of the
  /// relay's slots (or the leaf window directly) with no staging copy.
  int sc_reduce() {
    int res = p.buf(id("res0"));
    auto win = [&](int n, int l) {
      return p.buf(id("rwin" + num(n) + "[" + num(l) + "]"));
    };
    auto wpub = [&](int n, int l) {
      return p.var(id("rwpub" + num(n) + "[" + num(l) + "]"));
    };
    auto wdone = [&](int n, int l) {
      return p.var(id("rwdone" + num(n) + "[" + num(l) + "]"));
    };
    auto acc = [&](int n, int s) {
      return p.buf(id("acc" + num(n) + ".s" + num(s)));
    };
    auto apub = [&](int n) { return p.var(id("apub" + num(n))); };
    auto acons = [&](int n, int s) {
      return p.var(id("acons" + num(n) + ".s" + num(s)));
    };
    bool relay_on = T() >= 3;
    std::vector<int> leaves;
    for (int l = relay_on ? 2 : 1; l < T(); ++l) leaves.push_back(l);

    int redfree = -1, outorg = -1, oput1 = -1, data10 = -1, cred01 = -1;
    if (sh.nodes == 2) {
      redfree = p.var(id("free"), 2);
      outorg = p.var(id("outorg"));
      oput1 = p.chan(id("oput1"));
      data10 = p.chan(id("data10"));
      cred01 = p.chan(id("cred01"));
    }

    // Publish + attach once per operation, before the chunk loop: leaves
    // export their whole send buffer; the vertex above them acquires it.
    for (int n = 0; n < sh.nodes; ++n) {
      if (T() == 1) continue;
      for (int l : leaves) {
        int t = rk(n, l);
        p.window(win(n, l), wpub(n, l), wdone(n, l), t);
        p.write(t, win(n, l), 0, W());
        p.set(t, wpub(n, l), 1);
      }
      int rd = relay_on ? rk(n, 1) : rk(n, 0);
      for (int l : leaves) p.await_ge(rd, wpub(n, l), 1);
    }

    int inflight = 0;
    for (int c = 0; c < C(); ++c) {
      int s = c % 2;
      for (int n = 0; n < sh.nodes; ++n) {
        if (relay_on) {
          // Interior vertex: slot-reuse gate, combine straight out of the
          // leaf windows (no per-chunk wait — they are static), publish.
          int rl = rk(n, 1);
          if (c >= 2) {
            p.await_ge(rl, acons(n, s), static_cast<std::uint64_t>(c / 2));
          }
          for (int l : leaves) p.read(rl, win(n, l), 0, W());
          p.write(rl, acc(n, s), 0, W());
          p.add(rl, apub(n), 1);
        }
        int ld = rk(n, 0);
        if (n == 1 && inflight == 2) {
          p.wait_dec(ld, outorg, 1);
          --inflight;
        }
        int dst = n == 0 ? res : p.buf(id("out.s" + num(s)));
        if (T() == 1) {
          p.write(ld, dst, 0, W());
        } else if (relay_on) {
          p.await_ge(ld, apub(n), static_cast<std::uint64_t>(c) + 1);
          p.read(ld, acc(n, s), 0, W());
          p.write(ld, dst, 0, W());
          p.add(ld, acons(n, s), 1);
        } else {
          p.read(ld, win(n, 1), 0, W());  // leaf window, attached up front
          p.write(ld, dst, 0, W());
        }
      }
      if (sh.nodes == 2) {
        int child = rk(1, 0), ld0 = rk(0, 0);
        int out = p.buf(id("out.s" + num(s)));
        int rland = p.buf(id("land.s" + num(s)));
        int arrived = p.var(id("arr"));
        p.wait_dec(child, redfree, 1);
        p.send(child, oput1);
        ++inflight;
        int a = adp(1);
        p.recv(a, oput1);
        p.read(a, out, 0, W());
        p.add(a, outorg, 1);
        p.send(a, data10);
        p.recv(nic(0), data10);
        p.write(nic(0), rland, 0, W());
        p.add(nic(0), arrived, 1);
        p.wait_dec(ld0, arrived, 1);
        p.read(ld0, rland, 0, W());
        p.write(ld0, res, 0, W());
        p.send(ld0, cred01);
        p.recv(nic(1), cred01);
        p.add(nic(1), redfree, 1);
      }
    }
    if (inflight > 0) {
      p.wait_dec(rk(1, 0), outorg, static_cast<std::uint64_t>(inflight));
    }
    // Detach + retract: only after the reader's counter may a leaf reuse
    // its send buffer.
    for (int n = 0; n < sh.nodes; ++n) {
      if (T() == 1) continue;
      int rd = relay_on ? rk(n, 1) : rk(n, 0);
      for (int l : leaves) p.add(rd, wdone(n, l), 1);
      for (int l : leaves) {
        int t = rk(n, l);
        p.await_ge(t, wdone(n, l), 1);
        p.write(t, win(n, l), 0, W());
      }
    }
    return res;
  }

  /// Single-copy scatter: the root exports its own node block before the
  /// network loop; root-node peers pull their slice straight out of the
  /// window; a second node keeps the staged slice protocol.
  void sc_scatter() {
    int root = rk(0, 0);
    int win = p.buf(id("swin0"));
    int pubv = p.var(id("spub0"));
    int donev = p.var(id("sdone0"));
    p.window(win, pubv, donev, root);
    p.write(root, win, 0, W());
    p.set(root, pubv, 1);
    for (int c = 0; c < C(); ++c) {
      int s = c % 2;
      if (sh.nodes == 2) {
        int freev = p.var(id("free.s" + num(s)), 1);
        p.wait_dec(root, freev, 1);
        p.send(root, p.chan(id("put01")));  // other node's block: private
        p.recv(nic(1), p.chan(id("put01")));
        p.write(nic(1), p.buf(id("land.s" + num(s))), 0, W());
        p.add(nic(1), p.var(id("arr.s" + num(s))), 1);
        int child = rk(1, 0);
        p.wait_dec(child, p.var(id("arr.s" + num(s))), 1);
        smp_shared_chunk(1, c, p.buf(id("land.s" + num(s))), /*slice=*/true);
        for (int l = 1; l < T(); ++l) p.await_eq(child, ready(1, s, l), 0);
        p.send(child, p.chan(id("cred10")));
        p.recv(nic(0), p.chan(id("cred10")));
        p.add(nic(0), p.var(id("free.s" + num(s)), 1), 1);
      }
    }
    for (int l = 1; l < T(); ++l) {
      int t = rk(0, l);
      p.await_ge(t, pubv, 1);
      p.read(t, win, static_cast<std::uint64_t>(l),
             static_cast<std::uint64_t>(l) + 1);
      p.add(t, donev, 1);
    }
    p.read(root, win, 0, 1);  // root's own slice
    if (T() > 1) {
      p.await_ge(root, donev, static_cast<std::uint64_t>(T()) - 1);
    }
    p.write(root, win, 0, W());  // retract: the send buffer is reusable
  }

  /// Single-copy gather: root-node locals export their send blocks; the
  /// root pulls each straight into the receive buffer (no staging slot);
  /// a second node keeps the staged filled/freed protocol.
  int sc_gather() {
    int res = p.buf(id("grecv"));
    int root = rk(0, 0);
    auto win = [&](int l) { return p.buf(id("gwin0[" + num(l) + "]")); };
    auto wpub = [&](int l) { return p.var(id("gwpub0[" + num(l) + "]")); };
    auto wdone = [&](int l) { return p.var(id("gwdone0[" + num(l) + "]")); };
    for (int l = 1; l < T(); ++l) {
      int t = rk(0, l);
      p.window(win(l), wpub(l), wdone(l), t);
      p.write(t, win(l), 0, 1);
      p.set(t, wpub(l), 1);
    }
    p.write(root, res, 0, 1);  // root's own block
    for (int l = 1; l < T(); ++l) {
      p.await_ge(root, wpub(l), 1);
      p.read(root, win(l), 0, 1);
      p.write(root, res, static_cast<std::uint64_t>(l),
              static_cast<std::uint64_t>(l) + 1);
      p.add(root, wdone(l), 1);
    }
    for (int l = 1; l < T(); ++l) {
      int t = rk(0, l);
      p.await_ge(t, wdone(l), 1);
      p.write(t, win(l), 0, 1);  // retract: reuse the send buffer
    }
    if (sh.nodes == 2) {
      // The child node ships its blocks with the staged protocol: address
      // announce, staging pair with filled/freed counters, direct puts.
      auto filled = [&](int s) { return p.var(id("filled1.s" + num(s))); };
      auto freed = [&](int s) { return p.var(id("freed1.s" + num(s))); };
      auto stage = [&](int s) { return p.buf(id("stage1.s" + num(s))); };
      p.send(root, p.chan(id("addr01")));
      p.recv(nic(1), p.chan(id("addr01")));
      p.add(nic(1), p.var(id("addrarr")), 1);
      p.wait_dec(rk(1, 0), p.var(id("addrarr")), 1);
      int outorg = p.var(id("outorg"));
      int oput1 = p.chan(id("oput1"));
      int gdata = p.chan(id("gdata"));
      int gdone = p.var(id("done"));
      std::vector<int> inflight_slots;
      for (int c = 0; c < C(); ++c) {
        int s = c % 2;
        for (int l = 0; l < T(); ++l) {
          int t = rk(1, l);
          p.await_ge(t, freed(s), static_cast<std::uint64_t>(c / 2));
          p.write(t, stage(s), static_cast<std::uint64_t>(l),
                  static_cast<std::uint64_t>(l) + 1);
          p.add(t, filled(s), 1);
        }
        int ld = rk(1, 0);
        p.await_ge(ld, filled(s),
                   static_cast<std::uint64_t>(c / 2 + 1) *
                       static_cast<std::uint64_t>(T()));
        p.send(ld, oput1);
        int a = adp(1);
        p.recv(a, oput1);
        p.read(a, stage(s), 0, W());
        p.add(a, outorg, 1);
        p.send(a, gdata);
        p.recv(nic(0), gdata);
        p.write(nic(0), res, W(), 2 * W());
        p.add(nic(0), gdone, 1);
        inflight_slots.push_back(s);
        if (inflight_slots.size() >= 2) {
          p.wait_dec(ld, outorg, 1);
          p.add(ld, freed(inflight_slots.front()), 1);
          inflight_slots.erase(inflight_slots.begin());
        }
      }
      while (!inflight_slots.empty()) {
        p.wait_dec(rk(1, 0), outorg, 1);
        p.add(rk(1, 0), freed(inflight_slots.front()), 1);
        inflight_slots.erase(inflight_slots.begin());
      }
      p.wait_dec(root, gdone, static_cast<std::uint64_t>(C()));
    }
    return res;
  }
};

void emit(Program& p, Proto op, const Shape& sh) {
  switch (op) {
    case Proto::barrier:
      Builder{p, sh, ""}.barrier();
      break;
    case Proto::bcast:
      Builder{p, sh, ""}.bcast();
      break;
    case Proto::reduce:
      Builder{p, sh, ""}.reduce();
      break;
    case Proto::allreduce:
      Builder{p, sh, ""}.allreduce();
      break;
    case Proto::scatter:
      Builder{p, sh, ""}.scatter();
      break;
    case Proto::gather:
      Builder{p, sh, ""}.gather();
      break;
    case Proto::allgather: {
      int res = Builder{p, sh, "ga."}.gather();
      // The broadcast ships the whole gathered buffer, all nodes' slices.
      Builder{p, sh, "bc."}.bcast(res, static_cast<std::uint64_t>(sh.nodes) *
                                           static_cast<std::uint64_t>(sh.tasks));
      break;
    }
    case Proto::reduce_scatter: {
      int res = Builder{p, sh, "rd."}.reduce();
      Builder{p, sh, "sc."}.scatter(res);
      break;
    }
    case Proto::sc_bcast:
      Builder{p, sh, ""}.sc_bcast();
      break;
    case Proto::sc_reduce:
      Builder{p, sh, ""}.sc_reduce();
      break;
    case Proto::sc_scatter:
      Builder{p, sh, ""}.sc_scatter();
      break;
    case Proto::sc_gather:
      Builder{p, sh, ""}.sc_gather();
      break;
    case Proto::ring_allreduce:
      Builder{p, sh, ""}.ring_allreduce();
      break;
    case Proto::rh_allreduce:
      Builder{p, sh, ""}.rh_allreduce();
      break;
    case Proto::sa_bcast:
      Builder{p, sh, ""}.sa_bcast();
      break;
  }
}

Mutant make_mutant(const std::string& name, Proto op, Shape sh, bool race,
                   bool deadlock) {
  Mutant m;
  m.name = name;
  m.proto = op;
  m.shape = sh;
  m.program = build(op, sh);
  m.program.name = name;
  m.expect_race = race;
  m.expect_deadlock = deadlock;
  return m;
}

}  // namespace

std::string Shape::to_string() const {
  return std::to_string(nodes) + "x" + std::to_string(tasks) + "c" +
         std::to_string(chunks);
}

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::barrier: return "barrier";
    case Proto::bcast: return "bcast";
    case Proto::reduce: return "reduce";
    case Proto::allreduce: return "allreduce";
    case Proto::scatter: return "scatter";
    case Proto::gather: return "gather";
    case Proto::allgather: return "allgather";
    case Proto::reduce_scatter: return "reduce_scatter";
    case Proto::sc_bcast: return "sc_bcast";
    case Proto::sc_reduce: return "sc_reduce";
    case Proto::sc_scatter: return "sc_scatter";
    case Proto::sc_gather: return "sc_gather";
    case Proto::ring_allreduce: return "ring_allreduce";
    case Proto::rh_allreduce: return "rh_allreduce";
    case Proto::sa_bcast: return "sa_bcast";
  }
  return "?";
}

const std::vector<Proto>& all_protos() {
  static const std::vector<Proto> kAll = {
      Proto::barrier,        Proto::bcast,          Proto::reduce,
      Proto::allreduce,      Proto::scatter,        Proto::gather,
      Proto::allgather,      Proto::reduce_scatter, Proto::sc_bcast,
      Proto::sc_reduce,      Proto::sc_scatter,     Proto::sc_gather,
      Proto::ring_allreduce, Proto::rh_allreduce,   Proto::sa_bcast};
  return kAll;
}

Program build(Proto op, const Shape& sh) {
  SRM_CHECK_MSG(sh.nodes == 1 || sh.nodes == 2,
                "mc model supports 1 or 2 nodes, got " << sh.nodes);
  SRM_CHECK_MSG(sh.tasks >= 1 && sh.chunks >= 1,
                "bad shape " << sh.to_string());
  Program p;
  p.name = std::string(proto_name(op)) + "@" + sh.to_string();
  emit(p, op, sh);
  p.validate();
  return p;
}

std::vector<Mutant> mutation_gauntlet() {
  std::vector<Mutant> out;
  auto add = [&out](Mutant m) { out.push_back(std::move(m)); };

  // Fig. 3 broadcast: a child-node consumer that never clears READY wedges
  // the child leader's credit-return gate, so the credit never flows back.
  {
    Mutant m = make_mutant("bcast.drop_ready_clear", Proto::bcast,
                           Shape{2, 2, 1}, false, true);
    m.program.drop_op("r1.1", "ready1.s0[1]:=0");
    add(std::move(m));
  }
  // A leader that skips the slot-reuse acquire refills over the straggler's
  // read; schedules where the straggler instead sees the refilled flag late
  // strand it behind a flag nobody sets again, so both defects manifest.
  {
    Mutant m = make_mutant("bcast.refill_before_clear", Proto::bcast,
                           Shape{1, 2, 3}, true, true);
    m.program.drop_last_op("r0.0", "await ready0.s0[1]==0");
    add(std::move(m));
  }
  // Flat barrier: a worker that never signals, and a master that never
  // releases, both wedge the node.
  {
    Mutant m = make_mutant("barrier.drop_worker_signal", Proto::barrier,
                           Shape{1, 2, 1}, false, true);
    m.program.drop_op("r0.1", "bar0[1]:=1");
    add(std::move(m));
  }
  {
    Mutant m = make_mutant("barrier.drop_release", Proto::barrier,
                           Shape{1, 2, 1}, false, true);
    m.program.drop_op("r0.0", "bar0[1]:=0");
    add(std::move(m));
  }
  // Recursive doubling: a dropped zero-byte put stalls the partner's round.
  {
    Mutant m = make_mutant("barrier.drop_round_signal", Proto::barrier,
                           Shape{2, 1, 1}, false, true);
    m.program.drop_op("r0.0", "send sig0");
    add(std::move(m));
  }
  // Fig. 2 reduce: publishing the slot before writing it lets the leader
  // combine garbage (reordered counter bump).
  {
    Mutant m = make_mutant("reduce.publish_before_write", Proto::reduce,
                           Shape{1, 2, 1}, true, false);
    m.program.swap_with_prev("r0.1", "pub0[1]+=1");
    add(std::move(m));
  }
  // Fig. 2 slot reuse: skipping the consumed-counter gate overwrites a slot
  // the leader is still combining from.
  {
    Mutant m = make_mutant("reduce.drop_consumed_gate", Proto::reduce,
                           Shape{1, 2, 3}, true, false);
    m.program.drop_op("r0.1", "await cons0.s0[1]>=1");
    add(std::move(m));
  }
  // Inter-node reduce: a skipped landing credit lets the child's put deposit
  // over a slot the root is still reading.
  {
    Mutant m = make_mutant("reduce.drop_credit_wait", Proto::reduce,
                           Shape{2, 1, 3}, true, false);
    m.program.drop_op("r1.0", "waitdec free-1");
    add(std::move(m));
  }
  // Allreduce: combining into the result buffer while it is still the
  // source of an in-flight put (skipped origin-counter wait).
  {
    Mutant m = make_mutant("allreduce.drop_origin_wait", Proto::allreduce,
                           Shape{2, 1, 1}, true, false);
    m.program.drop_op("r0.0", "waitdec org0-1");
    add(std::move(m));
  }
  // Allreduce: the NIC signalling arrival before the deposit is complete.
  {
    Mutant m = make_mutant("allreduce.signal_before_deposit",
                           Proto::allreduce, Shape{2, 1, 1}, true, false);
    m.program.swap_with_prev("nic1", "arr1+=1");
    add(std::move(m));
  }
  // Gather: the leader moving a chunk before all local slices arrived.
  {
    Mutant m = make_mutant("gather.drop_filled_wait", Proto::gather,
                           Shape{1, 2, 1}, true, false);
    m.program.drop_op("r0.0", "await filled0.s0>=2");
    add(std::move(m));
  }
  // Gather staging reuse: a local skipping the freed gate overwrites a slot
  // the leader is still shipping.
  {
    Mutant m = make_mutant("gather.drop_freed_gate", Proto::gather,
                           Shape{1, 2, 3}, true, false);
    m.program.drop_op("r0.1", "await freed0.s0>=1");
    add(std::move(m));
  }
  // Allgather: broadcasting the gathered buffer before the last remote
  // chunks landed in it.
  {
    Mutant m = make_mutant("allgather.drop_done_wait", Proto::allgather,
                           Shape{2, 1, 1}, true, false);
    m.program.drop_op("r0.0", "waitdec ga.done-1");
    add(std::move(m));
  }
  // Scatter: returning the landing credit before the consumers cleared
  // READY lets the root's next put race the stragglers.
  {
    Mutant m = make_mutant("scatter.credit_before_clear", Proto::scatter,
                           Shape{2, 2, 3}, true, false);
    m.program.swap_with_prev("r1.0", "send cred10");
    add(std::move(m));
  }
  // Mapped broadcast: the owner reusing its buffer without awaiting the
  // readers' detach counters (skipped retract) races the window pulls.
  {
    Mutant m = make_mutant("sc_bcast.reuse_before_retract", Proto::sc_bcast,
                           Shape{1, 2, 1}, true, false);
    m.program.drop_op("r0.0", "await mdone0.0>=1");
    add(std::move(m));
  }
  // Mapped broadcast: a leaf attaching without the publish acquire reads
  // the relay's re-exported window before (or while) the relay fills it.
  {
    Mutant m = make_mutant("sc_bcast.attach_before_publish", Proto::sc_bcast,
                           Shape{1, 3, 1}, true, false);
    m.program.drop_op("r0.2", "await mpub0.1>=1");
    add(std::move(m));
  }
  // Mapped broadcast: a reader that never detaches wedges the owner's
  // retract forever.
  {
    Mutant m = make_mutant("sc_bcast.drop_detach", Proto::sc_bcast,
                           Shape{1, 2, 1}, false, true);
    m.program.drop_op("r0.1", "mdone0.0+=1");
    add(std::move(m));
  }
  // Mapped reduce: a leaf releasing the publish flag before writing its
  // send buffer lets the reader combine garbage.
  {
    Mutant m = make_mutant("sc_reduce.publish_before_write", Proto::sc_reduce,
                           Shape{1, 2, 1}, true, false);
    m.program.swap_with_prev("r0.1", "rwpub0[1]:=1");
    add(std::move(m));
  }
  // Mapped reduce: the reader never detaching wedges the leaf's retract.
  {
    Mutant m = make_mutant("sc_reduce.drop_detach", Proto::sc_reduce,
                           Shape{1, 2, 1}, false, true);
    m.program.drop_op("r0.0", "rwdone0[1]+=1");
    add(std::move(m));
  }
  // Mapped reduce slot reuse: the interior vertex skipping the consumed
  // gate overwrites an accumulator slot the leader is still reading.
  {
    Mutant m = make_mutant("sc_reduce.drop_acons_gate", Proto::sc_reduce,
                           Shape{1, 3, 3}, true, false);
    m.program.drop_op("r0.1", "await acons0.s0>=1");
    add(std::move(m));
  }
  // Mapped scatter: the root reusing its send buffer before all slices
  // were pulled out of the window.
  {
    Mutant m = make_mutant("sc_scatter.reuse_before_retract",
                           Proto::sc_scatter, Shape{1, 2, 1}, true, false);
    m.program.drop_op("r0.0", "await sdone0>=1");
    add(std::move(m));
  }
  // Mapped gather: a local releasing the publish flag before writing its
  // block lets the root assemble garbage.
  {
    Mutant m = make_mutant("sc_gather.publish_before_write", Proto::sc_gather,
                           Shape{1, 2, 1}, true, false);
    m.program.swap_with_prev("r0.1", "gwpub0[1]:=1");
    add(std::move(m));
  }
  // Ring allreduce: combining into the owned block while it is still the
  // source of the in-flight reduce-scatter put (skipped origin wait).
  {
    Mutant m = make_mutant("ring_allreduce.drop_origin_wait",
                           Proto::ring_allreduce, Shape{2, 1, 1}, true, false);
    m.program.drop_op("r0.0", "waitdec rsorg0-1");
    add(std::move(m));
  }
  // Recursive halving: the NIC signalling the half's arrival before the
  // deposit is complete lets the master fold garbage in.
  {
    Mutant m = make_mutant("rh_allreduce.signal_before_deposit",
                           Proto::rh_allreduce, Shape{2, 1, 1}, true, false);
    m.program.swap_with_prev("nic1", "hxarr1+=1");
    add(std::move(m));
  }
  // Scatter+allgather bcast: forwarding the scattered block before its
  // arrival counter fires reads a landing buffer the NIC is still filling.
  {
    Mutant m = make_mutant("sa_bcast.forward_before_arrival", Proto::sa_bcast,
                           Shape{2, 1, 1}, true, false);
    m.program.drop_op("r1.0", "waitdec scarr-1");
    add(std::move(m));
  }
  // Scatter+allgather bcast: a dropped scatter-arrival signal wedges the
  // child's forward, and with it the root's assembly.
  {
    Mutant m = make_mutant("sa_bcast.drop_scatter_signal", Proto::sa_bcast,
                           Shape{2, 1, 1}, false, true);
    m.program.drop_op("nic1", "scarr+=1");
    add(std::move(m));
  }
  return out;
}

}  // namespace srm::mc
