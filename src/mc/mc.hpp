// srm::mc — explicit-state model checker over the protocol IR (ir.hpp).
//
// check() enumerates interleavings of a Program's threads and verifies, on
// every reachable execution:
//   * race-freedom     — no two conflicting buffer accesses (one a write,
//     overlapping bytes, different threads) without a happens-before edge
//     through the protocol's own flags / counters / messages. Buffer-slot
//     reuse before all readers cleared their READY flags is exactly such a
//     race (the refill write is unordered with the straggler's read);
//   * deadlock-freedom — no reachable state where some thread is blocked
//     (await / wait_dec / recv) and nothing can run.
//
// Exploration is depth-first with two modes:
//   * naive (Options::dpor = false): every enabled thread is tried at every
//     state — the full interleaving tree, exponential, used as the baseline
//     the reduction is measured against;
//   * DPOR (default): dynamic partial-order reduction in the style of
//     Flanagan & Godefroid, with persistent (backtrack) sets computed from
//     the dependency relation observed in the executed trace, plus sleep
//     sets. Two operations are dependent iff they act on the same
//     synchronization object (or belong to the same thread); buffer accesses
//     never branch the search at all — they are folded into the adjacent
//     synchronization step of their thread, which is sound because they
//     neither block nor change sync state, and the vector-clock race check
//     is insensitive to where in the step they are replayed.
//
// Every counterexample carries the schedule (sequence of thread steps) that
// reaches it; replay.hpp turns that schedule into a concrete sim::Engine run
// against the real shm/chk machinery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mc/ir.hpp"

namespace srm::mc {

struct Options {
  bool dpor = true;         ///< false: naive full enumeration (baseline)
  bool sleep_sets = true;   ///< extra reduction on top of DPOR
  bool check_deadlock = true;  ///< report blocked states (off for programs
                               ///< extracted from traces, whose await
                               ///< thresholds are approximate)
  std::uint64_t max_transitions = 5'000'000;  ///< exploration budget
  std::size_t max_reports = 8;  ///< distinct counterexamples kept per kind
};

/// Two unordered conflicting accesses, plus the schedule reaching them.
/// `schedule[i]` is the thread that runs step i; the racing access executes
/// during the final step.
struct Race {
  std::string buf;
  std::uint64_t lo = 0, hi = 0;
  std::string first_thread, second_thread;
  std::string first_op, second_op;
  std::vector<int> schedule;
  std::string to_string() const;
};

/// A reachable blocked state: every unfinished thread is stuck on its guard.
struct Deadlock {
  std::vector<int> schedule;
  std::vector<std::string> blocked;  ///< "rank1.2 blocked at 'await f==1'"
  std::string to_string() const;
};

struct Result {
  std::uint64_t traces = 0;        ///< maximal executions fully explored
  std::uint64_t transitions = 0;   ///< thread steps executed
  std::uint64_t distinct_states = 0;  ///< distinct (pc, vars, chans) seen
  std::uint64_t sleep_cut = 0;     ///< branches suppressed by sleep sets
  std::uint64_t max_depth = 0;     ///< longest execution (steps)
  std::uint64_t races_found = 0;   ///< total race observations (pre-dedupe)
  std::uint64_t deadlocks_found = 0;
  bool budget_exhausted = false;
  std::vector<Race> races;         ///< deduped, at most max_reports
  std::vector<Deadlock> deadlocks;

  /// Exhaustively verified clean: no counterexamples and the search space
  /// was fully covered within budget.
  bool ok() const {
    return races.empty() && deadlocks.empty() && !budget_exhausted;
  }
  std::string summary() const;
};

/// Explore @p p under @p opt. Throws util::CheckError only on malformed
/// programs (validate()); protocol failures are returned, never thrown.
Result check(const Program& p, const Options& opt = {});

}  // namespace srm::mc
