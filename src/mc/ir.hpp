// srm::mc — a declarative protocol IR for the SRM synchronization skeletons.
//
// The paper's collectives synchronize through a handful of primitives: READY
// flags per consumer per buffer slot (Fig. 3), monotonic published/consumed
// counters for the reduce chunk slots (Fig. 2), LAPI counters with
// Waitcntr's wait-then-subtract semantics (§2.3), and one-sided puts whose
// deposits run in the target's dispatcher. A Program captures exactly that
// skeleton as a small explicit transition system:
//
//   * threads  — one per simulated rank, plus one "nic" thread per node for
//     dispatcher-executed deposits (puts land asynchronously w.r.t. the
//     origin's later operations);
//   * vars     — flags and counters with set / add / await(==,!=,>=) /
//     wait_dec (LAPI_Waitcntr: block until >= v, then subtract v);
//   * bufs     — shared byte ranges; read/write record accesses for the
//     happens-before race check but never block or branch;
//   * chans    — FIFO message channels (a put in flight, or a mini-MPI
//     message): send never blocks, recv blocks while empty, and the matched
//     pair is a happens-before edge.
//
// The model checker (mc.hpp) enumerates every inequivalent interleaving of a
// Program; the replay harness (replay.hpp) executes a schedule against the
// real shm::SharedFlag / chk::Checker machinery on sim::Engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace srm::mc {

enum class OpKind : std::uint8_t {
  set,       // vars[obj] = a
  add,       // vars[obj] += a
  await_eq,  // block until vars[obj] == a
  await_ne,  // block until vars[obj] != a
  await_ge,  // block until vars[obj] >= a
  wait_dec,  // block until vars[obj] >= a, then vars[obj] -= a
  write,     // write bytes [a, b) of bufs[obj]
  read,      // read bytes [a, b) of bufs[obj]
  send,      // append one message to chans[obj]
  recv,      // pop one message from chans[obj]; blocks while empty
};

/// True for ops that can suspend a thread (everything that has a guard).
bool blocking(OpKind k);
/// True for buffer accesses (never scheduling points; folded into the next
/// synchronization step of the same thread).
bool is_access(OpKind k);

struct Op {
  OpKind kind{};
  int obj = 0;               // var / buf / chan index, by kind
  std::uint64_t a = 0;       // value, threshold, or byte range lo
  std::uint64_t b = 0;       // byte range hi (accesses only)
  std::string label;         // human-readable, e.g. "ready0[2]:=1"
};

struct Thread {
  std::string name;
  std::vector<Op> ops;
};

/// A shm::Mapping window as the single-copy protocols model it: a shared
/// buffer plus its publish generation flag and detach counter, owned by the
/// exporting thread. The emitters register every window they lay down so
/// static analyses (src/sa) can check the publish/attach/detach/retract
/// discipline structurally instead of re-deriving it from object names.
struct Window {
  int buf = -1;
  int pub_var = -1;
  int done_var = -1;
  int owner = -1;  ///< thread id of the exporting task
};

/// A complete protocol instance. Build with the helpers below; every name is
/// interned once (re-declaring a var with a different initial value is an
/// error caught by validate()).
struct Program {
  std::string name;
  std::vector<std::string> var_names;
  std::vector<std::uint64_t> var_init;
  std::vector<std::string> buf_names;
  std::vector<std::string> chan_names;
  std::vector<Thread> threads;
  std::vector<Window> windows;

  int var(const std::string& n, std::uint64_t init = 0);
  int buf(const std::string& n);
  int chan(const std::string& n);
  int thread(const std::string& n);
  /// Find an existing thread by name (-1 when absent).
  int find_thread(const std::string& n) const;
  /// Register a shm::Mapping window (buffer + publish flag + detach counter
  /// + owning thread) for the introspection passes. validate() checks the
  /// indices.
  void window(int buf, int pub_var, int done_var, int owner_tid);

  // --- op emitters (labels are generated from the object names) ------------
  void set(int tid, int var, std::uint64_t v);
  void add(int tid, int var, std::uint64_t delta = 1);
  void await_eq(int tid, int var, std::uint64_t v);
  void await_ne(int tid, int var, std::uint64_t v);
  void await_ge(int tid, int var, std::uint64_t v);
  void wait_dec(int tid, int var, std::uint64_t v = 1);
  void write(int tid, int buf, std::uint64_t lo, std::uint64_t hi);
  void read(int tid, int buf, std::uint64_t lo, std::uint64_t hi);
  void send(int tid, int chan);
  void recv(int tid, int chan);

  std::size_t total_ops() const;
  /// Throws util::CheckError on malformed programs (bad indices, empty
  /// threads are allowed but pointless).
  void validate() const;
  std::string to_string() const;

  // --- mutation helpers (the gauntlet) -------------------------------------
  /// Remove the first op of @p thread whose label contains @p needle.
  /// Throws when no op matches — a gauntlet mutant must actually mutate.
  void drop_op(const std::string& thread, const std::string& needle);
  /// Remove the last matching op instead (targets the slot-reuse instance
  /// of a repeated guard, whose first occurrences are trivially true).
  void drop_last_op(const std::string& thread, const std::string& needle);
  /// Swap the first op of @p thread whose label contains @p needle with its
  /// predecessor (e.g. move a counter bump before the slot write).
  void swap_with_prev(const std::string& thread, const std::string& needle);

 private:
  void push(int tid, Op op);
};

}  // namespace srm::mc
