// Trace extraction: turn a chk::Checker event trace (one concrete execution
// of the real simulator) into a protocol IR Program whose *other*
// interleavings the model checker can then explore. This closes the loop in
// the opposite direction from replay.hpp: replay takes an abstract schedule
// to a concrete run, extraction lifts a concrete run back to an abstract
// skeleton.
//
// The lift is conservative and approximate:
//   * every release / counter bump becomes a monotonic add;
//   * every acquire becomes await_ge with the release count observed at that
//     point of the trace — a threshold that makes the recorded schedule
//     feasible but may be stricter or looser than the real guard, so
//     deadlock checking is off by default for extracted programs
//     (extracted_options());
//   * messages become per-consumer FIFO channels: the fork's send, the
//     receiver's recv, and the NIC-side join/deposit run on a per-origin
//     "nic<k>" thread, preserving the asynchrony of one-sided puts;
//   * accesses keep their exact byte ranges, so the race verdict transfers.
#pragma once

#include <string>
#include <vector>

#include "chk/chk.hpp"
#include "mc/ir.hpp"
#include "mc/mc.hpp"

namespace srm::mc {

/// Build a Program from @p trace (see chk::Checker::set_trace). @p nactors
/// is the checker's actor count; actor i becomes thread "a<i>".
Program skeleton_from_trace(const std::vector<chk::TraceEvent>& trace,
                            int nactors,
                            const std::string& name = "trace");

/// check() options suited to extracted programs: full DPOR, but deadlock
/// reporting off (await thresholds are approximations of the real guards).
Options extracted_options();

}  // namespace srm::mc
