#include "mc/replay.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <sstream>
#include <utility>

#include "machine/params.hpp"
#include "shm/flag.hpp"
#include "sim/wait.hpp"
#include "util/check.hpp"

namespace srm::mc {
namespace {

/// FIFO queue of in-flight message clock snapshots (a put on the wire).
struct Chan {
  std::deque<chk::MsgClock> q;
  std::unique_ptr<sim::WaitQueue> wq;
};

/// The turn token: step i belongs to thread order[i]; once the order is
/// exhausted, every thread may run (free-run tail).
struct Turn {
  std::vector<int> order;
  std::size_t next = 0;
  std::unique_ptr<sim::WaitQueue> wq;

  bool mine(int tid) const {
    return next >= order.size() || order[next] == tid;
  }
  void advance() {
    if (next < order.size()) {
      ++next;
      wq->notify();
    }
  }
};

struct Ctx {
  const Program* prog;
  sim::Engine eng;
  chk::Checker checker;
  std::vector<std::unique_ptr<shm::SharedFlag>> flags;
  std::vector<std::vector<std::byte>> bufs;
  std::vector<Chan> chans;
  Turn turn;
  std::size_t threads_done = 0;

  Ctx(const Program& p, const ReplayOptions& opt)
      : prog(&p), checker(eng, static_cast<int>(p.threads.size())) {
    eng.set_tiebreak(opt.tiebreak, opt.seed);
    checker.set_enabled(opt.checker);
    checker.set_trace(opt.trace);
    machine::MemoryParams mem;  // the paper-calibrated flag propagation
    for (std::size_t v = 0; v < p.var_names.size(); ++v) {
      flags.push_back(std::make_unique<shm::SharedFlag>(
          eng, mem, p.var_init[v], p.var_names[v]));
    }
    bufs.resize(p.buf_names.size());
    std::vector<std::uint64_t> hi(p.buf_names.size(), 1);
    for (const Thread& t : p.threads) {
      for (const Op& op : t.ops) {
        if (is_access(op.kind)) {
          std::size_t b = static_cast<std::size_t>(op.obj);
          hi[b] = std::max(hi[b], op.b);
        }
      }
    }
    for (std::size_t b = 0; b < bufs.size(); ++b) {
      bufs[b].resize(hi[b]);
      checker.register_region(bufs[b].data(), bufs[b].size(),
                              p.buf_names[b]);
    }
    chans.resize(p.chan_names.size());
    for (std::size_t c = 0; c < chans.size(); ++c) {
      chans[c].wq =
          std::make_unique<sim::WaitQueue>(eng, p.chan_names[c]);
    }
    turn.wq = std::make_unique<sim::WaitQueue>(eng, "mc.schedule");
  }
};

void run_access(Ctx& cx, const chk::TaskChk& me, const Op& op) {
  std::vector<std::byte>& b = cx.bufs[static_cast<std::size_t>(op.obj)];
  const std::byte* p = b.data() + op.a;
  std::size_t len = op.b - op.a;
  if (op.kind == OpKind::write) {
    chk::note_write(me, p, len);
  } else {
    chk::note_read(me, p, len);
  }
}

sim::CoTask run_sync(Ctx& cx, int tid, const chk::TaskChk& me, const Op& op) {
  shm::SharedFlag* f =
      !is_access(op.kind) && op.kind != OpKind::send && op.kind != OpKind::recv
          ? cx.flags[static_cast<std::size_t>(op.obj)].get()
          : nullptr;
  switch (op.kind) {
    case OpKind::set:
      f->set(op.a, &me);
      break;
    case OpKind::add:
      f->add(op.a, &me);
      break;
    case OpKind::await_eq:
      co_await f->await_value(op.a, &me);
      break;
    case OpKind::await_ne:
      co_await f->await_not(op.a, &me);
      break;
    case OpKind::await_ge:
      co_await f->await_at_least(op.a, &me);
      break;
    case OpKind::wait_dec:
      // LAPI_Waitcntr: block until the counter reaches the threshold, then
      // atomically subtract it (the waiter's own store).
      co_await f->await_at_least(op.a, &me);
      f->set(f->raw_get() - op.a, &me);
      break;
    case OpKind::send: {
      Chan& ch = cx.chans[static_cast<std::size_t>(op.obj)];
      ch.q.push_back(cx.checker.enabled() ? cx.checker.fork(tid)
                                          : chk::MsgClock{});
      ch.wq->notify();
      break;
    }
    case OpKind::recv: {
      Chan& ch = cx.chans[static_cast<std::size_t>(op.obj)];
      co_await ch.wq->wait_until([&ch] { return !ch.q.empty(); }, tid);
      chk::MsgClock m = std::move(ch.q.front());
      ch.q.pop_front();
      if (cx.checker.enabled()) {
        cx.checker.acquire_msg(tid, m, op.label.c_str());
      }
      break;
    }
    case OpKind::write:
    case OpKind::read:
      SRM_CHECK_MSG(false, "access reached run_sync");
  }
}

sim::CoTask run_thread(Ctx& cx, int tid) {
  const std::vector<Op>& ops =
      cx.prog->threads[static_cast<std::size_t>(tid)].ops;
  chk::TaskChk me{&cx.checker, tid};
  std::size_t i = 0;
  // Leading accesses happen before any synchronization (model: at init).
  while (i < ops.size() && is_access(ops[i].kind)) run_access(cx, me, ops[i++]);
  while (i < ops.size()) {
    co_await cx.turn.wq->wait_until(
        [&cx, tid] { return cx.turn.mine(tid); }, tid);
    co_await run_sync(cx, tid, me, ops[i++]);
    // Trailing accesses ride on the synchronization step just taken.
    while (i < ops.size() && is_access(ops[i].kind)) {
      run_access(cx, me, ops[i++]);
    }
    cx.turn.advance();
  }
  ++cx.threads_done;
}

}  // namespace

std::string ReplayResult::to_string() const {
  std::ostringstream os;
  os << (completed ? "completed" : deadlocked ? "deadlocked" : "incomplete")
     << " pinned=" << steps_pinned << " races=" << races.size()
     << " accesses=" << accesses_checked << " sync_ops=" << sync_ops;
  if (deadlocked) os << "\n" << deadlock;
  for (const chk::RaceReport& r : races) os << "\n" << r.to_string();
  return os.str();
}

ReplayResult replay(const Program& p, const std::vector<int>& schedule,
                    const ReplayOptions& opt) {
  p.validate();
  for (int tid : schedule) {
    SRM_CHECK_MSG(tid >= 0 &&
                      static_cast<std::size_t>(tid) < p.threads.size(),
                  "replay: schedule names thread " << tid << " but program '"
                                                   << p.name << "' has "
                                                   << p.threads.size());
  }
  Ctx cx(p, opt);
  cx.turn.order = schedule;
  for (std::size_t t = 0; t < p.threads.size(); ++t) {
    cx.eng.spawn(run_thread(cx, static_cast<int>(t)));
  }
  ReplayResult res;
  try {
    cx.eng.run();
  } catch (const util::CheckError&) {
    res.deadlocked = true;
    res.deadlock = cx.eng.describe_deadlock();
  }
  res.completed = cx.threads_done == p.threads.size();
  res.steps_pinned = cx.turn.next;
  res.races = cx.checker.reports();
  res.accesses_checked = cx.checker.accesses_checked();
  res.sync_ops = cx.checker.sync_ops();
  if (opt.trace) res.trace = cx.checker.trace();
  return res;
}

}  // namespace srm::mc
