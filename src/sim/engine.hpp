// The discrete-event engine: a virtual clock and an ordered event queue.
//
// The pending-event set is an indexed calendar queue (sim/calendar.hpp):
// amortized O(1) push/pop where a binary heap pays O(log n), which matters
// once a 256K-rank collective keeps a pending event per rank. Coroutine
// frames come from a recycling pool (sim/pool.hpp) for the same reason.
//
// Events are (time, tie-break, sequence) ordered. The default tie-break is
// FIFO — two events at the same virtual time fire in the order they were
// scheduled — which makes every simulation run bitwise deterministic. For
// schedule-perturbation testing (srm::chk) the tie-break can be switched to a
// seeded random permutation of same-timestamp events: still deterministic for
// a given seed, but it explores orderings the FIFO rule would never produce,
// exactly the reorderings a real machine's race windows allow.
//
// The engine owns top-level coroutine processes (Engine::spawn) and detects
// deadlock: if the queue drains while spawned processes are still suspended,
// run() throws. Components that park coroutines (WaitQueue, Trigger, the
// chk::Checker) can register as BlockedInfoSource so the deadlock error names
// who is blocked on what instead of only counting suspended processes.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/calendar.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace srm::sim {

/// A component that can describe coroutines currently blocked on it.
/// Consulted (in registration order) when the engine detects deadlock.
class BlockedInfoSource {
 public:
  virtual ~BlockedInfoSource() = default;
  /// Append a description of currently blocked waiters; print nothing when
  /// nobody is blocked here.
  virtual void describe_blocked(std::ostream& os) const = 0;
};

/// Ordering policy for events scheduled at the same virtual time.
enum class TieBreak {
  fifo,    ///< schedule order (default; the seed behaviour)
  random,  ///< seeded random permutation of same-timestamp events
};

class Engine {
 public:
  using EventId = std::uint64_t;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  Time now() const noexcept { return now_; }

  /// Schedule @p fn at absolute time @p t (>= now).
  EventId call_at(Time t, std::function<void()> fn);

  /// Schedule resumption of coroutine @p h at absolute time @p t (>= now).
  EventId resume_at(Time t, std::coroutine_handle<> h);

  /// Cancel a previously scheduled event. Cancelling an event that already
  /// fired is a harmless no-op.
  void cancel(EventId id);

  /// Take ownership of a top-level process and schedule its start at now().
  void spawn(CoTask task);

  /// Run until the event queue is empty. Throws the first exception that
  /// escapes a spawned process, or CheckError on deadlock (queue empty while
  /// processes remain suspended).
  void run();

  /// Select how same-timestamp events are ordered. FIFO reproduces the
  /// schedule order; `random` permutes ties with a SplitMix64 stream seeded
  /// by @p seed (deterministic per seed). Affects only events scheduled
  /// after the call.
  void set_tiebreak(TieBreak policy, std::uint64_t seed = 0) {
    tiebreak_ = policy;
    tie_rng_ = util::SplitMix64(seed);
  }
  TieBreak tiebreak() const noexcept { return tiebreak_; }

  /// Register/unregister a source of blocked-waiter descriptions for the
  /// deadlock error message. Sources are reported in registration order.
  void add_blocked_source(BlockedInfoSource* src);
  void remove_blocked_source(BlockedInfoSource* src);

  /// The deadlock description the engine would throw right now: the base
  /// message plus every registered source's describe_blocked output.
  std::string describe_deadlock() const;

  /// Number of processes spawned that have not yet completed.
  std::size_t live_processes() const noexcept { return roots_.size() - reap_.size(); }

  /// Total events executed so far (monitoring/micro-benchmarks).
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Awaitable: suspend the current coroutine for @p d of virtual time.
  /// `co_await engine.sleep(us(5));`
  struct SleepAwaiter {
    Engine* eng;
    Duration d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      eng->resume_at(eng->now_ + d, h);
    }
    void await_resume() const noexcept {}
  };
  SleepAwaiter sleep(Duration d) noexcept { return SleepAwaiter{this, d}; }

 private:
  struct Ev {
    Time t;
    std::uint64_t key;               // tie-break within equal t (0 in FIFO)
    EventId id;
    std::coroutine_handle<> h;       // exactly one of h / fn is active
    std::function<void()> fn;
  };
  struct EvOrder {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.key != b.key) return a.key > b.key;
      return a.id > b.id;
    }
  };

  std::uint64_t next_key() {
    return tiebreak_ == TieBreak::random ? tie_rng_.next() : 0;
  }

  void reap_finished();

  Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  TieBreak tiebreak_ = TieBreak::fifo;
  util::SplitMix64 tie_rng_{0};
  CalendarQueue<Ev, EvOrder> queue_;
  std::unordered_set<EventId> cancelled_;

  // Blocked-info sources, reported in registration order. Declared before
  // roots_ so coroutine frames destroyed with the engine can still
  // unregister their wait-points.
  std::uint64_t next_source_id_ = 1;
  std::map<std::uint64_t, BlockedInfoSource*> blocked_sources_;
  std::unordered_map<BlockedInfoSource*, std::uint64_t> blocked_source_ids_;

  std::uint64_t next_root_ = 1;
  std::unordered_map<std::uint64_t, CoTask> roots_;
  std::vector<std::uint64_t> reap_;
  std::exception_ptr first_error_{};
};

}  // namespace srm::sim
