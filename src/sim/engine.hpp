// The discrete-event engine: a virtual clock and an ordered event queue.
//
// Events are (time, sequence) ordered — two events at the same virtual time
// fire in the order they were scheduled, which makes every simulation run
// bitwise deterministic. The engine owns top-level coroutine processes
// (Engine::spawn) and detects deadlock: if the queue drains while spawned
// processes are still suspended, run() throws.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/check.hpp"

namespace srm::sim {

class Engine {
 public:
  using EventId = std::uint64_t;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  Time now() const noexcept { return now_; }

  /// Schedule @p fn at absolute time @p t (>= now).
  EventId call_at(Time t, std::function<void()> fn);

  /// Schedule resumption of coroutine @p h at absolute time @p t (>= now).
  EventId resume_at(Time t, std::coroutine_handle<> h);

  /// Cancel a previously scheduled event. Cancelling an event that already
  /// fired is a harmless no-op.
  void cancel(EventId id);

  /// Take ownership of a top-level process and schedule its start at now().
  void spawn(CoTask task);

  /// Run until the event queue is empty. Throws the first exception that
  /// escapes a spawned process, or CheckError on deadlock (queue empty while
  /// processes remain suspended).
  void run();

  /// Number of processes spawned that have not yet completed.
  std::size_t live_processes() const noexcept { return roots_.size() - reap_.size(); }

  /// Total events executed so far (monitoring/micro-benchmarks).
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Awaitable: suspend the current coroutine for @p d of virtual time.
  /// `co_await engine.sleep(us(5));`
  struct SleepAwaiter {
    Engine* eng;
    Duration d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      eng->resume_at(eng->now_ + d, h);
    }
    void await_resume() const noexcept {}
  };
  SleepAwaiter sleep(Duration d) noexcept { return SleepAwaiter{this, d}; }

 private:
  struct Ev {
    Time t;
    EventId id;
    std::coroutine_handle<> h;       // exactly one of h / fn is active
    std::function<void()> fn;
  };
  struct EvOrder {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t != b.t ? a.t > b.t : a.id > b.id;
    }
  };

  void reap_finished();

  Time now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, EvOrder> queue_;
  std::unordered_set<EventId> cancelled_;

  std::uint64_t next_root_ = 1;
  std::unordered_map<std::uint64_t, CoTask> roots_;
  std::vector<std::uint64_t> reap_;
  std::exception_ptr first_error_{};
};

}  // namespace srm::sim
