#include "sim/resource.hpp"

#include <algorithm>
#include <cmath>

namespace srm::sim {

namespace {
constexpr double kEpsBytes = 1e-6;
}

FairShareResource::FairShareResource(Engine& eng, double total_bytes_per_sec,
                                     double per_stream_cap)
    : eng_(&eng), total_rate_(total_bytes_per_sec), cap_(per_stream_cap) {
  SRM_CHECK(total_rate_ > 0.0);
  SRM_CHECK(cap_ >= 0.0);
}

double FairShareResource::current_rate() const {
  if (active_.empty()) return cap_ > 0.0 ? std::min(cap_, total_rate_) : total_rate_;
  double share = total_rate_ / static_cast<double>(active_.size());
  return cap_ > 0.0 ? std::min(cap_, share) : share;
}

void FairShareResource::advance_to_now() {
  Time now = eng_->now();
  if (now == last_update_ || active_.empty()) {
    last_update_ = now;
    return;
  }
  double progressed =
      current_rate() * static_cast<double>(now - last_update_) / 1e9;
  for (auto& x : active_) x.remaining = std::max(0.0, x.remaining - progressed);
  last_update_ = now;
}

std::shared_ptr<Trigger> FairShareResource::start(double bytes) {
  SRM_CHECK(bytes >= 0.0);
  auto done = std::make_shared<Trigger>(*eng_);
  if (bytes <= kEpsBytes) {
    done->fire();
    return done;
  }
  advance_to_now();
  active_.push_back(Xfer{bytes, done});
  reschedule();
  return done;
}

void FairShareResource::reschedule() {
  if (has_pending_) {
    eng_->cancel(pending_);
    has_pending_ = false;
  }
  if (active_.empty()) return;
  double min_rem = active_.front().remaining;
  for (const auto& x : active_) min_rem = std::min(min_rem, x.remaining);
  Duration dt = duration_for(min_rem, current_rate());
  pending_ = eng_->call_at(eng_->now() + dt, [this] { on_deadline(); });
  has_pending_ = true;
}

void FairShareResource::on_deadline() {
  has_pending_ = false;
  advance_to_now();
  // Complete every transfer that has drained (ties complete together).
  std::size_t kept = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i].remaining <= kEpsBytes) {
      active_[i].done->fire();
    } else {
      active_[kept++] = std::move(active_[i]);
    }
  }
  active_.resize(kept);
  reschedule();
}

}  // namespace srm::sim
