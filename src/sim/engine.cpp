#include "sim/engine.hpp"

#include <sstream>

namespace srm::sim {

Engine::EventId Engine::call_at(Time t, std::function<void()> fn) {
  SRM_CHECK_MSG(t >= now_, "event scheduled in the past");
  EventId id = next_id_++;
  queue_.push(Ev{t, next_key(), id, {}, std::move(fn)});
  return id;
}

Engine::EventId Engine::resume_at(Time t, std::coroutine_handle<> h) {
  SRM_CHECK_MSG(t >= now_, "resume scheduled in the past");
  SRM_CHECK(h);
  EventId id = next_id_++;
  queue_.push(Ev{t, next_key(), id, h, {}});
  return id;
}

void Engine::cancel(EventId id) { cancelled_.insert(id); }

void Engine::spawn(CoTask task) {
  SRM_CHECK(task.valid());
  std::uint64_t key = next_root_++;
  auto h = task.handle();
  h.promise().on_complete = [this, key](std::exception_ptr e) noexcept {
    if (e && !first_error_) first_error_ = e;
    reap_.push_back(key);
  };
  roots_.emplace(key, std::move(task));
  resume_at(now_, h);
}

void Engine::add_blocked_source(BlockedInfoSource* src) {
  SRM_CHECK(src != nullptr);
  std::uint64_t id = next_source_id_++;
  blocked_sources_.emplace(id, src);
  blocked_source_ids_.emplace(src, id);
}

void Engine::remove_blocked_source(BlockedInfoSource* src) {
  auto it = blocked_source_ids_.find(src);
  if (it == blocked_source_ids_.end()) return;
  blocked_sources_.erase(it->second);
  blocked_source_ids_.erase(it);
}

std::string Engine::describe_deadlock() const {
  std::ostringstream os;
  os << "simulation deadlock: event queue empty but " << roots_.size()
     << " process(es) still suspended at t=" << to_us(now_) << "us";
  for (const auto& [id, src] : blocked_sources_) src->describe_blocked(os);
  return os.str();
}

void Engine::reap_finished() {
  for (std::uint64_t key : reap_) roots_.erase(key);
  reap_.clear();
}

void Engine::run() {
  while (!queue_.empty()) {
    Ev ev = queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    SRM_CHECK(ev.t >= now_);
    now_ = ev.t;
    ++processed_;
    if (ev.h) {
      ev.h.resume();
    } else {
      ev.fn();
    }
    reap_finished();
    if (first_error_) {
      auto e = std::exchange(first_error_, nullptr);
      std::rethrow_exception(e);
    }
  }
  if (!roots_.empty()) {
    throw util::CheckError(describe_deadlock());
  }
}

}  // namespace srm::sim
