// FramePool: size-bucketed free lists for coroutine frames.
//
// Every simulated activity is a coroutine; a mega-scale run creates and
// destroys hundreds of millions of frames of a handful of distinct sizes
// (one per coroutine function). Routing frame allocation through a
// recycling pool removes the general-purpose allocator from the hot path
// and keeps frame storage warm in cache.
//
// The pool is thread_local (the simulator is single-threaded; tests that
// run engines on several threads each get an independent pool) and
// intentionally never returns memory to the OS until thread exit — frame
// population is at its maximum mid-run anyway.
//
// Under AddressSanitizer the pool degrades to plain new/delete so
// use-after-free of coroutine frames stays detectable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace srm::sim {

#if defined(__SANITIZE_ADDRESS__)
#define SRM_FRAME_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SRM_FRAME_POOL_DISABLED 1
#endif
#endif

class FramePool {
 public:
  struct Stats {
    std::uint64_t allocs = 0;   // total frame allocations
    std::uint64_t reused = 0;   // served from a free list
    std::uint64_t oversize = 0; // larger than the biggest size class
  };

  static void* allocate(std::size_t n) {
#ifdef SRM_FRAME_POOL_DISABLED
    return ::operator new(n);
#else
    Lists& fl = lists();
    ++fl.stats.allocs;
    std::size_t cls = size_class(n);
    if (cls == kNumClasses) {
      ++fl.stats.oversize;
      return ::operator new(n);
    }
    if (FreeNode* node = fl.head[cls]) {
      fl.head[cls] = node->next;
      ++fl.stats.reused;
      return node;
    }
    return ::operator new(class_bytes(cls));
#endif
  }

  static void deallocate(void* p, std::size_t n) noexcept {
#ifdef SRM_FRAME_POOL_DISABLED
    ::operator delete(p);
#else
    std::size_t cls = size_class(n);
    if (cls == kNumClasses) {
      ::operator delete(p);
      return;
    }
    Lists& fl = lists();
    auto* node = static_cast<FreeNode*>(p);
    node->next = fl.head[cls];
    fl.head[cls] = node;
#endif
  }

  static Stats stats() { return lists().stats; }
  static void reset_stats() { lists().stats = Stats{}; }

 private:
  // Size classes: 64-byte granularity up to 1 KiB, then 512-byte granularity
  // up to 8 KiB. Frames above that (rare: big stack arrays in a coroutine)
  // fall through to the system allocator.
  static constexpr std::size_t kFineStep = 64;
  static constexpr std::size_t kFineMax = 1024;
  static constexpr std::size_t kCoarseStep = 512;
  static constexpr std::size_t kCoarseMax = 8192;
  static constexpr std::size_t kFineClasses = kFineMax / kFineStep;
  static constexpr std::size_t kNumClasses =
      kFineClasses + (kCoarseMax - kFineMax) / kCoarseStep;

  struct FreeNode {
    FreeNode* next;
  };

  struct Lists {
    FreeNode* head[kNumClasses] = {};
    Stats stats;
    ~Lists() {
      for (FreeNode*& h : head) {
        while (h != nullptr) {
          FreeNode* n = h->next;
          ::operator delete(h);
          h = n;
        }
      }
    }
  };

  static std::size_t size_class(std::size_t n) noexcept {
    if (n <= kFineMax) return (n + kFineStep - 1) / kFineStep - 1;
    if (n <= kCoarseMax) {
      return kFineClasses + (n - kFineMax + kCoarseStep - 1) / kCoarseStep - 1;
    }
    return kNumClasses;
  }
  static std::size_t class_bytes(std::size_t cls) noexcept {
    if (cls < kFineClasses) return (cls + 1) * kFineStep;
    return kFineMax + (cls - kFineClasses + 1) * kCoarseStep;
  }

  static Lists& lists() {
    thread_local Lists fl;
    return fl;
  }
};

}  // namespace srm::sim
