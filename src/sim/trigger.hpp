// Trigger: a one-shot completion latch for coroutines.
//
// Any number of coroutines may `co_await trigger.wait()`; they all resume at
// the virtual time fire() is called (or immediately, without suspending, if
// the trigger already fired). Used for transfer completions, rendezvous
// handshakes, and non-blocking operation handles.
//
// Triggers register as BlockedInfoSource so a deadlock dump names unfired
// latches with parked waiters.
#pragma once

#include <coroutine>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace srm::sim {

class Trigger : public BlockedInfoSource {
 public:
  explicit Trigger(Engine& eng, std::string label = {})
      : eng_(&eng), label_(std::move(label)) {
    eng_->add_blocked_source(this);
  }
  ~Trigger() override { eng_->remove_blocked_source(this); }
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  bool fired() const noexcept { return fired_; }

  /// Fire the latch; wakes all current and future waiters. Must be called at
  /// most once between resets.
  void fire() {
    SRM_CHECK_MSG(!fired_, "Trigger fired twice");
    fired_ = true;
    for (auto h : waiters_) eng_->resume_at(eng_->now(), h);
    waiters_.clear();
  }

  /// Re-arm a fired trigger. Only legal when nobody is waiting.
  void reset() {
    SRM_CHECK(waiters_.empty());
    fired_ = false;
  }

  void describe_blocked(std::ostream& os) const override {
    if (waiters_.empty()) return;
    os << "\n  trigger '" << (label_.empty() ? "<unnamed>" : label_)
       << "': unfired, " << waiters_.size() << " blocked";
  }

  struct Awaiter {
    Trigger* t;
    bool await_ready() const noexcept { return t->fired_; }
    void await_suspend(std::coroutine_handle<> h) { t->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() noexcept { return Awaiter{this}; }

 private:
  Engine* eng_;
  std::string label_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace srm::sim
