// WaitQueue: predicate-based blocking, the simulator's condition variable.
//
// A coroutine does `co_await wq.wait_until([&]{ return pred; })`. Whoever
// mutates the protected state calls notify(); every waiter whose predicate
// now holds is resumed at the current virtual time. Like a condition
// variable, wakeups re-check the predicate, so multiple waiters racing for
// one resource are handled correctly.
#pragma once

#include <coroutine>
#include <functional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace srm::sim {

class WaitQueue {
 public:
  explicit WaitQueue(Engine& eng) : eng_(&eng) {}
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  /// Suspend until @p pred returns true. Returns immediately (without
  /// yielding to the engine) when the predicate already holds.
  CoTask wait_until(std::function<bool()> pred) {
    while (!pred()) co_await WaitOnce{this, &pred};
  }

  /// Wake every waiter whose predicate currently holds.
  void notify() {
    // A resumed waiter may re-enter wait() synchronously only via the engine
    // queue (resume is deferred to resume_at), so iterating is safe.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < waiters_.size(); ++i) {
      if ((*waiters_[i].pred)()) {
        eng_->resume_at(eng_->now(), waiters_[i].h);
      } else {
        waiters_[kept++] = waiters_[i];
      }
    }
    waiters_.resize(kept);
  }

  std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    const std::function<bool()>* pred;
  };
  struct WaitOnce {
    WaitQueue* wq;
    const std::function<bool()>* pred;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      wq->waiters_.push_back(Waiter{h, pred});
    }
    void await_resume() const noexcept {}
  };

  Engine* eng_;
  std::vector<Waiter> waiters_;
};

}  // namespace srm::sim
