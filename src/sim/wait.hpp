// WaitQueue: predicate-based blocking, the simulator's condition variable.
//
// A coroutine does `co_await wq.wait_until([&]{ return pred; })`. Whoever
// mutates the protected state calls notify(); every waiter whose predicate
// now holds is resumed at the current virtual time. Like a condition
// variable, wakeups re-check the predicate, so multiple waiters racing for
// one resource are handled correctly.
//
// Each WaitQueue registers with the engine as a BlockedInfoSource: on
// deadlock the error message lists, per labelled wait-point, how many
// coroutines are parked and (when the caller passed a rank) who they are.
#pragma once

#include <coroutine>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace srm::sim {

class WaitQueue : public BlockedInfoSource {
 public:
  explicit WaitQueue(Engine& eng, std::string label = {})
      : eng_(&eng), label_(std::move(label)) {
    eng_->add_blocked_source(this);
  }
  ~WaitQueue() override { eng_->remove_blocked_source(this); }
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  /// Suspend until @p pred returns true. Returns immediately (without
  /// yielding to the engine) when the predicate already holds. @p who is an
  /// optional task rank recorded for deadlock diagnostics.
  CoTask wait_until(std::function<bool()> pred, int who = -1) {
    while (!pred()) co_await WaitOnce{this, &pred, who};
  }

  /// Wake every waiter whose predicate currently holds.
  void notify() {
    // A resumed waiter may re-enter wait() synchronously only via the engine
    // queue (resume is deferred to resume_at), so iterating is safe.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < waiters_.size(); ++i) {
      if ((*waiters_[i].pred)()) {
        eng_->resume_at(eng_->now(), waiters_[i].h);
      } else {
        waiters_[kept++] = waiters_[i];
      }
    }
    waiters_.resize(kept);
  }

  std::size_t waiting() const noexcept { return waiters_.size(); }

  const std::string& label() const noexcept { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  void describe_blocked(std::ostream& os) const override {
    if (waiters_.empty()) return;
    os << "\n  wait-point '" << (label_.empty() ? "<unnamed>" : label_)
       << "': " << waiters_.size() << " blocked";
    bool any = false;
    for (const Waiter& w : waiters_) {
      if (w.who < 0) continue;
      os << (any ? ", " : " (task ") << w.who;
      any = true;
    }
    if (any) os << ")";
  }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    const std::function<bool()>* pred;
    int who;
  };
  struct WaitOnce {
    WaitQueue* wq;
    const std::function<bool()>* pred;
    int who;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      wq->waiters_.push_back(Waiter{h, pred, who});
    }
    void await_resume() const noexcept {}
  };

  Engine* eng_;
  std::string label_;
  std::vector<Waiter> waiters_;
};

}  // namespace srm::sim
