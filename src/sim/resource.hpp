// FairShareResource: a processor-sharing bandwidth model.
//
// Models a shared pipe of `total_bytes_per_sec` divided equally among the
// currently active transfers, with an optional per-stream rate cap. This is
// how the per-node memory system expresses SMP copy contention (16 tasks
// copying at once on an IBM SP node share the memory bus) — the effect the
// paper's shared-memory protocols are designed around.
//
// Because every active transfer progresses at the same instantaneous rate,
// the transfer with the least remaining bytes always completes first, which
// keeps the event arithmetic exact.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/trigger.hpp"

namespace srm::sim {

class FairShareResource {
 public:
  /// @param total_bytes_per_sec  aggregate capacity shared by all streams
  /// @param per_stream_cap       max rate of any single stream; 0 = uncapped
  FairShareResource(Engine& eng, double total_bytes_per_sec,
                    double per_stream_cap = 0.0);

  /// Begin a transfer of @p bytes; returns a trigger that fires on drain.
  std::shared_ptr<Trigger> start(double bytes);

  /// Convenience: start a transfer and suspend until it completes.
  CoTask transfer(double bytes) { co_await start(bytes)->wait(); }

  /// Number of in-flight transfers.
  std::size_t active() const noexcept { return active_.size(); }

  double total_rate() const noexcept { return total_rate_; }
  double per_stream_cap() const noexcept { return cap_; }

  /// Instantaneous per-stream rate given current concurrency.
  double current_rate() const;

 private:
  void advance_to_now();
  void reschedule();
  void on_deadline();

  struct Xfer {
    double remaining;
    std::shared_ptr<Trigger> done;
  };

  Engine* eng_;
  double total_rate_;
  double cap_;
  std::vector<Xfer> active_;
  Time last_update_ = 0;
  Engine::EventId pending_ = 0;
  bool has_pending_ = false;
};

}  // namespace srm::sim
