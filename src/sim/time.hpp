// Virtual time for the discrete-event simulator.
//
// All simulation timestamps are unsigned nanoseconds. Nanosecond resolution
// comfortably resolves every cost in the machine model (the smallest modelled
// quantity, a cache-line transfer, is O(100 ns)) while an unsigned 64-bit
// count allows ~584 years of virtual time — far beyond any benchmark sweep.
#pragma once

#include <cmath>
#include <cstdint>

namespace srm::sim {

/// Absolute virtual time in nanoseconds since simulation start.
using Time = std::uint64_t;

/// Relative virtual time in nanoseconds.
using Duration = std::uint64_t;

constexpr Duration ns(std::uint64_t v) { return v; }
constexpr Duration us(std::uint64_t v) { return v * 1000ull; }
constexpr Duration ms(std::uint64_t v) { return v * 1000000ull; }

/// Convert a virtual timestamp/duration to microseconds (for reporting).
constexpr double to_us(Time t) { return static_cast<double>(t) / 1000.0; }

/// Duration of moving @p bytes at @p bytes_per_sec, rounded up to whole ns.
inline Duration duration_for(double bytes, double bytes_per_sec) {
  if (bytes <= 0.0) return 0;
  return static_cast<Duration>(std::ceil(bytes / bytes_per_sec * 1e9));
}

}  // namespace srm::sim
