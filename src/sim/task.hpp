// CoTask: the coroutine type in which every simulated activity runs.
//
// A CoTask is a *lazy* coroutine: creating one does not run any code; it
// starts when first resumed — either by the engine (top-level processes
// spawned with Engine::spawn) or by being co_await-ed from another CoTask
// (symmetric transfer, no stack growth). Exceptions propagate through the
// continuation chain exactly like ordinary call stacks.
//
// Lifetime rules:
//  * a child task awaited with `co_await child_fn(...)` lives in the parent's
//    frame and is destroyed when the parent resumes past the await;
//  * a top-level task handed to Engine::spawn is owned by the engine and
//    reaped after completion.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <functional>
#include <utility>

#include "sim/pool.hpp"
#include "util/check.hpp"

namespace srm::sim {

class [[nodiscard]] CoTask {
 public:
  struct promise_type;
  using handle_t = std::coroutine_handle<promise_type>;

  struct promise_type {
    // Frames come from the recycling FramePool: a simulation allocates
    // millions of frames of a few distinct sizes, and the size-bucketed
    // free lists make that O(1) without touching the system allocator.
    static void* operator new(std::size_t n) { return FramePool::allocate(n); }
    static void operator delete(void* p, std::size_t n) noexcept {
      FramePool::deallocate(p, n);
    }

    CoTask get_return_object() {
      return CoTask{handle_t::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(handle_t h) noexcept {
        auto& p = h.promise();
        if (p.on_complete) p.on_complete(p.exception);
        if (p.continuation) return p.continuation;
        return std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }

    std::coroutine_handle<> continuation{};
    std::exception_ptr exception{};
    /// Invoked at completion, before resuming the continuation. Used by the
    /// engine to reap top-level tasks; must not throw.
    std::function<void(std::exception_ptr)> on_complete{};
  };

  CoTask() noexcept = default;
  explicit CoTask(handle_t h) noexcept : h_(h) {}
  CoTask(CoTask&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  CoTask& operator=(CoTask&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;
  ~CoTask() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }
  bool done() const noexcept { return h_ && h_.done(); }

  /// Awaiting a CoTask starts it (symmetric transfer) and resumes the awaiter
  /// when it completes; rethrows any exception the task ended with.
  struct Awaiter {
    handle_t h;
    bool await_ready() const noexcept { return !h || h.done(); }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
      SRM_CHECK_MSG(!h.promise().continuation, "CoTask awaited twice");
      h.promise().continuation = cont;
      return h;
    }
    void await_resume() const {
      if (h && h.promise().exception) {
        std::rethrow_exception(h.promise().exception);
      }
    }
  };
  Awaiter operator co_await() const noexcept { return Awaiter{h_}; }

  /// Release ownership of the underlying handle (engine internals only).
  handle_t release() noexcept { return std::exchange(h_, {}); }
  handle_t handle() const noexcept { return h_; }

 private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  handle_t h_{};
};

}  // namespace srm::sim
