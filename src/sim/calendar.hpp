// CalendarQueue: an indexed bucket queue (R. Brown's calendar queue) for the
// engine's pending-event set.
//
// The classic binary heap costs O(log n) per operation with a large constant
// once the queue holds hundreds of thousands of events (a 256K-rank collective
// keeps roughly one pending event per rank). A calendar queue hashes events by
// time into an array of day buckets whose widths adapt to the event density,
// giving amortized O(1) push/pop for the workloads a discrete-event simulator
// produces.
//
// Determinism: each bucket is itself a small binary heap ordered by the full
// (time, tie-break key, sequence id) comparator, and pop always returns the
// globally least event under that order. The dequeue sequence is therefore
// bitwise identical to the reference heap's — bucket layout, resizes, and the
// year-scan are pure implementation detail. Same-timestamp bursts (256K spawns
// at t=0) land in one bucket and degrade gracefully to heap behaviour instead
// of the O(n^2) bucket-scan the textbook linked-list calendar exhibits.
//
// `After` is a priority_queue-style comparator: After(a, b) == true means `a`
// fires after `b`. Ev must expose a `.t` time field consistent with it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/check.hpp"

namespace srm::sim {

template <class Ev, class After>
class CalendarQueue {
 public:
  explicit CalendarQueue(After after = {}) : after_(after) {
    buckets_.resize(kMinBuckets);
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  void push(Ev ev) {
    const Time t = ev.t;
    if (size_ == 0) anchor(t);
    auto& b = buckets_[index_of(t)];
    b.push_back(std::move(ev));
    std::push_heap(b.begin(), b.end(), after_);
    ++size_;
    // An event due before the scan pointer's current day must pull the
    // pointer back, or the year-scan would only find it a lap later.
    const Time due = day_end(t);
    if (due < cur_due_) {
      cur_ = index_of(t);
      cur_due_ = due;
    }
    if (size_ > kGrowFactor * buckets_.size()) rebuild(buckets_.size() * 2);
  }

  /// Remove and return the least event under the `After` order.
  Ev pop() {
    SRM_CHECK_MSG(size_ > 0, "pop from empty calendar queue");
    std::size_t scanned = 0;
    for (;;) {
      auto& b = buckets_[cur_];
      if (!b.empty() && b.front().t < cur_due_) {
        std::pop_heap(b.begin(), b.end(), after_);
        Ev ev = std::move(b.back());
        b.pop_back();
        --size_;
        if (size_ < buckets_.size() / kShrinkFactor &&
            buckets_.size() > kMinBuckets) {
          rebuild(buckets_.size() / 2);
        }
        return ev;
      }
      cur_ = (cur_ + 1) & (buckets_.size() - 1);
      cur_due_ += width_;
      if (++scanned >= buckets_.size()) {
        // A whole year was empty: jump straight to the day holding the
        // earliest pending event instead of scanning year by year.
        jump_to_min();
        scanned = 0;
      }
    }
  }

  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  Time bucket_width() const noexcept { return width_; }

 private:
  static constexpr std::size_t kMinBuckets = 8;  // power of two
  static constexpr std::size_t kGrowFactor = 2;
  static constexpr std::size_t kShrinkFactor = 8;

  std::size_t index_of(Time t) const noexcept {
    return (t / width_) & (buckets_.size() - 1);
  }
  Time day_end(Time t) const noexcept { return (t / width_ + 1) * width_; }

  void anchor(Time t) noexcept {
    cur_ = index_of(t);
    cur_due_ = day_end(t);
  }

  void jump_to_min() {
    const Ev* best = nullptr;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const auto& b = buckets_[i];
      if (b.empty()) continue;
      if (best == nullptr || after_(*best, b.front())) {
        best = &b.front();
        best_idx = i;
      }
    }
    SRM_CHECK(best != nullptr);
    cur_ = best_idx;
    cur_due_ = day_end(best->t);
  }

  // Re-bucket every event into @p nbuckets buckets with a width sized so the
  // current content spans roughly one calendar year (~1 event/bucket/day).
  void rebuild(std::size_t nbuckets) {
    std::vector<Ev> all;
    all.reserve(size_);
    for (auto& b : buckets_) {
      for (auto& ev : b) all.push_back(std::move(ev));
      b.clear();
    }
    Time lo = all.empty() ? 0 : all.front().t;
    Time hi = lo;
    for (const auto& ev : all) {
      lo = std::min(lo, ev.t);
      hi = std::max(hi, ev.t);
    }
    width_ = std::max<Time>(1, (hi - lo) / nbuckets + 1);
    buckets_.assign(nbuckets, {});
    std::size_t n = all.size();
    size_ = 0;
    anchor(lo);
    for (auto& ev : all) {
      auto& b = buckets_[index_of(ev.t)];
      b.push_back(std::move(ev));
      std::push_heap(b.begin(), b.end(), after_);
    }
    size_ = n;
  }

  After after_;
  std::vector<std::vector<Ev>> buckets_;
  std::size_t size_ = 0;
  Time width_ = 1000;       // ns; retuned on every rebuild
  std::size_t cur_ = 0;     // scan pointer: bucket index
  Time cur_due_ = 1000;     // upper time bound of the scan pointer's day
};

}  // namespace srm::sim
