// srm::sa pass (3): decision-table dominance proofs and the analytic
// crossovers, cross-validated against the paper's constants (64 KB bcast
// protocol switch, 16 KB allreduce recursive-doubling cap).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coll/decision.hpp"
#include "machine/params.hpp"
#include "sa/dominance.hpp"

namespace srm {
namespace {

using coll::Algo;
using coll::CollKind;
using coll::Decision;
using coll::DecisionTable;
using coll::TreeKind;

bool has_crossover(const std::vector<sa::Crossover>& xs, CollKind op,
                   Algo to, std::size_t bytes, bool feasibility) {
  for (const sa::Crossover& x : xs) {
    if (x.op == op && x.to.algo == to && x.bytes == bytes &&
        x.feasibility == feasibility) {
      return true;
    }
  }
  return false;
}

std::string dump(const std::vector<sa::Crossover>& xs) {
  std::string out;
  for (const sa::Crossover& x : xs) out += "  " + sa::to_string(x) + "\n";
  return out;
}

TEST(SaDominance, BuiltinTablesAreDominanceFree) {
  SrmConfig cfg;
  for (const char* profile : {"ibm_sp", "modern_smp"}) {
    const DecisionTable* t = DecisionTable::builtin(profile);
    ASSERT_NE(t, nullptr) << profile;
    machine::MachineParams mp = std::string(profile) == "ibm_sp"
                                    ? machine::MachineParams::ibm_sp()
                                    : machine::MachineParams::modern_smp();
    sa::DominanceReport rep = sa::check_table(*t, cfg, mp);
    for (const sa::DominanceIssue& i : rep.issues) {
      ADD_FAILURE() << profile << ": " << sa::to_string(i);
    }
  }
}

TEST(SaDominance, IbmSpCrossoversReproduceThePapersConstants) {
  // The paper switches bcast staged -> direct at 64 KB and allreduce
  // recursive-doubling -> pipelined at 16 KB. Both emerge from the model as
  // feasibility caps at exactly those byte counts (the last size where the
  // small-protocol path still wins).
  SrmConfig cfg;
  machine::MachineParams mp = machine::MachineParams::ibm_sp();
  std::vector<sa::Crossover> bc = sa::crossovers(CollKind::bcast, cfg, mp);
  EXPECT_TRUE(has_crossover(bc, CollKind::bcast, Algo::direct, 65536, true))
      << dump(bc);
  std::vector<sa::Crossover> ar =
      sa::crossovers(CollKind::allreduce, cfg, mp);
  EXPECT_TRUE(
      has_crossover(ar, CollKind::allreduce, Algo::pipeline, 16384, true))
      << dump(ar);
}

TEST(SaDominance, ModernSmpKeepsThePapersStructuralSwitches) {
  // The modern profile re-derives the same structural caps (they come from
  // SrmConfig limits, not hardware rates), so the same two flips appear.
  SrmConfig cfg;
  machine::MachineParams mp = machine::MachineParams::modern_smp();
  std::vector<sa::Crossover> bc = sa::crossovers(CollKind::bcast, cfg, mp);
  EXPECT_TRUE(has_crossover(bc, CollKind::bcast, Algo::direct, 65536, true))
      << dump(bc);
  std::vector<sa::Crossover> ar =
      sa::crossovers(CollKind::allreduce, cfg, mp);
  EXPECT_TRUE(
      has_crossover(ar, CollKind::allreduce, Algo::pipeline, 16384, true))
      << dump(ar);
}

TEST(SaDominance, CheckTableIsNotVacuous) {
  // A deliberately bad table must be flagged: ring allreduce at 0 bytes is
  // decisively worse than recursive doubling on every axis (slower at both
  // node scales, no bus-traffic saving).
  DecisionTable bad;
  bad.profile = "ibm_sp";
  bad.set(CollKind::bcast, 0, {Algo::direct, false, TreeKind::binomial});
  bad.set(CollKind::allreduce, 0, {Algo::ring, false, TreeKind::binomial});
  SrmConfig cfg;
  sa::DominanceReport rep =
      sa::check_table(bad, cfg, machine::MachineParams::ibm_sp());
  ASSERT_EQ(rep.issues.size(), 1u);
  const sa::DominanceIssue& i = rep.issues[0];
  EXPECT_EQ(i.op, CollKind::allreduce);
  EXPECT_EQ(i.min_bytes, 0u);
  EXPECT_EQ(i.chosen.algo, Algo::ring);
  EXPECT_EQ(i.better.algo, Algo::rd);
  EXPECT_GT(i.chosen_ns, i.better_ns);
  EXPECT_GE(i.chosen_bus, i.better_bus * sa::kBusSave);
}

TEST(SaDominance, MenuCoversEveryBuiltinRow) {
  // Every decision a builtin table dispatches must be on the op's menu —
  // otherwise check_table would "prove" rows it never evaluated.
  for (const char* profile : {"ibm_sp", "modern_smp"}) {
    const DecisionTable* t = DecisionTable::builtin(profile);
    ASSERT_NE(t, nullptr);
    for (CollKind op :
         {CollKind::bcast, CollKind::reduce, CollKind::allreduce,
          CollKind::barrier, CollKind::scatter, CollKind::gather,
          CollKind::allgather, CollKind::reduce_scatter}) {
      std::vector<Decision> menu = sa::algo_menu(op);
      for (const auto& row : t->rows(op)) {
        // The mapped flag is advisory for algorithms without a single-copy
        // variant (e.g. direct puts land in user buffers already), so the
        // menu need only carry the algorithm itself.
        bool found = false;
        for (const Decision& d : menu) found = found || d.algo == row.d.algo;
        EXPECT_TRUE(found) << profile << " " << coll::coll_name(op) << " @"
                           << row.min_bytes;
      }
    }
  }
}

}  // namespace
}  // namespace srm
