// Deterministic operation-sequence fuzzing: long random mixes of all eight
// collectives with random roots, sizes (straddling every protocol switch),
// dtypes and operators, verified element-exactly against a sequential
// reference. This is the strongest guard on the cross-operation slot/credit
// state machines (landing parity, credit conservation, staging reuse).
#include <gtest/gtest.h>

#include <vector>

#include "core/communicator.hpp"
#include "util/rng.hpp"

namespace srm {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;

struct OpPlan {
  enum Kind { bcast, reduce, allreduce, barrier, scatter, gather, allgather }
      kind;
  std::size_t count;  // elements (f64) or bytes for bcast
  int root;
};

std::vector<OpPlan> make_plan(std::uint64_t seed, int nranks, int nops) {
  util::SplitMix64 rng(seed);
  // Sizes chosen to land in each protocol regime.
  const std::size_t bcast_sizes[] = {8,     700,   8192,  12000,
                                     32768, 65536, 65537, 200000};
  const std::size_t red_counts[] = {1, 60, 2048, 2049, 7000, 20000};
  const std::size_t blk_counts[] = {1, 33, 900, 9000};
  std::vector<OpPlan> plan;
  for (int i = 0; i < nops; ++i) {
    OpPlan op;
    op.kind = static_cast<OpPlan::Kind>(rng.next_below(7));
    op.root = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nranks)));
    switch (op.kind) {
      case OpPlan::bcast:
        op.count = bcast_sizes[rng.next_below(8)];
        break;
      case OpPlan::reduce:
      case OpPlan::allreduce:
        op.count = red_counts[rng.next_below(6)];
        break;
      case OpPlan::scatter:
      case OpPlan::gather:
      case OpPlan::allgather:
        op.count = blk_counts[rng.next_below(4)];
        break;
      case OpPlan::barrier:
        op.count = 0;
        break;
    }
    plan.push_back(op);
  }
  return plan;
}

double value(int rank, int op_index, std::size_t i) {
  return (rank % 13) + (op_index % 7) * 0.5 + static_cast<double>(i % 11);
}

void run_fuzz(std::uint64_t seed, int nodes, int ppn, int nops) {
  ClusterConfig cc;
  cc.nodes = nodes;
  cc.tasks_per_node = ppn;
  Cluster cluster(cc);
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric);
  int n = nodes * ppn;
  auto plan = make_plan(seed, n, nops);

  cluster.run([&](TaskCtx& t) -> CoTask {
    for (int k = 0; k < static_cast<int>(plan.size()); ++k) {
      const OpPlan& op = plan[static_cast<std::size_t>(k)];
      switch (op.kind) {
        case OpPlan::bcast: {
          std::vector<char> buf(op.count, 0);
          if (t.rank == op.root) {
            for (std::size_t i = 0; i < op.count; ++i) {
              buf[i] = static_cast<char>((i + static_cast<std::size_t>(k)) %
                                         113);
            }
          }
          co_await comm.bcast(t, coll::Buf::bytes(buf.data(), op.count),
                              op.root);
          for (std::size_t i = 0; i < op.count; i += 97) {
            EXPECT_EQ(buf[i],
                      static_cast<char>((i + static_cast<std::size_t>(k)) %
                                        113))
                << "op " << k << " rank " << t.rank;
          }
          break;
        }
        case OpPlan::reduce:
        case OpPlan::allreduce: {
          std::vector<double> in(op.count), out(op.count, -1.0);
          for (std::size_t i = 0; i < op.count; ++i) {
            in[i] = value(t.rank, k, i);
          }
          if (op.kind == OpPlan::reduce) {
            co_await comm.reduce(t, coll::of(in.data(), op.count),
                                 coll::of(out.data(), op.count),
                                 coll::RedOp::sum, op.root);
          } else {
            co_await comm.allreduce(t, coll::of(in.data(), op.count),
                                    coll::of(out.data(), op.count),
                                    coll::RedOp::sum);
          }
          if (op.kind == OpPlan::allreduce || t.rank == op.root) {
            for (std::size_t i = 0; i < op.count; i += 61) {
              double expect = 0.0;
              for (int r = 0; r < n; ++r) expect += value(r, k, i);
              EXPECT_DOUBLE_EQ(out[i], expect)
                  << "op " << k << " rank " << t.rank;
            }
          }
          break;
        }
        case OpPlan::barrier:
          co_await comm.barrier(t);
          break;
        case OpPlan::scatter: {
          std::vector<double> send;
          if (t.rank == op.root) {
            send.resize(op.count * static_cast<std::size_t>(n));
            for (int r = 0; r < n; ++r) {
              for (std::size_t i = 0; i < op.count; ++i) {
                send[static_cast<std::size_t>(r) * op.count + i] =
                    value(r, k, i);
              }
            }
          }
          std::vector<double> recv(op.count, -1.0);
          co_await comm.scatter(t, coll::of(send.data(), op.count),
                                coll::of(recv.data(), op.count), op.root);
          for (std::size_t i = 0; i < op.count; i += 37) {
            EXPECT_EQ(recv[i], value(t.rank, k, i))
                << "op " << k << " rank " << t.rank;
          }
          break;
        }
        case OpPlan::gather:
        case OpPlan::allgather: {
          std::vector<double> mine(op.count);
          for (std::size_t i = 0; i < op.count; ++i) {
            mine[i] = value(t.rank, k, i);
          }
          std::vector<double> all;
          bool holder = op.kind == OpPlan::allgather || t.rank == op.root;
          if (holder) {
            all.assign(op.count * static_cast<std::size_t>(n), -1.0);
          }
          if (op.kind == OpPlan::gather) {
            co_await comm.gather(t, coll::of(mine.data(), op.count),
                                 coll::of(all.data(), op.count), op.root);
          } else {
            co_await comm.allgather(t, coll::of(mine.data(), op.count),
                                    coll::of(all.data(), op.count));
          }
          if (holder) {
            for (int r = 0; r < n; r += 3) {
              for (std::size_t i = 0; i < op.count; i += 41) {
                EXPECT_EQ(all[static_cast<std::size_t>(r) * op.count + i],
                          value(r, k, i))
                    << "op " << k << " rank " << t.rank;
              }
            }
          }
          break;
        }
      }
    }
  });
}

class SrmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SrmFuzz, RandomSequenceSmallCluster) {
  run_fuzz(GetParam(), 3, 4, 25);
}

TEST_P(SrmFuzz, RandomSequenceFatNodes) {
  run_fuzz(GetParam() ^ 0xabcdef, 2, 16, 18);
}

TEST_P(SrmFuzz, RandomSequenceManyThinNodes) {
  run_fuzz(GetParam() ^ 0x1234, 7, 2, 18);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SrmFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace srm
