// The gauntlet classification: which lint rule families catch each of the
// 26 mutation-gauntlet bugs. Pinned exactly — a lint change that silently
// loses (or gains) coverage on a known bug must show up here, and the
// headline property is that NO mutant is dynamic-only: the static analyzer
// catches every bug the model checker's gauntlet was built around.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "mc/protocols.hpp"
#include "sa/lint.hpp"

namespace srm {
namespace {

std::string joined_rules(const mc::Program& p) {
  std::string out;
  for (const std::string& r : sa::fired_rules(sa::lint(p))) {
    if (!out.empty()) out += ",";
    out += r;
  }
  return out;
}

TEST(SaGauntlet, EveryMutantStaticallyCaught) {
  for (const mc::Mutant& m : mc::mutation_gauntlet()) {
    EXPECT_FALSE(sa::lint(m.program).empty())
        << m.name << " is dynamic-only: no lint rule fires";
  }
}

TEST(SaGauntlet, ClassificationIsPinned) {
  // R8 alone means only the canonical-execution pass sees the bug (a race
  // or deadlock on the canonical schedule); additional families mean a
  // purely structural rule catches it before anything "runs".
  const std::map<std::string, std::string> expected = {
      {"bcast.drop_ready_clear", "R1,R8"},
      {"bcast.refill_before_clear", "R6,R8"},
      {"barrier.drop_worker_signal", "R1,R8"},
      {"barrier.drop_release", "R1,R8"},
      {"barrier.drop_round_signal", "R3,R8"},
      {"reduce.publish_before_write", "R5,R8"},
      {"reduce.drop_consumed_gate", "R8"},
      {"reduce.drop_credit_wait", "R8"},
      {"allreduce.drop_origin_wait", "R7,R8"},
      {"allreduce.signal_before_deposit", "R8"},
      {"gather.drop_filled_wait", "R8"},
      {"gather.drop_freed_gate", "R8"},
      {"allgather.drop_done_wait", "R8"},
      {"scatter.credit_before_clear", "R8"},
      {"sc_bcast.reuse_before_retract", "R4,R8"},
      {"sc_bcast.attach_before_publish", "R4,R8"},
      {"sc_bcast.drop_detach", "R1,R4,R8"},
      {"sc_reduce.publish_before_write", "R4,R5,R8"},
      {"sc_reduce.drop_detach", "R1,R4,R8"},
      {"sc_reduce.drop_acons_gate", "R8"},
      {"sc_scatter.reuse_before_retract", "R4,R8"},
      {"sc_gather.publish_before_write", "R4,R5,R8"},
      {"ring_allreduce.drop_origin_wait", "R7,R8"},
      {"rh_allreduce.signal_before_deposit", "R8"},
      {"sa_bcast.forward_before_arrival", "R8"},
      {"sa_bcast.drop_scatter_signal", "R2,R8"},
  };
  const std::vector<mc::Mutant>& gauntlet = mc::mutation_gauntlet();
  ASSERT_EQ(gauntlet.size(), expected.size());
  for (const mc::Mutant& m : gauntlet) {
    auto it = expected.find(m.name);
    ASSERT_NE(it, expected.end()) << "unclassified mutant " << m.name;
    EXPECT_EQ(joined_rules(m.program), it->second) << m.name;
  }
}

TEST(SaGauntlet, ClassificationAgreesWithDynamicExpectation) {
  // A mutant the checker expects to deadlock must at least produce an R8
  // finding (the canonical schedule wedges or races); same for races. The
  // static pass may know MORE (structural rules), never less.
  for (const mc::Mutant& m : mc::mutation_gauntlet()) {
    if (!m.expect_race && !m.expect_deadlock) continue;
    std::vector<std::string> rules = sa::fired_rules(sa::lint(m.program));
    EXPECT_FALSE(rules.empty()) << m.name;
  }
}

}  // namespace
}  // namespace srm
