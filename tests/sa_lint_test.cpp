// srm::sa pass (2): the lint rule catalog over the shipped protocol models.
// The load-bearing property is the clean bill of health: every one of the
// fifteen protocol IRs lints clean on every supported shape, so any
// diagnostic on a user model is a real finding, not catalog noise.
#include <gtest/gtest.h>

#include <vector>

#include "mc/protocols.hpp"
#include "sa/lint.hpp"

namespace srm {
namespace {

const std::vector<mc::Shape>& shapes() {
  static const std::vector<mc::Shape> s = {
      {1, 2, 1}, {2, 2, 1}, {2, 2, 3}, {1, 3, 1}, {2, 1, 1}, {2, 4, 2}};
  return s;
}

TEST(SaLint, AllProtocolsAllShapesClean) {
  for (mc::Proto proto : mc::all_protos()) {
    for (const mc::Shape& sh : shapes()) {
      mc::Program p = mc::build(proto, sh);
      std::vector<sa::Diag> diags = sa::lint(p);
      EXPECT_TRUE(diags.empty())
          << mc::proto_name(proto) << " " << sh.to_string() << ": "
          << diags.size() << " diagnostic(s), first [" << diags[0].rule
          << "] " << diags[0].thread << "#" << diags[0].op_index << " "
          << diags[0].message;
    }
  }
}

TEST(SaLint, DiagnosticsCarryPreciseLocations) {
  // Every gauntlet diagnostic must anchor to a thread; structural rules
  // (R1-R7) must also anchor to a concrete op unless they indict the whole
  // thread by design.
  for (const mc::Mutant& m : mc::mutation_gauntlet()) {
    for (const sa::Diag& d : sa::lint(m.program)) {
      EXPECT_FALSE(d.rule.empty()) << m.name;
      EXPECT_FALSE(d.thread.empty()) << m.name << " [" << d.rule << "]";
      EXPECT_FALSE(d.message.empty()) << m.name << " [" << d.rule << "]";
    }
  }
}

TEST(SaLint, FiredRulesDeduplicatesToFamilies) {
  std::vector<sa::Diag> diags;
  diags.push_back({"R8-race", "r0.0", 3, "w", "a"});
  diags.push_back({"R8-deadlock", "r0.1", 5, "x", "b"});
  diags.push_back({"R1", "r0.0", 1, "y", "c"});
  diags.push_back({"R1", "r1.0", 2, "z", "d"});
  std::vector<std::string> rules = sa::fired_rules(diags);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0], "R1");
  EXPECT_EQ(rules[1], "R8");
}

TEST(SaLint, CleanProgramFiresNothing) {
  mc::Program p = mc::build(mc::Proto::bcast, {2, 4, 2});
  EXPECT_TRUE(sa::fired_rules(sa::lint(p)).empty());
}

}  // namespace
}  // namespace srm
