// Analytical model vs simulation: the model must track the simulated
// latencies within a documented envelope across sizes and machine shapes —
// tight enough to rank configurations when tuning switch points.
#include <gtest/gtest.h>

#include "bench/harness.hpp"
#include "model/model.hpp"

namespace srm::model {
namespace {

double simulated(bench::Impl impl, int nodes, int ppn, const char* op,
                 std::size_t bytes) {
  bench::Bench b(impl, nodes, ppn);
  std::string o = op;
  if (o == "bcast") return b.time_bcast(bytes, 1);
  if (o == "reduce") return b.time_reduce(bytes / 8, 1);
  if (o == "allreduce") return b.time_allreduce(bytes / 8, 1);
  return b.time_barrier(1);
}

double predicted(int nodes, int ppn, const char* op, std::size_t bytes) {
  Inputs in;
  in.nodes = nodes;
  in.tasks_per_node = ppn;
  std::string o = op;
  if (o == "bcast") return bcast_us(in, bytes);
  if (o == "reduce") return reduce_us(in, bytes);
  if (o == "allreduce") return allreduce_us(in, bytes);
  return barrier_us(in);
}

class ModelAccuracy
    : public ::testing::TestWithParam<std::tuple<const char*, std::size_t>> {
};

TEST_P(ModelAccuracy, WithinEnvelope) {
  auto [op, bytes] = GetParam();
  for (auto [nodes, ppn] : {std::pair{4, 16}, std::pair{16, 16},
                            std::pair{8, 4}}) {
    double sim_us = simulated(bench::Impl::srm, nodes, ppn, op, bytes);
    double mdl_us = predicted(nodes, ppn, op, bytes);
    double ratio = mdl_us / sim_us;
    EXPECT_GT(ratio, 0.4) << op << " " << bytes << " n" << nodes << "x"
                          << ppn << " sim=" << sim_us << " mdl=" << mdl_us;
    EXPECT_LT(ratio, 2.5) << op << " " << bytes << " n" << nodes << "x"
                          << ppn << " sim=" << sim_us << " mdl=" << mdl_us;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelAccuracy,
    ::testing::Values(std::tuple{"bcast", std::size_t{8}},
                      std::tuple{"bcast", std::size_t{16384}},
                      std::tuple{"bcast", std::size_t{1u << 20}},
                      std::tuple{"reduce", std::size_t{8}},
                      std::tuple{"reduce", std::size_t{1u << 20}},
                      std::tuple{"allreduce", std::size_t{1024}},
                      std::tuple{"allreduce", std::size_t{1u << 20}},
                      std::tuple{"barrier", std::size_t{0}}),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Model, RanksPipelineChunkChoices) {
  // The tuning use case: the model must *rank* the 4 KB pipeline chunk above
  // clearly bad extremes for a 16 KB broadcast, as the paper found.
  Inputs in;
  in.nodes = 16;
  in.tasks_per_node = 16;
  auto with_chunk = [&](std::size_t c) {
    Inputs i = in;
    i.cfg.bcast_pipe_chunk = c;
    return bcast_us(i, 16384);
  };
  double best = with_chunk(4096);
  EXPECT_LT(best, with_chunk(256));    // too-fine chunks: per-chunk overhead
  EXPECT_LT(best, with_chunk(16384));  // no pipelining at all
}

TEST(Model, PredictsFatNodeAdvantage) {
  Inputs fat, thin;
  fat.nodes = 16;
  fat.tasks_per_node = 16;
  thin.nodes = 128;
  thin.tasks_per_node = 2;
  EXPECT_LT(bcast_us(fat, 1024), bcast_us(thin, 1024));
  EXPECT_LT(barrier_us(fat), barrier_us(thin));
}

TEST(Model, MonotoneInSize) {
  Inputs in;
  in.nodes = 16;
  in.tasks_per_node = 16;
  EXPECT_LT(bcast_us(in, 64), bcast_us(in, 65536));
  EXPECT_LT(bcast_us(in, 65536), bcast_us(in, 8u << 20));
  EXPECT_LT(reduce_us(in, 64), reduce_us(in, 8u << 20));
}

}  // namespace
}  // namespace srm::model
