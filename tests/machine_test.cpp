// Topology maps, network arithmetic, memory charges, shared segments, flags.
#include <gtest/gtest.h>

#include <cstring>

#include "machine/cluster.hpp"
#include "machine/network.hpp"
#include "machine/topology.hpp"
#include "shm/flag.hpp"
#include "shm/segment.hpp"

namespace srm {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::MachineParams;
using machine::Network;
using machine::TaskCtx;
using machine::Topology;
using sim::CoTask;
using sim::Time;
using sim::us;

TEST(Topology, BlockPlacement) {
  Topology t(8, 16);
  EXPECT_EQ(t.nranks(), 128);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(15), 0);
  EXPECT_EQ(t.node_of(16), 1);
  EXPECT_EQ(t.node_of(127), 7);
  EXPECT_EQ(t.local_of(17), 1);
  EXPECT_EQ(t.rank_of(3, 5), 53);
  EXPECT_EQ(t.master_of(3), 48);
  EXPECT_TRUE(t.is_master(48));
  EXPECT_FALSE(t.is_master(49));
  EXPECT_TRUE(t.same_node(48, 63));
  EXPECT_FALSE(t.same_node(47, 48));
}

TEST(Topology, OutOfRangeChecks) {
  Topology t(2, 4);
  EXPECT_THROW(t.node_of(8), util::CheckError);
  EXPECT_THROW(t.node_of(-1), util::CheckError);
  EXPECT_THROW(t.rank_of(2, 0), util::CheckError);
  EXPECT_THROW(t.rank_of(0, 4), util::CheckError);
}

TEST(Network, UncontendedDeliveryTime) {
  sim::Engine eng;
  machine::NetworkParams p;
  p.gap = us(1);
  p.latency = us(10);
  p.bytes_per_sec = 1e9;  // 1 ns/B
  Network net(eng, p, 2);
  Time delivered = 0;
  net.inject(0, 1, 1000.0, [&] { delivered = eng.now(); });
  eng.run();
  // gap + latency + 1000 B * 1 ns/B = 1us + 10us + 1us
  EXPECT_EQ(delivered, us(12));
  EXPECT_EQ(net.messages(), 1u);
}

TEST(Network, EgressSerializesBackToBackMessages) {
  sim::Engine eng;
  machine::NetworkParams p;
  p.gap = us(1);
  p.latency = us(10);
  p.bytes_per_sec = 1e9;
  Network net(eng, p, 3);
  Time d1 = 0, d2 = 0;
  net.inject(0, 1, 1000.0, [&] { d1 = eng.now(); });
  net.inject(0, 2, 1000.0, [&] { d2 = eng.now(); });
  eng.run();
  EXPECT_EQ(d1, us(12));
  // Second message leaves the NIC only after the first fully departs (2us),
  // then gap + latency + serialization.
  EXPECT_EQ(d2, us(2) + us(12));
}

TEST(Network, IngressSerializesConcurrentSenders) {
  sim::Engine eng;
  machine::NetworkParams p;
  p.gap = us(1);
  p.latency = us(10);
  p.bytes_per_sec = 1e9;
  Network net(eng, p, 3);
  Time d1 = 0, d2 = 0;
  net.inject(0, 2, 1000.0, [&] { d1 = eng.now(); });
  net.inject(1, 2, 1000.0, [&] { d2 = eng.now(); });
  eng.run();
  EXPECT_EQ(d1, us(12));
  // Both heads arrive at 11us; the second payload waits for the first.
  EXPECT_EQ(d2, us(13));
}

TEST(Network, IntraNodeInjectForbidden) {
  sim::Engine eng;
  machine::NetworkParams p;
  Network net(eng, p, 2);
  EXPECT_THROW(net.inject(1, 1, 8.0, [] {}), util::CheckError);
}

TEST(Segment, CreateThenAttachSameStorage) {
  shm::Segment seg;
  auto a = seg.buffer("buf", 256);
  auto b = seg.buffer("buf", 256);
  EXPECT_EQ(a.data(), b.data());
  a[3] = std::byte{42};
  EXPECT_EQ(b[3], std::byte{42});
  EXPECT_EQ(seg.buffer_count(), 1u);
}

TEST(Segment, SizeMismatchThrows) {
  shm::Segment seg;
  seg.buffer("buf", 256);
  EXPECT_THROW(seg.buffer("buf", 128), util::CheckError);
}

TEST(Segment, BuffersAreZeroed) {
  shm::Segment seg;
  auto a = seg.buffer("z", 64);
  for (auto b : a) EXPECT_EQ(b, std::byte{0});
}

TEST(Segment, ObjectTypeMismatchThrows) {
  shm::Segment seg;
  sim::Engine eng;
  machine::MemoryParams mp;
  seg.object<shm::SharedFlag>("flag", eng, mp);
  EXPECT_THROW((seg.object<shm::FlagArray>("flag", eng, mp, 4)),
               util::CheckError);
}

CoTask flag_setter(sim::Engine& eng, shm::SharedFlag& f) {
  co_await eng.sleep(us(5));
  f.set(1);
}

CoTask flag_waiter(sim::Engine& eng, shm::SharedFlag& f, Time& when) {
  co_await f.await_value(1);
  when = eng.now();
}

TEST(SharedFlag, WaiterSeesStoreAfterPropagation) {
  sim::Engine eng;
  machine::MemoryParams mp;
  mp.flag_propagation = sim::ns(250);
  shm::SharedFlag f(eng, mp);
  Time when = 0;
  eng.spawn(flag_waiter(eng, f, when));
  eng.spawn(flag_setter(eng, f));
  eng.run();
  EXPECT_EQ(when, us(5) + sim::ns(250));
}

TEST(SharedFlag, CounterSemantics) {
  sim::Engine eng;
  machine::MemoryParams mp;
  shm::SharedFlag f(eng, mp);
  f.add(3);
  f.add(2);
  // The committed value is immediate; polled readers see it only after the
  // propagation events run.
  EXPECT_EQ(f.raw_get(), 5u);
  EXPECT_EQ(f.get(), 0u);
  eng.run();
  EXPECT_EQ(f.get(), 5u);
}

CoTask copy_prog(TaskCtx& t, std::vector<char>& dst, std::vector<char>& src,
                 Time& done) {
  co_await t.copy(dst.data(), src.data(), src.size());
  done = t.eng->now();
}

TEST(Cluster, ChargedCopyMovesRealBytesAtModelledCost) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.tasks_per_node = 1;
  cfg.params.mem.copy_bw_per_cpu = 500e6;
  cfg.params.mem.bus_bw_total = 4e9;
  cfg.params.mem.copy_startup = sim::ns(200);
  Cluster cl(cfg);
  std::vector<char> src(1 << 20, 'x'), dst(1 << 20, 0);
  Time done = 0;
  cl.run([&](TaskCtx& t) { return copy_prog(t, dst, src, done); });
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  // 1 MiB at 500 MB/s = 2097152 ns, + 200 ns startup.
  EXPECT_EQ(done, sim::ns(200) + sim::ns(2097152));
}

CoTask contended_copy(TaskCtx& t, Time& done) {
  std::vector<char> src(1 << 20, 1), dst(1 << 20, 0);
  co_await t.copy(dst.data(), src.data(), src.size());
  done = t.eng->now();
}

TEST(Cluster, SixteenTasksContendOnNodeBus) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.tasks_per_node = 16;
  cfg.params.mem.copy_bw_per_cpu = 550e6;
  cfg.params.mem.bus_bw_total = 4e9;
  Cluster cl(cfg);
  std::vector<Time> done(16, 0);
  cl.run([&](TaskCtx& t) {
    return contended_copy(t, done[static_cast<size_t>(t.rank)]);
  });
  // All 16 share 4 GB/s -> 250 MB/s each; 1 MiB takes ~4.19 ms.
  for (auto d : done) {
    EXPECT_GT(d, sim::ms(4));
    EXPECT_LT(d, sim::ms(5));
  }
}

TEST(Cluster, TaskCtxGeometry) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.tasks_per_node = 8;
  Cluster cl(cfg);
  std::vector<int> nodes(32, -1), locals(32, -1);
  cl.run([&](TaskCtx& t) -> CoTask {
    nodes[static_cast<size_t>(t.rank)] = t.node();
    locals[static_cast<size_t>(t.rank)] = t.local();
    co_return;
  });
  EXPECT_EQ(nodes[0], 0);
  EXPECT_EQ(nodes[31], 3);
  EXPECT_EQ(locals[9], 1);
}

TEST(Cluster, SequentialRunsShareState) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.tasks_per_node = 2;
  Cluster cl(cfg);
  cl.run([&](TaskCtx& t) -> CoTask {
    if (t.rank == 0) t.nd->seg.buffer("persist", 8)[0] = std::byte{7};
    co_return;
  });
  std::byte seen{0};
  cl.run([&](TaskCtx& t) -> CoTask {
    if (t.rank == 1) seen = t.nd->seg.buffer("persist", 8)[0];
    co_return;
  });
  EXPECT_EQ(seen, std::byte{7});
}

TEST(MachineParams, EagerLimitScalesWithTasks) {
  auto p = MachineParams::ibm_sp();
  EXPECT_EQ(MachineParams::eager_limit(p.mpi_ibm, 16), 4096u);
  EXPECT_EQ(MachineParams::eager_limit(p.mpi_ibm, 64), 1024u);
  EXPECT_EQ(MachineParams::eager_limit(p.mpi_ibm, 256), 256u);
  EXPECT_EQ(MachineParams::eager_limit(p.mpi_mpich, 256), 4096u);
}

}  // namespace
}  // namespace srm
