// Extended SRM collectives: scatter, gather, allgather, reduce_scatter —
// data correctness across shapes, sizes (multi-chunk node blocks), roots,
// and back-to-back sequences; plus the mini-MPI counterparts.
#include <gtest/gtest.h>

#include <vector>

#include "core/communicator.hpp"
#include "mpi/comm.hpp"

namespace srm {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;

struct Fixture {
  Fixture(int nodes, int per_node)
      : cluster(make_cfg(nodes, per_node)),
        fabric(cluster),
        comm(cluster, fabric) {}
  static ClusterConfig make_cfg(int nodes, int per_node) {
    ClusterConfig c;
    c.nodes = nodes;
    c.tasks_per_node = per_node;
    return c;
  }
  Cluster cluster;
  lapi::Fabric fabric;
  Communicator comm;
};

double element(int rank, std::size_t i) {
  return rank * 1000.0 + static_cast<double>(i);
}

class GatherScatterShapes
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(GatherScatterShapes, ScatterDeliversEachBlock) {
  auto [nodes, ppn, count] = GetParam();
  Fixture f(nodes, ppn);
  int n = nodes * ppn;
  int root = n > 2 ? 2 : 0;
  std::vector<std::vector<double>> got(static_cast<std::size_t>(n));
  f.cluster.run([&, count = count, root](TaskCtx& t) -> CoTask {
    std::vector<double> send;
    if (t.rank == root) {
      send.resize(count * static_cast<std::size_t>(t.nranks()));
      for (int r = 0; r < t.nranks(); ++r) {
        for (std::size_t i = 0; i < count; ++i) {
          send[static_cast<std::size_t>(r) * count + i] = element(r, i);
        }
      }
    }
    std::vector<double> recv(count, -1.0);
    co_await f.comm.scatter(t, coll::of(send.data(), count),
                            coll::of(recv.data(), count), root);
    got[static_cast<std::size_t>(t.rank)] = recv;
  });
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(got[static_cast<std::size_t>(r)][i], element(r, i))
          << "rank " << r << " i " << i;
    }
  }
}

TEST_P(GatherScatterShapes, GatherAssemblesRankOrder) {
  auto [nodes, ppn, count] = GetParam();
  Fixture f(nodes, ppn);
  int n = nodes * ppn;
  int root = n - 1;
  std::vector<double> out(count * static_cast<std::size_t>(n), -1.0);
  f.cluster.run([&, count = count, root](TaskCtx& t) -> CoTask {
    std::vector<double> mine(count);
    for (std::size_t i = 0; i < count; ++i) mine[i] = element(t.rank, i);
    co_await f.comm.gather(
        t, coll::of(mine.data(), count),
        coll::of(t.rank == root ? out.data() : nullptr, count), root);
  });
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[static_cast<std::size_t>(r) * count + i], element(r, i))
          << "rank " << r << " i " << i;
    }
  }
}

TEST_P(GatherScatterShapes, AllgatherEveryoneHasEverything) {
  auto [nodes, ppn, count] = GetParam();
  Fixture f(nodes, ppn);
  int n = nodes * ppn;
  std::vector<std::vector<double>> got(static_cast<std::size_t>(n));
  f.cluster.run([&, count = count](TaskCtx& t) -> CoTask {
    std::vector<double> mine(count);
    for (std::size_t i = 0; i < count; ++i) mine[i] = element(t.rank, i);
    std::vector<double> all(count * static_cast<std::size_t>(t.nranks()),
                            -1.0);
    co_await f.comm.allgather(t, coll::of(mine.data(), count),
                              coll::of(all.data(), count));
    got[static_cast<std::size_t>(t.rank)] = std::move(all);
  });
  for (int holder = 0; holder < n; ++holder) {
    for (int r = 0; r < n; ++r) {
      for (std::size_t i = 0; i < count; i += count > 8 ? 7 : 1) {
        ASSERT_EQ(got[static_cast<std::size_t>(holder)]
                     [static_cast<std::size_t>(r) * count + i],
                  element(r, i))
            << "holder " << holder << " rank " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GatherScatterShapes,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 4),
        ::testing::Values(1, 4, 16),
        // Node blocks spanning < 1 chunk, exactly 1 chunk, and many chunks
        // of the 64 KB staging buffers.
        ::testing::Values(std::size_t{1}, std::size_t{300},
                          std::size_t{4096}, std::size_t{20000})),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SrmReduceScatter, SumsAndSplits) {
  Fixture f(3, 4);
  int n = 12;
  std::size_t per = 100;
  std::vector<std::vector<double>> got(static_cast<std::size_t>(n));
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<double> mine(per * static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = t.rank + static_cast<double>(i);
    }
    std::vector<double> out(per, -1.0);
    co_await f.comm.reduce_scatter(t, coll::of(mine.data(), per),
                                   coll::of(out.data(), per),
                                   coll::RedOp::sum);
    got[static_cast<std::size_t>(t.rank)] = out;
  });
  double rank_sum = n * (n - 1) / 2.0;
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < per; ++i) {
      std::size_t gi = static_cast<std::size_t>(r) * per + i;
      ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(r)][i],
                       rank_sum + n * static_cast<double>(gi))
          << "rank " << r << " i " << i;
    }
  }
}

TEST(SrmGatherScatter, BackToBackMixedRootsAndSizes) {
  Fixture f(3, 5);
  int n = 15;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    for (int round = 0; round < 5; ++round) {
      std::size_t count = round % 2 == 0 ? 50 : 9000;  // 1 vs many chunks
      int root = (round * 7) % n;
      // gather then scatter back: everyone should recover its own block.
      std::vector<double> mine(count);
      for (std::size_t i = 0; i < count; ++i) {
        mine[i] = element(t.rank, i) + round;
      }
      std::vector<double> all;
      if (t.rank == root) {
        all.resize(count * static_cast<std::size_t>(n));
      }
      co_await f.comm.gather(t, coll::of(mine.data(), count),
                             coll::of(all.data(), count), root);
      std::vector<double> back(count, -1.0);
      co_await f.comm.scatter(t, coll::of(all.data(), count),
                              coll::of(back.data(), count), root);
      for (std::size_t i = 0; i < count; i += 11) {
        EXPECT_EQ(back[i], mine[i]) << "round " << round << " rank "
                                    << t.rank;
      }
    }
  });
}

TEST(SrmGatherScatter, InterleavedWithOtherCollectives) {
  Fixture f(2, 8);
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<double> mine(64, 1.0 * t.rank);
    std::vector<double> all(64 * 16, 0.0);
    co_await f.comm.allgather(t, coll::of(mine.data(), 64),
                              coll::of(all.data(), 64));
    double s = 0.0, total = 0.0;
    for (double v : all) s += v;
    co_await f.comm.allreduce(t, coll::of(&s, 1), coll::of(&total, 1),
                              coll::RedOp::max);
    EXPECT_DOUBLE_EQ(total, 64.0 * (15 * 16 / 2));
    co_await f.comm.barrier(t);
  });
}

// ---- mini-MPI counterparts ----

TEST(MpiGatherScatter, LinearAlgorithmsCorrect) {
  ClusterConfig cc;
  cc.nodes = 2;
  cc.tasks_per_node = 4;
  Cluster cluster(cc);
  minimpi::World world(cluster, cluster.params().mpi_ibm, "ibm");
  int n = 8;
  std::size_t count = 500;
  std::vector<double> gathered(count * 8, -1.0);
  std::vector<std::vector<double>> scattered(8);
  cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = world.comm(t.rank);
    std::vector<double> mine(count);
    for (std::size_t i = 0; i < count; ++i) mine[i] = element(t.rank, i);
    co_await c.gather(mine.data(), t.rank == 3 ? gathered.data() : nullptr,
                      count * sizeof(double), 3);
    std::vector<double> recv(count, -1.0);
    co_await c.scatter(gathered.data(), recv.data(), count * sizeof(double),
                       3);
    scattered[static_cast<std::size_t>(t.rank)] = recv;
  });
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; i += 13) {
      ASSERT_EQ(gathered[static_cast<std::size_t>(r) * count + i],
                element(r, i));
      ASSERT_EQ(scattered[static_cast<std::size_t>(r)][i], element(r, i));
    }
  }
}

TEST(MpiGatherScatter, AllgatherAndReduceScatter) {
  ClusterConfig cc;
  cc.nodes = 2;
  cc.tasks_per_node = 3;
  Cluster cluster(cc);
  minimpi::World world(cluster, cluster.params().mpi_mpich, "mpich");
  cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = world.comm(t.rank);
    std::vector<double> mine(10, 1.0 * t.rank);
    std::vector<double> all(60, -1.0);
    co_await c.allgather(mine.data(), all.data(), 10 * sizeof(double));
    for (int r = 0; r < 6; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r) * 10], 1.0 * r);
    }
    std::vector<double> big(60, 1.0 * t.rank);
    std::vector<double> piece(10, -1.0);
    co_await c.reduce_scatter(big.data(), piece.data(), 10,
                              coll::Dtype::f64, coll::RedOp::sum);
    for (double v : piece) EXPECT_DOUBLE_EQ(v, 15.0);  // sum of ranks 0..5
  });
}

}  // namespace
}  // namespace srm
