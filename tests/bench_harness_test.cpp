// Harness sanity + shape regression tests: the qualitative results the
// paper reports must hold for the default machine profile. These are the
// guardrails that keep future tuning from silently inverting a figure.
#include <gtest/gtest.h>

#include "bench/harness.hpp"

namespace srm::bench {
namespace {

TEST(Harness, DeterministicMeasurements) {
  Bench a(Impl::srm, 4, 16);
  Bench b(Impl::srm, 4, 16);
  EXPECT_EQ(a.time_bcast(4096), b.time_bcast(4096));
  EXPECT_EQ(a.time_barrier(), b.time_barrier());
}

TEST(Harness, TimeGrowsWithMessageSize) {
  for (Impl impl : {Impl::srm, Impl::mpi_ibm, Impl::mpi_mpich}) {
    Bench b(impl, 4, 16);
    double t1 = b.time_bcast(64);
    double t2 = b.time_bcast(64 * 1024);
    double t3 = b.time_bcast(1u << 20);
    EXPECT_LT(t1, t2) << impl_name(impl);
    EXPECT_LT(t2, t3) << impl_name(impl);
  }
}

TEST(Harness, BarrierGrowsWithProcessorCount) {
  for (Impl impl : {Impl::srm, Impl::mpi_ibm}) {
    Bench small(impl, 2, 16);
    Bench large(impl, 16, 16);
    EXPECT_LT(small.time_barrier(), large.time_barrier())
        << impl_name(impl);
  }
}

// ---- shape regressions vs the paper's claims ----

class ShapeAt256 : public ::testing::Test {
 protected:
  static constexpr int kNodes = 16;  // 256 CPUs at 16/node
};

TEST_F(ShapeAt256, SrmBcastBeatsBothBaselinesEverywhere) {
  for (std::size_t bytes : {8ul, 1024ul, 16384ul, 262144ul}) {
    Bench s(Impl::srm, kNodes, 16);
    Bench i(Impl::mpi_ibm, kNodes, 16);
    Bench m(Impl::mpi_mpich, kNodes, 16);
    double ts = s.time_bcast(bytes, iters_for(bytes));
    EXPECT_LT(ts, i.time_bcast(bytes, iters_for(bytes))) << bytes;
    EXPECT_LT(ts, m.time_bcast(bytes, iters_for(bytes))) << bytes;
  }
}

TEST_F(ShapeAt256, SrmReduceAndAllreduceBeatIbm) {
  for (std::size_t count : {1ul, 512ul, 8192ul}) {
    Bench s(Impl::srm, kNodes, 16);
    Bench i(Impl::mpi_ibm, kNodes, 16);
    EXPECT_LT(s.time_reduce(count), i.time_reduce(count)) << count;
    Bench s2(Impl::srm, kNodes, 16);
    Bench i2(Impl::mpi_ibm, kNodes, 16);
    EXPECT_LT(s2.time_allreduce(count), i2.time_allreduce(count)) << count;
  }
}

TEST_F(ShapeAt256, BarrierImprovementInPaperBallpark) {
  Bench s(Impl::srm, kNodes, 16);
  Bench i(Impl::mpi_ibm, kNodes, 16);
  double improvement = 1.0 - s.time_barrier() / i.time_barrier();
  // Paper: 73% on 256 CPUs. Accept a generous band around the shape.
  EXPECT_GT(improvement, 0.45);
  EXPECT_LT(improvement, 0.90);
}

TEST_F(ShapeAt256, BcastImprovementBandContainsPaperRegime) {
  // Fig. 9: ratios roughly 16%..73% of IBM MPI across sizes. Check that a
  // medium size sits deep in the winning region and the smallest size is
  // the weakest win, as in the paper.
  Bench s8(Impl::srm, kNodes, 16), i8(Impl::mpi_ibm, kNodes, 16);
  Bench sm(Impl::srm, kNodes, 16), im(Impl::mpi_ibm, kNodes, 16);
  double r_small = s8.time_bcast(8) / i8.time_bcast(8);
  double r_medium = sm.time_bcast(1024) / im.time_bcast(1024);
  EXPECT_LT(r_small, 1.0);
  EXPECT_LT(r_medium, r_small);  // mid sizes win bigger than tiny ones
  EXPECT_LT(r_medium, 0.5);
}

TEST(Shape, MpichSlowerThanIbmForCollectives) {
  // Compare below both eager limits (IBM's shrinks with P); at sizes where
  // only IBM has switched to rendezvous, MPICH can legitimately win — the
  // exact handicap abl_eager_threshold demonstrates.
  Bench i(Impl::mpi_ibm, 4, 16);
  Bench m(Impl::mpi_mpich, 4, 16);
  EXPECT_LT(i.time_bcast(256), m.time_bcast(256));
  Bench i2(Impl::mpi_ibm, 4, 16);
  Bench m2(Impl::mpi_mpich, 4, 16);
  EXPECT_LT(i2.time_barrier(), m2.time_barrier());
}

TEST(Shape, FatterNodesHelpSrm) {
  // §3: the embedding wins more when more CPUs share memory.
  Bench thin(Impl::srm, 32, 2);
  Bench fat(Impl::srm, 4, 16);
  EXPECT_LT(fat.time_bcast(1024), thin.time_bcast(1024));
}

TEST(Shape, SweepHelpers) {
  auto sizes = size_sweep(8, 64);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{8, 16, 32, 64}));
  EXPECT_EQ(cpu_sweep().front(), 16);
  EXPECT_EQ(cpu_sweep().back(), 256);
  EXPECT_EQ(iters_for(8), 4);
  EXPECT_EQ(iters_for(8u << 20), 1);
}

}  // namespace
}  // namespace srm::bench
