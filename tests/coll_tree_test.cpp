// Tree builders and SMP embedding: structural properties, parameterized
// over sizes and roots.
#include <gtest/gtest.h>

#include <set>

#include "coll/ops.hpp"
#include "coll/tree.hpp"
#include "util/align.hpp"

namespace srm::coll {
namespace {

using machine::Topology;

class TreeProps : public ::testing::TestWithParam<std::tuple<TreeKind, int, int>> {};

TEST_P(TreeProps, ValidSpanningTree) {
  auto [kind, n, root] = GetParam();
  if (root >= n) GTEST_SKIP();
  Tree t = build_tree(kind, n, root);
  t.validate();
  EXPECT_EQ(t.root, root);
  EXPECT_EQ(t.subtree_size(root), n);
}

TEST_P(TreeProps, HeightBounds) {
  auto [kind, n, root] = GetParam();
  if (root >= n) GTEST_SKIP();
  Tree t = build_tree(kind, n, root);
  int h = t.height();
  switch (kind) {
    case TreeKind::binomial:
      // Max depth of a binomial tree over n vertices is floor(log2(n)).
      EXPECT_EQ(h, util::log2_floor(static_cast<unsigned>(n)));
      break;
    case TreeKind::flat:
      EXPECT_EQ(h, n == 1 ? 0 : 1);
      break;
    case TreeKind::binary:
      EXPECT_LE(h, 2 * util::log2_ceil(static_cast<unsigned>(n)) + 1);
      break;
    case TreeKind::fibonacci:
      // Postal trees are deeper than binomial but still logarithmic-ish.
      EXPECT_LE(h, n == 1 ? 0 : 2 * util::log2_ceil(static_cast<unsigned>(n)) + 2);
      break;
    case TreeKind::bine:
      // Bounded dissemination plus the flat straggler tier.
      EXPECT_LE(h, n == 1 ? 0 : 2 * util::log2_ceil(static_cast<unsigned>(n)) + 4);
      break;
  }
}

std::string tree_param_name(
    const ::testing::TestParamInfo<std::tuple<TreeKind, int, int>>& info) {
  return std::string(tree_kind_name(std::get<0>(info.param))) + "_n" +
         std::to_string(std::get<1>(info.param)) + "_r" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeProps,
    ::testing::Combine(
        ::testing::Values(TreeKind::binomial, TreeKind::binary,
                          TreeKind::fibonacci, TreeKind::flat, TreeKind::bine),
        ::testing::Values(1, 2, 3, 5, 8, 13, 16, 31, 32, 100, 256),
        ::testing::Values(0, 1, 7, 255)),
    tree_param_name);

TEST(BinomialTree, MatchesHandComputedEightRanks) {
  // vrank children: 0 -> {1,2,4}, 2 -> {3}, 4 -> {5,6}, 6 -> {7}.
  Tree t = binomial_tree(8, 0);
  EXPECT_EQ(t.children[0], (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(t.children[2], (std::vector<int>{3}));
  EXPECT_EQ(t.children[4], (std::vector<int>{5, 6}));
  EXPECT_EQ(t.children[6], (std::vector<int>{7}));
  EXPECT_TRUE(t.children[1].empty());
  EXPECT_EQ(t.parent[7], 6);
}

TEST(BinomialTree, NonZeroRootRotates) {
  Tree t = binomial_tree(8, 3);
  EXPECT_EQ(t.parent[3], -1);
  // vrank 1 is rank 4, child of the root.
  EXPECT_EQ(t.parent[4], 3);
  t.validate();
}

TEST(FlatTree, RootParentsEveryone) {
  Tree t = flat_tree(5, 2);
  for (int v = 0; v < 5; ++v) {
    if (v == 2) continue;
    EXPECT_EQ(t.parent[static_cast<std::size_t>(v)], 2);
  }
  EXPECT_EQ(t.children[2].size(), 4u);
}

TEST(FibonacciTree, InformedCountsFollowFibonacci) {
  // Informed counts per postal step are 1, 2, 3, 5, 8, 13: reaching 13
  // vertices takes 5 steps, so no root-to-leaf path exceeds 5 edges, and a
  // Fibonacci tree is strictly deeper than the binomial tree's 3.
  Tree t = fibonacci_tree(13, 0);
  t.validate();
  EXPECT_LE(t.height(), 5);
  EXPECT_GE(t.height(), util::log2_floor(13u));
  // The root keeps sending every step; with 5 steps it has 5 children.
  EXPECT_EQ(t.children[0].size(), 5u);
}

TEST(BineTree, PowerOfTwoInformsInLogSteps) {
  // On a power of two the negabinary distance walk never collides: the
  // informed count doubles every step, so the height matches binomial.
  for (int n : {2, 4, 8, 16, 32}) {
    Tree t = bine_tree(n, 0);
    t.validate();
    EXPECT_EQ(t.height(), util::log2_floor(static_cast<unsigned>(n)))
        << "n=" << n;
    EXPECT_EQ(t.subtree_size(0), n);
  }
}

TEST(BineTree, SpansEveryCountAndRoot) {
  for (int n = 1; n <= 33; ++n) {
    for (int root : {0, n - 1, n / 2}) {
      Tree t = bine_tree(n, root);
      t.validate();
      EXPECT_EQ(t.root, root);
      EXPECT_EQ(t.subtree_size(root), n);
    }
  }
}

TEST(TreeKindNames, RoundTrip) {
  for (TreeKind k : {TreeKind::binomial, TreeKind::binary, TreeKind::fibonacci,
                     TreeKind::flat, TreeKind::bine}) {
    TreeKind out;
    ASSERT_TRUE(tree_kind_from_name(tree_kind_name(k), out));
    EXPECT_EQ(out, k);
  }
  TreeKind out;
  EXPECT_FALSE(tree_kind_from_name("nope", out));
}

TEST(Embedding, PaperFigureOneShape) {
  // 8 nodes x 16 tasks (the paper's Figure 1, 128 processors).
  Topology topo(8, 16);
  Embedding e = embed(topo, 0, TreeKind::binomial, TreeKind::binomial);
  e.internode.validate();
  for (const auto& t : e.intranode) t.validate();
  // Embedding adds no height: log2(128) = 7 = log2(8) + log2(16).
  EXPECT_EQ(e.height(topo), 7);
  EXPECT_EQ(e.internode.height(), 3);
  for (const auto& t : e.intranode) EXPECT_EQ(t.height(), 4);
}

TEST(Embedding, LeadersAreMastersExceptRootNode) {
  Topology topo(4, 16);
  Embedding e = embed(topo, 37, TreeKind::binomial, TreeKind::binomial);
  EXPECT_EQ(e.leader[0], 0);
  EXPECT_EQ(e.leader[1], 16);
  EXPECT_EQ(e.leader[2], 37);  // root 37 lives on node 2 and leads it
  EXPECT_EQ(e.leader[3], 48);
  // Intranode tree on node 2 is rooted at the root's local rank.
  EXPECT_EQ(e.intranode[2].root, 5);
}

TEST(Embedding, FifteenOfSixteenStillOptimal) {
  // The paper's "leave one CPU for daemons" configuration: 15 tasks/node.
  Topology topo(8, 15);
  Embedding e = embed(topo, 0, TreeKind::binomial, TreeKind::binomial);
  // Embedding height log2(8) + floor(log2(15)) = 6 does not exceed the flat
  // binomial tree's ceil bound for 120 ranks (the paper's optimality claim).
  EXPECT_EQ(e.height(topo), 6);
  EXPECT_LE(e.height(topo), util::log2_ceil(120u));
}

TEST(Embedding, SingleNodeDegeneratesToIntranodeTree) {
  Topology topo(1, 16);
  Embedding e = embed(topo, 3, TreeKind::binomial, TreeKind::binomial);
  EXPECT_EQ(e.internode.n, 1);
  EXPECT_EQ(e.height(topo), 4);
  EXPECT_EQ(e.leader[0], 3);
}

TEST(Ops, CombineSumDoubles) {
  double a[4] = {1, 2, 3, 4};
  double b[4] = {10, 20, 30, 40};
  combine(RedOp::sum, Dtype::f64, a, b, 4);
  EXPECT_EQ(a[0], 11);
  EXPECT_EQ(a[3], 44);
}

TEST(Ops, CombineMinMaxInt) {
  std::int32_t a[3] = {5, -2, 7};
  std::int32_t b[3] = {3, 0, 9};
  std::int32_t a2[3] = {5, -2, 7};
  combine(RedOp::min, Dtype::i32, a, b, 3);
  EXPECT_EQ(a[0], 3);
  EXPECT_EQ(a[1], -2);
  EXPECT_EQ(a[2], 7);
  combine(RedOp::max, Dtype::i32, a2, b, 3);
  EXPECT_EQ(a2[0], 5);
  EXPECT_EQ(a2[2], 9);
}

TEST(Ops, CombineProdFloat) {
  float a[2] = {2.0f, 3.0f};
  float b[2] = {4.0f, 0.5f};
  combine(RedOp::prod, Dtype::f32, a, b, 2);
  EXPECT_FLOAT_EQ(a[0], 8.0f);
  EXPECT_FLOAT_EQ(a[1], 1.5f);
}

TEST(Ops, DtypeSizes) {
  EXPECT_EQ(dtype_size(Dtype::f64), 8u);
  EXPECT_EQ(dtype_size(Dtype::f32), 4u);
  EXPECT_EQ(dtype_size(Dtype::i32), 4u);
  EXPECT_EQ(dtype_size(Dtype::i64), 8u);
}

machine::TopologyParams two_socket() {
  machine::TopologyParams tp;
  tp.cores_per_l3 = 4;
  tp.l3_per_socket = 2;
  tp.sockets = 2;
  return tp;
}

TEST(TopoTree, SingleDomainIsFlat) {
  machine::TopologyParams tp;  // one 16-core crossbar domain
  Tree t = topo_tree(tp, 8, 3);
  t.validate();
  for (int v = 0; v < 8; ++v) {
    if (v != 3) {
      EXPECT_EQ(t.parent[static_cast<std::size_t>(v)], 3);
    }
  }
}

TEST(TopoTree, SingleDomainBinomialMatchesBinomialTree) {
  machine::TopologyParams tp;
  for (int root : {0, 5}) {
    Tree t = topo_tree(tp, 16, root, /*binomial=*/true);
    Tree b = binomial_tree(16, root);
    EXPECT_EQ(t.parent, b.parent) << "root=" << root;
  }
}

TEST(TopoTree, EveryDomainBoundaryCrossedExactlyOnce) {
  machine::TopologyParams tp = two_socket();
  for (bool binomial : {false, true}) {
    for (int root : {0, 5}) {
      Tree t = topo_tree(tp, 16, root, binomial);
      t.validate();
      int cross_socket = 0;
      int cross_l3 = 0;
      for (int v = 0; v < 16; ++v) {
        int p = t.parent[static_cast<std::size_t>(v)];
        if (p < 0) continue;
        if (tp.socket_of(v) != tp.socket_of(p)) {
          ++cross_socket;
        } else if (tp.l3_of(v) != tp.l3_of(p)) {
          ++cross_l3;
        }
      }
      // One edge into each non-root socket; one edge into each L3 slice
      // that is not its socket leader's own.
      EXPECT_EQ(cross_socket, tp.sockets - 1)
          << "root=" << root << " binomial=" << binomial;
      EXPECT_EQ(cross_l3, tp.sockets * (tp.l3_per_socket - 1))
          << "root=" << root << " binomial=" << binomial;
    }
  }
}

TEST(TopoTree, RootLeadsItsOwnDomains) {
  machine::TopologyParams tp = two_socket();
  // Root 5 lives in L3 slice 1 of socket 0: it must head both, with no
  // detour through the lowest-numbered task.
  Tree t = topo_tree(tp, 16, 5);
  t.validate();
  EXPECT_EQ(t.parent[5], -1);
  // The other socket's leader (its lowest task) hangs directly off the root.
  EXPECT_EQ(t.parent[8], 5);
  // Socket 0's other L3 slice (tasks 0..3) is led by task 0, also off root.
  EXPECT_EQ(t.parent[0], 5);
}

TEST(TopoTree, TruncatedNodeStaysSpanning) {
  // Fewer local tasks than the described topology: domains simply go
  // unpopulated and the tree still spans.
  machine::TopologyParams tp = two_socket();
  for (int n : {3, 6, 11}) {
    for (bool binomial : {false, true}) {
      Tree t = topo_tree(tp, n, 0, binomial);
      t.validate();
      EXPECT_EQ(t.subtree_size(0), n);
    }
  }
}

}  // namespace
}  // namespace srm::coll
