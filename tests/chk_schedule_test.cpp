// Schedule-perturbation stress: the explorer re-runs every collective under
// >= 16 seeded random tie-break schedules with jittered machine constants,
// on both the SRM and mini-MPI backends and several node/task shapes. Every
// payload must stay element-exact and the happens-before checker must stay
// silent — and non-vacuously so (accesses_checked > 0 on the SRM runs).
#include <gtest/gtest.h>

#include "chk/chk.hpp"
#include "chk/explore.hpp"

namespace srm {
namespace {

using chk::ExploreBackend;
using chk::ExploreOptions;
using chk::ExploreResult;

void expect_clean(const ExploreOptions& opt, bool expect_accesses) {
  ExploreResult r = chk::explore(opt);
  EXPECT_EQ(r.runs, opt.schedules);
  EXPECT_TRUE(r.clean()) << summarize(opt, r);
  if (expect_accesses && chk::kEnabled) {
    EXPECT_GT(r.accesses, 0u) << "checker saw no accesses — vacuous pass";
    EXPECT_GT(r.sync_ops, 0u);
  }
}

TEST(ScheduleExplorer, Srm2x2Sixteen) {
  ExploreOptions opt;
  opt.backend = ExploreBackend::srm;
  opt.nodes = 2;
  opt.tasks_per_node = 2;
  opt.schedules = 16;
  opt.seed_base = 1;
  expect_clean(opt, true);
}

TEST(ScheduleExplorer, Srm3x4Sixteen) {
  ExploreOptions opt;
  opt.backend = ExploreBackend::srm;
  opt.nodes = 3;
  opt.tasks_per_node = 4;
  opt.schedules = 16;
  opt.seed_base = 101;
  expect_clean(opt, true);
}

TEST(ScheduleExplorer, SrmSingleNodeAndThinNodes) {
  // Pure-SMP path (1 node) and leaders-only path (1 task per node).
  ExploreOptions opt;
  opt.backend = ExploreBackend::srm;
  opt.nodes = 1;
  opt.tasks_per_node = 4;
  opt.schedules = 8;
  opt.seed_base = 201;
  expect_clean(opt, true);

  opt.nodes = 4;
  opt.tasks_per_node = 1;
  opt.seed_base = 301;
  expect_clean(opt, true);
}

TEST(ScheduleExplorer, MpiIbm2x2Sixteen) {
  ExploreOptions opt;
  opt.backend = ExploreBackend::mpi_ibm;
  opt.nodes = 2;
  opt.tasks_per_node = 2;
  opt.schedules = 16;
  opt.seed_base = 401;
  expect_clean(opt, false);
}

TEST(ScheduleExplorer, MpiMpich3x2Sixteen) {
  ExploreOptions opt;
  opt.backend = ExploreBackend::mpi_mpich;
  opt.nodes = 3;
  opt.tasks_per_node = 2;
  opt.schedules = 16;
  opt.seed_base = 501;
  expect_clean(opt, false);
}

TEST(ScheduleExplorer, FifoNoJitterMatchesSeedBehaviour) {
  // Sanity: with jitter off and the checker off, the explorer still verifies
  // payloads under the randomized tie-break alone.
  ExploreOptions opt;
  opt.backend = ExploreBackend::srm;
  opt.nodes = 2;
  opt.tasks_per_node = 3;
  opt.schedules = 8;
  opt.seed_base = 601;
  opt.jitter = false;
  opt.enable_checker = false;
  ExploreResult r = chk::explore(opt);
  EXPECT_TRUE(r.clean()) << summarize(opt, r);
  EXPECT_EQ(r.accesses, 0u);  // checker off: no access records
}

}  // namespace
}  // namespace srm
