// Schedule-perturbation stress: the explorer re-runs every collective under
// >= 16 seeded random tie-break schedules with jittered machine constants,
// on both the SRM and mini-MPI backends and several node/task shapes. Every
// payload must stay element-exact and the happens-before checker must stay
// silent — and non-vacuously so (accesses_checked > 0 on the SRM runs).
#include <gtest/gtest.h>

#include <cstdlib>

#include "chk/chk.hpp"
#include "chk/explore.hpp"

namespace srm {
namespace {

using chk::ExploreBackend;
using chk::ExploreOptions;
using chk::ExploreResult;

void expect_clean(const ExploreOptions& opt, bool expect_accesses) {
  ExploreResult r = chk::explore(opt);
  EXPECT_EQ(r.runs, opt.schedules);
  EXPECT_TRUE(r.clean()) << summarize(opt, r);
  if (expect_accesses && chk::kEnabled) {
    EXPECT_GT(r.accesses, 0u) << "checker saw no accesses — vacuous pass";
    EXPECT_GT(r.sync_ops, 0u);
  }
}

TEST(ScheduleExplorer, Srm2x2Sixteen) {
  ExploreOptions opt;
  opt.backend = ExploreBackend::srm;
  opt.nodes = 2;
  opt.tasks_per_node = 2;
  opt.schedules = 16;
  opt.seed_base = 1;
  expect_clean(opt, true);
}

TEST(ScheduleExplorer, Srm3x4Sixteen) {
  ExploreOptions opt;
  opt.backend = ExploreBackend::srm;
  opt.nodes = 3;
  opt.tasks_per_node = 4;
  opt.schedules = 16;
  opt.seed_base = 101;
  expect_clean(opt, true);
}

TEST(ScheduleExplorer, SrmSingleNodeAndThinNodes) {
  // Pure-SMP path (1 node) and leaders-only path (1 task per node).
  ExploreOptions opt;
  opt.backend = ExploreBackend::srm;
  opt.nodes = 1;
  opt.tasks_per_node = 4;
  opt.schedules = 8;
  opt.seed_base = 201;
  expect_clean(opt, true);

  opt.nodes = 4;
  opt.tasks_per_node = 1;
  opt.seed_base = 301;
  expect_clean(opt, true);
}

TEST(ScheduleExplorer, MpiIbm2x2Sixteen) {
  ExploreOptions opt;
  opt.backend = ExploreBackend::mpi_ibm;
  opt.nodes = 2;
  opt.tasks_per_node = 2;
  opt.schedules = 16;
  opt.seed_base = 401;
  expect_clean(opt, false);
}

TEST(ScheduleExplorer, MpiMpich3x2Sixteen) {
  ExploreOptions opt;
  opt.backend = ExploreBackend::mpi_mpich;
  opt.nodes = 3;
  opt.tasks_per_node = 2;
  opt.schedules = 16;
  opt.seed_base = 501;
  expect_clean(opt, false);
}

TEST(ScheduleExplorer, FifoNoJitterMatchesSeedBehaviour) {
  // Sanity: with jitter off and the checker off, the explorer still verifies
  // payloads under the randomized tie-break alone.
  ExploreOptions opt;
  opt.backend = ExploreBackend::srm;
  opt.nodes = 2;
  opt.tasks_per_node = 3;
  opt.schedules = 8;
  opt.seed_base = 601;
  opt.jitter = false;
  opt.enable_checker = false;
  ExploreResult r = chk::explore(opt);
  EXPECT_TRUE(r.clean()) << summarize(opt, r);
  EXPECT_EQ(r.accesses, 0u);  // checker off: no access records
}

TEST(ScheduleExplorer, CleanSweepReportsNoFailingSeed) {
  ExploreOptions opt;
  opt.backend = ExploreBackend::srm;
  opt.nodes = 2;
  opt.tasks_per_node = 2;
  opt.schedules = 4;
  opt.seed_base = 701;
  ExploreResult r = chk::explore(opt);
  ASSERT_TRUE(r.clean()) << summarize(opt, r);
  EXPECT_EQ(r.first_failing_seed, ExploreResult::kNoSeed);
  EXPECT_TRUE(r.failing_trace.empty());
  EXPECT_EQ(summarize(opt, r).find("SRM_EXPLORE_SEED"), std::string::npos);
}

TEST(ScheduleExplorer, EnvSeedPinsTheSweepToOneRun) {
  // SRM_EXPLORE_SEED collapses a multi-seed sweep to exactly the named seed —
  // the deterministic replay knob for a failure a previous sweep printed.
  ASSERT_EQ(setenv("SRM_EXPLORE_SEED", "12345", 1), 0);
  ExploreOptions opt;
  opt.backend = ExploreBackend::srm;
  opt.nodes = 2;
  opt.tasks_per_node = 2;
  opt.schedules = 8;
  opt.seed_base = 801;
  ExploreResult r = chk::explore(opt);
  unsetenv("SRM_EXPLORE_SEED");
  EXPECT_EQ(r.runs, 1);
  EXPECT_TRUE(r.clean()) << summarize(opt, r);
}

TEST(ScheduleExplorer, MalformedEnvSeedIsIgnored) {
  ASSERT_EQ(setenv("SRM_EXPLORE_SEED", "not-a-seed", 1), 0);
  ExploreOptions opt;
  opt.backend = ExploreBackend::srm;
  opt.nodes = 1;
  opt.tasks_per_node = 2;
  opt.schedules = 3;
  opt.seed_base = 901;
  ExploreResult r = chk::explore(opt);
  unsetenv("SRM_EXPLORE_SEED");
  EXPECT_EQ(r.runs, 3);  // sweep unaffected
  EXPECT_TRUE(r.clean()) << summarize(opt, r);
}

TEST(ScheduleExplorer, SummaryPrintsReproducerLineOnFailure) {
  // summarize() must tell the user exactly how to replay a failure: the seed
  // and the env var that pins it, plus the captured tie-break trace.
  ExploreOptions opt;
  opt.schedules = 16;
  ExploreResult r;
  r.runs = 16;
  r.payload_errors.push_back("seed 1007 op bcast rank 3: element 5 mismatch");
  r.first_failing_seed = 1007;
  r.failing_trace = {"a0 release 'ready0.s0[0]'", "a3 acquire 'ready0.s0[0]'"};
  std::string s = summarize(opt, r);
  EXPECT_NE(s.find("1007"), std::string::npos) << s;
  EXPECT_NE(s.find("SRM_EXPLORE_SEED=1007"), std::string::npos) << s;
  EXPECT_NE(s.find("tie-break trace"), std::string::npos) << s;
  EXPECT_NE(s.find("a3 acquire 'ready0.s0[0]'"), std::string::npos) << s;
}

}  // namespace
}  // namespace srm
