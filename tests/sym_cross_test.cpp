// Symbolic-vs-real cross-check: every one of the 8 collectives runs twice
// on a small cluster — once with real buffers, once with symbolic payload
// digests — through the same Collectives entry points, on both the SRM and
// mini-MPI backends. Data-movement ops must produce block-identical digests
// (full-image checksum + window); reductions must agree element-exactly on
// the sampled windows. This is what licenses trusting a mega-scale symbolic
// run: on configurations where both planes fit, they are indistinguishable.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/communicator.hpp"
#include "mpi/comm.hpp"

namespace srm {
namespace {

using coll::Buf;
using coll::Dtype;
using coll::Payload;
using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;

constexpr int kNodes = 2, kPpn = 3, kRanks = 6;
constexpr std::size_t kCount = 48;  // f64 elements per rank block (> window)
constexpr std::size_t kBytes = kCount * sizeof(double);
constexpr std::uint64_t kRootSeed = 7;

std::uint64_t rank_seed(int r) { return 100 + static_cast<std::uint64_t>(r); }

enum class Op {
  bcast,
  reduce,
  allreduce,
  barrier,
  scatter,
  gather,
  allgather,
  reduce_scatter
};

// One self-contained environment per run: a fresh cluster + one backend
// driven through the shared coll::Collectives interface.
struct Env {
  explicit Env(bool use_mpi) : cluster(shape()) {
    if (use_mpi) {
      mpi = std::make_unique<minimpi::World>(
          cluster, cluster.params().mpi_ibm, "ibm");
      coll = mpi.get();
    } else {
      fabric = std::make_unique<lapi::Fabric>(cluster);
      srm = std::make_unique<Communicator>(cluster, *fabric);
      coll = srm.get();
    }
  }
  static ClusterConfig shape() {
    ClusterConfig c;
    c.nodes = kNodes;
    c.tasks_per_node = kPpn;
    return c;
  }
  Cluster cluster;
  std::unique_ptr<lapi::Fabric> fabric;
  std::unique_ptr<Communicator> srm;
  std::unique_ptr<minimpi::World> mpi;
  coll::Collectives* coll = nullptr;
};

// Runs `op` on one plane and returns the per-rank result digests (layout
// depends on the op; both planes use the same layout so results compare
// block for block).
std::vector<Payload> run_plane(bool use_mpi, bool symbolic, Op op) {
  Env env(use_mpi);
  coll::Collectives& c = *env.coll;
  std::vector<Payload> out(static_cast<std::size_t>(kRanks));

  env.cluster.run([&](TaskCtx& t) -> CoTask {
    auto ur = static_cast<std::size_t>(t.rank);
    const int root = 1;
    switch (op) {
      case Op::bcast: {
        if (symbolic) {
          Payload pay(1, kBytes);
          if (t.rank == root) pay.fill_pattern(Dtype::kByte, kRootSeed);
          co_await c.bcast(t, Buf::symbolic(pay, Dtype::kByte, kBytes), root);
          out[ur] = pay;
        } else {
          std::vector<std::byte> buf(kBytes);
          if (t.rank == root) {
            coll::fill_pattern(buf.data(), Dtype::kByte, 1, kBytes, kRootSeed);
          }
          co_await c.bcast(t, Buf::bytes(buf.data(), kBytes), root);
          out[ur] = Payload::digest_of(buf.data(), Dtype::kByte, 1, kBytes);
        }
        break;
      }
      case Op::reduce: {
        if (symbolic) {
          Payload in(1, kBytes), res(1, kBytes);
          in.fill_pattern(Dtype::f64, rank_seed(t.rank));
          co_await c.reduce(t, Buf::symbolic(in, Dtype::f64, kCount),
                            Buf::symbolic(res, Dtype::f64, kCount),
                            coll::RedOp::sum, root);
          if (t.rank == root) out[ur] = res;
        } else {
          std::vector<double> in(kCount), res(kCount, 0.0);
          coll::fill_pattern(in.data(), Dtype::f64, 1, kCount,
                             rank_seed(t.rank));
          co_await c.reduce(t, coll::of(in.data(), kCount),
                            coll::of(res.data(), kCount), coll::RedOp::sum,
                            root);
          if (t.rank == root) {
            out[ur] = Payload::digest_of(res.data(), Dtype::f64, 1, kCount);
          }
        }
        break;
      }
      case Op::allreduce: {
        if (symbolic) {
          Payload in(1, kBytes), res(1, kBytes);
          in.fill_pattern(Dtype::f64, rank_seed(t.rank));
          co_await c.allreduce(t, Buf::symbolic(in, Dtype::f64, kCount),
                               Buf::symbolic(res, Dtype::f64, kCount),
                               coll::RedOp::sum);
          out[ur] = res;
        } else {
          std::vector<double> in(kCount), res(kCount, 0.0);
          coll::fill_pattern(in.data(), Dtype::f64, 1, kCount,
                             rank_seed(t.rank));
          co_await c.allreduce(t, coll::of(in.data(), kCount),
                               coll::of(res.data(), kCount),
                               coll::RedOp::sum);
          out[ur] = Payload::digest_of(res.data(), Dtype::f64, 1, kCount);
        }
        break;
      }
      case Op::barrier: {
        // Plane selection for the payload-less op comes from history: issue
        // one symbolic op first so the barrier runs symbolically.
        if (symbolic) {
          Payload pay(1, 8);
          if (t.rank == 0) pay.fill_pattern(Dtype::kByte, 1);
          co_await c.bcast(t, Buf::symbolic(pay, Dtype::kByte, 8), 0);
        }
        co_await c.barrier(t);
        break;
      }
      case Op::scatter: {
        if (symbolic) {
          Payload send(t.rank == root ? kRanks : 0, kBytes);
          if (t.rank == root) send.fill_pattern(Dtype::f64, kRootSeed);
          Payload recv(1, kBytes);
          co_await c.scatter(t, Buf::symbolic(send, Dtype::f64, kCount),
                             Buf::symbolic(recv, Dtype::f64, kCount), root);
          out[ur] = recv;
        } else {
          std::vector<double> send;
          if (t.rank == root) {
            send.resize(kCount * kRanks);
            coll::fill_pattern(send.data(), Dtype::f64, kRanks, kCount,
                               kRootSeed);
          }
          std::vector<double> recv(kCount, 0.0);
          co_await c.scatter(t, coll::of(send.data(), kCount),
                             coll::of(recv.data(), kCount), root);
          out[ur] = Payload::digest_of(recv.data(), Dtype::f64, 1, kCount);
        }
        break;
      }
      case Op::gather: {
        if (symbolic) {
          Payload send(1, kBytes);
          send.fill_pattern(Dtype::f64, kRootSeed,
                            static_cast<std::size_t>(t.rank));
          Payload recv(t.rank == root ? kRanks : 0, kBytes);
          co_await c.gather(t, Buf::symbolic(send, Dtype::f64, kCount),
                            Buf::symbolic(recv, Dtype::f64, kCount), root);
          if (t.rank == root) out[ur] = recv;
        } else {
          std::vector<double> send(kCount);
          coll::fill_pattern(send.data(), Dtype::f64, 1, kCount, kRootSeed,
                             static_cast<std::size_t>(t.rank));
          std::vector<double> recv;
          if (t.rank == root) recv.resize(kCount * kRanks);
          co_await c.gather(t, coll::of(send.data(), kCount),
                            coll::of(recv.data(), kCount), root);
          if (t.rank == root) {
            out[ur] =
                Payload::digest_of(recv.data(), Dtype::f64, kRanks, kCount);
          }
        }
        break;
      }
      case Op::allgather: {
        if (symbolic) {
          Payload send(1, kBytes);
          send.fill_pattern(Dtype::f64, kRootSeed,
                            static_cast<std::size_t>(t.rank));
          Payload recv(kRanks, kBytes);
          co_await c.allgather(t, Buf::symbolic(send, Dtype::f64, kCount),
                               Buf::symbolic(recv, Dtype::f64, kCount));
          out[ur] = recv;
        } else {
          std::vector<double> send(kCount);
          coll::fill_pattern(send.data(), Dtype::f64, 1, kCount, kRootSeed,
                             static_cast<std::size_t>(t.rank));
          std::vector<double> recv(kCount * kRanks, 0.0);
          co_await c.allgather(t, coll::of(send.data(), kCount),
                               coll::of(recv.data(), kCount));
          out[ur] =
              Payload::digest_of(recv.data(), Dtype::f64, kRanks, kCount);
        }
        break;
      }
      case Op::reduce_scatter: {
        if (symbolic) {
          Payload in(kRanks, kBytes), res(1, kBytes);
          in.fill_pattern(Dtype::f64, rank_seed(t.rank));
          co_await c.reduce_scatter(t, Buf::symbolic(in, Dtype::f64, kCount),
                                    Buf::symbolic(res, Dtype::f64, kCount),
                                    coll::RedOp::sum);
          out[ur] = res;
        } else {
          std::vector<double> in(kCount * kRanks), res(kCount, 0.0);
          coll::fill_pattern(in.data(), Dtype::f64, kRanks, kCount,
                             rank_seed(t.rank));
          co_await c.reduce_scatter(t, coll::of(in.data(), kCount),
                                    coll::of(res.data(), kCount),
                                    coll::RedOp::sum);
          out[ur] = Payload::digest_of(res.data(), Dtype::f64, 1, kCount);
        }
        break;
      }
    }
  });
  return out;
}

bool is_reduction(Op op) {
  return op == Op::reduce || op == Op::allreduce || op == Op::reduce_scatter;
}

class SymCross : public ::testing::TestWithParam<std::tuple<bool, Op>> {};

TEST_P(SymCross, PlanesAgreeBlockForBlock) {
  auto [use_mpi, op] = GetParam();
  std::vector<Payload> real = run_plane(use_mpi, /*symbolic=*/false, op);
  std::vector<Payload> sym = run_plane(use_mpi, /*symbolic=*/true, op);
  ASSERT_EQ(real.size(), sym.size());
  for (std::size_t r = 0; r < real.size(); ++r) {
    ASSERT_EQ(real[r].nblocks(), sym[r].nblocks()) << "rank " << r;
    if (real[r].nblocks() == 0) continue;  // rank not significant for op
    if (is_reduction(op)) {
      // Reductions: windows are element-exact; full-image checksums are a
      // commutative mix on the symbolic side, so only windows compare.
      EXPECT_TRUE(sym[r].windows_equal(real[r], Dtype::f64)) << "rank " << r;
    } else {
      // Movement ops: the full digest (checksum + window) must be identical.
      EXPECT_TRUE(sym[r].identical_to(real[r])) << "rank " << r;
    }
  }
}

std::string param_name(const ::testing::TestParamInfo<std::tuple<bool, Op>>& info) {
  static const char* names[] = {"bcast",     "reduce",    "allreduce",
                                "barrier",   "scatter",   "gather",
                                "allgather", "reduce_scatter"};
  return std::string(std::get<0>(info.param) ? "mpi_" : "srm_") +
         names[static_cast<int>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, SymCross,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(Op::bcast, Op::reduce, Op::allreduce,
                                         Op::barrier, Op::scatter, Op::gather,
                                         Op::allgather, Op::reduce_scatter)),
    param_name);

// Larger blocks spanning several transport chunks must still agree — the
// digest rides only the last chunk of each hop.
TEST(SymCrossChunked, BcastAcrossChunkBoundaries) {
  for (bool use_mpi : {false, true}) {
    const std::size_t bytes = 200 * 1024 + 13;  // > 3 x 64 KiB chunks
    auto digest = [&](bool symbolic) {
      Env env(use_mpi);
      std::vector<Payload> got(kRanks);
      env.cluster.run([&](TaskCtx& t) -> CoTask {
        auto ur = static_cast<std::size_t>(t.rank);
        if (symbolic) {
          Payload pay(1, bytes);
          if (t.rank == 0) pay.fill_pattern(Dtype::kByte, 3);
          co_await env.coll->bcast(t, Buf::symbolic(pay, Dtype::kByte, bytes),
                                   0);
          got[ur] = pay;
        } else {
          std::vector<std::byte> buf(bytes);
          if (t.rank == 0) {
            coll::fill_pattern(buf.data(), Dtype::kByte, 1, bytes, 3);
          }
          co_await env.coll->bcast(t, Buf::bytes(buf.data(), bytes), 0);
          got[ur] = Payload::digest_of(buf.data(), Dtype::kByte, 1, bytes);
        }
      });
      return got;
    };
    auto real = digest(false), sym = digest(true);
    for (int r = 0; r < kRanks; ++r) {
      EXPECT_TRUE(sym[static_cast<std::size_t>(r)].identical_to(
          real[static_cast<std::size_t>(r)]))
          << (use_mpi ? "mpi" : "srm") << " rank " << r;
    }
  }
}

}  // namespace
}  // namespace srm
