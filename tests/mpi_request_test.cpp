// Nonblocking mini-MPI operations: isend/irecv/wait semantics, overlap
// behaviour, and mixed blocking/nonblocking traffic.
#include <gtest/gtest.h>

#include <vector>

#include "mpi/comm.hpp"

namespace srm::minimpi {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;
using sim::Time;
using sim::us;

struct Fixture {
  explicit Fixture(int nodes, int per_node)
      : cluster(make_cfg(nodes, per_node)),
        world(cluster, cluster.params().mpi_ibm, "ibm") {}
  static ClusterConfig make_cfg(int nodes, int per_node) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.tasks_per_node = per_node;
    return cfg;
  }
  Cluster cluster;
  World world;
};

TEST(MpiRequest, IsendCompletesAfterWait) {
  Fixture f(2, 1);
  double x = 3.5, y = 0.0;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 0) {
      Request r = c.isend(1, 5, &x, sizeof x);
      co_await c.wait(std::move(r));
    } else {
      co_await c.recv(0, 5, &y, sizeof y);
    }
  });
  EXPECT_EQ(y, 3.5);
}

TEST(MpiRequest, IrecvMatchesLaterSend) {
  Fixture f(2, 1);
  double x = 7.0, y = 0.0;
  Time posted_at = 0, done_at = 0;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 1) {
      Request r = c.irecv(0, 9, &y, sizeof y);
      posted_at = t.eng->now();
      co_await c.wait(std::move(r));
      done_at = t.eng->now();
    } else {
      co_await t.delay(us(500));
      co_await c.send(1, 9, &x, sizeof x);
    }
  });
  EXPECT_EQ(y, 7.0);
  EXPECT_GT(done_at, posted_at + us(400));
}

TEST(MpiRequest, OverlapComputationWithTransfer) {
  // A large rendezvous transfer makes progress while the receiver computes:
  // total time must be close to max(transfer, compute), not their sum.
  Fixture f(2, 1);
  std::vector<char> src(1u << 20, 'a'), dst(1u << 20, 0);
  Time end_overlap = 0;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 0) {
      co_await c.send(1, 1, src.data(), src.size());
    } else {
      Request r = c.irecv(0, 1, dst.data(), dst.size());
      co_await t.delay(sim::ms(2));  // "compute" during the transfer
      co_await c.wait(std::move(r));
      end_overlap = t.eng->now();
    }
  });
  EXPECT_EQ(dst, src);
  // 1 MiB at 350 MB/s is ~3 ms; with 2 ms of compute overlapped, the end
  // must be well under the 5 ms a serialized schedule would need.
  EXPECT_LT(end_overlap, sim::ms(4) + us(500));
}

TEST(MpiRequest, ManyOutstandingRequests) {
  Fixture f(2, 1);
  constexpr int kN = 32;
  std::vector<double> xs(kN), ys(kN, 0.0);
  for (int i = 0; i < kN; ++i) xs[static_cast<std::size_t>(i)] = i * 1.5;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    std::vector<Request> reqs;
    if (t.rank == 0) {
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(c.isend(1, i, &xs[static_cast<std::size_t>(i)],
                               sizeof(double)));
      }
    } else {
      // Receive in reverse tag order to force queue scans.
      for (int i = kN - 1; i >= 0; --i) {
        reqs.push_back(c.irecv(0, i, &ys[static_cast<std::size_t>(i)],
                               sizeof(double)));
      }
    }
    for (auto& r : reqs) co_await c.wait(std::move(r));
  });
  EXPECT_EQ(ys, xs);
}

TEST(MpiRequest, WaitOnNullRequestThrows) {
  Fixture f(1, 2);
  EXPECT_THROW(f.cluster.run([&](TaskCtx& t) -> CoTask {
    if (t.rank == 0) {
      co_await f.world.comm(0).wait(Request{});
    }
  }),
               util::CheckError);
}

}  // namespace
}  // namespace srm::minimpi
