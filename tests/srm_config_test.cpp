// Every SrmConfig variant the ablation benches sweep must stay *correct* —
// tree kinds, single-buffer mode, tree-based SMP broadcast, unusual chunk
// sizes and switch points, interrupt management off — plus API misuse
// checks.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/communicator.hpp"

namespace srm {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;

ClusterConfig shape(int nodes, int ppn) {
  ClusterConfig c;
  c.nodes = nodes;
  c.tasks_per_node = ppn;
  return c;
}

// Runs the full operation mix under a given config and checks data.
void exercise(SrmConfig cfg, int nodes = 3, int ppn = 4) {
  Cluster cluster(shape(nodes, ppn));
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric, cfg);
  int n = nodes * ppn;
  cluster.run([&](TaskCtx& t) -> CoTask {
    for (std::size_t bytes : {64ul, 12000ul, 70000ul}) {
      std::vector<char> buf(bytes, 0);
      int root = static_cast<int>(bytes) % n;
      if (t.rank == root) {
        for (std::size_t i = 0; i < bytes; ++i) {
          buf[i] = static_cast<char>(i % 97);
        }
      }
      co_await comm.bcast(t, coll::Buf::bytes(buf.data(), bytes), root);
      for (std::size_t i = 0; i < bytes; ++i) {
        EXPECT_EQ(buf[i], static_cast<char>(i % 97)) << "bytes " << bytes;
      }
    }
    for (std::size_t count : {7ul, 5000ul}) {
      std::vector<double> in(count, 1.0 + t.rank), out(count, 0.0);
      co_await comm.allreduce(t, coll::of(in.data(), count),
                              coll::of(out.data(), count), coll::RedOp::sum);
      double expect = n + n * (n - 1) / 2.0;
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_DOUBLE_EQ(out[i], expect) << "count " << count;
      }
    }
    co_await comm.barrier(t);
  });
}

TEST(SrmConfig, BinaryInternodeTree) {
  SrmConfig cfg;
  cfg.internode_tree = coll::TreeKind::binary;
  exercise(cfg);
}

TEST(SrmConfig, FibonacciInternodeTree) {
  SrmConfig cfg;
  cfg.internode_tree = coll::TreeKind::fibonacci;
  exercise(cfg, 5, 3);
}

TEST(SrmConfig, FlatInternodeTree) {
  SrmConfig cfg;
  cfg.internode_tree = coll::TreeKind::flat;
  exercise(cfg, 4, 2);
}

TEST(SrmConfig, BinaryIntranodeTree) {
  SrmConfig cfg;
  cfg.intranode_tree = coll::TreeKind::binary;
  exercise(cfg, 2, 13);
}

TEST(SrmConfig, FlatIntranodeTree) {
  SrmConfig cfg;
  cfg.intranode_tree = coll::TreeKind::flat;
  exercise(cfg, 2, 16);
}

TEST(SrmConfig, SingleBufferMode) {
  SrmConfig cfg;
  cfg.use_two_buffers = false;
  exercise(cfg);
}

TEST(SrmConfig, TreeSmpBroadcast) {
  SrmConfig cfg;
  cfg.smp_bcast_tree = true;
  exercise(cfg, 2, 16);
}

TEST(SrmConfig, InterruptManagementOff) {
  SrmConfig cfg;
  cfg.manage_interrupts = false;
  exercise(cfg);
}

TEST(SrmConfig, TinyPipelineChunks) {
  SrmConfig cfg;
  cfg.bcast_pipe_chunk = 1024;
  exercise(cfg);
}

TEST(SrmConfig, PipeliningDisabled) {
  SrmConfig cfg;
  cfg.bcast_pipe_min = 0;
  cfg.bcast_pipe_max = 0;  // empty band: single-shot up to 64 KB
  exercise(cfg);
}

TEST(SrmConfig, EarlyLargeProtocolSwitch) {
  SrmConfig cfg;
  cfg.bcast_small_max = 16 * 1024;
  cfg.bcast_pipe_max = 8 * 1024;
  exercise(cfg);
}

TEST(SrmConfig, SmallReduceChunks) {
  SrmConfig cfg;
  cfg.reduce_chunk = 4096;
  cfg.allreduce_rd_max = 4096;
  exercise(cfg);
}

TEST(SrmConfig, LargeNetChunk) {
  SrmConfig cfg;
  cfg.bcast_net_chunk = 256 * 1024;
  exercise(cfg);
}

TEST(SrmConfig, InvalidBufferSizingThrows) {
  Cluster cluster(shape(2, 2));
  lapi::Fabric fabric(cluster);
  SrmConfig cfg;
  cfg.smp_buf_bytes = 4096;  // smaller than the 64 KB small-protocol max
  EXPECT_THROW(Communicator(cluster, fabric, cfg), util::CheckError);
}

TEST(SrmConfig, MisalignedReduceChunkThrows) {
  Cluster cluster(shape(2, 2));
  lapi::Fabric fabric(cluster);
  SrmConfig cfg;
  cfg.reduce_chunk = 1001;  // not a multiple of 8
  EXPECT_THROW(Communicator(cluster, fabric, cfg), util::CheckError);
}

TEST(SrmApi, InvalidRootThrows) {
  Cluster cluster(shape(1, 2));
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric);
  char buf[8] = {};
  EXPECT_THROW(cluster.run([&](TaskCtx& t) -> CoTask {
    co_await comm.bcast(t, coll::Buf::bytes(buf, sizeof buf), 5);
  }),
               util::CheckError);
}

TEST(SrmApi, AliasedReduceBuffersThrow) {
  Cluster cluster(shape(1, 2));
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric);
  double x[4] = {};
  EXPECT_THROW(cluster.run([&](TaskCtx& t) -> CoTask {
    co_await comm.reduce(t, coll::of(x, 4), coll::of(x, 4), coll::RedOp::sum,
                         0);
  }),
               util::CheckError);
}

TEST(SrmConfig, SingleBufferIsSlowerForPipelinedSizes) {
  // The performance property behind the A/B pair: with one buffer the
  // two-stage pipeline degenerates and pipelined broadcasts serialize.
  auto timed = [](bool two) {
    SrmConfig cfg;
    cfg.use_two_buffers = two;
    Cluster cluster(shape(4, 8));
    lapi::Fabric fabric(cluster);
    Communicator comm(cluster, fabric, cfg);
    cluster.run([&](TaskCtx& t) -> CoTask {
      std::vector<char> buf(24 * 1024, static_cast<char>(t.rank == 0));
      for (int i = 0; i < 3; ++i) {
        co_await comm.bcast(t, coll::Buf::bytes(buf.data(), buf.size()), 0);
      }
    });
    return cluster.engine().now();
  };
  EXPECT_LT(timed(true), timed(false));
}

}  // namespace
}  // namespace srm
