// Exhaustive verification of the eight SRM collective skeletons on the small
// configurations ISSUE.md names, the DPOR-vs-naive reduction evidence, and
// the mutation gauntlet: every seeded protocol bug must surface as a race or
// deadlock with a concrete counterexample schedule.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mc/ir.hpp"
#include "mc/mc.hpp"
#include "mc/protocols.hpp"

namespace srm::mc {
namespace {

const std::vector<Shape>& small_shapes() {
  static const std::vector<Shape> kShapes = {
      Shape{1, 4, 2}, Shape{2, 2, 2}, Shape{2, 4, 1}};
  return kShapes;
}

TEST(McProtocols, AllCollectivesVerifyCleanOnSmallConfigs) {
  for (Proto op : all_protos()) {
    for (const Shape& sh : small_shapes()) {
      Program p = build(op, sh);
      Result r = check(p);
      EXPECT_TRUE(r.ok()) << p.name << ": " << r.summary() << "\n"
                          << (r.races.empty() ? "" : r.races[0].to_string())
                          << (r.deadlocks.empty()
                                  ? ""
                                  : r.deadlocks[0].to_string());
      EXPECT_FALSE(r.budget_exhausted) << p.name << ": " << r.summary();
      EXPECT_GE(r.traces, 1u) << p.name;
    }
  }
}

TEST(McProtocols, BuilderShapesAreWellFormed) {
  for (Proto op : all_protos()) {
    for (const Shape& sh : small_shapes()) {
      Program p = build(op, sh);
      EXPECT_EQ(p.name, std::string(proto_name(op)) + "@" + sh.to_string());
      EXPECT_GE(p.threads.size(), static_cast<std::size_t>(sh.tasks));
      EXPECT_GT(p.total_ops(), 0u) << p.name;
      EXPECT_NO_THROW(p.validate()) << p.name;
    }
  }
}

TEST(McProtocols, DporReducesRealProtocolSearch) {
  // The reduction evidence on a shape both modes can finish: DPOR must agree
  // with full enumeration on the verdict while exploring far less. (One
  // chunk: naive already needs >5M transitions for the two-chunk shape.)
  Program p = build(Proto::bcast, Shape{2, 2, 1});
  Options naive;
  naive.dpor = false;
  naive.sleep_sets = false;
  Result fast = check(p);
  Result full = check(p, naive);
  EXPECT_TRUE(fast.ok()) << fast.summary();
  EXPECT_TRUE(full.ok()) << full.summary();
  EXPECT_FALSE(full.budget_exhausted);
  EXPECT_LT(fast.traces, full.traces);
  EXPECT_LT(fast.transitions * 10, full.transitions)
      << "dpor=" << fast.summary() << " naive=" << full.summary();
}

TEST(McProtocols, SleepSetsPruneProtocolBranches) {
  Program p = build(Proto::gather, Shape{1, 4, 2});
  Result r = check(p);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_GT(r.sleep_cut, 0u) << r.summary();
}

TEST(McProtocols, MutationGauntletEveryBugIsCaught) {
  std::vector<Mutant> gauntlet = mutation_gauntlet();
  ASSERT_GE(gauntlet.size(), 12u);
  for (const Mutant& m : gauntlet) {
    Result r = check(m.program);
    EXPECT_FALSE(r.budget_exhausted) << m.name;
    EXPECT_EQ(r.races_found > 0, m.expect_race)
        << m.name << ": " << r.summary();
    EXPECT_EQ(r.deadlocks_found > 0, m.expect_deadlock)
        << m.name << ": " << r.summary();
    // Every counterexample carries a replayable schedule.
    for (const Race& race : r.races) EXPECT_FALSE(race.schedule.empty());
    for (const Deadlock& d : r.deadlocks) EXPECT_FALSE(d.schedule.empty());
  }
}

TEST(McProtocols, GauntletCoversDropAndReorderOnCoreFigures) {
  // ISSUE.md's named mutations: a dropped flag clear and a reordered counter
  // bump, on the Fig. 3 bcast, Fig. 2 reduce, and the flat barrier.
  std::vector<std::string> names;
  for (const Mutant& m : mutation_gauntlet()) names.push_back(m.name);
  auto has = [&names](const std::string& n) {
    for (const std::string& x : names)
      if (x == n) return true;
    return false;
  };
  EXPECT_TRUE(has("bcast.drop_ready_clear"));
  EXPECT_TRUE(has("bcast.refill_before_clear"));
  EXPECT_TRUE(has("reduce.publish_before_write"));
  EXPECT_TRUE(has("reduce.drop_consumed_gate"));
  EXPECT_TRUE(has("barrier.drop_worker_signal"));
  EXPECT_TRUE(has("barrier.drop_release"));
}

TEST(McProtocols, CounterexampleSchedulesAreCoherent) {
  // A race schedule's steps must name threads of the program and replaying
  // its length never exceeds the program's op count.
  for (const Mutant& m : mutation_gauntlet()) {
    Result r = check(m.program);
    if (r.races.empty()) continue;
    const Race& race = r.races.front();
    EXPECT_LE(race.schedule.size(), m.program.total_ops()) << m.name;
    for (int tid : race.schedule) {
      ASSERT_GE(tid, 0) << m.name;
      ASSERT_LT(static_cast<std::size_t>(tid), m.program.threads.size())
          << m.name;
    }
  }
}

}  // namespace
}  // namespace srm::mc
