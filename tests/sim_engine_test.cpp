// Engine + CoTask semantics: ordering, determinism, nesting, exceptions,
// deadlock detection, triggers, and predicate waits.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/trigger.hpp"
#include "sim/wait.hpp"

namespace srm::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.call_at(us(30), [&] { order.push_back(3); });
  eng.call_at(us(10), [&] { order.push_back(1); });
  eng.call_at(us(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), us(30));
}

TEST(Engine, SameTimeEventsFireInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    eng.call_at(us(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, CancelledEventDoesNotFire) {
  Engine eng;
  bool fired = false;
  auto id = eng.call_at(us(5), [&] { fired = true; });
  eng.cancel(id);
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine eng;
  int count = 0;
  Engine::EventId id = eng.call_at(us(1), [&] { ++count; });
  eng.run();
  eng.cancel(id);  // harmless
  EXPECT_EQ(count, 1);
}

TEST(Engine, SchedulingInPastThrows) {
  Engine eng;
  eng.call_at(us(10), [&] {
    EXPECT_THROW(eng.call_at(us(5), [] {}), util::CheckError);
  });
  eng.run();
}

CoTask sleeper(Engine& eng, Duration d, Time& woke) {
  co_await eng.sleep(d);
  woke = eng.now();
}

TEST(Engine, SpawnedTaskSleeps) {
  Engine eng;
  Time woke = 0;
  eng.spawn(sleeper(eng, us(42), woke));
  eng.run();
  EXPECT_EQ(woke, us(42));
  EXPECT_EQ(eng.live_processes(), 0u);
}

CoTask nested_child(Engine& eng, std::vector<std::string>& log) {
  log.push_back("child-start@" + std::to_string(eng.now()));
  co_await eng.sleep(us(5));
  log.push_back("child-end@" + std::to_string(eng.now()));
}

CoTask nested_parent(Engine& eng, std::vector<std::string>& log) {
  log.push_back("parent-start");
  co_await nested_child(eng, log);
  log.push_back("parent-resumed@" + std::to_string(eng.now()));
}

TEST(CoTask, NestedAwaitRunsChildToCompletion) {
  Engine eng;
  std::vector<std::string> log;
  eng.spawn(nested_parent(eng, log));
  eng.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "parent-start");
  EXPECT_EQ(log[1], "child-start@0");
  EXPECT_EQ(log[2], "child-end@" + std::to_string(us(5)));
  EXPECT_EQ(log[3], "parent-resumed@" + std::to_string(us(5)));
}

CoTask deep(Engine& eng, int depth, int& leaf_count) {
  if (depth == 0) {
    co_await eng.sleep(ns(1));
    ++leaf_count;
    co_return;
  }
  co_await deep(eng, depth - 1, leaf_count);
}

TEST(CoTask, DeepNestingDoesNotOverflow) {
  // Symmetric transfer: 20k-deep await chains must not grow the stack.
  Engine eng;
  int leaves = 0;
  eng.spawn(deep(eng, 20000, leaves));
  eng.run();
  EXPECT_EQ(leaves, 1);
}

CoTask thrower(Engine& eng) {
  co_await eng.sleep(us(1));
  throw std::runtime_error("boom");
}

CoTask rethrow_checker(Engine& eng, bool& caught) {
  try {
    co_await thrower(eng);
  } catch (const std::runtime_error& e) {
    caught = std::string(e.what()) == "boom";
  }
}

TEST(CoTask, ExceptionPropagatesToAwaiter) {
  Engine eng;
  bool caught = false;
  eng.spawn(rethrow_checker(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(CoTask, ExceptionFromRootTaskEscapesRun) {
  Engine eng;
  eng.spawn(thrower(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

CoTask wait_forever(Trigger& t) { co_await t.wait(); }

TEST(Engine, DeadlockDetected) {
  Engine eng;
  Trigger never(eng);
  eng.spawn(wait_forever(never));
  EXPECT_THROW(eng.run(), util::CheckError);
}

CoTask fire_later(Engine& eng, Trigger& t, Duration d) {
  co_await eng.sleep(d);
  t.fire();
}

CoTask await_trigger(Trigger& t, Engine& eng, Time& when) {
  co_await t.wait();
  when = eng.now();
}

TEST(Trigger, WakesAllWaitersAtFireTime) {
  Engine eng;
  Trigger t(eng);
  Time w1 = 0, w2 = 0;
  eng.spawn(await_trigger(t, eng, w1));
  eng.spawn(await_trigger(t, eng, w2));
  eng.spawn(fire_later(eng, t, us(7)));
  eng.run();
  EXPECT_EQ(w1, us(7));
  EXPECT_EQ(w2, us(7));
}

TEST(Trigger, AwaitAfterFireDoesNotSuspend) {
  Engine eng;
  Trigger t(eng);
  t.fire();
  Time when = 123;
  eng.spawn(await_trigger(t, eng, when));
  eng.run();
  EXPECT_EQ(when, 0u);  // resumed synchronously at t=0
}

TEST(Trigger, DoubleFireThrows) {
  Engine eng;
  Trigger t(eng);
  t.fire();
  EXPECT_THROW(t.fire(), util::CheckError);
}

TEST(Trigger, ResetReArms) {
  Engine eng;
  Trigger t(eng);
  t.fire();
  t.reset();
  EXPECT_FALSE(t.fired());
  t.fire();
  EXPECT_TRUE(t.fired());
}

CoTask producer(Engine& eng, int& value, WaitQueue& wq) {
  co_await eng.sleep(us(3));
  value = 1;
  wq.notify();
  co_await eng.sleep(us(3));
  value = 2;
  wq.notify();
}

CoTask consumer(Engine& eng, int& value, WaitQueue& wq, int want, Time& when) {
  co_await wq.wait_until([&] { return value >= want; });
  when = eng.now();
}

TEST(WaitQueue, PredicateWaitsResumeWhenSatisfied) {
  Engine eng;
  int value = 0;
  WaitQueue wq(eng);
  Time t1 = 0, t2 = 0;
  eng.spawn(consumer(eng, value, wq, 1, t1));
  eng.spawn(consumer(eng, value, wq, 2, t2));
  eng.spawn(producer(eng, value, wq));
  eng.run();
  EXPECT_EQ(t1, us(3));
  EXPECT_EQ(t2, us(6));
}

TEST(WaitQueue, AlreadySatisfiedPredicateDoesNotSuspend) {
  Engine eng;
  int value = 5;
  WaitQueue wq(eng);
  Time when = 99;
  eng.spawn(consumer(eng, value, wq, 1, when));
  eng.run();
  EXPECT_EQ(when, 0u);
}

TEST(Engine, CancelOneOfSeveralSameTimestampEvents) {
  Engine eng;
  std::vector<int> order;
  std::vector<Engine::EventId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(eng.call_at(us(5), [&order, i] { order.push_back(i); }));
  }
  eng.cancel(ids[2]);
  eng.cancel(ids[5]);
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 4}));
}

TEST(Engine, CancelFromInsideASameTimestampEvent) {
  // An event may cancel a sibling scheduled at the same instant that has
  // not fired yet; the sibling must not run.
  Engine eng;
  std::vector<int> order;
  Engine::EventId victim = 0;
  eng.call_at(us(5), [&] {
    order.push_back(0);
    eng.cancel(victim);
  });
  victim = eng.call_at(us(5), [&] { order.push_back(1); });
  eng.call_at(us(5), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(Engine, CancelledResumeDoesNotLeakIntoDeadlockCheck) {
  // Cancelling a plain event must not corrupt the engine's liveness
  // accounting: a subsequent run with real work still completes.
  Engine eng;
  auto id = eng.call_at(us(1), [] { FAIL() << "cancelled event fired"; });
  eng.cancel(id);
  Time woke = 0;
  eng.spawn(sleeper(eng, us(2), woke));
  eng.run();
  EXPECT_EQ(woke, us(2));
}

TEST(Engine, RandomTieBreakPermutesSameTimestampEvents) {
  auto order_with_seed = [](std::uint64_t seed, bool random) {
    Engine eng;
    if (random) eng.set_tiebreak(TieBreak::random, seed);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
      eng.call_at(us(5), [&order, i] { order.push_back(i); });
    }
    eng.run();
    return order;
  };
  std::vector<int> fifo = order_with_seed(0, false);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fifo[static_cast<size_t>(i)], i);
  // Each seed is internally deterministic...
  EXPECT_EQ(order_with_seed(7, true), order_with_seed(7, true));
  // ...and at least one of a handful of seeds deviates from FIFO order.
  bool any_permuted = false;
  for (std::uint64_t s = 1; s <= 8 && !any_permuted; ++s) {
    any_permuted = order_with_seed(s, true) != fifo;
  }
  EXPECT_TRUE(any_permuted);
}

TEST(Engine, RandomTieBreakNeverReordersAcrossTimestamps) {
  Engine eng;
  eng.set_tiebreak(TieBreak::random, 99);
  std::vector<int> order;
  eng.call_at(us(30), [&] { order.push_back(3); });
  eng.call_at(us(10), [&] { order.push_back(1); });
  eng.call_at(us(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, DeadlockMessageCountsProcessesAndTime) {
  Engine eng;
  Trigger never(eng, "the_missing_signal");
  eng.spawn(wait_forever(never));
  eng.spawn(wait_forever(never));
  try {
    eng.run();
    FAIL() << "expected deadlock";
  } catch (const util::CheckError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 process"), std::string::npos) << msg;
    EXPECT_NE(msg.find("the_missing_signal"), std::string::npos) << msg;
  }
}

// Two identical runs must be bitwise identical in event count and end time.
TEST(Engine, Determinism) {
  auto run_once = [] {
    Engine eng;
    int value = 0;
    WaitQueue wq(eng);
    Time t1 = 0, t2 = 0;
    eng.spawn(consumer(eng, value, wq, 1, t1));
    eng.spawn(producer(eng, value, wq));
    eng.spawn(consumer(eng, value, wq, 2, t2));
    eng.run();
    return std::tuple{eng.now(), eng.events_processed(), t1, t2};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace srm::sim
