// Algorithm-zoo equivalence: every zoo algorithm (ring allreduce,
// recursive-halving allreduce, scatter+allgather bcast), forced via a
// single-candidate decision table, must be element-exact against the same
// sequential reference the baseline paths are tested against — across node
// shapes (incl. non-power-of-two for the rhalving fold and more nodes than
// elements for zero-length blocks), datatypes, operators, roots, and
// back-to-back mixed-algorithm sequences.
//
// Data is chosen so floating-point reduction is order-independent: sums of
// small integers are exact in f32/f64, and prod inputs are powers of two.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "coll/payload.hpp"
#include "core/communicator.hpp"

namespace srm {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;

struct Fixture {
  Fixture(int nodes, int per_node, SrmConfig cfg = {})
      : cluster(make_cfg(nodes, per_node)),
        fabric(cluster),
        comm(cluster, fabric, cfg) {}
  static ClusterConfig make_cfg(int nodes, int per_node) {
    ClusterConfig c;
    c.nodes = nodes;
    c.tasks_per_node = per_node;
    return c;
  }
  Cluster cluster;
  lapi::Fabric fabric;
  Communicator comm;
};

SrmConfig force(coll::Algo allreduce_algo,
                coll::Algo bcast_algo = coll::Algo::staged) {
  SrmConfig cfg;
  cfg.decisions.profile = "forced";
  cfg.decisions.set(coll::CollKind::allreduce, 0,
                    {allreduce_algo, false, coll::TreeKind::binomial});
  cfg.decisions.set(coll::CollKind::bcast, 0,
                    {bcast_algo, false, coll::TreeKind::binomial});
  return cfg;
}

double contribution(int rank, std::size_t i) {
  return (rank % 17 + 1.0) * static_cast<double>(i % 29 + 1);
}

// ---------------------------------------------------------------------------
// Allreduce zoo: shape x size sweep, f64 sum.
// ---------------------------------------------------------------------------

class ZooAllreduce : public ::testing::TestWithParam<
                         std::tuple<coll::Algo, int, int, std::size_t>> {};

TEST_P(ZooAllreduce, MatchesSequentialReference) {
  auto [algo, nodes, ppn, count] = GetParam();
  Fixture f(nodes, ppn, force(algo));
  int n = nodes * ppn;
  std::vector<std::vector<double>> send(static_cast<std::size_t>(n)),
      recv(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto& s = send[static_cast<std::size_t>(r)];
    s.resize(count);
    for (std::size_t i = 0; i < count; ++i) s[i] = contribution(r, i);
    recv[static_cast<std::size_t>(r)].assign(count, -1.0);
  }
  f.cluster.run([&, count = count](TaskCtx& t) -> CoTask {
    auto r = static_cast<std::size_t>(t.rank);
    co_await f.comm.allreduce(t, coll::of(send[r].data(), count),
                              coll::of(recv[r].data(), count),
                              coll::RedOp::sum);
  });
  for (std::size_t i = 0; i < count; ++i) {
    double want = 0;
    for (int r = 0; r < n; ++r) want += contribution(r, i);
    for (int r = 0; r < n; ++r) {
      auto ri = static_cast<std::size_t>(r);
      ASSERT_EQ(recv[ri][i], want) << "rank " << r << " elem " << i;
      // The send buffer is an input: it must come back untouched.
      ASSERT_EQ(send[ri][i], contribution(r, i)) << "rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZooAllreduce,
    ::testing::Combine(
        ::testing::Values(coll::Algo::ring, coll::Algo::rhalving),
        // 3 and 5 nodes exercise the rhalving fold and odd ring geometry;
        // count 3 with 4-5 nodes yields zero-length blocks.
        ::testing::Values(1, 2, 3, 4, 5), ::testing::Values(1, 4),
        ::testing::Values(std::size_t{1}, std::size_t{3}, std::size_t{2049},
                          std::size_t{10000})),
    [](const auto& info) {
      return std::string(coll::algo_name(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "x" +
             std::to_string(std::get<2>(info.param)) + "_c" +
             std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------------
// Allreduce zoo: every dtype x operator on one asymmetric shape.
// ---------------------------------------------------------------------------

template <typename T>
void run_typed(coll::Algo algo, coll::RedOp op) {
  const int nodes = 3, ppn = 4, n = nodes * ppn;
  const std::size_t count = 257;
  // prod inputs are 1 or 2 (exact in every dtype; product <= 2^12);
  // everything else uses the integer-valued contribution pattern.
  auto val = [op](int rank, std::size_t i) -> T {
    if (op == coll::RedOp::prod) {
      return static_cast<T>((static_cast<std::size_t>(rank) + i) % 2 + 1);
    }
    return static_cast<T>(contribution(rank, i));
  };
  Fixture f(nodes, ppn, force(algo));
  std::vector<std::vector<T>> send(static_cast<std::size_t>(n)),
      recv(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto& s = send[static_cast<std::size_t>(r)];
    s.resize(count);
    for (std::size_t i = 0; i < count; ++i) s[i] = val(r, i);
    recv[static_cast<std::size_t>(r)].assign(count, T{0});
  }
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto r = static_cast<std::size_t>(t.rank);
    co_await f.comm.allreduce(t, coll::of(send[r].data(), count),
                              coll::of(recv[r].data(), count), op);
  });
  for (std::size_t i = 0; i < count; ++i) {
    T want = val(0, i);
    for (int r = 1; r < n; ++r) {
      T v = val(r, i);
      switch (op) {
        case coll::RedOp::sum: want = static_cast<T>(want + v); break;
        case coll::RedOp::prod: want = static_cast<T>(want * v); break;
        case coll::RedOp::min: want = v < want ? v : want; break;
        case coll::RedOp::max: want = v > want ? v : want; break;
      }
    }
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(recv[static_cast<std::size_t>(r)][i], want)
          << "rank " << r << " elem " << i;
    }
  }
}

const char* red_op_name(coll::RedOp op) {
  switch (op) {
    case coll::RedOp::sum: return "sum";
    case coll::RedOp::prod: return "prod";
    case coll::RedOp::min: return "min";
    case coll::RedOp::max: return "max";
  }
  return "?";
}

class ZooAllreduceOps
    : public ::testing::TestWithParam<std::tuple<coll::Algo, coll::RedOp>> {};

TEST_P(ZooAllreduceOps, AllDtypes) {
  auto [algo, op] = GetParam();
  run_typed<double>(algo, op);
  run_typed<float>(algo, op);
  run_typed<std::int32_t>(algo, op);
  run_typed<std::int64_t>(algo, op);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, ZooAllreduceOps,
    ::testing::Combine(
        ::testing::Values(coll::Algo::ring, coll::Algo::rhalving),
        ::testing::Values(coll::RedOp::sum, coll::RedOp::prod,
                          coll::RedOp::min, coll::RedOp::max)),
    [](const auto& info) {
      return std::string(coll::algo_name(std::get<0>(info.param))) + "_" +
             red_op_name(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Scatter+allgather broadcast: shape x size sweep, plus every root on an
// asymmetric cluster (root off the master changes the node leader).
// ---------------------------------------------------------------------------

class ZooBcast
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(ZooBcast, DeliversRootBytes) {
  auto [nodes, ppn, bytes] = GetParam();
  Fixture f(nodes, ppn, force(coll::Algo::pipeline, coll::Algo::scatter_ag));
  int n = nodes * ppn;
  int root = n > 5 ? 5 : 0;  // non-master whenever the shape allows
  std::vector<std::vector<char>> bufs(static_cast<std::size_t>(n),
                                      std::vector<char>(bytes, 0));
  f.cluster.run([&, bytes = bytes, root](TaskCtx& t) -> CoTask {
    auto& buf = bufs[static_cast<std::size_t>(t.rank)];
    if (t.rank == root) {
      for (std::size_t i = 0; i < bytes; ++i) {
        buf[i] = static_cast<char>((i * 131 + 17) % 251);
      }
    }
    co_await f.comm.bcast(t, coll::Buf::bytes(buf.data(), bytes), root);
  });
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(bufs[static_cast<std::size_t>(r)],
              bufs[static_cast<std::size_t>(root)])
        << "rank " << r << " bytes " << bytes;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZooBcast,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(1, 4),
                       // 1B forces zero-length blocks on every multi-node
                       // shape; 300000 spans many reduce_chunk pieces.
                       ::testing::Values(std::size_t{1}, std::size_t{10},
                                         std::size_t{4096},
                                         std::size_t{65537},
                                         std::size_t{300000})),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "_b" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ZooBcast, EveryRootOnAsymmetricCluster) {
  Fixture f(3, 5, force(coll::Algo::pipeline, coll::Algo::scatter_ag));
  std::size_t bytes = 3000;
  for (int root : {0, 1, 4, 5, 9, 14}) {
    std::vector<std::vector<char>> bufs(15, std::vector<char>(bytes, 0));
    f.cluster.run([&, root](TaskCtx& t) -> CoTask {
      auto& buf = bufs[static_cast<std::size_t>(t.rank)];
      if (t.rank == root) {
        for (std::size_t i = 0; i < bytes; ++i) {
          buf[i] = static_cast<char>((i + static_cast<std::size_t>(root)) % 127);
        }
      }
      co_await f.comm.bcast(t, coll::Buf::bytes(buf.data(), bytes), root);
    });
    for (int r = 0; r < 15; ++r) {
      ASSERT_EQ(bufs[static_cast<std::size_t>(r)],
                bufs[static_cast<std::size_t>(root)])
          << "root " << root << " rank " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Mixed sequences: a size-banded table alternates zoo algorithms back to
// back on one communicator — the streamed-chunk sequence numbers and credit
// counters must stay balanced across operations.
// ---------------------------------------------------------------------------

TEST(ZooSequence, BandedTableAlternatesAlgorithms) {
  SrmConfig cfg;
  cfg.decisions.profile = "forced";
  cfg.decisions.set(coll::CollKind::allreduce, 0,
                    {coll::Algo::ring, false, coll::TreeKind::binomial});
  cfg.decisions.set(coll::CollKind::allreduce, 8192,
                    {coll::Algo::rhalving, false, coll::TreeKind::binomial});
  cfg.decisions.set(coll::CollKind::bcast, 0,
                    {coll::Algo::scatter_ag, false, coll::TreeKind::binomial});
  Fixture f(4, 3, cfg);
  const int n = 12;
  const std::size_t small = 500, large = 3000;  // 4000B ring / 24000B rhalving
  std::vector<std::vector<double>> a(n), b(n), out(n);
  std::vector<std::vector<char>> bc(n);
  for (int r = 0; r < n; ++r) {
    a[static_cast<std::size_t>(r)].resize(small);
    b[static_cast<std::size_t>(r)].resize(large);
    for (std::size_t i = 0; i < small; ++i) {
      a[static_cast<std::size_t>(r)][i] = contribution(r, i);
    }
    for (std::size_t i = 0; i < large; ++i) {
      b[static_cast<std::size_t>(r)][i] = contribution(r, i + 1);
    }
    out[static_cast<std::size_t>(r)].resize(large);
    bc[static_cast<std::size_t>(r)].assign(2048, 0);
  }
  for (int round = 0; round < 2; ++round) {
    int root = round == 0 ? 0 : 7;
    f.cluster.run([&, root](TaskCtx& t) -> CoTask {
      auto r = static_cast<std::size_t>(t.rank);
      co_await f.comm.allreduce(t, coll::of(a[r].data(), small),
                                coll::of(out[r].data(), small),
                                coll::RedOp::sum);
      if (t.rank == root) {
        for (std::size_t i = 0; i < 2048; ++i) {
          bc[r][i] = static_cast<char>((i * 7 + 3) % 127);
        }
      }
      co_await f.comm.bcast(t, coll::Buf::bytes(bc[r].data(), 2048), root);
      co_await f.comm.allreduce(t, coll::of(b[r].data(), large),
                                coll::of(out[r].data(), large),
                                coll::RedOp::sum);
    });
    for (std::size_t i = 0; i < large; ++i) {
      double want = 0;
      for (int r = 0; r < n; ++r) want += contribution(r, i + 1);
      for (int r = 0; r < n; ++r) {
        ASSERT_EQ(out[static_cast<std::size_t>(r)][i], want)
            << "round " << round << " rank " << r << " elem " << i;
      }
    }
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(bc[static_cast<std::size_t>(r)],
                bc[static_cast<std::size_t>(root)])
          << "round " << round << " rank " << r;
    }
  }
}

// Zoo rows with the mapped column set (and single-copy enabled) must still
// be correct: the zoo's intra-node phases are staged by design, so the
// mapped flag applies only where a mapped variant exists.
TEST(ZooSequence, CoexistsWithSingleCopy) {
  SrmConfig cfg;
  cfg.single_copy = true;
  cfg.decisions.profile = "forced";
  cfg.decisions.set(coll::CollKind::allreduce, 0,
                    {coll::Algo::ring, true, coll::TreeKind::binomial});
  cfg.decisions.set(coll::CollKind::bcast, 0,
                    {coll::Algo::scatter_ag, true, coll::TreeKind::binomial});
  Fixture f(3, 4, cfg);
  const int n = 12;
  const std::size_t count = 1500;
  std::vector<std::vector<double>> send(n), recv(n);
  for (int r = 0; r < n; ++r) {
    send[static_cast<std::size_t>(r)].resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      send[static_cast<std::size_t>(r)][i] = contribution(r, i);
    }
    recv[static_cast<std::size_t>(r)].assign(count, 0);
  }
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto r = static_cast<std::size_t>(t.rank);
    co_await f.comm.allreduce(t, coll::of(send[r].data(), count),
                              coll::of(recv[r].data(), count),
                              coll::RedOp::sum);
    co_await f.comm.bcast(t, coll::of(recv[r].data(), count), 5);
  });
  for (std::size_t i = 0; i < count; ++i) {
    double want = 0;
    for (int r = 0; r < n; ++r) want += contribution(r, i);
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(recv[static_cast<std::size_t>(r)][i], want) << "rank " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Symbolic plane: the same forced tables drive the zoo cost runners, which
// must stay digest-exact — movement ops reproduce the root image checksum,
// reductions land on the identical commutative digest the staged baseline
// produces whatever grouping the algorithm combined contributions in.
// ---------------------------------------------------------------------------

TEST(ZooSymbolic, BcastDigestEqualsRootImage) {
  const std::size_t bytes = 100000;
  for (int nodes : {1, 2, 3, 5}) {
    Fixture f(nodes, 3, force(coll::Algo::pipeline, coll::Algo::scatter_ag));
    const int n = nodes * 3;
    const int root = n > 4 ? 4 : 0;
    std::vector<coll::Payload> pays(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      pays[static_cast<std::size_t>(r)] = coll::Payload(1, bytes);
      if (r == root) {
        pays[static_cast<std::size_t>(r)].fill_pattern(coll::Dtype::kByte, 42);
      }
    }
    f.cluster.run([&, root](TaskCtx& t) -> CoTask {
      auto r = static_cast<std::size_t>(t.rank);
      co_await f.comm.bcast(
          t, coll::Buf::symbolic(pays[r], coll::Dtype::kByte, bytes), root);
    });
    coll::Payload want(1, bytes);
    want.fill_pattern(coll::Dtype::kByte, 42);
    for (int r = 0; r < n; ++r) {
      EXPECT_TRUE(pays[static_cast<std::size_t>(r)].identical_to(want))
          << nodes << " nodes, rank " << r;
    }
  }
}

TEST(ZooSymbolic, AllreduceDigestsMatchStagedBaseline) {
  const std::size_t count = 300;
  const std::size_t bytes = count * sizeof(double);
  auto run = [&](int nodes, int ppn, coll::Algo algo) {
    Fixture f(nodes, ppn, force(algo));
    const int n = nodes * ppn;
    std::vector<coll::Payload> in(static_cast<std::size_t>(n)),
        out(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      auto ri = static_cast<std::size_t>(r);
      in[ri] = coll::Payload(1, bytes);
      in[ri].fill_pattern(coll::Dtype::f64,
                          100 + static_cast<std::uint64_t>(r));
      out[ri] = coll::Payload(1, bytes);
    }
    f.cluster.run([&](TaskCtx& t) -> CoTask {
      auto r = static_cast<std::size_t>(t.rank);
      co_await f.comm.allreduce(
          t, coll::Buf::symbolic(in[r], coll::Dtype::f64, count),
          coll::Buf::symbolic(out[r], coll::Dtype::f64, count),
          coll::RedOp::sum);
    });
    return out;
  };
  const std::vector<std::pair<int, int>> shapes{{1, 4}, {3, 4}, {4, 1}, {5, 2}};
  for (auto [nodes, ppn] : shapes) {
    auto base = run(nodes, ppn, coll::Algo::rd);
    for (coll::Algo algo : {coll::Algo::ring, coll::Algo::rhalving}) {
      auto got = run(nodes, ppn, algo);
      for (std::size_t r = 0; r < got.size(); ++r) {
        EXPECT_TRUE(got[r].identical_to(base[r]))
            << coll::algo_name(algo) << " n" << nodes << "x" << ppn
            << " rank " << r;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism: the zoo paths run on the same discrete-event engine — two
// identical runs must land on identical virtual time and event counts.
// ---------------------------------------------------------------------------

TEST(ZooDeterminism, IdenticalRunsIdenticalTimings) {
  auto run_once = [](coll::Algo algo) {
    Fixture f(4, 4, force(algo, coll::Algo::scatter_ag));
    const int n = 16;
    const std::size_t count = 5000;
    std::vector<std::vector<double>> send(n), recv(n);
    for (int r = 0; r < n; ++r) {
      send[static_cast<std::size_t>(r)].resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        send[static_cast<std::size_t>(r)][i] = contribution(r, i);
      }
      recv[static_cast<std::size_t>(r)].assign(count, 0);
    }
    f.cluster.run([&](TaskCtx& t) -> CoTask {
      auto r = static_cast<std::size_t>(t.rank);
      co_await f.comm.allreduce(t, coll::of(send[r].data(), count),
                                coll::of(recv[r].data(), count),
                                coll::RedOp::sum);
      co_await f.comm.bcast(t, coll::of(recv[r].data(), count), 3);
    });
    return std::pair{f.cluster.engine().now(),
                     f.cluster.engine().events_processed()};
  };
  for (coll::Algo algo : {coll::Algo::ring, coll::Algo::rhalving}) {
    auto first = run_once(algo);
    auto second = run_once(algo);
    EXPECT_EQ(first, second) << coll::algo_name(algo);
  }
}

}  // namespace
}  // namespace srm
