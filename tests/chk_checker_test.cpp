// srm::chk unit semantics: vector-clock happens-before edges, race
// detection, message clocks, protocol-stage attribution — plus the
// SharedFlag visibility regression (polled readers must see stores only
// after propagation) and the deadlock diagnostics wiring.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "chk/chk.hpp"
#include "machine/params.hpp"
#include "shm/flag.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/wait.hpp"

namespace srm {
namespace {

using chk::Access;
using chk::Checker;
using chk::MsgClock;
using chk::SyncVar;
using sim::Engine;

struct Fixture {
  Engine eng;
  Checker chk{eng, 4};
  std::vector<std::byte> buf = std::vector<std::byte>(256);

  Fixture() {
    chk.set_enabled(true);
    chk.register_region(buf.data(), buf.size(), "buf");
  }
  const void* at(std::size_t off) const { return buf.data() + off; }
};

TEST(Checker, UnorderedWriteWriteIsARace) {
  if (!chk::kEnabled) GTEST_SKIP() << "built with SRM_CHK=OFF";
  Fixture f;
  f.chk.access(0, f.at(0), 16, Access::write);
  f.chk.access(1, f.at(8), 16, Access::write);
  ASSERT_EQ(f.chk.reports().size(), 1u);
  const chk::RaceReport& r = f.chk.reports()[0];
  EXPECT_EQ(r.region, "buf");
  EXPECT_EQ(r.lo, 8u);
  EXPECT_EQ(r.hi, 16u);
  EXPECT_EQ(r.prev_actor, 0);
  EXPECT_EQ(r.cur_actor, 1);
}

TEST(Checker, UnorderedReadWriteIsARace) {
  if (!chk::kEnabled) GTEST_SKIP() << "built with SRM_CHK=OFF";
  Fixture f;
  f.chk.access(0, f.at(0), 32, Access::read);
  f.chk.access(1, f.at(16), 8, Access::write);
  EXPECT_EQ(f.chk.reports().size(), 1u);
}

TEST(Checker, ReadReadIsNotARace) {
  Fixture f;
  f.chk.access(0, f.at(0), 32, Access::read);
  f.chk.access(1, f.at(0), 32, Access::read);
  EXPECT_TRUE(f.chk.reports().empty());
}

TEST(Checker, DisjointRangesDoNotRace) {
  Fixture f;
  f.chk.access(0, f.at(0), 16, Access::write);
  f.chk.access(1, f.at(16), 16, Access::write);
  EXPECT_TRUE(f.chk.reports().empty());
}

TEST(Checker, SameActorIsProgramOrdered) {
  Fixture f;
  f.chk.access(0, f.at(0), 16, Access::write);
  f.chk.access(0, f.at(0), 16, Access::write);
  EXPECT_TRUE(f.chk.reports().empty());
}

TEST(Checker, ReleaseAcquireOrdersAccesses) {
  Fixture f;
  SyncVar flag;
  f.chk.access(0, f.at(0), 16, Access::write);
  f.chk.release(0, flag, "ready");
  f.chk.acquire(1, flag, "ready");
  f.chk.access(1, f.at(0), 16, Access::write);
  EXPECT_TRUE(f.chk.reports().empty());
  EXPECT_GE(f.chk.sync_ops(), 2u);
}

TEST(Checker, AcquireWithoutReleaseDoesNotOrder) {
  if (!chk::kEnabled) GTEST_SKIP() << "built with SRM_CHK=OFF";
  Fixture f;
  SyncVar flag;
  f.chk.access(0, f.at(0), 16, Access::write);
  // Actor 1 acquires a flag the writer never released into: no edge.
  f.chk.acquire(1, flag, "unrelated");
  f.chk.access(1, f.at(0), 16, Access::write);
  EXPECT_EQ(f.chk.reports().size(), 1u);
}

TEST(Checker, WriteAfterAcquireStillRacesWithLaterUnorderedWrite) {
  if (!chk::kEnabled) GTEST_SKIP() << "built with SRM_CHK=OFF";
  Fixture f;
  SyncVar flag;
  f.chk.access(0, f.at(0), 16, Access::write);
  f.chk.release(0, flag);
  f.chk.acquire(1, flag);
  f.chk.access(1, f.at(0), 16, Access::write);   // ordered after actor 0
  f.chk.access(2, f.at(0), 16, Access::write);   // ordered after nothing
  // Actor 2 races with actor 1's write (actor 0's is shadowed by pruning —
  // any race with it is also a race with actor 1's covering write).
  ASSERT_EQ(f.chk.reports().size(), 1u);
  EXPECT_EQ(f.chk.reports()[0].prev_actor, 1);
  EXPECT_EQ(f.chk.reports()[0].cur_actor, 2);
}

TEST(Checker, ForkJoinAcquireOrdersRemoteAccess) {
  Fixture f;
  SyncVar cntr;
  // Origin writes its buffer, then the "put" forks a message clock; the
  // deposit is a message-attributed write; the counter bump joins; the
  // waiter acquires. The waiter may then reuse the landing zone.
  f.chk.access(0, f.at(64), 32, Access::write);
  MsgClock m = f.chk.fork(0);
  f.chk.access_remote(m, f.at(128), 32, Access::write);
  f.chk.join(cntr, m);
  f.chk.acquire(1, cntr, "arrived");
  f.chk.access(1, f.at(128), 32, Access::write);
  EXPECT_TRUE(f.chk.reports().empty());
}

TEST(Checker, RemoteDepositUnorderedWithLocalReaderRaces) {
  if (!chk::kEnabled) GTEST_SKIP() << "built with SRM_CHK=OFF";
  Fixture f;
  MsgClock m = f.chk.fork(0);
  f.chk.access_remote(m, f.at(128), 32, Access::write);
  // Actor 1 reads the landing zone without waiting on any counter.
  f.chk.access(1, f.at(128), 32, Access::read);
  EXPECT_EQ(f.chk.reports().size(), 1u);
}

TEST(Checker, StageStackAppearsInReports) {
  if (!chk::kEnabled) GTEST_SKIP() << "built with SRM_CHK=OFF";
  Fixture f;
  {
    chk::TaskChk t0{&f.chk, 0};
    chk::StageScope outer(t0, "srm.bcast");
    chk::StageScope inner(t0, "smp.bcast_chunk");
    f.chk.access(0, f.at(0), 8, Access::write);
  }
  f.chk.access(1, f.at(0), 8, Access::write);
  ASSERT_EQ(f.chk.reports().size(), 1u);
  EXPECT_EQ(f.chk.reports()[0].prev_stage, "srm.bcast > smp.bcast_chunk");
  std::string s = f.chk.reports()[0].to_string();
  EXPECT_NE(s.find("buf"), std::string::npos);
  EXPECT_NE(s.find("smp.bcast_chunk"), std::string::npos);
}

TEST(Checker, UnregisteredMemoryIsIgnored) {
  Fixture f;
  std::vector<std::byte> priv(64);
  f.chk.access(0, priv.data(), 64, Access::write);
  f.chk.access(1, priv.data(), 64, Access::write);
  EXPECT_TRUE(f.chk.reports().empty());
}

TEST(Checker, DisabledCheckerRecordsNothing) {
  Fixture f;
  f.chk.set_enabled(false);
  f.chk.access(0, f.at(0), 16, Access::write);
  f.chk.access(1, f.at(0), 16, Access::write);
  EXPECT_TRUE(f.chk.reports().empty());
  EXPECT_EQ(f.chk.accesses_checked(), 0u);
}

TEST(Checker, AccessesCheckedCounts) {
  if (!chk::kEnabled) GTEST_SKIP() << "built with SRM_CHK=OFF";
  Fixture f;
  f.chk.access(0, f.at(0), 16, Access::write);
  f.chk.access(0, f.at(16), 16, Access::read);
  EXPECT_EQ(f.chk.accesses_checked(), 2u);
}

TEST(Checker, TaskChkHelpersRespectNullChecker) {
  chk::TaskChk none;  // default: no checker attached
  EXPECT_FALSE(chk::on(none));
  chk::note_read(none, nullptr, 8);   // must not crash
  chk::note_write(none, nullptr, 8);
}

// ---- SharedFlag visibility (satellite regression) --------------------------

sim::CoTask poll_probe(Engine& eng, shm::SharedFlag& flag,
                       std::vector<std::pair<sim::Time, std::uint64_t>>& log,
                       sim::Duration step, int npolls) {
  for (int i = 0; i < npolls; ++i) {
    log.emplace_back(eng.now(), flag.get());
    co_await eng.sleep(step);
  }
}

sim::CoTask store_at(Engine& eng, shm::SharedFlag& flag, sim::Duration when,
                     std::uint64_t v) {
  co_await eng.sleep(when);
  flag.set(v);
}

TEST(SharedFlag, PolledGetSeesStoreOnlyAfterPropagation) {
  Engine eng;
  machine::MemoryParams mp;  // flag_propagation = 250 ns
  shm::SharedFlag flag(eng, mp, 0, "f");
  std::vector<std::pair<sim::Time, std::uint64_t>> log;
  // Store fires at t=1000ns; probes at 0,100,...,1500ns.
  eng.spawn(store_at(eng, flag, sim::ns(1000), 7));
  eng.spawn(poll_probe(eng, flag, log, sim::ns(100), 16));
  eng.run();
  for (const auto& [t, v] : log) {
    if (t < sim::ns(1000) + mp.flag_propagation) {
      EXPECT_EQ(v, 0u) << "polled read at " << t
                       << " observed the store before propagation";
    } else {
      EXPECT_EQ(v, 7u) << "polled read at " << t << " missed the store";
    }
  }
}

TEST(SharedFlag, RawGetIsTheWritersImmediateView) {
  Engine eng;
  machine::MemoryParams mp;
  shm::SharedFlag flag(eng, mp, 0);
  flag.set(3);
  EXPECT_EQ(flag.raw_get(), 3u);  // committed immediately
  EXPECT_EQ(flag.get(), 0u);      // not yet visible to readers
  flag.add(2);                    // read-modify-write uses the committed value
  EXPECT_EQ(flag.raw_get(), 5u);
  eng.run();
  EXPECT_EQ(flag.get(), 5u);
}

TEST(SharedFlag, RandomTieBreakCannotResurrectOverwrittenValue) {
  // Two stores at the same instant produce two visibility events at the
  // same timestamp; under a random tie-break they may fire in either order,
  // but the sequence stamp must keep the newest store as the final value.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    Engine eng;
    eng.set_tiebreak(sim::TieBreak::random, seed);
    machine::MemoryParams mp;
    shm::SharedFlag flag(eng, mp, 0);
    eng.call_at(sim::ns(10), [&flag] {
      flag.set(1);
      flag.set(2);
    });
    eng.run();
    EXPECT_EQ(flag.get(), 2u) << "seed " << seed;
  }
}

// ---- deadlock diagnostics --------------------------------------------------

sim::CoTask stuck_on(sim::WaitQueue& wq, int who) {
  co_await wq.wait_until([] { return false; }, who);
}

TEST(Deadlock, DumpNamesWaitPointAndTask) {
  Engine eng;
  sim::WaitQueue wq(eng, "red_arrived[3]");
  eng.spawn(stuck_on(wq, 5));
  try {
    eng.run();
    FAIL() << "expected deadlock";
  } catch (const util::CheckError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("red_arrived[3]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("task 5"), std::string::npos) << msg;
  }
}

TEST(Deadlock, DumpIncludesCheckerLastEvent) {
  if (!chk::kEnabled) GTEST_SKIP() << "built with SRM_CHK=OFF";
  Engine eng;
  Checker chk(eng, 2);
  chk.set_enabled(true);
  std::vector<std::byte> buf(64);
  chk.register_region(buf.data(), buf.size(), "land");
  chk.access(1, buf.data(), 16, Access::write);
  sim::WaitQueue wq(eng, "never");
  eng.spawn(stuck_on(wq, 1));
  try {
    eng.run();
    FAIL() << "expected deadlock";
  } catch (const util::CheckError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("never"), std::string::npos) << msg;
    EXPECT_NE(msg.find("task 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("land"), std::string::npos) << msg;
  }
}

TEST(Deadlock, CleanRunDescribesNothing) {
  Engine eng;
  eng.call_at(sim::ns(5), [] {});
  eng.run();
  std::string d = eng.describe_deadlock();
  EXPECT_NE(d.find("0 process"), std::string::npos) << d;
}

}  // namespace
}  // namespace srm
