// The srm::mc explorer on small hand-built programs: the dependency and
// happens-before rules (flags, counters, channels), race and deadlock
// detection, and the DPOR/sleep-set reduction measured against the naive
// full enumeration.
#include <gtest/gtest.h>

#include "mc/ir.hpp"
#include "mc/mc.hpp"
#include "util/check.hpp"

namespace srm::mc {
namespace {

Options naive_opts() {
  Options o;
  o.dpor = false;
  o.sleep_sets = false;
  return o;
}

TEST(McCore, CleanFlagHandshake) {
  Program p;
  p.name = "handshake";
  int f = p.var("f");
  int bb = p.buf("bb");
  int prod = p.thread("prod");
  int cons = p.thread("cons");
  p.write(prod, bb, 0, 8);
  p.set(prod, f, 1);
  p.await_eq(cons, f, 1);
  p.read(cons, bb, 0, 8);

  Result r = check(p);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.races_found, 0u);
  EXPECT_EQ(r.deadlocks_found, 0u);
  EXPECT_GE(r.traces, 1u);
}

TEST(McCore, UnorderedAccessesRace) {
  Program p;
  p.name = "racy";
  int bb = p.buf("bb");
  int f = p.var("f");
  int prod = p.thread("prod");
  int cons = p.thread("cons");
  p.write(prod, bb, 0, 8);
  p.set(prod, f, 1);  // a release nobody acquires
  p.read(cons, bb, 0, 8);
  p.set(cons, f, 2);

  Result r = check(p);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.races.empty());
  const Race& race = r.races.front();
  EXPECT_EQ(race.buf, "bb");
  EXPECT_EQ(race.lo, 0u);
  EXPECT_EQ(race.hi, 8u);
  EXPECT_NE(race.first_thread, race.second_thread);
}

TEST(McCore, DisjointRangesDoNotRace) {
  Program p;
  p.name = "disjoint";
  int bb = p.buf("bb");
  int f = p.var("f");
  int a = p.thread("a");
  int b = p.thread("b");
  p.write(a, bb, 0, 4);
  p.set(a, f, 1);
  p.write(b, bb, 4, 8);
  p.set(b, f, 2);
  Result r = check(p);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(McCore, DroppedSetDeadlocks) {
  Program p;
  p.name = "stuck";
  int f = p.var("f");
  int a = p.thread("a");
  int b = p.thread("b");
  p.await_eq(a, f, 1);  // nobody ever sets f
  p.set(b, f, 2);

  Result r = check(p);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.deadlocks.empty());
  const Deadlock& d = r.deadlocks.front();
  ASSERT_EQ(d.blocked.size(), 1u);
  EXPECT_NE(d.blocked[0].find("a blocked at"), std::string::npos);
  EXPECT_NE(d.blocked[0].find("await f==1"), std::string::npos);
}

TEST(McCore, WaitDecIsWaitThenSubtract) {
  Program p;
  p.name = "waitdec";
  int c = p.var("c");
  int bb = p.buf("bb");
  int prod = p.thread("prod");
  int cons = p.thread("cons");
  // Two releases, one wait for both: the LAPI Waitcntr idiom.
  p.write(prod, bb, 0, 4);
  p.add(prod, c, 1);
  p.add(prod, c, 1);
  p.wait_dec(cons, c, 2);
  p.read(cons, bb, 0, 4);

  Result r = check(p);
  EXPECT_TRUE(r.ok()) << r.summary();

  // A second wait on the drained counter deadlocks: the subtract happened.
  Program p2 = p;
  p2.wait_dec(p2.find_thread("cons"), c, 1);
  Result r2 = check(p2);
  EXPECT_EQ(r2.races_found, 0u);
  ASSERT_FALSE(r2.deadlocks.empty());
  EXPECT_NE(r2.deadlocks.front().blocked[0].find("waitdec"),
            std::string::npos);
}

TEST(McCore, ChannelMatchIsHappensBefore) {
  Program p;
  p.name = "chan";
  int ch = p.chan("ch");
  int bb = p.buf("bb");
  int prod = p.thread("prod");
  int cons = p.thread("cons");
  p.write(prod, bb, 0, 4);
  p.send(prod, ch);
  p.recv(cons, ch);
  p.read(cons, bb, 0, 4);
  Result r = check(p);
  EXPECT_TRUE(r.ok()) << r.summary();

  // Write moved after the send: the matched pair no longer covers it.
  Program p2;
  p2.name = "chan_late_write";
  int ch2 = p2.chan("ch");
  int bb2 = p2.buf("bb");
  int prod2 = p2.thread("prod");
  int cons2 = p2.thread("cons");
  p2.send(prod2, ch2);
  p2.write(prod2, bb2, 0, 4);
  p2.recv(cons2, ch2);
  p2.read(cons2, bb2, 0, 4);
  Result r2 = check(p2);
  EXPECT_FALSE(r2.races.empty());
}

TEST(McCore, ChannelFifoOrder) {
  // Two sends, two recvs: the first recv acquires the first send only.
  Program p;
  p.name = "fifo";
  int ch = p.chan("ch");
  int b0 = p.buf("b0");
  int b1 = p.buf("b1");
  int prod = p.thread("prod");
  int cons = p.thread("cons");
  p.write(prod, b0, 0, 4);
  p.send(prod, ch);
  p.write(prod, b1, 0, 4);
  p.send(prod, ch);
  p.recv(cons, ch);
  p.read(cons, b0, 0, 4);
  p.recv(cons, ch);
  p.read(cons, b1, 0, 4);
  Result r = check(p);
  EXPECT_TRUE(r.ok()) << r.summary();
}

// The paper's central slot-reuse property in miniature (Fig. 3 with one
// buffer): refilling the slot is only safe after the reader cleared READY.
Program slot_reuse(bool broken) {
  Program p;
  p.name = broken ? "slot_reuse_broken" : "slot_reuse";
  int f = p.var("ready");
  int bb = p.buf("bb");
  int ld = p.thread("leader");
  int cs = p.thread("cons");
  p.write(ld, bb, 0, 8);
  p.set(ld, f, 1);
  if (!broken) p.await_eq(ld, f, 0);  // reader must be done before refill
  p.write(ld, bb, 0, 8);
  p.await_eq(cs, f, 1);
  p.read(cs, bb, 0, 8);
  p.set(cs, f, 0);
  return p;
}

TEST(McCore, SlotReuseGuardedByReadyClear) {
  Result good = check(slot_reuse(false));
  EXPECT_TRUE(good.ok()) << good.summary();

  Result bad = check(slot_reuse(true));
  ASSERT_FALSE(bad.races.empty()) << bad.summary();
  const Race& race = bad.races.front();
  EXPECT_EQ(race.buf, "bb");
  // The refill write races the straggler's read.
  EXPECT_TRUE(race.first_op.find("read") != std::string::npos ||
              race.second_op.find("read") != std::string::npos);
}

TEST(McCore, DporMatchesNaiveVerdicts) {
  for (bool broken : {false, true}) {
    Program p = slot_reuse(broken);
    Result dpor = check(p);
    Result naive = check(p, naive_opts());
    EXPECT_EQ(dpor.races.empty(), naive.races.empty()) << p.name;
    EXPECT_EQ(dpor.deadlocks.empty(), naive.deadlocks.empty()) << p.name;
    EXPECT_LE(dpor.traces, naive.traces) << p.name;
  }
}

TEST(McCore, DporReductionOnIndependentThreads) {
  // Four threads on four disjoint objects: naive explores 4!-ish
  // interleavings of every op; DPOR needs exactly one trace.
  Program p;
  p.name = "independent";
  for (int i = 0; i < 4; ++i) {
    std::string n = std::to_string(i);
    int t = p.thread("t" + n);
    int f = p.var("f" + n);
    int bb = p.buf("b" + n);
    p.write(t, bb, 0, 4);
    p.set(t, f, 1);
    p.await_eq(t, f, 1);
  }
  Result dpor = check(p);
  Result naive = check(p, naive_opts());
  EXPECT_TRUE(dpor.ok()) << dpor.summary();
  EXPECT_TRUE(naive.ok()) << naive.summary();
  EXPECT_EQ(dpor.traces, 1u);
  EXPECT_GE(naive.traces, 1000u);  // 12 ops over 4 threads: 12!/(3!)^4
  EXPECT_LT(dpor.transitions, naive.transitions / 100);
}

TEST(McCore, SleepSetsCutRedundantTraces) {
  // Cross-object dependencies in opposite orders: the classic shape where
  // sleep sets prune re-exploration of already-covered sibling branches.
  Program p;
  p.name = "contended";
  int f = p.var("f");
  int g = p.var("g");
  for (int i = 0; i < 3; ++i) {
    int t = p.thread("t" + std::to_string(i));
    p.set(t, i % 2 == 0 ? f : g, static_cast<std::uint64_t>(i));
    p.set(t, i % 2 == 0 ? g : f, static_cast<std::uint64_t>(i));
  }
  Options no_sleep;
  no_sleep.sleep_sets = false;
  Result with = check(p);
  Result without = check(p, no_sleep);
  EXPECT_TRUE(with.ok()) << with.summary();
  EXPECT_LE(with.transitions, without.transitions);
  EXPECT_GT(with.sleep_cut, 0u);
}

TEST(McCore, CommutingAddsDoNotBranch) {
  // Counter increments commute: DPOR should not enumerate the 4! add
  // orders, and the awaiting thread still acquires from every adder.
  Program p;
  p.name = "counter";
  int c = p.var("c");
  int bb = p.buf("bb");
  for (int i = 0; i < 4; ++i) {
    int t = p.thread("t" + std::to_string(i));
    p.write(t, bb, static_cast<std::uint64_t>(i),
            static_cast<std::uint64_t>(i) + 1);
    p.add(t, c, 1);
  }
  int w = p.thread("w");
  p.await_ge(w, c, 4);
  p.read(w, bb, 0, 4);

  Result dpor = check(p);
  Result naive = check(p, naive_opts());
  EXPECT_TRUE(dpor.ok()) << dpor.summary();
  EXPECT_TRUE(naive.ok()) << naive.summary();
  EXPECT_EQ(dpor.traces, 1u);
  EXPECT_GE(naive.traces, 24u);

  // The refinement must not hide races that the counter protocol orders:
  // one adder bumping before its write is still caught.
  Program p2 = p;
  p2.swap_with_prev("t2", "c+=1");
  Result bad = check(p2);
  ASSERT_FALSE(bad.races.empty()) << bad.summary();
  EXPECT_EQ(bad.races.front().buf, "bb");
}

TEST(McCore, BudgetCapsTheSearch) {
  Program p;
  p.name = "big";
  int f = p.var("f");
  for (int i = 0; i < 6; ++i) {
    int t = p.thread("t" + std::to_string(i));
    for (int k = 0; k < 4; ++k) p.add(t, f, 1);
  }
  Options o = naive_opts();
  o.max_transitions = 1000;
  Result r = check(p, o);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_FALSE(r.ok());
  EXPECT_LE(r.transitions, 1001u);
}

TEST(McCore, DeterministicAcrossRuns) {
  Program p = slot_reuse(true);
  Result a = check(p);
  Result b = check(p);
  EXPECT_EQ(a.summary(), b.summary());
  ASSERT_EQ(a.races.size(), b.races.size());
  EXPECT_EQ(a.races.front().schedule, b.races.front().schedule);
}

TEST(McCore, MutationHelpersValidateNeedle) {
  Program p = slot_reuse(false);
  EXPECT_THROW(p.drop_op("leader", "no-such-op"), util::CheckError);
  EXPECT_THROW(p.swap_with_prev("nobody", "await"), util::CheckError);
  p.drop_op("leader", "await ready==0");
  Result r = check(p);
  EXPECT_FALSE(r.races.empty());
}

}  // namespace
}  // namespace srm::mc
