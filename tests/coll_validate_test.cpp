// coll::ValidationError coverage at the Collectives NVI boundary: every
// argument-validation path must throw the structured error — carrying the
// op, the offending rank, and the offending field — identically on both
// backends (srm::Communicator and minimpi::World), and must keep working
// through the legacy util::CheckError catch.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/communicator.hpp"
#include "mpi/comm.hpp"

namespace srm {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;

constexpr int kRanks = 4;

ClusterConfig shape() {
  ClusterConfig c;
  c.nodes = 1;
  c.tasks_per_node = kRanks;
  return c;
}

using Body = std::function<CoTask(TaskCtx&, coll::Collectives&)>;

// Runs `body` on both backends and checks the structured error fields.
void expect_validation_error(coll::CollKind op, const std::string& field,
                             const Body& body) {
  auto check = [&](Cluster& cluster, coll::Collectives& impl,
                   const char* backend) {
    try {
      cluster.run([&](TaskCtx& t) -> CoTask { co_await body(t, impl); });
      ADD_FAILURE() << backend << ": no ValidationError thrown";
    } catch (const coll::ValidationError& e) {
      EXPECT_EQ(e.op(), op) << backend;
      EXPECT_EQ(e.field(), field) << backend;
      EXPECT_GE(e.rank(), 0) << backend;
      EXPECT_LT(e.rank(), kRanks) << backend;
      // The message names the op and the rank.
      std::string msg = e.what();
      EXPECT_NE(msg.find(coll::coll_name(op)), std::string::npos) << msg;
      EXPECT_NE(msg.find("rank"), std::string::npos) << msg;
    }
  };
  {
    Cluster cluster(shape());
    lapi::Fabric fabric(cluster);
    Communicator comm(cluster, fabric);
    check(cluster, comm, "srm");
  }
  {
    Cluster cluster(shape());
    minimpi::World world(cluster, cluster.params().mpi_ibm, "val");
    check(cluster, world, "mpi");
  }
}

TEST(CollValidate, RootOutOfRange) {
  expect_validation_error(
      coll::CollKind::bcast, "root",
      [](TaskCtx& t, coll::Collectives& c) -> CoTask {
        char buf[8] = {};
        co_await c.bcast(t, coll::Buf::bytes(buf, sizeof buf), kRanks);
      });
  expect_validation_error(
      coll::CollKind::gather, "root",
      [](TaskCtx& t, coll::Collectives& c) -> CoTask {
        double x[2] = {};
        std::vector<double> out(2 * kRanks);
        co_await c.gather(t, coll::of(x, 2), coll::of(out.data(), 2), -1);
      });
}

TEST(CollValidate, SendRecvDtypeMismatch) {
  expect_validation_error(
      coll::CollKind::allreduce, "dtype",
      [](TaskCtx& t, coll::Collectives& c) -> CoTask {
        double in[4] = {};
        float out[4] = {};
        co_await c.allreduce(t, coll::of(in, 4), coll::of(out, 4),
                             coll::RedOp::sum);
      });
}

TEST(CollValidate, SendRecvCountMismatch) {
  expect_validation_error(
      coll::CollKind::allreduce, "count",
      [](TaskCtx& t, coll::Collectives& c) -> CoTask {
        double in[5] = {}, out[5] = {};
        co_await c.allreduce(t, coll::of(in, 4), coll::of(out, 5),
                             coll::RedOp::sum);
      });
}

TEST(CollValidate, ByteTypedReductionRejected) {
  expect_validation_error(
      coll::CollKind::allreduce, "numeric",
      [](TaskCtx& t, coll::Collectives& c) -> CoTask {
        char in[8] = {}, out[8] = {};
        co_await c.allreduce(t, coll::Buf::bytes(in, 8),
                             coll::Buf::bytes(out, 8), coll::RedOp::sum);
      });
}

TEST(CollValidate, RealSymbolicModeMix) {
  expect_validation_error(
      coll::CollKind::allreduce, "mode",
      [](TaskCtx& t, coll::Collectives& c) -> CoTask {
        double in[4] = {};
        coll::Payload pay(1, 4 * sizeof(double));
        co_await c.allreduce(t, coll::of(in, 4),
                             coll::Buf::symbolic(pay, coll::Dtype::f64, 4),
                             coll::RedOp::sum);
      });
}

TEST(CollValidate, NullRealData) {
  expect_validation_error(
      coll::CollKind::bcast, "data",
      [](TaskCtx& t, coll::Collectives& c) -> CoTask {
        co_await c.bcast(t, coll::Buf::bytes(static_cast<void*>(nullptr), 16),
                         0);
      });
}

TEST(CollValidate, SymbolicBlockBytesDisagree) {
  expect_validation_error(
      coll::CollKind::bcast, "block_bytes",
      [](TaskCtx& t, coll::Collectives& c) -> CoTask {
        // Payload models 16-byte blocks; the Buf describes one f64 (8).
        coll::Payload pay(1, 16);
        co_await c.bcast(t, coll::Buf::symbolic(pay, coll::Dtype::f64, 1), 0);
      });
}

TEST(CollValidate, SymbolicBlockSpanOverflow) {
  expect_validation_error(
      coll::CollKind::bcast, "blocks",
      [](TaskCtx& t, coll::Collectives& c) -> CoTask {
        // One-block payload, but the Buf starts at block 1.
        coll::Payload pay(1, 8);
        co_await c.bcast(
            t, coll::Buf::symbolic(pay, coll::Dtype::f64, 1, /*block0=*/1),
            0);
      });
}

TEST(CollValidate, LegacyCheckErrorCatchStillWorks) {
  Cluster cluster(shape());
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric);
  char buf[8] = {};
  EXPECT_THROW(cluster.run([&](TaskCtx& t) -> CoTask {
    co_await comm.bcast(t, coll::Buf::bytes(buf, sizeof buf), 99);
  }),
               util::CheckError);
}

TEST(CollValidate, RecvOnlySignificantAtRoot) {
  // Non-root ranks may pass an empty recv descriptor to rooted ops; only
  // the root's recv side is validated (and used).
  Cluster cluster(shape());
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric);
  std::vector<double> gathered(2 * kRanks, 0.0);
  cluster.run([&](TaskCtx& t) -> CoTask {
    double mine[2] = {t.rank + 0.5, t.rank + 1.5};
    co_await comm.gather(
        t, coll::of(mine, 2),
        t.rank == 0 ? coll::of(gathered.data(), 2) : coll::Buf{}, 0);
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(gathered[2 * static_cast<std::size_t>(r)], r + 0.5);
    EXPECT_EQ(gathered[2 * static_cast<std::size_t>(r) + 1], r + 1.5);
  }
}

}  // namespace
}  // namespace srm
