// CalendarQueue: differential tests against a reference binary heap.
//
// The calendar queue replaced std::priority_queue as the engine's pending
// event set; the contract is that the dequeue sequence is *bitwise identical*
// to the reference heap under the engine's (time, key, id) order, whatever
// the bucket layout does internally. These tests drive both structures with
// the same randomized workloads — including the degenerate shapes a
// simulation actually produces (same-timestamp bursts, drain-refill cycles,
// far-future stragglers) — and require identical output.

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/calendar.hpp"
#include "sim/engine.hpp"
#include "sim/pool.hpp"
#include "util/rng.hpp"

namespace srm::sim {
namespace {

struct TestEv {
  Time t;
  std::uint64_t key;
  std::uint64_t id;
};

struct TestOrder {
  bool operator()(const TestEv& a, const TestEv& b) const {
    if (a.t != b.t) return a.t > b.t;
    if (a.key != b.key) return a.key > b.key;
    return a.id > b.id;
  }
};

using RefQueue = std::priority_queue<TestEv, std::vector<TestEv>, TestOrder>;
using CalQueue = CalendarQueue<TestEv, TestOrder>;

// Interleaves pushes and pops per `workload`, asserting every popped event
// matches the reference heap exactly.
void run_differential(util::SplitMix64& rng, std::size_t steps,
                      Time (*next_time)(util::SplitMix64&, Time now)) {
  RefQueue ref;
  CalQueue cal;
  std::uint64_t id = 0;
  Time now = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    bool push = ref.empty() || (rng.next() % 100) < 55;
    if (push) {
      TestEv ev{next_time(rng, now), rng.next() % 4, id++};
      ref.push(ev);
      cal.push(ev);
    } else {
      TestEv want = ref.top();
      ref.pop();
      TestEv got = cal.pop();
      ASSERT_EQ(got.t, want.t);
      ASSERT_EQ(got.key, want.key);
      ASSERT_EQ(got.id, want.id);
      now = got.t;  // engine time is monotone: future pushes are >= now
    }
  }
  while (!ref.empty()) {
    TestEv want = ref.top();
    ref.pop();
    TestEv got = cal.pop();
    ASSERT_EQ(got.id, want.id);
  }
  EXPECT_TRUE(cal.empty());
}

TEST(CalendarQueue, MatchesHeapUniformTimes) {
  util::SplitMix64 rng(1);
  run_differential(rng, 20000, +[](util::SplitMix64& r, Time now) {
    return now + r.next() % 10000;
  });
}

TEST(CalendarQueue, MatchesHeapSameTimestampBursts) {
  util::SplitMix64 rng(2);
  run_differential(rng, 20000, +[](util::SplitMix64& r, Time now) {
    // 90% of events land exactly at `now` — the t=0 spawn-burst shape.
    return r.next() % 10 == 0 ? now + r.next() % 100 : now;
  });
}

TEST(CalendarQueue, MatchesHeapFarFutureStragglers) {
  util::SplitMix64 rng(3);
  run_differential(rng, 8000, +[](util::SplitMix64& r, Time now) {
    // Mostly near-term, occasionally a straggler far past the current year,
    // forcing the year-scan + jump_to_min path.
    return r.next() % 50 == 0 ? now + 1'000'000'000 + r.next() % 1000
                              : now + r.next() % 500;
  });
}

TEST(CalendarQueue, DrainRefillCycles) {
  util::SplitMix64 rng(4);
  RefQueue ref;
  CalQueue cal;
  std::uint64_t id = 0;
  Time now = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    std::size_t n = 1 + rng.next() % 400;
    for (std::size_t i = 0; i < n; ++i) {
      TestEv ev{now + rng.next() % 1000, 0, id++};
      ref.push(ev);
      cal.push(ev);
    }
    while (!ref.empty()) {
      TestEv want = ref.top();
      ref.pop();
      TestEv got = cal.pop();
      ASSERT_EQ(got.id, want.id);
      now = got.t;
    }
    EXPECT_TRUE(cal.empty());
    now += 1 + rng.next() % 1'000'000;  // idle gap before the next burst
  }
}

TEST(CalendarQueue, GrowsAndShrinksWithLoad) {
  CalQueue cal;
  std::size_t base = cal.bucket_count();
  for (std::uint64_t i = 0; i < 4096; ++i) {
    cal.push(TestEv{i % 97, 0, i});
  }
  EXPECT_GT(cal.bucket_count(), base);
  for (int i = 0; i < 4096; ++i) (void)cal.pop();
  EXPECT_TRUE(cal.empty());
  EXPECT_LT(cal.bucket_count(), 4096 / 2);
}

// The engine's own determinism across the queue swap: a mixed workload of
// sleeps, cancels, and same-time events must fire in schedule (FIFO) order.
TEST(CalendarQueue, EngineFifoOrderPreserved) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    eng.call_at(us(5), [&order, i] { order.push_back(i); });
  }
  auto cancelled = eng.call_at(us(5), [&order] { order.push_back(-1); });
  eng.cancel(cancelled);
  eng.call_at(us(1), [&order] { order.push_back(1000); });
  eng.run();
  ASSERT_EQ(order.size(), 65u);
  EXPECT_EQ(order.front(), 1000);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i) + 1], i);
}

TEST(FramePool, RecyclesFrames) {
#ifdef SRM_FRAME_POOL_DISABLED
  GTEST_SKIP() << "frame pool passthrough under sanitizers";
#else
  FramePool::reset_stats();
  Engine eng;
  auto tick = [](Engine& e) -> CoTask { co_await e.sleep(us(1)); };
  // Sequential waves of identical coroutines: after the first wave the pool
  // must serve (almost) every frame from its free lists.
  for (int wave = 0; wave < 8; ++wave) {
    for (int i = 0; i < 32; ++i) eng.spawn(tick(eng));
    eng.run();
  }
  auto st = FramePool::stats();
  EXPECT_GT(st.allocs, 0u);
  EXPECT_GT(st.reused, st.allocs / 2);
#endif
}

}  // namespace
}  // namespace srm::sim
