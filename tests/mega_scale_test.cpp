// Mega-scale ceiling: a 4096-node x 64-way cluster (262,144 ranks) runs
// symbolic bcast and allreduce end to end. The point of the symbolic plane
// is that memory stays O(active digests), not O(ranks x message size): a
// 1 MiB broadcast to 256K ranks would need 256 GiB of real payload buffers;
// here the whole process must stay under 2 GiB peak RSS.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/communicator.hpp"
#include "mpi/comm.hpp"

namespace srm {
namespace {

using coll::Buf;
using coll::Dtype;
using coll::Payload;
using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;

constexpr int kNodes = 4096;
constexpr int kPpn = 64;
constexpr std::size_t kMsgBytes = 1u << 20;  // 1 MiB bcast payload
// 64 KiB allreduce block. Every rank pays a symbolic fill of kRedElems
// element hashes, so this bounds the test's CPU time (256K ranks x 8K
// elements ~ 2e9 hashes), while staying far beyond the digest window.
constexpr std::size_t kRedElems = 8u * 1024;

// Peak resident set (VmHWM) in bytes, from /proc/self/status; 0 if absent.
std::uint64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

ClusterConfig mega_shape() {
  ClusterConfig c;
  c.nodes = kNodes;
  c.tasks_per_node = kPpn;
  return c;
}

TEST(MegaScale, SrmSymbolicBcastAndAllreduce) {
  Cluster cluster(mega_shape());
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric);
  ASSERT_EQ(cluster.topology().nranks(), kNodes * kPpn);

  std::uint64_t live_before = Payload::live_bytes();
  std::uint64_t live_peak = 0;
  double sum_check = 0.0;

  cluster.run([&](TaskCtx& t) -> CoTask {
    // Broadcast: one digest per rank, no per-rank megabyte buffers.
    Payload msg(1, kMsgBytes);
    if (t.rank == 0) msg.fill_pattern(Dtype::kByte, 11);
    co_await comm.bcast(t, Buf::symbolic(msg, Dtype::kByte, kMsgBytes), 0);
    if (t.rank == 1) {
      Payload want(1, kMsgBytes);
      want.fill_pattern(Dtype::kByte, 11);
      if (!msg.identical_to(want)) sum_check = -1.0;
    }

    // Allreduce: every rank contributes value (rank % 7) in element 0; the
    // window is element-exact so rank 0 can verify the global sum.
    Payload in(1, kRedElems * sizeof(double));
    Payload res(1, kRedElems * sizeof(double));
    in.fill_pattern(Dtype::f64, static_cast<std::uint64_t>(t.rank % 7));
    co_await comm.allreduce(t, Buf::symbolic(in, Dtype::f64, kRedElems),
                            Buf::symbolic(res, Dtype::f64, kRedElems),
                            coll::RedOp::sum);
    if (t.rank == 0) {
      live_peak = Payload::live_bytes();
      double got = 0.0;
      std::memcpy(&got, res.block(0).win.data(), sizeof got);
      double want = 0.0;
      for (int r = 0; r < kNodes * kPpn; ++r) {
        want += static_cast<double>(coll::pattern_value(
            static_cast<std::uint64_t>(r % 7), 0, 0));
      }
      if (got != want) sum_check = got - want;
    }
  });

  EXPECT_EQ(sum_check, 0.0) << "symbolic result does not match model";

  // Digest accounting: every live payload is a handful of 72-byte blocks,
  // so even 4 payloads per rank stay far under a real-buffer footprint.
  std::uint64_t live_during = live_peak - live_before;
  EXPECT_LT(live_during, std::uint64_t{512} << 20)
      << "digest footprint grew beyond O(active buffers)";
  EXPECT_EQ(Payload::live_bytes(), live_before);

  std::uint64_t rss = peak_rss_bytes();
  ASSERT_GT(rss, 0u) << "/proc/self/status not readable";
  EXPECT_LT(rss, std::uint64_t{2} << 30)
      << "peak RSS " << (rss >> 20) << " MiB exceeds the 2 GiB ceiling";
}

TEST(MegaScale, MpiSymbolicBcastMatchesModel) {
  Cluster cluster(mega_shape());
  minimpi::World world(cluster, cluster.params().mpi_ibm, "ibm");

  bool ok = true;
  cluster.run([&](TaskCtx& t) -> CoTask {
    Payload msg(1, kMsgBytes);
    if (t.rank == 0) msg.fill_pattern(Dtype::kByte, 5);
    co_await world.bcast(t, Buf::symbolic(msg, Dtype::kByte, kMsgBytes), 0);
    if (t.rank == t.nranks() - 1) {
      Payload want(1, kMsgBytes);
      want.fill_pattern(Dtype::kByte, 5);
      ok = msg.identical_to(want);
    }
  });
  EXPECT_TRUE(ok);

  std::uint64_t rss = peak_rss_bytes();
  ASSERT_GT(rss, 0u);
  EXPECT_LT(rss, std::uint64_t{2} << 30)
      << "peak RSS " << (rss >> 20) << " MiB exceeds the 2 GiB ceiling";
}

}  // namespace
}  // namespace srm
