// Mini-MPI point-to-point: matching, wildcards, ordering, shm channel,
// eager vs rendezvous protocol selection and correctness.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/comm.hpp"

namespace srm::minimpi {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::MachineParams;
using machine::TaskCtx;
using sim::CoTask;
using sim::Time;
using sim::us;

struct Fixture {
  explicit Fixture(int nodes, int per_node,
                   MachineParams mp = MachineParams::ibm_sp())
      : cluster(make_cfg(nodes, per_node, mp)),
        world(cluster, mp.mpi_ibm, "ibm") {}
  static ClusterConfig make_cfg(int nodes, int per_node, MachineParams mp) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.tasks_per_node = per_node;
    cfg.params = mp;
    return cfg;
  }
  Cluster cluster;
  World world;
};

std::vector<double> pattern(std::size_t n, double base) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), base);
  return v;
}

TEST(MpiPtp, IntraNodeSendRecv) {
  Fixture f(1, 2);
  auto src = pattern(512, 1.0);
  std::vector<double> dst(512, 0.0);
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 0) {
      co_await c.send(1, 7, src.data(), src.size() * sizeof(double));
    } else {
      co_await c.recv(0, 7, dst.data(), dst.size() * sizeof(double));
    }
  });
  EXPECT_EQ(dst, src);
}

TEST(MpiPtp, IntraNodeLargeMessageChunked) {
  Fixture f(1, 2);
  // 1 MiB >> 16 KiB chunk: exercises the bounded-slot pipeline.
  std::vector<char> src(1 << 20), dst(1 << 20, 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<char>(i * 31 + 7);
  }
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 0) {
      co_await c.send(1, 0, src.data(), src.size());
    } else {
      co_await c.recv(0, 0, dst.data(), dst.size());
    }
  });
  EXPECT_EQ(dst, src);
}

TEST(MpiPtp, InterNodeEagerSmallMessage) {
  Fixture f(2, 1);
  ASSERT_EQ(f.world.eager_limit(), 4096u);  // 2 tasks -> base limit
  auto src = pattern(16, 3.0);
  std::vector<double> dst(16, 0.0);
  Time recv_done = 0;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 0) {
      co_await c.send(1, 1, src.data(), src.size() * sizeof(double));
    } else {
      co_await c.recv(0, 1, dst.data(), dst.size() * sizeof(double));
      recv_done = t.eng->now();
    }
  });
  EXPECT_EQ(dst, src);
  EXPECT_GT(recv_done, us(10));
  EXPECT_LT(recv_done, us(40));
}

TEST(MpiPtp, InterNodeRendezvousLargeMessage) {
  Fixture f(2, 1);
  std::vector<char> src(256 << 10), dst(256 << 10, 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<char>(i % 251);
  }
  Time recv_done = 0;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 0) {
      co_await c.send(1, 1, src.data(), src.size());
    } else {
      co_await c.recv(0, 1, dst.data(), dst.size());
      recv_done = t.eng->now();
    }
  });
  EXPECT_EQ(dst, src);
  // 256 KiB at 350 MB/s is ~750 us of pure serialization plus RTS/CTS.
  EXPECT_GT(recv_done, us(750));
}

TEST(MpiPtp, EagerSenderReturnsBeforeReceiverMatches) {
  Fixture f(2, 1);
  auto src = pattern(4, 0.0);
  std::vector<double> dst(4, 0.0);
  Time send_done = 0, recv_start_gap = 0;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 0) {
      co_await c.send(1, 1, src.data(), src.size() * sizeof(double));
      send_done = t.eng->now();
    } else {
      co_await t.delay(sim::ms(10));  // receiver shows up very late
      recv_start_gap = t.eng->now();
      co_await c.recv(0, 1, dst.data(), dst.size() * sizeof(double));
    }
  });
  EXPECT_EQ(dst, src);
  EXPECT_LT(send_done, us(50));  // did not wait for the late receiver
}

TEST(MpiPtp, RendezvousSenderBlocksUntilReceiverPosts) {
  Fixture f(2, 1);
  std::vector<char> src(64 << 10, 'r'), dst(64 << 10, 0);
  Time send_done = 0;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 0) {
      co_await c.send(1, 1, src.data(), src.size());
      send_done = t.eng->now();
    } else {
      co_await t.delay(sim::ms(10));
      co_await c.recv(0, 1, dst.data(), dst.size());
    }
  });
  EXPECT_EQ(dst, src);
  EXPECT_GT(send_done, sim::ms(10));  // held back by the handshake
}

TEST(MpiPtp, TagSelectsAmongPendingMessages) {
  Fixture f(1, 2);
  double a = 1.0, b = 2.0, got_b = 0.0, got_a = 0.0;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 0) {
      co_await c.send(1, 10, &a, sizeof a);
      co_await c.send(1, 20, &b, sizeof b);
    } else {
      co_await t.delay(us(200));  // both are waiting by now
      co_await c.recv(0, 20, &got_b, sizeof got_b);
      co_await c.recv(0, 10, &got_a, sizeof got_a);
    }
  });
  EXPECT_EQ(got_a, 1.0);
  EXPECT_EQ(got_b, 2.0);
}

TEST(MpiPtp, WildcardsMatchAnything) {
  Fixture f(1, 3);
  double x = 42.0, got = 0.0;
  int from = -1;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 2) {
      co_await c.send(0, 5, &x, sizeof x);
    } else if (t.rank == 0) {
      co_await c.recv(kAnySource, kAnyTag, &got, sizeof got);
      from = 2;  // matched
    }
  });
  EXPECT_EQ(got, 42.0);
  EXPECT_EQ(from, 2);
}

TEST(MpiPtp, NonOvertakingSameSourceSameTag) {
  Fixture f(1, 2);
  double m1 = 1.0, m2 = 2.0, r1 = 0.0, r2 = 0.0;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 0) {
      co_await c.send(1, 9, &m1, sizeof m1);
      co_await c.send(1, 9, &m2, sizeof m2);
    } else {
      co_await t.delay(us(300));
      co_await c.recv(0, 9, &r1, sizeof r1);
      co_await c.recv(0, 9, &r2, sizeof r2);
    }
  });
  EXPECT_EQ(r1, 1.0);
  EXPECT_EQ(r2, 2.0);
}

TEST(MpiPtp, SendrecvExchangesSymmetrically) {
  Fixture f(2, 1);
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    double mine = t.rank + 1.0, theirs = 0.0;
    int peer = 1 - t.rank;
    co_await c.sendrecv(peer, 3, &mine, sizeof mine, peer, 3, &theirs,
                        sizeof theirs);
    EXPECT_EQ(theirs, peer + 1.0);
  });
}

TEST(MpiPtp, SendrecvLargeMessagesBothWays) {
  // Rendezvous in both directions simultaneously must not deadlock.
  Fixture f(2, 1);
  std::vector<char> mine(128 << 10), theirs(128 << 10, 0);
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    std::vector<char> my_data(128 << 10, static_cast<char>('A' + t.rank));
    std::vector<char> peer_data(128 << 10, 0);
    int peer = 1 - t.rank;
    co_await c.sendrecv(peer, 3, my_data.data(), my_data.size(), peer, 3,
                        peer_data.data(), peer_data.size());
    EXPECT_EQ(peer_data[0], static_cast<char>('A' + peer));
    EXPECT_EQ(peer_data[peer_data.size() - 1], static_cast<char>('A' + peer));
  });
}

TEST(MpiPtp, MismatchedSizeThrows) {
  Fixture f(1, 2);
  double x = 1.0;
  float small = 0.0f;
  EXPECT_THROW(f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 0) {
      co_await c.send(1, 0, &x, sizeof x);
    } else {
      co_await c.recv(0, 0, &small, sizeof small);
    }
  }),
               util::CheckError);
}

TEST(MpiPtp, UnmatchedRecvDeadlocks) {
  Fixture f(1, 2);
  double got = 0.0;
  EXPECT_THROW(f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    if (t.rank == 1) {
      co_await c.recv(0, 0, &got, sizeof got);
    }
  }),
               util::CheckError);
}

TEST(MpiPtp, MpichProfileIsSlowerThanIbm) {
  auto timed = [](const machine::MpiParams& prof, const char* name) {
    MachineParams mp = MachineParams::ibm_sp();
    ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.tasks_per_node = 1;
    cfg.params = mp;
    Cluster cluster(cfg);
    World world(cluster, prof, name);
    double x = 1.0, y = 0.0;
    Time done = 0;
    cluster.run([&](TaskCtx& t) -> CoTask {
      auto& c = world.comm(t.rank);
      if (t.rank == 0) {
        co_await c.send(1, 0, &x, sizeof x);
      } else {
        co_await c.recv(0, 0, &y, sizeof y);
        done = t.eng->now();
      }
    });
    return done;
  };
  auto mp = MachineParams::ibm_sp();
  EXPECT_LT(timed(mp.mpi_ibm, "ibm"), timed(mp.mpi_mpich, "mpich"));
}

}  // namespace
}  // namespace srm::minimpi
