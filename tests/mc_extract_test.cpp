// The concrete -> abstract direction: a traced chk::Checker run lifted to a
// protocol IR Program (mc/extract.hpp), then model-checked. Clean runs must
// lift to race-free skeletons; a mutant's traced run must lift to a skeleton
// in which the model checker rediscovers the race.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chk/chk.hpp"
#include "mc/extract.hpp"
#include "mc/mc.hpp"
#include "mc/protocols.hpp"
#include "mc/replay.hpp"

namespace srm::mc {
namespace {

ReplayResult traced_replay(const Program& p, const std::vector<int>& sched) {
  ReplayOptions o;
  o.trace = true;
  return replay(p, sched, o);
}

TEST(McExtract, EmptyTraceLiftsToEmptyProgram) {
  Program p = skeleton_from_trace({}, 2, "empty");
  EXPECT_EQ(p.total_ops(), 0u);
  EXPECT_EQ(p.threads.size(), 2u);
  Result r = check(p, extracted_options());
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(McExtract, TraceCapturesTheRun) {
  if (!chk::kEnabled) GTEST_SKIP() << "built with SRM_CHK=OFF";
  Program p = build(Proto::bcast, Shape{2, 2, 1});
  ReplayResult r = traced_replay(p, {});
  ASSERT_TRUE(r.ok()) << r.to_string();
  ASSERT_FALSE(r.trace.empty());
  bool saw_release = false, saw_access = false, saw_msg = false;
  for (const chk::TraceEvent& ev : r.trace) {
    saw_release |= ev.kind == chk::TraceEvent::Kind::release;
    saw_access |= ev.kind == chk::TraceEvent::Kind::read ||
                  ev.kind == chk::TraceEvent::Kind::write;
    saw_msg |= ev.kind == chk::TraceEvent::Kind::fork;
  }
  EXPECT_TRUE(saw_release);
  EXPECT_TRUE(saw_access);
  EXPECT_TRUE(saw_msg);
}

TEST(McExtract, CleanRunsLiftToRaceFreeSkeletons) {
  if (!chk::kEnabled) GTEST_SKIP() << "built with SRM_CHK=OFF";
  for (Proto op : all_protos()) {
    for (const Shape& sh : {Shape{1, 2, 1}, Shape{2, 1, 1}, Shape{2, 2, 1}}) {
      Program p = build(op, sh);
      ReplayResult run = traced_replay(p, {});
      ASSERT_TRUE(run.ok()) << p.name << ": " << run.to_string();
      Program lifted = skeleton_from_trace(
          run.trace, static_cast<int>(p.threads.size()), p.name + ".lifted");
      Result r = check(lifted, extracted_options());
      EXPECT_TRUE(r.races.empty())
          << p.name << ": " << r.summary() << "\n"
          << (r.races.empty() ? "" : r.races[0].to_string());
      EXPECT_FALSE(r.budget_exhausted) << p.name << ": " << r.summary();
      EXPECT_GT(lifted.total_ops(), 0u) << p.name;
    }
  }
}

TEST(McExtract, MutantTracesLiftToRacySkeletons) {
  if (!chk::kEnabled) GTEST_SKIP() << "built with SRM_CHK=OFF";
  // Pick gauntlet race mutants whose concrete replay reproduces the race;
  // the lifted skeleton must contain it too — the trace recorded the broken
  // synchronization structure, not just one lucky interleaving.
  for (const Mutant& m : mutation_gauntlet()) {
    if (!m.expect_race) continue;
    Result v = check(m.program);
    ASSERT_FALSE(v.races.empty()) << m.name;
    ReplayResult run = traced_replay(m.program, v.races.front().schedule);
    ASSERT_FALSE(run.races.empty()) << m.name << ": " << run.to_string();
    Program lifted = skeleton_from_trace(
        run.trace, static_cast<int>(m.program.threads.size()),
        m.name + ".lifted");
    Result r = check(lifted, extracted_options());
    EXPECT_FALSE(r.races.empty()) << m.name << ": " << r.summary();
    if (!r.races.empty()) {
      EXPECT_EQ(r.races.front().buf, run.races.front().region) << m.name;
    }
  }
}

TEST(McExtract, LiftedNamesComeFromTheRealObjects) {
  if (!chk::kEnabled) GTEST_SKIP() << "built with SRM_CHK=OFF";
  Program p = build(Proto::bcast, Shape{1, 2, 1});
  ReplayResult run = traced_replay(p, {});
  ASSERT_TRUE(run.ok()) << run.to_string();
  Program lifted = skeleton_from_trace(
      run.trace, static_cast<int>(p.threads.size()), "named");
  bool flag_named = false, buf_named = false;
  for (const std::string& n : lifted.var_names) {
    flag_named |= n.find("ready0") != std::string::npos;
  }
  for (const std::string& n : lifted.buf_names) {
    buf_named |= n.find("bb0") != std::string::npos;
  }
  EXPECT_TRUE(flag_named) << lifted.to_string();
  EXPECT_TRUE(buf_named) << lifted.to_string();
}

}  // namespace
}  // namespace srm::mc
