// coll::DecisionTable: banded lookup semantics, JSON/file round-trips,
// malformed-input rejection, builtin tables, and the Communicator's
// table-resolution precedence (explicit config > SRM_DECISIONS artifact >
// builtin profile + legacy crossover-knob overrides).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/communicator.hpp"
#include "util/check.hpp"

namespace srm {
namespace {

using coll::Algo;
using coll::CollKind;
using coll::Decision;
using coll::DecisionTable;
using coll::TreeKind;

// ---------------------------------------------------------------------------
// Lookup semantics
// ---------------------------------------------------------------------------

TEST(DecisionTable, EmptyTableYieldsDefaultDecision) {
  DecisionTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.decide(CollKind::bcast, 123456), Decision{});
}

TEST(DecisionTable, DecideReturnsLastRowAtOrBelow) {
  DecisionTable t;
  // Inserted out of order: rows() must come back sorted by min_bytes.
  t.set(CollKind::allreduce, 65536, {Algo::rhalving, false, TreeKind::bine});
  t.set(CollKind::allreduce, 0, {Algo::rd, false, TreeKind::binomial});
  t.set(CollKind::allreduce, 4096, {Algo::ring, true, TreeKind::binary});
  ASSERT_EQ(t.rows(CollKind::allreduce).size(), 3u);
  EXPECT_EQ(t.rows(CollKind::allreduce)[0].min_bytes, 0u);
  EXPECT_EQ(t.rows(CollKind::allreduce)[2].min_bytes, 65536u);

  EXPECT_EQ(t.decide(CollKind::allreduce, 0).algo, Algo::rd);
  EXPECT_EQ(t.decide(CollKind::allreduce, 4095).algo, Algo::rd);
  EXPECT_EQ(t.decide(CollKind::allreduce, 4096).algo, Algo::ring);
  EXPECT_TRUE(t.decide(CollKind::allreduce, 4096).mapped);
  EXPECT_EQ(t.decide(CollKind::allreduce, 65535).algo, Algo::ring);
  EXPECT_EQ(t.decide(CollKind::allreduce, 65536).algo, Algo::rhalving);
  EXPECT_EQ(t.decide(CollKind::allreduce, 1 << 30).internode, TreeKind::bine);
  // Other ops are untouched.
  EXPECT_EQ(t.decide(CollKind::bcast, 4096), Decision{});
}

TEST(DecisionTable, SetReplacesOnCollidingMinBytes) {
  DecisionTable t;
  t.set(CollKind::bcast, 1024, {Algo::staged, false, TreeKind::binomial});
  t.set(CollKind::bcast, 1024, {Algo::scatter_ag, true, TreeKind::flat});
  ASSERT_EQ(t.rows(CollKind::bcast).size(), 1u);
  EXPECT_EQ(t.decide(CollKind::bcast, 2048).algo, Algo::scatter_ag);
}

// ---------------------------------------------------------------------------
// JSON round-trips
// ---------------------------------------------------------------------------

DecisionTable sample_table() {
  DecisionTable t;
  t.version = 1;
  t.profile = "unit_test";
  t.set(CollKind::bcast, 0, {Algo::staged, false, TreeKind::binomial});
  t.set(CollKind::bcast, 65537, {Algo::scatter_ag, true, TreeKind::bine});
  t.set(CollKind::allreduce, 0, {Algo::rd, false, TreeKind::flat});
  t.set(CollKind::allreduce, 16385, {Algo::ring, false, TreeKind::binary});
  t.set(CollKind::allreduce, 1 << 20,
        {Algo::rhalving, true, TreeKind::fibonacci});
  t.set(CollKind::reduce, 4096, {Algo::pipeline, false, TreeKind::binomial});
  t.set(CollKind::gather, 0, {Algo::direct, true, TreeKind::binomial});
  return t;
}

TEST(DecisionTable, JsonRoundTripIsExact) {
  DecisionTable t = sample_table();
  DecisionTable back = DecisionTable::from_json(t.to_json());
  EXPECT_EQ(back, t);
  // Idempotent: a second trip emits identical text.
  EXPECT_EQ(back.to_json(), t.to_json());
}

TEST(DecisionTable, FileRoundTripIsExact) {
  DecisionTable t = sample_table();
  std::string path = ::testing::TempDir() + "/decision_test_table.json";
  t.save(path);
  EXPECT_EQ(DecisionTable::load(path), t);
  std::remove(path.c_str());
}

TEST(DecisionTable, BuiltinTablesRoundTrip) {
  EXPECT_EQ(DecisionTable::from_json(DecisionTable::ibm_sp().to_json()),
            DecisionTable::ibm_sp());
  EXPECT_EQ(DecisionTable::from_json(DecisionTable::modern_smp().to_json()),
            DecisionTable::modern_smp());
}

TEST(DecisionTable, MalformedJsonThrows) {
  EXPECT_THROW(DecisionTable::from_json(""), util::CheckError);
  EXPECT_THROW(DecisionTable::from_json("{"), util::CheckError);
  EXPECT_THROW(DecisionTable::from_json(
                   R"({"ops": {"nope": [{"min_bytes": 0}]}})"),
               util::CheckError);
  EXPECT_THROW(DecisionTable::from_json(
                   R"({"ops": {"bcast": [{"min_bytes": 0, "algo": "warp"}]}})"),
               util::CheckError);
  EXPECT_THROW(DecisionTable::load("/nonexistent/decision/table.json"),
               util::CheckError);
}

TEST(DecisionTable, FromJsonRejectsUnknownVersion) {
  EXPECT_THROW(
      DecisionTable::from_json(R"({"version": 7, "ops": {}})"),
      util::CheckError);
}

TEST(DecisionTable, FromJsonRejectsNonBooleanMappedFlag) {
  EXPECT_THROW(DecisionTable::from_json(
                   R"({"ops": {"bcast": [{"min_bytes": 0, "mapped": 2}]}})"),
               util::CheckError);
}

TEST(DecisionTable, FromJsonRejectsUnknownTreeKind) {
  EXPECT_THROW(
      DecisionTable::from_json(
          R"({"ops": {"bcast": [{"min_bytes": 0, "internode": "star"}]}})"),
      util::CheckError);
}

TEST(DecisionTable, FromJsonRejectsDuplicateMinBytes) {
  // In-memory set() replaces on collision (SetReplacesOnCollidingMinBytes
  // above); a loaded file must instead fail loudly with the row pinpointed.
  const char* dup =
      R"({"ops": {"allreduce": [{"min_bytes": 4096, "algo": "rd"},
                                {"min_bytes": 4096, "algo": "ring"}]}})";
  try {
    DecisionTable::from_json(dup);
    FAIL() << "duplicate min_bytes accepted";
  } catch (const coll::ValidationError& e) {
    EXPECT_EQ(e.op(), CollKind::allreduce);
    EXPECT_EQ(e.field(), "min_bytes");
    EXPECT_NE(std::string(e.what()).find("4096"), std::string::npos);
  }
}

TEST(DecisionTable, FromJsonRejectsDescendingMinBytes) {
  const char* desc =
      R"({"ops": {"bcast": [{"min_bytes": 1024, "algo": "staged"},
                            {"min_bytes": 0, "algo": "direct"}]}})";
  try {
    DecisionTable::from_json(desc);
    FAIL() << "descending min_bytes accepted";
  } catch (const coll::ValidationError& e) {
    EXPECT_EQ(e.op(), CollKind::bcast);
    EXPECT_EQ(e.field(), "min_bytes");
  }
}

TEST(DecisionTable, AlgoNamesRoundTrip) {
  for (int i = 0; i < coll::kAlgoCount; ++i) {
    Algo a = static_cast<Algo>(i);
    Algo back{};
    ASSERT_TRUE(coll::algo_from_name(coll::algo_name(a), back))
        << coll::algo_name(a);
    EXPECT_EQ(back, a);
  }
  Algo out{};
  EXPECT_FALSE(coll::algo_from_name("warp", out));
}

// ---------------------------------------------------------------------------
// Builtins express the paper's constants
// ---------------------------------------------------------------------------

TEST(DecisionTable, IbmSpIsThePapersConstants) {
  DecisionTable t = DecisionTable::ibm_sp();
  EXPECT_EQ(t.profile, "ibm_sp");
  // Bcast: staged up to the 64 KB protocol switch, direct beyond.
  EXPECT_EQ(t.decide(CollKind::bcast, 64 * 1024).algo, Algo::staged);
  EXPECT_EQ(t.decide(CollKind::bcast, 64 * 1024 + 1).algo, Algo::direct);
  // Allreduce: recursive doubling up to 16 KB, pipelined beyond.
  EXPECT_EQ(t.decide(CollKind::allreduce, 16 * 1024).algo, Algo::rd);
  EXPECT_EQ(t.decide(CollKind::allreduce, 16 * 1024 + 1).algo, Algo::pipeline);
  // Single-copy crossover at 16 KB (advisory until single_copy opts in).
  EXPECT_FALSE(t.decide(CollKind::bcast, 16 * 1024 - 1).mapped);
  EXPECT_TRUE(t.decide(CollKind::bcast, 16 * 1024).mapped);
}

TEST(DecisionTable, BuiltinLookupByProfileName) {
  ASSERT_NE(DecisionTable::builtin("ibm_sp"), nullptr);
  EXPECT_EQ(*DecisionTable::builtin("ibm_sp"), DecisionTable::ibm_sp());
  ASSERT_NE(DecisionTable::builtin("modern_smp"), nullptr);
  EXPECT_EQ(DecisionTable::builtin("custom"), nullptr);
  EXPECT_EQ(DecisionTable::builtin("nope"), nullptr);
}

// ---------------------------------------------------------------------------
// Communicator resolution precedence
// ---------------------------------------------------------------------------

struct Fixture {
  Fixture(int nodes, int per_node, SrmConfig cfg = {},
          machine::MachineParams params = machine::MachineParams::ibm_sp())
      : cluster(make_cfg(nodes, per_node, params)),
        fabric(cluster),
        comm(cluster, fabric, cfg) {}
  static machine::ClusterConfig make_cfg(int nodes, int per_node,
                                         machine::MachineParams params) {
    machine::ClusterConfig c;
    c.nodes = nodes;
    c.tasks_per_node = per_node;
    c.params = params;
    return c;
  }
  machine::Cluster cluster;
  lapi::Fabric fabric;
  Communicator comm;
};

TEST(Resolution, DefaultConfigResolvesProfileBuiltin) {
  Fixture sp(2, 2);
  EXPECT_EQ(sp.comm.decisions(), DecisionTable::ibm_sp());
  Fixture smp(2, 2, {}, machine::MachineParams::modern_smp());
  EXPECT_EQ(smp.comm.decisions(), DecisionTable::modern_smp());
  // Unknown profiles fall back to the paper's table.
  machine::MachineParams hand = machine::MachineParams::ibm_sp();
  hand.profile = "custom";
  Fixture custom(2, 2, {}, hand);
  EXPECT_EQ(custom.comm.decisions(), DecisionTable::ibm_sp());
}

TEST(Resolution, ExplicitConfigTableWinsVerbatim) {
  SrmConfig cfg;
  cfg.decisions = sample_table();
  // Legacy knobs would rewrite rows — an explicit table must be verbatim.
  cfg.allreduce_rd_max = 1024;
  Fixture f(2, 2, cfg);
  EXPECT_EQ(f.comm.decisions(), sample_table());
}

TEST(Resolution, EnvArtifactBeatsBuiltinButNotExplicit) {
  std::string path = ::testing::TempDir() + "/decision_test_env.json";
  DecisionTable art = sample_table();
  art.profile = "env_artifact";
  art.save(path);
  ASSERT_EQ(setenv("SRM_DECISIONS", path.c_str(), 1), 0);
  {
    Fixture f(2, 2);
    EXPECT_EQ(f.comm.decisions(), art);
    SrmConfig cfg;
    cfg.decisions = sample_table();
    Fixture g(2, 2, cfg);
    EXPECT_EQ(g.comm.decisions(), sample_table());
  }
  ASSERT_EQ(unsetenv("SRM_DECISIONS"), 0);
  std::remove(path.c_str());
}

/// The args JSON of the "srm.decisions" span, or "" if never recorded.
std::string decisions_span_args(machine::Cluster& cluster) {
  for (const obs::SpanRec& s : cluster.obs().spans()) {
    if (s.name == "srm.decisions") return s.args;
  }
  return "";
}

TEST(Resolution, ConstructionSpanRecordsTableSource) {
  if (!obs::kEnabled) GTEST_SKIP() << "SRM_OBS=OFF";
  // Builtin branch: source + the profile that selected the table.
  {
    machine::Cluster cluster(
        Fixture::make_cfg(2, 2, machine::MachineParams::ibm_sp()));
    cluster.obs().set_trace_enabled(true);
    lapi::Fabric fabric(cluster);
    Communicator comm(cluster, fabric, {});
    EXPECT_EQ(decisions_span_args(cluster),
              R"({"source":"builtin","detail":"ibm_sp","profile":"ibm_sp"})");
  }
  // Explicit-config branch.
  {
    machine::Cluster cluster(
        Fixture::make_cfg(2, 2, machine::MachineParams::ibm_sp()));
    cluster.obs().set_trace_enabled(true);
    lapi::Fabric fabric(cluster);
    SrmConfig cfg;
    cfg.decisions = sample_table();
    Communicator comm(cluster, fabric, cfg);
    EXPECT_EQ(
        decisions_span_args(cluster),
        R"({"source":"config","detail":"unit_test","profile":"unit_test"})");
  }
  // Env-artifact branch: the detail is the artifact path.
  {
    std::string path = ::testing::TempDir() + "/decision_test_span.json";
    DecisionTable art = sample_table();
    art.profile = "env_artifact";
    art.save(path);
    ASSERT_EQ(setenv("SRM_DECISIONS", path.c_str(), 1), 0);
    {
      machine::Cluster cluster(
          Fixture::make_cfg(2, 2, machine::MachineParams::ibm_sp()));
      cluster.obs().set_trace_enabled(true);
      lapi::Fabric fabric(cluster);
      Communicator comm(cluster, fabric, {});
      EXPECT_EQ(decisions_span_args(cluster),
                "{\"source\":\"env\",\"detail\":\"" + path +
                    "\",\"profile\":\"env_artifact\"}");
    }
    ASSERT_EQ(unsetenv("SRM_DECISIONS"), 0);
    std::remove(path.c_str());
  }
  // Tracing off: nothing recorded — provenance must not cost anything in
  // untraced runs.
  {
    machine::Cluster cluster(
        Fixture::make_cfg(2, 2, machine::MachineParams::ibm_sp()));
    lapi::Fabric fabric(cluster);
    Communicator comm(cluster, fabric, {});
    EXPECT_EQ(decisions_span_args(cluster), "");
  }
}

TEST(Resolution, LegacyKnobsOverrideBuiltinRows) {
  // allreduce_rd_max moves the rd/pipeline crossover.
  SrmConfig cfg;
  cfg.allreduce_rd_max = 4096;
  Fixture f(2, 2, cfg);
  EXPECT_EQ(f.comm.decisions().decide(CollKind::allreduce, 4096).algo,
            Algo::rd);
  EXPECT_EQ(f.comm.decisions().decide(CollKind::allreduce, 4097).algo,
            Algo::pipeline);

  // bcast_small_max moves the staged/direct protocol switch. The shared
  // buffer must hold the largest small-protocol message.
  SrmConfig cfg2;
  cfg2.bcast_small_max = 32 * 1024;
  Fixture g(2, 2, cfg2);
  EXPECT_EQ(g.comm.decisions().decide(CollKind::bcast, 32 * 1024).algo,
            Algo::staged);
  EXPECT_EQ(g.comm.decisions().decide(CollKind::bcast, 32 * 1024 + 1).algo,
            Algo::direct);

  // single_copy_min rewrites every op's mapped column.
  SrmConfig cfg3;
  cfg3.single_copy = true;
  cfg3.single_copy_min = 1;
  Fixture h(2, 2, cfg3);
  EXPECT_TRUE(h.comm.decisions().decide(CollKind::bcast, 1).mapped);
  EXPECT_TRUE(h.comm.decisions().decide(CollKind::reduce, 64).mapped);
  EXPECT_FALSE(h.comm.decisions().decide(CollKind::bcast, 0).mapped);

  // internode_tree rewrites every row's tree column.
  SrmConfig cfg4;
  cfg4.internode_tree = TreeKind::binary;
  Fixture i(2, 2, cfg4);
  EXPECT_EQ(
      i.comm.decisions().decide(CollKind::allreduce, 1 << 20).internode,
      TreeKind::binary);
}

TEST(Resolution, SanitizerKeepsImpossibleRowsOffTheDispatch) {
  // A zoo algorithm on an op that has no such implementation must degrade
  // to a working path, never crash dispatch.
  SrmConfig cfg;
  cfg.decisions.profile = "forced";
  cfg.decisions.set(CollKind::allreduce, 0,
                    {Algo::scatter_ag, false, TreeKind::binomial});
  cfg.decisions.set(CollKind::bcast, 0,
                    {Algo::ring, false, TreeKind::binomial});
  cfg.decisions.set(CollKind::reduce, 0,
                    {Algo::ring, false, TreeKind::binomial});
  Fixture f(2, 2, cfg);
  EXPECT_EQ(f.comm.decide(CollKind::allreduce, 1024).algo, Algo::pipeline);
  EXPECT_EQ(f.comm.decide(CollKind::bcast, 1024).algo, Algo::direct);
  EXPECT_EQ(f.comm.decide(CollKind::reduce, 1024).algo, Algo::staged);
  // Staged bcast beyond the shared buffer degrades to the direct protocol.
  SrmConfig cfg2;
  cfg2.decisions.profile = "forced";
  cfg2.decisions.set(CollKind::bcast, 0,
                     {Algo::staged, false, TreeKind::binomial});
  Fixture g(2, 2, cfg2);
  EXPECT_EQ(g.comm.decide(CollKind::bcast, 1 << 20).algo, Algo::direct);
}

}  // namespace
}  // namespace srm
