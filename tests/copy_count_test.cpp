// Data-movement accounting: the paper's §2.2 / Fig. 2 argument, verified
// quantitatively through the srm::obs counter registry. "SRM reduce within
// an SMP node involves a memory copy for processes that are at the lowest
// level in a binomial tree... For eight processes, there are four memory
// copies. The remainder of the tree simply involves execution of the
// operator... the message-passing implementation requires seven data
// movement operations... [which] might internally involve 7 or even 14
// memory copies."
#include <gtest/gtest.h>

#include <vector>

#include "core/communicator.hpp"
#include "mpi/comm.hpp"

namespace srm {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;

ClusterConfig one_node(int p) {
  ClusterConfig c;
  c.nodes = 1;
  c.tasks_per_node = p;
  return c;
}

struct Moves {
  std::uint64_t copies;
  std::uint64_t combines;
};

Moves srm_reduce_moves(int p, std::size_t count, SrmConfig cfg = {}) {
  Cluster cluster(one_node(p));
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric, cfg);
  std::vector<double> out(count, 0.0);
  cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<double> mine(count, 1.0 * t.rank);
    co_await comm.reduce(t, coll::of(mine.data(), count),
                         coll::of(out.data(), count), coll::RedOp::sum, 0);
  });
  return {cluster.obs().count("mem.copy"), cluster.obs().count("mem.combine")};
}

Moves mpi_reduce_moves(int p, std::size_t count) {
  Cluster cluster(one_node(p));
  minimpi::World world(cluster, cluster.params().mpi_ibm, "ibm");
  std::vector<double> out(count, 0.0);
  cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<double> mine(count, 1.0 * t.rank);
    co_await world.comm(t.rank).reduce(mine.data(), out.data(), count,
                                       coll::Dtype::f64, coll::RedOp::sum,
                                       0);
  });
  return {cluster.obs().count("mem.copy"), cluster.obs().count("mem.combine")};
}

class CopyCounts : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kEnabled) {
      GTEST_SKIP() << "built with SRM_OBS=OFF; counters compile to no-ops";
    }
  }
};

TEST_F(CopyCounts, Fig2EightTaskSmpReduce) {
  // The paper's exact example: eight processes, one chunk.
  Moves srm = srm_reduce_moves(8, 100);
  // Four leaf copies (P1, P3, P5, P7); everything else is pure operator
  // execution (7 combines: one per tree edge).
  EXPECT_EQ(srm.copies, 4u);
  EXPECT_EQ(srm.combines, 7u);

  Moves mpi = mpi_reduce_moves(8, 100);
  // Message passing moves data at every tree edge: 7 sends, each a 2-copy
  // shared-memory transfer (14 copies) plus the root's send->recv seed copy.
  EXPECT_GE(mpi.copies, 14u);
  EXPECT_EQ(mpi.combines, 7u);
}

TEST_F(CopyCounts, SmpReduceCopiesEqualLeafCount) {
  // Property: one copy per *leaf* of the intranode binomial tree per chunk;
  // interior tasks never copy, they only combine.
  for (int p : {2, 4, 16}) {
    Moves m = srm_reduce_moves(p, 10);
    coll::Tree tree = coll::binomial_tree(p, 0);
    std::uint64_t leaves = 0;
    for (int v = 0; v < p; ++v) {
      if (tree.children[static_cast<std::size_t>(v)].empty() && v != 0) {
        ++leaves;
      }
    }
    EXPECT_EQ(m.copies, leaves) << "p=" << p;
    EXPECT_EQ(m.combines, static_cast<std::uint64_t>(p - 1)) << "p=" << p;
  }
}

TEST_F(CopyCounts, SmpBcastOneCopyInPlusOnePerConsumer) {
  Cluster cluster(one_node(8));
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric);
  cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<char> buf(1024, static_cast<char>(t.rank == 0));
    co_await comm.bcast(t, coll::Buf::bytes(buf.data(), buf.size()), 0);
  });
  // Root copies into the shared buffer; 7 consumers copy out.
  EXPECT_EQ(cluster.obs().count("mem.copy"), 8u);
  // Every moved byte is accounted: 8 copies x 1 KiB.
  EXPECT_DOUBLE_EQ(cluster.obs().value("mem.copy"), 8 * 1024.0);
}

TEST_F(CopyCounts, SrmMovesLessDataThanMpiAcrossTheBoard) {
  for (int p : {4, 8, 16}) {
    Moves s = srm_reduce_moves(p, 500);
    Moves m = mpi_reduce_moves(p, 500);
    EXPECT_LT(s.copies, m.copies) << "p=" << p;
  }
}

TEST_F(CopyCounts, NetworkBytesMatchProtocol) {
  // Inter-node: a 1 KiB broadcast on 4 nodes is 3 data puts (one per child
  // edge of the internode tree) plus 3 zero-byte credit signals back, and
  // nothing else. The LAPI-layer counters split the two.
  ClusterConfig cc;
  cc.nodes = 4;
  cc.tasks_per_node = 4;
  Cluster cluster(cc);
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric);
  cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<char> buf(1024, static_cast<char>(t.rank == 0));
    co_await comm.bcast(t, coll::Buf::bytes(buf.data(), buf.size()), 0);
  });
  EXPECT_EQ(cluster.obs().count("lapi.put"), 3u);
  EXPECT_DOUBLE_EQ(cluster.obs().value("lapi.put"), 3 * 1024.0);
  EXPECT_EQ(cluster.obs().count("lapi.signal"), 3u);
  EXPECT_DOUBLE_EQ(cluster.network().bytes(), 3 * 1024.0);
}

TEST_F(CopyCounts, PerNodeAttribution) {
  // Counters are keyed by id: an intra-node reduce on node 0 of a two-node
  // cluster must charge node 0 only... unless the op spans nodes, in which
  // case every node's memory system shows traffic. Run a 2-node reduce and
  // check the per-node split covers the total.
  ClusterConfig cc;
  cc.nodes = 2;
  cc.tasks_per_node = 4;
  Cluster cluster(cc);
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric);
  std::vector<double> out(64, 0.0);
  cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<double> mine(64, 1.0 * t.rank);
    co_await comm.reduce(t, coll::of(mine.data(), 64),
                         coll::of(out.data(), 64), coll::RedOp::sum, 0);
  });
  auto& reg = cluster.obs();
  std::uint64_t total = reg.count("mem.copy");
  std::uint64_t split = reg.counter("mem.copy", 0).count +
                        reg.counter("mem.copy", 1).count;
  EXPECT_GT(total, 0u);
  EXPECT_EQ(total, split);
  EXPECT_GT(reg.counter("mem.copy", 0).count, 0u);
  EXPECT_GT(reg.counter("mem.copy", 1).count, 0u);
}

// --- single-copy (cross-mapped) vs staged ----------------------------------

SrmConfig mapped_cfg() {
  SrmConfig cfg;
  cfg.single_copy = true;
  cfg.single_copy_min = 1;
  return cfg;
}

Moves srm_bcast_moves(int p, std::size_t bytes, SrmConfig cfg) {
  Cluster cluster(one_node(p));
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric, cfg);
  cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<char> buf(bytes, static_cast<char>(t.rank == 0));
    co_await comm.bcast(t, coll::Buf::bytes(buf.data(), buf.size()), 0);
  });
  return {cluster.obs().count("mem.copy"), cluster.obs().count("mem.combine")};
}

TEST_F(CopyCounts, MappedBcastCopiesOncePerConsumer) {
  // The staging hop gone: the root exports its user buffer and each of the
  // N-1 consumers pulls straight out of it — N-1 copies total, versus the
  // staged path's copy-in plus N-1 copy-outs.
  Moves staged = srm_bcast_moves(8, 1024, {});
  Moves mapped = srm_bcast_moves(8, 1024, mapped_cfg());
  EXPECT_EQ(staged.copies, 8u);
  EXPECT_EQ(mapped.copies, 7u);

  // Pairwise it is the textbook claim: one copy where staging needs two
  // (N-1 vs 2(N-1) for N=2).
  Moves staged2 = srm_bcast_moves(2, 1024, {});
  Moves mapped2 = srm_bcast_moves(2, 1024, mapped_cfg());
  EXPECT_EQ(staged2.copies, 2u);
  EXPECT_EQ(mapped2.copies, 1u);
}

TEST_F(CopyCounts, MappedReduceIsPureOperatorExecution) {
  // Leaves export their send buffers instead of copying into staging slots:
  // the whole intra-node reduce is p-1 combines and zero memory copies,
  // where the staged tree pays one copy per leaf.
  for (int p : {2, 4, 8, 16}) {
    Moves staged = srm_reduce_moves(p, 10);
    Moves mapped = srm_reduce_moves(p, 10, mapped_cfg());
    EXPECT_EQ(mapped.copies, 0u) << "p=" << p;
    EXPECT_EQ(mapped.combines, static_cast<std::uint64_t>(p - 1)) << "p=" << p;
    EXPECT_GT(staged.copies, mapped.copies) << "p=" << p;
  }
}

// --- algorithm attribution in the trace -------------------------------------

TEST_F(CopyCounts, CollSpansRecordChosenAlgorithm) {
  // Every coll.<op> span carries the decision the call resolved to in its
  // args, so a trace names the zoo member that produced the data movement
  // the counters above account for.
  ClusterConfig cc;
  cc.nodes = 2;
  cc.tasks_per_node = 2;
  Cluster cluster(cc);
  lapi::Fabric fabric(cluster);
  SrmConfig cfg;
  cfg.decisions.profile = "forced";
  cfg.decisions.set(coll::CollKind::allreduce, 0,
                    {coll::Algo::ring, false, coll::TreeKind::binomial});
  cfg.decisions.set(coll::CollKind::bcast, 0,
                    {coll::Algo::staged, false, coll::TreeKind::binomial});
  Communicator comm(cluster, fabric, cfg);
  cluster.obs().set_trace_enabled(true);
  std::vector<double> out(64, 0.0);
  cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<double> mine(64, 1.0 * t.rank);
    co_await comm.allreduce(t, coll::of(mine.data(), 64),
                            coll::of(out.data(), 64), coll::RedOp::sum);
    std::vector<char> buf(256, static_cast<char>(t.rank == 0));
    co_await comm.bcast(t, coll::Buf::bytes(buf.data(), buf.size()), 0);
  });
  int allreduce_spans = 0, bcast_spans = 0;
  for (const obs::SpanRec& s : cluster.obs().spans()) {
    if (s.name == "coll.allreduce") {
      EXPECT_NE(s.args.find("\"algo\":\"ring\""), std::string::npos)
          << s.args;
      ++allreduce_spans;
    } else if (s.name == "coll.bcast") {
      EXPECT_NE(s.args.find("\"algo\":\"staged\""), std::string::npos)
          << s.args;
      ++bcast_spans;
    }
  }
  EXPECT_EQ(allreduce_spans, 4);  // one per rank
  EXPECT_EQ(bcast_spans, 4);
}

}  // namespace
}  // namespace srm
