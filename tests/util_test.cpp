// util/: alignment math, RNG determinism, stats accumulator, formatting.
#include <gtest/gtest.h>

#include "util/align.hpp"
#include "util/check.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace srm::util {
namespace {

TEST(Align, AlignUp) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
  EXPECT_EQ(align_up(1000, kCacheLine), 1024u);
}

TEST(Align, Pow2Predicates) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(256));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(255));
}

TEST(Align, Log2) {
  EXPECT_EQ(log2_floor(1), 0);
  EXPECT_EQ(log2_floor(2), 1);
  EXPECT_EQ(log2_floor(3), 1);
  EXPECT_EQ(log2_floor(256), 8);
  EXPECT_EQ(log2_ceil(1), 0);
  EXPECT_EQ(log2_ceil(3), 2);
  EXPECT_EQ(log2_ceil(256), 8);
  EXPECT_EQ(log2_ceil(257), 9);
}

TEST(Check, ThrowsWithContext) {
  try {
    SRM_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DoubleInUnitInterval) {
  SplitMix64 r(123);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedValues) {
  SplitMix64 r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Stats, Accumulates) {
  Stats s;
  for (double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(Stats, EmptyThrows) {
  Stats s;
  EXPECT_THROW(s.mean(), CheckError);
  EXPECT_THROW(s.min(), CheckError);
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(8), "8");
  EXPECT_EQ(human_bytes(1023), "1023");
  EXPECT_EQ(human_bytes(1024), "1K");
  EXPECT_EQ(human_bytes(64 * 1024), "64K");
  EXPECT_EQ(human_bytes(8u << 20), "8M");
  EXPECT_EQ(human_bytes(1536), "1536");  // not a whole K
}

TEST(Format, Microseconds) {
  EXPECT_EQ(fmt_us(1.234), "1.23");
  EXPECT_EQ(fmt_us(123.45), "123.5");
  EXPECT_EQ(fmt_us(54321.0), "54321");
}

}  // namespace
}  // namespace srm::util
