// Symbolic-payload units: Payload digest semantics (pattern fill vs real
// digest, copy/combine block algebra, live-byte accounting), the coll::Buf
// descriptor helpers, and the API-boundary validation that replaced the
// backend-internal asserts — violations must fire at the call site for both
// planes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/communicator.hpp"
#include "util/check.hpp"

namespace srm {
namespace {

using coll::Buf;
using coll::Dtype;
using coll::Payload;
using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;

// ---------------------------------------------------------------------------
// Payload digest algebra
// ---------------------------------------------------------------------------

TEST(Payload, FillPatternMatchesRealDigest) {
  // The symbolic fill and the real-buffer fill must model the same bytes:
  // digesting a real pattern image reproduces the symbolic digest exactly.
  const std::size_t blocks = 3, elems = 50;
  Payload sym(blocks, elems * sizeof(double));
  sym.fill_pattern(Dtype::f64, 42);

  std::vector<double> real(blocks * elems);
  coll::fill_pattern(real.data(), Dtype::f64, blocks, elems, 42);
  Payload dig = Payload::digest_of(real.data(), Dtype::f64, blocks, elems);
  EXPECT_TRUE(sym.identical_to(dig));

  // A different seed or a shifted global block index is a different image.
  Payload other(blocks, elems * sizeof(double));
  other.fill_pattern(Dtype::f64, 43);
  EXPECT_FALSE(sym.identical_to(other));
  other.fill_pattern(Dtype::f64, 42, /*first_global=*/1);
  EXPECT_FALSE(sym.identical_to(other));
}

TEST(Payload, SubWindowBlocksCarryWholeImage) {
  // Blocks smaller than the 64-byte window: win_len clips and the checksum
  // still covers the full (tiny) image.
  const std::size_t elems = 3;  // 24 bytes < kWindow
  Payload sym(2, elems * sizeof(double));
  sym.fill_pattern(Dtype::f64, 9);
  EXPECT_EQ(sym.win_len(), elems * sizeof(double));

  std::vector<double> real(2 * elems);
  coll::fill_pattern(real.data(), Dtype::f64, 2, elems, 9);
  EXPECT_TRUE(
      sym.identical_to(Payload::digest_of(real.data(), Dtype::f64, 2, elems)));
}

TEST(Payload, CopyBlocksMovesDigestsExactly) {
  const std::size_t bb = 100;
  Payload src(4, bb);
  src.fill_pattern(Dtype::kByte, 5);
  Payload dst(4, bb);
  dst.copy_blocks(src, 1, 0, 2);  // dst[0,1] = src[1,2]
  EXPECT_EQ(dst.block(0).sum, src.block(1).sum);
  EXPECT_EQ(dst.block(1).sum, src.block(2).sum);
  EXPECT_EQ(dst.block(0).win, src.block(1).win);
  EXPECT_NE(dst.block(2).sum, src.block(2).sum);  // untouched
}

TEST(Payload, CombineBlocksMatchesRealCombine) {
  // Element-exact window combine: op over symbolic windows must equal the
  // digest of op over the real images (small-integer patterns make every
  // operator association-order exact).
  const std::size_t elems = 40;
  for (coll::RedOp op : {coll::RedOp::sum, coll::RedOp::prod,
                         coll::RedOp::min, coll::RedOp::max}) {
    Payload a(1, elems * sizeof(double)), b(1, elems * sizeof(double));
    a.fill_pattern(Dtype::f64, 1);
    b.fill_pattern(Dtype::f64, 2);
    a.combine_blocks(b, 0, 0, 1, Dtype::f64, op);

    std::vector<double> ra(elems), rb(elems);
    coll::fill_pattern(ra.data(), Dtype::f64, 1, elems, 1);
    coll::fill_pattern(rb.data(), Dtype::f64, 1, elems, 2);
    coll::combine(op, Dtype::f64, ra.data(), rb.data(), elems);
    Payload dig = Payload::digest_of(ra.data(), Dtype::f64, 1, elems);
    EXPECT_TRUE(a.windows_equal(dig, Dtype::f64))
        << "op " << static_cast<int>(op);
  }
}

TEST(Payload, CombineChecksumMixIsCommutative) {
  // The checksum of a combined block is order-independent, so symbolic
  // reductions are deterministic under any tree/association order.
  const std::size_t elems = 16;
  auto mk = [&](std::uint64_t seed) {
    Payload p(1, elems * sizeof(double));
    p.fill_pattern(Dtype::f64, seed);
    return p;
  };
  Payload ab = mk(1), ba = mk(2);
  ab.combine_blocks(mk(2), 0, 0, 1, Dtype::f64, coll::RedOp::sum);
  ba.combine_blocks(mk(1), 0, 0, 1, Dtype::f64, coll::RedOp::sum);
  EXPECT_TRUE(ab.identical_to(ba));
}

TEST(Payload, LiveBytesTracksDigestFootprint) {
  std::uint64_t base = Payload::live_bytes();
  {
    Payload big(1000, 1u << 20);  // models a gigabyte, allocates digests only
    std::uint64_t grew = Payload::live_bytes() - base;
    EXPECT_GE(grew, 1000 * sizeof(Payload::Block));
    EXPECT_LT(grew, 1000 * sizeof(Payload::Block) + 4096);
    Payload moved = std::move(big);
    EXPECT_EQ(Payload::live_bytes() - base, grew);  // move does not double
    Payload copy = moved;
    EXPECT_EQ(Payload::live_bytes() - base, 2 * grew);
  }
  EXPECT_EQ(Payload::live_bytes(), base);
}

// ---------------------------------------------------------------------------
// Buf descriptor helpers
// ---------------------------------------------------------------------------

TEST(BufDesc, FactoriesAndBlockAddressing) {
  std::vector<double> v(12);
  Buf b = coll::of(v.data(), 4);
  EXPECT_EQ(b.dtype, Dtype::f64);
  EXPECT_EQ(b.count, 4u);
  EXPECT_EQ(b.block_bytes(), 32u);
  EXPECT_FALSE(b.symbolic());
  EXPECT_EQ(b.block(0), v.data());
  EXPECT_EQ(b.block(2), v.data() + 8);  // rank 2's 4-element block

  Buf raw = Buf::bytes(v.data(), 96);
  EXPECT_EQ(raw.dtype, Dtype::kByte);
  EXPECT_EQ(raw.esize(), 1u);

  Payload pay(6, 32);
  Buf s = Buf::symbolic(pay, Dtype::f64, 4, /*block0=*/2);
  EXPECT_TRUE(s.symbolic());
  EXPECT_EQ(s.block_index(0), 2u);
  EXPECT_EQ(s.block_index(3), 5u);
}

// ---------------------------------------------------------------------------
// API-boundary validation (satellite: asserts live at the Collectives entry
// points, not inside protocol code, and fire at the call site)
// ---------------------------------------------------------------------------

struct Fixture {
  Fixture() : cluster(shape()), fabric(cluster), comm(cluster, fabric) {}
  static ClusterConfig shape() {
    ClusterConfig c;
    c.nodes = 2;
    c.tasks_per_node = 2;
    return c;
  }
  Cluster cluster;
  lapi::Fabric fabric;
  Communicator comm;
};

template <typename Body>
void expect_rejected(Fixture& f, Body body) {
  EXPECT_THROW(
      f.cluster.run([&](TaskCtx& t) -> CoTask { co_await body(t); }),
      util::CheckError);
}

TEST(BufValidation, RealAndSymbolicAtOnceRejected) {
  Fixture f;
  std::vector<char> mem(64);
  Payload pay(1, 64);
  expect_rejected(f, [&](TaskCtx& t) {
    Buf both = Buf::bytes(mem.data(), 64);
    both.pay = &pay;  // illegal hybrid
    return f.comm.bcast(t, both, 0);
  });
}

TEST(BufValidation, PayloadBlockSizeMismatchRejected) {
  Fixture f;
  Payload pay(1, 64);
  expect_rejected(f, [&](TaskCtx& t) {
    return f.comm.bcast(t, Buf::symbolic(pay, Dtype::kByte, 128), 0);
  });
}

TEST(BufValidation, PayloadSpanTooShortRejected) {
  Fixture f;
  Payload send(2, 64);  // scatter at root needs nranks = 4 blocks
  Payload recv(1, 64);
  expect_rejected(f, [&](TaskCtx& t) {
    return f.comm.scatter(t, Buf::symbolic(send, Dtype::kByte, 64),
                          Buf::symbolic(recv, Dtype::kByte, 64), 0);
  });
}

TEST(BufValidation, NullRealDataRejected) {
  Fixture f;
  expect_rejected(f, [&](TaskCtx& t) {
    return f.comm.bcast(t, Buf::bytes(static_cast<void*>(nullptr), 64), 0);
  });
}

TEST(BufValidation, DtypeMismatchRejected) {
  Fixture f;
  std::vector<double> in(8);
  std::vector<float> out(8);
  expect_rejected(f, [&](TaskCtx& t) {
    return f.comm.allreduce(t, coll::of(in.data(), 8), coll::of(out.data(), 8),
                            coll::RedOp::sum);
  });
}

TEST(BufValidation, BlockCountMismatchRejected) {
  Fixture f;
  std::vector<double> in(8), out(8);
  expect_rejected(f, [&](TaskCtx& t) {
    return f.comm.allreduce(t, coll::of(in.data(), 8), coll::of(out.data(), 4),
                            coll::RedOp::sum);
  });
}

TEST(BufValidation, MixedPlanePairRejected) {
  Fixture f;
  std::vector<double> in(8);
  Payload out(1, 64);
  expect_rejected(f, [&](TaskCtx& t) {
    return f.comm.allreduce(t, coll::of(in.data(), 8),
                            Buf::symbolic(out, Dtype::f64, 8),
                            coll::RedOp::sum);
  });
}

TEST(BufValidation, ByteReductionRejected) {
  Fixture f;
  std::vector<char> in(8), out(8);
  expect_rejected(f, [&](TaskCtx& t) {
    return f.comm.allreduce(t, Buf::bytes(in.data(), 8),
                            Buf::bytes(out.data(), 8), coll::RedOp::sum);
  });
}

TEST(BufValidation, RootRangeStillChecked) {
  Fixture f;
  std::vector<char> mem(8);
  expect_rejected(f, [&](TaskCtx& t) {
    return f.comm.bcast(t, Buf::bytes(mem.data(), 8), 4);
  });
}

TEST(BufValidation, NonRootSidesNotValidated) {
  // The root-significant side is only checked at the root: non-root ranks
  // may pass empty descriptors for scatter's send / gather's recv.
  Fixture f;
  std::size_t per = 16;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<double> send;
    if (t.rank == 0) {
      send.resize(per * static_cast<std::size_t>(t.nranks()), 1.0);
    }
    std::vector<double> recv(per, 0.0);
    co_await f.comm.scatter(t, coll::of(send.data(), per),
                            coll::of(recv.data(), per), 0);
    co_await f.comm.gather(t, coll::of(recv.data(), per),
                           coll::of(send.data(), per), 0);
  });
}

}  // namespace
}  // namespace srm
