// FairShareResource: processor-sharing bandwidth arithmetic.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace srm::sim {
namespace {

CoTask one_transfer(FairShareResource& r, double bytes, Engine& eng,
                    Time& done) {
  co_await r.transfer(bytes);
  done = eng.now();
}

TEST(FairShare, SingleTransferRunsAtCap) {
  Engine eng;
  // 1 GB/s total, 100 MB/s per-stream cap.
  FairShareResource r(eng, 1e9, 100e6);
  Time done = 0;
  eng.spawn(one_transfer(r, 1e6, eng, done));  // 1 MB at 100 MB/s = 10 ms
  eng.run();
  EXPECT_EQ(done, ms(10));
}

TEST(FairShare, SingleTransferUncappedRunsAtTotal) {
  Engine eng;
  FairShareResource r(eng, 1e9);
  Time done = 0;
  eng.spawn(one_transfer(r, 1e6, eng, done));  // 1 MB at 1 GB/s = 1 ms
  eng.run();
  EXPECT_EQ(done, ms(1));
}

TEST(FairShare, ZeroByteTransferIsInstant) {
  Engine eng;
  FairShareResource r(eng, 1e9, 100e6);
  Time done = 77;
  eng.spawn(one_transfer(r, 0.0, eng, done));
  eng.run();
  EXPECT_EQ(done, 0u);
}

CoTask spawn_two_equal(FairShareResource& r, Engine& eng, Time& d1, Time& d2) {
  auto t1 = r.start(1e6);
  auto t2 = r.start(1e6);
  co_await t1->wait();
  d1 = eng.now();
  co_await t2->wait();
  d2 = eng.now();
}

TEST(FairShare, TwoEqualStreamsShareTotal) {
  Engine eng;
  // Total 100 MB/s, no cap: two 1 MB streams at 50 MB/s each => 20 ms both.
  FairShareResource r(eng, 100e6);
  Time d1 = 0, d2 = 0;
  eng.spawn(spawn_two_equal(r, eng, d1, d2));
  eng.run();
  EXPECT_EQ(d1, ms(20));
  EXPECT_EQ(d2, ms(20));
}

TEST(FairShare, CapLimitsWhenTotalIsAmple) {
  Engine eng;
  // Total 1 GB/s, cap 100 MB/s: two streams run at the cap, no contention.
  FairShareResource r(eng, 1e9, 100e6);
  Time d1 = 0, d2 = 0;
  eng.spawn(spawn_two_equal(r, eng, d1, d2));
  eng.run();
  EXPECT_EQ(d1, ms(10));
  EXPECT_EQ(d2, ms(10));
}

CoTask staggered(FairShareResource& r, Engine& eng, Time& d_small,
                 Time& d_big) {
  // Big transfer starts at t=0; a small one joins at t=1ms.
  auto big = r.start(2e6);
  co_await eng.sleep(ms(1));
  auto small = r.start(0.5e6);
  co_await small->wait();
  d_small = eng.now();
  co_await big->wait();
  d_big = eng.now();
}

TEST(FairShare, LateJoinerSplitsBandwidth) {
  Engine eng;
  // Total 1 MB/ms (1 GB/s), uncapped.
  // t in [0,1ms): big alone, drains 1 MB of 2 MB.
  // t >= 1ms: both at 0.5 MB/ms. Small (0.5 MB) done at 1 + 1 = 2 ms.
  // Big then has 1 MB - 0.5 MB = 0.5 MB left, alone at 1 MB/ms: done 2.5 ms.
  FairShareResource r(eng, 1e9);
  Time d_small = 0, d_big = 0;
  eng.spawn(staggered(r, eng, d_small, d_big));
  eng.run();
  EXPECT_EQ(d_small, ms(2));
  EXPECT_EQ(d_big, ms(2) + us(500));
}

CoTask n_streams(FairShareResource& r, int n, double bytes, Engine& eng,
                 Time& all_done) {
  std::vector<std::shared_ptr<Trigger>> ts;
  for (int i = 0; i < n; ++i) ts.push_back(r.start(bytes));
  for (auto& t : ts) co_await t->wait();
  all_done = eng.now();
}

TEST(FairShare, SixteenWayContention) {
  Engine eng;
  // 4 GB/s total, 550 MB/s cap — the default node memory profile shape.
  // 16 concurrent 1 MB streams: share = 250 MB/s each (< cap).
  FairShareResource r(eng, 4e9, 550e6);
  Time done = 0;
  eng.spawn(n_streams(r, 16, 1e6, eng, done));
  eng.run();
  EXPECT_EQ(done, ms(4));  // 1 MB at 250 MB/s
}

TEST(FairShare, ActiveCountTracksInFlight) {
  Engine eng;
  FairShareResource r(eng, 1e9);
  EXPECT_EQ(r.active(), 0u);
  auto t = r.start(1e6);
  EXPECT_EQ(r.active(), 1u);
  eng.run();
  EXPECT_EQ(r.active(), 0u);
  EXPECT_TRUE(t->fired());
}

TEST(FairShare, Determinism) {
  auto run_once = [] {
    Engine eng;
    FairShareResource r(eng, 3.7e8, 1.1e8);
    Time d1 = 0, d2 = 0;
    eng.spawn(staggered(r, eng, d1, d2));
    eng.run();
    return std::tuple{d1, d2, eng.events_processed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace srm::sim
