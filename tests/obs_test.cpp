// srm::obs unit tests: counter accumulation and reset, span recording on
// the virtual clock, lane assignment for overlapping spans, and
// well-formedness of both JSON exporters (checked with a tiny
// recursive-descent JSON validator — no external parser available).
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "core/communicator.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace srm {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;

// ---------------------------------------------------------------------------
// Minimal JSON validator (strict enough for our exporters: no NaN/Inf, no
// trailing commas, double-quoted keys).
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (!eat(*p)) return false;
    }
    return true;
  }

  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() || !std::isxdigit(s_[pos_++])) return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    std::size_t start = pos_;
    eat('-');
    if (!std::isdigit(peek())) return false;
    while (std::isdigit(peek())) ++pos_;
    if (eat('.')) {
      if (!std::isdigit(peek())) return false;
      while (std::isdigit(peek())) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(peek())) return false;
      while (std::isdigit(peek())) ++pos_;
    }
    return pos_ > start;
  }
};

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

TEST(ObsCounter, AddAccumulatesCountAndValue) {
  obs::Counter c;
  c.add(100.0);
  c.add();
  c.add(28.0);
  if (obs::kEnabled) {
    EXPECT_EQ(c.count, 3u);
    EXPECT_DOUBLE_EQ(c.value, 128.0);
  } else {
    EXPECT_EQ(c.count, 0u);
    EXPECT_DOUBLE_EQ(c.value, 0.0);
  }
  c.reset();
  EXPECT_EQ(c.count, 0u);
  EXPECT_DOUBLE_EQ(c.value, 0.0);
}

TEST(ObsRegistry, TotalsAcrossIds) {
  if (!obs::kEnabled) GTEST_SKIP() << "SRM_OBS=OFF";
  sim::Engine eng;
  obs::Registry reg(eng);
  reg.counter("mem.copy", 0).add(64.0);
  reg.counter("mem.copy", 3).add(32.0);
  reg.counter("mem.copy", 3).add(32.0);
  reg.counter("lapi.put", 1).add(8.0);
  EXPECT_EQ(reg.count("mem.copy"), 3u);
  EXPECT_DOUBLE_EQ(reg.value("mem.copy"), 128.0);
  EXPECT_EQ(reg.counter("mem.copy", 3).count, 2u);
  EXPECT_EQ(reg.count("lapi.put"), 1u);
  EXPECT_EQ(reg.count("never.touched"), 0u);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"lapi.put", "mem.copy"}));
}

TEST(ObsRegistry, ResetKeepsCachedReferencesValid) {
  if (!obs::kEnabled) GTEST_SKIP() << "SRM_OBS=OFF";
  sim::Engine eng;
  obs::Registry reg(eng);
  obs::Counter& cached = reg.counter("net.msg", 7);
  cached.add(1024.0);
  EXPECT_EQ(reg.count("net.msg"), 1u);
  reg.reset_counters();
  EXPECT_EQ(reg.count("net.msg"), 0u);
  cached.add(2048.0);  // the pre-reset reference must still be live
  EXPECT_EQ(reg.count("net.msg"), 1u);
  EXPECT_DOUBLE_EQ(reg.value("net.msg"), 2048.0);
}

TEST(ObsRegistry, DisabledBuildIsInert) {
  if (obs::kEnabled) GTEST_SKIP() << "SRM_OBS=ON";
  sim::Engine eng;
  obs::Registry reg(eng);
  reg.counter("mem.copy", 0).add(64.0);
  EXPECT_EQ(reg.count("mem.copy"), 0u);
  reg.set_trace_enabled(true);  // cannot be forced on in the disabled build
  EXPECT_FALSE(reg.trace_enabled());
  EXPECT_EQ(reg.span_begin(0, "x"), obs::Registry::kNoSpan);
  EXPECT_TRUE(reg.spans().empty());
  EXPECT_TRUE(JsonChecker(reg.counters_json()).valid());
  EXPECT_TRUE(JsonChecker(reg.chrome_trace_json()).valid());
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST(ObsSpan, TraceDisabledByDefault) {
  sim::Engine eng;
  obs::Registry reg(eng);
  EXPECT_FALSE(reg.trace_enabled());
  EXPECT_EQ(reg.span_begin(0, "srm.bcast"), obs::Registry::kNoSpan);
  reg.span_end(obs::Registry::kNoSpan);  // must be a harmless no-op
  EXPECT_TRUE(reg.spans().empty());
}

TEST(ObsSpan, RecordsVirtualTimesAndNesting) {
  if (!obs::kEnabled) GTEST_SKIP() << "SRM_OBS=OFF";
  sim::Engine eng;
  obs::Registry reg(eng);
  reg.set_trace_enabled(true);
  std::size_t outer = obs::Registry::kNoSpan;
  std::size_t inner = obs::Registry::kNoSpan;
  eng.call_at(sim::us(10), [&] { outer = reg.span_begin(2, "srm.allreduce"); });
  eng.call_at(sim::us(20), [&] { inner = reg.span_begin(2, "allreduce.rd"); });
  eng.call_at(sim::us(30), [&] { reg.span_end(inner); });
  eng.call_at(sim::us(50), [&] { reg.span_end(outer); });
  eng.run();
  ASSERT_EQ(reg.spans().size(), 2u);
  const obs::SpanRec& o = reg.spans()[0];
  const obs::SpanRec& i = reg.spans()[1];
  EXPECT_EQ(o.name, "srm.allreduce");
  EXPECT_EQ(o.rank, 2);
  EXPECT_EQ(o.begin, sim::us(10));
  EXPECT_EQ(o.end, sim::us(50));
  EXPECT_FALSE(o.open);
  EXPECT_EQ(i.name, "allreduce.rd");
  EXPECT_EQ(i.begin, sim::us(20));
  EXPECT_EQ(i.end, sim::us(30));
  // Proper nesting: the inner span lies inside the outer one.
  EXPECT_GE(i.begin, o.begin);
  EXPECT_LE(i.end, o.end);
}

TEST(ObsSpan, ArgsAreStoredAndExported) {
  if (!obs::kEnabled) GTEST_SKIP() << "SRM_OBS=OFF";
  sim::Engine eng;
  obs::Registry reg(eng);
  reg.set_trace_enabled(true);
  std::size_t with_args = reg.span_begin(
      0, "coll.bcast", R"({"op":"bcast","dtype":"byte","count":64})");
  std::size_t without = reg.span_begin(1, "srm.bcast");
  reg.span_end(with_args);
  reg.span_end(without);
  ASSERT_EQ(reg.spans().size(), 2u);
  EXPECT_EQ(reg.spans()[0].args,
            R"({"op":"bcast","dtype":"byte","count":64})");
  EXPECT_TRUE(reg.spans()[1].args.empty());
  // The exporter embeds the pre-rendered args object verbatim and the
  // result must still parse; args-less spans carry no "args" key.
  std::string trace = reg.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace;
  EXPECT_NE(trace.find("\"args\":{\"op\":\"bcast\""), std::string::npos)
      << trace;
  EXPECT_EQ(trace.find("\"args\":{}"), std::string::npos) << trace;
}

TEST(ObsSpan, RaiiSpanClosesOnScopeExit) {
  if (!obs::kEnabled) GTEST_SKIP() << "SRM_OBS=OFF";
  sim::Engine eng;
  obs::Registry reg(eng);
  reg.set_trace_enabled(true);
  {
    obs::Span s(reg, 1, "srm.barrier");
    ASSERT_EQ(reg.spans().size(), 1u);
    EXPECT_TRUE(reg.spans()[0].open);
  }
  ASSERT_EQ(reg.spans().size(), 1u);
  EXPECT_FALSE(reg.spans()[0].open);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ObsExport, CountersJsonWellFormed) {
  sim::Engine eng;
  obs::Registry reg(eng);
  reg.counter("mem.copy", 0).add(1024.0);
  reg.counter("lapi.put", 5).add(0.5);  // fractional values must round-trip
  reg.counter("weird\"name\\n", 1).add();  // exerciser for string escaping
  std::string json = reg.counters_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"enabled\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  if (obs::kEnabled) {
    EXPECT_NE(json.find("mem.copy"), std::string::npos);
  }
}

TEST(ObsExport, ChromeTraceWellFormedWithLanesForOverlap) {
  if (!obs::kEnabled) GTEST_SKIP() << "SRM_OBS=OFF";
  sim::Engine eng;
  obs::Registry reg(eng);
  reg.set_trace_enabled(true);
  // Rank 0: two properly nested spans -> same lane. Rank 1: two overlapping
  // but non-nested spans (the pipelined-allreduce shape) -> distinct lanes.
  std::size_t a = 0, b = 0, c = 0, d = 0;
  eng.call_at(sim::us(0), [&] { a = reg.span_begin(0, "srm.bcast"); });
  eng.call_at(sim::us(1), [&] { b = reg.span_begin(0, "bcast.small"); });
  eng.call_at(sim::us(2), [&] { reg.span_end(b); });
  eng.call_at(sim::us(3), [&] { reg.span_end(a); });
  eng.call_at(sim::us(0), [&] { c = reg.span_begin(1, "reduce.pipeline"); });
  eng.call_at(sim::us(2), [&] { d = reg.span_begin(1, "bcast.large"); });
  eng.call_at(sim::us(4), [&] { reg.span_end(c); });
  eng.call_at(sim::us(6), [&] { reg.span_end(d); });
  eng.run();

  std::string json = reg.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Rank 0's nested pair shares tid 0; rank 1's overlap forces lane 17
  // (= 1 * kLaneStride + 1) next to its base lane 16.
  EXPECT_NE(json.find("\"tid\":16"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":17"), std::string::npos);
  EXPECT_EQ(json.find("\"tid\":1,"), std::string::npos);
}

TEST(ObsExport, OpenSpansClampedAndTagged) {
  if (!obs::kEnabled) GTEST_SKIP() << "SRM_OBS=OFF";
  sim::Engine eng;
  obs::Registry reg(eng);
  reg.set_trace_enabled(true);
  eng.call_at(sim::us(5), [&] { reg.span_begin(0, "srm.reduce"); });
  eng.call_at(sim::us(9), [] {});
  eng.run();
  std::string json = reg.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"cat\":\"open\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: a real collective leaves a coherent record.
// ---------------------------------------------------------------------------

TEST(ObsIntegration, BroadcastLeavesSpansAndCounters) {
  if (!obs::kEnabled) GTEST_SKIP() << "SRM_OBS=OFF";
  ClusterConfig cc;
  cc.nodes = 2;
  cc.tasks_per_node = 4;
  Cluster cluster(cc);
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric);
  cluster.obs().set_trace_enabled(true);
  cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<char> buf(2048, static_cast<char>(t.rank == 0));
    co_await comm.bcast(t, coll::Buf::bytes(buf.data(), buf.size()), 0);
  });
  const auto& spans = cluster.obs().spans();
  int dispatch_spans = 0;
  for (const auto& s : spans) {
    EXPECT_FALSE(s.open) << s.name;
    EXPECT_LE(s.begin, s.end) << s.name;
    if (s.name == "srm.bcast") ++dispatch_spans;
  }
  EXPECT_EQ(dispatch_spans, 8);  // one per rank
  EXPECT_GT(cluster.obs().count("mem.copy"), 0u);
  EXPECT_GT(cluster.obs().count("lapi.put"), 0u);
  std::string trace = cluster.obs().chrome_trace_json();
  EXPECT_TRUE(JsonChecker(trace).valid());
  // Clearing and re-running must not double-report.
  cluster.obs().clear_spans();
  EXPECT_TRUE(cluster.obs().spans().empty());
}

TEST(ObsIntegration, CollectiveSpansCarrySignatureArgs) {
  if (!obs::kEnabled) GTEST_SKIP() << "SRM_OBS=OFF";
  ClusterConfig cc;
  cc.nodes = 1;
  cc.tasks_per_node = 4;
  Cluster cluster(cc);
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric);
  cluster.obs().set_trace_enabled(true);
  cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<char> buf(512, static_cast<char>(t.rank == 0));
    co_await comm.bcast(t, coll::Buf::bytes(buf.data(), buf.size()), 0);
    double in = 1.0, out = 0.0;
    co_await comm.allreduce(t, coll::of(&in, 1), coll::of(&out, 1),
                            coll::RedOp::sum);
  });
  // The NVI boundary wraps each rank's backend task in a "coll.<op>" span
  // whose args carry the full call signature for cross-rank trace diffing.
  int bcast_spans = 0, allreduce_spans = 0;
  for (const auto& s : cluster.obs().spans()) {
    if (s.name == "coll.bcast") {
      ++bcast_spans;
      EXPECT_NE(s.args.find("\"op\":\"bcast\""), std::string::npos) << s.args;
      EXPECT_NE(s.args.find("\"count\":512"), std::string::npos) << s.args;
      EXPECT_NE(s.args.find("\"root\":0"), std::string::npos) << s.args;
    } else if (s.name == "coll.allreduce") {
      ++allreduce_spans;
      EXPECT_NE(s.args.find("\"red\":\"sum\""), std::string::npos) << s.args;
    }
  }
  EXPECT_EQ(bcast_spans, 4);  // one per rank
  EXPECT_EQ(allreduce_spans, 4);
  EXPECT_TRUE(JsonChecker(cluster.obs().chrome_trace_json()).valid());
}

}  // namespace
}  // namespace srm
