// Mini-MPI baseline collectives: data correctness vs. a sequential
// reference, parameterized across topology shapes, sizes, roots, ops.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/comm.hpp"

namespace srm::minimpi {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::MachineParams;
using machine::TaskCtx;
using sim::CoTask;

struct Fixture {
  Fixture(int nodes, int per_node)
      : cluster(make_cfg(nodes, per_node)),
        world(cluster, cluster.params().mpi_ibm, "ibm") {}
  static ClusterConfig make_cfg(int nodes, int per_node) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.tasks_per_node = per_node;
    return cfg;
  }
  Cluster cluster;
  World world;
};

// rank r contributes value r+1 at index i scaled by (i+1).
double contribution(int rank, std::size_t i) {
  return (rank + 1.0) * static_cast<double>(i + 1);
}

class MpiCollShapes
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // nodes, ppn

TEST_P(MpiCollShapes, BcastDeliversRootData) {
  auto [nodes, ppn] = GetParam();
  Fixture f(nodes, ppn);
  int n = nodes * ppn;
  int root = n > 3 ? 3 : 0;
  std::size_t count = 300;
  std::vector<std::vector<double>> bufs(static_cast<std::size_t>(n),
                                        std::vector<double>(count, -1.0));
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& buf = bufs[static_cast<std::size_t>(t.rank)];
    if (t.rank == root) {
      for (std::size_t i = 0; i < count; ++i) buf[i] = contribution(root, i);
    }
    co_await f.world.comm(t.rank).bcast(buf.data(), count * sizeof(double),
                                        root);
  });
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(bufs[static_cast<std::size_t>(r)][i], contribution(root, i))
          << "rank " << r << " index " << i;
    }
  }
}

TEST_P(MpiCollShapes, ReduceSumsAtRoot) {
  auto [nodes, ppn] = GetParam();
  Fixture f(nodes, ppn);
  int n = nodes * ppn;
  int root = n - 1;
  std::size_t count = 128;
  std::vector<double> result(count, 0.0);
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<double> mine(count);
    for (std::size_t i = 0; i < count; ++i) mine[i] = contribution(t.rank, i);
    co_await f.world.comm(t.rank).reduce(mine.data(), result.data(), count,
                                         coll::Dtype::f64, coll::RedOp::sum,
                                         root);
  });
  double rank_sum = n * (n + 1) / 2.0;
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_DOUBLE_EQ(result[i], rank_sum * static_cast<double>(i + 1));
  }
}

TEST_P(MpiCollShapes, AllreduceEveryoneGetsSum) {
  auto [nodes, ppn] = GetParam();
  Fixture f(nodes, ppn);
  int n = nodes * ppn;
  std::size_t count = 64;
  std::vector<std::vector<double>> results(
      static_cast<std::size_t>(n), std::vector<double>(count, -7.0));
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<double> mine(count);
    for (std::size_t i = 0; i < count; ++i) mine[i] = contribution(t.rank, i);
    co_await f.world.comm(t.rank).allreduce(
        mine.data(), results[static_cast<std::size_t>(t.rank)].data(), count,
        coll::Dtype::f64, coll::RedOp::sum);
  });
  double rank_sum = n * (n + 1) / 2.0;
  for (int r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_DOUBLE_EQ(results[static_cast<std::size_t>(r)][i],
                       rank_sum * static_cast<double>(i + 1));
    }
  }
}

TEST_P(MpiCollShapes, BarrierHoldsEveryoneForTheLast) {
  auto [nodes, ppn] = GetParam();
  Fixture f(nodes, ppn);
  int n = nodes * ppn;
  int straggler = n - 1;
  sim::Duration late = sim::ms(3);
  std::vector<sim::Time> released(static_cast<std::size_t>(n), 0);
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    if (t.rank == straggler) co_await t.delay(late);
    co_await f.world.comm(t.rank).barrier();
    released[static_cast<std::size_t>(t.rank)] = t.eng->now();
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_GE(released[static_cast<std::size_t>(r)], late)
        << "rank " << r << " escaped the barrier early";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MpiCollShapes,
    ::testing::Values(std::tuple{1, 2}, std::tuple{1, 16}, std::tuple{2, 1},
                      std::tuple{2, 8}, std::tuple{4, 4}, std::tuple{3, 5},
                      std::tuple{4, 16}, std::tuple{5, 3}),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MpiColl, LargeMessageBcastCorrect) {
  Fixture f(4, 4);
  std::size_t bytes = 2u << 20;  // rendezvous + chunked shm territory
  std::vector<std::vector<char>> bufs(16, std::vector<char>(bytes, 0));
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& buf = bufs[static_cast<std::size_t>(t.rank)];
    if (t.rank == 0) {
      for (std::size_t i = 0; i < bytes; ++i) {
        buf[i] = static_cast<char>(i % 249);
      }
    }
    co_await f.world.comm(t.rank).bcast(buf.data(), bytes, 0);
  });
  for (int r = 1; r < 16; ++r) {
    ASSERT_EQ(bufs[static_cast<std::size_t>(r)], bufs[0]) << "rank " << r;
  }
}

TEST(MpiColl, ReduceMinMaxIntTypes) {
  Fixture f(2, 4);
  std::vector<std::int32_t> mn(4, 0), mx(4, 0);
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<std::int32_t> mine = {t.rank, -t.rank, t.rank * 10, 5};
    auto& c = f.world.comm(t.rank);
    co_await c.reduce(mine.data(), mn.data(), 4, coll::Dtype::i32,
                      coll::RedOp::min, 0);
    co_await c.reduce(mine.data(), mx.data(), 4, coll::Dtype::i32,
                      coll::RedOp::max, 0);
  });
  EXPECT_EQ(mn, (std::vector<std::int32_t>{0, -7, 0, 5}));
  EXPECT_EQ(mx, (std::vector<std::int32_t>{7, 0, 70, 5}));
}

TEST(MpiColl, ConsecutiveCollectivesDoNotInterfere) {
  Fixture f(2, 4);
  std::vector<double> out(8, 0.0);
  std::vector<double> last(1, 0.0);
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    auto& c = f.world.comm(t.rank);
    for (int round = 0; round < 5; ++round) {
      double mine = t.rank + round * 100.0;
      double sum = 0.0;
      co_await c.allreduce(&mine, &sum, 1, coll::Dtype::f64, coll::RedOp::sum);
      if (t.rank == 0) last[0] = sum;
    }
    co_await c.barrier();
  });
  // Round 4: sum over ranks of (rank + 400) = 28 + 8*400.
  EXPECT_DOUBLE_EQ(last[0], 28.0 + 8 * 400.0);
}

}  // namespace
}  // namespace srm::minimpi
