// sv::verify unit tests: the seq_diff divergence classifier and the
// path-sensitive static pass — clean skeletons stay clean, and every
// PARCOACH-style rule localizes its divergent conditional/loop and the
// first mismatched signature field.
#include <gtest/gtest.h>

#include <vector>

#include "sv/verify.hpp"

namespace srm::sv {
namespace {

std::vector<SigPat> three_calls() {
  return {real(sig_bcast(Dtype::kByte, 64, 0)),
          real(sig_allreduce(Dtype::f64, 8, RedOp::sum)), sig_barrier()};
}

TEST(SeqDiff, EqualAndFieldClassification) {
  auto a = three_calls();
  EXPECT_EQ(seq_diff(a, a).kind, SeqDiff::Kind::equal);

  auto b = a;
  b[1].red = static_cast<int>(RedOp::max);
  SeqDiff d = seq_diff(a, b);
  EXPECT_EQ(d.kind, SeqDiff::Kind::field);
  EXPECT_EQ(d.index, 1u);
  EXPECT_EQ(d.field, "red");
}

TEST(SeqDiff, SingleInsertionIsExtraNotField) {
  auto a = three_calls();
  auto b = a;
  b.insert(b.begin() + 1, sig_barrier());
  SeqDiff d = seq_diff(a, b);
  EXPECT_EQ(d.kind, SeqDiff::Kind::extra_b);
  EXPECT_EQ(d.index, 1u);
  EXPECT_EQ(seq_diff(b, a).kind, SeqDiff::Kind::extra_a);
}

TEST(SeqDiff, TrailingExtraAndLength) {
  auto a = three_calls();
  auto b = a;
  b.pop_back();
  EXPECT_EQ(seq_diff(a, b).kind, SeqDiff::Kind::extra_a);
  EXPECT_EQ(seq_diff(b, a).kind, SeqDiff::Kind::extra_b);
  b.pop_back();  // now two calls short: plain length divergence
  EXPECT_EQ(seq_diff(a, b).kind, SeqDiff::Kind::length);
}

TEST(SeqDiff, AdjacentSwapIsReorder) {
  auto a = three_calls();
  auto b = a;
  std::swap(b[0], b[1]);
  SeqDiff d = seq_diff(a, b);
  EXPECT_EQ(d.kind, SeqDiff::Kind::reorder);
  EXPECT_EQ(d.index, 0u);
}

TEST(SeqDiff, WildcardsUnifyInsideSequences) {
  auto a = three_calls();
  auto b = a;
  b[0].count = kAnyCount;
  b[0].root = kAnyRoot;
  EXPECT_EQ(seq_diff(a, b).kind, SeqDiff::Kind::equal);
}

// ---- static verification ------------------------------------------------

TEST(Verify, StraightLineAndUniformControlFlowAreClean) {
  Skeleton sk{"clean",
              seq(call(real(sig_bcast(Dtype::kByte, 64, 0))),
                  loop(3, call(real(sig_allreduce(Dtype::f64, 1,
                                                  RedOp::sum)))),
                  loop_uniform("until converged", call(sig_barrier())),
                  branch_uniform("if (verbose)",
                                 call(real(sig_gather(Dtype::f64, 8, 0)))),
                  call(sig_barrier()))};
  Diag d = verify(sk);
  EXPECT_TRUE(d.ok) << d.to_string();
  EXPECT_EQ(d.program, "clean");
}

TEST(Verify, RankBranchWithMatchingArmsIsClean) {
  // Different code per rank group, same collective sequence: fine.
  Node arm = seq(call(real(sig_reduce(Dtype::f64, 4, RedOp::sum, 0))),
                 call(sig_barrier()));
  Skeleton sk{"rank-ok", branch_rank("if (rank % 2)", arm, arm)};
  EXPECT_TRUE(verify(sk).ok);
}

TEST(Verify, RankLoopWithCollectivesIsFlagged) {
  Skeleton sk{"rank-loop",
              loop_rank("for (i = 0; i < rank; ++i)",
                        call(real(sig_allreduce(Dtype::f64, 1,
                                                RedOp::sum))))};
  Diag d = verify(sk);
  ASSERT_FALSE(d.ok);
  EXPECT_EQ(d.kind, "rank-loop");
  EXPECT_EQ(d.where, "for (i = 0; i < rank; ++i)");
}

TEST(Verify, RankLoopWithoutCollectivesIsClean) {
  Skeleton sk{"rank-loop-empty",
              seq(loop_rank("for (i = 0; i < rank; ++i)", seq()),
                  call(sig_barrier()))};
  EXPECT_TRUE(verify(sk).ok);
}

TEST(Verify, DivergentRootPinpointsFieldAndConditional) {
  Skeleton sk{"wrong-root",
              branch_rank("if (rank == 0)",
                          call(real(sig_bcast(Dtype::kByte, 64, 0))),
                          call(real(sig_bcast(Dtype::kByte, 64, 1))))};
  Diag d = verify(sk);
  ASSERT_FALSE(d.ok);
  EXPECT_EQ(d.kind, "arm-mismatch");
  EXPECT_EQ(d.field, "root");
  EXPECT_EQ(d.index, 0u);
  EXPECT_EQ(d.where, "if (rank == 0)");
  // The rendered diagnostic names both arms' calls.
  EXPECT_NE(d.detail.find("then-arm"), std::string::npos) << d.detail;
  EXPECT_NE(d.detail.find("else-arm"), std::string::npos) << d.detail;
}

TEST(Verify, ConditionalSkipIsArmExtra) {
  Skeleton sk{"cond-skip",
              branch_rank("if (rank != 0)",
                          seq(call(real(sig_allreduce(Dtype::f64, 1,
                                                      RedOp::sum))),
                              call(sig_barrier())),
                          call(sig_barrier()))};
  Diag d = verify(sk);
  ASSERT_FALSE(d.ok);
  EXPECT_EQ(d.kind, "arm-extra");
  EXPECT_EQ(d.index, 0u);
}

TEST(Verify, SwappedArmsAreArmReorder) {
  Node ab = seq(call(real(sig_bcast(Dtype::kByte, 8, 0))),
                call(real(sig_allreduce(Dtype::f64, 1, RedOp::sum))));
  Node ba = seq(call(real(sig_allreduce(Dtype::f64, 1, RedOp::sum))),
                call(real(sig_bcast(Dtype::kByte, 8, 0))));
  Skeleton sk{"reorder", branch_rank("if (rank & 1)", ab, ba)};
  Diag d = verify(sk);
  ASSERT_FALSE(d.ok);
  EXPECT_EQ(d.kind, "arm-reorder");
}

TEST(Verify, LengthDivergenceIsArmLength) {
  Node many = seq(call(sig_barrier()), call(sig_barrier()),
                  call(sig_barrier()));
  Skeleton sk{"length", branch_rank("if (rank)", many, call(sig_barrier()))};
  Diag d = verify(sk);
  ASSERT_FALSE(d.ok);
  EXPECT_EQ(d.kind, "arm-length");
}

TEST(Verify, KnownTripLoopsUnrollInsideRankArms) {
  // 2 iterations x 1 call == 2 straight calls: provably equal.
  Node looped = loop(2, call(real(sig_allreduce(Dtype::f64, 1,
                                                RedOp::sum))));
  Node straight = seq(call(real(sig_allreduce(Dtype::f64, 1, RedOp::sum))),
                      call(real(sig_allreduce(Dtype::f64, 1, RedOp::sum))));
  Skeleton ok{"unroll-ok", branch_rank("if (rank)", looped, straight)};
  EXPECT_TRUE(verify(ok).ok);

  Node three = loop(3, call(real(sig_allreduce(Dtype::f64, 1, RedOp::sum))));
  Skeleton bad{"unroll-bad", branch_rank("if (rank)", three, straight)};
  Diag d = verify(bad);
  ASSERT_FALSE(d.ok);
  EXPECT_EQ(d.kind, "arm-extra");
}

TEST(Verify, UnknownTripLoopInsideRankArmIsUnprovable) {
  Skeleton sk{"unprovable",
              branch_rank("if (rank == 0)",
                          loop_uniform("until converged",
                                       call(sig_barrier())),
                          call(sig_barrier()))};
  Diag d = verify(sk);
  ASSERT_FALSE(d.ok);
  EXPECT_EQ(d.kind, "arm-unprovable");
  EXPECT_EQ(d.where, "until converged");
  EXPECT_NE(d.detail.find("if (rank == 0)"), std::string::npos) << d.detail;
}

TEST(Verify, DiagToStringCarriesAnchorAndField) {
  Skeleton sk{"render",
              branch_rank("if (rank < 4)",
                          call(real(sig_reduce(Dtype::f64, 8, RedOp::sum,
                                               0))),
                          call(real(sig_reduce(Dtype::f32, 8, RedOp::sum,
                                               0))))};
  Diag d = verify(sk);
  ASSERT_FALSE(d.ok);
  std::string s = d.to_string();
  EXPECT_NE(s.find("render"), std::string::npos) << s;
  EXPECT_NE(s.find("if (rank < 4)"), std::string::npos) << s;
  EXPECT_NE(s.find("dtype"), std::string::npos) << s;
}

}  // namespace
}  // namespace srm::sv
