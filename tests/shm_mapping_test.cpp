// shm::Mapping — the cross-address-space window primitive behind the
// single-copy collectives. Covers the handshake itself (publish / attach /
// detach / retract and generation accounting), the SRM_CHECK lifetime
// guards (double export, attach after retract, retract without export),
// the chk::Checker integration (owner reuse before retract is a detectable
// race; the retract handshake restores order), and the end-to-end mapped
// protocols delivering correct data on a multi-node cluster — real and
// symbolic planes both.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "chk/chk.hpp"
#include "coll/payload.hpp"
#include "core/communicator.hpp"
#include "shm/mapping.hpp"

namespace srm {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;

ClusterConfig one_node(int p) {
  ClusterConfig c;
  c.nodes = 1;
  c.tasks_per_node = p;
  return c;
}

// --- the raw handshake -----------------------------------------------------

TEST(ShmMapping, RoundtripPublishAttachDetachRetract) {
  constexpr int kTasks = 4;
  constexpr std::size_t kBytes = 256;
  Cluster cluster(one_node(kTasks));
  shm::Mapping map(cluster.engine(), cluster.params().mem, kTasks, "win");

  std::vector<std::byte> src(kBytes);
  for (std::size_t i = 0; i < kBytes; ++i) src[i] = std::byte(i & 0xff);
  std::vector<std::vector<std::byte>> got(kTasks,
                                          std::vector<std::byte>(kBytes));

  cluster.run([&](TaskCtx& t) -> CoTask {
    if (t.local() == 0) {
      co_await map.publish(t, src.data(), kBytes);
      co_await map.retract(t, kTasks - 1);
      // retract returned: every reader of generation 1 has detached, the
      // buffer is private again.
      EXPECT_FALSE(map.exported(0));
    } else {
      shm::Mapping::Window w;
      co_await map.attach(t, /*owner=*/0, /*gen=*/1, &w);
      EXPECT_EQ(w.bytes, kBytes);
      std::memcpy(got[static_cast<std::size_t>(t.local())].data(), w.data,
                  w.bytes);
      map.detach(t, 0);
    }
  });

  EXPECT_EQ(map.generation(0), 1u);
  for (int l = 1; l < kTasks; ++l) {
    EXPECT_EQ(got[static_cast<std::size_t>(l)], src) << "reader " << l;
  }
}

TEST(ShmMapping, GenerationsAreMonotonicAcrossRounds) {
  constexpr int kRounds = 3;
  Cluster cluster(one_node(2));
  shm::Mapping map(cluster.engine(), cluster.params().mem, 2, "gen");

  double cell = 0.0;
  std::vector<double> seen;

  cluster.run([&](TaskCtx& t) -> CoTask {
    for (int r = 0; r < kRounds; ++r) {
      if (t.local() == 0) {
        // The retract of round r-1 already returned, so writing the buffer
        // here is the legal owner-side reuse the protocol promises.
        cell = 10.0 + r;
        co_await map.publish(t, &cell, sizeof cell);
        co_await map.retract(t, 1);
      } else {
        // Collective calls are deterministic: the peer mirrors the expected
        // generation privately instead of asking the owner.
        shm::Mapping::Window w;
        co_await map.attach(t, 0, static_cast<std::uint64_t>(r + 1), &w);
        seen.push_back(*reinterpret_cast<const double*>(w.data));
        map.detach(t, 0);
      }
    }
  });

  EXPECT_EQ(map.generation(0), static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kRounds));
  for (int r = 0; r < kRounds; ++r) {
    EXPECT_EQ(seen[static_cast<std::size_t>(r)], 10.0 + r);
  }
}

// --- lifetime guards -------------------------------------------------------

TEST(ShmMapping, DoubleExportThrows) {
  Cluster cluster(one_node(1));
  shm::Mapping map(cluster.engine(), cluster.params().mem, 1, "dbl");
  char a[16] = {};
  char b[16] = {};
  EXPECT_THROW(cluster.run([&](TaskCtx& t) -> CoTask {
    co_await map.publish(t, a, sizeof a);
    co_await map.publish(t, b, sizeof b);  // previous window still live
  }),
               util::CheckError);
}

TEST(ShmMapping, RetractWithoutExportThrows) {
  Cluster cluster(one_node(1));
  shm::Mapping map(cluster.engine(), cluster.params().mem, 1, "ret");
  EXPECT_THROW(cluster.run([&](TaskCtx& t) -> CoTask {
    co_await map.retract(t, 0);
  }),
               util::CheckError);
}

TEST(ShmMapping, AttachAfterRetractThrows) {
  Cluster cluster(one_node(2));
  shm::Mapping map(cluster.engine(), cluster.params().mem, 2, "uaf");
  // Orders the late attach strictly after the owner's retract.
  shm::SharedFlag gate(cluster.engine(), cluster.params().mem, 0, "gate");
  char buf[8] = {};
  EXPECT_THROW(cluster.run([&](TaskCtx& t) -> CoTask {
    if (t.local() == 0) {
      co_await map.publish(t, buf, sizeof buf);
      co_await map.retract(t, 0);  // no readers this generation
      gate.set(1, &t.chk);
    } else {
      co_await gate.await_at_least(1, &t.chk);
      shm::Mapping::Window w;
      co_await map.attach(t, 0, 1, &w);  // generation 1 is gone
    }
  }),
               util::CheckError);
}

// --- checker integration ---------------------------------------------------

// Reusing the exported buffer before retract() is exactly the bug the
// handshake exists to prevent: the owner's rewrite is unordered with a
// peer's in-window read, and the checker must say so.
TEST(ShmMapping, OwnerReuseBeforeRetractIsARace) {
  if (!chk::kEnabled) GTEST_SKIP() << "chk disabled in this build";
  Cluster cluster(one_node(2));
  cluster.checker().set_enabled(true);
  shm::Mapping map(cluster.engine(), cluster.params().mem, 2, "race");
  char buf[32] = {};

  cluster.run([&](TaskCtx& t) -> CoTask {
    if (t.local() == 0) {
      co_await map.publish(t, buf, sizeof buf);
      // Premature reuse: no retract() between the export and this write.
      co_await t.delay(sim::us(1));
      chk::note_write(t.chk, buf, sizeof buf);
      co_await map.retract(t, 1);
    } else {
      shm::Mapping::Window w;
      co_await map.attach(t, 0, 1, &w);
      chk::note_read(t.chk, w.data, w.bytes);
      map.detach(t, 0);
    }
  });

  EXPECT_FALSE(cluster.checker().reports().empty())
      << "owner rewrote a live window and no race was reported";
}

TEST(ShmMapping, RetractHandshakeOrdersOwnerReuse) {
  if (!chk::kEnabled) GTEST_SKIP() << "chk disabled in this build";
  Cluster cluster(one_node(2));
  cluster.checker().set_enabled(true);
  shm::Mapping map(cluster.engine(), cluster.params().mem, 2, "clean");
  char buf[32] = {};

  cluster.run([&](TaskCtx& t) -> CoTask {
    if (t.local() == 0) {
      co_await map.publish(t, buf, sizeof buf);
      co_await map.retract(t, 1);
      // Legal reuse: retract acquired the peer's detach, so this write is
      // ordered after the peer's read.
      chk::note_write(t.chk, buf, sizeof buf);
    } else {
      shm::Mapping::Window w;
      co_await map.attach(t, 0, 1, &w);
      chk::note_read(t.chk, w.data, w.bytes);
      map.detach(t, 0);
    }
  });

  EXPECT_TRUE(cluster.checker().reports().empty());
}

// --- end-to-end through the mapped collectives -----------------------------

SrmConfig mapped_cfg() {
  SrmConfig cfg;
  cfg.single_copy = true;
  cfg.single_copy_min = 1;  // every size takes the window path
  return cfg;
}

TEST(ShmMappingE2E, MappedCollectivesDeliverCorrectData) {
  ClusterConfig cc;
  cc.nodes = 2;
  cc.tasks_per_node = 4;
  Cluster cluster(cc);
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric, mapped_cfg());
  constexpr int kRanks = 8;
  constexpr std::size_t kElems = 512;

  cluster.run([&](TaskCtx& t) -> CoTask {
    // bcast from a non-leader root on the second node.
    std::vector<double> b(kElems, t.rank == 5 ? 3.25 : 0.0);
    co_await comm.bcast(t, coll::of(b.data(), kElems), 5);
    for (double v : b) EXPECT_EQ(v, 3.25);

    // reduce: sum of rank+1 over all ranks, to root 0.
    std::vector<double> mine(kElems, static_cast<double>(t.rank + 1));
    std::vector<double> out(kElems, 0.0);
    co_await comm.reduce(t, coll::of(mine.data(), kElems),
                         coll::of(out.data(), kElems), coll::RedOp::sum, 0);
    if (t.rank == 0) {
      for (double v : out) EXPECT_EQ(v, kRanks * (kRanks + 1) / 2.0);
    }

    // allreduce above the recursive-doubling cutoff rides reduce+bcast and
    // inherits both mapped paths.
    std::vector<double> all(kElems, 0.0);
    co_await comm.allreduce(t, coll::of(mine.data(), kElems),
                            coll::of(all.data(), kElems), coll::RedOp::sum);
    for (double v : all) EXPECT_EQ(v, kRanks * (kRanks + 1) / 2.0);

    // scatter + gather roundtrip through the root-node window paths.
    std::vector<double> blocks(kElems * kRanks, 0.0);
    if (t.rank == 0) {
      for (int r = 0; r < kRanks; ++r) {
        for (std::size_t i = 0; i < kElems; ++i) {
          blocks[static_cast<std::size_t>(r) * kElems + i] = r + 0.5;
        }
      }
    }
    std::vector<double> piece(kElems, 0.0);
    co_await comm.scatter(t, coll::of(blocks.data(), kElems),
                          coll::of(piece.data(), kElems), 0);
    for (double v : piece) EXPECT_EQ(v, t.rank + 0.5);

    std::vector<double> regather(t.rank == 0 ? kElems * kRanks : 0, 0.0);
    co_await comm.gather(
        t, coll::of(piece.data(), kElems),
        t.rank == 0 ? coll::of(regather.data(), kElems) : coll::Buf{}, 0);
    if (t.rank == 0) {
      for (int r = 0; r < kRanks; ++r) {
        for (std::size_t i = 0; i < kElems; ++i) {
          EXPECT_EQ(regather[static_cast<std::size_t>(r) * kElems + i],
                    r + 0.5);
        }
      }
    }
  });
}

TEST(ShmMappingE2E, MappedPathsAreRaceFreeUnderChecker) {
  if (!chk::kEnabled) GTEST_SKIP() << "chk disabled in this build";
  Cluster cluster(one_node(8));
  cluster.checker().set_enabled(true);
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric, mapped_cfg());
  constexpr std::size_t kElems = 2048;

  cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<double> b(kElems, t.rank == 0 ? 1.5 : 0.0);
    co_await comm.bcast(t, coll::of(b.data(), kElems), 0);
    std::vector<double> mine(kElems, 1.0);
    std::vector<double> out(kElems, 0.0);
    co_await comm.reduce(t, coll::of(mine.data(), kElems),
                         coll::of(out.data(), kElems), coll::RedOp::sum, 0);
  });

  EXPECT_TRUE(cluster.checker().reports().empty());
}

TEST(ShmMappingE2E, SymbolicPlaneDispatchesWithSingleCopyOn) {
  // single_copy is a real-plane protocol switch; symbolic descriptors must
  // keep flowing through sym::Transport untouched, in the same session as
  // real mapped operations.
  ClusterConfig cc;
  cc.nodes = 2;
  cc.tasks_per_node = 2;
  Cluster cluster(cc);
  lapi::Fabric fabric(cluster);
  Communicator comm(cluster, fabric, mapped_cfg());
  constexpr std::size_t kBytes = 64 * 1024;
  coll::Payload pay(1, kBytes);
  pay.fill_pattern(coll::Dtype::kByte, 7);
  coll::Payload before = pay;

  cluster.run([&](TaskCtx& t) -> CoTask {
    co_await comm.bcast(t, coll::Buf::symbolic(pay, coll::Dtype::kByte, kBytes),
                        0);
    // Real mapped op after the symbolic one: the plane hand-off barrier and
    // the window bookkeeping must coexist.
    std::vector<double> b(kBytes / 8, t.rank == 0 ? 2.0 : 0.0);
    co_await comm.bcast(t, coll::of(b.data(), b.size()), 0);
    for (double v : b) EXPECT_EQ(v, 2.0);
  });

  // A broadcast moves bytes, it doesn't transform them: the symbolic image
  // must come out of the mapped-config session untouched.
  EXPECT_TRUE(pay.identical_to(before));
}

}  // namespace
}  // namespace srm
