// Full-scale integration: the paper's largest configuration (256 CPUs,
// 16 nodes x 16 tasks) running every operation with data verification,
// plus a 15-per-node "daemon CPU" shape and a stress mix at scale.
#include <gtest/gtest.h>

#include <vector>

#include "core/communicator.hpp"

namespace srm {
namespace {

using machine::Cluster;
using machine::ClusterConfig;
using machine::TaskCtx;
using sim::CoTask;

struct Fixture {
  Fixture(int nodes, int per_node)
      : cluster(make_cfg(nodes, per_node)),
        fabric(cluster),
        comm(cluster, fabric) {}
  static ClusterConfig make_cfg(int nodes, int per_node) {
    ClusterConfig c;
    c.nodes = nodes;
    c.tasks_per_node = per_node;
    return c;
  }
  Cluster cluster;
  lapi::Fabric fabric;
  Communicator comm;
};

TEST(Scale, AllOpsAt256Cpus) {
  Fixture f(16, 16);
  int n = 256;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    // Broadcast 100 KB (large protocol) from a non-master root.
    std::vector<char> buf(100000, 0);
    if (t.rank == 37) {
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<char>(i % 251);
      }
    }
    co_await f.comm.bcast(t, coll::Buf::bytes(buf.data(), buf.size()), 37);
    for (std::size_t i = 0; i < buf.size(); i += 997) {
      EXPECT_EQ(buf[i], static_cast<char>(i % 251)) << "rank " << t.rank;
    }

    // Pipelined allreduce of 5000 doubles.
    std::vector<double> in(5000, 1.0 + t.rank % 4), out(5000, 0.0);
    co_await f.comm.allreduce(t, coll::of(in.data(), 5000),
                              coll::of(out.data(), 5000), coll::RedOp::sum);
    double expect = 0.0;
    for (int r = 0; r < n; ++r) expect += 1.0 + r % 4;
    EXPECT_DOUBLE_EQ(out[0], expect);
    EXPECT_DOUBLE_EQ(out[4999], expect);

    // Reduce (min) to the last rank.
    double mine = 1000.0 - t.rank, least = 0.0;
    co_await f.comm.reduce(t, coll::of(&mine, 1), coll::of(&least, 1),
                           coll::RedOp::min, 255);
    if (t.rank == 255) {
      EXPECT_DOUBLE_EQ(least, 1000.0 - 255);
    }

    co_await f.comm.barrier(t);

    // Allgather one double per rank.
    double me = 2.0 * t.rank;
    std::vector<double> all(256, -1.0);
    co_await f.comm.allgather(t, coll::of(&me, 1), coll::of(all.data(), 1));
    for (int r = 0; r < n; r += 17) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], 2.0 * r);
    }
  });
}

TEST(Scale, FifteenTasksPerNodeDaemonShape) {
  // §2.1: "some applications on the IBM SP leave out one processor and use
  // only 15 of the 16 processors per node" — the embedding stays optimal.
  Fixture f(8, 15);
  int n = 120;
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    std::vector<double> in(300, t.rank * 0.25), out(300, 0.0);
    co_await f.comm.allreduce(t, coll::of(in.data(), 300),
                              coll::of(out.data(), 300), coll::RedOp::sum);
    EXPECT_DOUBLE_EQ(out[0], 0.25 * n * (n - 1) / 2.0);
    co_await f.comm.barrier(t);
  });
}

TEST(Scale, SustainedMixAt128Cpus) {
  Fixture f(8, 16);
  f.cluster.run([&](TaskCtx& t) -> CoTask {
    for (int round = 0; round < 4; ++round) {
      std::vector<char> b(20000 + round * 30000, 0);
      int root = round * 31 % 128;
      if (t.rank == root) {
        for (std::size_t i = 0; i < b.size(); ++i) {
          b[i] = static_cast<char>(i % 127);
        }
      }
      co_await f.comm.bcast(t, coll::Buf::bytes(b.data(), b.size()), root);
      EXPECT_EQ(b[b.size() - 1],
                static_cast<char>((b.size() - 1) % 127));

      double v = t.rank + round, s = 0.0;
      co_await f.comm.allreduce(t, coll::of(&v, 1), coll::of(&s, 1),
                                coll::RedOp::sum);
      EXPECT_DOUBLE_EQ(s, 128.0 * 127 / 2 + 128.0 * round);
    }
  });
}

TEST(Scale, VirtualTimeIsDeterministicAt256) {
  auto once = [] {
    Fixture f(16, 16);
    f.cluster.run([&](TaskCtx& t) -> CoTask {
      std::vector<double> in(100, 1.0), out(100, 0.0);
      co_await f.comm.allreduce(t, coll::of(in.data(), 100),
                                coll::of(out.data(), 100), coll::RedOp::sum);
      co_await f.comm.barrier(t);
    });
    return std::pair{f.cluster.engine().now(),
                     f.cluster.engine().events_processed()};
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace srm
