// srm::sa pass (1): the abstract executor — completion, formula linearity,
// the bus-traffic axis, and the eager-await semantics that make the
// canonical-schedule race check catch dropped-gate bugs.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "machine/params.hpp"
#include "mc/protocols.hpp"
#include "sa/cost.hpp"
#include "sa/dominance.hpp"

namespace srm {
namespace {

sa::CostRates sp_rates() {
  return sa::CostRates::from(machine::MachineParams::ibm_sp());
}

mc::Mutant mutant(const std::string& name) {
  for (mc::Mutant& m : mc::mutation_gauntlet()) {
    if (m.name == name) return std::move(m);
  }
  ADD_FAILURE() << "no such mutant " << name;
  return {};
}

TEST(SaCost, CleanProtocolsCompleteWithoutResidue) {
  for (mc::Proto proto : mc::all_protos()) {
    mc::Program p = mc::build(proto, {2, 2, 1});
    sa::AnalyzeResult r = sa::analyze(p, {}, sp_rates());
    EXPECT_TRUE(r.completed) << mc::proto_name(proto);
    EXPECT_TRUE(r.stalls.empty()) << mc::proto_name(proto);
    EXPECT_TRUE(r.races.empty()) << mc::proto_name(proto);
    EXPECT_GT(r.ns, 0.0) << mc::proto_name(proto);
    EXPECT_TRUE(std::isfinite(r.ns)) << mc::proto_name(proto);
  }
}

TEST(SaCost, FormulaEvalIsTheDotProduct) {
  mc::Program p = mc::build(mc::Proto::bcast, {2, 4, 2});
  sa::CostRates rates = sp_rates();
  sa::AnalyzeResult r = sa::analyze(p, {}, rates);
  double dot = 0.0;
  for (int a = 0; a < sa::kAtomCount; ++a) {
    dot += r.critical_path.n[static_cast<std::size_t>(a)] *
           rates.ns[static_cast<std::size_t>(a)];
  }
  EXPECT_NEAR(r.critical_path.eval(rates), dot, 1e-9);
  EXPECT_FALSE(r.critical_path.to_string().empty());
}

TEST(SaCost, PlanScalesBytesLinearly) {
  // Within one chunk regime the cost is affine in the per-byte unit: the
  // byte atoms scale with the plan, the event atoms do not.
  mc::Program p = mc::build(mc::Proto::bcast, {2, 4, 1});
  sa::Plan small;
  small.default_unit = 1024.0;
  sa::Plan big;
  big.default_unit = 4096.0;
  sa::AnalyzeResult rs = sa::analyze(p, small, sp_rates());
  sa::AnalyzeResult rb = sa::analyze(p, big, sp_rates());
  EXPECT_NEAR(rb.critical_path[sa::Atom::copy_bytes],
              4.0 * rs.critical_path[sa::Atom::copy_bytes], 1e-6);
  EXPECT_NEAR(rb.critical_path[sa::Atom::o_send],
              rs.critical_path[sa::Atom::o_send], 1e-9);
  EXPECT_GT(rb.ns, rs.ns);
  EXPECT_NEAR(rb.bus_bytes, 4.0 * rs.bus_bytes, 1e-6);
}

TEST(SaCost, BusBytesSumAllThreadsNotJustCriticalPath) {
  mc::Program p = mc::build(mc::Proto::reduce, {2, 4, 1});
  sa::AnalyzeResult r = sa::analyze(p, {}, sp_rates());
  double cp_bytes = r.critical_path[sa::Atom::copy_bytes] +
                    r.critical_path[sa::Atom::combine_bytes];
  EXPECT_GT(r.bus_bytes, cp_bytes);
}

TEST(SaCost, DeadlockMutantStalls) {
  mc::Mutant m = mutant("barrier.drop_release");
  sa::AnalyzeResult r = sa::analyze(m.program, {}, sp_rates());
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.stalls.empty());
}

TEST(SaCost, EagerAwaitExposesDroppedGateRaces) {
  // These two mutants drop a consumer-side gate. Under lazy await
  // semantics (resume against the variable's LATEST value, acquiring the
  // producer's whole clock) the race is masked: the awaiting thread
  // inherits happens-before edges to everything the producer did since.
  // The executor instead resumes an await against the EARLIEST admissible
  // release satisfying its guard — a legal interleaving, and the
  // adversarial one — so the overwrite race surfaces on the canonical
  // schedule.
  for (const char* name :
       {"reduce.drop_consumed_gate", "sc_reduce.drop_acons_gate"}) {
    mc::Mutant m = mutant(name);
    sa::AnalyzeResult r = sa::analyze(m.program, {}, sp_rates());
    EXPECT_FALSE(r.races.empty()) << name;
  }
  // And the unmutated protocols stay race-free under the same semantics.
  for (mc::Proto proto : {mc::Proto::reduce, mc::Proto::sc_reduce}) {
    mc::Program p = mc::build(proto, {2, 4, 2});
    sa::AnalyzeResult r = sa::analyze(p, {}, sp_rates());
    EXPECT_TRUE(r.races.empty()) << mc::proto_name(proto);
  }
}

TEST(SaCost, AlgoCostGrowsWithBytes) {
  SrmConfig cfg;
  machine::MachineParams mp = machine::MachineParams::ibm_sp();
  coll::Decision staged;
  sa::AlgoCost small =
      sa::algo_cost(coll::CollKind::bcast, staged, 4096, cfg, mp);
  sa::AlgoCost big =
      sa::algo_cost(coll::CollKind::bcast, staged, 32768, cfg, mp);
  ASSERT_TRUE(small.feasible);
  ASSERT_TRUE(big.feasible);
  EXPECT_GT(big.ns, small.ns);
  EXPECT_GT(big.bus_bytes, small.bus_bytes);
}

}  // namespace
}  // namespace srm
